(** Experiment [tab-read-opt]: the §4.2.1 read optimisation.

    "If the client has not changed the state of the object, then no
    copying to object stores is necessary." One client runs a mix of
    read-only and updating actions against an object with |St| = 3; the
    commit hook skips the state copy for clean objects. Sweeping the read
    fraction shows state copies scaling with the number of {e updating}
    actions only, and read-only commits completing faster. *)

val run : ?seed:int64 -> unit -> Table.t
