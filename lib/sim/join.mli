(** Structured scatter-gather: spawn N fibers, join on a collection policy.

    The paper's commit protocol (§2.3(3)) copies the new state to every
    node of [StA] and delivers invocations to every live replica. Doing
    that with one blocking call per destination makes the latency of the
    hot path grow linearly in the replication degree; Arjuna-style systems
    issue the calls concurrently and collect the votes. These combinators
    are that shape, expressed over the simulator's fibers.

    Guarantees shared by all combinators:
    - tasks are spawned in list order into the {e caller's} fiber group,
      so killing the caller's node kills the whole fan-out;
    - results are returned in task (submission) order, never completion
      order, and the engine's deterministic event queue makes the whole
      interleaving a pure function of the seed;
    - a single-task scatter runs inline in the calling fiber — one-element
      fan-outs are event-for-event identical to sequential code. *)

type 'a task = unit -> 'a
(** One unit of scattered work; runs in its own fiber and may suspend. *)

val all : Engine.t -> 'a task list -> 'a list
(** [all eng tasks] runs every task concurrently and returns all results
    in task order once the last one finishes. The calling fiber runs task
    0 itself (it has nothing else to do but wait, and the first task's
    leading segment executes first under full spawning too), so only
    tasks 1..n-1 cost a worker fiber. A task that raises kills the
    simulation via the engine's fiber-error channel (task 0: propagates
    in the caller); encode expected failures as [result] values. *)

val hedged : Engine.t -> delay:float -> 'a option task list -> 'a option
(** [hedged eng ~delay tasks] is a tiered first-some race: task 0 starts
    immediately, task [i] after [i * delay] — and only if no earlier task
    has answered [Some] yet. The first [Some] resumes the caller; [None]
    is returned only after every launched task settled with [None]. Losing
    tasks are cancelled cooperatively: they run to completion in the
    caller's group and their answers are discarded, so hedging is only
    safe over idempotent work (reads, probes, duplicate-tolerant
    requests). A single-task list runs inline, mirroring {!all}. *)

val first_error :
  Engine.t -> ('a, 'e) result task list -> ('a list, 'e) result
(** [first_error eng tasks] resumes the caller as soon as any task returns
    [Error e] (returning that first error, in completion order), or with
    [Ok] of all results in task order when every task succeeds. Remaining
    tasks keep running detached; their results are discarded. *)

val quorum :
  Engine.t -> k:int -> ('a, 'e) result task list -> ('a list, 'e list) result
(** [quorum eng ~k tasks] resumes the caller as soon as [k] tasks have
    succeeded — [Ok successes] lists, in task order, every success recorded
    by the time the caller resumes (at least [k]). If all tasks settle with
    fewer than [k] successes the result is [Error] of their errors in task
    order. [k <= 0] returns [Ok []] immediately while the tasks run
    detached. *)
