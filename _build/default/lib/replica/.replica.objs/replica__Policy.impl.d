lib/replica/policy.ml: Format Printf
