(* Tests for the structured scatter-gather combinators (Sim.Join). *)

open Sim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

(* Run [f eng] inside a fiber of a fresh engine and return its result
   together with the virtual time at which the fan-out completed. *)
let in_fiber ?(seed = 1L) f =
  let eng = Engine.create ~seed () in
  let out = ref None in
  Engine.spawn eng (fun () ->
      let r = f eng in
      out := Some (r, Engine.now eng));
  Engine.run eng;
  match !out with
  | Some r -> r
  | None -> Alcotest.fail "fiber did not complete"

(* ------------------------------------------------------------------ *)
(* all *)

let test_all_task_order () =
  (* Completion order is the reverse of task order; results must still
     come back in task order. *)
  let delays = [ 5.0; 3.0; 1.0 ] in
  let r, t =
    in_fiber (fun eng ->
        Join.all eng
          (List.mapi
             (fun i d () ->
               Engine.sleep eng d;
               i)
             delays))
  in
  Alcotest.(check (list int)) "task order" [ 0; 1; 2 ] r;
  check_float "joins at slowest task" 5.0 t

let test_all_empty () =
  let r, t = in_fiber (fun eng -> Join.all eng []) in
  check_int "no results" 0 (List.length r);
  check_float "no time passes" 0.0 t

let test_all_single_inline () =
  (* A one-element scatter runs inline: same fiber, no extra suspension. *)
  let r, t =
    in_fiber (fun eng ->
        Join.all eng
          [
            (fun () ->
              Engine.sleep eng 2.0;
              "only");
          ])
  in
  Alcotest.(check (list string)) "result" [ "only" ] r;
  check_float "slept exactly the task's time" 2.0 t

let test_all_parallel_elapsed () =
  (* N concurrent sleeps cost max, not sum. *)
  let _, t =
    in_fiber (fun eng ->
        Join.all eng (List.init 8 (fun _ () -> Engine.sleep eng 3.0)))
  in
  check_float "max not sum" 3.0 t

let test_all_deterministic () =
  (* Same seed => identical results and identical virtual trajectory,
     even though every task draws a random latency. *)
  let run seed =
    in_fiber ~seed (fun eng ->
        let rng = Rng.split (Engine.rng eng) in
        Join.all eng
          (List.init 6 (fun i () ->
               Engine.sleep eng (Rng.float rng 10.0);
               (i, Engine.now eng))))
  in
  let r1, t1 = run 99L and r2, t2 = run 99L in
  check_bool "same results" true (r1 = r2);
  check_float "same elapsed" t1 t2;
  let r3, _ = run 100L in
  check_bool "different seed, different draws" true (r1 <> r3)

(* ------------------------------------------------------------------ *)
(* first_error *)

let test_first_error_all_ok () =
  let r, _ =
    in_fiber (fun eng ->
        Join.first_error eng
          (List.mapi
             (fun i d () ->
               Engine.sleep eng d;
               Ok i)
             [ 4.0; 2.0 ]))
  in
  (match r with
  | Ok l -> Alcotest.(check (list int)) "task order" [ 0; 1 ] l
  | Error _ -> Alcotest.fail "unexpected error")

let test_first_error_early_return () =
  (* The error at t=1 resumes the caller without waiting for the slow
     success at t=50. *)
  let r, t =
    in_fiber (fun eng ->
        Join.first_error eng
          [
            (fun () ->
              Engine.sleep eng 50.0;
              Ok "slow");
            (fun () ->
              Engine.sleep eng 1.0;
              Error "boom");
          ])
  in
  (match r with
  | Error e -> Alcotest.(check string) "first error" "boom" e
  | Ok _ -> Alcotest.fail "expected error");
  check_float "did not wait for the slow task" 1.0 t

(* ------------------------------------------------------------------ *)
(* quorum *)

let test_quorum_early_return () =
  (* k=2 of 3: the caller resumes at the second success (t=2), long
     before the straggler at t=40 settles. *)
  let r, t =
    in_fiber (fun eng ->
        Join.quorum eng ~k:2
          (List.mapi
             (fun i d () ->
               Engine.sleep eng d;
               Ok i)
             [ 1.0; 40.0; 2.0 ]))
  in
  (match r with
  | Ok l ->
      (* Successes recorded by resume time, in task order. *)
      Alcotest.(check (list int)) "task order, k successes" [ 0; 2 ] l
  | Error _ -> Alcotest.fail "expected quorum");
  check_float "resumed at the k-th success" 2.0 t

let test_quorum_failure () =
  let r, _ =
    in_fiber (fun eng ->
        Join.quorum eng ~k:2
          [
            (fun () ->
              Engine.sleep eng 2.0;
              Error "e0");
            (fun () ->
              Engine.sleep eng 1.0;
              Ok ());
            (fun () ->
              Engine.sleep eng 3.0;
              Error "e2");
          ])
  in
  match r with
  | Error es -> Alcotest.(check (list string)) "errors, task order" [ "e0"; "e2" ] es
  | Ok _ -> Alcotest.fail "quorum should fail with 1 < k successes"

let test_quorum_zero () =
  let r, t = in_fiber (fun eng -> Join.quorum eng ~k:0 [ (fun () -> Ok 1) ]) in
  (match r with
  | Ok l -> check_int "immediate empty quorum" 0 (List.length l)
  | Error _ -> Alcotest.fail "k=0 is trivially satisfied");
  check_float "immediate" 0.0 t

(* ------------------------------------------------------------------ *)
(* crash fate *)

let test_workers_share_caller_group () =
  (* Killing the caller's group mid-scatter silences the workers too:
     structured concurrency means no orphaned side effects. *)
  let eng = Engine.create () in
  let g = Engine.new_group eng in
  let late_effects = ref 0 in
  Engine.spawn eng ~group:g (fun () ->
      ignore
        (Join.all eng
           (List.init 3 (fun _ () ->
                Engine.sleep eng 10.0;
                incr late_effects))));
  Engine.schedule eng ~delay:5.0 (fun () -> Engine.kill_group eng g);
  Engine.run eng;
  check_int "no worker survived the crash" 0 !late_effects

let suite =
  [
    ( "join",
      [
        Alcotest.test_case "all: results in task order" `Quick
          test_all_task_order;
        Alcotest.test_case "all: empty scatter" `Quick test_all_empty;
        Alcotest.test_case "all: single task runs inline" `Quick
          test_all_single_inline;
        Alcotest.test_case "all: elapsed is max not sum" `Quick
          test_all_parallel_elapsed;
        Alcotest.test_case "all: deterministic under seed" `Quick
          test_all_deterministic;
        Alcotest.test_case "first_error: all ok" `Quick test_first_error_all_ok;
        Alcotest.test_case "first_error: early return" `Quick
          test_first_error_early_return;
        Alcotest.test_case "quorum: early return at k" `Quick
          test_quorum_early_return;
        Alcotest.test_case "quorum: failure collects errors" `Quick
          test_quorum_failure;
        Alcotest.test_case "quorum: k=0 immediate" `Quick test_quorum_zero;
        Alcotest.test_case "workers share caller's crash fate" `Quick
          test_workers_share_caller_group;
      ] );
  ]
