lib/workload/audit.ml: Action Format Gvd List Naming Net Printf Replica Result Scheme Service Sim Store
