(* Fortification tests: paths not covered by the per-layer suites —
   store-side validation and reservations, the committed-version fence,
   retirement operations, durable naming mode, orphan-guard unit
   behaviour, the passivator, and model-based property tests of the lock
   manager and nested-action semantics. *)

open Naming

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let slist = Alcotest.(list string)

let topo ~servers ~stores ~clients =
  {
    Service.gvd_node = "ns";
    gvd_nodes = [];
    server_nodes = servers;
    store_nodes = stores;
    client_nodes = clients;
  }

let small ?seed ?durable_naming () =
  Service.create ?seed ?durable_naming
    (topo ~servers:[ "alpha" ] ~stores:[ "beta1"; "beta2" ] ~clients:[ "c1"; "c2" ])

let store_payload w node uid =
  match
    Store.Object_store.read
      (Action.Store_host.objects (Service.store_host w) node)
      uid
  with
  | Some s -> Some s.Store.Object_state.payload
  | None -> None

(* ------------------------------------------------------------------ *)
(* Store-side backward validation and write reservations *)

let mk_state payload counter =
  Store.Object_state.make ~payload
    ~version:{ Store.Version.counter; committed_by = "t" }

let test_prepare_validates_successor () =
  let w = small () in
  let uid = Store.Uid.fresh (Service.uid_supply w) ~label:"x" in
  Action.Store_host.seed (Service.store_host w) "beta1" uid (mk_state "a" 3);
  let votes = ref [] in
  Service.spawn_client w "c1" (fun () ->
      let try_prepare action counter =
        match
          Action.Store_host.prepare (Service.store_host w) ~from:"c1"
            ~store:"beta1" ~action ~coordinator:"c1"
            [ (uid, mk_state "b" counter) ]
        with
        | Ok (Action.Store_host.Vote_yes _) -> votes := (action, "yes") :: !votes
        | Ok Action.Store_host.Vote_stale -> votes := (action, "stale") :: !votes
        | Ok (Action.Store_host.Vote_delta_miss _) ->
            votes := (action, "miss") :: !votes
        | Error _ -> votes := (action, "error") :: !votes
      in
      try_prepare "succ" 4;
      (* same counter as an existing prepare -> reservation refusal *)
      try_prepare "sibling" 4;
      (* not a successor of committed state *)
      try_prepare "gap" 6;
      try_prepare "rewind" 3);
  Service.run w;
  Alcotest.(check (list (pair string string)))
    "votes"
    [ ("rewind", "stale"); ("gap", "stale"); ("sibling", "stale"); ("succ", "yes") ]
    !votes

let test_reservation_released_by_abort () =
  let w = small () in
  let uid = Store.Uid.fresh (Service.uid_supply w) ~label:"x" in
  Action.Store_host.seed (Service.store_host w) "beta1" uid (mk_state "a" 0);
  let second = ref "none" in
  Service.spawn_client w "c1" (fun () ->
      let sh = Service.store_host w in
      (match
         Action.Store_host.prepare sh ~from:"c1" ~store:"beta1" ~action:"t1"
           ~coordinator:"c1"
           [ (uid, mk_state "b" 1) ]
       with
      | Ok (Action.Store_host.Vote_yes _) -> ()
      | _ -> Alcotest.fail "first prepare");
      ignore (Action.Store_host.abort sh ~from:"c1" ~store:"beta1" ~action:"t1");
      match
        Action.Store_host.prepare sh ~from:"c1" ~store:"beta1" ~action:"t2"
          ~coordinator:"c1"
          [ (uid, mk_state "c" 1) ]
      with
      | Ok (Action.Store_host.Vote_yes _) -> second := "yes"
      | Ok Action.Store_host.Vote_stale -> second := "stale"
      | Ok (Action.Store_host.Vote_delta_miss _) -> second := "miss"
      | Error _ -> second := "error");
  Service.run w;
  check_string "reservation freed" "yes" !second

let test_pending_writers_listing () =
  let log = Store.Intent_log.create () in
  let sup = Store.Uid.supply () in
  let a = Store.Uid.fresh sup ~label:"a" in
  let b = Store.Uid.fresh sup ~label:"b" in
  Store.Intent_log.prepare log ~action:"t1" ~coordinator:"c"
    [ (a, Store.Object_state.initial "x") ];
  Store.Intent_log.prepare log ~action:"t2" ~coordinator:"c"
    [ (a, Store.Object_state.initial "y"); (b, Store.Object_state.initial "z") ];
  Alcotest.(check (list string))
    "writers of a" [ "t1"; "t2" ]
    (Store.Intent_log.pending_writers log a);
  Alcotest.(check (list string))
    "writers of b" [ "t2" ]
    (Store.Intent_log.pending_writers log b);
  Store.Intent_log.resolve log ~action:"t1";
  Alcotest.(check (list string))
    "after resolve" [ "t2" ]
    (Store.Intent_log.pending_writers log a)

(* ------------------------------------------------------------------ *)
(* Committed-version fence *)

let test_note_version_and_fence () =
  let w = small () in
  let uid =
    Service.create_object w ~name:"obj" ~impl:"counter" ~sv:[ "alpha" ]
      ~st:[ "beta1"; "beta2" ] ()
  in
  Service.spawn_client w "c1" (fun () ->
      match
        Service.with_bound w ~client:"c1" ~scheme:Scheme.Standard
          ~policy:Replica.Policy.Single_copy_passive ~uid (fun act group ->
            Service.invoke w group ~act "incr")
      with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e);
  Service.run w;
  let fence = Gvd.committed_version (Service.gvd w) uid in
  check_int "fence advanced" 1 fence.Store.Version.counter

let test_fence_blocks_rewound_reinclusion () =
  (* beta2 is excluded while down; the only holder of the newest state
     (beta1) then also goes down; beta2 recovers and must NOT rejoin StA
     until beta1 is back. *)
  let w = small () in
  let uid =
    Service.create_object w ~name:"obj" ~impl:"counter" ~sv:[ "alpha" ]
      ~st:[ "beta1"; "beta2" ] ()
  in
  let eng = Service.engine w in
  let net = Service.network w in
  Service.run ~until:1.0 w;
  Net.Network.crash net "beta2";
  Service.spawn_client w "c1" (fun () ->
      match
        Service.with_bound w ~client:"c1" ~scheme:Scheme.Standard
          ~policy:Replica.Policy.Single_copy_passive ~uid (fun act group ->
            Service.invoke w group ~act "add 7")
      with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e);
  (* beta1 (sole holder of v1) dies; beta2 recovers with v0 only. *)
  Sim.Engine.schedule eng ~delay:40.0 (fun () -> Net.Network.crash net "beta1");
  Sim.Engine.schedule eng ~delay:45.0 (fun () -> Net.Network.recover net "beta2");
  Sim.Engine.run ~until:120.0 eng;
  (* beta1 is down but stays listed (nothing excluded it); the point is
     that beta2 must not have re-joined with its rewound state. *)
  check_bool "beta2 fenced out" false
    (List.mem "beta2" (Gvd.current_st (Service.gvd w) uid));
  check_bool "fence refusals counted" true
    (Sim.Metrics.counter (Service.metrics w) "reintegrate.fenced" >= 1);
  (* beta1 returns: it re-includes with v1, and beta2's next recovery can
     then fetch it. *)
  Net.Network.recover net "beta1";
  Sim.Engine.run ~until:200.0 eng;
  check_bool "beta1 back in StA" true
    (List.mem "beta1" (Gvd.current_st (Service.gvd w) uid));
  Alcotest.(check (option string)) "v1 preserved" (Some "7") (store_payload w "beta1" uid)

(* ------------------------------------------------------------------ *)
(* Retirement operations (GVD level) *)

let test_retire_store_home_forgotten () =
  let w = small () in
  let uid =
    Service.create_object w ~name:"obj" ~impl:"counter" ~sv:[ "alpha" ]
      ~st:[ "beta1"; "beta2" ] ()
  in
  let home = ref [] in
  Service.spawn_client w "c1" (fun () ->
      ignore
        (Action.Atomic.atomically (Service.atomic w) ~node:"c1" (fun act ->
             match Gvd.retire_store_home (Service.gvd w) ~act ~uid "beta2" with
             | Ok (Gvd.Granted ()) -> ()
             | _ -> Alcotest.fail "retire"));
      match Gvd.entry_info (Service.gvd w) ~from:"c1" uid with
      | Ok (Some info) -> home := info.Gvd.ei_st_home
      | _ -> Alcotest.fail "entry_info");
  Service.run w;
  Alcotest.check slist "home shrunk" [ "beta1" ] !home;
  Alcotest.check slist "st shrunk" [ "beta1" ] (Gvd.current_st (Service.gvd w) uid)

let test_retire_rolls_back_on_abort () =
  let w = small () in
  let uid =
    Service.create_object w ~name:"obj" ~impl:"counter" ~sv:[ "alpha" ]
      ~st:[ "beta1"; "beta2" ] ()
  in
  Service.spawn_client w "c1" (fun () ->
      ignore
        (Action.Atomic.atomically (Service.atomic w) ~node:"c1" (fun act ->
             (match Gvd.retire_store_home (Service.gvd w) ~act ~uid "beta2" with
             | Ok (Gvd.Granted ()) -> ()
             | _ -> Alcotest.fail "retire");
             raise (Action.Atomic.Abort "no"))));
  Service.run w;
  Alcotest.check slist "st restored" [ "beta1"; "beta2" ]
    (List.sort String.compare (Gvd.current_st (Service.gvd w) uid))

(* ------------------------------------------------------------------ *)
(* Durable naming mode (unit-level) *)

let test_durable_gvd_restores_committed_images () =
  let w = small ~durable_naming:true () in
  let uid =
    Service.create_object w ~name:"obj" ~impl:"counter" ~sv:[ "alpha" ]
      ~st:[ "beta1"; "beta2" ] ()
  in
  let eng = Service.engine w in
  let net = Service.network w in
  (* An in-flight action excludes beta2, then the service node crashes
     before the action ends: the exclusion must be rolled back to the
     committed image. *)
  Service.spawn_client w "c1" (fun () ->
      ignore
        (Action.Atomic.atomically (Service.atomic w) ~node:"c1" (fun act ->
             (match Gvd.exclude (Service.gvd w) ~act [ (uid, [ "beta2" ]) ] with
             | Ok (Gvd.Granted ()) -> ()
             | _ -> Alcotest.fail "exclude");
             Sim.Engine.sleep eng 50.0)));
  Sim.Engine.schedule eng ~delay:10.0 (fun () -> Net.Network.crash net "ns");
  Sim.Engine.schedule eng ~delay:30.0 (fun () -> Net.Network.recover net "ns");
  Sim.Engine.run eng;
  Alcotest.check slist "committed image restored" [ "beta1"; "beta2" ]
    (List.sort String.compare (Gvd.current_st (Service.gvd w) uid));
  check_bool "reset counted" true
    (Sim.Metrics.counter (Service.metrics w) "gvd.crash_resets" >= 1)

(* ------------------------------------------------------------------ *)
(* Orphan guard (unit-level) *)

let test_orphan_guard_origin_parsing () =
  check_string "top" "c1" (Action.Orphan_guard.origin_of_action "c1:3");
  check_string "nested" "node-7" (Action.Orphan_guard.origin_of_action "node-7:3.1.2");
  check_string "no colon" "x" (Action.Orphan_guard.origin_of_action "x")

let test_orphan_guard_settle_prevents_abort () =
  let eng = Sim.Engine.create () in
  let net = Net.Network.create eng in
  List.iter (Net.Network.add_node net) [ "client"; "svc" ];
  let fired = ref 0 in
  let g =
    Action.Orphan_guard.create net ~node:"svc" ~abort:(fun ~scope:_ ~action:_ ->
        incr fired)
  in
  Action.Orphan_guard.touch g ~scope:"s" ~action:"client:1";
  Action.Orphan_guard.touch g ~scope:"s" ~action:"client:2";
  Action.Orphan_guard.settle g ~scope:"s" ~action:"client:1";
  Net.Network.crash net "client";
  Sim.Engine.run eng;
  check_int "only unsettled action aborted" 1 !fired

let test_orphan_guard_transfer_moves_watch () =
  let eng = Sim.Engine.create () in
  let net = Net.Network.create eng in
  List.iter (Net.Network.add_node net) [ "client"; "svc" ];
  let aborted = ref [] in
  let g =
    Action.Orphan_guard.create net ~node:"svc" ~abort:(fun ~scope:_ ~action ->
        aborted := action :: !aborted)
  in
  Action.Orphan_guard.touch g ~scope:"s" ~action:"client:1.1";
  Action.Orphan_guard.transfer g ~scope:"s" ~action:"client:1.1" ~parent:"client:1";
  Net.Network.crash net "client";
  Sim.Engine.run eng;
  Alcotest.(check (list string)) "parent aborted" [ "client:1" ] !aborted

let test_orphan_guard_ignores_local_actions () =
  let eng = Sim.Engine.create () in
  let net = Net.Network.create eng in
  Net.Network.add_node net "svc";
  let fired = ref 0 in
  let g =
    Action.Orphan_guard.create net ~node:"svc" ~abort:(fun ~scope:_ ~action:_ ->
        incr fired)
  in
  (* Actions originating on the guard's own node are not watched. *)
  Action.Orphan_guard.touch g ~scope:"s" ~action:"svc:1";
  Net.Network.crash net "svc";
  Sim.Engine.run eng;
  check_int "no self watch" 0 !fired

(* ------------------------------------------------------------------ *)
(* Mirrored naming-service pair (§3.1 extension, unit level) *)

let mirrored_world () =
  let w =
    Service.create ~seed:21L ~durable_naming:true
      (topo ~servers:[ "alpha" ] ~stores:[ "beta1" ] ~clients:[ "c1"; "ns2" ])
  in
  let gvd2 = Gvd.install ~durable:true (Service.atomic w) ~node:"ns2" in
  Gvd.mirror_to (Service.gvd w) gvd2;
  Gvd.mirror_to gvd2 (Service.gvd w);
  (w, gvd2)

let test_mirror_propagates_commits () =
  let w, gvd2 = mirrored_world () in
  let uid =
    Service.create_object w ~name:"obj" ~impl:"counter" ~sv:[ "alpha" ]
      ~st:[ "beta1" ] ()
  in
  Gvd.register_direct gvd2 ~uid ~name:"obj" ~impl:"counter" ~sv:[ "alpha" ]
    ~st:[ "beta1" ];
  Service.spawn_client w "c1" (fun () ->
      (* An exclusion-free write advances the committed-version fence;
         a retire shrinks St. Both must be visible at the backup. *)
      (match
         Service.with_bound w ~client:"c1" ~scheme:Scheme.Standard
           ~policy:Replica.Policy.Single_copy_passive ~uid (fun act group ->
             Service.invoke w group ~act "incr")
       with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e));
  Service.run w;
  check_int "fence mirrored" 1
    (Gvd.committed_version gvd2 uid).Store.Version.counter;
  check_bool "mirror applies counted" true
    (Sim.Metrics.counter (Service.metrics w) "gvd.mirror_applies" >= 1)

let test_mirror_aborts_propagate_nothing () =
  let w, gvd2 = mirrored_world () in
  let uid =
    Service.create_object w ~name:"obj" ~impl:"counter" ~sv:[ "alpha" ]
      ~st:[ "beta1" ] ()
  in
  Gvd.register_direct gvd2 ~uid ~name:"obj" ~impl:"counter" ~sv:[ "alpha" ]
    ~st:[ "beta1" ];
  Service.spawn_client w "c1" (fun () ->
      ignore
        (Action.Atomic.atomically (Service.atomic w) ~node:"c1" (fun act ->
             (match Gvd.remove (Service.gvd w) ~act ~uid "alpha" with
             | Ok (Gvd.Granted ()) -> ()
             | _ -> Alcotest.fail "remove");
             raise (Action.Atomic.Abort "no"))));
  Service.run w;
  Alcotest.check slist "backup untouched by abort" [ "alpha" ]
    (Gvd.current_sv gvd2 uid)

let test_resync_pulls_snapshot () =
  let w, gvd2 = mirrored_world () in
  let uid =
    Service.create_object w ~name:"obj" ~impl:"counter" ~sv:[ "alpha" ]
      ~st:[ "beta1" ] ()
  in
  (* Deliberately do NOT register on gvd2 via mirror: register there, then
     diverge gvd2 by committing through IT, and let gvd1 resync. *)
  Gvd.register_direct gvd2 ~uid ~name:"obj" ~impl:"counter" ~sv:[ "alpha" ]
    ~st:[ "beta1" ];
  let binder2 =
    Binder.create (Router.of_gvd (Service.atomic w) gvd2) (Service.group_runtime w)
  in
  Service.spawn_client w "c1" (fun () ->
      (* Commit via the backup (as a failover client would). *)
      (match
         Action.Atomic.atomically (Service.atomic w) ~node:"c1" (fun act ->
             match
               Binder.bind binder2 ~act ~scheme:Scheme.Standard ~uid
                 ~policy:Replica.Policy.Single_copy_passive
             with
             | Error e -> raise (Action.Atomic.Abort (Binder.bind_error_to_string e))
             | Ok b -> ignore (Service.invoke w b.Binder.bd_group ~act "incr"))
       with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      (* gvd1 was mirrored automatically (both directions set); wipe that by
         simulating a stale gvd1 through resync instead: just verify resync
         is a no-op that succeeds and fences agree. *)
      (match Gvd.resync_from (Service.gvd w) ~source:gvd2 ~from:"ns" with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Net.Rpc.error_to_string e)));
  Service.run w;
  check_int "fences agree after resync"
    (Gvd.committed_version gvd2 uid).Store.Version.counter
    (Gvd.committed_version (Service.gvd w) uid).Store.Version.counter

(* ------------------------------------------------------------------ *)
(* Model-based property: lock manager vs. a reference model *)

type lock_op = Acquire of int * Lockmgr.Mode.t | Release of int | ReleaseAll of int

let arb_lock_op =
  QCheck.oneof
    [
      QCheck.map
        (fun (o, m) ->
          Acquire (o, [| Lockmgr.Mode.Read; Lockmgr.Mode.Write; Lockmgr.Mode.Exclude_write |].(m)))
        QCheck.(pair (int_range 0 3) (int_range 0 2));
      QCheck.map (fun o -> Release o) QCheck.(int_range 0 3);
      QCheck.map (fun o -> ReleaseAll o) QCheck.(int_range 0 3);
    ]

let prop_lockmgr_matches_model =
  QCheck.Test.make ~name:"try_acquire matches a reference model" ~count:300
    QCheck.(small_list arb_lock_op)
    (fun ops ->
      let eng = Sim.Engine.create () in
      let mgr = Lockmgr.Manager.create eng in
      (* Reference model: owner -> mode map with the same merge rule. *)
      let model : (string, Lockmgr.Mode.t) Hashtbl.t = Hashtbl.create 4 in
      let owner i = Printf.sprintf "o%d" i in
      let model_grantable o m =
        Hashtbl.fold
          (fun o' m' acc ->
            acc && (String.equal o' o || Lockmgr.Mode.compatible m' m))
          model true
      in
      List.for_all
        (fun op ->
          match op with
          | Acquire (i, m) ->
              let o = owner i in
              let expected =
                match Hashtbl.find_opt model o with
                | Some held when Lockmgr.Mode.covers held m -> true
                | _ ->
                    if model_grantable o m then begin
                      let merged =
                        match Hashtbl.find_opt model o with
                        | Some held -> Lockmgr.Mode.strongest held m
                        | None -> m
                      in
                      Hashtbl.replace model o merged;
                      true
                    end
                    else false
              in
              let got = Lockmgr.Manager.try_acquire mgr ~owner:o ~mode:m "k" in
              (* Keep the model in sync when the manager granted. *)
              if got && not expected then false
              else if (not got) && expected then false
              else true
          | Release i ->
              Hashtbl.remove model (owner i);
              Lockmgr.Manager.release mgr ~owner:(owner i) "k";
              true
          | ReleaseAll i ->
              Hashtbl.remove model (owner i);
              Lockmgr.Manager.release_all mgr ~owner:(owner i);
              true)
        ops)

(* ------------------------------------------------------------------ *)
(* Model-based property: random nested action trees over a register *)

(* Build a random nesting structure of writes; compute the expected final
   payload by interpreting commits/aborts, and compare with the system. *)
type tree_op = Write of int | Nested of bool * tree_op list

let rec arb_tree depth =
  let open QCheck.Gen in
  if depth = 0 then map (fun n -> Write n) (int_range 0 99)
  else
    frequency
      [
        (3, map (fun n -> Write n) (int_range 0 99));
        ( 1,
          map2
            (fun commit ops -> Nested (commit, ops))
            bool
            (list_size (int_range 1 3) (arb_tree (depth - 1))) );
      ]

let tree_gen = QCheck.make (QCheck.Gen.list_size (QCheck.Gen.int_range 1 4) (arb_tree 2))

(* Reference interpretation: returns the payload visible after running the
   ops against [base], honouring nested commit/abort. *)
let rec interp base ops =
  List.fold_left
    (fun acc op ->
      match op with
      | Write n -> string_of_int n
      | Nested (commit, inner) ->
          let result = interp acc inner in
          if commit then result else acc)
    base ops

let prop_nested_actions_match_interpreter =
  QCheck.Test.make ~name:"nested action trees match reference interpreter"
    ~count:60 tree_gen (fun ops ->
      let w =
        Service.create ~seed:7L
          (topo ~servers:[ "alpha" ] ~stores:[ "beta1" ] ~clients:[ "c1" ])
      in
      let uid =
        Service.create_object w ~name:"reg" ~impl:"register" ~sv:[ "alpha" ]
          ~st:[ "beta1" ] ()
      in
      let expected = interp "" ops in
      let ok = ref true in
      Service.spawn_client w "c1" (fun () ->
          match
            Service.with_bound w ~client:"c1" ~scheme:Scheme.Standard
              ~policy:Replica.Policy.Single_copy_passive ~uid (fun act group ->
                let rec run act ops =
                  List.iter
                    (fun op ->
                      match op with
                      | Write n ->
                          ignore
                            (Service.invoke w group ~act
                               (Printf.sprintf "write %d" n))
                      | Nested (commit, inner) -> (
                          match
                            Action.Atomic.atomically_nested act (fun child ->
                                run child inner;
                                if not commit then
                                  raise (Action.Atomic.Abort "abort subtree"))
                          with
                          | Ok () | Error _ -> ()))
                    ops
                in
                run act ops)
          with
          | Ok () -> ()
          | Error _ -> ok := false);
      Service.run w;
      !ok
      &&
      match store_payload w "beta1" uid with
      | Some payload -> String.equal payload expected
      | None -> String.equal expected "")

let suite =
  let tc = Alcotest.test_case in
  [
    ( "fort.store_validation",
      [
        tc "prepare validates successor" `Quick test_prepare_validates_successor;
        tc "reservation released by abort" `Quick test_reservation_released_by_abort;
        tc "pending writers listing" `Quick test_pending_writers_listing;
      ] );
    ( "fort.version_fence",
      [
        tc "note_version advances fence" `Quick test_note_version_and_fence;
        tc "fence blocks rewound reinclusion" `Quick
          test_fence_blocks_rewound_reinclusion;
      ] );
    ( "fort.retirement",
      [
        tc "retire store home forgotten" `Quick test_retire_store_home_forgotten;
        tc "retire rolls back on abort" `Quick test_retire_rolls_back_on_abort;
      ] );
    ( "fort.durable_gvd",
      [ tc "restores committed images" `Quick test_durable_gvd_restores_committed_images ] );
    ( "fort.orphan_guard",
      [
        tc "origin parsing" `Quick test_orphan_guard_origin_parsing;
        tc "settle prevents abort" `Quick test_orphan_guard_settle_prevents_abort;
        tc "transfer moves watch" `Quick test_orphan_guard_transfer_moves_watch;
        tc "ignores local actions" `Quick test_orphan_guard_ignores_local_actions;
      ] );
    ( "fort.mirror",
      [
        tc "propagates commits" `Quick test_mirror_propagates_commits;
        tc "aborts propagate nothing" `Quick test_mirror_aborts_propagate_nothing;
        tc "resync pulls snapshot" `Quick test_resync_pulls_snapshot;
      ] );
    ( "fort.models",
      [
        Test_util.qcheck prop_lockmgr_matches_model;
        Test_util.qcheck prop_nested_actions_match_interpreter;
      ] );
  ]
