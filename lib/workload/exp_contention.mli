(** Experiment [tab-contention]: database contention scaling of the
    access schemes (§4.1.2 vs §4.1.3).

    The paper's stated advantage for scheme A is that [GetServer] "is a
    read operation, permitting shared access from within client actions" —
    many clients bind concurrently without queueing at the database. The
    flip side of schemes B/C is that every bind is a read-modify-write
    ([GetServer]+[Increment] under a write lock), serialising binders.

    Sweep the number of concurrent (read-only) clients (1..32) and report
    mean bind latency, mean RPC rounds per bind, and database lock waits
    per scheme. Historically scheme A stayed flat while B/C grew with the
    client count; with snapshot reads and the single-round batched bind
    the Increment is a Delta-mode append and both curves are near-flat,
    with B/C paying one RPC round per bind against scheme A's three —
    and scheme A too under [pipelined_binds], which scatters its three
    reads as one {!Sim.Join} round.

    A second block races write commits against membership churn and
    compares the classic locked commit-time [GetView] re-read (which
    queues behind the churn's write locks — the [gvd.view_lock_waits]
    column) with the optimistic validated snapshot, which never waits. *)

val run : ?seed:int64 -> unit -> Table.t
