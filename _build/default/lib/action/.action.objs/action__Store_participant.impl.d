lib/action/store_participant.ml: Atomic Store_host
