type owner = string

type waiter = {
  w_owner : owner;
  w_mode : Mode.t;
  w_resume : unit Sim.Engine.resumer;
  mutable w_cancelled : bool;
}

type entry = {
  mutable held : (owner * Mode.t) list; (* unordered *)
  queue : waiter Queue.t;
}

type t = {
  eng : Sim.Engine.t;
  entries : (string, entry) Hashtbl.t;
  metrics : Sim.Metrics.t option;
}

let create ?metrics eng = { eng; entries = Hashtbl.create 64; metrics }

let bump t name =
  match t.metrics with Some m -> Sim.Metrics.incr m name | None -> ()

let entry t key =
  match Hashtbl.find_opt t.entries key with
  | Some e -> e
  | None ->
      let e = { held = []; queue = Queue.create () } in
      Hashtbl.add t.entries key e;
      e

let held_mode e owner =
  List.assoc_opt owner e.held

(* Hierarchical action ids: "c:1.2" is a descendant of "c:1". A nested
   action may share its ancestors' locks (Arjuna lock inheritance); the
   lock it acquires is recorded in its own name and folds back into the
   parent on nested commit via [transfer_all]. *)
let is_descendant ~ancestor owner =
  let la = String.length ancestor in
  String.length owner > la
  && String.sub owner 0 la = ancestor
  && owner.[la] = '.'

(* A request is grantable when compatible with every holder other than the
   requester itself (merging its own weaker lock) and the requester's
   ancestors (inheriting theirs). *)
let grantable e ~owner ~mode =
  List.for_all
    (fun (o, m) ->
      String.equal o owner || is_descendant ~ancestor:o owner
      || Mode.compatible m mode)
    e.held

let install e ~owner ~mode =
  let merged =
    match held_mode e owner with
    | Some old -> Mode.strongest old mode
    | None -> mode
  in
  e.held <- (owner, merged) :: List.remove_assoc owner e.held

(* Wake queued waiters in order; stop at the first one that still cannot be
   granted, preserving queue fairness. Cancelled waiters are discarded. *)
let rec service e =
  match Queue.peek_opt e.queue with
  | None -> ()
  | Some w when w.w_cancelled ->
      ignore (Queue.pop e.queue);
      service e
  | Some w ->
      if grantable e ~owner:w.w_owner ~mode:w.w_mode then begin
        ignore (Queue.pop e.queue);
        install e ~owner:w.w_owner ~mode:w.w_mode;
        w.w_resume (Ok ());
        service e
      end

(* Validate-under-mode query: would [owner] get [mode] on [key] right now,
   without installing anything? True when a covering lock is already held,
   or when the request is compatible with every other holder and no earlier
   waiter is queued (the same fairness rule [try_acquire] applies). Pure:
   the lock table is unchanged, so a caller can probe before mutating any
   state the grant would protect. *)
let available t ~owner ~mode key =
  match Hashtbl.find_opt t.entries key with
  | None -> true
  | Some e -> (
      match held_mode e owner with
      | Some held when Mode.covers held mode -> true
      | Some _ -> grantable e ~owner ~mode
      | None -> Queue.is_empty e.queue && grantable e ~owner ~mode)

let try_acquire t ~owner ~mode key =
  let e = entry t key in
  match held_mode e owner with
  | Some held when Mode.covers held mode ->
      bump t "lock.reentrant";
      true
  | _ ->
      if Queue.is_empty e.queue && grantable e ~owner ~mode then begin
        install e ~owner ~mode;
        bump t "lock.granted";
        true
      end
      else false

let acquire t ~owner ~mode ?timeout key =
  let e = entry t key in
  match held_mode e owner with
  | Some held when Mode.covers held mode ->
      bump t "lock.reentrant";
      Ok ()
  | Some _ ->
      (* Non-covering re-request while holding a weaker lock: waiting could
         self-deadlock (we would wait for our own lock), so treat it as an
         immediate promotion attempt. *)
      if grantable e ~owner ~mode then begin
        install e ~owner ~mode;
        bump t "lock.promoted";
        Ok ()
      end
      else begin
        bump t "lock.promotion_refused";
        Error `Timeout
      end
  | None ->
      if Queue.is_empty e.queue && grantable e ~owner ~mode then begin
        install e ~owner ~mode;
        bump t "lock.granted";
        Ok ()
      end
      else begin
        bump t "lock.waited";
        let wait register =
          match timeout with
          | None -> Ok (Sim.Engine.suspend t.eng register)
          | Some dt -> (
              match Sim.Engine.timeout t.eng dt register with
              | Ok () -> Ok ()
              | Error _ -> Error `Timeout)
        in
        let waiter_ref = ref None in
        let outcome =
          wait (fun resume ->
              let w =
                { w_owner = owner; w_mode = mode; w_resume = resume; w_cancelled = false }
              in
              waiter_ref := Some w;
              Queue.push w e.queue)
        in
        (match outcome with
        | Ok () -> bump t "lock.granted_after_wait"
        | Error `Timeout -> (
            bump t "lock.timeout";
            match !waiter_ref with
            | Some w ->
                w.w_cancelled <- true;
                (* Our dead entry may have been blocking the queue head. *)
                service e
            | None -> ()));
        outcome
      end

let promote t ~owner ~to_mode key =
  let e = entry t key in
  match held_mode e owner with
  | None -> false
  | Some held when Mode.covers held to_mode -> true
  | Some _ ->
      if grantable e ~owner ~mode:to_mode then begin
        install e ~owner ~mode:to_mode;
        bump t "lock.promoted";
        true
      end
      else begin
        bump t "lock.promotion_refused";
        false
      end

let release t ~owner key =
  match Hashtbl.find_opt t.entries key with
  | None -> ()
  | Some e ->
      if List.mem_assoc owner e.held then begin
        e.held <- List.remove_assoc owner e.held;
        bump t "lock.released";
        service e
      end

let cancel_waits e ~owner =
  Queue.iter
    (fun w -> if String.equal w.w_owner owner then w.w_cancelled <- true)
    e.queue

let release_all t ~owner =
  Hashtbl.iter
    (fun _ e ->
      cancel_waits e ~owner;
      if List.mem_assoc owner e.held then begin
        e.held <- List.remove_assoc owner e.held;
        bump t "lock.released"
      end;
      service e)
    t.entries

let release_everything t =
  Hashtbl.iter
    (fun _ e ->
      e.held <- [];
      Queue.iter (fun w -> w.w_cancelled <- true) e.queue;
      Queue.clear e.queue)
    t.entries

let transfer_all t ~from_owner ~to_owner =
  Hashtbl.iter
    (fun _ e ->
      match List.assoc_opt from_owner e.held with
      | None -> ()
      | Some m ->
          e.held <- List.remove_assoc from_owner e.held;
          let merged =
            match List.assoc_opt to_owner e.held with
            | Some m' -> Mode.strongest m m'
            | None -> m
          in
          e.held <- (to_owner, merged) :: List.remove_assoc to_owner e.held)
    t.entries

let holds t ~owner key =
  match Hashtbl.find_opt t.entries key with
  | None -> None
  | Some e -> held_mode e owner

let holders t key =
  match Hashtbl.find_opt t.entries key with
  | None -> []
  | Some e -> List.sort (fun (a, _) (b, _) -> String.compare a b) e.held

let waiting t key =
  match Hashtbl.find_opt t.entries key with
  | None -> 0
  | Some e ->
      Queue.fold (fun n w -> if w.w_cancelled then n else n + 1) 0 e.queue

let all_held t =
  Hashtbl.fold
    (fun key e acc ->
      if e.held = [] then acc
      else
        ( key,
          List.sort (fun (a, _) (b, _) -> String.compare a b) e.held )
        :: acc)
    t.entries []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let locked_keys t ~owner =
  Hashtbl.fold
    (fun key e acc -> if List.mem_assoc owner e.held then key :: acc else acc)
    t.entries []
  |> List.sort String.compare

let pp ppf t =
  let keys =
    Hashtbl.fold (fun k _ acc -> k :: acc) t.entries [] |> List.sort String.compare
  in
  List.iter
    (fun key ->
      let e = Hashtbl.find t.entries key in
      if e.held <> [] || not (Queue.is_empty e.queue) then begin
        Format.fprintf ppf "%s:" key;
        List.iter
          (fun (o, m) -> Format.fprintf ppf " %s=%a" o Mode.pp m)
          (List.sort (fun (a, _) (b, _) -> String.compare a b) e.held);
        let q = waiting t key in
        if q > 0 then Format.fprintf ppf " (+%d waiting)" q;
        Format.fprintf ppf "@."
      end)
    keys
