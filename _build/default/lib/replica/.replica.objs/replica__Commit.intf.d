lib/replica/commit.mli: Action Group Net Store
