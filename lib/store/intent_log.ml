type decision = Commit | Abort

let pp_decision ppf = function
  | Commit -> Format.pp_print_string ppf "commit"
  | Abort -> Format.pp_print_string ppf "abort"

type prepare_record = {
  coordinator : string;
  writes : (Uid.t * Object_state.t) list;
}

type t = {
  prepares : (string, prepare_record) Hashtbl.t;
  decisions : (string, decision) Hashtbl.t;
}

let create () = { prepares = Hashtbl.create 16; decisions = Hashtbl.create 16 }

let prepare t ~action ~coordinator writes =
  let merged =
    match Hashtbl.find_opt t.prepares action with
    | None -> writes
    | Some { writes = earlier; _ } ->
        (* Later writes win per UID; earlier writes for other UIDs stay. *)
        let kept =
          List.filter
            (fun (uid, _) -> not (List.exists (fun (u, _) -> Uid.equal u uid) writes))
            earlier
        in
        kept @ writes
  in
  Hashtbl.replace t.prepares action { coordinator; writes = merged }

let prepared t ~action = Hashtbl.find_opt t.prepares action

let resolve t ~action = Hashtbl.remove t.prepares action

let pending_writers t uid =
  Hashtbl.fold
    (fun action { writes; _ } acc ->
      if List.exists (fun (u, _) -> Uid.equal u uid) writes then action :: acc
      else acc)
    t.prepares []
  |> List.sort String.compare

let in_doubt t =
  Hashtbl.fold (fun a _ acc -> a :: acc) t.prepares [] |> List.sort String.compare

let record_decision t ~action d = Hashtbl.replace t.decisions action d

let decision_of t ~action = Hashtbl.find_opt t.decisions action

let forget_decision t ~action = Hashtbl.remove t.decisions action

let staged_write t ~action uid =
  match Hashtbl.find_opt t.prepares action with
  | None -> None
  | Some { writes; _ } ->
      Option.map snd (List.find_opt (fun (u, _) -> Uid.equal u uid) writes)
