examples/quickstart.mli:
