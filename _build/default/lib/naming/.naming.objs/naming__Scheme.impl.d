lib/naming/scheme.ml: Format
