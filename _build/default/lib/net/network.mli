(** Simulated network of fail-silent nodes.

    The network owns the set of nodes, the message latency model, crash and
    recovery of nodes, and optional pairwise partitions. It matches the
    paper's failure assumptions (§2.1): nodes are fail-silent — they either
    work as specified or stop — and processes on functioning nodes can
    communicate.

    A node carries:
    - an {e incarnation} counter, bumped on every recovery;
    - an {!Sim.Engine.group} per incarnation: fibers spawned on behalf of
      the node die silently when it crashes;
    - registered {e services} (installed by the RPC layer), which survive
      crashes — the code of a service is on stable storage, per §3.1 —
      while any volatile state they captured is reset through [on_crash]
      callbacks;
    - [on_crash] / [on_recover] hooks used by upper layers (volatile cache
      invalidation, recovery protocols such as the paper's
      update-then-[Include] sequence). *)

type t
(** A simulated network. *)

type node_id = string
(** Nodes are named by short strings ("alpha", "store1", ...), which keeps
    traces readable. *)

exception Unknown_node of node_id
(** Raised when an operation names a node that was never added. *)

val create :
  ?latency:(Sim.Rng.t -> float) ->
  ?detect_delay:float ->
  Sim.Engine.t ->
  t
(** [create eng] is an empty network driven by [eng].
    [latency] samples per-message transit time (default: uniform in
    [\[0.5, 1.5\]]). [detect_delay] is the failure-detector notification
    delay applied when a crash aborts in-flight RPCs (default [1.0]). *)

val engine : t -> Sim.Engine.t
(** The engine driving this network. *)

val trace : t -> Sim.Trace.t
(** The network's trace sink (shared with upper layers by convention). *)

val metrics : t -> Sim.Metrics.t
(** The network's metrics registry (shared with upper layers). *)

val add_node : t -> node_id -> unit
(** [add_node t id] registers a fresh, up node. Raises [Invalid_argument]
    if [id] already exists. *)

val node_ids : t -> node_id list
(** All registered node ids, sorted. *)

val is_up : t -> node_id -> bool
(** Whether the node is currently functioning. *)

val incarnation : t -> node_id -> int
(** The node's incarnation number (0 initially, +1 per recovery). *)

val group : t -> node_id -> Sim.Engine.group
(** The fiber group of the node's current incarnation. Fibers representing
    computation {e on} the node must be spawned into this group. *)

val spawn_on : t -> node_id -> ?name:string -> (unit -> unit) -> unit
(** [spawn_on t id f] runs fiber [f] on node [id] (in its current group).
    Silently does nothing if the node is down. *)

val crash : t -> node_id -> unit
(** [crash t id] stops the node: its fibers die at their suspension points,
    its volatile state is reset via [on_crash] hooks, in-flight RPCs
    against it fail after the detection delay, and messages in transit to
    it are dropped. Idempotent. *)

val recover : t -> node_id -> unit
(** [recover t id] restarts a crashed node with a fresh incarnation and
    runs its [on_recover] hooks (oldest registration first). Idempotent on
    an up node. *)

val on_crash : t -> node_id -> (unit -> unit) -> unit
(** Register a callback run (synchronously) when the node crashes. *)

val on_recover : t -> node_id -> (unit -> unit) -> unit
(** Register a callback run when the node recovers. The callback runs in a
    fresh fiber of the new incarnation. *)

val set_partitioned : t -> node_id -> node_id -> bool -> unit
(** [set_partitioned t a b flag] blocks (or unblocks) message delivery in
    both directions between [a] and [b]. *)

val partitioned : t -> node_id -> node_id -> bool
(** Whether the pair is currently partitioned. *)

val reachable : t -> node_id -> node_id -> bool
(** [reachable t src dst]: [dst] is up and not partitioned from [src]. *)

val sample_latency : t -> float
(** Draw one latency sample from the network's model. *)

val send : t -> src:node_id -> dst:node_id -> (unit -> unit) -> unit
(** [send t ~src ~dst f] delivers [f] to [dst] after one latency sample:
    at delivery time, if [dst] is up and the pair is not partitioned, [f]
    runs as a fresh fiber in [dst]'s group; otherwise the message is
    silently dropped (fail-silent network discards mail for dead nodes). *)

val send_fifo : t -> src:node_id -> dst:node_id -> (unit -> unit) -> unit
(** Like {!send} but deliveries from [src] to [dst] preserve send order
    (per-pair FIFO), as required by the sequencer-based ordered multicast. *)

(* Failure-detector support for the RPC layer. *)

type watch
(** Handle for a registered crash watch. *)

val watch_crash : t -> node_id -> (unit -> unit) -> watch
(** [watch_crash t id f] arranges for [f] to run [detect_delay] after [id]
    crashes, unless {!unwatch}ed first. Used by RPC calls to fail fast when
    the callee dies mid-call, modelling the perfect failure detector the
    paper assumes. *)

val unwatch : t -> node_id -> watch -> unit
(** Cancel a crash watch. *)
