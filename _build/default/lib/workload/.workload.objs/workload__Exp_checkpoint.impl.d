lib/workload/exp_checkpoint.ml: Astring Naming Net Replica Scheme Service Sim Table
