lib/action/resource_host.mli: Net
