type 'a t = {
  messages : 'a Queue.t;
  mutable waiters : unit Engine.resumer list; (* newest first *)
}

let create () = { messages = Queue.create (); waiters = [] }

(* Waiters are woken with a "check again" token rather than handed the
   message directly: a waiter may be stale (its fiber timed out or its group
   was killed, in which case the engine drops the resumption). Waking every
   waiter and letting each re-poll the queue avoids lost wakeups at the cost
   of a small thundering herd, which is negligible at simulation scale. *)
let send mb m =
  Queue.push m mb.messages;
  let waiters = List.rev mb.waiters in
  mb.waiters <- [];
  List.iter (fun resume -> resume (Ok ())) waiters

let rec recv eng mb =
  match Queue.take_opt mb.messages with
  | Some m -> m
  | None ->
      Engine.suspend eng (fun resume -> mb.waiters <- resume :: mb.waiters);
      recv eng mb

let rec recv_timeout eng dt mb =
  match Queue.take_opt mb.messages with
  | Some m -> Ok m
  | None -> (
      let started = Engine.now eng in
      match
        Engine.timeout eng dt (fun resume ->
            mb.waiters <- resume :: mb.waiters)
      with
      | Error _ as e -> e
      | Ok () ->
          let remaining = dt -. (Engine.now eng -. started) in
          if remaining <= 0.0 then Error Engine.Timed_out
          else recv_timeout eng remaining mb)

let try_recv mb = Queue.take_opt mb.messages

let length mb = Queue.length mb.messages
