type node_id = string

exception Unknown_node of node_id

type node = {
  id : node_id;
  mutable up : bool;
  mutable inc : int;
  mutable grp : Sim.Engine.group;
  mutable crash_hooks : (unit -> unit) list; (* newest first *)
  mutable recover_hooks : (unit -> unit) list; (* newest first *)
  mutable watches : (int * (unit -> unit)) list; (* watch id, action *)
  mutable next_watch : int;
  fifo_last : (node_id, float ref) Hashtbl.t;
      (* per-source last FIFO delivery time *)
}

type t = {
  eng : Sim.Engine.t;
  nodes : (node_id, node) Hashtbl.t;
  latency : Sim.Rng.t -> float;
  detect_delay : float;
  net_rng : Sim.Rng.t;
  net_trace : Sim.Trace.t;
  net_metrics : Sim.Metrics.t;
  mutable partitions : (node_id * node_id) list;
}

let default_latency rng = Sim.Rng.uniform rng 0.5 1.5

let create ?(latency = default_latency) ?(detect_delay = 1.0) eng =
  {
    eng;
    nodes = Hashtbl.create 16;
    latency;
    detect_delay;
    net_rng = Sim.Rng.split (Sim.Engine.rng eng);
    net_trace = Sim.Trace.create ();
    net_metrics = Sim.Metrics.create ();
    partitions = [];
  }

let engine t = t.eng
let trace t = t.net_trace
let metrics t = t.net_metrics

let node t id =
  match Hashtbl.find_opt t.nodes id with
  | Some n -> n
  | None -> raise (Unknown_node id)

let add_node t id =
  if Hashtbl.mem t.nodes id then
    invalid_arg (Printf.sprintf "Network.add_node: duplicate node %s" id);
  Hashtbl.add t.nodes id
    {
      id;
      up = true;
      inc = 0;
      grp = Sim.Engine.new_group t.eng;
      crash_hooks = [];
      recover_hooks = [];
      watches = [];
      next_watch = 0;
      fifo_last = Hashtbl.create 4;
    }

let node_ids t =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.nodes [] |> List.sort String.compare

let is_up t id = (node t id).up
let incarnation t id = (node t id).inc
let group t id = (node t id).grp

let spawn_on t id ?name f =
  let n = node t id in
  if n.up then Sim.Engine.spawn t.eng ~group:n.grp ?name f

let record t tag fmt = Sim.Trace.recordf t.net_trace ~now:(Sim.Engine.now t.eng) ~tag fmt

let crash t id =
  let n = node t id in
  if n.up then begin
    n.up <- false;
    record t "net" "crash %s (inc %d)" id n.inc;
    Sim.Metrics.incr t.net_metrics "net.crashes";
    Sim.Engine.kill_group t.eng n.grp;
    List.iter (fun f -> f ()) (List.rev n.crash_hooks);
    (* Fire crash watches after the detection delay, modelling the failure
       detector's notification latency. *)
    let fired = n.watches in
    n.watches <- [];
    List.iter
      (fun (_, action) ->
        Sim.Engine.schedule t.eng ~delay:t.detect_delay (fun () -> action ()))
      fired
  end

let recover t id =
  let n = node t id in
  if not n.up then begin
    n.up <- true;
    n.inc <- n.inc + 1;
    n.grp <- Sim.Engine.new_group t.eng;
    record t "net" "recover %s (inc %d)" id n.inc;
    Sim.Metrics.incr t.net_metrics "net.recoveries";
    let hooks = List.rev n.recover_hooks in
    Sim.Engine.spawn t.eng ~group:n.grp ~name:(id ^ ".recover") (fun () ->
        List.iter (fun f -> f ()) hooks)
  end

let on_crash t id f =
  let n = node t id in
  n.crash_hooks <- f :: n.crash_hooks

let on_recover t id f =
  let n = node t id in
  n.recover_hooks <- f :: n.recover_hooks

let pair a b = if String.compare a b <= 0 then (a, b) else (b, a)

let set_partitioned t a b flag =
  let p = pair a b in
  let without = List.filter (fun q -> q <> p) t.partitions in
  t.partitions <- (if flag then p :: without else without)

let partitioned t a b = List.mem (pair a b) t.partitions

let reachable t src dst = (node t dst).up && not (partitioned t src dst)

let sample_latency t = t.latency t.net_rng

(* Delivery: the message is "in the wire" for one latency sample; at
   delivery time it runs on the destination only if the destination is up
   and the pair is unpartitioned at that moment. The destination may have
   crashed and recovered while the message was in flight — it is then
   delivered to the new incarnation, as a real network would. *)
let deliver t ~src ~dst ~delay f =
  ignore src;
  Sim.Engine.schedule t.eng ~delay (fun () ->
      let n = node t dst in
      if n.up && not (partitioned t src dst) then
        Sim.Engine.spawn t.eng ~group:n.grp ~name:(src ^ "->" ^ dst) f
      else begin
        record t "net" "drop %s->%s (dst down or partitioned)" src dst;
        Sim.Metrics.incr t.net_metrics "net.dropped"
      end)

let send t ~src ~dst f =
  Sim.Metrics.incr t.net_metrics "net.msgs";
  deliver t ~src ~dst ~delay:(sample_latency t) f

let send_fifo t ~src ~dst f =
  Sim.Metrics.incr t.net_metrics "net.msgs";
  let n = node t dst in
  let last =
    match Hashtbl.find_opt n.fifo_last src with
    | Some r -> r
    | None ->
        let r = ref neg_infinity in
        Hashtbl.add n.fifo_last src r;
        r
  in
  let now = Sim.Engine.now t.eng in
  let arrival = Float.max (now +. sample_latency t) (!last +. 1e-6) in
  last := arrival;
  deliver t ~src ~dst ~delay:(arrival -. now) f

type watch = int

let watch_crash t id f =
  let n = node t id in
  let w = n.next_watch in
  n.next_watch <- w + 1;
  if n.up then n.watches <- (w, f) :: n.watches
  else
    (* Already down: notify after the detection delay. *)
    Sim.Engine.schedule t.eng ~delay:t.detect_delay (fun () -> f ());
  w

let unwatch t id w =
  let n = node t id in
  n.watches <- List.filter (fun (w', _) -> w' <> w) n.watches
