(** Counting semaphore for fibers.

    Used to bound concurrency (e.g. a node's server slots) and as a simple
    mutex when created with capacity 1. *)

type t
(** A counting semaphore. *)

val create : int -> t
(** [create n] is a semaphore with [n] initial permits.
    Raises [Invalid_argument] if [n < 0]. *)

val acquire : Engine.t -> t -> unit
(** [acquire eng s] takes one permit, suspending until one is available. *)

val try_acquire : t -> bool
(** [try_acquire s] takes a permit without blocking, returning whether it
    succeeded. *)

val release : t -> unit
(** [release s] returns one permit, waking waiters. *)

val available : t -> int
(** Current number of free permits. *)

val with_permit : Engine.t -> t -> (unit -> 'a) -> 'a
(** [with_permit eng s f] runs [f] holding one permit, releasing it on
    normal return or exception. Note that if the calling fiber's group is
    killed while [f] is suspended, the permit is {e not} released — which is
    the desired crash semantics (a crashed node does not politely give back
    its resources; recovery code must recreate the semaphore). *)
