type status = Running | Committed | Aborted

exception Abort of string

type decision_reply = D_commit | D_abort | D_active | D_unknown

type participant = {
  pa_name : string;
  pa_prepare : unit -> bool;
  pa_commit : unit -> unit;
  pa_abort : unit -> unit;
}

type runtime = {
  sh : Store_host.t;
  rh : Resource_host.t;
  mutable next_serial : int;
  (* Volatile per-coordinator-node set of running top-level actions, used
     to answer D_active to recovering participants. Cleared by node crash
     hooks: a crashed coordinator forgets its running actions, which is
     exactly the presumed-abort semantics. *)
  active : (string, Net.Network.node_id) Hashtbl.t; (* action -> coordinator *)
  decision_nodes : (Net.Network.node_id, unit) Hashtbl.t;
  ep_decision : (string, decision_reply) Net.Rpc.endpoint;
  rt_retry : Net.Retry.t;
}

let make_runtime sh rh =
  {
    sh;
    rh;
    next_serial = 0;
    active = Hashtbl.create 32;
    decision_nodes = Hashtbl.create 8;
    ep_decision = Net.Rpc.endpoint "action.decision";
    rt_retry = Net.Retry.create (Net.Rpc.network (Store_host.rpc sh));
  }

let store_host rt = rt.sh
let resource_host rt = rt.rh
let rpc rt = Store_host.rpc rt.sh
let network rt = Net.Rpc.network (rpc rt)
let engine rt = Net.Network.engine (network rt)
let retry rt = rt.rt_retry

type t = {
  rt : runtime;
  aid : Action_id.t;
  coord : Net.Network.node_id;
  parent : t option;
  mutable kids : int;
  mutable st : status;
  mutable enlisted : (Net.Network.node_id * string * bool ref) list;
      (* node, resource, required: must a phase-1 failure abort? *)
  mutable participants : participant list; (* newest first *)
  mutable pre_hooks : (unit -> (unit, string) result) list; (* newest first *)
  mutable undo_hooks : (unit -> unit) list; (* newest first *)
  mutable post_hooks : (unit -> unit) list; (* newest first *)
  mutable post_abort_hooks : (unit -> unit) list; (* newest first *)
  mutable deadline : float option; (* absolute virtual time *)
}

let id t = t.aid
let node t = t.coord
let status t = t.st
let runtime_of t = t.rt
let owner t = Action_id.to_string t.aid

let metrics t = Net.Network.metrics (network t.rt)

let tracef t fmt =
  Sim.Trace.recordf
    (Net.Network.trace (network t.rt))
    ~now:(Sim.Engine.now (engine t.rt))
    ~tag:"action" fmt

(* Install the coordinator decision service on a node the first time it
   coordinates. Consults the volatile active set, then the stable decision
   record; absence of both is presumed abort. *)
let ensure_decision_service rt coord =
  if not (Hashtbl.mem rt.decision_nodes coord) then begin
    Hashtbl.add rt.decision_nodes coord ();
    Net.Rpc.serve (rpc rt) ~node:coord rt.ep_decision (fun action ->
        match Hashtbl.find_opt rt.active action with
        | Some c when String.equal c coord -> D_active
        | Some _ | None -> (
            if Store_host.hosted rt.sh coord then
              match
                Store.Intent_log.decision_of (Store_host.log rt.sh coord) ~action
              with
              | Some Store.Intent_log.Commit -> D_commit
              | Some Store.Intent_log.Abort -> D_abort
              | None -> D_unknown
            else D_unknown));
    Net.Network.on_crash (network rt) coord (fun () ->
        (* The crashed coordinator forgets its running actions. *)
        let stale =
          Hashtbl.fold
            (fun action c acc -> if String.equal c coord then action :: acc else acc)
            rt.active []
        in
        List.iter (Hashtbl.remove rt.active) stale)
  end

let query_decision rt ~from ~coordinator ~action =
  Net.Rpc.call (rpc rt) ~from ~dst:coordinator rt.ep_decision action

let begin_top ?deadline rt ~node =
  ensure_decision_service rt node;
  let serial = rt.next_serial in
  rt.next_serial <- serial + 1;
  let aid = Action_id.top ~origin:node ~serial in
  Hashtbl.replace rt.active (Action_id.to_string aid) node;
  Sim.Metrics.incr (Net.Network.metrics (network rt)) "action.begin_top";
  (* [deadline] is a relative budget; store it absolute so nested actions
     started later inherit the remaining (not a fresh) budget. *)
  let deadline =
    Option.map (fun d -> Sim.Engine.now (engine rt) +. d) deadline
  in
  {
    rt;
    aid;
    coord = node;
    parent = None;
    kids = 0;
    st = Running;
    enlisted = [];
    participants = [];
    pre_hooks = [];
    undo_hooks = [];
    post_hooks = [];
    post_abort_hooks = [];
    deadline;
  }

let begin_nested parent =
  if parent.st <> Running then invalid_arg "begin_nested: parent not running";
  parent.kids <- parent.kids + 1;
  let aid = Action_id.child parent.aid ~serial:parent.kids in
  Sim.Metrics.incr (metrics parent) "action.begin_nested";
  {
    rt = parent.rt;
    aid;
    coord = parent.coord;
    parent = Some parent;
    kids = 0;
    st = Running;
    enlisted = [];
    participants = [];
    pre_hooks = [];
    undo_hooks = [];
    post_hooks = [];
    post_abort_hooks = [];
    deadline = parent.deadline;
  }

let begin_nested_top t =
  let a = begin_top t.rt ~node:t.coord in
  (* A nested-top serves the same user operation: it inherits the
     enclosing action's remaining deadline budget. *)
  a.deadline <- t.deadline;
  a

let deadline t = t.deadline

let enlist t ?(required = true) ~node ~resource () =
  if t.st <> Running then invalid_arg "enlist: action not running";
  match
    List.find_opt (fun (n, r, _) -> String.equal n node && String.equal r resource)
      t.enlisted
  with
  | Some (_, _, req) -> if required then req := true
  | None -> t.enlisted <- (node, resource, ref required) :: t.enlisted

let add_participant t ~name ~prepare ~commit ~abort =
  if t.st <> Running then invalid_arg "add_participant: action not running";
  t.participants <-
    { pa_name = name; pa_prepare = prepare; pa_commit = commit; pa_abort = abort }
    :: t.participants

let before_commit t f = t.pre_hooks <- f :: t.pre_hooks
let on_abort t f = t.undo_hooks <- f :: t.undo_hooks
let after_commit t f = t.post_hooks <- f :: t.post_hooks
let after_abort t f = t.post_abort_hooks <- f :: t.post_abort_hooks

let deactivate t =
  if Action_id.is_top t.aid then Hashtbl.remove t.rt.active (owner t)

(* Phase-2 notification of an enlisted resource. Releasing a resource
   must not be fire-and-forget: a release message lost to the network
   leaves the resource's locks and staged state held by a completed
   action forever (nothing re-sends it — the decision is already durable
   on this side only). But it must not block the action's completion
   either: the decision is made, and a coordinator wedged behind a
   partition would stall its client for the partition's whole lifetime.
   So: one inline attempt (the fault-free fast path, unchanged), and on
   failure with the node still up, a reaper fiber keeps retrying in the
   background until the release lands or the node dies — once it crashes
   its volatile locks and stage die with it, so stopping is safe. No
   [~dst]: an unreachable-but-up node is a link problem, not a
   node-health signal, and must not open the destination's breaker. *)
let release_resource t ~rnode ~op call =
  let net = network t.rt in
  let up () = Net.Network.is_up net rnode in
  match call () with
  | Ok () -> ()
  | Error _ when not (up ()) -> () (* volatile state died with the node *)
  | Error _ ->
      let action = owner t in
      Sim.Metrics.incr (metrics t) "action.release_deferred";
      Net.Network.spawn_on net t.coord
        ~name:(Printf.sprintf "%s.release:%s@%s" t.coord action rnode)
        (fun () ->
          match
            Net.Retry.run t.rt.rt_retry ~op
              (Net.Retry.policy ~attempts:60 ~base:2.0 ~factor:1.5
                 ~max_delay:8.0 ())
              (fun () ->
                if not (up ()) then Ok ()
                else
                  match call () with
                  | Ok () -> Ok ()
                  | Error _ when not (up ()) -> Ok ()
                  | Error e -> Error (Net.Rpc.error_to_string e))
          with
          | Ok () -> ()
          | Error e ->
              tracef t "%s phase-2 loss at %s: %s" action rnode e;
              Sim.Metrics.incr (metrics t) "action.phase2_losses")

(* Abort: undo newest-first (strictly serial — each undo may depend on
   the effects of later-installed ones), then tell every participant and
   every resource, each stage as one parallel fan-out. *)
let abort t ~reason =
  if t.st = Running then begin
    t.st <- Aborted;
    tracef t "%s abort: %s" (owner t) reason;
    Sim.Metrics.incr (metrics t) "action.aborts";
    List.iter (fun undo -> undo ()) t.undo_hooks;
    let eng = engine t.rt in
    ignore
      (Sim.Join.all eng
         (List.map (fun p () -> p.pa_abort ()) (List.rev t.participants)));
    ignore
      (Sim.Join.all eng
         (List.map
            (fun (rnode, resource, _) () ->
              release_resource t ~rnode ~op:"action.release_abort" (fun () ->
                  Resource_host.abort t.rt.rh ~from:t.coord ~node:rnode
                    ~resource ~action:(owner t)))
            (List.rev t.enlisted)));
    deactivate t;
    List.iter (fun post -> post ()) (List.rev t.post_abort_hooks)
  end

let commit_nested t parent =
  (* Everything folds into the parent; nothing becomes durable. *)
  let child_owner = owner t in
  let parent_owner = owner parent in
  let enlisted = List.rev t.enlisted in
  (* Scatter the transfer RPCs (independent resources), then merge into
     the parent's enlistment serially — the merge mutates shared state. *)
  let transfers =
    Sim.Join.all (engine t.rt)
      (List.map
         (fun (rnode, resource, _) () ->
           Resource_host.transfer t.rt.rh ~from:t.coord ~node:rnode ~resource
             ~action:child_owner ~parent:parent_owner)
         enlisted)
  in
  List.iter2
    (fun (rnode, resource, required) transferred ->
      (match transferred with
      | Ok () -> ()
      | Error e ->
          (* The resource's node crashed: its volatile locks are gone;
             nothing to transfer. *)
          tracef t "%s transfer to %s lost at %s: %s" child_owner parent_owner
            rnode (Net.Rpc.error_to_string e));
      match
        List.find_opt
          (fun (n, r, _) -> String.equal n rnode && String.equal r resource)
          parent.enlisted
      with
      | Some (_, _, req) -> if !required then req := true
      | None -> parent.enlisted <- (rnode, resource, required) :: parent.enlisted)
    enlisted transfers;
  parent.participants <- t.participants @ parent.participants;
  parent.pre_hooks <- t.pre_hooks @ parent.pre_hooks;
  parent.undo_hooks <- t.undo_hooks @ parent.undo_hooks;
  parent.post_hooks <- t.post_hooks @ parent.post_hooks;
  parent.post_abort_hooks <- t.post_abort_hooks @ parent.post_abort_hooks;
  t.st <- Committed;
  Sim.Metrics.incr (metrics t) "action.nested_commits";
  Ok ()

let commit_top t =
  let action = owner t in
  (* Before-commit hooks: the paper's commit-time state copy and StA
     exclusion run here and may still abort the action. *)
  let rec run_pre = function
    | [] -> Ok ()
    | hook :: rest -> (
        match hook () with
        | Ok () -> run_pre rest
        | Error reason -> Error reason)
  in
  match run_pre (List.rev t.pre_hooks) with
  | Error reason ->
      abort t ~reason;
      Error reason
  | Ok () -> (
      (* Phase 1, scattered: every participant prepares at once; if all
         vote yes, every resource prepares at once. The first no-vote (in
         registration order, for deterministic abort reasons) decides; a
         loser that prepared anyway is cleaned up by the abort fan-out,
         which notifies all participants and resources regardless. *)
      let eng = engine t.rt in
      let participants = List.rev t.participants in
      let resources = List.rev t.enlisted in
      let participant_fail =
        Sim.Join.all eng
          (List.map
             (fun p () ->
               if p.pa_prepare () then None
               else
                 Some (Printf.sprintf "participant %s voted no" p.pa_name))
             participants)
        |> List.find_map Fun.id
      in
      let vote_fail =
        match participant_fail with
        | Some _ -> participant_fail
        | None ->
            Sim.Join.all eng
              (List.map
                 (fun (rnode, resource, required) () ->
                   match
                     Resource_host.prepare t.rt.rh ~from:t.coord ~node:rnode
                       ~resource ~action
                   with
                   | Ok true -> None
                   | Ok false ->
                       Some
                         (Printf.sprintf "resource %s@%s voted no" resource
                            rnode)
                   | Error e ->
                       (* A crashed replica of a group is masked (its
                          volatile state is gone anyway); a required
                          resource aborts. *)
                       if !required then
                         Some
                           (Printf.sprintf "resource %s@%s unreachable: %s"
                              resource rnode (Net.Rpc.error_to_string e))
                       else begin
                         tracef t "%s: tolerating lost replica %s@%s (%s)"
                           action resource rnode (Net.Rpc.error_to_string e);
                         None
                       end)
                 resources)
            |> List.find_map Fun.id
      in
      match vote_fail with
      | Some reason ->
          abort t ~reason;
          Error reason
      | None ->
          (* Decision point: durably record Commit on the coordinator
             (presumed abort records only commits). *)
          Store_host.record_decision t.rt.sh ~node:t.coord ~action
            Store.Intent_log.Commit;
          deactivate t;
          t.st <- Committed;
          tracef t "%s commit" action;
          Sim.Metrics.incr (metrics t) "action.commits";
          (* Phase 2, scattered: best effort; a crashed participant
             resolves through recovery against our decision record. *)
          ignore
            (Sim.Join.all eng
               (List.map (fun p () -> p.pa_commit ()) participants));
          ignore
            (Sim.Join.all eng
               (List.map
                  (fun (rnode, resource, _) () ->
                    release_resource t ~rnode ~op:"action.release_commit"
                      (fun () ->
                        Resource_host.commit t.rt.rh ~from:t.coord ~node:rnode
                          ~resource ~action))
                  resources));
          List.iter (fun post -> post ()) (List.rev t.post_hooks);
          Ok ())

let commit t =
  if t.st <> Running then Error "action not running"
  else
    match t.parent with
    | Some parent when parent.st = Running -> commit_nested t parent
    | Some _ -> Error "parent no longer running"
    | None -> commit_top t

let run_body t body =
  match body t with
  | v -> (
      match commit t with Ok () -> Ok v | Error reason -> Error reason)
  | exception Abort reason ->
      abort t ~reason;
      Error reason
  | exception e ->
      abort t ~reason:(Printexc.to_string e);
      raise e

let atomically ?deadline rt ~node body =
  run_body (begin_top ?deadline rt ~node) body
let atomically_nested parent body = run_body (begin_nested parent) body
let atomically_nested_top parent body = run_body (begin_nested_top parent) body
