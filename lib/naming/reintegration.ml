let art t = Replica.Server.atomic_runtime (Replica.Group.server_runtime (Binder.group_runtime t))

let netw t = Action.Atomic.network (art t)

let tracef t fmt =
  Sim.Trace.recordf
    (Net.Network.trace (netw t))
    ~now:(Sim.Engine.now (Action.Atomic.engine (art t)))
    ~tag:"reintegrate" fmt

(* Fetch the newest committed state of [uid] among the given store nodes. *)
let newest_state t ~from ~stores uid =
  let sh = Action.Atomic.store_host (art t) in
  List.fold_left
    (fun best store ->
      if String.equal store from then best
      else
        match Action.Store_host.read sh ~from ~store uid with
        | Ok (Some s) -> (
            match best with
            | Some b when not (Store.Object_state.newer_than s b) -> best
            | _ -> Some s)
        | Ok None | Error _ -> best)
    None stores

(* Bounded optimistic attempts before falling back to the classic locked
   membership round (mirrors {!Replica.Commit}'s validate retries). *)
let optimistic_attempts = 3

(* Classic Include: the write-lock round of §4.2, fence = granted
   version. *)
let include_classic r ~act ~uid node =
  match Router.include_ r ~act ~uid node with
  | Ok (Gvd.Granted v) -> v
  | Ok (Gvd.Refused why) | Ok (Gvd.Busy why) -> raise (Action.Atomic.Abort why)
  | Ok (Gvd.Moved dest) -> raise (Action.Atomic.Abort ("wrong shard: " ^ dest))
  | Error e -> raise (Action.Atomic.Abort (Net.Rpc.error_to_string e))

(* Optimistic Include: snapshot the St revision lock-free, then validate
   it inside the Include round ({!Gvd.include_validated}). A conflict —
   some other membership change or versioned commit bumped the revision
   in between — kept the write fence, so the re-read revision can no
   longer move and the bounded retry converges; exhaustion falls back to
   the classic locked round so churn cannot starve a reintegration. *)
let include_fence t r ~act ~node ~optimistic uid =
  if not optimistic then include_classic r ~act ~uid node
  else
    let rec go attempt =
      match Router.get_view_commit r ~from:node uid with
      | Ok (Gvd.Granted (_, rev)) -> (
          match Router.include_validated r ~act ~uid ~rev node with
          | Ok (Gvd.Granted (true, v)) -> v
          | Ok (Gvd.Granted (false, _)) ->
              if attempt + 1 < optimistic_attempts then go (attempt + 1)
              else begin
                Sim.Metrics.incr
                  (Net.Network.metrics (netw t))
                  "reintegrate.optimistic_fallbacks";
                include_classic r ~act ~uid node
              end
          | Ok (Gvd.Refused why) | Ok (Gvd.Busy why) ->
              raise (Action.Atomic.Abort why)
          | Ok (Gvd.Moved dest) ->
              raise (Action.Atomic.Abort ("wrong shard: " ^ dest))
          | Error e -> raise (Action.Atomic.Abort (Net.Rpc.error_to_string e)))
      | _ ->
          (* Snapshot unreachable: the locked round talks to the same
             shard and will surface the real error. *)
          include_classic r ~act ~uid node
    in
    go 0

let reintegrate_store_one t ?(optimistic = false) ~node uid =
  let r = Binder.router t in
  let sh = Action.Atomic.store_host (art t) in
  Action.Atomic.atomically (art t) ~node (fun act ->
      (* Include first: its write lock serialises us against every client
         holding a read lock on the entry, so the fetch below sees the
         final committed state. The granted fence is the committed
         version this node must reach before the inclusion may commit. *)
      let fence = include_fence t r ~act ~node ~optimistic uid in
      let sources =
        match Router.entry_info r ~from:node uid with
        | Ok (Some info) -> info.Gvd.ei_st_home
        | Ok None | Error _ -> []
      in
      let ours = Store.Object_store.read (Action.Store_host.objects sh node) uid in
      let best =
        match (newest_state t ~from:node ~stores:sources uid, ours) with
        | Some fetched, Some mine ->
            if Store.Object_state.newer_than fetched mine then Some fetched
            else Some mine
        | Some fetched, None -> Some fetched
        | None, mine -> mine
      in
      match best with
      | Some candidate
        when Store.Version.compare candidate.Store.Object_state.version fence >= 0
        ->
          let stale =
            match ours with
            | Some mine -> Store.Object_state.newer_than candidate mine
            | None -> true
          in
          if stale then begin
            Action.Store_host.seed sh node uid candidate;
            tracef t "%s refreshed %a to %a" node Store.Uid.pp uid
              Store.Version.pp candidate.Store.Object_state.version
          end
      | Some _ | None ->
          (* Every reachable copy is older than the committed fence: the
             newest state lives only on nodes that are currently down.
             Joining StA now would serve rewound activations — stay out
             and retry later. *)
          Sim.Metrics.incr (Net.Network.metrics (netw t)) "reintegrate.fenced";
          raise (Action.Atomic.Abort "latest committed state unreachable"))

let reintegrate_store_now t ?optimistic ~node ?(retry_delay = 2.0) () =
  let uids =
    match Router.stored_on (Binder.router t) ~from:node node with
    | Ok uids -> uids
    | Error _ -> []
  in
  List.iter
    (fun uid ->
      match
        Net.Retry.run
          (Action.Atomic.retry (art t))
          ~op:"reintegrate.include"
          (Net.Retry.policy ~attempts:20 ~base:retry_delay ~factor:1.5
             ~max_delay:8.0 ())
          (fun () -> reintegrate_store_one t ?optimistic ~node uid)
      with
      | Ok () ->
          Sim.Metrics.incr (Net.Network.metrics (netw t)) "reintegrate.includes"
      | Error _ -> ())
    uids

let attach_store_node t ?optimistic ~node ?retry_delay () =
  Net.Network.on_recover (netw t) node (fun () ->
      reintegrate_store_now t ?optimistic ~node ?retry_delay ())

(* Exclude a sick (but possibly still-up) store from one object's [St],
   driven by an observer node — the autonomic controller's half of §4.2,
   where the exclusion is proposed by whoever detected the failure
   rather than by a commit that tripped over it. *)
let exclude_store_one t ?(optimistic = true) ~from ~node uid =
  let r = Binder.router t in
  Action.Atomic.atomically (art t) ~node:from (fun act ->
      let classic () =
        match Router.exclude r ~act [ (uid, [ node ]) ] with
        | Ok (Gvd.Granted ()) -> ()
        | Ok (Gvd.Refused why) | Ok (Gvd.Busy why) ->
            raise (Action.Atomic.Abort why)
        | Ok (Gvd.Moved dest) ->
            raise (Action.Atomic.Abort ("wrong shard: " ^ dest))
        | Error e -> raise (Action.Atomic.Abort (Net.Rpc.error_to_string e))
      in
      if not optimistic then classic ()
      else
        let rec go attempt =
          match Router.get_view_commit r ~from uid with
          | Ok (Gvd.Granted (st, rev)) ->
              if not (List.mem node st) then
                raise (Action.Atomic.Abort "not an St member")
              else if List.length st <= 1 then
                raise (Action.Atomic.Abort "would empty St")
              else (
                match Router.exclude_validated r ~act ~uid ~rev node with
                | Ok (Gvd.Granted (true, _)) -> ()
                | Ok (Gvd.Granted (false, _)) ->
                    if attempt + 1 < optimistic_attempts then go (attempt + 1)
                    else begin
                      Sim.Metrics.incr
                        (Net.Network.metrics (netw t))
                        "reintegrate.optimistic_fallbacks";
                      classic ()
                    end
                | Ok (Gvd.Refused why) | Ok (Gvd.Busy why) ->
                    raise (Action.Atomic.Abort why)
                | Ok (Gvd.Moved dest) ->
                    raise (Action.Atomic.Abort ("wrong shard: " ^ dest))
                | Error e ->
                    raise (Action.Atomic.Abort (Net.Rpc.error_to_string e)))
          | _ -> classic ()
        in
        go 0)

let exclude_store_now t ?optimistic ~from ~node () =
  let r = Binder.router t in
  let uids =
    match Router.stored_on r ~from node with Ok uids -> uids | Error _ -> []
  in
  List.fold_left
    (fun excluded uid ->
      (* Skip objects where [node] is no longer a member (a commit's own
         §4.2 exclusion beat us to it) or is the last copy: excluding
         the only replica would lose the object. *)
      match Router.get_view_snapshot r ~from uid with
      | Ok (Gvd.Granted (st, _)) when List.mem node st && List.length st > 1
        -> (
          match exclude_store_one t ?optimistic ~from ~node uid with
          | Ok () ->
              Sim.Metrics.incr
                (Net.Network.metrics (netw t))
                "reintegrate.excludes";
              excluded + 1
          | Error why ->
              tracef t "%s could not exclude %s from %a: %s" from node
                Store.Uid.pp uid why;
              excluded)
      | _ -> excluded)
    0 uids

let reinsert_server_now t ~node ?(retry_delay = 2.0) () =
  let eng = Action.Atomic.engine (art t) in
  let r = Binder.router t in
  let uids =
    match Router.served_by r ~from:node node with
    | Ok uids -> uids
    | Error _ -> []
  in
  List.iter
    (fun uid ->
      let started = Sim.Engine.now eng in
      let outcome =
        Net.Retry.run
          (Action.Atomic.retry (art t))
          ~op:"reintegrate.insert"
          (Net.Retry.policy ~attempts:60 ~base:retry_delay ~factor:1.3
             ~max_delay:8.0 ())
          (fun () ->
            let res =
              Action.Atomic.atomically (art t) ~node (fun act ->
                  match Router.insert r ~act ~uid node with
                  | Ok (Gvd.Granted ()) -> `Done
                  | Ok (Gvd.Busy _) | Ok (Gvd.Moved _) -> `Busy
                  | Ok (Gvd.Refused why) -> raise (Action.Atomic.Abort why)
                  | Error e ->
                      raise (Action.Atomic.Abort (Net.Rpc.error_to_string e)))
            in
            match res with
            | Ok `Done -> Ok ()
            | Ok `Busy ->
                (* Quiescence-pull: the Insert is blocked on use-list
                   counters that may only be waiting out the coalescing
                   window — flush those credits now instead of sleeping
                   the window out. *)
                Binder.pull_credits t ~uid;
                Error "object not quiescent"
            | Error e -> Error e)
      in
      match outcome with
      | Ok () ->
          let elapsed = Sim.Engine.now eng -. started in
          Sim.Metrics.observe
            (Net.Network.metrics (netw t))
            "reintegrate.insert_delay" elapsed;
          tracef t "%s reinserted into Sv(%a) after %.2f" node Store.Uid.pp uid
            elapsed
      | Error _ ->
          Sim.Metrics.incr
            (Net.Network.metrics (netw t))
            "reintegrate.insert_gave_up")
    uids

let attach_server_node t ~node ?retry_delay () =
  Net.Network.on_recover (netw t) node (fun () ->
      reinsert_server_now t ~node ?retry_delay ())
