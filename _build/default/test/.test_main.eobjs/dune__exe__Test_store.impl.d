test/test_store.ml: Alcotest Intent_log List Object_state Object_store QCheck Store String Test_util Uid Version
