lib/workload/exp_fig1.ml: Int64 List Net Sim Table
