(** Administration: changing the degree of replication at runtime.

    §2.3(1) requires that "changes to the degree of replication for an
    object ... are reflected in the naming and binding service without
    causing inconsistencies to current users", and §4.1.2 notes that the
    [Insert] and [Remove] operations "can be used by specific application
    programs for explicitly changing the membership of SvA". This module
    packages those administrative programs:

    - {!add_server}: admit a new server-capable node to [SvA]. The
      operation runs in its own top-level action; its write lock (and
      [Insert]'s quiescence requirement) serialise it against current
      users, so a binding in progress either completes against the old
      membership or starts against the new one — never a mixture.
    - {!retire_server}: remove a node from [SvA] and passivate any
      quiescent instance it still runs.
    - {!add_store}: extend [StA]: copy the latest committed state onto the
      new node's object store {e under the entry's write lock}, then
      [Include] it — the same lock-first discipline as crash
      reintegration, and for the same reason (no commit may slip between
      the copy and the inclusion).
    - {!retire_store}: shrink [StA] with [Exclude] (the node's stored
      state is left in place but will never be read again, and its
      [st_home] membership is dropped so recovery does not re-include
      it). *)

type error = Busy of string | Refused of string | Unavailable of string

val error_to_string : error -> string
val pp_error : Format.formatter -> error -> unit

val add_server :
  Binder.t ->
  from:Net.Network.node_id ->
  uid:Store.Uid.t ->
  Net.Network.node_id ->
  (unit, error) result
(** Run in a fiber on [from]. [Busy] means the object is currently in use
    (retry later, as a recovering server would). *)

val retire_server :
  Binder.t ->
  from:Net.Network.node_id ->
  uid:Store.Uid.t ->
  Net.Network.node_id ->
  (unit, error) result

val add_store :
  Binder.t ->
  server_rt:Replica.Server.runtime ->
  from:Net.Network.node_id ->
  uid:Store.Uid.t ->
  Net.Network.node_id ->
  (unit, error) result
(** The target node must already host an object store
    ({!Action.Store_host.add}). *)

val retire_store :
  Binder.t ->
  from:Net.Network.node_id ->
  uid:Store.Uid.t ->
  Net.Network.node_id ->
  (unit, error) result
