let crash_at net ~at id =
  let eng = Network.engine net in
  let delay = at -. Sim.Engine.now eng in
  Sim.Engine.schedule eng ~delay (fun () -> Network.crash net id)

let recover_at net ~at id =
  let eng = Network.engine net in
  let delay = at -. Sim.Engine.now eng in
  Sim.Engine.schedule eng ~delay (fun () -> Network.recover net id)

let crash_for net ~at ~duration id =
  crash_at net ~at id;
  recover_at net ~at:(at +. duration) id

let at_time net ~at f =
  let eng = Network.engine net in
  let delay = at -. Sim.Engine.now eng in
  Sim.Engine.schedule eng ~delay f

let partition_for net ~at ~duration a b =
  at_time net ~at (fun () -> Network.set_partitioned net a b true);
  at_time net ~at:(at +. duration) (fun () ->
      Network.set_partitioned net a b false)

let cut_oneway_for net ~at ~duration ~src ~dst =
  at_time net ~at (fun () -> Network.set_oneway_cut net ~src ~dst true);
  at_time net ~at:(at +. duration) (fun () ->
      Network.set_oneway_cut net ~src ~dst false)

let link_faults_for net ~at ~duration ?drop ?dup ?reorder ?spike_prob ?spike
    ~src ~dst () =
  at_time net ~at (fun () ->
      Network.set_link_fault net ?drop ?dup ?reorder ?spike_prob ?spike ~src
        ~dst ());
  at_time net ~at:(at +. duration) (fun () ->
      Network.clear_link_fault net ~src ~dst)

let brownout_for net ~at ~duration ?prob ?(lo = 15.0) ?(hi = 25.0) node =
  at_time net ~at (fun () -> Network.set_brownout net ?prob ~lo ~hi node);
  at_time net ~at:(at +. duration) (fun () -> Network.clear_brownout net node)

let heal_at net ~at = at_time net ~at (fun () -> Network.clear_all_faults net)

let churn net ~rng ~mttf ~mttr ?(until = infinity) id =
  let eng = Network.engine net in
  Sim.Engine.spawn eng ~name:(id ^ ".churn") (fun () ->
      let rec live () =
        Sim.Engine.sleep eng (Sim.Rng.exponential rng mttf);
        if Sim.Engine.now eng < until then begin
          Network.crash net id;
          Sim.Engine.sleep eng (Sim.Rng.exponential rng mttr);
          Network.recover net id;
          live ()
        end
      in
      live ())
