let resolve_in_doubt rt ~node ?(retry_delay = 2.0) () =
  let sh = Atomic.store_host rt in
  let eng = Atomic.engine rt in
  let log = Store_host.log sh node in
  let net = Atomic.network rt in
  let tracef fmt =
    Sim.Trace.recordf (Net.Network.trace net) ~now:(Sim.Engine.now eng)
      ~tag:"recovery" fmt
  in
  let apply action =
    match Store.Intent_log.prepared log ~action with
    | None -> ()
    | Some { Store.Intent_log.coordinator; _ } -> (
        let rec ask () =
          match Atomic.query_decision rt ~from:node ~coordinator ~action with
          | Ok Atomic.D_commit ->
              tracef "%s: in-doubt %s -> commit" node action;
              (* Apply through the local commit path (idempotent). *)
              (match
                 Store_host.commit sh ~from:node ~store:node ~action
               with
              | Ok () -> ()
              | Error _ ->
                  (* Local call can only fail if we crashed again;
                     the next recovery will retry. *)
                  ())
          | Ok (Atomic.D_abort | Atomic.D_unknown) ->
              tracef "%s: in-doubt %s -> presumed abort" node action;
              Store.Intent_log.resolve log ~action
          | Ok Atomic.D_active ->
              Sim.Engine.sleep eng retry_delay;
              ask ()
          | Error _ ->
              Sim.Engine.sleep eng retry_delay;
              ask ()
        in
        ask ())
  in
  let rec drain () =
    match Store.Intent_log.in_doubt log with
    | [] -> ()
    | actions ->
        List.iter apply actions;
        drain ()
  in
  drain ()

let attach rt ~node =
  Net.Network.on_recover (Atomic.network rt) node (fun () ->
      resolve_in_doubt rt ~node ())

(* Break write reservations whose coordinator is partitioned away.
   [guard_prepares] resolves in-doubt records when the coordinator
   {e crashes}; a partition severs the coordinator's abort fan-out without
   killing it, so its reservation would block every future writer of the
   object until the cut heals — and nothing retries the withdrawal after
   healing. When a prepare is refused by such a reservation, probe the
   blocker's coordinator: a commit decision is applied locally, anything
   else is presumed abort; if the coordinator stays unreachable through
   the probe budget, presume abort rather than reserve the object
   forever (backward validation keeps a wrongly-broken reservation safe —
   a stale copy is caught at the next prepare). Reachable coordinators
   are never probed: live contention resolves through the normal
   fan-out, so healthy runs see no extra traffic. *)
let break_stale_reservations rt ?(tries = 5) ?(retry_delay = 2.0) () =
  let sh = Atomic.store_host rt in
  let net = Atomic.network rt in
  let eng = Atomic.engine rt in
  let probing = Hashtbl.create 16 in
  Store_host.set_reservation_hook sh (fun ~node ~blockers ->
      List.iter
        (fun (action, coordinator) ->
          let key = (node, action) in
          if
            (not (Hashtbl.mem probing key))
            && not (Net.Network.reachable net node coordinator)
          then begin
            Hashtbl.add probing key ();
            Net.Network.spawn_on net node
              ~name:(Printf.sprintf "%s.break-reservation:%s" node action)
              (fun () ->
                let log = Store_host.log sh node in
                let tracef fmt =
                  Sim.Trace.recordf
                    (Net.Network.trace net)
                    ~now:(Sim.Engine.now eng) ~tag:"recovery" fmt
                in
                let rec settle n =
                  match Store.Intent_log.prepared log ~action with
                  | None -> () (* withdrawn through the normal path *)
                  | Some _ -> (
                      match
                        Atomic.query_decision rt ~from:node ~coordinator
                          ~action
                      with
                      | Ok Atomic.D_commit ->
                          tracef "%s: blocked reservation %s -> commit" node
                            action;
                          ignore
                            (Store_host.commit sh ~from:node ~store:node
                               ~action)
                      | Ok (Atomic.D_abort | Atomic.D_unknown) ->
                          tracef "%s: blocked reservation %s -> presumed abort"
                            node action;
                          Store.Intent_log.resolve log ~action
                      | Ok Atomic.D_active ->
                          (* The cut healed and the action is still live:
                             its own completion will withdraw. *)
                          ()
                      | Error _ ->
                          if n = 0 then begin
                            tracef
                              "%s: reservation %s coordinator unreachable -> \
                               presumed abort"
                              node action;
                            Store.Intent_log.resolve log ~action
                          end
                          else begin
                            Sim.Engine.sleep eng retry_delay;
                            settle (n - 1)
                          end)
                in
                settle tries;
                Hashtbl.remove probing key)
          end)
        blockers)

let guard_prepares rt =
  let sh = Atomic.store_host rt in
  let net = Atomic.network rt in
  let eng = Atomic.engine rt in
  Store_host.set_prepare_hook sh (fun ~node ~action ~coordinator ->
      ignore
        (Net.Network.watch_crash net coordinator (fun () ->
             Net.Network.spawn_on net node
               ~name:(Printf.sprintf "%s.indoubt:%s" node action) (fun () ->
                 let log = Store_host.log sh node in
                 let rec settle tries =
                   match Store.Intent_log.prepared log ~action with
                   | None -> () (* resolved through the normal path *)
                   | Some _ -> (
                       match
                         Atomic.query_decision rt ~from:node ~coordinator ~action
                       with
                       | Ok Atomic.D_commit ->
                           ignore
                             (Store_host.commit sh ~from:node ~store:node ~action)
                       | Ok (Atomic.D_abort | Atomic.D_unknown) ->
                           Store.Intent_log.resolve log ~action
                       | Ok Atomic.D_active | Error _ ->
                           if tries = 0 then
                             (* The coordinator never came back: presume
                                abort rather than reserve the object
                                forever. *)
                             Store.Intent_log.resolve log ~action
                           else begin
                             Sim.Engine.sleep eng 5.0;
                             settle (tries - 1)
                           end)
                 in
                 settle 100))))
