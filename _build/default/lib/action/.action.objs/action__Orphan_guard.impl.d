lib/action/orphan_guard.ml: Hashtbl Net Printf String
