type t = { counter : int; committed_by : string }

let initial = { counter = 0; committed_by = "genesis" }

let next t ~committed_by = { counter = t.counter + 1; committed_by }

let newer_than a b = a.counter > b.counter

let equal a b = a.counter = b.counter && String.equal a.committed_by b.committed_by

let compare a b =
  match Int.compare a.counter b.counter with
  | 0 -> String.compare a.committed_by b.committed_by
  | c -> c

let to_string t = Printf.sprintf "v%d(%s)" t.counter t.committed_by
let pp ppf t = Format.pp_print_string ppf (to_string t)

let follows a b = a.counter = b.counter + 1
