type t = {
  title : string;
  columns : string list;
  rows : string list list;
  notes : string list;
}

let make ~title ~columns ?(notes = []) rows = { title; columns; rows; notes }

let cell_f v = if Float.is_nan v then "-" else Printf.sprintf "%.2f" v

let cell_pct v =
  if Float.is_nan v then "-" else Printf.sprintf "%.1f%%" (100.0 *. v)

let cell_i = string_of_int

let pp ppf t =
  let widths =
    List.fold_left
      (fun acc row ->
        List.mapi
          (fun i cell ->
            let cur = try List.nth acc i with _ -> 0 in
            max cur (String.length cell))
          row)
      (List.map String.length t.columns)
      t.rows
  in
  let pad i cell =
    let w = try List.nth widths i with _ -> String.length cell in
    cell ^ String.make (max 0 (w - String.length cell)) ' '
  in
  let line row = String.concat "  " (List.mapi pad row) in
  Format.fprintf ppf "== %s ==@." t.title;
  Format.fprintf ppf "%s@." (line t.columns);
  Format.fprintf ppf "%s@."
    (String.concat "  "
       (List.mapi (fun i c -> String.make (max (String.length c) (List.nth widths i)) '-') t.columns));
  List.iter (fun row -> Format.fprintf ppf "%s@." (line row)) t.rows;
  List.iter (fun note -> Format.fprintf ppf "  %s@." note) t.notes;
  Format.fprintf ppf "@."

let print t = pp Format.std_formatter t
