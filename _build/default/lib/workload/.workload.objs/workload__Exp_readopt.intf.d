lib/workload/exp_readopt.mli: Table
