test/test_net.ml: Alcotest Engine Fault Int64 List Metrics Multicast Net Network Rng Rpc Sim String
