let art t = Replica.Server.atomic_runtime (Replica.Group.server_runtime (Binder.group_runtime t))

let netw t = Action.Atomic.network (art t)

let tracef t fmt =
  Sim.Trace.recordf
    (Net.Network.trace (netw t))
    ~now:(Sim.Engine.now (Action.Atomic.engine (art t)))
    ~tag:"reintegrate" fmt

(* Fetch the newest committed state of [uid] among the given store nodes. *)
let newest_state t ~from ~stores uid =
  let sh = Action.Atomic.store_host (art t) in
  List.fold_left
    (fun best store ->
      if String.equal store from then best
      else
        match Action.Store_host.read sh ~from ~store uid with
        | Ok (Some s) -> (
            match best with
            | Some b when not (Store.Object_state.newer_than s b) -> best
            | _ -> Some s)
        | Ok None | Error _ -> best)
    None stores

let reintegrate_store_one t ~node uid =
  let r = Binder.router t in
  let sh = Action.Atomic.store_host (art t) in
  Action.Atomic.atomically (art t) ~node (fun act ->
      (* Include first: its write lock serialises us against every client
         holding a read lock on the entry, so the fetch below sees the
         final committed state. The granted fence is the committed
         version this node must reach before the inclusion may commit. *)
      let fence =
        match Router.include_ r ~act ~uid node with
        | Ok (Gvd.Granted v) -> v
        | Ok (Gvd.Refused why) | Ok (Gvd.Busy why) ->
            raise (Action.Atomic.Abort why)
        | Ok (Gvd.Moved dest) ->
            raise (Action.Atomic.Abort ("wrong shard: " ^ dest))
        | Error e -> raise (Action.Atomic.Abort (Net.Rpc.error_to_string e))
      in
      let sources =
        match Router.entry_info r ~from:node uid with
        | Ok (Some info) -> info.Gvd.ei_st_home
        | Ok None | Error _ -> []
      in
      let ours = Store.Object_store.read (Action.Store_host.objects sh node) uid in
      let best =
        match (newest_state t ~from:node ~stores:sources uid, ours) with
        | Some fetched, Some mine ->
            if Store.Object_state.newer_than fetched mine then Some fetched
            else Some mine
        | Some fetched, None -> Some fetched
        | None, mine -> mine
      in
      match best with
      | Some candidate
        when Store.Version.compare candidate.Store.Object_state.version fence >= 0
        ->
          let stale =
            match ours with
            | Some mine -> Store.Object_state.newer_than candidate mine
            | None -> true
          in
          if stale then begin
            Action.Store_host.seed sh node uid candidate;
            tracef t "%s refreshed %a to %a" node Store.Uid.pp uid
              Store.Version.pp candidate.Store.Object_state.version
          end
      | Some _ | None ->
          (* Every reachable copy is older than the committed fence: the
             newest state lives only on nodes that are currently down.
             Joining StA now would serve rewound activations — stay out
             and retry later. *)
          Sim.Metrics.incr (Net.Network.metrics (netw t)) "reintegrate.fenced";
          raise (Action.Atomic.Abort "latest committed state unreachable"))

let reintegrate_store_now t ~node ?(retry_delay = 2.0) () =
  let uids =
    match Router.stored_on (Binder.router t) ~from:node node with
    | Ok uids -> uids
    | Error _ -> []
  in
  List.iter
    (fun uid ->
      match
        Net.Retry.run
          (Action.Atomic.retry (art t))
          ~op:"reintegrate.include"
          (Net.Retry.policy ~attempts:20 ~base:retry_delay ~factor:1.5
             ~max_delay:8.0 ())
          (fun () -> reintegrate_store_one t ~node uid)
      with
      | Ok () ->
          Sim.Metrics.incr (Net.Network.metrics (netw t)) "reintegrate.includes"
      | Error _ -> ())
    uids

let attach_store_node t ~node ?retry_delay () =
  Net.Network.on_recover (netw t) node (fun () ->
      reintegrate_store_now t ~node ?retry_delay ())

let reinsert_server_now t ~node ?(retry_delay = 2.0) () =
  let eng = Action.Atomic.engine (art t) in
  let r = Binder.router t in
  let uids =
    match Router.served_by r ~from:node node with
    | Ok uids -> uids
    | Error _ -> []
  in
  List.iter
    (fun uid ->
      let started = Sim.Engine.now eng in
      let outcome =
        Net.Retry.run
          (Action.Atomic.retry (art t))
          ~op:"reintegrate.insert"
          (Net.Retry.policy ~attempts:60 ~base:retry_delay ~factor:1.3
             ~max_delay:8.0 ())
          (fun () ->
            let res =
              Action.Atomic.atomically (art t) ~node (fun act ->
                  match Router.insert r ~act ~uid node with
                  | Ok (Gvd.Granted ()) -> `Done
                  | Ok (Gvd.Busy _) | Ok (Gvd.Moved _) -> `Busy
                  | Ok (Gvd.Refused why) -> raise (Action.Atomic.Abort why)
                  | Error e ->
                      raise (Action.Atomic.Abort (Net.Rpc.error_to_string e)))
            in
            match res with
            | Ok `Done -> Ok ()
            | Ok `Busy ->
                (* Quiescence-pull: the Insert is blocked on use-list
                   counters that may only be waiting out the coalescing
                   window — flush those credits now instead of sleeping
                   the window out. *)
                Binder.pull_credits t ~uid;
                Error "object not quiescent"
            | Error e -> Error e)
      in
      match outcome with
      | Ok () ->
          let elapsed = Sim.Engine.now eng -. started in
          Sim.Metrics.observe
            (Net.Network.metrics (netw t))
            "reintegrate.insert_delay" elapsed;
          tracef t "%s reinserted into Sv(%a) after %.2f" node Store.Uid.pp uid
            elapsed
      | Error _ ->
          Sim.Metrics.incr
            (Net.Network.metrics (netw t))
            "reintegrate.insert_gave_up")
    uids

let attach_server_node t ~node ?retry_delay () =
  Net.Network.on_recover (netw t) node (fun () ->
      reinsert_server_now t ~node ?retry_delay ())
