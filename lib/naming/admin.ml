type error = Busy of string | Refused of string | Unavailable of string

let error_to_string = function
  | Busy why -> "busy: " ^ why
  | Refused why -> "refused: " ^ why
  | Unavailable why -> "unavailable: " ^ why

let pp_error ppf e = Format.pp_print_string ppf (error_to_string e)

let art t = Replica.Server.atomic_runtime (Replica.Group.server_runtime (Binder.group_runtime t))

exception Administrative of error

let lift_reply = function
  | Ok (Gvd.Granted v) -> v
  | Ok (Gvd.Busy why) -> raise (Administrative (Busy why))
  | Ok (Gvd.Refused why) -> raise (Administrative (Refused why))
  | Ok (Gvd.Moved dest) ->
      raise (Administrative (Unavailable ("wrong shard: " ^ dest)))
  | Error e -> raise (Administrative (Unavailable (Net.Rpc.error_to_string e)))

let administratively t ~from body =
  match
    Action.Atomic.atomically (art t) ~node:from (fun act ->
        try Ok (body act) with Administrative e -> raise (Action.Atomic.Abort (error_to_string e)))
  with
  | Ok (Ok v) -> Ok v
  | Ok (Error e) -> Error e
  | Error reason ->
      (* Recover the structured error when we can; lock refusals from the
         commit path arrive as plain strings. *)
      if String.length reason >= 5 && String.sub reason 0 5 = "busy:" then
        Error (Busy (String.sub reason 6 (String.length reason - 6)))
      else Error (Refused reason)

let add_server t ~from ~uid node =
  administratively t ~from (fun act ->
      lift_reply (Router.insert (Binder.router t) ~act ~uid node))

let retire_server t ~from ~uid node =
  let r =
    administratively t ~from (fun act ->
        lift_reply (Router.retire_server_home (Binder.router t) ~act ~uid node))
  in
  (match r with
  | Ok () ->
      (* Best-effort reclamation of the retired node's instance; it is
         quiescent (retirement required quiescence), so this succeeds
         unless the node is down — in which case the instance is gone
         anyway. *)
      let srv = Replica.Group.server_runtime (Binder.group_runtime t) in
      ignore (Replica.Server.passivate srv ~from ~server:node ~uid)
  | Error _ -> ());
  r

let retire_store t ~from ~uid node =
  administratively t ~from (fun act ->
      lift_reply (Router.retire_store_home (Binder.router t) ~act ~uid node))

let add_store t ~server_rt ~from ~uid node =
  let sh = Action.Atomic.store_host (art t) in
  administratively t ~from (fun act ->
      (* Include first: the write lock serialises against in-flight
         commits, so the state copied below stays the latest until this
         action commits (the reintegration discipline, §4.2). *)
      let fence = lift_reply (Router.include_ (Binder.router t) ~act ~uid node) in
      let sources =
        match Router.entry_info (Binder.router t) ~from uid with
        | Ok (Some info) -> info.Gvd.ei_st_home
        | Ok None | Error _ -> []
      in
      let latest =
        List.fold_left
          (fun best store ->
            if String.equal store node then best
            else
              match Action.Store_host.read sh ~from ~store uid with
              | Ok (Some s) -> (
                  match best with
                  | Some b when not (Store.Object_state.newer_than s b) -> best
                  | _ -> Some s)
              | Ok None | Error _ -> best)
          None sources
      in
      match latest with
      | None -> raise (Administrative (Unavailable "no source store reachable"))
      | Some state when
          Store.Version.compare state.Store.Object_state.version fence < 0 ->
          raise
            (Administrative
               (Unavailable "no reachable source holds the latest committed state"))
      | Some state -> (
          ignore server_rt;
          match
            Action.Store_host.prepare sh ~from ~store:node
              ~action:(Action.Atomic.owner act) ~coordinator:from
              [ (uid, state) ]
          with
          | Ok (Action.Store_host.Vote_yes _) ->
              Action.Atomic.add_participant act ~name:("admin-copy:" ^ node)
                ~prepare:(fun () -> true)
                ~commit:(fun () ->
                  ignore
                    (Action.Store_host.commit sh ~from ~store:node
                       ~action:(Action.Atomic.owner act)))
                ~abort:(fun () ->
                  ignore
                    (Action.Store_host.abort sh ~from ~store:node
                       ~action:(Action.Atomic.owner act)))
          | Ok
              ( Action.Store_host.Vote_stale
              | Action.Store_host.Vote_delta_miss _ )
          | Error _ ->
              raise (Administrative (Unavailable ("cannot copy state to " ^ node)))))
