open Naming

(* One writer commit attempt with [readers] concurrent read-only clients
   pinning the st entry, and one store crashed so the commit must
   Exclude. Returns whether the writer committed. *)
let trial ~seed ~use_exclude_write ~readers =
  let reader_nodes = List.init readers (fun i -> Printf.sprintf "r%d" (i + 1)) in
  let w =
    Service.create ~seed ~use_exclude_write
      {
        Service.gvd_node = "ns";
        gvd_nodes = [];
        server_nodes = [ "alpha" ];
        store_nodes = [ "t1"; "t2" ];
        client_nodes = "writer" :: reader_nodes;
      }
  in
  let uid =
    Service.create_object w ~name:"obj" ~impl:"counter" ~sv:[ "alpha" ]
      ~st:[ "t1"; "t2" ] ()
  in
  Service.run ~until:1.0 w;
  let eng = Service.engine w in
  let net = Service.network w in
  (* Readers bind under the standard scheme and dawdle, holding their
     database read locks (sv and st entries) across the writer's commit
     window. They do not invoke: an instance-level read lock would block
     the writer's update at the server, masking the database-level effect
     this experiment isolates. *)
  List.iter
    (fun r ->
      Service.spawn_client w r (fun () ->
          ignore
            (Service.with_bound w ~client:r ~scheme:Scheme.Standard
               ~policy:Replica.Policy.Single_copy_passive ~uid
               (fun _act _group -> Sim.Engine.sleep eng 200.0))))
    reader_nodes;
  let committed = ref false in
  Service.spawn_client w "writer" (fun () ->
      Sim.Engine.sleep eng 20.0;
      match
        Service.with_bound w ~client:"writer" ~scheme:Scheme.Standard
          ~policy:Replica.Policy.Single_copy_passive ~uid (fun act group ->
            let r = Service.invoke w group ~act "incr" in
            (* t2 dies before commit: the state copy will fail there and
               the commit hook must Exclude it. *)
            Net.Network.crash net "t2";
            Sim.Engine.sleep eng 2.0;
            r)
      with
      | Ok _ -> committed := true
      | Error _ -> ());
  Service.run w;
  !committed

let run ?(seed = 51L) () =
  let sweep = [ 0; 1; 2; 4; 8 ] in
  let rows =
    List.map
      (fun readers ->
        let xw = trial ~seed ~use_exclude_write:true ~readers in
        let w_ = trial ~seed ~use_exclude_write:false ~readers in
        [
          Table.cell_i readers;
          (if xw then "commit" else "ABORT");
          (if w_ then "commit" else "ABORT");
        ])
      sweep
  in
  Table.make
    ~title:"tab-exclude-lock: Exclude under concurrent readers (§4.2.1)"
    ~columns:[ "concurrent readers"; "exclude-write lock"; "plain write promotion" ]
    ~notes:
      [
        "Paper claim (§4.2.1): read-lock promotion to plain write is refused";
        "whenever other clients share the entry, aborting the committing";
        "writer; the type-specific exclude-write lock is compatible with";
        "read locks, so the Exclude (and the commit) always goes through.";
      ]
    rows
