(* Unified retry/backoff policy engine. Every protocol-level retry loop in
   the system (recovery probes, reintegration, cleanup repairs, use-delta
   flushes, router migration waits, group invocation failover) routes
   through [run], so attempt bounds, backoff shape, deadline budgets and
   per-destination breaker state are defined in exactly one place. *)

type policy = {
  attempts : int;
  base : float;
  factor : float;
  max_delay : float;
  jitter : float;
  budget : float option;
}

let policy ?(attempts = 5) ?(base = 1.0) ?(factor = 2.0) ?(max_delay = 16.0)
    ?(jitter = 0.1) ?budget () =
  if attempts < 1 then invalid_arg "Retry.policy: attempts < 1";
  { attempts; base; factor; max_delay; jitter; budget }

let default = policy ()

type breaker = {
  mutable consecutive : int;
  mutable open_until : float;
  mutable cooldown : float;
  mutable probing : bool;
      (* a deadline-forced half-open probe is in flight (single-flight) *)
  mutable degraded_trip : bool;
      (* the breaker was last opened by sustained slowness, not failures;
         its half-open probe must also check latency, not just success *)
}

type t = {
  net : Network.t;
  rng : Sim.Rng.t;
  breakers : (Network.node_id, breaker) Hashtbl.t;
  mutable degraded : bool;
}

let breaker_threshold = 3
let breaker_cooldown = 8.0
let breaker_max_cooldown = 64.0

let create net =
  {
    net;
    (* Derived stream: jitter is seed-deterministic and draws nothing from
       the latency stream, so fault-free worlds that never sleep a backoff
       are unperturbed. *)
    rng = Network.derive_rng net "retry";
    breakers = Hashtbl.create 8;
    degraded = false;
  }

let network t = t.net
let set_degraded_trips t flag = t.degraded <- flag
let degraded_trips t = t.degraded

let breaker t dst =
  match Hashtbl.find_opt t.breakers dst with
  | Some b -> b
  | None ->
      let b =
        {
          consecutive = 0;
          open_until = neg_infinity;
          cooldown = breaker_cooldown;
          probing = false;
          degraded_trip = false;
        }
      in
      Hashtbl.add t.breakers dst b;
      b

let breaker_open t dst =
  match Hashtbl.find_opt t.breakers dst with
  | None -> false
  | Some b -> Sim.Engine.now (Network.engine t.net) < b.open_until

let run t ?dst ?deadline_at ~op (p : policy) body =
  let eng = Network.engine t.net in
  let m = Network.metrics t.net in
  let now () = Sim.Engine.now eng in
  let deadline =
    Float.min
      (match p.budget with None -> infinity | Some b -> now () +. b)
      (match deadline_at with None -> infinity | Some d -> d)
  in
  let backoff k =
    let d = Float.min p.max_delay (p.base *. (p.factor ** float_of_int (k - 1))) in
    if p.jitter > 0.0 then
      d *. (1.0 +. (p.jitter *. Sim.Rng.uniform t.rng (-1.0) 1.0))
    else d
  in
  (* Degraded trip: with the knob on, sustained slowness reported by the
     health plane opens the breaker exactly like consecutive failures — a
     browned-out node is functionally down for latency-sensitive work.
     The trip pre-loads [consecutive] so a failed half-open probe reopens
     with escalation, and marks [degraded_trip] so a probe that succeeds
     but is still slow reopens rather than closing. *)
  let maybe_degrade dstid =
    if t.degraded then begin
      let b = breaker t dstid in
      if
        now () >= b.open_until
        && (not b.degraded_trip)
        && Health.sustained_slow (Network.health t.net) ~now:(now ()) dstid
      then begin
        b.degraded_trip <- true;
        b.consecutive <- max b.consecutive breaker_threshold;
        b.open_until <- now () +. b.cooldown;
        b.cooldown <- Float.min breaker_max_cooldown (b.cooldown *. 2.0);
        Sim.Metrics.incr m "retry.degraded_trips";
        Sim.Trace.recordf (Network.trace t.net) ~now:(now ()) ~tag:"retry"
          "breaker degraded dst=%s op=%s (sustained slow, cooldown %.1f)"
          dstid op b.cooldown
      end
    end
  in
  (* Shed the attempt without sending anything when the failure detector
     reports the destination down or its breaker is open. The shed still
     consumes an attempt and backs off, so budgets are unchanged — the call
     is just cheaper than sending into a known-dead node. One exception:
     if the breaker stays open past the caller's whole deadline, shedding
     every attempt would starve the half-open probe and the caller could
     never relearn that the destination recovered. In that case exactly
     one attempt is forced through as the probe (single-flight per
     destination), independent of the breaker's cooldown clock. *)
  let dispose dstid =
    if not (Network.is_up t.net dstid) then `Shed "detector reports down"
    else begin
      maybe_degrade dstid;
      if breaker_open t dstid then begin
        let b = breaker t dstid in
        if deadline < b.open_until && not b.probing then `Probe b
        else `Shed "breaker open"
      end
      else `Go
    end
  in
  let note_failure () =
    match dst with
    | None -> ()
    | Some dstid ->
        let b = breaker t dstid in
        b.consecutive <- b.consecutive + 1;
        if b.consecutive >= breaker_threshold && now () >= b.open_until then begin
          (* Threshold crossed while closed/half-open: (re)open with an
             escalating cooldown. A half-open probe that fails lands here
             and doubles the cooldown again. *)
          b.open_until <- now () +. b.cooldown;
          b.cooldown <- Float.min breaker_max_cooldown (b.cooldown *. 2.0);
          Sim.Metrics.incr m "retry.breaker_opens";
          Sim.Trace.recordf (Network.trace t.net) ~now:(now ()) ~tag:"retry"
            "breaker open dst=%s op=%s (cooldown %.1f)" dstid op b.cooldown
        end
  in
  let note_success ~started =
    match dst with
    | None -> ()
    | Some dstid ->
        let b = breaker t dstid in
        if
          b.degraded_trip && t.degraded
          && Health.is_slow (Network.health t.net)
               ~latency:(now () -. started)
        then begin
          (* Half-open latency probe: the destination answered, but no
             faster than what tripped it. Success is returned to the
             caller — the work is done — but the breaker reopens with a
             doubled cooldown instead of closing. *)
          b.open_until <- now () +. b.cooldown;
          b.cooldown <- Float.min breaker_max_cooldown (b.cooldown *. 2.0);
          Sim.Metrics.incr m "retry.degraded_reopens";
          Sim.Trace.recordf (Network.trace t.net) ~now:(now ()) ~tag:"retry"
            "breaker still slow dst=%s op=%s (cooldown %.1f)" dstid op
            b.cooldown
        end
        else begin
          b.consecutive <- 0;
          b.cooldown <- breaker_cooldown;
          b.open_until <- neg_infinity;
          b.degraded_trip <- false
        end
  in
  let rec attempt k =
    let started = now () in
    let outcome =
      match dst with
      | Some dstid -> (
          match dispose dstid with
          | `Shed why ->
              Sim.Metrics.incr m "retry.sheds";
              Sim.Trace.recordf (Network.trace t.net) ~now:(now ())
                ~tag:"retry" "shed dst=%s op=%s (%s)" dstid op why;
              Error ("shed: " ^ why)
          | `Probe b ->
              b.probing <- true;
              Sim.Metrics.incr m "retry.forced_probes";
              Sim.Trace.recordf (Network.trace t.net) ~now:(now ())
                ~tag:"retry" "forced probe dst=%s op=%s" dstid op;
              let r =
                try body ()
                with e ->
                  b.probing <- false;
                  raise e
              in
              b.probing <- false;
              r
          | `Go -> body ())
      | None -> body ()
    in
    match outcome with
    | Ok v ->
        note_success ~started;
        Ok v
    | Error why ->
        note_failure ();
        if k >= p.attempts then begin
          Sim.Metrics.incr m "retry.giveups";
          Error why
        end
        else begin
          let d = backoff k in
          if now () +. d >= deadline then begin
            Sim.Metrics.incr m "retry.deadline_exhausted";
            Error why
          end
          else begin
            Sim.Metrics.incr m "retry.retries";
            Sim.Metrics.incr m ("retry.op." ^ op);
            Sim.Metrics.observe m "retry.backoff" d;
            Sim.Engine.sleep eng d;
            attempt (k + 1)
          end
        end
  in
  attempt 1
