lib/net/rpc.ml: Format Hashtbl Network Printf Sim String Univ
