examples/replicated_directory.ml: Action List Naming Net Printf Replica Scheme Service Sim Store String
