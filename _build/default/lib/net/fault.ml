let crash_at net ~at id =
  let eng = Network.engine net in
  let delay = at -. Sim.Engine.now eng in
  Sim.Engine.schedule eng ~delay (fun () -> Network.crash net id)

let recover_at net ~at id =
  let eng = Network.engine net in
  let delay = at -. Sim.Engine.now eng in
  Sim.Engine.schedule eng ~delay (fun () -> Network.recover net id)

let crash_for net ~at ~duration id =
  crash_at net ~at id;
  recover_at net ~at:(at +. duration) id

let churn net ~rng ~mttf ~mttr ?(until = infinity) id =
  let eng = Network.engine net in
  Sim.Engine.spawn eng ~name:(id ^ ".churn") (fun () ->
      let rec live () =
        Sim.Engine.sleep eng (Sim.Rng.exponential rng mttf);
        if Sim.Engine.now eng < until then begin
          Network.crash net id;
          Sim.Engine.sleep eng (Sim.Rng.exponential rng mttr);
          Network.recover net id;
          live ()
        end
      in
      live ())
