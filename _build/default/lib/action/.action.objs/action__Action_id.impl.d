lib/action/action_id.ml: Format List Printf Stdlib String
