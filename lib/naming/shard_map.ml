(* A versioned consistent-hash ring over object UIDs.

   Each shard node contributes a fixed number of virtual points on a
   64-bit ring; a UID is owned by the shard whose nearest point clockwise
   from the UID's hash. The hash is deterministic (FNV-1a over the UID
   string, finalised with a splitmix-style mixer) so every run of a
   seeded simulation assigns the same objects to the same shards. *)

type t = {
  sm_version : int;
  sm_nodes : Net.Network.node_id list;
  sm_ring : (int64 * Net.Network.node_id) array; (* sorted by point *)
}

let vnodes = 64

(* FNV-1a, 64-bit. *)
let fnv1a s =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  !h

(* splitmix64 finaliser: spreads FNV's low-entropy high bits. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let hash_string s = mix (fnv1a s)

let hash_uid uid = hash_string (Store.Uid.to_string uid)

let build_ring nodes =
  let points =
    List.concat_map
      (fun node ->
        List.init vnodes (fun i ->
            (hash_string (Printf.sprintf "%s#%d" node i), node)))
      nodes
  in
  let arr = Array.of_list points in
  (* Unsigned 64-bit order; ties broken by node id so the ring is a
     function of the node set alone. *)
  Array.sort
    (fun (a, na) (b, nb) ->
      match Int64.unsigned_compare a b with
      | 0 -> String.compare na nb
      | c -> c)
    arr;
  arr

let create ~nodes =
  if nodes = [] then invalid_arg "Shard_map.create: empty node list";
  let nodes = List.sort_uniq String.compare nodes in
  { sm_version = 1; sm_nodes = nodes; sm_ring = build_ring nodes }

let with_nodes t nodes =
  if nodes = [] then invalid_arg "Shard_map.with_nodes: empty node list";
  let nodes = List.sort_uniq String.compare nodes in
  { sm_version = t.sm_version + 1; sm_nodes = nodes; sm_ring = build_ring nodes }

let version t = t.sm_version
let nodes t = t.sm_nodes
let shards t = List.length t.sm_nodes

(* First ring point at or clockwise after [h] (binary search; wraps). *)
let owner_of_hash t h =
  let ring = t.sm_ring in
  let n = Array.length ring in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Int64.unsigned_compare (fst ring.(mid)) h < 0 then lo := mid + 1
    else hi := mid
  done;
  snd ring.(if !lo = n then 0 else !lo)

let owner t uid =
  match t.sm_nodes with
  | [ single ] -> single (* fast path: no hashing in single-shard worlds *)
  | _ -> owner_of_hash t (hash_uid uid)
