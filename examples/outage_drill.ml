(* Outage drill: the full §2.3(3)/§4.2 lifecycle of the naming service's
   meta-information during a store-node outage.

   1. A client commits an update while one store node is down: the commit
      copies state to the reachable stores and Excludes the dead one from
      StA, so later clients can never read a stale state.
   2. More updates commit against the shrunken StA.
   3. The store node recovers: reintegration fetches the latest committed
      state under the Include write lock and re-admits the node.
   4. A final read confirms every StA member is mutually consistent.

   Run with: dune exec examples/outage_drill.exe *)

open Naming

let show_st world uid label =
  Printf.printf "%-28s StA = [%s]\n" label
    (String.concat "; " (Gvd.current_st (Service.gvd world) uid))

let store_state world store uid =
  match
    Store.Object_store.read
      (Action.Store_host.objects (Service.store_host world) store)
      uid
  with
  | Some s ->
      Printf.sprintf "%s %s" s.Store.Object_state.payload
        (Store.Version.to_string s.Store.Object_state.version)
  | None -> "(none)"

let () =
  let world =
    Service.create ~seed:4L
      {
        Service.gvd_node = "ns";
        gvd_nodes = [];
        server_nodes = [ "alpha" ];
        store_nodes = [ "beta1"; "beta2"; "beta3" ];
        client_nodes = [ "app" ];
      }
  in
  let uid =
    Service.create_object world ~name:"ledger" ~impl:"counter"
      ~sv:[ "alpha" ] ~st:[ "beta1"; "beta2"; "beta3" ] ()
  in
  let eng = Service.engine world in
  let net = Service.network world in
  let update n =
    match
      Service.with_bound world ~client:"app" ~scheme:Scheme.Standard
        ~policy:Replica.Policy.Single_copy_passive ~uid (fun act group ->
          Service.invoke world group ~act (Printf.sprintf "add %d" n))
    with
    | Ok reply -> Printf.printf "add %d committed (counter = %s)\n" n reply
    | Error reason -> Printf.printf "add %d aborted: %s\n" n reason
  in
  Service.spawn_client world "app" (fun () ->
      show_st world uid "initially";
      (* beta3 goes dark. The next commit can't reach it and excludes it. *)
      Net.Network.crash net "beta3";
      Sim.Engine.sleep eng 2.0;
      update 10;
      show_st world uid "after outage commit";
      update 5;
      (* beta3 comes back; recovery resolves 2PC leftovers, refreshes the
         state from a current StA member, and re-Includes itself. *)
      Net.Network.recover net "beta3";
      Sim.Engine.sleep eng 30.0;
      show_st world uid "after recovery";
      update 1);
  Service.run world;
  print_endline "--- final states (all must be identical) ---";
  List.iter
    (fun store -> Printf.printf "%s: %s\n" store (store_state world store uid))
    [ "beta1"; "beta2"; "beta3" ];
  Printf.printf "exclusions=%d re-includes=%d\n"
    (Sim.Metrics.counter (Service.metrics world) "gvd.exclusions")
    (Sim.Metrics.counter (Service.metrics world) "gvd.includes")
