(** Hierarchical atomic-action identifiers.

    A top-level action is identified by its originating client and a serial
    number ("c1:3"); nested actions append a path component per nesting
    level ("c1:3.1", "c1:3.1.2"). The string rendering doubles as the lock
    owner key, so lock managers on remote nodes need no structural
    knowledge of action trees. *)

type t
(** An action identifier. *)

val top : origin:string -> serial:int -> t
(** Identifier of a top-level action started by [origin]. *)

val child : t -> serial:int -> t
(** Identifier of the [serial]-th nested action of the given parent. *)

val parent : t -> t option
(** Enclosing action's identifier; [None] for top-level actions. *)

val is_top : t -> bool

val origin : t -> string
(** The originating client. *)

val depth : t -> int
(** 1 for a top-level action, 2 for its children, ... *)

val equal : t -> t -> bool
val compare : t -> t -> int

val to_string : t -> string
(** Canonical rendering, also used as the lock-owner key. *)

val pp : Format.formatter -> t -> unit
