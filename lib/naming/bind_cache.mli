(** Lease-based client cache of bind results [(impl, SvA', StA)].

    Entries expire after the lease; they are also invalidated when a
    bind built on them aborts (commit-time version mismatch or a dead
    cached server). The cache is an optimisation layer only: the St
    mutual-consistency invariant is enforced by commit-time processing
    and store-side backward validation, never by cache freshness. *)

type t

type entry = {
  ce_impl : string;
  ce_servers : Net.Network.node_id list;
  ce_stores : Net.Network.node_id list;
  ce_version : int;
      (** GVD snapshot version the entry was filled from: lets diagnostics
          (and future invalidation protocols) compare a cached view
          against the entry's current committed version *)
  ce_expires : float;
}

val create : lease:float -> Sim.Metrics.t -> t
(** [create ~lease m] is an empty cache whose entries live [lease] units
    of simulated time. Counts [cache.hit] / [cache.miss] /
    [cache.expired] / [cache.invalidations] in [m]. *)

val lease : t -> float

val find : t -> now:float -> client:Net.Network.node_id -> Store.Uid.t -> entry option
(** Fresh entry for [(client, uid)], if any; expired entries are dropped
    and counted as misses. *)

val fill :
  t ->
  now:float ->
  client:Net.Network.node_id ->
  Store.Uid.t ->
  impl:string ->
  servers:Net.Network.node_id list ->
  stores:Net.Network.node_id list ->
  version:int ->
  unit

val renew : t -> now:float -> client:Net.Network.node_id -> Store.Uid.t -> unit
(** Extend the lease of a present entry to [now + lease]; no-op when
    absent. Called when a bind built on the entry {e commits} — commit
    processing just re-read StA under a lock and the stores validated the
    activation, so the entry is known good as of that instant. *)

val invalidate : t -> client:Net.Network.node_id -> Store.Uid.t -> unit

val size : t -> int
val hit_rate : t -> float
(** hits / (hits + misses), or nan before any lookup. *)
