(* Tests for the network substrate: nodes, crash/recovery, RPC failure
   semantics, multicast ordering and atomicity. *)

open Sim
open Net

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let make_world ?seed () =
  let eng = Engine.create ?seed () in
  let net = Network.create eng in
  let rpc = Rpc.create net in
  (eng, net, rpc)

let rpc_error = Alcotest.testable Rpc.pp_error ( = )

(* ------------------------------------------------------------------ *)
(* Network basics *)

let test_add_and_list_nodes () =
  let _, net, _ = make_world () in
  List.iter (Network.add_node net) [ "b"; "a"; "c" ];
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c" ] (Network.node_ids net)

let test_duplicate_node_rejected () =
  let _, net, _ = make_world () in
  Network.add_node net "a";
  match Network.add_node net "a" with
  | () -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_unknown_node_raises () =
  let _, net, _ = make_world () in
  match Network.is_up net "ghost" with
  | _ -> Alcotest.fail "expected Unknown_node"
  | exception Network.Unknown_node "ghost" -> ()

let test_crash_recover_incarnation () =
  let _, net, _ = make_world () in
  Network.add_node net "a";
  check_int "initial inc" 0 (Network.incarnation net "a");
  Network.crash net "a";
  check_bool "down" false (Network.is_up net "a");
  Network.crash net "a" (* idempotent *);
  Network.recover net "a";
  check_bool "up" true (Network.is_up net "a");
  check_int "inc bumped" 1 (Network.incarnation net "a")

let test_crash_hooks_fire () =
  let eng, net, _ = make_world () in
  Network.add_node net "a";
  let crashed = ref 0 and recovered = ref 0 in
  Network.on_crash net "a" (fun () -> incr crashed);
  Network.on_recover net "a" (fun () -> incr recovered);
  Network.crash net "a";
  Network.recover net "a";
  Engine.run eng;
  check_int "crash hook" 1 !crashed;
  check_int "recover hook" 1 !recovered

let test_crash_kills_node_fibers () =
  let eng, net, _ = make_world () in
  Network.add_node net "a";
  let progress = ref 0 in
  Network.spawn_on net "a" (fun () ->
      incr progress;
      Engine.sleep eng 10.0;
      incr progress);
  Engine.schedule eng ~delay:5.0 (fun () -> Network.crash net "a");
  Engine.run eng;
  check_int "fiber died at crash" 1 !progress

let test_message_to_down_node_dropped () =
  let eng, net, _ = make_world () in
  Network.add_node net "a";
  Network.add_node net "b";
  Network.crash net "b";
  let delivered = ref false in
  Network.send net ~src:"a" ~dst:"b" (fun () -> delivered := true);
  Engine.run eng;
  check_bool "dropped" false !delivered

let test_partition_blocks_delivery () =
  let eng, net, _ = make_world () in
  Network.add_node net "a";
  Network.add_node net "b";
  Network.set_partitioned net "a" "b" true;
  let delivered = ref false in
  Network.send net ~src:"a" ~dst:"b" (fun () -> delivered := true);
  Engine.run eng;
  check_bool "blocked" false !delivered;
  Network.set_partitioned net "a" "b" false;
  Network.send net ~src:"a" ~dst:"b" (fun () -> delivered := true);
  Engine.run eng;
  check_bool "healed" true !delivered

let test_fifo_preserves_order () =
  let eng, net, _ = make_world ~seed:99L () in
  Network.add_node net "a";
  Network.add_node net "b";
  let got = ref [] in
  (* Many sends back-to-back: plain send may reorder under random latency,
     send_fifo must not. *)
  for i = 1 to 20 do
    Network.send_fifo net ~src:"a" ~dst:"b" (fun () -> got := i :: !got)
  done;
  Engine.run eng;
  Alcotest.(check (list int)) "in order" (List.init 20 (fun i -> 20 - i)) !got

(* ------------------------------------------------------------------ *)
(* RPC *)

let echo : (string, string) Rpc.endpoint = Rpc.endpoint "test.echo"

let test_rpc_roundtrip () =
  let eng, net, rpc = make_world () in
  Network.add_node net "client";
  Network.add_node net "server";
  Rpc.serve rpc ~node:"server" echo (fun s -> s ^ "!");
  let got = ref "" in
  Network.spawn_on net "client" (fun () ->
      match Rpc.call rpc ~from:"client" ~dst:"server" echo "hi" with
      | Ok s -> got := s
      | Error e -> got := Rpc.error_to_string e);
  Engine.run eng;
  check_string "reply" "hi!" !got

let test_rpc_unreachable_when_down () =
  let eng, net, rpc = make_world () in
  Network.add_node net "client";
  Network.add_node net "server";
  Rpc.serve rpc ~node:"server" echo (fun s -> s);
  Network.crash net "server";
  let got = ref (Ok "") in
  Network.spawn_on net "client" (fun () ->
      got := Rpc.call rpc ~from:"client" ~dst:"server" echo "hi");
  Engine.run eng;
  Alcotest.(check (result string rpc_error))
    "unreachable" (Error Rpc.Unreachable) !got

let test_rpc_crash_mid_call () =
  let eng, net, rpc = make_world () in
  Network.add_node net "client";
  Network.add_node net "server";
  (* Handler sleeps long; server crashes while handling. *)
  Rpc.serve rpc ~node:"server" echo (fun s ->
      Engine.sleep eng 100.0;
      s);
  let got = ref (Ok "") in
  Network.spawn_on net "client" (fun () ->
      got := Rpc.call rpc ~from:"client" ~dst:"server" echo "hi");
  Engine.schedule eng ~delay:10.0 (fun () -> Network.crash net "server");
  Engine.run eng;
  Alcotest.(check (result string rpc_error)) "crashed" (Error Rpc.Crashed) !got

let test_rpc_no_service () =
  let eng, net, rpc = make_world () in
  Network.add_node net "client";
  Network.add_node net "server";
  let got = ref (Ok "") in
  Network.spawn_on net "client" (fun () ->
      got := Rpc.call rpc ~from:"client" ~dst:"server" echo "hi");
  Engine.run eng;
  Alcotest.(check (result string rpc_error))
    "no service" (Error Rpc.No_service) !got

let test_rpc_withdraw () =
  let eng, net, rpc = make_world () in
  Network.add_node net "client";
  Network.add_node net "server";
  Rpc.serve rpc ~node:"server" echo (fun s -> s);
  check_bool "serving" true (Rpc.serving rpc ~node:"server" echo);
  Rpc.withdraw rpc ~node:"server" echo;
  check_bool "withdrawn" false (Rpc.serving rpc ~node:"server" echo);
  let got = ref (Ok "") in
  Network.spawn_on net "client" (fun () ->
      got := Rpc.call rpc ~from:"client" ~dst:"server" echo "hi");
  Engine.run eng;
  Alcotest.(check (result string rpc_error))
    "no service after withdraw" (Error Rpc.No_service) !got

let test_rpc_timeout () =
  let eng, net, rpc = make_world () in
  Network.add_node net "client";
  Network.add_node net "server";
  Rpc.serve rpc ~node:"server" echo (fun s ->
      Engine.sleep eng 100.0;
      s);
  let got = ref (Ok "") in
  Network.spawn_on net "client" (fun () ->
      got := Rpc.call rpc ~from:"client" ~dst:"server" ~timeout:5.0 echo "hi");
  Engine.run eng;
  Alcotest.(check (result string rpc_error)) "timeout" (Error Rpc.Timed_out) !got

let test_rpc_nested_call_in_handler () =
  let eng, net, rpc = make_world () in
  List.iter (Network.add_node net) [ "client"; "front"; "back" ];
  let upper : (string, string) Rpc.endpoint = Rpc.endpoint "test.upper" in
  Rpc.serve rpc ~node:"back" upper (fun s -> String.uppercase_ascii s);
  Rpc.serve rpc ~node:"front" echo (fun s ->
      match Rpc.call rpc ~from:"front" ~dst:"back" upper s with
      | Ok u -> u ^ "!"
      | Error e -> "error: " ^ Rpc.error_to_string e);
  let got = ref "" in
  Network.spawn_on net "client" (fun () ->
      match Rpc.call rpc ~from:"client" ~dst:"front" echo "hi" with
      | Ok s -> got := s
      | Error e -> got := Rpc.error_to_string e);
  Engine.run eng;
  check_string "chained" "HI!" !got

let test_rpc_caller_crash_drops_reply () =
  let eng, net, rpc = make_world () in
  Network.add_node net "client";
  Network.add_node net "server";
  let handled = ref false and resumed = ref false in
  Rpc.serve rpc ~node:"server" echo (fun s ->
      handled := true;
      Engine.sleep eng 5.0;
      s);
  Network.spawn_on net "client" (fun () ->
      ignore (Rpc.call rpc ~from:"client" ~dst:"server" echo "hi");
      resumed := true);
  Engine.schedule eng ~delay:3.0 (fun () -> Network.crash net "client");
  Engine.run eng;
  check_bool "server handled" true !handled;
  check_bool "caller never resumed" false !resumed

let test_notify_one_way () =
  let eng, net, rpc = make_world () in
  Network.add_node net "a";
  Network.add_node net "b";
  let ping : (int, unit) Rpc.endpoint = Rpc.endpoint "test.ping" in
  let got = ref 0 in
  Rpc.serve rpc ~node:"b" ping (fun n -> got := n);
  Network.spawn_on net "a" (fun () -> Rpc.notify rpc ~from:"a" ~dst:"b" ping 7);
  Engine.run eng;
  check_int "notified" 7 !got

(* ------------------------------------------------------------------ *)
(* Multicast *)

let test_unreliable_full_delivery_when_healthy () =
  let eng, net, rpc = make_world () in
  List.iter (Network.add_node net) [ "s"; "m1"; "m2"; "m3" ];
  let mc = Multicast.create rpc in
  let ch : string Multicast.channel = Multicast.channel "grp" in
  let got = ref [] in
  List.iter
    (fun m ->
      Multicast.listen mc ~node:m ch (fun ~seq:_ msg -> got := (m, msg) :: !got))
    [ "m1"; "m2"; "m3" ];
  Network.spawn_on net "s" (fun () ->
      Multicast.cast_unreliable mc ~from:"s" ~members:[ "m1"; "m2"; "m3" ] ch "x");
  Engine.run eng;
  check_int "all members" 3 (List.length !got)

let test_unreliable_partial_delivery_on_sender_crash () =
  (* The Figure-1 scenario: sender crashes mid-cast, so only a prefix of
     the group receives the message. *)
  let eng, net, rpc = make_world () in
  List.iter (Network.add_node net) [ "s"; "m1"; "m2" ];
  let mc = Multicast.create rpc in
  let ch : string Multicast.channel = Multicast.channel "grp" in
  let got = ref [] in
  List.iter
    (fun m -> Multicast.listen mc ~node:m ch (fun ~seq:_ _ -> got := m :: !got))
    [ "m1"; "m2" ];
  Network.spawn_on net "s" (fun () ->
      Multicast.cast_unreliable mc ~from:"s" ~members:[ "m1"; "m2" ] ch "x");
  (* Crash between the two sends: after the first inter-send gap begins. *)
  Engine.schedule eng ~delay:0.005 (fun () -> Network.crash net "s");
  Engine.run eng;
  Alcotest.(check (list string)) "only first member" [ "m1" ] !got

let test_atomic_all_or_nothing_on_sender_crash () =
  (* With the sequencer, a sender crash before the transfer completes means
     nobody delivers; after, everybody does. Either way: never a prefix. *)
  let trials = 30 in
  let outcomes = ref [] in
  for seed = 1 to trials do
    let eng, net, rpc = make_world ~seed:(Int64.of_int seed) () in
    List.iter (Network.add_node net) [ "s"; "seq"; "m1"; "m2" ];
    let mc = Multicast.create rpc in
    Multicast.enable_sequencer mc ~node:"seq";
    let ch : string Multicast.channel = Multicast.channel "grp" in
    let got = ref 0 in
    List.iter
      (fun m -> Multicast.listen mc ~node:m ch (fun ~seq:_ _ -> incr got))
      [ "m1"; "m2" ];
    Network.spawn_on net "s" (fun () ->
        ignore
          (Multicast.cast_atomic mc ~from:"s" ~sequencer:"seq"
             ~members:[ "m1"; "m2" ] ch "x"));
    (* Crash the sender at a random early instant. *)
    Engine.schedule eng
      ~delay:(0.2 +. (0.05 *. float_of_int seed))
      (fun () -> Network.crash net "s");
    Engine.run eng;
    outcomes := !got :: !outcomes
  done;
  List.iter
    (fun n -> check_bool "all or nothing" true (n = 0 || n = 2))
    !outcomes

let test_atomic_total_order () =
  let eng, net, rpc = make_world ~seed:1234L () in
  List.iter (Network.add_node net) [ "s1"; "s2"; "seq"; "m1"; "m2" ];
  let mc = Multicast.create rpc in
  Multicast.enable_sequencer mc ~node:"seq";
  let ch : int Multicast.channel = Multicast.channel "grp" in
  let got1 = ref [] and got2 = ref [] in
  Multicast.listen mc ~node:"m1" ch (fun ~seq:_ v -> got1 := v :: !got1);
  Multicast.listen mc ~node:"m2" ch (fun ~seq:_ v -> got2 := v :: !got2);
  (* Two senders race many casts. *)
  Network.spawn_on net "s1" (fun () ->
      for i = 1 to 10 do
        ignore
          (Multicast.cast_atomic mc ~from:"s1" ~sequencer:"seq"
             ~members:[ "m1"; "m2" ] ch i)
      done);
  Network.spawn_on net "s2" (fun () ->
      for i = 101 to 110 do
        ignore
          (Multicast.cast_atomic mc ~from:"s2" ~sequencer:"seq"
             ~members:[ "m1"; "m2" ] ch i)
      done);
  Engine.run eng;
  check_int "m1 got all" 20 (List.length !got1);
  Alcotest.(check (list int)) "same order at both members" !got1 !got2

let test_atomic_sequencer_down () =
  let eng, net, rpc = make_world () in
  List.iter (Network.add_node net) [ "s"; "seq"; "m1" ];
  let mc = Multicast.create rpc in
  Multicast.enable_sequencer mc ~node:"seq";
  Network.crash net "seq";
  let ch : string Multicast.channel = Multicast.channel "grp" in
  let got = ref (Ok 0) in
  Network.spawn_on net "s" (fun () ->
      got :=
        Multicast.cast_atomic mc ~from:"s" ~sequencer:"seq" ~members:[ "m1" ]
          ch "x");
  Engine.run eng;
  Alcotest.(check (result int rpc_error))
    "sequencer down" (Error Rpc.Unreachable) !got

(* ------------------------------------------------------------------ *)
(* Fault injection *)

let test_crash_for_window () =
  let eng, net, _ = make_world () in
  Network.add_node net "a";
  Fault.crash_for net ~at:10.0 ~duration:5.0 "a";
  let up_at t =
    Engine.run ~until:t eng;
    Network.is_up net "a"
  in
  check_bool "up before" true (up_at 9.0);
  check_bool "down during" false (up_at 12.0);
  check_bool "up after" true (up_at 20.0)

let test_churn_alternates () =
  let eng, net, _ = make_world ~seed:5L () in
  Network.add_node net "a";
  let rng = Rng.create 17L in
  Fault.churn net ~rng ~mttf:10.0 ~mttr:2.0 ~until:500.0 "a";
  Engine.run ~until:1000.0 eng;
  let crashes = Metrics.counter (Network.metrics net) "net.crashes" in
  let recoveries = Metrics.counter (Network.metrics net) "net.recoveries" in
  check_bool "several crashes" true (crashes > 5);
  check_bool "balanced" true (abs (crashes - recoveries) <= 1)

let suite =
  let tc = Alcotest.test_case in
  [
    ( "net.network",
      [
        tc "add and list" `Quick test_add_and_list_nodes;
        tc "duplicate rejected" `Quick test_duplicate_node_rejected;
        tc "unknown raises" `Quick test_unknown_node_raises;
        tc "crash recover incarnation" `Quick test_crash_recover_incarnation;
        tc "hooks fire" `Quick test_crash_hooks_fire;
        tc "crash kills fibers" `Quick test_crash_kills_node_fibers;
        tc "message to down node dropped" `Quick test_message_to_down_node_dropped;
        tc "partition blocks" `Quick test_partition_blocks_delivery;
        tc "fifo order" `Quick test_fifo_preserves_order;
      ] );
    ( "net.rpc",
      [
        tc "roundtrip" `Quick test_rpc_roundtrip;
        tc "unreachable when down" `Quick test_rpc_unreachable_when_down;
        tc "crash mid call" `Quick test_rpc_crash_mid_call;
        tc "no service" `Quick test_rpc_no_service;
        tc "withdraw" `Quick test_rpc_withdraw;
        tc "timeout" `Quick test_rpc_timeout;
        tc "nested call in handler" `Quick test_rpc_nested_call_in_handler;
        tc "caller crash drops reply" `Quick test_rpc_caller_crash_drops_reply;
        tc "notify one way" `Quick test_notify_one_way;
      ] );
    ( "net.multicast",
      [
        tc "unreliable full delivery" `Quick test_unreliable_full_delivery_when_healthy;
        tc "unreliable partial on sender crash" `Quick
          test_unreliable_partial_delivery_on_sender_crash;
        tc "atomic all or nothing" `Quick test_atomic_all_or_nothing_on_sender_crash;
        tc "atomic total order" `Quick test_atomic_total_order;
        tc "atomic sequencer down" `Quick test_atomic_sequencer_down;
      ] );
    ( "net.fault",
      [
        tc "crash for window" `Quick test_crash_for_window;
        tc "churn alternates" `Quick test_churn_alternates;
      ] );
  ]
