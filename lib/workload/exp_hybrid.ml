open Naming

let mutually_consistent w uid =
  let st = Gvd.current_st (Service.gvd w) uid in
  let states =
    List.filter_map
      (fun node ->
        Store.Object_store.read
          (Action.Store_host.objects (Service.store_host w) node)
          uid)
      st
  in
  List.length states = List.length st
  &&
  match states with
  | [] -> true
  | first :: rest -> List.for_all (Store.Object_state.equal first) rest

let run_variant ~seed ~hybrid =
  let servers = [ "s1"; "s2" ] in
  let stores = [ "t1"; "t2" ] in
  let w =
    Service.create ~seed
      {
        Service.gvd_node = "ns";
        gvd_nodes = [];
        server_nodes = servers;
        store_nodes = stores;
        client_nodes = [ "c1"; "c2" ];
      }
  in
  let uid =
    Service.create_object w ~name:"obj" ~impl:"counter" ~sv:servers ~st:stores ()
  in
  let hy =
    if hybrid then begin
      let h = Hybrid.install (Service.binder w) ~node:"ns" in
      Hybrid.register h ~from:"ns" ~uid ~sv:servers;
      Some h
    end
    else None
  in
  Service.run ~until:1.0 w;
  let eng = Service.engine w in
  let net = Service.network w in
  let m = Service.metrics w in
  let rng = Sim.Rng.split (Sim.Engine.rng eng) in
  Net.Fault.crash_for net ~at:120.0 ~duration:80.0 "t2";
  let commits = ref 0 and attempts = ref 0 in
  let body act group =
    ignore (Service.invoke w group ~act ~write:false "get");
    if !attempts mod 3 = 0 then ignore (Service.invoke w group ~act "incr")
  in
  List.iter
    (fun client ->
      Service.spawn_client w client (fun () ->
          let rec loop () =
            if Sim.Engine.now eng < 300.0 then begin
              incr attempts;
              (match hy with
              | Some h -> (
                  match
                    Action.Atomic.atomically (Service.atomic w) ~node:client
                      (fun act ->
                        match
                          Hybrid.bind h ~act ~uid
                            ~policy:(Replica.Policy.Active 2)
                        with
                        | Error e ->
                            raise
                              (Action.Atomic.Abort (Binder.bind_error_to_string e))
                        | Ok binding -> body act binding.Binder.bd_group)
                  with
                  | Ok () -> incr commits
                  | Error _ -> ())
              | None -> (
                  match
                    Service.with_bound w ~client ~scheme:Scheme.Standard
                      ~policy:(Replica.Policy.Active 2) ~uid body
                  with
                  | Ok () -> incr commits
                  | Error _ -> ()));
              Sim.Engine.sleep eng (Sim.Rng.exponential rng 10.0);
              loop ()
            end
          in
          loop ()))
    [ "c1"; "c2" ];
  Service.run w;
  let sv_ops =
    Sim.Metrics.counter m "gvd.get_server"
    + Sim.Metrics.counter m "gvd.inserts"
    + Sim.Metrics.counter m "gvd.removes"
    + Sim.Metrics.counter m "gvd.increments"
    + Sim.Metrics.counter m "gvd.decrements"
  in
  [
    (if hybrid then "hybrid (§5)" else "fully atomic (standard)");
    Table.cell_i !attempts;
    Table.cell_i !commits;
    Table.cell_i sv_ops;
    Table.cell_i (Sim.Metrics.counter m "gvd.exclusions");
    (if mutually_consistent w uid then "holds" else "VIOLATED");
  ]

let run ?(seed = 71L) () =
  Table.make
    ~title:"tab-hybrid: non-atomic name server + atomic state DB (§5)"
    ~columns:
      [ "variant"; "attempts"; "commits"; "sv-db ops"; "exclusions"; "St invariant" ]
    ~notes:
      [
        "Paper claim (§5): keeping server data in a traditional name server";
        "sheds all server-database atomic actions, while the atomic Object";
        "State database alone still guarantees consistent binding (the St";
        "mutual-consistency invariant holds in both variants).";
      ]
    [ run_variant ~seed ~hybrid:false; run_variant ~seed ~hybrid:true ]
