(** Experiments [fig6-standard], [fig7-independent],
    [fig8-nested-toplevel] and the side-by-side [tab-schemes]: the
    behavioural trade-offs of the three database access schemes (§4.1).

    Common workload: several clients repeatedly bind to one object
    (active replication over two server nodes) and run short read/write
    actions, while
    - one server node crashes and later recovers (exercising futile binds
      under the static-Sv standard scheme, bind-time [Remove] under the
      other two, and the recovery [Insert]'s wait for quiescence);
    - one client crashes while bound (leaving orphaned use counters under
      schemes B/C for the cleanup daemon, but only briefly-held locks
      under scheme A thanks to the orphan guard).

    Reported per scheme: commit rate, mean bind latency, futile bind
    attempts, dead-server removals, database lock waits, database
    operation count, server reintegration delay, orphaned counters
    cleaned. The paper's qualitative claims:

    - scheme A pays futile binds (stale [SvA]) and holds database read
      locks for whole actions (so recovery [Insert] waits for the lock),
      but issues the fewest database operations;
    - schemes B/C keep [SvA] fresh (no futile binds) at the cost of extra
      top-level database actions per client action and a cleanup protocol
      for crashed clients' counters;
    - B and C behave alike, differing only in where the database actions
      are invoked from. *)

type result = {
  r_scheme : Naming.Scheme.t;
  r_attempts : int;
  r_commits : int;
  r_bind_mean : float;
  r_futile : int;
  r_removed_dead : int;
  r_db_ops : int;
  r_db_lock_waits : int;
  r_insert_delay : float;
  r_orphans : int;
}

val run_scheme : ?seed:int64 -> ?pipelined:bool -> Naming.Scheme.t -> result
(** Run the common workload under one scheme. *)

val fig6 : ?seed:int64 -> unit -> Table.t
val fig7 : ?seed:int64 -> unit -> Table.t
val fig8 : ?seed:int64 -> unit -> Table.t
val comparison : ?seed:int64 -> unit -> Table.t
