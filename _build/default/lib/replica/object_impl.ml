type t = {
  impl_name : string;
  initial : string;
  apply : string -> string -> string * string;
}

let registry () : (string, t) Hashtbl.t = Hashtbl.create 8

let register reg impl = Hashtbl.replace reg impl.impl_name impl

let find reg name = Hashtbl.find reg name

let split_op op =
  match String.index_opt op ' ' with
  | None -> (op, "")
  | Some i ->
      ( String.sub op 0 i,
        String.sub op (i + 1) (String.length op - i - 1) )

let counter =
  {
    impl_name = "counter";
    initial = "0";
    apply =
      (fun payload op ->
        let v = int_of_string payload in
        match split_op op with
        | "incr", _ ->
            let v = v + 1 in
            (string_of_int v, string_of_int v)
        | "add", n ->
            let v = v + int_of_string n in
            (string_of_int v, string_of_int v)
        | "get", _ -> (payload, payload)
        | other, _ -> (payload, "unknown op: " ^ other));
  }

let account =
  {
    impl_name = "account";
    initial = "0";
    apply =
      (fun payload op ->
        let balance = int_of_string payload in
        match split_op op with
        | "deposit", n ->
            let balance = balance + int_of_string n in
            (string_of_int balance, string_of_int balance)
        | "withdraw", n ->
            let amount = int_of_string n in
            if amount > balance then (payload, "insufficient")
            else
              let balance = balance - amount in
              (string_of_int balance, string_of_int balance)
        | "balance", _ -> (payload, payload)
        | other, _ -> (payload, "unknown op: " ^ other));
  }

let register_cell =
  {
    impl_name = "register";
    initial = "";
    apply =
      (fun payload op ->
        match split_op op with
        | "write", s -> (s, "ok")
        | "read", _ -> (payload, payload)
        | other, _ -> (payload, "unknown op: " ^ other));
  }

let split_items payload =
  if String.equal payload "" then [] else String.split_on_char ',' payload

let join_items items = String.concat "," items

let fifo_queue =
  {
    impl_name = "queue";
    initial = "";
    apply =
      (fun payload op ->
        let items = split_items payload in
        match split_op op with
        | "push", s -> (join_items (items @ [ s ]), "ok")
        | "pop", _ -> (
            match items with
            | [] -> (payload, "empty")
            | x :: rest -> (join_items rest, x))
        | "peek", _ -> (
            match items with [] -> (payload, "empty") | x :: _ -> (payload, x))
        | "length", _ -> (payload, string_of_int (List.length items))
        | other, _ -> (payload, "unknown op: " ^ other));
  }

let string_set =
  {
    impl_name = "set";
    initial = "";
    apply =
      (fun payload op ->
        let items = split_items payload in
        match split_op op with
        | "add", s ->
            if List.mem s items then (payload, "present")
            else (join_items (List.sort String.compare (s :: items)), "added")
        | "remove", s ->
            if List.mem s items then
              (join_items (List.filter (fun x -> x <> s) items), "removed")
            else (payload, "absent")
        | "mem", s -> (payload, string_of_bool (List.mem s items))
        | "size", _ -> (payload, string_of_int (List.length items))
        | other, _ -> (payload, "unknown op: " ^ other));
  }

let kv_map =
  let parse payload =
    if String.equal payload "" then []
    else
      List.map
        (fun pair ->
          match String.index_opt pair '=' with
          | Some i ->
              ( String.sub pair 0 i,
                String.sub pair (i + 1) (String.length pair - i - 1) )
          | None -> (pair, ""))
        (String.split_on_char ';' payload)
  in
  let render entries =
    entries
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.map (fun (k, v) -> k ^ "=" ^ v)
    |> String.concat ";"
  in
  {
    impl_name = "kvmap";
    initial = "";
    apply =
      (fun payload op ->
        let entries = parse payload in
        match split_op op with
        | "put", rest -> (
            match String.index_opt rest ' ' with
            | Some i ->
                let k = String.sub rest 0 i in
                let v = String.sub rest (i + 1) (String.length rest - i - 1) in
                (render ((k, v) :: List.remove_assoc k entries), "ok")
            | None -> (payload, "usage: put k v"))
        | "get", k -> (
            match List.assoc_opt k entries with
            | Some v -> (payload, v)
            | None -> (payload, "(none)"))
        | "del", k -> (render (List.remove_assoc k entries), "ok")
        | "size", _ -> (payload, string_of_int (List.length entries))
        | other, _ -> (payload, "unknown op: " ^ other));
  }

let stock_all = [ counter; account; register_cell; fifo_queue; string_set; kv_map ]
