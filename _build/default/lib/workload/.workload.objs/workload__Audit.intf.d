lib/workload/audit.mli: Format Naming Replica Store
