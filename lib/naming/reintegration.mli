(** Recovery-time reintegration: the Include/Insert protocols of §4.

    {b Store nodes} (§4.2): a crashed node with an object store must,
    upon recovery, bring its object states up to the latest committed
    versions and then [Include] itself back into the [St] sets. The
    update and the [Include] run in one atomic action per object, with
    the [Include]'s write lock taken {e first}: the write lock conflicts
    with the read locks held by in-progress clients (standard scheme), so
    the state fetched afterwards cannot be made stale by a racing commit.

    {b Server nodes} (§4.1.2): a recovered node that can act as a server
    executes [Insert(UID, self)] before serving again, even though it is
    already listed in [SvA]: the write lock plus the quiescence check
    ensure bindings are managed correctly across the crash. [Insert]
    returns [Busy] while clients are using the object; the protocol
    retries until quiescent, and the elapsed time is the {e reintegration
    delay} measured by the Figure-6/7 experiments. *)

val attach_store_node :
  Binder.t ->
  ?optimistic:bool ->
  node:Net.Network.node_id ->
  ?retry_delay:float ->
  unit ->
  unit
(** Arrange that whenever [node] recovers, it reintegrates every object
    whose [st_home] lists it. Must be attached {e after}
    {!Action.Recovery.attach} so in-doubt 2PC records are resolved
    first.

    [optimistic] (default false) runs each Include as a validated round
    ({!Gvd.include_validated}): the St revision is read lock-free and
    checked inside the round, with bounded retries then classic fallback
    — the same discipline as the optimistic commit path. *)

val attach_server_node :
  Binder.t -> node:Net.Network.node_id -> ?retry_delay:float -> unit -> unit
(** Arrange that whenever [node] recovers, it re-runs [Insert] for every
    object whose [sv_home] lists it, retrying while [Busy]. Records the
    per-object delay in the [reintegrate.insert_delay] metric. *)

val reintegrate_store_now :
  Binder.t ->
  ?optimistic:bool ->
  node:Net.Network.node_id ->
  ?retry_delay:float ->
  unit ->
  unit
(** Run the store protocol immediately (from a fiber on [node]). *)

val exclude_store_now :
  Binder.t ->
  ?optimistic:bool ->
  from:Net.Network.node_id ->
  node:Net.Network.node_id ->
  unit ->
  int
(** Observer-driven Exclude (the autonomic controller's half of §4.2):
    from a fiber on [from], exclude the sick store [node] from the [St]
    of every object it holds, one atomic action per object, and return
    how many exclusions committed. Objects where [node] is already out
    of [St], or is the last remaining copy, are skipped. [optimistic]
    (default true) validates the St revision inside each Exclude round
    ({!Gvd.exclude_validated}), bounded retries then the classic locked
    {!Router.exclude}. *)

val reinsert_server_now :
  Binder.t -> node:Net.Network.node_id -> ?retry_delay:float -> unit -> unit
(** Run the server protocol immediately (from a fiber on [node]). *)
