lib/net/univ.mli:
