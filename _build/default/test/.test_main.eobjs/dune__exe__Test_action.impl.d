test/test_action.ml: Action Action_id Alcotest Atomic Hashtbl Intent_log List Lockmgr Net Object_state Object_store Recovery Resource_host Result Sim Store Store_host Store_participant Uid Version
