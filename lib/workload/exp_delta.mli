(** Experiment [tab-delta]: op-log delta replication vs full-state
    commit copy-back.

    Runs the same single-client small-write episode against a small
    (counter) and a large (preloaded kvmap) object, with delta shipping
    off and on, and tabulates [commit.bytes_shipped], delta hits and
    fallbacks. The large-object row is the headline: small writes ship
    operation bytes instead of the whole payload. *)

val large_object_reduction : unit -> float
(** Bytes shipped by the full-state episode divided by bytes shipped by
    the delta episode, for the large object. The test suite asserts this
    is at least 2.0. *)

val run : unit -> Table.t
