lib/sim/engine.ml: Effect Float Heap Int Printexc Printf Rng
