type t = Read | Delta | Write | Exclude_write

let compatible held requested =
  match (held, requested) with
  | Read, Read -> true
  | Read, Delta | Delta, Read -> true
  | Delta, Delta -> true
  | Read, Exclude_write | Exclude_write, Read -> true
  | Delta, Exclude_write | Exclude_write, Delta -> false
  | Exclude_write, Exclude_write -> false
  | Write, _ | _, Write -> false

let strength = function Read -> 0 | Delta -> 1 | Exclude_write -> 2 | Write -> 3

let strongest a b = if strength a >= strength b then a else b

let covers held requested = strength held >= strength requested

let equal a b = strength a = strength b

let to_string = function
  | Read -> "read"
  | Delta -> "delta"
  | Write -> "write"
  | Exclude_write -> "exclude-write"

let pp ppf m = Format.pp_print_string ppf (to_string m)
