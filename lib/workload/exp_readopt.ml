open Naming

let config ~seed ~read_fraction =
  let stores = [ "t1"; "t2"; "t3" ] in
  let w =
    Service.create ~seed
      {
        Service.gvd_node = "ns";
        gvd_nodes = [];
        server_nodes = [ "alpha" ];
        store_nodes = stores;
        client_nodes = [ "c1" ];
      }
  in
  let uid =
    Service.create_object w ~name:"obj" ~impl:"counter" ~sv:[ "alpha" ] ~st:stores ()
  in
  Service.run ~until:1.0 w;
  let eng = Service.engine w in
  let m = Service.metrics w in
  let rng = Sim.Rng.split (Sim.Engine.rng eng) in
  let actions = 100 in
  Service.spawn_client w "c1" (fun () ->
      for _ = 1 to actions do
        let read_only = Sim.Rng.bool rng read_fraction in
        (* The commit columns time commit processing only: from the end of
           the action body (binding and invocation done) to top-action
           completion — the copy-back prepare round plus phase 2. *)
        let body_done = ref 0.0 in
        (match
           Service.with_bound w ~client:"c1" ~scheme:Scheme.Standard
             ~policy:Replica.Policy.Single_copy_passive ~uid (fun act group ->
               (if read_only then
                  ignore (Service.invoke w group ~act ~write:false "get")
                else ignore (Service.invoke w group ~act "incr"));
               body_done := Sim.Engine.now eng)
         with
        | Ok () ->
            Sim.Metrics.observe m
              (if read_only then "exp.ro_latency" else "exp.rw_latency")
              (Sim.Engine.now eng -. !body_done)
        | Error _ -> ());
        Sim.Engine.sleep eng 1.0
      done);
  Service.run w;
  let skipped = Sim.Metrics.counter m "commit.read_optimised" in
  let copies = Sim.Metrics.counter m "commit.state_copies" in
  [
    Table.cell_pct read_fraction;
    Table.cell_i actions;
    Table.cell_i skipped;
    Table.cell_i copies;
    Table.cell_f (Sim.Metrics.mean m "exp.ro_latency");
    Table.cell_f (Sim.Metrics.mean m "exp.rw_latency");
    Table.cell_f (Sim.Metrics.mean m "commit.fanout");
    Table.cell_f (Sim.Metrics.percentile m "commit.fanout" 95.0);
  ]

let run ?(seed = 61L) () =
  let rows =
    List.map
      (fun read_fraction -> config ~seed ~read_fraction)
      [ 0.0; 0.25; 0.5; 0.75; 1.0 ]
  in
  Table.make
    ~title:"tab-read-opt: read-only commits skip the state copy (§4.2.1)"
    ~columns:
      [
        "read fraction"; "actions"; "copies skipped"; "state copies (x|St|)";
        "read commit mean"; "write commit mean"; "fanout mean"; "fanout p95";
      ]
    ~notes:
      [
        "Paper claim (§4.2.1): 'if the client has not changed the state of";
        "the object, then no copying to object stores is necessary' — state";
        "copies scale with updating actions only, and read-only actions";
        "commit faster (no prepare round to the |St|=3 stores).";
        "Commit means time commit processing only (body end -> top-action";
        "completion). The fanout columns summarise the commit.fanout";
        "histogram: wall time of the scatter-gather prepare round to the";
        "|St|=3 stores, which the parallel copy-back bounds by the slowest";
        "store rather than the sum over stores.";
      ]
    rows
