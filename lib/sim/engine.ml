type group = { gid : int; mutable alive : bool }

(* [daemon] doubles as the "no longer counted in [nondaemon_queued]" bit:
   true from birth for daemon wakeups, flipped on pop (when the count is
   released) and by {!timeout}'s demotion of guard timers whose operation
   already settled. Both paths are idempotent through the flag. *)
type event = {
  time : float;
  seq : int;
  thunk : unit -> unit;
  mutable daemon : bool;
}

type t = {
  mutable clock : float;
  mutable seq : int;
  mutable gid : int;
  queue : event Heap.t;
  root : group;
  engine_rng : Rng.t;
  mutable fiber_error : exn option;
  mutable processed : int;
  mutable suspended : int;
  mutable suspend_id : int;
  suspended_tbl : (int, string * group * bool) Hashtbl.t;
  mutable detect_deadlock : bool;
  mutable nondaemon_queued : int;
      (* queued events that represent real work; a drain-mode [run] stops
         when only daemon wakeups (idle periodic fibers) remain *)
  mutable next_suspend_daemon : bool;
      (* set by [daemon_sleep] just before performing Suspend, consumed by
         the handler to flag the parked suspension as a daemon's *)
}

exception Deadlock of string
exception Timed_out

let compare_event a b =
  match Float.compare a.time b.time with
  | 0 -> Int.compare a.seq b.seq
  | c -> c

let create ?(seed = 1L) () =
  {
    clock = 0.0;
    seq = 0;
    gid = 1;
    queue = Heap.create ~compare:compare_event;
    root = { gid = 0; alive = true };
    engine_rng = Rng.create seed;
    fiber_error = None;
    processed = 0;
    suspended = 0;
    suspend_id = 0;
    suspended_tbl = Hashtbl.create 64;
    detect_deadlock = false;
    nondaemon_queued = 0;
    next_suspend_daemon = false;
  }

let rng t = t.engine_rng
let now t = t.clock
let root_group t = t.root

let new_group t =
  let g = { gid = t.gid; alive = true } in
  t.gid <- t.gid + 1;
  g

let kill_group t g = if g != t.root then g.alive <- false
let group_alive g = g.alive

let push_ev ?(daemon = false) t ~delay thunk =
  let delay = if delay < 0.0 then 0.0 else delay in
  let e = { time = t.clock +. delay; seq = t.seq; thunk; daemon } in
  t.seq <- t.seq + 1;
  if not daemon then t.nondaemon_queued <- t.nondaemon_queued + 1;
  Heap.push t.queue e;
  e

let push ?daemon t ~delay thunk = ignore (push_ev ?daemon t ~delay thunk : event)

let release_count t e =
  if not e.daemon then begin
    e.daemon <- true;
    t.nondaemon_queued <- t.nondaemon_queued - 1
  end

let schedule t ~delay f = push t ~delay f

type 'a resumer = ('a, exn) result -> unit

type _ Effect.t += Suspend : (group * ('a resumer -> unit)) -> 'a Effect.t

(* The group of the fiber code currently executing. Every code path that
   runs fiber code (initial start, resumption) sets this first; it is never
   read outside fiber code, so stale values between events are harmless. *)
let current_group : group ref = ref { gid = -1; alive = true }

(* Each fiber runs under one deep handler installed by [spawn]. The handler
   turns [Suspend] into a queue-mediated resumption: the registrant receives
   a [resume] closure which (idempotently, and only while the fiber's group
   is alive) schedules the continuation. A killed group drops resumptions,
   so the fiber disappears at its suspension point without unwinding —
   matching fail-silent crash semantics. *)
let spawn t ?group ?(name = "fiber") f =
  let g = match group with None -> t.root | Some g -> g in
  let body () =
    current_group := g;
    f ()
  in
  let handler () =
    let open Effect.Deep in
    match_with body ()
      {
        retc = (fun () -> ());
        exnc =
          (fun e ->
            let bt = Printexc.get_backtrace () in
            if t.fiber_error = None then
              t.fiber_error <-
                Some
                  (Failure
                     (Printf.sprintf "fiber %s died: %s\n%s" name
                        (Printexc.to_string e) bt)));
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Suspend (fg, register) ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    t.suspended <- t.suspended + 1;
                    let sid = t.suspend_id in
                    t.suspend_id <- t.suspend_id + 1;
                    let daemon = t.next_suspend_daemon in
                    t.next_suspend_daemon <- false;
                    Hashtbl.replace t.suspended_tbl sid (name, fg, daemon);
                    let fired = ref false in
                    let resume (r : (a, exn) result) =
                      if not fg.alive then Hashtbl.remove t.suspended_tbl sid
                      else if not !fired then begin
                        fired := true;
                        t.suspended <- t.suspended - 1;
                        Hashtbl.remove t.suspended_tbl sid;
                        push t ~delay:0.0 (fun () ->
                            if fg.alive then begin
                              current_group := fg;
                              match r with
                              | Ok v -> continue k v
                              | Error e -> discontinue k e
                            end)
                      end
                    in
                    register resume)
            | _ -> None);
      }
  in
  if g.alive then push t ~delay:0.0 (fun () -> if g.alive then handler ())

let suspend _t register =
  let g = !current_group in
  Effect.perform (Suspend (g, register))

let self_group _t = !current_group

let sleep t dt =
  suspend t (fun resume -> push t ~delay:dt (fun () -> resume (Ok ())))

(* A daemon sleep parks an idle periodic fiber (anti-entropy gossip, cache
   sweepers). Its wakeup event is daemon-flagged, so a drain-mode [run]
   stops without firing it, and the parked suspension is not reported by
   [leaked_fibers] — the fiber is idle by design, not lost. Once resumed
   (time-bounded runs), the fiber's work is ordinary non-daemon events. *)
let daemon_sleep t dt =
  let g = !current_group in
  t.next_suspend_daemon <- true;
  Effect.perform
    (Suspend
       ( g,
         fun resume ->
           push t ~daemon:true ~delay:dt (fun () -> resume (Ok ())) ))

let yield t = sleep t 0.0

let timeout t dt register =
  let g = !current_group in
  match
    Effect.perform
      (Suspend
         ( g,
           fun resume ->
             (* The guard timer counts as pending work only while the
                operation is unsettled: once either side fires, the timer
                is demoted so a drain-mode [run] can reach quiescence
                without chasing every armed-but-moot guard to its expiry.
                A guard for an operation that never settles (request
                dropped by a link fault) stays counted and WILL fire — the
                suspended caller's only wakeup. Popping releases the same
                count through the same flag, so the demotion is exactly
                once whichever comes first. *)
             let settled = ref false in
             let demote = ref (fun () -> ()) in
             let fire r =
               if not !settled then begin
                 settled := true;
                 !demote ();
                 resume r
               end
             in
             let ev =
               push_ev t ~delay:dt (fun () -> fire (Error Timed_out))
             in
             (demote := fun () -> release_count t ev);
             register fire ))
  with
  | v -> Ok v
  | exception Timed_out -> Error Timed_out

let set_detect_deadlock t flag = t.detect_deadlock <- flag

let run ?(until = infinity) ?(max_steps = max_int) t =
  let drain = until = infinity in
  let rec loop steps =
    if steps >= max_steps then ()
    else if drain && t.nondaemon_queued = 0 then
      (* Quiescence: only daemon wakeups (idle periodic fibers) remain.
         Leave them queued and parked — a later [run ~until] resumes them;
         a world with no daemons hits this exactly when the queue empties,
         so daemon-free runs are unchanged. *)
      (if
         t.detect_deadlock && Heap.peek t.queue = None && t.suspended > 0
       then
         raise
           (Deadlock
              (Printf.sprintf "%d fiber(s) suspended with empty queue"
                 t.suspended)))
    else
      match Heap.peek t.queue with
      | None ->
          if t.detect_deadlock && t.suspended > 0 then
            raise
              (Deadlock
                 (Printf.sprintf "%d fiber(s) suspended with empty queue"
                    t.suspended))
      | Some e when e.time > until -> ()
      | Some _ -> (
          match Heap.pop t.queue with
          | None -> ()
          | Some e ->
              release_count t e;
              t.clock <- (if e.time > t.clock then e.time else t.clock);
              t.processed <- t.processed + 1;
              e.thunk ();
              (match t.fiber_error with
              | Some err ->
                  t.fiber_error <- None;
                  raise err
              | None -> ());
              loop (steps + 1))
  in
  loop 0

let processed_events t = t.processed

let leaked_fibers t =
  (* Prune registry entries whose group died: those fibers vanished with a
     crash, which is fail-silent semantics, not a leak. What remains — a
     suspension in a live group after the queue has drained — waits for a
     wakeup that can no longer come. Daemon-parked suspensions (idle
     periodic fibers sleeping via [daemon_sleep]) are excluded: their
     wakeup is queued, merely never fired by a drain-mode [run]. *)
  let dead =
    Hashtbl.fold
      (fun sid (_, fg, _) acc -> if fg.alive then acc else sid :: acc)
      t.suspended_tbl []
  in
  List.iter (Hashtbl.remove t.suspended_tbl) dead;
  Hashtbl.fold
    (fun _ (nm, _, daemon) acc -> if daemon then acc else nm :: acc)
    t.suspended_tbl []
  |> List.sort String.compare
