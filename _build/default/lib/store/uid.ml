type t = { serial : int; lbl : string }

type supply = { mutable next : int }

let supply () = { next = 0 }

let fresh s ~label =
  let serial = s.next in
  s.next <- serial + 1;
  { serial; lbl = label }

let label t = t.lbl
let serial t = t.serial
let equal a b = a.serial = b.serial
let compare a b = Int.compare a.serial b.serial
let hash t = Hashtbl.hash t.serial
let to_string t = Printf.sprintf "%s#%d" t.lbl t.serial
let pp ppf t = Format.pp_print_string ppf (to_string t)
