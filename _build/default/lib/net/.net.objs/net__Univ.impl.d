lib/net/univ.ml:
