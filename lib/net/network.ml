type node_id = string

exception Unknown_node of node_id

type node = {
  id : node_id;
  mutable up : bool;
  mutable inc : int;
  mutable grp : Sim.Engine.group;
  mutable crash_hooks : (unit -> unit) list; (* newest first *)
  mutable recover_hooks : (unit -> unit) list; (* newest first *)
  mutable watches : (int * (unit -> unit)) list; (* watch id, action *)
  mutable next_watch : int;
  fifo_last : (node_id, float ref) Hashtbl.t;
      (* per-source last FIFO delivery time *)
}

(* Directed per-link fault rule. Absent entry = healthy link: the lookup
   miss is the fast path and performs no RNG draws, which keeps fault-free
   worlds byte-identical to builds without the fault plane. *)
type link_fault = {
  mutable f_drop : float; (* P(message silently dropped) *)
  mutable f_dup : float; (* P(second copy delivered later) *)
  mutable f_reorder : float; (* P(delivery delayed past later sends) *)
  mutable f_spike_p : float; (* P(latency spike added) *)
  mutable f_spike : float; (* spike magnitude, time units *)
  mutable f_cut : bool; (* one-way partition src->dst *)
}

(* Per-node service-time inflation (a brownout): the node is up, votes and
   answers, but each message it serves (or sends) may queue behind a slow
   scheduler. Distinct from a link spike — it follows the node across all
   of its links. *)
type brownout = {
  bo_prob : float; (* P(a given message is inflated) *)
  bo_lo : float;
  bo_hi : float; (* inflation magnitude, uniform in [lo, hi] *)
}

type t = {
  eng : Sim.Engine.t;
  nodes : (node_id, node) Hashtbl.t;
  latency : Sim.Rng.t -> float;
  detect_delay : float;
  net_rng : Sim.Rng.t;
  fault_rng : Sim.Rng.t;
  net_trace : Sim.Trace.t;
  net_metrics : Sim.Metrics.t;
  mutable partitions : (node_id * node_id) list;
  faults : (node_id * node_id, link_fault) Hashtbl.t;
  brownouts : (node_id, brownout) Hashtbl.t;
  mutable faults_ever : bool;
  net_health : Health.t;
}

let default_latency rng = Sim.Rng.uniform rng 0.5 1.5

(* Derive an independent stream from [base] without advancing it: copy,
   draw the copy once, and spread with the label hash. Deterministic from
   the engine seed, zero perturbation of [base]'s own stream. *)
let derive_stream base label =
  let b = Sim.Rng.int64 (Sim.Rng.copy base) in
  let h = Int64.of_int (Hashtbl.hash label) in
  Sim.Rng.create (Int64.logxor b (Int64.mul h 0x9E3779B97F4A7C15L))

let create ?(latency = default_latency) ?(detect_delay = 1.0) eng =
  let net_rng = Sim.Rng.split (Sim.Engine.rng eng) in
  {
    eng;
    nodes = Hashtbl.create 16;
    latency;
    detect_delay;
    net_rng;
    fault_rng = derive_stream net_rng "fault";
    net_trace = Sim.Trace.create ();
    net_metrics = Sim.Metrics.create ();
    partitions = [];
    faults = Hashtbl.create 8;
    brownouts = Hashtbl.create 4;
    faults_ever = false;
    net_health = Health.create ();
  }

let derive_rng t label = derive_stream t.net_rng label

let engine t = t.eng
let trace t = t.net_trace
let metrics t = t.net_metrics
let health t = t.net_health

let node t id =
  match Hashtbl.find_opt t.nodes id with
  | Some n -> n
  | None -> raise (Unknown_node id)

let add_node t id =
  if Hashtbl.mem t.nodes id then
    invalid_arg (Printf.sprintf "Network.add_node: duplicate node %s" id);
  Hashtbl.add t.nodes id
    {
      id;
      up = true;
      inc = 0;
      grp = Sim.Engine.new_group t.eng;
      crash_hooks = [];
      recover_hooks = [];
      watches = [];
      next_watch = 0;
      fifo_last = Hashtbl.create 4;
    }

let node_ids t =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.nodes [] |> List.sort String.compare

let is_up t id = (node t id).up
let incarnation t id = (node t id).inc
let group t id = (node t id).grp

let spawn_on t id ?name f =
  let n = node t id in
  if n.up then Sim.Engine.spawn t.eng ~group:n.grp ?name f

let record t tag fmt = Sim.Trace.recordf t.net_trace ~now:(Sim.Engine.now t.eng) ~tag fmt

let crash t id =
  let n = node t id in
  if n.up then begin
    n.up <- false;
    record t "net" "crash %s (inc %d)" id n.inc;
    Sim.Metrics.incr t.net_metrics "net.crashes";
    Sim.Engine.kill_group t.eng n.grp;
    List.iter (fun f -> f ()) (List.rev n.crash_hooks);
    (* Fire crash watches after the detection delay, modelling the failure
       detector's notification latency. *)
    let fired = n.watches in
    n.watches <- [];
    List.iter
      (fun (_, action) ->
        Sim.Engine.schedule t.eng ~delay:t.detect_delay (fun () -> action ()))
      fired
  end

let recover t id =
  let n = node t id in
  if not n.up then begin
    n.up <- true;
    n.inc <- n.inc + 1;
    n.grp <- Sim.Engine.new_group t.eng;
    record t "net" "recover %s (inc %d)" id n.inc;
    Sim.Metrics.incr t.net_metrics "net.recoveries";
    let hooks = List.rev n.recover_hooks in
    Sim.Engine.spawn t.eng ~group:n.grp ~name:(id ^ ".recover") (fun () ->
        List.iter (fun f -> f ()) hooks)
  end

let on_crash t id f =
  let n = node t id in
  n.crash_hooks <- f :: n.crash_hooks

let on_recover t id f =
  let n = node t id in
  n.recover_hooks <- f :: n.recover_hooks

let pair a b = if String.compare a b <= 0 then (a, b) else (b, a)

let set_partitioned t a b flag =
  let p = pair a b in
  let without = List.filter (fun q -> q <> p) t.partitions in
  t.partitions <- (if flag then p :: without else without)

let partitioned t a b = List.mem (pair a b) t.partitions

(* -- Message-level fault plane ----------------------------------------- *)

let find_fault t ~src ~dst = Hashtbl.find_opt t.faults (src, dst)

let ensure_fault t ~src ~dst =
  match find_fault t ~src ~dst with
  | Some fl -> fl
  | None ->
      let fl =
        {
          f_drop = 0.0;
          f_dup = 0.0;
          f_reorder = 0.0;
          f_spike_p = 0.0;
          f_spike = 0.0;
          f_cut = false;
        }
      in
      Hashtbl.add t.faults (src, dst) fl;
      t.faults_ever <- true;
      fl

let fault_blank fl =
  fl.f_drop = 0.0 && fl.f_dup = 0.0 && fl.f_reorder = 0.0
  && fl.f_spike_p = 0.0 && not fl.f_cut

let drop_if_blank t ~src ~dst fl =
  if fault_blank fl then Hashtbl.remove t.faults (src, dst)

let set_link_fault t ?(drop = 0.0) ?(dup = 0.0) ?(reorder = 0.0)
    ?(spike_prob = 0.0) ?(spike = 0.0) ~src ~dst () =
  let fl = ensure_fault t ~src ~dst in
  fl.f_drop <- drop;
  fl.f_dup <- dup;
  fl.f_reorder <- reorder;
  fl.f_spike_p <- spike_prob;
  fl.f_spike <- spike;
  record t "fault" "link %s->%s drop=%.2f dup=%.2f reorder=%.2f spike=%.2f@p%.2f"
    src dst drop dup reorder spike spike_prob;
  drop_if_blank t ~src ~dst fl

let clear_link_fault t ~src ~dst =
  match find_fault t ~src ~dst with
  | None -> ()
  | Some fl ->
      fl.f_drop <- 0.0;
      fl.f_dup <- 0.0;
      fl.f_reorder <- 0.0;
      fl.f_spike_p <- 0.0;
      fl.f_spike <- 0.0;
      record t "fault" "link %s->%s healed" src dst;
      drop_if_blank t ~src ~dst fl

let set_oneway_cut t ~src ~dst flag =
  (match find_fault t ~src ~dst with
  | None when not flag -> ()
  | _ ->
      let fl = ensure_fault t ~src ~dst in
      if fl.f_cut <> flag then
        record t "fault" "oneway %s->%s %s" src dst
          (if flag then "cut" else "restored");
      fl.f_cut <- flag;
      drop_if_blank t ~src ~dst fl);
  ()

let oneway_cut t ~src ~dst =
  match find_fault t ~src ~dst with Some fl -> fl.f_cut | None -> false

let set_brownout t ?(prob = 0.2) ~lo ~hi node =
  ignore (Hashtbl.mem t.nodes node || raise (Unknown_node node));
  Hashtbl.replace t.brownouts node { bo_prob = prob; bo_lo = lo; bo_hi = hi };
  t.faults_ever <- true;
  record t "fault" "brownout %s p=%.2f +[%.1f,%.1f]" node prob lo hi

let clear_brownout t node =
  if Hashtbl.mem t.brownouts node then begin
    Hashtbl.remove t.brownouts node;
    record t "fault" "brownout %s healed" node
  end

let browned_out t node = Hashtbl.mem t.brownouts node

(* Sum the service-time inflation a message suffers at each browned-out
   endpoint (slow to serve inbound mail, slow to push outbound mail).
   Draws come from [fault_rng] only when a brownout is installed, so
   healthy worlds take the no-entry fast path with zero extra draws. *)
let brownout_extra t ~src ~dst =
  if Hashtbl.length t.brownouts = 0 then 0.0
  else
    let one node =
      match Hashtbl.find_opt t.brownouts node with
      | Some bo when Sim.Rng.bool t.fault_rng bo.bo_prob ->
          let extra = Sim.Rng.uniform t.fault_rng bo.bo_lo bo.bo_hi in
          record t "fault" "brownout %s +%.2f" node extra;
          Sim.Metrics.incr t.net_metrics "fault.brownout";
          extra
      | _ -> 0.0
    in
    let d = one dst in
    let s = if src = dst then 0.0 else one src in
    d +. s

let clear_all_faults t =
  if Hashtbl.length t.faults > 0 then begin
    Hashtbl.reset t.faults;
    record t "fault" "all message faults cleared"
  end;
  if Hashtbl.length t.brownouts > 0 then begin
    Hashtbl.reset t.brownouts;
    record t "fault" "all brownouts cleared"
  end

let faults_active t =
  Hashtbl.length t.faults > 0 || Hashtbl.length t.brownouts > 0

let faults_ever t = t.faults_ever

let reachable t src dst =
  (node t dst).up
  && (not (partitioned t src dst))
  && not (oneway_cut t ~src ~dst)

let sample_latency t = t.latency t.net_rng

(* Delivery: the message is "in the wire" for one latency sample; at
   delivery time it runs on the destination only if the destination is up
   and the pair is unpartitioned (and the directed link not cut) at that
   moment. The destination may have crashed and recovered while the message
   was in flight — it is then delivered to the new incarnation, as a real
   network would. *)
let deliver t ~src ~dst ~delay f =
  ignore src;
  Sim.Engine.schedule t.eng ~delay (fun () ->
      let n = node t dst in
      if n.up && not (partitioned t src dst) then
        if oneway_cut t ~src ~dst then begin
          record t "fault" "cut drop %s->%s (one-way partition)" src dst;
          Sim.Metrics.incr t.net_metrics "fault.cut_dropped"
        end
        else Sim.Engine.spawn t.eng ~group:n.grp ~name:(src ^ "->" ^ dst) f
      else begin
        record t "net" "drop %s->%s (dst down or partitioned)" src dst;
        Sim.Metrics.incr t.net_metrics "net.dropped"
      end)

(* Apply per-link message faults. Invariant: every [send] consumes exactly
   one [net_rng] latency draw whether or not a rule is installed, so
   installing a fault on one link never shifts the latency stream observed
   by other links. All fault decisions draw from the independent
   [fault_rng] stream. *)
let send t ~src ~dst f =
  Sim.Metrics.incr t.net_metrics "net.msgs";
  let delay = sample_latency t in
  let delay = delay +. brownout_extra t ~src ~dst in
  match find_fault t ~src ~dst with
  | None -> deliver t ~src ~dst ~delay f
  | Some fl ->
      if fl.f_drop > 0.0 && Sim.Rng.bool t.fault_rng fl.f_drop then begin
        record t "fault" "drop %s->%s (injected)" src dst;
        Sim.Metrics.incr t.net_metrics "fault.drop"
      end
      else begin
        let delay =
          if fl.f_spike_p > 0.0 && Sim.Rng.bool t.fault_rng fl.f_spike_p
          then begin
            record t "fault" "delay %s->%s +%.2f" src dst fl.f_spike;
            Sim.Metrics.incr t.net_metrics "fault.delay";
            delay +. fl.f_spike
          end
          else delay
        in
        let delay =
          if fl.f_reorder > 0.0 && Sim.Rng.bool t.fault_rng fl.f_reorder
          then begin
            let extra = Sim.Rng.uniform t.fault_rng 1.0 3.0 in
            record t "fault" "reorder %s->%s (held %.2f, later sends overtake)"
              src dst extra;
            Sim.Metrics.incr t.net_metrics "fault.reorder";
            delay +. extra
          end
          else delay
        in
        if fl.f_dup > 0.0 && Sim.Rng.bool t.fault_rng fl.f_dup then begin
          record t "fault" "dup %s->%s" src dst;
          Sim.Metrics.incr t.net_metrics "fault.dup";
          deliver t ~src ~dst
            ~delay:(delay +. Sim.Rng.uniform t.fault_rng 0.1 1.0)
            f
        end;
        deliver t ~src ~dst ~delay f
      end

(* FIFO sends model the sequencer's reliable ordered channel: drop, dup and
   reorder would violate its contract (PROTOCOLS §11), so only delay spikes
   and cuts apply here. *)
let send_fifo t ~src ~dst f =
  Sim.Metrics.incr t.net_metrics "net.msgs";
  let n = node t dst in
  let last =
    match Hashtbl.find_opt n.fifo_last src with
    | Some r -> r
    | None ->
        let r = ref neg_infinity in
        Hashtbl.add n.fifo_last src r;
        r
  in
  let now = Sim.Engine.now t.eng in
  let lat = sample_latency t in
  let lat = lat +. brownout_extra t ~src ~dst in
  let lat =
    match find_fault t ~src ~dst with
    | Some fl when fl.f_spike_p > 0.0 && Sim.Rng.bool t.fault_rng fl.f_spike_p
      ->
        record t "fault" "delay %s->%s +%.2f (fifo)" src dst fl.f_spike;
        Sim.Metrics.incr t.net_metrics "fault.delay";
        lat +. fl.f_spike
    | _ -> lat
  in
  let arrival = Float.max (now +. lat) (!last +. 1e-6) in
  last := arrival;
  deliver t ~src ~dst ~delay:(arrival -. now) f

type watch = int

let watch_crash t id f =
  let n = node t id in
  let w = n.next_watch in
  n.next_watch <- w + 1;
  if n.up then n.watches <- (w, f) :: n.watches
  else
    (* Already down: notify after the detection delay. *)
    Sim.Engine.schedule t.eng ~delay:t.detect_delay (fun () -> f ());
  w

let unwatch t id w =
  let n = node t id in
  n.watches <- List.filter (fun (w', _) -> w' <> w) n.watches
