lib/workload/exp_hybrid.ml: Action Binder Gvd Hybrid List Naming Net Replica Scheme Service Sim Store Table
