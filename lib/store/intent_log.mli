(** Stable intention log for two-phase commit.

    Participants write {e prepare records} — the new states an action
    intends to install — before voting yes; coordinators write {e decision
    records} before telling anyone to commit (presumed abort: a missing
    decision record means the action aborted). Both record kinds live on
    stable storage and survive crashes; recovery replays them. *)

type decision = Commit | Abort

val pp_decision : Format.formatter -> decision -> unit

type t
(** One node's intention log. *)

val create : unit -> t

type prepare_record = {
  coordinator : string;  (** node hosting the decision record *)
  writes : (Uid.t * Object_state.t) list;
}

(* Participant side *)

val prepare :
  t -> action:string -> coordinator:string -> (Uid.t * Object_state.t) list -> unit
(** Record intended writes of [action] and who coordinates it. Several
    prepares for the same action {e merge}: an action touching many
    objects prepares each object's state as it reaches commit processing,
    and all of them must be applied together. A later write for the same
    UID replaces the earlier one. *)

val prepared : t -> action:string -> prepare_record option
(** The intended writes, if a prepare record exists. *)

val resolve : t -> action:string -> unit
(** Discard the prepare record (after commit application or abort). *)

val pending_writers : t -> Uid.t -> string list
(** Actions holding a prepare record that writes the given object; the
    store-side write reservation used to refuse conflicting prepares. *)

val in_doubt : t -> string list
(** Actions with outstanding prepare records, sorted; recovery must
    resolve each by consulting the coordinator's decision record. *)

(* Coordinator side *)

val record_decision : t -> action:string -> decision -> unit
(** Durably record the outcome of [action]. *)

val decision_of : t -> action:string -> decision option
(** Look up an outcome. [None] under presumed abort means {!Abort} if the
    action is known to have ended, "still running" otherwise — callers
    distinguish by protocol phase. *)

val forget_decision : t -> action:string -> unit
(** Garbage-collect a decision record once every participant resolved. *)

val staged_write : t -> action:string -> Uid.t -> Object_state.t option
(** The state [action]'s pending prepare would install for [uid], if any.
    Tests use it to assert that re-delivered (duplicate) prepares staged
    the identical state. *)
