(** Remote procedure calls over the simulated network.

    An {e endpoint} is a typed name for a remote operation; the process
    that implements it registers a handler with [serve], and clients invoke
    it with [call]. Handlers run as fibers on the callee node and may
    themselves suspend (perform nested calls, take locks, sleep).

    Failure semantics follow the paper's assumptions: nodes are fail-silent
    and failures are detectable. A call returns:
    - [Ok v] — the handler ran to completion and the reply arrived;
    - [Error Unreachable] — the callee was already down (or partitioned
      away) when the call was made; the caller learns after one
      failure-detection latency;
    - [Error Crashed] — the callee crashed after accepting the call and
      before replying; the perfect failure detector notifies the caller;
    - [Error Timed_out] — no reply within the caller-supplied timeout
      (used by protocols that bound waiting);
    - [Error No_service] — the callee is up but no handler is registered
      (e.g. it crashed and its recovery has not re-activated the service).

    Service {e registrations} survive crashes — per §3.1 the executable
    code of an object's operations lives on stable storage — but a handler
    can consult volatile state that crash hooks have reset, and
    registrations can be explicitly [withdraw]n to model services that must
    be re-announced after recovery. *)

type t
(** RPC runtime bound to one network. *)

type error = Unreachable | Crashed | Timed_out | No_service

val pp_error : Format.formatter -> error -> unit
(** Render an error for traces and messages. *)

val error_to_string : error -> string

type ('req, 'resp) endpoint
(** A typed operation name. Create exactly one endpoint value per logical
    operation and share it between server and client code. *)

val endpoint : string -> ('req, 'resp) endpoint
(** [endpoint name] is a fresh endpoint. Two endpoints created by separate
    calls never interoperate, even with equal names. *)

val endpoint_name : ('req, 'resp) endpoint -> string

val create : ?default_timeout:float -> Network.t -> t
(** [create net] is an RPC runtime for [net]. [default_timeout] (60.0)
    bounds every call that does not pass its own [?timeout]: the crash
    watch covers fail-silent deaths, but a network {e partition} severs
    the reply path without killing anyone, and an unbounded call would
    hang forever. The default is far above any legitimate handler time
    (lock waits are bounded at 30 by convention). *)

val network : t -> Network.t
(** The underlying network. *)

val set_shed_expired : t -> bool -> unit
(** Enable (or disable) server-side shedding of expired calls: when on, a
    request whose propagated [deadline_at] has already passed at unpack
    time is answered [Error Timed_out] immediately instead of running the
    handler — the initiator has given up, so the work (and any locks it
    would take) is pure waste. Each shed bumps [retry.shed_expired].
    Default off; when off the deadline metadata is carried but never acted
    on, leaving trajectories byte-identical. *)

val shed_expired : t -> bool
(** Whether expired-call shedding is on. *)

val serve :
  t -> node:Network.node_id -> ('req, 'resp) endpoint -> ('req -> 'resp) -> unit
(** [serve t ~node ep h] installs [h] as the handler for [ep] on [node],
    replacing any previous handler. [h] runs in a fiber on [node] for each
    incoming call. *)

val withdraw : t -> node:Network.node_id -> ('req, 'resp) endpoint -> unit
(** Remove the handler for [ep] on [node]; subsequent calls get
    [Error No_service]. *)

val serving : t -> node:Network.node_id -> ('req, 'resp) endpoint -> bool
(** Whether a handler is currently installed. *)

val call :
  t ->
  from:Network.node_id ->
  dst:Network.node_id ->
  ?timeout:float ->
  ?deadline_at:float ->
  ('req, 'resp) endpoint ->
  'req ->
  ('resp, error) result
(** [call t ~from ~dst ep req] invokes [ep] on [dst] from a fiber running
    on [from]. Suspends the calling fiber until the reply, a failure
    notification, or the [timeout] (default: none). Must be called from
    within a fiber. Every call bumps the aggregate [rpc.calls] counter
    and a per-operation [rpc.op.<endpoint name>] counter, and feeds its
    round-trip outcome into {!Network.health}. [deadline_at] propagates
    the initiator's absolute deadline in the request metadata so a
    shedding server (see {!set_shed_expired}) can refuse work whose
    initiator has already timed out. *)

type hedge
(** Policy for hedged (backup-request) calls. *)

val hedge : ?floor:float -> unit -> hedge
(** [hedge ()] is a hedging policy whose backup delay is
    {!Health.hedge_delay} with the given [floor] (default [4.0]). *)

val call_hedged :
  t ->
  from:Network.node_id ->
  dst:Network.node_id ->
  ?alt:Network.node_id ->
  ?keep_primary:bool ->
  ?alt_won:bool ref ->
  ?timeout:float ->
  ?deadline_at:float ->
  hedge:hedge ->
  ('req, 'resp) endpoint ->
  'req ->
  ('resp, error) result
(** Like {!call}, but if the primary has not answered within the
    health-derived hedge delay, a backup copy races it — to [alt] when
    given (a sibling replica), otherwise re-sent to [dst] — and the first
    [Ok] wins. The loser is cancelled cooperatively: a backup whose
    primary already won is never sent, a late reply is ignored, and a
    copy still in flight when the race settles is dropped at delivery
    {e before} the handler runs ([rpc.hedge_cancelled]) — so a slow
    losing prepare can never re-stage state for an action whose winning
    round already committed. Both copies may execute the handler when
    deliveries interleave before the race settles (hedges ride below the
    duplicate guard), so {b only idempotent operations may be hedged}.
    Each backup actually launched bumps [rpc.hedges].

    Sibling routing extensions: when [alt] is given and the backup copy
    produces the winning [Ok], the [alt_won] cell (if any) is set — the
    caller learns the answer came from the sibling, not [dst], and can
    refuse to treat it as [dst]'s acknowledgement (each such win bumps
    [rpc.sibling_wins]). [keep_primary] (default [false]) exempts the
    {e primary} copy from cooperative cancellation — required for
    sibling-routed phase-2 decisions, which must still reach the primary
    even after the sibling's quicker answer settles the race; prepares
    keep the default (cancel both), since an undelivered prepare on the
    primary is harmless once the caller counts the leg as failed. *)

val call_all :
  t ->
  from:Network.node_id ->
  ?timeout:float ->
  ?hedge:hedge ->
  ?deadline_at:float ->
  ('req, 'resp) endpoint ->
  (Network.node_id * 'req) list ->
  (Network.node_id * ('resp, error) result) list
(** [call_all t ~from ep reqs] issues one {!call} per [(dst, req)] pair
    {e concurrently} (scatter) and suspends the calling fiber until every
    call has settled (gather). Results are returned in request order, each
    tagged with its destination; per-call failures surface as [Error] items
    rather than aborting the scatter. The elapsed virtual time is the
    {e maximum} of the individual call times, not their sum — this is the
    primitive behind the parallel commit copy-back. A one-element list is
    exactly equivalent to a plain [call]. Must run within a fiber.
    With [?hedge] each leg becomes a {!call_hedged} (same-destination
    backup), turning the scatter's straggler problem — one browned-out
    participant stalls the whole gather — into a min-of-two draw.
    Omitting [hedge] and [deadline_at] takes the exact pre-hedging code
    path. *)

val notify :
  t -> from:Network.node_id -> dst:Network.node_id -> ('req, unit) endpoint -> 'req -> unit
(** One-way, best-effort message: runs the handler on [dst] if it is
    reachable, drops silently otherwise. Never blocks. *)
