lib/net/fault.ml: Network Sim
