type t = {
  counters_tbl : (string, int ref) Hashtbl.t;
  samples_tbl : (string, float list ref) Hashtbl.t; (* newest first *)
}

let create () = { counters_tbl = Hashtbl.create 32; samples_tbl = Hashtbl.create 32 }

let find_counter t name =
  match Hashtbl.find_opt t.counters_tbl name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add t.counters_tbl name r;
      r

let incr t ?(by = 1) name =
  let r = find_counter t name in
  r := !r + by

let counter t name =
  match Hashtbl.find_opt t.counters_tbl name with Some r -> !r | None -> 0

let find_samples t name =
  match Hashtbl.find_opt t.samples_tbl name with
  | Some r -> r
  | None ->
      let r = ref [] in
      Hashtbl.add t.samples_tbl name r;
      r

let observe t name v =
  let r = find_samples t name in
  r := v :: !r

let samples t name =
  match Hashtbl.find_opt t.samples_tbl name with
  | Some r -> List.rev !r
  | None -> []

let mean t name =
  match samples t name with
  | [] -> nan
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let percentile t name p =
  match samples t name with
  | [] -> nan
  | xs ->
      let arr = Array.of_list xs in
      Array.sort Float.compare arr;
      let n = Array.length arr in
      let rank =
        int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1
      in
      let rank = max 0 (min (n - 1) rank) in
      arr.(rank)

let max_sample t name =
  match samples t name with
  | [] -> nan
  | x :: xs -> List.fold_left Float.max x xs

let sample_count t name = List.length (samples t name)

let counters t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters_tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let distributions t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.samples_tbl []
  |> List.sort String.compare

let merge_into ~dst src =
  Hashtbl.iter (fun k r -> incr dst ~by:!r k) src.counters_tbl;
  Hashtbl.iter
    (fun k r -> List.iter (fun v -> observe dst k v) (List.rev !r))
    src.samples_tbl

let clear t =
  Hashtbl.reset t.counters_tbl;
  Hashtbl.reset t.samples_tbl

let pp ppf t =
  List.iter (fun (k, v) -> Format.fprintf ppf "%-32s %d@." k v) (counters t);
  List.iter
    (fun name ->
      Format.fprintf ppf "%-32s n=%d mean=%.4f p95=%.4f max=%.4f@." name
        (sample_count t name) (mean t name) (percentile t name 95.0)
        (max_sample t name))
    (distributions t)
