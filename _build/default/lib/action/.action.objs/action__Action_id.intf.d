lib/action/action_id.mli: Format
