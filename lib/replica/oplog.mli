(** Per-object, version-indexed operation logs for delta state shipping.

    Commit copy-back ({!Commit.attach}) historically wrote the whole
    object state to every store in [StA] — the dominant byte cost for a
    large object receiving small writes. This subsystem records, on every
    server replica, the operations each committed version applied (the
    log is appended at instance commit, before the action's locks drop,
    so it is version-indexed by the same counters backward validation
    uses). At copy-back the coordinating client consults a per-store
    {e acknowledged-version vector} and ships only the log suffix
    [(v_store, v_commit]] as a {e delta prepare}; stores fold the ops over
    their committed state and stage the resulting full state, so phase 2
    and crash recovery are untouched.

    Everything here is advisory with a safe failure mode: a truncated
    log, a stale vector entry or an unknown implementation only forces a
    full-state fallback (or one extra prepare round), never an incorrect
    state. Logs are volatile — they die with the server node, like the
    instances whose history they record.

    Metrics: [oplog.truncations] counts compacted records,
    [oplog.resident_records] is the live record population (incremented
    and decremented as a gauge). *)

type t

val create : ?max_records:int -> ?max_age:float -> Sim.Metrics.t -> t
(** [create metrics] is an empty log store. [max_records] (default 12)
    bounds each (node, object) log's length; [max_age] (default 180.0,
    virtual seconds) bounds record age. Both are enforced on append. *)

val set_limits : t -> ?max_records:int -> ?max_age:float -> unit -> unit
(** Adjust the compaction policy (tests force truncation with this). *)

(** {2 Version-indexed logs} (keyed by server node and object) *)

val append :
  t ->
  now:float ->
  node:Net.Network.node_id ->
  uid:Store.Uid.t ->
  version:Store.Version.t ->
  ops:string list ->
  unit
(** Record that [version] was produced by applying [ops] (in order) to
    its predecessor. Called at instance commit, then compacted. *)

val records :
  t ->
  node:Net.Network.node_id ->
  uid:Store.Uid.t ->
  (Store.Version.t * string list) list
(** The retained log, oldest first. *)

val install :
  t ->
  now:float ->
  node:Net.Network.node_id ->
  uid:Store.Uid.t ->
  (Store.Version.t * string list) list ->
  unit
(** Replace the log with [entries] (oldest first) — checkpoint-anchored
    truncation: a cohort installing a coordinator checkpoint adopts the
    coordinator's retained suffix, so cohort logs never outgrow what the
    checkpoint anchors. Re-stamped at [now], then compacted. *)

val truncate_below :
  t -> node:Net.Network.node_id -> uid:Store.Uid.t -> counter:int -> unit
(** Drop records with versions below [counter]. *)

val drop_node : t -> Net.Network.node_id -> unit
(** Forget every log of [node] (crash hook: logs are volatile). *)

val suffix_of :
  (Store.Version.t * string list) list ->
  base:int ->
  upto:int ->
  (Store.Version.t * string list) list option
(** [suffix_of chain ~base ~upto] is the delta decision rule: the
    contiguous run of versions [base+1 .. upto] out of [chain] (oldest
    first), or [None] if any step is missing or op-less — the caller must
    then fall back to full-state shipping. *)

(** {2 Per-store acknowledged-version vector} (keyed by client, store,
    object) *)

val last_acked :
  t ->
  client:Net.Network.node_id ->
  store:Net.Network.node_id ->
  uid:Store.Uid.t ->
  int option
(** The last committed counter [store] is known to have applied. *)

val note_acked :
  t ->
  client:Net.Network.node_id ->
  store:Net.Network.node_id ->
  uid:Store.Uid.t ->
  int ->
  unit
(** Learn a store's counter: from its phase-2 commit acknowledgement, or
    from the counter reported in a delta-miss vote. A negative counter
    (store holds nothing) clears the entry. *)

val forget_ack :
  t ->
  client:Net.Network.node_id ->
  store:Net.Network.node_id ->
  uid:Store.Uid.t ->
  unit
(** Drop the entry (a phase-2 commit whose acknowledgement was lost: the
    store's level is unknown, so the next copy must not presume it). *)

val drop_client : t -> Net.Network.node_id -> unit
(** Forget every vector entry of [client] (crash hook). *)

(** {2 Shared per-store floor} (keyed by store and object only)

    Prepare and delta-miss votes piggyback the store's committed counter;
    every coordinator folds those levels into this client-independent
    vector, so the {e first} commit from a new client can already start
    from a delta instead of full state. Monotone max-merge: versions are
    global per object, so the floor is a valid lower bound; staleness
    costs one delta-miss retry, never correctness. *)

val note_store : t -> store:Net.Network.node_id -> uid:Store.Uid.t -> int -> unit
(** Fold an observed committed counter into the shared floor (ignored if
    not above the current floor; negative levels never install). *)

val store_floor : t -> store:Net.Network.node_id -> uid:Store.Uid.t -> int option
(** The shared floor, if any client ever observed the store's level. *)

val known_version :
  t ->
  client:Net.Network.node_id ->
  store:Net.Network.node_id ->
  uid:Store.Uid.t ->
  int option
(** The delta-base lookup: the max of the per-client ack and the shared
    floor — both are lower bounds on the store's monotone committed
    counter, and under interleaved writers only the floor keeps pace. An
    overshooting base costs a delta-miss retry, never correctness. *)

val drop_store : t -> Net.Network.node_id -> unit
(** Forget the shared floor of every object on [store] (crash hook for
    store nodes: a restored store may have rewound). *)

(** {2 Golden full-state shadow} (audit support) *)

val record_golden :
  t -> uid:Store.Uid.t -> version:Store.Version.t -> payload:string -> unit
(** Remember what a full-state install of [version] would write (recorded
    by the copy-back before it ships anything, over a bounded sliding
    window of versions). *)

val golden : t -> uid:Store.Uid.t -> version:Store.Version.t -> string option
(** The recorded full-state payload of exactly [version] — counter AND
    committing action — if still in the window. {!Audit.chaos} checks
    every store's final state against this: a delta-applied state must be
    byte-equal to the full-state replay. The lookup is identity-exact
    because shadows are recorded before 2PC decides: a racing copy-back
    that loses backward validation still recorded its (never-installed)
    payload, and matching by counter alone would compare the winner's
    committed bytes against the loser's ghost. *)

val resident : t -> int
(** Current [oplog.resident_records] reading. *)
