lib/workload/exp_availability.ml: List Naming Net Option Printf Replica Scheme Service Sim Table
