(* Tests for the replication layer: object implementations, server
   activation and invocation, the three replication policies (§2.3),
   commit-time state copy-back with exclusion (§2.3(3)). *)

open Store
open Replica

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

type world = {
  eng : Sim.Engine.t;
  net : Net.Network.t;
  sh : Action.Store_host.t;
  art : Action.Atomic.runtime;
  srv : Server.runtime;
  grt : Group.runtime;
  sup : Uid.supply;
}

(* A world with a naming/sequencer node "ns", clients and servers/stores. *)
let make_world ?seed ~servers ~stores ~clients () =
  let eng = Sim.Engine.create ?seed () in
  let net = Net.Network.create eng in
  let rpc = Net.Rpc.create net in
  let sh = Action.Store_host.create rpc in
  let rh = Action.Resource_host.create rpc in
  let art = Action.Atomic.make_runtime sh rh in
  let impls = Object_impl.registry () in
  List.iter (Object_impl.register impls) Object_impl.stock_all;
  let srv = Server.create art impls in
  let all = ("ns" :: servers) @ stores @ clients in
  List.iter
    (fun n ->
      Net.Network.add_node net n;
      Action.Store_host.add sh n;
      Action.Recovery.attach art ~node:n)
    (List.sort_uniq String.compare all);
  List.iter (fun n -> Server.install_host srv n) servers;
  let grt = Group.create srv ~sequencer:"ns" in
  { eng; net; sh; art; srv; grt; sup = Uid.supply () }

let new_object w ~label ~payload ~stores =
  let uid = Uid.fresh w.sup ~label in
  List.iter
    (fun s -> Action.Store_host.seed w.sh s uid (Object_state.initial payload))
    stores;
  uid

let store_payload w node uid =
  match Object_store.read (Action.Store_host.objects w.sh node) uid with
  | Some s -> Some s.Object_state.payload
  | None -> None

(* ------------------------------------------------------------------ *)
(* Object_impl *)

let test_impl_counter () =
  let p, r = Object_impl.counter.Object_impl.apply "4" "incr" in
  check_string "payload" "5" p;
  check_string "reply" "5" r;
  let p, r = Object_impl.counter.Object_impl.apply "5" "add 10" in
  check_string "payload" "15" p;
  check_string "reply" "15" r;
  let p, r = Object_impl.counter.Object_impl.apply "15" "get" in
  check_string "unchanged" "15" p;
  check_string "read" "15" r

let test_impl_account_overdraft () =
  let p, r = Object_impl.account.Object_impl.apply "10" "withdraw 20" in
  check_string "unchanged" "10" p;
  check_string "refused" "insufficient" r;
  let p, r = Object_impl.account.Object_impl.apply "10" "withdraw 10" in
  check_string "drained" "0" p;
  check_string "ok" "0" r

let test_impl_register () =
  let p, _ = Object_impl.register_cell.Object_impl.apply "" "write hello" in
  check_string "written" "hello" p;
  let _, r = Object_impl.register_cell.Object_impl.apply "hello" "read" in
  check_string "read" "hello" r

(* ------------------------------------------------------------------ *)
(* Single-copy passive (figure 2 / figure 3 mechanics) *)

let test_single_copy_commit_writes_all_stores () =
  let w = make_world ~servers:[ "alpha" ] ~stores:[ "beta1"; "beta2" ] ~clients:[ "c" ] () in
  let uid = new_object w ~label:"ctr" ~payload:"0" ~stores:[ "beta1"; "beta2" ] in
  let outcome = ref (Error "never ran") in
  Net.Network.spawn_on w.net "c" (fun () ->
      outcome :=
        Action.Atomic.atomically w.art ~node:"c" (fun act ->
            match
              Group.activate w.grt ~client:"c" ~uid ~impl:"counter"
                ~policy:Policy.Single_copy_passive ~servers:[ "alpha" ]
                ~stores:[ "beta1"; "beta2" ]
            with
            | Error e -> raise (Action.Atomic.Abort e)
            | Ok g ->
                Commit.attach w.grt act g ~exclude:(fun _ _ -> Ok ()) ();
                (match Group.invoke w.grt g ~act "incr" with
                | Ok r -> check_string "reply" "1" r
                | Error e ->
                    raise (Action.Atomic.Abort (Format.asprintf "%a" Group.pp_invoke_error e)))));
  Sim.Engine.run w.eng;
  check_bool "committed" true (!outcome = Ok ());
  Alcotest.(check (option string)) "beta1" (Some "1") (store_payload w "beta1" uid);
  Alcotest.(check (option string)) "beta2" (Some "1") (store_payload w "beta2" uid)

let test_single_copy_server_crash_aborts () =
  let w = make_world ~servers:[ "alpha" ] ~stores:[ "beta" ] ~clients:[ "c" ] () in
  let uid = new_object w ~label:"ctr" ~payload:"0" ~stores:[ "beta" ] in
  let outcome = ref (Ok ()) in
  Net.Network.spawn_on w.net "c" (fun () ->
      outcome :=
        Action.Atomic.atomically w.art ~node:"c" (fun act ->
            match
              Group.activate w.grt ~client:"c" ~uid ~impl:"counter"
                ~policy:Policy.Single_copy_passive ~servers:[ "alpha" ]
                ~stores:[ "beta" ]
            with
            | Error e -> raise (Action.Atomic.Abort e)
            | Ok g ->
                Commit.attach w.grt act g ~exclude:(fun _ _ -> Ok ()) ();
                (match Group.invoke w.grt g ~act "incr" with
                | Ok _ -> ()
                | Error _ -> raise (Action.Atomic.Abort "invoke failed"));
                (* Server dies before commit; commit view must fail. *)
                Net.Network.crash w.net "alpha";
                Sim.Engine.sleep w.eng 2.0));
  Sim.Engine.run w.eng;
  check_bool "aborted" true (Result.is_error !outcome);
  Alcotest.(check (option string)) "store unchanged" (Some "0") (store_payload w "beta" uid)

let test_read_only_skips_copy () =
  let w = make_world ~servers:[ "alpha" ] ~stores:[ "beta" ] ~clients:[ "c" ] () in
  let uid = new_object w ~label:"ctr" ~payload:"7" ~stores:[ "beta" ] in
  Net.Network.spawn_on w.net "c" (fun () ->
      ignore
        (Action.Atomic.atomically w.art ~node:"c" (fun act ->
             match
               Group.activate w.grt ~client:"c" ~uid ~impl:"counter"
                 ~policy:Policy.Single_copy_passive ~servers:[ "alpha" ]
                 ~stores:[ "beta" ]
             with
             | Error e -> raise (Action.Atomic.Abort e)
             | Ok g -> (
                 Commit.attach w.grt act g ~exclude:(fun _ _ -> Ok ()) ();
                 match Group.invoke w.grt g ~act ~write:false "get" with
                 | Ok r -> check_string "read" "7" r
                 | Error _ -> raise (Action.Atomic.Abort "invoke failed")))));
  Sim.Engine.run w.eng;
  check_int "read optimised" 1
    (Sim.Metrics.counter (Net.Network.metrics w.net) "commit.read_optimised")

let test_commit_excludes_crashed_store () =
  let w =
    make_world ~servers:[ "alpha" ] ~stores:[ "beta1"; "beta2" ] ~clients:[ "c" ] ()
  in
  let uid = new_object w ~label:"ctr" ~payload:"0" ~stores:[ "beta1"; "beta2" ] in
  let excluded = ref [] in
  let outcome = ref (Error "never ran") in
  Net.Network.spawn_on w.net "c" (fun () ->
      outcome :=
        Action.Atomic.atomically w.art ~node:"c" (fun act ->
            match
              Group.activate w.grt ~client:"c" ~uid ~impl:"counter"
                ~policy:Policy.Single_copy_passive ~servers:[ "alpha" ]
                ~stores:[ "beta1"; "beta2" ]
            with
            | Error e -> raise (Action.Atomic.Abort e)
            | Ok g ->
                Commit.attach w.grt act g
                  ~exclude:(fun _ failed ->
                    excluded := failed;
                    Ok ())
                  ();
                (match Group.invoke w.grt g ~act "incr" with
                | Ok _ -> ()
                | Error _ -> raise (Action.Atomic.Abort "invoke failed"));
                (* beta2 dies before commit: the copy must fail there and
                   trigger exclusion, but the action still commits. *)
                Net.Network.crash w.net "beta2";
                Sim.Engine.sleep w.eng 2.0));
  Sim.Engine.run w.eng;
  check_bool "committed" true (!outcome = Ok ());
  Alcotest.(check (list string)) "excluded beta2" [ "beta2" ] !excluded;
  Alcotest.(check (option string)) "beta1 updated" (Some "1") (store_payload w "beta1" uid)

let test_withdraw_prepares_mixed_votes () =
  (* The parallel prepare scatter returns a mixed vote set: one store is
     stale (backward validation fails), one voted yes, one is crashed.
     The abort path must withdraw the prepare records of the yes-voters —
     a leaked record is a write reservation that blocks every future
     writer of the object. *)
  let w =
    make_world ~servers:[ "alpha" ] ~stores:[ "s1"; "s2"; "s3" ]
      ~clients:[ "c" ] ()
  in
  let uid = new_object w ~label:"ctr" ~payload:"0" ~stores:[ "s1"; "s3" ] in
  (* s2 already holds a newer committed version: activation picks it as
     the freshest state, so the commit-time prepare is its direct
     successor at s2 (Vote_yes) but a version skip at s1 (Vote_stale). *)
  Action.Store_host.seed w.sh "s2" uid
    (Object_state.make ~payload:"7"
       ~version:{ Version.counter = 2; committed_by = "elsewhere" });
  let outcome = ref (Ok ()) in
  Net.Network.spawn_on w.net "c" (fun () ->
      outcome :=
        Action.Atomic.atomically w.art ~node:"c" (fun act ->
            match
              Group.activate w.grt ~client:"c" ~uid ~impl:"counter"
                ~policy:Policy.Single_copy_passive ~servers:[ "alpha" ]
                ~stores:[ "s1"; "s2"; "s3" ]
            with
            | Error e -> raise (Action.Atomic.Abort e)
            | Ok g ->
                Commit.attach w.grt act g ~exclude:(fun _ _ -> Ok ()) ();
                (match Group.invoke w.grt g ~act "incr" with
                | Ok _ -> ()
                | Error _ -> raise (Action.Atomic.Abort "invoke failed"));
                (* s3 dies before commit: its vote is unreachable. *)
                Net.Network.crash w.net "s3";
                Sim.Engine.sleep w.eng 2.0));
  Sim.Engine.run w.eng;
  (match !outcome with
  | Error why ->
      check_bool
        ("aborted on the stale vote: " ^ why)
        true
        (Astring.String.is_infix ~affix:"stale" why)
  | Ok () -> Alcotest.fail "expected the stale vote to abort the action");
  (* No reservation leaked anywhere: every surviving store's intent log
     is clean again. *)
  List.iter
    (fun s ->
      Alcotest.(check (list string))
        (s ^ " intent log clean") []
        (Intent_log.in_doubt (Action.Store_host.log w.sh s)))
    [ "s1"; "s2" ];
  (* And the committed states are untouched. *)
  Alcotest.(check (option string)) "s1 unchanged" (Some "0")
    (store_payload w "s1" uid);
  Alcotest.(check (option string)) "s2 unchanged" (Some "7")
    (store_payload w "s2" uid)

let test_commit_aborts_when_all_stores_down () =
  let w = make_world ~servers:[ "alpha" ] ~stores:[ "beta" ] ~clients:[ "c" ] () in
  let uid = new_object w ~label:"ctr" ~payload:"0" ~stores:[ "beta" ] in
  let outcome = ref (Ok ()) in
  Net.Network.spawn_on w.net "c" (fun () ->
      outcome :=
        Action.Atomic.atomically w.art ~node:"c" (fun act ->
            match
              Group.activate w.grt ~client:"c" ~uid ~impl:"counter"
                ~policy:Policy.Single_copy_passive ~servers:[ "alpha" ]
                ~stores:[ "beta" ]
            with
            | Error e -> raise (Action.Atomic.Abort e)
            | Ok g ->
                Commit.attach w.grt act g ~exclude:(fun _ _ -> Ok ()) ();
                (match Group.invoke w.grt g ~act "incr" with
                | Ok _ -> ()
                | Error _ -> raise (Action.Atomic.Abort "invoke failed"));
                Net.Network.crash w.net "beta";
                Sim.Engine.sleep w.eng 2.0));
  Sim.Engine.run w.eng;
  check_bool "aborted" true (Result.is_error !outcome)

(* ------------------------------------------------------------------ *)
(* Isolation between actions *)

let test_actions_isolated_by_locks () =
  let w = make_world ~servers:[ "alpha" ] ~stores:[ "beta" ] ~clients:[ "c1"; "c2" ] () in
  let uid = new_object w ~label:"acct" ~payload:"100" ~stores:[ "beta" ] in
  let order = ref [] in
  let run_client client amount =
    Net.Network.spawn_on w.net client (fun () ->
        ignore
          (Action.Atomic.atomically w.art ~node:client (fun act ->
               match
                 Group.activate w.grt ~client ~uid ~impl:"account"
                   ~policy:Policy.Single_copy_passive ~servers:[ "alpha" ]
                   ~stores:[ "beta" ]
               with
               | Error e -> raise (Action.Atomic.Abort e)
               | Ok g -> (
                   Commit.attach w.grt act g ~exclude:(fun _ _ -> Ok ()) ();
                   match Group.invoke w.grt g ~act ("deposit " ^ string_of_int amount) with
                   | Ok r ->
                       order := (client, r) :: !order;
                       Sim.Engine.sleep w.eng 5.0
                   | Error _ -> raise (Action.Atomic.Abort "invoke failed")))))
  in
  run_client "c1" 10;
  run_client "c2" 20;
  Sim.Engine.run w.eng;
  (* Both deposits must be serialised: final balance 130 at the store. *)
  Alcotest.(check (option string)) "serialised" (Some "130") (store_payload w "beta" uid);
  check_int "both ran" 2 (List.length !order)

let test_abort_discards_staged_write () =
  let w = make_world ~servers:[ "alpha" ] ~stores:[ "beta" ] ~clients:[ "c" ] () in
  let uid = new_object w ~label:"acct" ~payload:"100" ~stores:[ "beta" ] in
  Net.Network.spawn_on w.net "c" (fun () ->
      ignore
        (Action.Atomic.atomically w.art ~node:"c" (fun act ->
             match
               Group.activate w.grt ~client:"c" ~uid ~impl:"account"
                 ~policy:Policy.Single_copy_passive ~servers:[ "alpha" ]
                 ~stores:[ "beta" ]
             with
             | Error e -> raise (Action.Atomic.Abort e)
             | Ok g ->
                 Commit.attach w.grt act g ~exclude:(fun _ _ -> Ok ()) ();
                 ignore (Group.invoke w.grt g ~act "deposit 50");
                 raise (Action.Atomic.Abort "rollback"))));
  Sim.Engine.run w.eng;
  Alcotest.(check (option string)) "store unchanged" (Some "100") (store_payload w "beta" uid);
  Alcotest.(check (option string))
    "server state rolled back" (Some "100")
    (Server.instance_payload w.srv ~node:"alpha" ~uid)

(* ------------------------------------------------------------------ *)
(* Active replication (figure 4 mechanics) *)

let active_deposit w uid ~client ~servers ~stores amount =
  Action.Atomic.atomically w.art ~node:client (fun act ->
      match
        Group.activate w.grt ~client ~uid ~impl:"account"
          ~policy:(Policy.Active (List.length servers)) ~servers ~stores
      with
      | Error e -> raise (Action.Atomic.Abort e)
      | Ok g -> (
          Commit.attach w.grt act g ~exclude:(fun _ _ -> Ok ()) ();
          match Group.invoke w.grt g ~act ("deposit " ^ string_of_int amount) with
          | Ok r -> (g, r)
          | Error e ->
              raise
                (Action.Atomic.Abort (Format.asprintf "%a" Group.pp_invoke_error e))))

let test_active_replicas_stay_consistent () =
  let w =
    make_world ~servers:[ "a1"; "a2"; "a3" ] ~stores:[ "beta" ] ~clients:[ "c" ] ()
  in
  let uid = new_object w ~label:"acct" ~payload:"0" ~stores:[ "beta" ] in
  let outcome = ref (Error "never ran") in
  Net.Network.spawn_on w.net "c" (fun () ->
      outcome :=
        Result.map (fun (_, r) -> r)
          (active_deposit w uid ~client:"c" ~servers:[ "a1"; "a2"; "a3" ]
             ~stores:[ "beta" ] 25));
  Sim.Engine.run w.eng;
  check_bool "committed" true (!outcome = Ok "25");
  List.iter
    (fun node ->
      Alcotest.(check (option string))
        (node ^ " consistent") (Some "25")
        (Server.instance_payload w.srv ~node ~uid))
    [ "a1"; "a2"; "a3" ];
  Alcotest.(check (option string)) "store" (Some "25") (store_payload w "beta" uid)

let test_active_masks_replica_crash () =
  let w = make_world ~servers:[ "a1"; "a2" ] ~stores:[ "beta" ] ~clients:[ "c" ] () in
  let uid = new_object w ~label:"acct" ~payload:"0" ~stores:[ "beta" ] in
  let outcome = ref (Error "never ran") in
  Net.Network.spawn_on w.net "c" (fun () ->
      outcome :=
        Action.Atomic.atomically w.art ~node:"c" (fun act ->
            match
              Group.activate w.grt ~client:"c" ~uid ~impl:"account"
                ~policy:(Policy.Active 2) ~servers:[ "a1"; "a2" ] ~stores:[ "beta" ]
            with
            | Error e -> raise (Action.Atomic.Abort e)
            | Ok g ->
                Commit.attach w.grt act g ~exclude:(fun _ _ -> Ok ()) ();
                (match Group.invoke w.grt g ~act "deposit 5" with
                | Ok _ -> ()
                | Error _ -> raise (Action.Atomic.Abort "first invoke failed"));
                (* One replica dies mid-action: the group must keep going. *)
                Net.Network.crash w.net "a1";
                Sim.Engine.sleep w.eng 2.0;
                (match Group.invoke w.grt g ~act "deposit 7" with
                | Ok r -> check_string "survivor answered" "12" r
                | Error _ -> raise (Action.Atomic.Abort "second invoke failed"))));
  Sim.Engine.run w.eng;
  check_bool "committed" true (!outcome = Ok ());
  Alcotest.(check (option string)) "store has both" (Some "12") (store_payload w "beta" uid)

let test_active_all_replicas_down_fails () =
  let w = make_world ~servers:[ "a1"; "a2" ] ~stores:[ "beta" ] ~clients:[ "c" ] () in
  let uid = new_object w ~label:"acct" ~payload:"0" ~stores:[ "beta" ] in
  let outcome = ref (Ok ()) in
  Net.Network.spawn_on w.net "c" (fun () ->
      outcome :=
        Action.Atomic.atomically w.art ~node:"c" (fun act ->
            match
              Group.activate w.grt ~client:"c" ~uid ~impl:"account"
                ~policy:(Policy.Active 2) ~servers:[ "a1"; "a2" ] ~stores:[ "beta" ]
            with
            | Error e -> raise (Action.Atomic.Abort e)
            | Ok g -> (
                Net.Network.crash w.net "a1";
                Net.Network.crash w.net "a2";
                Sim.Engine.sleep w.eng 2.0;
                match Group.invoke w.grt g ~act "deposit 5" with
                | Ok _ -> ()
                | Error _ -> raise (Action.Atomic.Abort "no replica"))));
  Sim.Engine.run w.eng;
  check_bool "aborted" true (Result.is_error !outcome)

(* ------------------------------------------------------------------ *)
(* Coordinator-cohort (figure 4 mechanics, passive variant) *)

let test_cc_normal_operation_checkpoints () =
  let w = make_world ~servers:[ "k1"; "k2" ] ~stores:[ "beta" ] ~clients:[ "c" ] () in
  let uid = new_object w ~label:"acct" ~payload:"0" ~stores:[ "beta" ] in
  let outcome = ref (Error "never ran") in
  Net.Network.spawn_on w.net "c" (fun () ->
      outcome :=
        Action.Atomic.atomically w.art ~node:"c" (fun act ->
            match
              Group.activate w.grt ~client:"c" ~uid ~impl:"account"
                ~policy:(Policy.Coordinator_cohort 2) ~servers:[ "k1"; "k2" ]
                ~stores:[ "beta" ]
            with
            | Error e -> raise (Action.Atomic.Abort e)
            | Ok g -> (
                Commit.attach w.grt act g ~exclude:(fun _ _ -> Ok ()) ();
                match Group.invoke w.grt g ~act "deposit 30" with
                | Ok r -> check_string "reply" "30" r
                | Error _ -> raise (Action.Atomic.Abort "invoke failed"))));
  Sim.Engine.run w.eng;
  check_bool "committed" true (!outcome = Ok ());
  check_bool "checkpoints happened" true
    (Sim.Metrics.counter (Net.Network.metrics w.net) "server.checkpoints" > 0);
  (* The cohort received the committed state via checkpoint. *)
  Alcotest.(check (option string))
    "cohort state" (Some "30")
    (Server.instance_payload w.srv ~node:"k2" ~uid)

let test_cc_failover_continues_action () =
  let w = make_world ~servers:[ "k1"; "k2" ] ~stores:[ "beta" ] ~clients:[ "c" ] () in
  let uid = new_object w ~label:"acct" ~payload:"0" ~stores:[ "beta" ] in
  let outcome = ref (Error "never ran") in
  Net.Network.spawn_on w.net "c" (fun () ->
      outcome :=
        Action.Atomic.atomically w.art ~node:"c" (fun act ->
            match
              Group.activate w.grt ~client:"c" ~uid ~impl:"account"
                ~policy:(Policy.Coordinator_cohort 2) ~servers:[ "k1"; "k2" ]
                ~stores:[ "beta" ]
            with
            | Error e -> raise (Action.Atomic.Abort e)
            | Ok g ->
                Commit.attach w.grt act g ~exclude:(fun _ _ -> Ok ()) ();
                (match Group.invoke w.grt g ~act "deposit 30" with
                | Ok _ -> ()
                | Error _ -> raise (Action.Atomic.Abort "first invoke failed"));
                (* Kill the coordinator; the cohort must take over with the
                   checkpointed staged state. *)
                Net.Network.crash w.net "k1";
                Sim.Engine.sleep w.eng 5.0;
                (match Group.invoke w.grt g ~act "deposit 12" with
                | Ok r -> check_string "continued on cohort" "42" r
                | Error e ->
                    raise
                      (Action.Atomic.Abort
                         (Format.asprintf "%a" Group.pp_invoke_error e)))));
  Sim.Engine.run w.eng;
  check_bool "committed" true (!outcome = Ok ());
  check_int "one promotion" 1
    (Sim.Metrics.counter (Net.Network.metrics w.net) "server.promotions");
  Alcotest.(check (option string)) "store final" (Some "42") (store_payload w "beta" uid)

(* ------------------------------------------------------------------ *)
(* Passivation *)

let test_passivation_after_quiescence () =
  let w = make_world ~servers:[ "alpha" ] ~stores:[ "beta" ] ~clients:[ "c" ] () in
  let uid = new_object w ~label:"ctr" ~payload:"0" ~stores:[ "beta" ] in
  Net.Network.spawn_on w.net "c" (fun () ->
      let g = ref None in
      ignore
        (Action.Atomic.atomically w.art ~node:"c" (fun act ->
             match
               Group.activate w.grt ~client:"c" ~uid ~impl:"counter"
                 ~policy:Policy.Single_copy_passive ~servers:[ "alpha" ]
                 ~stores:[ "beta" ]
             with
             | Error e -> raise (Action.Atomic.Abort e)
             | Ok grp ->
                 g := Some grp;
                 Commit.attach w.grt act grp ~exclude:(fun _ _ -> Ok ()) ();
                 ignore (Group.invoke w.grt grp ~act "incr")));
      (* After commit the instance is quiescent; passivation succeeds. *)
      match !g with
      | Some grp ->
          check_bool "instance exists" true
            (Server.instance_exists w.srv ~node:"alpha" ~uid);
          Group.passivate w.grt grp ~from:"c";
          check_bool "instance gone" false
            (Server.instance_exists w.srv ~node:"alpha" ~uid)
      | None -> Alcotest.fail "no group");
  Sim.Engine.run w.eng

let test_passivation_refused_while_in_use () =
  let w = make_world ~servers:[ "alpha" ] ~stores:[ "beta" ] ~clients:[ "c" ] () in
  let uid = new_object w ~label:"ctr" ~payload:"0" ~stores:[ "beta" ] in
  Net.Network.spawn_on w.net "c" (fun () ->
      ignore
        (Action.Atomic.atomically w.art ~node:"c" (fun act ->
             match
               Group.activate w.grt ~client:"c" ~uid ~impl:"counter"
                 ~policy:Policy.Single_copy_passive ~servers:[ "alpha" ]
                 ~stores:[ "beta" ]
             with
             | Error e -> raise (Action.Atomic.Abort e)
             | Ok g -> (
                 Commit.attach w.grt act g ~exclude:(fun _ _ -> Ok ()) ();
                 ignore (Group.invoke w.grt g ~act "incr");
                 (* Mid-action: locks held, passivation must refuse. *)
                 match Server.passivate w.srv ~from:"c" ~server:"alpha" ~uid with
                 | Ok refused ->
                     check_bool "refused while in use" false refused
                 | Error _ -> Alcotest.fail "passivate rpc failed"))));
  Sim.Engine.run w.eng

let suite =
  let tc = Alcotest.test_case in
  [
    ( "replica.impl",
      [
        tc "counter" `Quick test_impl_counter;
        tc "account overdraft" `Quick test_impl_account_overdraft;
        tc "register" `Quick test_impl_register;
      ] );
    ( "replica.single_copy",
      [
        tc "commit writes all stores" `Quick test_single_copy_commit_writes_all_stores;
        tc "server crash aborts" `Quick test_single_copy_server_crash_aborts;
        tc "read only skips copy" `Quick test_read_only_skips_copy;
        tc "commit excludes crashed store" `Quick test_commit_excludes_crashed_store;
        tc "withdraws prepares on mixed votes" `Quick test_withdraw_prepares_mixed_votes;
        tc "aborts when all stores down" `Quick test_commit_aborts_when_all_stores_down;
      ] );
    ( "replica.isolation",
      [
        tc "actions isolated by locks" `Quick test_actions_isolated_by_locks;
        tc "abort discards staged write" `Quick test_abort_discards_staged_write;
      ] );
    ( "replica.active",
      [
        tc "replicas stay consistent" `Quick test_active_replicas_stay_consistent;
        tc "masks replica crash" `Quick test_active_masks_replica_crash;
        tc "all replicas down fails" `Quick test_active_all_replicas_down_fails;
      ] );
    ( "replica.coordinator_cohort",
      [
        tc "normal operation checkpoints" `Quick test_cc_normal_operation_checkpoints;
        tc "failover continues action" `Quick test_cc_failover_continues_action;
      ] );
    ( "replica.passivation",
      [
        tc "after quiescence" `Quick test_passivation_after_quiescence;
        tc "refused while in use" `Quick test_passivation_refused_while_in_use;
      ] );
  ]
