lib/replica/group.ml: Action Format Hashtbl List Net Policy Server Sim Store
