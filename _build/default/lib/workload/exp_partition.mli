(** Experiment [tab-partition]: why the paper excludes partitions.

    §2.3(2)(i) is explicit: active replication keeps the object available
    "in the absence of network partitions preventing communication". This
    experiment partitions one of two clients away from the naming-service
    node (and the sequencer it hosts) for a window:

    - the partitioned client can bind nothing — every database operation
      needs the service, so the service is the serialisation point and the
      cut-off side is simply {e unavailable}, never inconsistent;
    - the connected client continues normally;
    - after healing, both resume, and the St invariant holds — the strong
      consistency was never at risk, only availability, which is the
      trade the paper makes by assuming partitions away. *)

val run : ?seed:int64 -> unit -> Table.t
