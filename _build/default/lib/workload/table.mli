(** Plain-text result tables, as printed by the benchmark harness and
    recorded in EXPERIMENTS.md. *)

type t = {
  title : string;
  columns : string list;
  rows : string list list;
  notes : string list;  (** free-form commentary lines printed after *)
}

val make : title:string -> columns:string list -> ?notes:string list ->
  string list list -> t

val cell_f : float -> string
(** Format a float cell ("12.34"). *)

val cell_pct : float -> string
(** Format a ratio as a percentage ("97.5%"). *)

val cell_i : int -> string

val pp : Format.formatter -> t -> unit
(** Render with aligned columns. *)

val print : t -> unit
(** [pp] to stdout. *)
