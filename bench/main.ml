(* The benchmark harness: regenerates every table and figure of the
   reproduction (see DESIGN.md's per-experiment index), then runs Bechamel
   micro-benchmarks over the substrate hot paths.

   Absolute numbers are simulator-relative; what must hold against the
   paper is the qualitative shape — who wins, what grows with what, and
   which design choice prevents which failure. *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Micro-benchmark subjects: each staged function runs one self-contained
   simulated protocol episode. *)

let bench_engine_fibers () =
  let eng = Sim.Engine.create () in
  for _ = 1 to 200 do
    Sim.Engine.spawn eng (fun () -> Sim.Engine.sleep eng 1.0)
  done;
  Sim.Engine.run eng

let bench_lock_cycle () =
  let eng = Sim.Engine.create () in
  let mgr = Lockmgr.Manager.create eng in
  for i = 1 to 100 do
    let owner = if i mod 2 = 0 then "a" else "b" in
    assert (Lockmgr.Manager.try_acquire mgr ~owner ~mode:Lockmgr.Mode.Write "k");
    Lockmgr.Manager.release mgr ~owner "k"
  done

let with_rpc_world f =
  let eng = Sim.Engine.create () in
  let net = Net.Network.create eng in
  let rpc = Net.Rpc.create net in
  List.iter (Net.Network.add_node net) [ "a"; "b"; "c"; "seq" ];
  f eng net rpc;
  Sim.Engine.run eng

let echo : (int, int) Net.Rpc.endpoint = Net.Rpc.endpoint "bench.echo"

let bench_rpc_roundtrips () =
  with_rpc_world (fun _eng net rpc ->
      Net.Rpc.serve rpc ~node:"b" echo (fun n -> n + 1);
      Net.Network.spawn_on net "a" (fun () ->
          for i = 1 to 50 do
            ignore (Net.Rpc.call rpc ~from:"a" ~dst:"b" echo i)
          done))

let bench_atomic_multicast () =
  with_rpc_world (fun _eng net rpc ->
      let mc = Net.Multicast.create rpc in
      Net.Multicast.enable_sequencer mc ~node:"seq";
      let ch : int Net.Multicast.channel = Net.Multicast.channel "bench" in
      List.iter (fun n -> Net.Multicast.listen mc ~node:n ch (fun ~seq:_ _ -> ()))
        [ "a"; "b"; "c" ];
      Net.Network.spawn_on net "a" (fun () ->
          for i = 1 to 20 do
            ignore
              (Net.Multicast.cast_atomic mc ~from:"a" ~sequencer:"seq"
                 ~members:[ "a"; "b"; "c" ] ch i)
          done))

let small_world () =
  Naming.Service.create ~seed:5L
    {
      Naming.Service.gvd_node = "ns";
      gvd_nodes = [];
      server_nodes = [ "alpha" ];
      store_nodes = [ "beta1"; "beta2" ];
      client_nodes = [ "c1" ];
    }

let bench_bound_action scheme () =
  let open Naming in
  let w = small_world () in
  let uid =
    Service.create_object w ~name:"obj" ~impl:"counter" ~sv:[ "alpha" ]
      ~st:[ "beta1"; "beta2" ] ()
  in
  Service.spawn_client w "c1" (fun () ->
      for _ = 1 to 5 do
        ignore
          (Service.with_bound w ~client:"c1" ~scheme
             ~policy:Replica.Policy.Single_copy_passive ~uid (fun act group ->
               Service.invoke w group ~act "incr"))
      done);
  Service.run w

let bench_2pc ?(drop = 0.0) () =
  let eng = Sim.Engine.create () in
  let net = Net.Network.create eng in
  let rpc = Net.Rpc.create net in
  let sh = Action.Store_host.create rpc in
  let rh = Action.Resource_host.create rpc in
  let rt = Action.Atomic.make_runtime sh rh in
  let sup = Store.Uid.supply () in
  List.iter
    (fun n ->
      Net.Network.add_node net n;
      Action.Store_host.add sh n)
    [ "client"; "s1"; "s2" ];
  if drop > 0.0 then
    List.iter
      (fun dst -> Net.Network.set_link_fault net ~drop ~src:"client" ~dst ())
      [ "s1"; "s2" ];
  let uid = Store.Uid.fresh sup ~label:"x" in
  Net.Network.spawn_on net "client" (fun () ->
      for _ = 1 to 10 do
        ignore
          (Action.Atomic.atomically rt ~node:"client" (fun act ->
               let state = Store.Object_state.initial "v" in
               Action.Store_participant.add act ~store:"s1" ~writes:(fun () ->
                   [ (uid, state) ]);
               Action.Store_participant.add act ~store:"s2" ~writes:(fun () ->
                   [ (uid, state) ])))
      done);
  Sim.Engine.run eng

(* The same five-bind episode over a lossy client->naming link: dropped
   requests are re-sent through Net.Retry backoff instead of surfacing as
   bind failures, so the episode pays extra retry rounds and timeout
   waits. Recorded for trend-watching only, never regression-gated —
   timeout-dominated runs are far noisier than the fault-free paths. *)
let bench_binds_under_drop drop () =
  let open Naming in
  let w = small_world () in
  let uid =
    Service.create_object w ~name:"obj" ~impl:"counter" ~sv:[ "alpha" ]
      ~st:[ "beta1"; "beta2" ] ()
  in
  Net.Network.set_link_fault (Service.network w) ~drop ~src:"c1" ~dst:"ns" ();
  Service.spawn_client w "c1" (fun () ->
      for _ = 1 to 5 do
        ignore
          (Service.with_bound w ~client:"c1" ~scheme:Scheme.Independent
             ~policy:Replica.Policy.Single_copy_passive ~uid (fun act group ->
               Service.invoke w group ~act "incr"))
      done);
  Service.run w

let bench_gvd_ops () =
  let open Naming in
  let w = small_world () in
  let uid =
    Service.create_object w ~name:"obj" ~impl:"counter" ~sv:[ "alpha" ]
      ~st:[ "beta1"; "beta2" ] ()
  in
  Service.spawn_client w "c1" (fun () ->
      for _ = 1 to 10 do
        ignore
          (Action.Atomic.atomically (Service.atomic w) ~node:"c1" (fun act ->
               (match Gvd.get_server (Service.gvd w) ~act uid with
               | Ok _ -> ()
               | Error _ -> ());
               match Gvd.get_view (Service.gvd w) ~act uid with
               | Ok _ -> ()
               | Error _ -> ()))
      done);
  Service.run w

let bench_audit_trial () =
  ignore
    (Workload.Audit.counter_stress ~seed:1L ~clients:2 ~actions_per_client:4
       ~server_churn:false ~store_churn:false ())

(* Pure consistent-hash dispatch: the per-request routing cost of the
   sharded naming tier. *)
let bench_shardmap_lookups () =
  let map =
    Naming.Shard_map.create
      ~nodes:(List.init 8 (fun i -> Printf.sprintf "ns%d" (i + 1)))
  in
  let sup = Store.Uid.supply () in
  let uids = Array.init 64 (fun i -> Store.Uid.fresh sup ~label:(string_of_int i)) in
  for i = 0 to 999 do
    ignore (Naming.Shard_map.owner map uids.(i mod 64) : string)
  done

let sharded_world ?bind_cache_lease () =
  Naming.Service.create ~seed:5L ?bind_cache_lease
    {
      Naming.Service.gvd_node = "ns";
      gvd_nodes = [ "ns2"; "ns3"; "ns4" ];
      server_nodes = [ "alpha" ];
      store_nodes = [ "beta1"; "beta2" ];
      client_nodes = [ "c1" ];
    }

(* Router dispatch over four shards: same episode as the single-shard bind
   benchmarks, plus hashing and shard fan-out. *)
let bench_router_binds_sharded () =
  let open Naming in
  let w = sharded_world () in
  let uid =
    Service.create_object w ~name:"obj" ~impl:"counter" ~sv:[ "alpha" ]
      ~st:[ "beta1"; "beta2" ] ()
  in
  Service.spawn_client w "c1" (fun () ->
      for _ = 1 to 5 do
        ignore
          (Service.with_bound w ~client:"c1" ~scheme:Scheme.Independent
             ~policy:Replica.Policy.Single_copy_passive ~uid (fun act group ->
               Service.invoke w group ~act "incr"))
      done);
  Service.run w

(* The cache hit path: first bind misses and fills, the remaining four
   repeat binds skip all bind-time naming RPCs. *)
let bench_cached_repeat_binds () =
  let open Naming in
  let w = sharded_world ~bind_cache_lease:1000.0 () in
  let uid =
    Service.create_object w ~name:"obj" ~impl:"counter" ~sv:[ "alpha" ]
      ~st:[ "beta1"; "beta2" ] ()
  in
  Service.spawn_client w "c1" (fun () ->
      for _ = 1 to 5 do
        ignore
          (Service.with_bound w ~client:"c1" ~scheme:Scheme.Independent
             ~policy:Replica.Policy.Single_copy_passive ~uid (fun act group ->
               Service.invoke w group ~act "incr"))
      done);
  Service.run w

(* Eight clients in one synchronised wave against a single object: the
   contended-bind episode of tab-contention at benchmark size. With the
   batched Delta-mode bind the clients no longer serialise behind the
   Increment write lock, so this episode settles in near-constant
   simulated time. *)
let bench_contended_binds () =
  let open Naming in
  let clients = List.init 8 (fun i -> Printf.sprintf "c%d" (i + 1)) in
  let w =
    Service.create ~seed:5L
      {
        Service.gvd_node = "ns";
        gvd_nodes = [];
        server_nodes = [ "alpha" ];
        store_nodes = [ "beta1" ];
        client_nodes = clients;
      }
  in
  let uid =
    Service.create_object w ~name:"obj" ~impl:"counter" ~sv:[ "alpha" ]
      ~st:[ "beta1" ] ()
  in
  List.iter
    (fun client ->
      Service.spawn_client w client (fun () ->
          ignore
            (Service.with_bound w ~client ~scheme:Scheme.Independent
               ~policy:Replica.Policy.Single_copy_passive ~uid
               (fun act group -> Service.invoke w group ~act "get"))))
    clients;
  Service.run w

(* The same database bind work both ways, back to back: five one-round
   batched binds, then five binds composed from the serial
   GetServer/Increment/GetView (+ trailing Decrement) rounds the batch
   replaced. The spread within this subject is what batching buys on the
   naming hot path. *)
let bench_batched_vs_serial () =
  let open Naming in
  let w = small_world () in
  let uid =
    Service.create_object w ~name:"obj" ~impl:"counter" ~sv:[ "alpha" ]
      ~st:[ "beta1"; "beta2" ] ()
  in
  Service.spawn_client w "c1" (fun () ->
      for _ = 1 to 5 do
        match
          Binder.bind_independent (Service.binder w) ~client:"c1" ~uid
            ~policy:Replica.Policy.Single_copy_passive
        with
        | Ok pb -> Binder.release_independent (Service.binder w) pb
        | Error _ -> ()
      done;
      for _ = 1 to 5 do
        ignore
          (Action.Atomic.atomically (Service.atomic w) ~node:"c1" (fun act ->
               (match Gvd.get_server (Service.gvd w) ~act uid with
               | Ok _ -> ()
               | Error _ -> ());
               (match
                  Gvd.increment (Service.gvd w) ~act ~uid ~client:"c1"
                    [ "alpha" ]
                with
               | Ok _ -> ()
               | Error _ -> ());
               match Gvd.get_view (Service.gvd w) ~act uid with
               | Ok _ -> ()
               | Error _ -> ()));
        ignore
          (Action.Atomic.atomically (Service.atomic w) ~node:"c1" (fun act ->
               match
                 Gvd.decrement (Service.gvd w) ~act ~uid ~client:"c1"
                   [ "alpha" ]
               with
               | Ok _ -> ()
               | Error _ -> ()))
      done);
  Service.run w

(* The same five-commit copy-back episode both ways, back to back: delta
   shipping on, then off. The "small" subject writes a counter (payload
   is op-sized, deltas buy little); the "large" subject makes small
   writes to a kvmap preloaded with ~1.5 KB of entries, where the delta
   path ships a few dozen op bytes per store instead of the whole
   payload. The spread within each subject is what delta shipping buys
   on the copy-back hot path. *)
let bench_delta_vs_full ~impl ~initial ~op () =
  let open Naming in
  let one delta =
    let w =
      Service.create ~seed:5L ~delta_shipping:delta
        {
          Service.gvd_node = "ns";
          gvd_nodes = [];
          server_nodes = [ "alpha" ];
          store_nodes = [ "beta1"; "beta2" ];
          client_nodes = [ "c1" ];
        }
    in
    let uid =
      Service.create_object w ~name:"obj" ~impl ?initial ~sv:[ "alpha" ]
        ~st:[ "beta1"; "beta2" ] ()
    in
    Service.spawn_client w "c1" (fun () ->
        for i = 1 to 5 do
          ignore
            (Service.with_bound w ~client:"c1" ~scheme:Scheme.Standard
               ~policy:Replica.Policy.Single_copy_passive ~uid
               (fun act group -> Service.invoke w group ~act (op i)))
        done);
    Service.run w
  in
  one true;
  one false

let delta_large_preload =
  String.concat ";"
    (List.init 40 (fun i -> Printf.sprintf "key%02d=%032d" i i))

(* The same five-commit write episode both ways, back to back: the
   optimistic validated-snapshot commit, then the classic locked GetView
   re-read. Scheme B binds are snapshot reads, so the commit-time
   naming-tier work is the entire spread within this subject. *)
let bench_optimistic_vs_locked () =
  let open Naming in
  let one optimistic =
    let w =
      Service.create ~seed:5L ~optimistic_commit:optimistic
        {
          Service.gvd_node = "ns";
          gvd_nodes = [];
          server_nodes = [ "alpha" ];
          store_nodes = [ "beta1"; "beta2" ];
          client_nodes = [ "c1" ];
        }
    in
    let uid =
      Service.create_object w ~name:"obj" ~impl:"counter" ~sv:[ "alpha" ]
        ~st:[ "beta1"; "beta2" ] ()
    in
    Service.spawn_client w "c1" (fun () ->
        for i = 1 to 5 do
          ignore
            (Service.with_bound w ~client:"c1" ~scheme:Scheme.Independent
               ~policy:Replica.Policy.Single_copy_passive ~uid
               (fun act group ->
                 Service.invoke w group ~act (Printf.sprintf "add %d" i)))
        done);
    Service.run w
  in
  one true;
  one false

(* The same five scheme-A bind/commit cycles both ways, back to back:
   the three serial naming reads scattered as one Join round, then the
   serial GetServer → Increment → GetView sequence. *)
let bench_schemea_pipelined () =
  let open Naming in
  let one pipelined =
    let w =
      Service.create ~seed:5L ~pipelined_binds:pipelined
        {
          Service.gvd_node = "ns";
          gvd_nodes = [];
          server_nodes = [ "alpha" ];
          store_nodes = [ "beta1"; "beta2" ];
          client_nodes = [ "c1" ];
        }
    in
    let uid =
      Service.create_object w ~name:"obj" ~impl:"counter" ~sv:[ "alpha" ]
        ~st:[ "beta1"; "beta2" ] ()
    in
    Service.spawn_client w "c1" (fun () ->
        for _ = 1 to 5 do
          ignore
            (Service.with_bound w ~client:"c1" ~scheme:Scheme.Standard
               ~policy:Replica.Policy.Single_copy_passive ~uid
               (fun act group -> Service.invoke w group ~act "incr"))
        done);
    Service.run w
  in
  one true;
  one false

(* The same 48-commit synchronised-wave episode both ways, back to back:
   the group-commit plane on (window 3.0 — one prepare and one phase-2
   scatter per store per batch, floors piggybacked on the acks), then
   solo 2PC. The spread within this subject is what round coalescing
   buys on the copy-back hot path; tab-groupcommit tabulates the same
   episode's store-round counts. *)
let bench_grouped_vs_solo () =
  ignore
    (Workload.Exp_groupcommit.episode ~window:3.0 ~clients:8 ()
      : Workload.Exp_groupcommit.sample);
  ignore
    (Workload.Exp_groupcommit.episode ~window:0.0 ~clients:8 ()
      : Workload.Exp_groupcommit.sample)

(* The very first commit of a fresh writer, both ways, back to back:
   after an anti-entropy floor-gossip round (the commit delta-hits off
   the gossiped floor and ships op bytes), then without one (cold
   acked-version vector: the commit ships the whole ~1.5 KB kvmap per
   store). *)
let bench_first_commit_after_activation () =
  let open Naming in
  let one gossip =
    let w =
      Service.create ~seed:5L ~delta_shipping:true
        {
          Service.gvd_node = "ns";
          gvd_nodes = [];
          server_nodes = [ "alpha" ];
          store_nodes = [ "beta1"; "beta2" ];
          client_nodes = [ "c1" ];
        }
    in
    let uid =
      Service.create_object w ~name:"obj" ~impl:"kvmap"
        ~initial:delta_large_preload ~sv:[ "alpha" ]
        ~st:[ "beta1"; "beta2" ] ()
    in
    Service.run ~until:1.0 w;
    if gossip then begin
      let gc = Replica.Server.groupcommit (Service.server_runtime w) in
      Net.Network.spawn_on (Service.network w) "alpha" (fun () ->
          Replica.Groupcommit.anti_entropy gc ~from:"alpha"
            ~stores:[ "beta1"; "beta2" ]);
      Service.run w
    end;
    Service.spawn_client w "c1" (fun () ->
        ignore
          (Service.with_bound w ~client:"c1" ~scheme:Scheme.Standard
             ~policy:Replica.Policy.Single_copy_passive ~uid
             (fun act group -> Service.invoke w group ~act "put hot v1")));
    Service.run w
  in
  one true;
  one false

(* The same browned-out commit episode both ways, back to back: hedged
   scatters racing a health-delayed backup copy against the slow store,
   then unhedged. The spread within this subject is what hedging buys
   (and costs: the extra copies) under gray failure; tab-brownout
   tabulates the same episode's latency percentiles. *)
let bench_hedged_vs_unhedged_brownout () =
  ignore
    (Workload.Exp_brownout.episode ~hedged:true ~prob:0.02 ~commits:30
       ~seed:31L ()
      : Workload.Exp_brownout.sample);
  ignore
    (Workload.Exp_brownout.episode ~hedged:false ~prob:0.02 ~commits:30
       ~seed:31L ()
      : Workload.Exp_brownout.sample)

(* The same harsh-brownout commit episode both ways, back to back: the
   autonomic controller excluding the browned store (commits scatter to
   the healthy store only once the hysteresis window closes), then
   hedging alone (both copies keep drawing the inflation). The spread
   within this subject is what membership-level exclusion buys over
   request-level hedging when a store is simply sick; tab-autonomic
   tabulates the same episode's latency percentiles. *)
let bench_excluded_vs_hedged_brownout () =
  ignore
    (Workload.Exp_autonomic.episode ~mode:Workload.Exp_autonomic.Autonomic
       ~prob:0.7 ~commits:40 ~seed:47L ()
      : Workload.Exp_autonomic.sample);
  ignore
    (Workload.Exp_autonomic.episode ~mode:Workload.Exp_autonomic.Hedged
       ~prob:0.7 ~commits:40 ~seed:47L ()
      : Workload.Exp_autonomic.sample)

let micro_tests =
  Test.make_grouped ~name:"micro"
    [
      Test.make ~name:"engine.200-fibers" (Staged.stage bench_engine_fibers);
      Test.make ~name:"lock.100-write-cycles" (Staged.stage bench_lock_cycle);
      Test.make ~name:"rpc.50-roundtrips" (Staged.stage bench_rpc_roundtrips);
      Test.make ~name:"mcast.20-atomic-casts" (Staged.stage bench_atomic_multicast);
      Test.make ~name:"2pc.10-commits" (Staged.stage (bench_2pc ?drop:None));
      Test.make ~name:"2pc.10-commits-lossy"
        (Staged.stage (bench_2pc ~drop:0.05));
      Test.make ~name:"bind.5-actions-standard"
        (Staged.stage (bench_bound_action Naming.Scheme.Standard));
      Test.make ~name:"bind.5-actions-independent"
        (Staged.stage (bench_bound_action Naming.Scheme.Independent));
      Test.make ~name:"bind.5-actions-nested-toplevel"
        (Staged.stage (bench_bound_action Naming.Scheme.Nested_toplevel));
      Test.make ~name:"bind.8-clients-contended"
        (Staged.stage bench_contended_binds);
      Test.make ~name:"bind.batched-vs-serial"
        (Staged.stage bench_batched_vs_serial);
      Test.make ~name:"bind.retry-under-drop-1pct"
        (Staged.stage (bench_binds_under_drop 0.01));
      Test.make ~name:"bind.retry-under-drop-5pct"
        (Staged.stage (bench_binds_under_drop 0.05));
      Test.make ~name:"gvd.10-read-actions" (Staged.stage bench_gvd_ops);
      Test.make ~name:"audit.calm-trial" (Staged.stage bench_audit_trial);
      Test.make ~name:"shardmap.1000-owner-lookups"
        (Staged.stage bench_shardmap_lookups);
      Test.make ~name:"router.5-binds-4-shards"
        (Staged.stage bench_router_binds_sharded);
      Test.make ~name:"cache.5-repeat-binds"
        (Staged.stage bench_cached_repeat_binds);
      Test.make ~name:"commit.delta-vs-full-small"
        (Staged.stage
           (bench_delta_vs_full ~impl:"counter" ~initial:None ~op:(fun i ->
                Printf.sprintf "add %d" i)));
      Test.make ~name:"commit.delta-vs-full-large"
        (Staged.stage
           (bench_delta_vs_full ~impl:"kvmap"
              ~initial:(Some delta_large_preload) ~op:(fun i ->
                Printf.sprintf "put hot v%d" i)));
      Test.make ~name:"commit.optimistic-vs-locked"
        (Staged.stage bench_optimistic_vs_locked);
      Test.make ~name:"bind.schemeA-pipelined"
        (Staged.stage bench_schemea_pipelined);
      Test.make ~name:"commit.grouped-vs-solo"
        (Staged.stage bench_grouped_vs_solo);
      Test.make ~name:"commit.first-commit-delta-after-activation"
        (Staged.stage bench_first_commit_after_activation);
      Test.make ~name:"commit.hedged-vs-unhedged-brownout"
        (Staged.stage bench_hedged_vs_unhedged_brownout);
      Test.make ~name:"commit.excluded-vs-hedged-brownout"
        (Staged.stage bench_excluded_vs_hedged_brownout);
    ]

(* Run the micro suite; print the human table and return the per-subject
   ns/run estimates for the JSON report. *)
let run_micro () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances micro_tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let merged = Analyze.merge ols instances results in
  print_endline "== micro: substrate hot paths (Bechamel, monotonic clock) ==";
  Printf.printf "%-40s  %s\n" "benchmark" "time/run";
  Printf.printf "%-40s  %s\n" (String.make 40 '-') "--------";
  let estimates =
    match Hashtbl.find_opt merged (Measure.label Instance.monotonic_clock) with
    | None ->
        print_endline "(no results)";
        []
    | Some per_test ->
        Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) per_test []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
        |> List.map (fun (name, ols) ->
               let estimate =
                 match Analyze.OLS.estimates ols with
                 | Some [ e ] -> Some e
                 | _ -> None
               in
               Printf.printf "%-40s  %s\n" name
                 (match estimate with
                 | Some e -> Printf.sprintf "%12.0f ns" e
                 | None -> "-");
               (name, estimate))
  in
  print_newline ();
  estimates

(* ------------------------------------------------------------------ *)
(* Machine-readable results: BENCH_results.json *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_str s = "\"" ^ json_escape s ^ "\""
let json_list items = "[" ^ String.concat "," items ^ "]"

let json_float f =
  if Float.is_finite f then Printf.sprintf "%.1f" f else "null"

let write_json ~path ~micro ~tables =
  let micro_json =
    json_list
      (List.map
         (fun (name, est) ->
           Printf.sprintf "{%s:%s,%s:%s}" (json_str "name") (json_str name)
             (json_str "ns_per_run")
             (match est with Some e -> json_float e | None -> "null"))
         micro)
  in
  let table_json (id, (t : Workload.Table.t)) =
    Printf.sprintf "{%s:%s,%s:%s,%s:%s,%s:%s}" (json_str "id") (json_str id)
      (json_str "title")
      (json_str t.Workload.Table.title)
      (json_str "columns")
      (json_list (List.map json_str t.Workload.Table.columns))
      (json_str "rows")
      (json_list
         (List.map
            (fun row -> json_list (List.map json_str row))
            t.Workload.Table.rows))
  in
  let doc =
    Printf.sprintf "{%s:%s,%s:%s,%s:%s}\n" (json_str "harness")
      (json_str "repro-bench")
      (json_str "experiments")
      (json_list (List.map table_json tables))
      (json_str "micro") micro_json
  in
  let oc = open_out path in
  output_string oc doc;
  close_out oc;
  Printf.printf "wrote %s\n" path

let () =
  (* [bench/main.exe micro] runs only the micro suite — the CI smoke job
     uses this to gate on substrate regressions without paying for the
     full experiment sweep. *)
  let micro_only =
    Array.exists (String.equal "micro") (Array.sub Sys.argv 1 (Array.length Sys.argv - 1))
  in
  print_endline
    "Reproduction harness: Little, McCue & Shrivastava (ICDCS 1993)";
  print_endline
    "Each table regenerates one figure/table of the paper; see EXPERIMENTS.md.";
  print_newline ();
  let tables =
    if micro_only then []
    else
      List.map
        (fun e ->
          Printf.printf "[%s] %s\n" e.Workload.Registry.id
            e.Workload.Registry.paper_artefact;
          let t = e.Workload.Registry.runner () in
          Workload.Table.print t;
          (e.Workload.Registry.id, t))
        Workload.Registry.all
  in
  let micro = run_micro () in
  write_json ~path:"BENCH_results.json" ~micro ~tables
