type experiment = {
  id : string;
  paper_artefact : string;
  synopsis : string;
  runner : unit -> Table.t;
}

let all =
  [
    {
      id = "fig1-divergence";
      paper_artefact = "Figure 1, §2.3(2)";
      synopsis = "replica divergence: unreliable vs atomic group delivery";
      runner = (fun () -> Exp_fig1.run ());
    };
    {
      id = "fig2-single";
      paper_artefact = "Figure 2, §3.2(1)";
      synopsis = "non-replicated baseline availability under crash intensity";
      runner = (fun () -> Exp_availability.fig2 ());
    };
    {
      id = "fig3-repl-state";
      paper_artefact = "Figure 3, §3.2(2)";
      synopsis = "availability vs |St| under store churn (single-copy passive)";
      runner = (fun () -> Exp_availability.fig3 ());
    };
    {
      id = "fig4-repl-server";
      paper_artefact = "Figure 4, §3.2(3)";
      synopsis = "availability vs |Sv'| for active and coordinator-cohort";
      runner = (fun () -> Exp_availability.fig4 ());
    };
    {
      id = "fig5-general";
      paper_artefact = "Figure 5, §3.2(4)";
      synopsis = "availability surface over (|Sv|, |St|)";
      runner = (fun () -> Exp_availability.fig5 ());
    };
    {
      id = "fig6-standard";
      paper_artefact = "Figure 6, §4.1.2";
      synopsis = "scheme A: static Sv, futile binds, locks to commit";
      runner = (fun () -> Exp_schemes.fig6 ());
    };
    {
      id = "fig7-independent";
      paper_artefact = "Figure 7, §4.1.3(i)";
      synopsis = "scheme B: use lists, bind-time Remove, cleanup protocol";
      runner = (fun () -> Exp_schemes.fig7 ());
    };
    {
      id = "fig8-nested-toplevel";
      paper_artefact = "Figure 8, §4.1.3(ii)";
      synopsis = "scheme C: scheme B invoked from inside the client action";
      runner = (fun () -> Exp_schemes.fig8 ());
    };
    {
      id = "tab-schemes";
      paper_artefact = "§4.1-§4.2 (synthesis)";
      synopsis = "the three access schemes side by side";
      runner = (fun () -> Exp_schemes.comparison ());
    };
    {
      id = "tab-contention";
      paper_artefact = "§4.1.2 vs §4.1.3";
      synopsis = "database contention scaling: shared reads vs RMW binds";
      runner = (fun () -> Exp_contention.run ());
    };
    {
      id = "tab-exclude-lock";
      paper_artefact = "§4.2.1";
      synopsis = "exclude-write lock vs plain write promotion";
      runner = (fun () -> Exp_exclock.run ());
    };
    {
      id = "tab-read-opt";
      paper_artefact = "§4.2.1";
      synopsis = "read-only commits skip the state copy";
      runner = (fun () -> Exp_readopt.run ());
    };
    {
      id = "tab-checkpoint";
      paper_artefact = "§2.3(2)(ii) (ablation)";
      synopsis = "eager vs lazy coordinator-cohort checkpointing";
      runner = (fun () -> Exp_checkpoint.run ());
    };
    {
      id = "tab-scaling";
      paper_artefact = "§2.3(1), §4.1.2";
      synopsis = "replication degree changed under load";
      runner = (fun () -> Exp_scaling.run ());
    };
    {
      id = "tab-partition";
      paper_artefact = "§2.3(2)(i) (assumption probed)";
      synopsis = "a client partitioned from the naming service";
      runner = (fun () -> Exp_partition.run ());
    };
    {
      id = "tab-ns-outage";
      paper_artefact = "§3.1 (assumption relaxed)";
      synopsis = "crash and recovery of a durable naming service";
      runner = (fun () -> Exp_ns_outage.run ());
    };
    {
      id = "tab-ns-replicated";
      paper_artefact = "§3.1 (extension implemented)";
      synopsis = "primary-backup replication of the naming service";
      runner = (fun () -> Exp_ns_failover.run ());
    };
    {
      id = "tab-hybrid";
      paper_artefact = "§5";
      synopsis = "non-atomic name server + atomic state database";
      runner = (fun () -> Exp_hybrid.run ());
    };
    {
      id = "tab-shard-scaling";
      paper_artefact = "§3.1 (extension implemented)";
      synopsis = "naming tier sharded over N nodes; lease cache; online rebalance";
      runner = (fun () -> Exp_shard_scaling.run ());
    };
    {
      id = "tab-delta";
      paper_artefact = "§2.3(3) (optimised)";
      synopsis = "op-log delta shipping vs full-state commit copy-back";
      runner = (fun () -> Exp_delta.run ());
    };
    {
      id = "tab-groupcommit";
      paper_artefact = "§2.3(3) (optimised)";
      synopsis = "group-commit: coalesced 2PC rounds + acked-floor gossip";
      runner = (fun () -> Exp_groupcommit.run ());
    };
    {
      id = "tab-chaos";
      paper_artefact = "§2.3 safety obligations (validation)";
      synopsis = "seeded fault-injection schedules + consolidated invariant audit";
      runner = (fun () -> Exp_chaos.run ());
    };
    {
      id = "tab-brownout";
      paper_artefact = "§2.3(3) (robustness extension)";
      synopsis = "hedged vs unhedged commit latency under gray failure";
      runner = (fun () -> Exp_brownout.run ());
    };
    {
      id = "tab-autonomic";
      paper_artefact = "§4.2 (autonomic extension)";
      synopsis = "health-driven Exclude/Include of a browned store";
      runner = (fun () -> Exp_autonomic.run ());
    };
  ]

let find id = List.find_opt (fun e -> String.equal e.id id) all

let ids () = List.map (fun e -> e.id) all
