(** The autonomic membership plane (§16): per-server controller daemons
    that watch store latency health and drive the §4.2 Exclude/Include
    protocols for {e gray} failures — stores alive enough to vote but
    slow enough to drag every commit to their pace.

    Decision doctrine: a store is proposed for Exclude only after
    {e hysteresis} (K consecutive probe rounds flagged it slow on the
    controller's private tracker — {!Net.Health.sustained_slow}, or a
    latency EWMA 3x past the healthiest probed peer, so a half-sick
    fleet cannot normalize its own sickness away)
    {e and} a {e quorum} of controllers concurs (digest gossip over the
    [autonomic.digest] endpoint); a store re-Included after healing is
    protected by a {e cooldown} before it may be Excluded again, so a
    flapping brownout cannot livelock membership. The Exclude itself
    validates the St revision inside its round and refuses to empty
    [St]; the re-Include runs the catch-up fence before the store
    rejoins the commit set — both via the injected drivers, so the
    controller can afford a wrong verdict.

    The plane drives naming-tier protocols from [lib/replica], so every
    naming-facing operation is an injected closure ({!deps});
    {!Naming.Service.create} wires the real drivers
    ({!Naming.Reintegration}), and tests fabricate them to exercise the
    decision logic without a world. Nothing runs unless {!start} is
    called, and the plane draws no RNG: worlds without it are
    byte-identical. *)

type config = {
  au_period : float;  (** probe cadence (simulated time) *)
  au_hysteresis : int;
      (** K: consecutive slow (resp. healthy) probe rounds before an
          Exclude is proposed (resp. a re-Include triggered) *)
  au_quorum : int;
      (** controllers (including the proposer) that must see the store
          slow; clamped to the controller population *)
  au_cooldown : float;
      (** no re-Exclude of a store before this much time after its
          re-Include (flap damping) *)
  au_slow_floor : float;
      (** the private tracker's {!Net.Health.create} [slow_floor] *)
  au_probe_timeout : float;
      (** per-round probe wait budget: probes fan out concurrently and a
          probe that misses it counts as a failure observation, so a
          sick store's own round-trip cannot stretch the hysteresis
          window *)
}

val default_config : config
(** period 5.0, hysteresis 3, quorum 2, cooldown 120.0, slow floor 8.0,
    probe timeout 10.0. *)

type deps = {
  d_rpc : Net.Rpc.t;
  d_stores : Net.Network.node_id list;  (** the store nodes to watch *)
  d_servers : Net.Network.node_id list;
      (** the controller nodes (the quorum electorate) *)
  d_probe :
    from:Net.Network.node_id ->
    store:Net.Network.node_id ->
    (unit, Net.Rpc.error) result;
      (** one cheap read RPC to [store] (the controller times it); must
          run in a fiber on [from] *)
  d_exclude : from:Net.Network.node_id -> store:Net.Network.node_id -> int;
      (** exclude [store] from every object it holds and return how many
          exclusions committed ({!Naming.Reintegration.exclude_store_now});
          must run in a fiber on [from] *)
  d_include : store:Net.Network.node_id -> unit;
      (** arrange the catch-up re-Include of a healed [store]
          ({!Naming.Reintegration.reintegrate_store_now} spawned on it);
          asynchronous — the store rejoins [St] only once its state
          clears the include fence *)
}

type t
(** One plane per world, holding every node's controller. *)

type ctrl
(** One server node's controller. *)

val create : ?config:config -> deps -> t

val config : t -> config

val attach : t -> Net.Network.node_id -> ctrl
(** Install a controller on [node] (serving its digest endpoint) without
    starting the daemon — deterministic unit tests drive it with
    {!tick}. Idempotent via {!start}. *)

val start : t -> Net.Network.node_id -> unit
(** {!attach} (if not yet attached) and spawn the controller daemon on
    [node]: every [au_period] of simulated time it probes all stores,
    updates the streaks, and applies the decision doctrine. The idle
    wait is a {!Sim.Engine.daemon_sleep}; a crash kills the daemon with
    its node and recovery re-arms it, the controller's state
    surviving. *)

val tick : t -> ctrl -> unit
(** One probe-and-decide round, for tests; must run in a fiber on the
    controller's node. *)

(** {2 Introspection} (tests and experiments) *)

val controller : t -> Net.Network.node_id -> ctrl option

val excluded : t -> Net.Network.node_id -> Net.Network.node_id list
(** The stores [node]'s controller has excluded and not yet re-included
    (sorted). *)

val epoch : t -> Net.Network.node_id -> int
(** Membership changes driven by [node]'s controller so far. *)

val slow_streak : t -> Net.Network.node_id -> Net.Network.node_id -> int
val heal_streak : t -> Net.Network.node_id -> Net.Network.node_id -> int
val health : t -> Net.Network.node_id -> Net.Health.t option
