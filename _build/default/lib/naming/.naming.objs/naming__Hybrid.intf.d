lib/naming/hybrid.mli: Action Binder Net Replica Store
