lib/naming/admin.mli: Binder Format Net Replica Store
