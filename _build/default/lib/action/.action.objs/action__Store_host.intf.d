lib/action/store_host.mli: Net Store
