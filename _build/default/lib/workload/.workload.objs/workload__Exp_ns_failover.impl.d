lib/workload/exp_ns_failover.ml: Action Binder Gvd Hashtbl List Naming Net Option Printf Replica Scheme Service Sim Store Table
