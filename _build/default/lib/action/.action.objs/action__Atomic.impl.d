lib/action/atomic.ml: Action_id Hashtbl List Net Printexc Printf Resource_host Sim Store Store_host String
