lib/replica/passivator.ml: Action Hashtbl List Net Server Sim Store
