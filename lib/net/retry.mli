(** Unified retry policy: bounded attempts, exponential backoff with
    seed-deterministic jitter, per-operation deadline budgets, and a
    per-destination circuit breaker that sheds calls to nodes the failure
    detector reports down.

    Every protocol retry loop routes through {!run} so retry doctrine lives
    in one place (docs/PROTOCOLS.md §11.2) and every retry is visible as
    [retry.*] metrics:
    - [retry.retries] — backoff sleeps performed;
    - [retry.op.<op>] — same, per operation label;
    - [retry.giveups] — attempt budget exhausted;
    - [retry.deadline_exhausted] — stopped early because the next backoff
      would cross the deadline;
    - [retry.sheds] — attempts skipped (destination down or breaker open);
    - [retry.breaker_opens] — breaker transitions to open;
    - [retry.forced_probes] — half-open probes forced through an open
      breaker because the caller's deadline would otherwise starve them;
    - [retry.degraded_trips] — breaker opened by sustained slowness
      (gray failure) rather than consecutive failures;
    - [retry.degraded_reopens] — half-open latency probe succeeded but was
      still slow, so the breaker reopened with a doubled cooldown;
    - [retry.backoff] — distribution of backoff delays. *)

type policy = {
  attempts : int;  (** maximum attempts, including the first (>= 1) *)
  base : float;  (** first backoff delay *)
  factor : float;  (** multiplier per further attempt *)
  max_delay : float;  (** backoff cap *)
  jitter : float;  (** relative jitter: delay *= 1 + jitter*U(-1,1) *)
  budget : float option;
      (** relative deadline: give up once [now + next backoff] would exceed
          [start + budget] *)
}

val policy :
  ?attempts:int ->
  ?base:float ->
  ?factor:float ->
  ?max_delay:float ->
  ?jitter:float ->
  ?budget:float ->
  unit ->
  policy
(** Build a policy. Defaults: 5 attempts, base 1.0, factor 2.0, cap 16.0,
    jitter 0.1, no budget. Raises [Invalid_argument] if [attempts < 1]. *)

val default : policy

type t

val create : Network.t -> t
(** One retry engine per world, created alongside the atomic-action
    runtime. Jitter draws from a stream derived from the network seed
    ({!Network.derive_rng}), so retried schedules are reproducible and
    fault-free runs (which never sleep a backoff) are unperturbed. *)

val network : t -> Network.t

val breaker_open : t -> Network.node_id -> bool
(** Whether the destination's breaker is currently open (calls to it are
    being shed). *)

val set_degraded_trips : t -> bool -> unit
(** Enable (or disable) gray-failure breaker trips: when on, a destination
    that {!Health.sustained_slow} reports as persistently slow has its
    breaker opened ([retry.degraded_trips]) exactly as if it had failed
    [breaker_threshold] times — slow enough is down for latency-sensitive
    work. While tripped this way, a half-open probe that succeeds but is
    {e still slow} reopens the breaker with a doubled cooldown
    ([retry.degraded_reopens]) — the caller keeps the successful result —
    and only a fast success closes it. Default off; when off no health
    state is consulted and trajectories are byte-identical. *)

val degraded_trips : t -> bool
(** Whether gray-failure trips are enabled. *)

val run :
  t ->
  ?dst:Network.node_id ->
  ?deadline_at:float ->
  op:string ->
  policy ->
  (unit -> ('a, string) result) ->
  ('a, string) result
(** [run t ~op policy body] calls [body] until it returns [Ok], sleeping an
    exponential backoff between attempts. Must be called from a fiber.

    [dst] enables the per-destination breaker: after 3 consecutive
    failures the breaker opens and attempts are shed (counted, backed off,
    but not executed) until a cooldown passes; the next attempt then
    probes half-open — success closes the breaker, failure reopens it with
    a doubled cooldown. While the failure detector reports [dst] down,
    attempts are shed the same way. If the breaker's cooldown outlasts the
    caller's entire deadline, one attempt is forced through anyway as the
    half-open probe ([retry.forced_probes], single-flight per
    destination) — otherwise a deadline-bounded caller could shed every
    attempt and never discover the destination recovered.

    [deadline_at] is an absolute virtual-time deadline (typically an
    enclosing action's — see {!Action}[.Atomic.deadline]); the policy's own
    relative [budget] composes with it by taking the earlier of the two.
    [run] returns the last error rather than sleeping past a deadline.

    Errors are strings so layers with different error types can wrap
    freely; the final [Error] returned is the last attempt's. *)
