(** Experiment [tab-contention]: database contention scaling of the
    access schemes (§4.1.2 vs §4.1.3).

    The paper's stated advantage for scheme A is that [GetServer] "is a
    read operation, permitting shared access from within client actions" —
    many clients bind concurrently without queueing at the database. The
    flip side of schemes B/C is that every bind is a read-modify-write
    ([GetServer]+[Increment] under a write lock), serialising binders.

    Sweep the number of concurrent (read-only) clients and report mean
    bind latency and database lock waits per scheme: scheme A stays flat,
    B/C grow with the client count. *)

val run : ?seed:int64 -> unit -> Table.t
