(** Use lists: per-server-node records <client, counter> (§4.1.3).

    The Object Server database keeps, for each node in [SvA], a list
    counting the clients currently bound to the server on that node. An
    object is quiescent when every use list of every server node is
    empty. Values are immutable; updates return new lists, which keeps
    before-image undo trivial. *)

type t
(** An immutable use list. *)

val empty : t

val is_empty : t -> bool

val increment : t -> client:string -> t
(** Bump [client]'s counter, creating the record at 1 if absent. *)

val decrement : t -> client:string -> t
(** Decrease [client]'s counter, dropping the record at 0. A decrement of
    an absent client is a no-op (a cleanup raced with the client's own
    decrement). *)

val drop_client : t -> client:string -> t
(** Remove [client]'s record entirely (crash cleanup). *)

val count : t -> client:string -> int

val total : t -> int
(** Sum of all counters. *)

val clients : t -> (string * int) list
(** All records, sorted by client name. *)

val pp : Format.formatter -> t -> unit
