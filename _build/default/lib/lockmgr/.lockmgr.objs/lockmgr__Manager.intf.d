lib/lockmgr/manager.mli: Format Mode Sim
