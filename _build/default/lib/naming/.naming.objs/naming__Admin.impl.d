lib/naming/admin.ml: Action Binder Format Gvd List Net Replica Store String
