lib/store/object_store.mli: Object_state Uid Version
