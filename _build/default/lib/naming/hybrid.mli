(** The §5 extension: reducing dependence on atomic-action support.

    The paper's concluding remarks propose keeping the {e server} data in
    a traditional, non-atomic name server (most deployed name services
    offer no transactional interface) while retaining the atomic Object
    State database; the State database alone then guarantees consistent
    binding of clients to servers — binding to a stale server is harmless
    as long as states are loaded from, and written back to, a [St] set
    that only ever lists mutually consistent, latest-state stores.

    This module implements that hybrid: a plain in-memory name server for
    [SvA] (updates apply immediately, no locks, no undo) combined with the
    transactional [St] half of {!Gvd}. [bind] reads [SvA] from the plain
    server and [StA] through the atomic database under the standard
    scheme, so commit-time exclusion retains its full guarantees. *)

type t

val install :
  Binder.t -> node:Net.Network.node_id -> t
(** Host the plain server-set service on [node] (usually the same node as
    the GVD) and return the hybrid runtime. *)

val register :
  t -> from:Net.Network.node_id -> uid:Store.Uid.t ->
  sv:Net.Network.node_id list -> unit
(** Set the plain server set for an object (setup; direct). *)

val add_server :
  t -> from:Net.Network.node_id -> uid:Store.Uid.t -> Net.Network.node_id ->
  (unit, Net.Rpc.error) result
(** Non-transactional [Insert]: applies immediately, survives nothing. *)

val remove_server :
  t -> from:Net.Network.node_id -> uid:Store.Uid.t -> Net.Network.node_id ->
  (unit, Net.Rpc.error) result
(** Non-transactional [Remove]. *)

val servers :
  t -> from:Net.Network.node_id -> Store.Uid.t ->
  (Net.Network.node_id list, Net.Rpc.error) result
(** Read the plain server set. *)

val bind :
  t ->
  act:Action.Atomic.t ->
  uid:Store.Uid.t ->
  policy:Replica.Policy.t ->
  (Binder.binding, Binder.bind_error) result
(** Hybrid bind: [SvA] from the plain name server (no locks held), [StA]
    through the atomic state database as in the standard scheme. *)
