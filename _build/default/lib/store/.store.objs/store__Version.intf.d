lib/store/version.mli: Format
