(** Automatic passivation of quiescent servers (§2.3(3)).

    "An active copy of an object which is no longer in use will be said to
    be in a quiescent state; a quiescent object can passivate itself by
    destroying the server." The passivator is a daemon fiber per server
    node: every sweep it destroys instances that have been continuously
    quiescent for at least [idle_after] — the grace period avoids
    thrashing between back-to-back actions. The instance's committed state
    is already safe on the object stores (commit processing put it there),
    so passivation is pure memory reclamation; the next bind simply
    re-activates from a store.

    Passivation does not need to inform the naming service: [SvA] lists
    nodes {e able} to run a server (the capability is unaffected), and the
    use lists already show the object as unused. *)

type t
(** Handle for the daemon on one node. *)

val start :
  Server.runtime ->
  node:Net.Network.node_id ->
  ?period:float ->
  ?idle_after:float ->
  unit ->
  t
(** [start srv ~node ()] launches the sweeping daemon (defaults: [period]
    20.0, [idle_after] 30.0). Passivations are counted in the
    [server.auto_passivations] metric. The daemon is an infinite fiber:
    worlds running it must drive the engine with a time bound. It dies
    with the node and must be restarted by a recovery hook if wanted
    across crashes. *)

val sweep_now : Server.runtime -> node:Net.Network.node_id -> idle_after:float -> int
(** One synchronous sweep from a fiber on [node]; returns the number of
    instances passivated. *)
