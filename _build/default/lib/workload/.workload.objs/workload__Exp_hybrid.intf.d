lib/workload/exp_hybrid.mli: Table
