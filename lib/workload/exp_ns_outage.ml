open Naming

let run ?(seed = 91L) () =
  let w =
    Service.create ~seed ~durable_naming:true
      {
        Service.gvd_node = "ns";
        gvd_nodes = [];
        server_nodes = [ "alpha" ];
        store_nodes = [ "t1"; "t2" ];
        client_nodes = [ "c1" ];
      }
  in
  let uid =
    Service.create_object w ~name:"obj" ~impl:"counter" ~sv:[ "alpha" ]
      ~st:[ "t1"; "t2" ] ()
  in
  Service.run ~until:1.0 w;
  let eng = Service.engine w in
  let net = Service.network w in
  (* Outage window [100, 160); one action is mid-flight at the crash. *)
  Net.Fault.crash_for net ~at:100.0 ~duration:60.0 "ns";
  let phase_of t = if t < 100.0 then `Before else if t < 160.0 then `During else `After in
  let commits = Hashtbl.create 4 and aborts = Hashtbl.create 4 in
  let bump tbl phase =
    Hashtbl.replace tbl phase (1 + Option.value ~default:0 (Hashtbl.find_opt tbl phase))
  in
  Service.spawn_client w "c1" (fun () ->
      for i = 1 to 40 do
        let phase = phase_of (Sim.Engine.now eng) in
        (match
           Service.with_bound w ~client:"c1" ~scheme:Scheme.Standard
             ~policy:Replica.Policy.Single_copy_passive ~uid (fun act group ->
               let r = Service.invoke w group ~act "incr" in
               (* Stretch every 8th action so one straddles the crash. *)
               if i mod 8 = 0 then Sim.Engine.sleep eng 15.0;
               r)
         with
        | Ok _ -> bump commits phase
        | Error _ -> bump aborts phase);
        Sim.Engine.sleep eng 8.0
      done);
  Service.run w;
  let get tbl phase = Option.value ~default:0 (Hashtbl.find_opt tbl phase) in
  let consistent =
    let st = Gvd.current_st (Service.gvd w) uid in
    let states =
      List.filter_map
        (fun node ->
          Store.Object_store.read
            (Action.Store_host.objects (Service.store_host w) node)
            uid)
        st
    in
    List.length states = List.length st
    &&
    match states with
    | [] -> true
    | first :: rest -> List.for_all (Store.Object_state.equal first) rest
  in
  let row phase label =
    [ label; Table.cell_i (get commits phase); Table.cell_i (get aborts phase) ]
  in
  Table.make
    ~title:"tab-ns-outage: a durable (crashable) naming service (§3.1 relaxed)"
    ~columns:[ "phase"; "commits"; "aborts" ]
    ~notes:
      [
        "The service node is down from t=100 to t=160. During the outage";
        "every bind fails (single point of unavailability); in-flight";
        "actions abort at prepare rather than committing against lost";
        "locks. After recovery the committed database state is intact and";
        "the workload resumes.";
        (Printf.sprintf "St mutual-consistency invariant at end: %s."
           (if consistent then "holds" else "VIOLATED"));
        (Printf.sprintf "crash resets of the service: %d."
           (Sim.Metrics.counter (Service.metrics w) "gvd.crash_resets"));
      ]
    [ row `Before "before outage"; row `During "during outage"; row `After "after recovery" ]
