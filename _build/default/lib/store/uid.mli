(** Unique identifiers for persistent objects.

    §2.2: the Object Storage service assigns each object a UID; the naming
    service maps user-given string names to UIDs and UIDs to location
    information. A UID pairs a serial number (uniqueness) with the
    user-given label (trace readability). UIDs are allocated from an
    explicit {!supply} so that simulations are deterministic and
    independent of test execution order. *)

type t
(** A unique object identifier. *)

type supply
(** A deterministic allocator of UIDs. *)

val supply : unit -> supply
(** A fresh allocator starting at serial 0. *)

val fresh : supply -> label:string -> t
(** [fresh s ~label] allocates the next UID, tagged with [label]. *)

val label : t -> string
(** The user-given label. *)

val serial : t -> int
(** The allocation serial number. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val to_string : t -> string
(** ["label#serial"], e.g. ["account#3"]. *)

val pp : Format.formatter -> t -> unit
