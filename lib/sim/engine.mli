(** Deterministic discrete-event simulation engine with lightweight fibers.

    Protocol code runs inside {e fibers}: cooperative coroutines implemented
    with OCaml 5 effect handlers. A fiber performs ordinary OCaml computation
    between {e suspension points} ([sleep], [suspend], channel reads, ...);
    only suspension points advance the virtual clock, so each segment of
    computation is atomic with respect to every other fiber. This is exactly
    the discrete-event model: determinism comes from the strictly ordered
    event queue (time, then insertion sequence).

    Fibers belong to {e groups}. Killing a group (used to model a node
    crash) prevents every fiber of the group from ever being resumed; the
    fiber simply vanishes at its current suspension point, mirroring a
    fail-silent processor that stops mid-protocol without running cleanup
    handlers. *)

type t
(** A simulation engine instance. *)

type group
(** A fiber group; typically one per simulated node incarnation. *)

exception Deadlock of string
(** Raised by [run] when deadlock detection is enabled (see
    {!set_detect_deadlock}) and the event queue drains while fibers are
    still suspended. *)

val create : ?seed:int64 -> unit -> t
(** [create ?seed ()] is a fresh engine with virtual clock 0. [seed]
    (default [1L]) seeds the engine's root {!Rng.t}. *)

val rng : t -> Rng.t
(** The engine's root random generator. Split it rather than sharing it
    between independent components. *)

val now : t -> float
(** Current virtual time. *)

val root_group : t -> group
(** The group that owns fibers not tied to any node. It is never killed. *)

val new_group : t -> group
(** [new_group t] is a fresh, live fiber group. *)

val kill_group : t -> group -> unit
(** [kill_group t g] kills [g]: fibers of [g] currently suspended are never
    resumed, and future resumptions of its fibers are dropped. Spawning into
    a killed group is a silent no-op (the fiber never starts). *)

val group_alive : group -> bool
(** Whether the group is still live. *)

val spawn : t -> ?group:group -> ?name:string -> (unit -> unit) -> unit
(** [spawn t ~group ~name f] schedules fiber [f] to start at the current
    virtual time, after already-queued events. An exception escaping [f]
    (other than the internal kill signal) is recorded and re-raised by
    {!run}. [name] is used in error reports. *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** [schedule t ~delay f] runs the plain callback [f] at time [now t +.
    delay]. [f] must not perform fiber effects; use [spawn] for that. *)

type 'a resumer = ('a, exn) result -> unit
(** Completion callback handed to [suspend] registrants: call it once with
    [Ok v] to resume the fiber with [v], or [Error e] to raise [e] inside
    the fiber. Subsequent calls are ignored, which makes races between a
    result and a timeout safe. *)

val suspend : t -> ('a resumer -> unit) -> 'a
(** [suspend t register] suspends the calling fiber and calls
    [register resume]. The fiber resumes when [resume] is first invoked.
    Must be called from within a fiber. *)

val self_group : t -> group
(** [self_group t] is the group of the currently executing fiber. Child
    fibers spawned into it share the caller's crash fate, which is what
    structured-concurrency helpers ({!Join}) need. Must be called from
    within a fiber. *)

val sleep : t -> float -> unit
(** [sleep t dt] suspends the calling fiber for [dt] units of virtual
    time. [dt] is clamped to be non-negative. *)

val daemon_sleep : t -> float -> unit
(** Like {!sleep}, but marks the sleeping fiber as an {e idle daemon}: its
    wakeup event does not count as pending work, so a drain-mode {!run}
    (no [until]) stops once only daemon wakeups remain, leaving the fiber
    parked — and {!leaked_fibers} does not report it. Periodic
    housekeeping loops (anti-entropy gossip) sleep with this so worlds
    that drain to quiescence can still run them. *)

val yield : t -> unit
(** [yield t] re-queues the calling fiber at the current time, letting
    other ready fibers run first. *)

val timeout : t -> float -> ('a resumer -> unit) -> ('a, exn) result
(** [timeout t dt register] is like [suspend] but resumes with
    [Error Timed_out] if nothing resumed the fiber within [dt]. *)

exception Timed_out
(** Raised (inside the fiber) when a [timeout] expires. *)

val set_detect_deadlock : t -> bool -> unit
(** Enable or disable deadlock detection in [run]. Off by default: a
    simulation that ends while daemon fibers wait for work is normal; in
    crash-free unit tests, turning detection on catches lost wakeups. *)

val run : ?until:float -> ?max_steps:int -> t -> unit
(** [run t] processes events in (time, sequence) order until the queue is
    empty, time exceeds [until], or [max_steps] events have been processed.
    Without [until] (drain mode) the run also stops as soon as only daemon
    wakeups remain queued (see {!daemon_sleep}) — worlds with no daemons
    behave exactly as before. Re-raises the first exception that escaped a
    fiber, if any. *)

val processed_events : t -> int
(** Number of events processed so far; useful for budget assertions. *)

val leaked_fibers : t -> string list
(** Names of fibers currently suspended whose group is still alive, sorted.
    Meaningful after {!run} has drained the queue: a live-group suspension
    with no pending event waits for a wakeup that cannot come — a lost
    resume, an ivar nobody will fill, a lock nobody will release. Entries
    belonging to killed groups are pruned (crash is fail-silent by design,
    not a leak). *)
