(** Experiment [tab-scaling]: changing the degree of replication under
    load (§2.3(1), §4.1.2).

    "If we assume a dynamic system permitting changes to the degree of
    replication for an object ... it is important to ensure that such
    changes are reflected in the naming and binding service without
    causing inconsistencies to current users."

    A client stream runs throughout; operations staff add a second store,
    add a second server, then retire the original server, mid-stream. The
    table reports per-phase commit rates and the St invariant at the end:
    the administrative actions serialise against users through the
    database locks and the quiescence requirement, so no phase shows
    inconsistency — only the retirement can briefly wait for quiescence. *)

val run : ?seed:int64 -> unit -> Table.t
