(** Convenience: enrol a store node as a 2PC participant of an action.

    Used by commit processing (§2.3(3)): the new states of modified objects
    are copied to the object stores during the commit of the application's
    action. [writes] is evaluated lazily at prepare time, after all
    invocations have produced the final state. *)

val add :
  Atomic.t ->
  store:Net.Network.node_id ->
  writes:(unit -> (Store.Uid.t * Store.Object_state.t) list) ->
  unit
(** [add act ~store ~writes] registers a participant that prepares
    [writes ()] on [store] during phase 1 (voting no if the store is
    unreachable) and applies or discards them in phase 2. *)
