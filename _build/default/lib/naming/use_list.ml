type t = (string * int) list (* sorted by client, counts > 0 *)

let empty = []

let is_empty t = t = []

let rec increment t ~client =
  match t with
  | [] -> [ (client, 1) ]
  | (c, n) :: rest ->
      if String.equal c client then (c, n + 1) :: rest
      else if String.compare c client > 0 then (client, 1) :: t
      else (c, n) :: increment rest ~client

let rec decrement t ~client =
  match t with
  | [] -> []
  | (c, n) :: rest ->
      if String.equal c client then
        if n <= 1 then rest else (c, n - 1) :: rest
      else (c, n) :: decrement rest ~client

let drop_client t ~client = List.filter (fun (c, _) -> not (String.equal c client)) t

let count t ~client =
  match List.assoc_opt client t with Some n -> n | None -> 0

let total t = List.fold_left (fun acc (_, n) -> acc + n) 0 t

let clients t = t

let pp ppf t =
  Format.fprintf ppf "[%s]"
    (String.concat "; " (List.map (fun (c, n) -> Printf.sprintf "%s=%d" c n) t))
