let sweep_now gvd art =
  let net = Action.Atomic.network art in
  let node = Gvd.node gvd in
  let removed = ref 0 in
  List.iter
    (fun uid ->
      (* Snapshot the orphans first; each repair is its own action. *)
      let orphans =
        List.concat_map
          (fun (_, ul) ->
            List.filter_map
              (fun (client, _) ->
                if Net.Network.is_up net client then None else Some client)
              (Use_list.clients ul))
          (Gvd.current_uses gvd uid)
        |> List.sort_uniq String.compare
      in
      List.iter
        (fun client ->
          (* A transient lock refusal must not leave the orphan for a whole
             further sweep period: retry the repair a few times through the
             shared policy engine. *)
          match
            Net.Retry.run (Action.Atomic.retry art) ~op:"cleanup.zero"
              (Net.Retry.policy ~attempts:3 ~base:1.0 ~factor:2.0
                 ~max_delay:4.0 ())
              (fun () ->
                Action.Atomic.atomically art ~node (fun act ->
                    match Gvd.zero_client gvd ~act ~uid ~client with
                    | Ok (Gvd.Granted ()) -> ()
                    | Ok (Gvd.Refused why) | Ok (Gvd.Busy why) ->
                        raise (Action.Atomic.Abort why)
                    | Ok (Gvd.Moved dest) ->
                        (* Entry migrated to another shard since the
                           snapshot; that shard's own daemon will sweep
                           it. *)
                        raise (Action.Atomic.Abort ("moved to " ^ dest))
                    | Error e ->
                        raise (Action.Atomic.Abort (Net.Rpc.error_to_string e))))
          with
          | Ok () ->
              incr removed;
              Sim.Metrics.incr (Net.Network.metrics net) "cleanup.orphans";
              Sim.Trace.recordf (Net.Network.trace net)
                ~now:(Sim.Engine.now (Action.Atomic.engine art))
                ~tag:"cleanup" "zeroed %s on %a" client Store.Uid.pp uid
          | Error _ -> ())
        orphans)
    (Gvd.all_uids gvd);
  !removed

let start gvd ?(period = 10.0) art =
  let eng = Action.Atomic.engine art in
  let net = Action.Atomic.network art in
  Net.Network.spawn_on net (Gvd.node gvd) ~name:"gvd.cleanup" (fun () ->
      let rec loop () =
        Sim.Engine.sleep eng period;
        ignore (sweep_now gvd art : int);
        loop ()
      in
      loop ())
