type t = {
  mutable permits : int;
  mutable waiters : unit Engine.resumer list; (* newest first *)
}

let create n =
  if n < 0 then invalid_arg "Semaphore.create: negative capacity";
  { permits = n; waiters = [] }

let rec acquire eng s =
  if s.permits > 0 then s.permits <- s.permits - 1
  else begin
    Engine.suspend eng (fun resume -> s.waiters <- resume :: s.waiters);
    acquire eng s
  end

let try_acquire s =
  if s.permits > 0 then begin
    s.permits <- s.permits - 1;
    true
  end
  else false

let release s =
  s.permits <- s.permits + 1;
  (* Wake everyone; stale waiters are dropped by the engine and live ones
     re-check the permit count (see Mailbox for the rationale). *)
  let waiters = List.rev s.waiters in
  s.waiters <- [];
  List.iter (fun resume -> resume (Ok ())) waiters

let available s = s.permits

let with_permit eng s f =
  acquire eng s;
  match f () with
  | v ->
      release s;
      v
  | exception e ->
      release s;
      raise e
