type error = Unreachable | Crashed | Timed_out | No_service

let error_to_string = function
  | Unreachable -> "unreachable"
  | Crashed -> "crashed"
  | Timed_out -> "timed out"
  | No_service -> "no service"

let pp_error ppf e = Format.pp_print_string ppf (error_to_string e)

type ('req, 'resp) endpoint = {
  ep_name : string;
  inject_req : 'req -> Univ.t;
  project_req : Univ.t -> 'req option;
  inject_resp : 'resp -> Univ.t;
  project_resp : Univ.t -> 'resp option;
}

let endpoint name =
  let inject_req, project_req = Univ.embed () in
  let inject_resp, project_resp = Univ.embed () in
  { ep_name = name; inject_req; project_req; inject_resp; project_resp }

let endpoint_name ep = ep.ep_name

(* A raw handler receives the request payload and a [reply] callback. The
   reply callback transports the response back to the caller. *)
type raw_handler = Univ.t -> reply:(Univ.t -> unit) -> unit

type t = {
  net : Network.t;
  services : (Network.node_id * string, raw_handler) Hashtbl.t;
  default_timeout : float;
  mutable next_req : int;
  seen : (string, unit) Hashtbl.t;
  dedup_hooked : (Network.node_id, unit) Hashtbl.t;
}

let create ?(default_timeout = 60.0) net =
  {
    net;
    services = Hashtbl.create 64;
    default_timeout;
    next_req = 0;
    seen = Hashtbl.create 64;
    dedup_hooked = Hashtbl.create 8;
  }

let network t = t.net

(* At-most-once request guard. The fault plane can deliver a request twice
   (dup injection); replaying a non-idempotent handler — staging a second
   Increment in gvd.bind_batch, double-applying a merged Decrement — would
   corrupt counters. Each request carries a fresh id; the destination keeps
   a volatile seen-table (cleared when it crashes, like any in-memory dedup
   cache) and drops replays, counted as [rpc.dup_suppressed]. Activated
   only once a world installs message faults ([Network.faults_ever]), so
   fault-free worlds allocate and check nothing. *)
let dedup_key ~dst ~from rid =
  String.concat "\x00" [ dst; from; string_of_int rid ]

let hook_dedup_clear t dst =
  if not (Hashtbl.mem t.dedup_hooked dst) then begin
    Hashtbl.add t.dedup_hooked dst ();
    Network.on_crash t.net dst (fun () ->
        let prefix = dst ^ "\x00" in
        let plen = String.length prefix in
        let doomed =
          Hashtbl.fold
            (fun k () acc ->
              if String.length k >= plen && String.sub k 0 plen = prefix then
                k :: acc
              else acc)
            t.seen []
        in
        List.iter (Hashtbl.remove t.seen) doomed)
  end

(* Wrap a request-delivery thunk with the duplicate guard. Returns the
   thunk unchanged in fault-free worlds. *)
let guard_duplicate t ~from ~dst thunk =
  if not (Network.faults_ever t.net) then thunk
  else begin
    hook_dedup_clear t dst;
    let rid = t.next_req in
    t.next_req <- rid + 1;
    let key = dedup_key ~dst ~from rid in
    fun () ->
      if Hashtbl.mem t.seen key then begin
        Sim.Metrics.incr (Network.metrics t.net) "rpc.dup_suppressed";
        Sim.Trace.recordf (Network.trace t.net)
          ~now:(Sim.Engine.now (Network.engine t.net))
          ~tag:"rpc" "dup suppressed %s->%s" from dst
      end
      else begin
        Hashtbl.add t.seen key ();
        thunk ()
      end
  end

let serve t ~node ep h =
  let raw payload ~reply =
    match ep.project_req payload with
    | None ->
        failwith
          (Printf.sprintf "Rpc.serve: payload type mismatch on %s@%s"
             ep.ep_name node)
    | Some req -> reply (ep.inject_resp (h req))
  in
  Hashtbl.replace t.services (node, ep.ep_name) raw

let withdraw t ~node ep = Hashtbl.remove t.services (node, ep.ep_name)

let serving t ~node ep = Hashtbl.mem t.services (node, ep.ep_name)

let record t fmt =
  Sim.Trace.recordf (Network.trace t.net)
    ~now:(Sim.Engine.now (Network.engine t.net))
    ~tag:"rpc" fmt

let call t ~from ~dst ?timeout ep req =
  let eng = Network.engine t.net in
  Sim.Metrics.incr (Network.metrics t.net) "rpc.calls";
  (* Per-operation round counter: lets tests and experiments assert how
     many network rounds a protocol step costs (e.g. a batched bind is
     exactly one "rpc.op.gvd.bind_batch" tick). *)
  Sim.Metrics.incr (Network.metrics t.net) ("rpc.op." ^ ep.ep_name);
  if not (Network.reachable t.net from dst) then begin
    (* The callee is already known-dead (or unreachable): the failure
       detector answers after one detection latency. *)
    Sim.Engine.sleep eng (Network.sample_latency t.net);
    record t "%s: %s.%s -> unreachable" from dst ep.ep_name;
    Sim.Metrics.incr (Network.metrics t.net) "rpc.unreachable";
    Error Unreachable
  end
  else begin
    let watch_ref = ref None in
    let register resume =
      let finish r =
        (match !watch_ref with
        | Some w -> Network.unwatch t.net dst w
        | None -> ());
        resume (Ok r)
      in
      watch_ref := Some (Network.watch_crash t.net dst (fun () -> finish (Error Crashed)));
      Network.send t.net ~src:from ~dst
        (guard_duplicate t ~from ~dst (fun () ->
             match Hashtbl.find_opt t.services (dst, ep.ep_name) with
             | None ->
                 Network.send t.net ~src:dst ~dst:from (fun () ->
                     finish (Error No_service))
             | Some raw ->
                 raw (ep.inject_req req) ~reply:(fun resp_payload ->
                     Network.send t.net ~src:dst ~dst:from (fun () ->
                         match ep.project_resp resp_payload with
                         | Some resp -> finish (Ok resp)
                         | None ->
                             failwith
                               (Printf.sprintf
                                  "Rpc.call: response type mismatch on %s"
                                  ep.ep_name)))))
    in
    let dt = match timeout with Some dt -> dt | None -> t.default_timeout in
    let outcome =
      match Sim.Engine.timeout eng dt register with
      | Ok r -> r
      | Error _ -> Error Timed_out
    in
    (match outcome with
    | Ok _ -> ()
    | Error e ->
        record t "%s: %s.%s -> %s" from dst ep.ep_name (error_to_string e);
        Sim.Metrics.incr (Network.metrics t.net)
          ("rpc." ^ String.map (function ' ' -> '_' | c -> c) (error_to_string e)));
    outcome
  end

let call_all t ~from ?timeout ep reqs =
  (match reqs with
  | [] | [ _ ] -> ()
  | _ ->
      Sim.Metrics.incr (Network.metrics t.net) "rpc.scatters";
      Sim.Metrics.incr (Network.metrics t.net) ~by:(List.length reqs)
        "rpc.scatter_calls");
  Sim.Join.all (Network.engine t.net)
    (List.map
       (fun (dst, req) () -> (dst, call t ~from ~dst ?timeout ep req))
       reqs)

let notify t ~from ~dst ep req =
  Sim.Metrics.incr (Network.metrics t.net) "rpc.notifies";
  if Network.reachable t.net from dst then
    Network.send t.net ~src:from ~dst
      (guard_duplicate t ~from ~dst (fun () ->
           match Hashtbl.find_opt t.services (dst, ep.ep_name) with
           | None -> ()
           | Some raw -> raw (ep.inject_req req) ~reply:(fun _ -> ())))
