(** Failure injection: deterministic and stochastic crash schedules.

    Experiments drive node failures through this module so that every
    crash appears in the trace and the schedule is reproducible from the
    engine seed. *)

val crash_at : Network.t -> at:float -> Network.node_id -> unit
(** Crash the node at absolute virtual time [at] (no-op if already down
    then). *)

val recover_at : Network.t -> at:float -> Network.node_id -> unit
(** Recover the node at absolute virtual time [at]. *)

val crash_for : Network.t -> at:float -> duration:float -> Network.node_id -> unit
(** Crash at [at], recover at [at +. duration]. *)

val churn :
  Network.t ->
  rng:Sim.Rng.t ->
  mttf:float ->
  mttr:float ->
  ?until:float ->
  Network.node_id ->
  unit
(** [churn net ~rng ~mttf ~mttr id] subjects the node to an alternating
    up/down renewal process: exponential time-to-failure with mean [mttf],
    exponential repair time with mean [mttr], stopping at [until] (default:
    never). The process is driven by its own fiber in the root group so it
    survives the crashes it causes. *)
