(** Simulated network of fail-silent nodes.

    The network owns the set of nodes, the message latency model, crash and
    recovery of nodes, and optional pairwise partitions. It matches the
    paper's failure assumptions (§2.1): nodes are fail-silent — they either
    work as specified or stop — and processes on functioning nodes can
    communicate.

    A node carries:
    - an {e incarnation} counter, bumped on every recovery;
    - an {!Sim.Engine.group} per incarnation: fibers spawned on behalf of
      the node die silently when it crashes;
    - registered {e services} (installed by the RPC layer), which survive
      crashes — the code of a service is on stable storage, per §3.1 —
      while any volatile state they captured is reset through [on_crash]
      callbacks;
    - [on_crash] / [on_recover] hooks used by upper layers (volatile cache
      invalidation, recovery protocols such as the paper's
      update-then-[Include] sequence). *)

type t
(** A simulated network. *)

type node_id = string
(** Nodes are named by short strings ("alpha", "store1", ...), which keeps
    traces readable. *)

exception Unknown_node of node_id
(** Raised when an operation names a node that was never added. *)

val create :
  ?latency:(Sim.Rng.t -> float) ->
  ?detect_delay:float ->
  Sim.Engine.t ->
  t
(** [create eng] is an empty network driven by [eng].
    [latency] samples per-message transit time (default: uniform in
    [\[0.5, 1.5\]]). [detect_delay] is the failure-detector notification
    delay applied when a crash aborts in-flight RPCs (default [1.0]). *)

val engine : t -> Sim.Engine.t
(** The engine driving this network. *)

val trace : t -> Sim.Trace.t
(** The network's trace sink (shared with upper layers by convention). *)

val metrics : t -> Sim.Metrics.t
(** The network's metrics registry (shared with upper layers). *)

val health : t -> Health.t
(** The network's latency-health tracker. The RPC layer feeds every call
    completion into it; retry breakers, hedged scatters and replica
    ranking read it. Always on — its bookkeeping is pure arithmetic, so
    fault-free worlds are unperturbed. *)

val add_node : t -> node_id -> unit
(** [add_node t id] registers a fresh, up node. Raises [Invalid_argument]
    if [id] already exists. *)

val node_ids : t -> node_id list
(** All registered node ids, sorted. *)

val is_up : t -> node_id -> bool
(** Whether the node is currently functioning. *)

val incarnation : t -> node_id -> int
(** The node's incarnation number (0 initially, +1 per recovery). *)

val group : t -> node_id -> Sim.Engine.group
(** The fiber group of the node's current incarnation. Fibers representing
    computation {e on} the node must be spawned into this group. *)

val spawn_on : t -> node_id -> ?name:string -> (unit -> unit) -> unit
(** [spawn_on t id f] runs fiber [f] on node [id] (in its current group).
    Silently does nothing if the node is down. *)

val crash : t -> node_id -> unit
(** [crash t id] stops the node: its fibers die at their suspension points,
    its volatile state is reset via [on_crash] hooks, in-flight RPCs
    against it fail after the detection delay, and messages in transit to
    it are dropped. Idempotent. *)

val recover : t -> node_id -> unit
(** [recover t id] restarts a crashed node with a fresh incarnation and
    runs its [on_recover] hooks (oldest registration first). Idempotent on
    an up node. *)

val on_crash : t -> node_id -> (unit -> unit) -> unit
(** Register a callback run (synchronously) when the node crashes. *)

val on_recover : t -> node_id -> (unit -> unit) -> unit
(** Register a callback run when the node recovers. The callback runs in a
    fresh fiber of the new incarnation. *)

val set_partitioned : t -> node_id -> node_id -> bool -> unit
(** [set_partitioned t a b flag] blocks (or unblocks) message delivery in
    both directions between [a] and [b]. *)

val partitioned : t -> node_id -> node_id -> bool
(** Whether the pair is currently partitioned. *)

val reachable : t -> node_id -> node_id -> bool
(** [reachable t src dst]: [dst] is up, not partitioned from [src], and the
    directed link [src]->[dst] is not one-way cut. *)

(** {2 Message-level fault plane}

    Directed per-link fault rules: drop, duplicate, reorder (delivery held
    past later sends), latency spikes, and one-way cuts. Links with no rule
    installed take the exact pre-fault code path with no extra RNG draws,
    so fault-free worlds are byte-identical. Fault decisions draw from a
    stream derived from (but independent of) the latency stream, making
    every injected fault reproducible from the engine seed. Injections are
    recorded in the trace under tag ["fault"] and counted as
    [fault.drop] / [fault.dup] / [fault.reorder] / [fault.delay] /
    [fault.cut_dropped] metrics.

    {!send_fifo} channels (the sequencer multicast) are reliable-ordered by
    contract: only delay spikes and cuts apply to them. *)

val set_link_fault :
  t ->
  ?drop:float ->
  ?dup:float ->
  ?reorder:float ->
  ?spike_prob:float ->
  ?spike:float ->
  src:node_id ->
  dst:node_id ->
  unit ->
  unit
(** Install (or overwrite) the message-fault rule for the directed link
    [src]->[dst]. [drop], [dup], [reorder] and [spike_prob] are per-message
    probabilities; [spike] is the extra latency added when a spike fires.
    Omitted fields default to 0 (off); a rule with all fields off is
    removed. A one-way cut set via {!set_oneway_cut} is preserved. *)

val clear_link_fault : t -> src:node_id -> dst:node_id -> unit
(** Remove drop/dup/reorder/spike injection from the directed link,
    preserving any one-way cut. *)

val set_oneway_cut : t -> src:node_id -> dst:node_id -> bool -> unit
(** [set_oneway_cut t ~src ~dst true] blocks delivery in the [src]->[dst]
    direction only — the asymmetric partition of the chaos harness.
    Messages in flight when the cut lands are dropped at delivery time,
    like symmetric partitions. *)

val oneway_cut : t -> src:node_id -> dst:node_id -> bool
(** Whether the directed link is currently cut. *)

val set_brownout : t -> ?prob:float -> lo:float -> hi:float -> node_id -> unit
(** [set_brownout t ~lo ~hi node] installs per-node service-time inflation
    (a {e brownout}): each message delivered to — or sent by — [node] is,
    with probability [prob] (default [0.2]), delayed by an extra uniform
    draw from [\[lo, hi\]]. Distinct from a link spike: it follows the
    node across all of its links, modelling a gray failure (overloaded
    scheduler, thrashing disk) rather than a sick wire. Inflation draws
    come from the fault stream, and only when a brownout is installed, so
    healthy worlds are byte-identical. Counted as [fault.brownout]. *)

val clear_brownout : t -> node_id -> unit
(** Remove a node's brownout, if any. *)

val browned_out : t -> node_id -> bool
(** Whether the node currently has a brownout installed. *)

val clear_all_faults : t -> unit
(** Remove every link fault rule, one-way cut and brownout (the heal step
    of a chaos schedule). Symmetric partitions are not affected. *)

val faults_active : t -> bool
(** Whether any link fault rule (including one-way cuts) is installed. *)

val faults_ever : t -> bool
(** Whether any fault rule was ever installed in this network's lifetime.
    The RPC layer uses this to switch on duplicate suppression without
    taxing fault-free worlds. *)

val derive_rng : t -> string -> Sim.Rng.t
(** [derive_rng t label] is an independent RNG stream deterministically
    derived from the network's seed and [label], without advancing any
    existing stream. Derive at construction time: the derivation reads the
    latency stream's current state. *)

val sample_latency : t -> float
(** Draw one latency sample from the network's model. *)

val send : t -> src:node_id -> dst:node_id -> (unit -> unit) -> unit
(** [send t ~src ~dst f] delivers [f] to [dst] after one latency sample:
    at delivery time, if [dst] is up and the pair is not partitioned, [f]
    runs as a fresh fiber in [dst]'s group; otherwise the message is
    silently dropped (fail-silent network discards mail for dead nodes). *)

val send_fifo : t -> src:node_id -> dst:node_id -> (unit -> unit) -> unit
(** Like {!send} but deliveries from [src] to [dst] preserve send order
    (per-pair FIFO), as required by the sequencer-based ordered multicast. *)

(* Failure-detector support for the RPC layer. *)

type watch
(** Handle for a registered crash watch. *)

val watch_crash : t -> node_id -> (unit -> unit) -> watch
(** [watch_crash t id f] arranges for [f] to run [detect_delay] after [id]
    crashes, unless {!unwatch}ed first. Used by RPC calls to fail fast when
    the callee dies mid-call, modelling the perfect failure detector the
    paper assumes. *)

val unwatch : t -> node_id -> watch -> unit
(** Cancel a crash watch. *)
