type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let copy t = { state = t.state }

(* SplitMix64 output function (Steele, Lea & Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = int64 t }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits so the value fits OCaml's 63-bit int non-negatively. *)
  let raw = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  raw mod bound

let float t bound =
  (* 53 random bits mapped to [0, 1). *)
  let raw = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  bound *. (raw /. 9007199254740992.0)

let bool t p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float t 1.0 < p

let exponential t mean =
  let u = float t 1.0 in
  (* Guard against log 0. *)
  let u = if u <= 0.0 then epsilon_float else u in
  -.mean *. log u

let uniform t lo hi = lo +. float t (hi -. lo)

let pick t xs =
  match xs with
  | [] -> invalid_arg "Rng.pick: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let shuffle t xs =
  let arr = Array.of_list xs in
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr
