(** Hosting of object stores on nodes, with transactional write endpoints.

    Each participating node gets a stable {!Store.Object_store.t} and a
    stable {!Store.Intent_log.t}; this module registers the RPC endpoints
    through which remote servers read states (activation, §3.1) and write
    them under two-phase commit (commit processing, §2.3(3)).

    Contents survive crashes. What a crash does interrupt is protocol
    participation: a node that crashes between [prepare] and [commit] holds
    an in-doubt record that {!Recovery} resolves against the coordinator's
    decision record. *)

type t
(** The store-hosting runtime for one simulated world. *)

val create : Net.Rpc.t -> t
(** [create rpc] is a runtime with no hosted stores yet. *)

val rpc : t -> Net.Rpc.t

val add : t -> Net.Network.node_id -> unit
(** Equip [node] with a store and an intent log and register the store
    service endpoints on it. *)

val hosted : t -> Net.Network.node_id -> bool

val nodes : t -> Net.Network.node_id list
(** Every node with a store, sorted. *)

val objects : t -> Net.Network.node_id -> Store.Object_store.t
(** Direct (out-of-band) access to a node's object store; used for
    bootstrap and test assertions, never by protocol code. *)

val log : t -> Net.Network.node_id -> Store.Intent_log.t
(** Direct access to a node's intent log, same caveats. *)

val seed : t -> Net.Network.node_id -> Store.Uid.t -> Store.Object_state.t -> unit
(** Out-of-band initial placement of an object state on a node (creating
    the object before the simulation starts). *)

(* Remote operations; all must be called from a fiber on [from]. *)

val read :
  t ->
  from:Net.Network.node_id ->
  store:Net.Network.node_id ->
  Store.Uid.t ->
  (Store.Object_state.t option, Net.Rpc.error) result
(** Read the committed state of an object from a store node. *)

type delta = {
  d_impl : string;  (** implementation folding the ops *)
  d_base : int;
      (** committed counter the suffix starts above: the store must hold
          exactly this version for the delta to apply *)
  d_steps : (Store.Version.t * string list) list;
      (** the op suffix, oldest first; contiguous versions
          [d_base+1 ..], each with the ops that produced it *)
}
(** A delta write: the operation suffix [(d_base, target]] of an object's
    committed history, shipped in place of the full state when the
    coordinator knows the store already holds version [d_base] (see
    {!Replica.Oplog}). The store folds the ops over its committed payload
    {e at prepare time} and stages the resulting full state, so phase 2,
    in-doubt resolution and recovery replay are identical to the
    full-state path. *)

type write = Full of Store.Object_state.t | Delta of delta

(** A participant's phase-1 vote. [Vote_yes levels] carries, per prepared
    object, the committed counter the store held when it staged the write
    ([-1] = nothing yet): coordinators fold these levels into the shared
    per-(store,object) floor ({!Replica.Oplog.note_store}), so even a
    first-contact writer can base its next copy-back on a delta.

    [Vote_stale] is backward validation:
    the incoming state's version is not the direct successor of what the
    store holds, meaning the writer worked from a stale activation (e.g.
    two clients activated disjoint replica sets during churn — the
    split-brain the Arjuna lock store prevents physically). The action
    must abort; excluding the store would be wrong, it is healthy.

    [Vote_delta_miss c] refuses a delta whose base does not match the
    store's committed counter [c] ([-1] when the store holds nothing), or
    that the store cannot fold (no applier, unknown implementation, an op
    that fails). Nothing was staged; the coordinator reseeds its
    acknowledged-version vector from [c] and retries with full state. *)
type vote =
  | Vote_yes of (Store.Uid.t * int) list
  | Vote_stale
  | Vote_delta_miss of int

val prepare :
  t ->
  from:Net.Network.node_id ->
  store:Net.Network.node_id ->
  action:string ->
  coordinator:Net.Network.node_id ->
  (Store.Uid.t * Store.Object_state.t) list ->
  (vote, Net.Rpc.error) result
(** Phase-1 write of full states: validate versions and record intentions
    durably on [store]; [Ok (Vote_yes _)] is a yes-vote. *)

val commit :
  t ->
  from:Net.Network.node_id ->
  store:Net.Network.node_id ->
  action:string ->
  (unit, Net.Rpc.error) result
(** Phase-2: apply the intentions of [action]. Idempotent; applying a
    state older than what the store already holds is skipped, making
    recovery replays safe. *)

val abort :
  t ->
  from:Net.Network.node_id ->
  store:Net.Network.node_id ->
  action:string ->
  (unit, Net.Rpc.error) result
(** Phase-2 abort: discard the intentions of [action]. *)

val prepare_all :
  t ->
  from:Net.Network.node_id ->
  stores:Net.Network.node_id list ->
  action:string ->
  coordinator:Net.Network.node_id ->
  (Store.Uid.t * Store.Object_state.t) list ->
  (Net.Network.node_id * (vote, Net.Rpc.error) result) list
(** Scatter {!prepare} to every store concurrently ({!Net.Rpc.call_all});
    votes come back in store order. The commit-time state copy (§2.3(3))
    issues this one parallel write to all of [StA] instead of a chain of
    blocking calls, so its latency is one round-trip, not [|St|] of them. *)

val prepare_each :
  t ->
  from:Net.Network.node_id ->
  ?hedge:Net.Rpc.hedge ->
  ?deadline_at:float ->
  ?alt_of:(Net.Network.node_id -> Net.Network.node_id option) ->
  action:string ->
  coordinator:Net.Network.node_id ->
  (Net.Network.node_id * (Store.Uid.t * write) list) list ->
  (Net.Network.node_id * (vote, Net.Rpc.error) result) list
(** Like {!prepare_all} but with a per-store write list, so the copy-back
    can ship a delta to stores whose acknowledged version it knows and
    full state to the rest — still one concurrent scatter.

    The 2PC fan-outs take an optional hedging policy and propagated
    deadline (see {!Net.Rpc.call_all}). Hedging is safe here: a replayed
    prepare re-stages the same intent ({!Store.Intent_log.prepare}
    replaces per action), and commit/abort resolve idempotently, so a
    duplicate delivery changes nothing.

    [alt_of] (effective only together with [hedge]) routes a leg's backup
    copy to a {e sibling} [St] member instead of re-sending to the same
    node: when it maps a destination to [Some sibling], the backup races
    against that node, and a sibling win is reported as the leg's
    [Error Timed_out] — the sibling's answer is never passed off as the
    primary's. Prepare legs cancel the losing primary cooperatively (an
    unstaged prepare is harmless once the leg counts as failed); phase-2
    legs keep the primary copy in flight ({!Net.Rpc.call_hedged}'s
    [keep_primary]) because the primary must still apply its decision.
    The caller must only map to siblings that hold every object in the
    leg's write list. *)

val commit_all :
  t ->
  from:Net.Network.node_id ->
  ?hedge:Net.Rpc.hedge ->
  ?deadline_at:float ->
  ?alt_of:(Net.Network.node_id -> Net.Network.node_id option) ->
  stores:Net.Network.node_id list ->
  string ->
  (Net.Network.node_id * (unit, Net.Rpc.error) result) list
(** [commit_all t ~from ~stores action]: scatter {!commit} (phase-2) to
    every store concurrently. *)

val abort_all :
  t ->
  from:Net.Network.node_id ->
  ?hedge:Net.Rpc.hedge ->
  ?deadline_at:float ->
  ?alt_of:(Net.Network.node_id -> Net.Network.node_id option) ->
  stores:Net.Network.node_id list ->
  string ->
  (Net.Network.node_id * (unit, Net.Rpc.error) result) list
(** [abort_all t ~from ~stores action]: scatter {!abort} (phase-2 abort /
    prepare withdrawal) concurrently. *)

(** {2 Group-commit rounds} (see {!Replica.Groupcommit})

    One RPC round per store carrying per-action sub-records for a whole
    batch of concurrent commits. The store runs the per-action phase-1
    logic over each sub-record in order — validation, write reservations,
    intent-log staging, the prepare/reservation hooks and duplicate
    delivery replacement are exactly the solo path's, so one member's
    refusal ([Vote_stale]/[Vote_delta_miss]) affects only that member's
    vote, never its batchmates. *)

type prepare_req = {
  pr_action : string;
  pr_coordinator : string;
  pr_writes : (Store.Uid.t * write) list;
}
(** One batch member's phase-1 sub-record for one store: the same triple
    the solo {!prepare_each} sends, just bundled. *)

val prepare_batch :
  t ->
  from:Net.Network.node_id ->
  ?hedge:Net.Rpc.hedge ->
  ?deadline_at:float ->
  (Net.Network.node_id * prepare_req list) list ->
  (Net.Network.node_id * ((string * vote) list, Net.Rpc.error) result) list
(** Scatter one batched prepare per store; each store answers a per-action
    vote list (in sub-record order). *)

val commit_batch :
  t ->
  from:Net.Network.node_id ->
  ?hedge:Net.Rpc.hedge ->
  ?deadline_at:float ->
  ?alt_of:(Net.Network.node_id -> Net.Network.node_id option) ->
  (Net.Network.node_id * string list) list ->
  (Net.Network.node_id * ((Store.Uid.t * int) list, Net.Rpc.error) result) list
(** Scatter one batched phase-2 commit per store: the store applies each
    listed action's intentions ({e idempotent, per action}) and its ack
    carries the committed counter of {e every} object it holds — the
    acked-version floor gossip the coordinator folds into
    {!Replica.Oplog.note_store}. [alt_of] sibling-routes as in
    {!commit_all} (a sibling win is the leg's error, so a sibling's
    floors are never mistaken for the primary's); batched {e prepares}
    deliberately never take an alt map — one store's batch can carry
    sub-records of actions whose [St] does not include the sibling, and
    a staged intent there would dangle forever. *)

val floors_all :
  t ->
  from:Net.Network.node_id ->
  stores:Net.Network.node_id list ->
  (Net.Network.node_id * ((Store.Uid.t * int) list, Net.Rpc.error) result) list
(** One anti-entropy round: read each store's committed counters without
    committing anything (quiet-store floor gossip). *)

val decision :
  t ->
  from:Net.Network.node_id ->
  coordinator:Net.Network.node_id ->
  action:string ->
  (Store.Intent_log.decision option, Net.Rpc.error) result
(** Query a coordinator's decision record (used by recovery; presumed
    abort applies when the coordinator has forgotten the action). *)

val set_prepare_hook :
  t ->
  (node:Net.Network.node_id -> action:string -> coordinator:string -> unit) ->
  unit
(** Install a callback invoked (on the store node, within the prepare
    handler) for every accepted prepare. {!Recovery.guard_prepares} uses
    it to arrange in-doubt resolution should the coordinator crash. *)

val set_reservation_hook :
  t ->
  (node:Net.Network.node_id -> blockers:(string * string) list -> unit) ->
  unit
(** Install a callback invoked (on the store node, within the prepare
    handler) when a prepare is refused because other actions hold write
    reservations on the objects. [blockers] lists each blocking action
    with its coordinator. {!Recovery.break_stale_reservations} uses it to
    resolve reservations whose coordinator has been partitioned away. *)

val set_delta_applier :
  t -> (impl:string -> payload:string -> op:string -> string option) -> unit
(** Install the operation folder delta prepares resolve with ([None]
    refuses the op and misses the delta). Stores sit below the
    object-implementation registry, so the world-assembly layer injects
    this; a runtime without one answers every delta with
    [Vote_delta_miss]. *)

val record_decision :
  t -> node:Net.Network.node_id -> action:string -> Store.Intent_log.decision -> unit
(** Durably record a decision on the local node; the caller must be the
    coordinator running on [node]. Direct (non-RPC) because a coordinator
    writes its own stable storage. *)
