(** Group communication: unreliable multicast and reliable totally-ordered
    (atomic) multicast.

    §2.3(2) of the paper observes that replica groups need communication
    with reliability and ordering guarantees: all functioning members must
    receive the same messages in the same order, otherwise replicas diverge
    (Figure 1). This module provides both the broken primitive — per-member
    point-to-point sends that a sender crash can truncate — and the correct
    one, a sequencer-based atomic multicast [16].

    [cast_unreliable] iterates over members with a small inter-send gap, so
    a sender crash mid-iteration delivers to a prefix of the group: exactly
    the Figure-1 scenario. [cast_atomic] first transfers the message to a
    sequencer with a single send; once the sequencer holds it, delivery to
    every functioning member is guaranteed and totally ordered (per-member
    FIFO from a single sequencing point). *)

type t
(** Multicast runtime bound to one network. *)

type 'm channel
(** A typed group channel. Create one per logical group conversation and
    share it between senders and listeners. *)

val channel : string -> 'm channel
(** [channel name] is a fresh channel. *)

val channel_name : 'm channel -> string

val create : Rpc.t -> t
(** [create rpc] is a multicast runtime sharing [rpc]'s network. The
    sequencer service is installed on nodes lazily by {!enable_sequencer}. *)

val listen :
  t -> node:Network.node_id -> 'm channel -> (seq:int -> 'm -> unit) -> unit
(** [listen t ~node ch h] installs [h] as [node]'s handler for messages on
    [ch]. [seq] is the sequencer-assigned total-order number, or [-1] for
    unreliable casts. The handler runs in a fiber on [node]. *)

val unlisten : t -> node:Network.node_id -> 'm channel -> unit
(** Remove the handler. *)

val cast_unreliable :
  t -> from:Network.node_id -> members:Network.node_id list -> 'm channel -> 'm -> unit
(** [cast_unreliable t ~from ~members ch m] sends [m] to each member in
    turn with a small gap between sends; the sending fiber suspends at each
    gap, so a crash of [from] mid-cast truncates delivery. No ordering
    across senders. Must run in a fiber on [from]. *)

val enable_sequencer : t -> node:Network.node_id -> unit
(** Install the sequencing service on [node]. *)

val cast_atomic :
  t ->
  from:Network.node_id ->
  sequencer:Network.node_id ->
  members:Network.node_id list ->
  'm channel ->
  'm ->
  (int, Rpc.error) result
(** [cast_atomic t ~from ~sequencer ~members ch m] sends [m] through the
    sequencer: on success every member functioning at delivery time
    receives [m] with the returned sequence number, in the same relative
    order as every other atomic cast through that sequencer; if the single
    transfer to the sequencer fails, {e no} member receives it. Suspends
    the calling fiber until the sequencer acknowledges. *)
