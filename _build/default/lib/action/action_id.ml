type t = { org : string; path : int list (* root serial first *) }

let top ~origin ~serial = { org = origin; path = [ serial ] }

let child t ~serial = { org = t.org; path = t.path @ [ serial ] }

let parent t =
  match List.rev t.path with
  | [] | [ _ ] -> None
  | _ :: rev_rest -> Some { t with path = List.rev rev_rest }

let is_top t = match t.path with [ _ ] -> true | _ -> false

let origin t = t.org

let depth t = List.length t.path

let equal a b = String.equal a.org b.org && a.path = b.path

let compare a b =
  match String.compare a.org b.org with
  | 0 -> Stdlib.compare a.path b.path
  | c -> c

let to_string t =
  Printf.sprintf "%s:%s" t.org
    (String.concat "." (List.map string_of_int t.path))

let pp ppf t = Format.pp_print_string ppf (to_string t)
