(* Regression tests for defects found while building the experiments.
   Each test documents the failure mode it pins down. *)

open Naming

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let topo =
  {
    Service.gvd_node = "ns";
    gvd_nodes = [];
    server_nodes = [ "alpha" ];
    store_nodes = [ "beta1"; "beta2" ];
    client_nodes = [ "c1"; "c2" ];
  }

let store_payload w node uid =
  match
    Store.Object_store.read
      (Action.Store_host.objects (Service.store_host w) node)
      uid
  with
  | Some s -> Some s.Store.Object_state.payload
  | None -> None

(* Defect: two objects committed in one action overwrote each other's
   prepare record at the shared store node — the first object's write was
   silently lost (money creation in the bank example). Prepares for one
   action must merge. *)
let test_multi_object_action_commits_both () =
  let w = Service.create ~seed:1L topo in
  let a =
    Service.create_object w ~name:"a" ~impl:"account" ~initial:"100"
      ~sv:[ "alpha" ] ~st:[ "beta1"; "beta2" ] ()
  in
  let b =
    Service.create_object w ~name:"b" ~impl:"account" ~initial:"0"
      ~sv:[ "alpha" ] ~st:[ "beta1"; "beta2" ] ()
  in
  Service.spawn_client w "c1" (fun () ->
      match
        Action.Atomic.atomically (Service.atomic w) ~node:"c1" (fun act ->
            let bind uid =
              match
                Binder.bind (Service.binder w) ~act ~scheme:Scheme.Standard
                  ~uid ~policy:Replica.Policy.Single_copy_passive
              with
              | Ok bd -> bd.Binder.bd_group
              | Error e ->
                  raise (Action.Atomic.Abort (Binder.bind_error_to_string e))
            in
            let ga = bind a and gb = bind b in
            ignore (Service.invoke w ga ~act "withdraw 30");
            ignore (Service.invoke w gb ~act "deposit 30"))
      with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
  Service.run w;
  Alcotest.(check (option string)) "a debited" (Some "70") (store_payload w "beta1" a);
  Alcotest.(check (option string)) "b credited" (Some "30") (store_payload w "beta1" b);
  Alcotest.(check (option string)) "a on beta2 too" (Some "70") (store_payload w "beta2" a)

(* Defect: a client crash mid-action left its database locks held forever
   (the coordinator never runs the action-end protocol), wedging the entry
   for every later client. The orphan guard must abort the dead client's
   action at the database. *)
let test_orphan_guard_releases_dead_clients_locks () =
  let w = Service.create ~seed:2L topo in
  let uid =
    Service.create_object w ~name:"obj" ~impl:"counter" ~sv:[ "alpha" ]
      ~st:[ "beta1" ] ()
  in
  let eng = Service.engine w in
  let net = Service.network w in
  (* c1 takes the sv read lock inside its action and then dies. *)
  Service.spawn_client w "c1" (fun () ->
      ignore
        (Action.Atomic.atomically (Service.atomic w) ~node:"c1" (fun act ->
             (match Gvd.get_server (Service.gvd w) ~act uid with
             | Ok (Gvd.Granted _) -> ()
             | _ -> Alcotest.fail "get_server");
             Sim.Engine.sleep eng 1000.0)));
  Net.Fault.crash_at net ~at:10.0 "c1";
  (* After the failure detector fires, c2's Insert (write lock) succeeds. *)
  let inserted = ref false in
  Sim.Engine.schedule eng ~delay:20.0 (fun () ->
      Net.Network.spawn_on net "c2" (fun () ->
          ignore
            (Action.Atomic.atomically (Service.atomic w) ~node:"c2" (fun act ->
                 match Gvd.insert (Service.gvd w) ~act ~uid "alpha" with
                 | Ok (Gvd.Granted ()) -> inserted := true
                 | _ -> ()))));
  Sim.Engine.run ~until:100.0 eng;
  check_bool "insert went through after cleanup" true !inserted;
  check_bool "orphan abort counted" true
    (Sim.Metrics.counter (Service.metrics w) "gvd.orphan_aborts" >= 1)

(* Defect: a client crash mid-action left the server instance's locks and
   staged state behind, blocking later writers. *)
let test_orphan_guard_releases_server_instance () =
  let w = Service.create ~seed:3L topo in
  let uid =
    Service.create_object w ~name:"obj" ~impl:"counter" ~sv:[ "alpha" ]
      ~st:[ "beta1" ] ()
  in
  let eng = Service.engine w in
  let net = Service.network w in
  Service.spawn_client w "c1" (fun () ->
      ignore
        (Service.with_bound w ~client:"c1" ~scheme:Scheme.Standard
           ~policy:Replica.Policy.Single_copy_passive ~uid (fun act group ->
             ignore (Service.invoke w group ~act "add 5");
             Sim.Engine.sleep eng 1000.0)));
  Net.Fault.crash_at net ~at:10.0 "c1";
  let outcome = ref "none" in
  Sim.Engine.schedule eng ~delay:30.0 (fun () ->
      Net.Network.spawn_on net "c2" (fun () ->
          match
            Service.with_bound w ~client:"c2" ~scheme:Scheme.Standard
              ~policy:Replica.Policy.Single_copy_passive ~uid (fun act group ->
                Service.invoke w group ~act "add 7")
          with
          | Ok reply -> outcome := reply
          | Error e -> outcome := "error: " ^ e));
  Sim.Engine.run ~until:200.0 eng;
  (* c1's staged +5 must be gone; c2 sees 0 + 7. *)
  check_string "writer got clean state" "7" !outcome

(* Defect: under schemes B/C the bind read-then-promote pattern made two
   concurrent binders refuse each other's write promotion. The bind action
   must take the write lock up front (get_server_update). *)
let test_concurrent_independent_binds_both_succeed () =
  let w = Service.create ~seed:4L topo in
  let uid =
    Service.create_object w ~name:"obj" ~impl:"counter" ~sv:[ "alpha" ]
      ~st:[ "beta1" ] ()
  in
  let ok = ref 0 in
  List.iter
    (fun client ->
      Service.spawn_client w client (fun () ->
          match
            Binder.bind_independent (Service.binder w) ~client ~uid
              ~policy:Replica.Policy.Single_copy_passive
          with
          | Ok pb ->
              incr ok;
              Binder.release_independent (Service.binder w) pb
          | Error _ -> ()))
    [ "c1"; "c2" ];
  Service.run w;
  check_int "both binds succeeded" 2 !ok;
  check_bool "quiescent after releases" true (Gvd.quiescent (Service.gvd w) uid)

(* Defect: a bind that incremented use lists but failed activation leaked
   the counters (decrement used the activated member list, not the
   incremented one), poisoning quiescence forever. *)
let test_failed_activation_does_not_leak_counters () =
  let w = Service.create ~seed:5L topo in
  let uid =
    Service.create_object w ~name:"obj" ~impl:"counter" ~sv:[ "alpha" ]
      ~st:[ "beta1" ] ()
  in
  let net = Service.network w in
  (* Make the store unreadable so activation fails after the increments
     committed: alpha can't load the state. *)
  Net.Network.crash net "beta1";
  Service.spawn_client w "c1" (fun () ->
      match
        Binder.bind_independent (Service.binder w) ~client:"c1" ~uid
          ~policy:Replica.Policy.Single_copy_passive
      with
      | Ok _ -> Alcotest.fail "activation unexpectedly succeeded"
      | Error _ -> ());
  Service.run w;
  check_bool "no leaked counters" true (Gvd.quiescent (Service.gvd w) uid)

(* Defect: counters on servers no longer in Sv were invisible to
   introspection and to the cleanup daemon. *)
let test_cleanup_sees_counters_on_removed_servers () =
  let w =
    Service.create ~seed:6L ~cleanup_period:10.0
      {
        Service.gvd_node = "ns";
        gvd_nodes = [];
        server_nodes = [ "alpha"; "alpha2" ];
        store_nodes = [ "beta1" ];
        client_nodes = [ "c1"; "c2" ];
      }
  in
  let uid =
    Service.create_object w ~name:"obj" ~impl:"counter"
      ~sv:[ "alpha"; "alpha2" ] ~st:[ "beta1" ] ()
  in
  let eng = Service.engine w in
  let net = Service.network w in
  (* c1 binds (counters on alpha+alpha2), then crashes; later alpha is
     removed from Sv by another bind while down. The cleanup daemon must
     still find c1's counter on the removed alpha. *)
  Service.spawn_client w "c1" (fun () ->
      match
        Binder.bind_independent (Service.binder w) ~client:"c1" ~uid
          ~policy:(Replica.Policy.Active 2)
      with
      | Ok _ -> Net.Network.crash net "c1"
      | Error e -> Alcotest.fail (Binder.bind_error_to_string e))
    ;
  Sim.Engine.schedule eng ~delay:20.0 (fun () -> Net.Network.crash net "alpha");
  Sim.Engine.schedule eng ~delay:30.0 (fun () ->
      Net.Network.spawn_on net "c2" (fun () ->
          match
            Binder.bind_independent (Service.binder w) ~client:"c2" ~uid
              ~policy:Replica.Policy.Single_copy_passive
          with
          | Ok pb -> Binder.release_independent (Service.binder w) pb
          | Error _ -> ()));
  Sim.Engine.run ~until:200.0 eng;
  check_bool "daemon cleaned the hidden counter" true
    (Gvd.quiescent (Service.gvd w) uid)

(* Defect: a stale (freshly recovered, instance-less) replica's Not_active
   reply could outrace a live replica's real reply under active
   replication. *)
let test_stale_replica_does_not_outrace_live_one () =
  let w =
    Service.create ~seed:7L
      {
        Service.gvd_node = "ns";
        gvd_nodes = [];
        server_nodes = [ "a1"; "a2" ];
        store_nodes = [ "beta1" ];
        client_nodes = [ "c1" ];
      }
  in
  let uid =
    Service.create_object w ~name:"obj" ~impl:"counter" ~sv:[ "a1"; "a2" ]
      ~st:[ "beta1" ] ()
  in
  let eng = Service.engine w in
  let net = Service.network w in
  let outcome = ref (Error "never ran") in
  Service.spawn_client w "c1" (fun () ->
      outcome :=
        Service.with_bound w ~client:"c1" ~scheme:Scheme.Standard
          ~policy:(Replica.Policy.Active 2) ~uid (fun act group ->
            ignore (Service.invoke w group ~act "incr");
            (* a1 bounces: it comes back up with no instance, and will
               answer Not_active to the next multicast invocation. *)
            Net.Network.crash net "a1";
            Sim.Engine.sleep eng 2.0;
            Net.Network.recover net "a1";
            Sim.Engine.sleep eng 5.0;
            Service.invoke w group ~act "incr"));
  Sim.Engine.run eng;
  check_bool "live replica answered" true (!outcome = Ok "2")

(* Defect: before-images were whole-entry snapshots while the server and
   state lists are locked independently (§4.1): an action mutating the sv
   side could snapshot another action's in-flight st mutation, and its
   later abort would resurrect the other action's rolled-back change.
   Interleaving: A includes t2 (st write lock) -> B increments (sv write
   lock, snapshots entry WITH t2) -> A aborts (St back to [t1]) -> B
   aborts -> with whole-entry undo St would be [t1; t2] again. *)
let test_split_undo_no_resurrection () =
  let w = Service.create ~seed:9L topo in
  let uid =
    Service.create_object w ~name:"obj" ~impl:"counter" ~sv:[ "alpha" ]
      ~st:[ "beta1" ] ()
  in
  let eng = Service.engine w in
  let gvd = Service.gvd w in
  (* A: include beta2, hold, then abort at t=30. *)
  Service.spawn_client w "c1" (fun () ->
      ignore
        (Action.Atomic.atomically (Service.atomic w) ~node:"c1" (fun act ->
             (match Gvd.include_ gvd ~act ~uid "beta2" with
             | Ok (Gvd.Granted _) -> ()
             | _ -> Alcotest.fail "include");
             Sim.Engine.sleep eng 30.0;
             raise (Action.Atomic.Abort "A aborts"))));
  (* B: a bit later, increment (sv side), hold past A's abort, abort. *)
  Service.spawn_client w "c2" (fun () ->
      Sim.Engine.sleep eng 10.0;
      ignore
        (Action.Atomic.atomically (Service.atomic w) ~node:"c2" (fun act ->
             (match Gvd.increment gvd ~act ~uid ~client:"c2" [ "alpha" ] with
             | Ok (Gvd.Granted ()) -> ()
             | _ -> Alcotest.fail "increment");
             Sim.Engine.sleep eng 40.0;
             raise (Action.Atomic.Abort "B aborts"))));
  Service.run w;
  Alcotest.(check (list string))
    "A's aborted include stays aborted" [ "beta1" ]
    (Gvd.current_st gvd uid);
  check_bool "B's counters rolled back too" true (Gvd.quiescent gvd uid)

let suite =
  let tc = Alcotest.test_case in
  [
    ( "regressions",
      [
        tc "multi-object action commits both" `Quick
          test_multi_object_action_commits_both;
        tc "orphan guard releases db locks" `Quick
          test_orphan_guard_releases_dead_clients_locks;
        tc "orphan guard releases server instance" `Quick
          test_orphan_guard_releases_server_instance;
        tc "concurrent independent binds" `Quick
          test_concurrent_independent_binds_both_succeed;
        tc "failed activation does not leak counters" `Quick
          test_failed_activation_does_not_leak_counters;
        tc "cleanup sees counters on removed servers" `Quick
          test_cleanup_sees_counters_on_removed_servers;
        tc "stale replica does not outrace live one" `Quick
          test_stale_replica_does_not_outrace_live_one;
        tc "split undo: no cross-lock resurrection" `Quick
          test_split_undo_no_resurrection;
      ] );
  ]
