type entry = { at : float; tag : string; detail : string }

type t = { mutable enabled : bool; mutable entries : entry list (* newest first *) }

let create ?(enabled = true) () = { enabled; entries = [] }

let set_enabled t flag = t.enabled <- flag

let record t ~now ~tag detail =
  if t.enabled then t.entries <- { at = now; tag; detail } :: t.entries

let recordf t ~now ~tag fmt =
  if t.enabled then
    Format.kasprintf (fun detail -> record t ~now ~tag detail) fmt
  else Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

let entries t = List.rev t.entries

let with_tag t tag = List.filter (fun e -> String.equal e.tag tag) (entries t)

let count t ~tag = List.length (with_tag t tag)

let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  if m = 0 then true
  else begin
    let rec scan i =
      if i + m > n then false
      else if String.sub s i m = sub then true
      else scan (i + 1)
    in
    scan 0
  end

let find t ~tag ~substring =
  List.filter
    (fun e -> String.equal e.tag tag && contains_substring e.detail substring)
    (entries t)

let clear t = t.entries <- []

let pp ppf t =
  List.iter
    (fun e -> Format.fprintf ppf "%10.4f [%s] %s@." e.at e.tag e.detail)
    (entries t)
