(** Crash cleanup for node-local resources: abort the actions of dead
    clients.

    §4.1.3 observes that "a crash of a client does not automatically undo
    changes made to the database. So, failure detection and cleanup
    protocols will be required." Locks and staged updates held at a
    resource on behalf of a remote action become permanent garbage — and
    wedge every later client — if the action's coordinating node crashes
    before the action-end protocol reaches the resource.

    A guard watches, per (scope, action), the crash of the action's
    {e origin} node (recovered from the hierarchical action id, whose
    prefix is the coordinator); when the failure detector reports it, the
    guard runs the caller-supplied abort on the resource's node, in a
    fiber. Scopes separate independent resources sharing one guard (e.g.
    one scope per activated object instance on a server node). *)

type t

val create :
  Net.Network.t ->
  node:Net.Network.node_id ->
  abort:(scope:string -> action:string -> unit) ->
  t
(** [create net ~node ~abort] is a guard whose abort callbacks run as
    fibers on [node] (and are therefore dropped if [node] itself is down
    — its volatile resources died with it). *)

val origin_of_action : string -> string
(** The coordinator node encoded in an action-id string ("c1:3.1" →
    "c1"). *)

val touch : t -> scope:string -> action:string -> unit
(** Start watching the action's origin for this scope (idempotent). Call
    on every resource operation. Actions originating on [node] itself are
    not watched (their fate is local). *)

val settle : t -> scope:string -> action:string -> unit
(** The action ended normally at this scope: stop watching. *)

val transfer : t -> scope:string -> action:string -> parent:string -> unit
(** Nested commit: move the watch from the child to the parent action. *)
