lib/store/object_store.ml: Hashtbl List Object_state Uid
