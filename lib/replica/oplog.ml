type record = {
  r_version : Store.Version.t;
  r_ops : string list; (* application order *)
  r_stamp : float; (* virtual time of the append, drives age compaction *)
}

type t = {
  metrics : Sim.Metrics.t;
  mutable max_records : int;
  mutable max_age : float;
  (* (server node, uid serial) -> newest first. Logs are volatile with the
     node's instances: a crash drops them (the stores' committed states,
     not the logs, are the durable truth). *)
  logs : (Net.Network.node_id * int, record list ref) Hashtbl.t;
  (* (client, store, uid serial) -> last committed counter the store is
     known to have applied — known because the store acknowledged the
     phase-2 commit of that version, or reported its counter in a
     delta-miss vote. Entries are hints: a stale or missing entry only
     costs a full-state fallback, never correctness. *)
  vv : (Net.Network.node_id * Net.Network.node_id * int, int) Hashtbl.t;
  (* (store, uid serial) -> highest committed counter ANY client has seen
     the store acknowledge — seeded from the committed-version levels that
     prepare votes and delta-miss votes piggyback. A writer that has never
     committed to the store itself starts from this shared floor instead
     of shipping full state. Monotone (max-merge): versions are global per
     object, so the floor is a valid lower bound on the store's committed
     counter; a stale floor costs a delta-miss retry, never correctness. *)
  sv : (Net.Network.node_id * int, int) Hashtbl.t;
  (* (uid serial, counter) -> (committed_by, payload): what a full-state
     install of that version would have written; the chaos audit holds
     delta-applied store states to byte equality against it. The identity
     stamp matters: two racing actions can both RECORD a shadow for the
     same counter before 2PC decides between them, and the loser's entry
     must never be compared against the winner's committed bytes. Bounded
     sliding window. *)
  golden : (int * int, (string * string) list) Hashtbl.t;
}

let golden_window = 64

let create ?(max_records = 12) ?(max_age = 180.0) metrics =
  {
    metrics;
    max_records;
    max_age;
    logs = Hashtbl.create 32;
    vv = Hashtbl.create 64;
    sv = Hashtbl.create 64;
    golden = Hashtbl.create 64;
  }

let set_limits t ?max_records ?max_age () =
  Option.iter (fun n -> t.max_records <- n) max_records;
  Option.iter (fun a -> t.max_age <- a) max_age

let log_cell t ~node ~uid =
  let key = (node, Store.Uid.serial uid) in
  match Hashtbl.find_opt t.logs key with
  | Some r -> r
  | None ->
      let r = ref [] in
      Hashtbl.add t.logs key r;
      r

(* Enforce the compaction policy on one log, charging the truncation
   metrics for every record dropped. *)
let compact t ~now cell =
  let kept = ref 0 and dropped = ref 0 in
  let keep r =
    let fresh = now -. r.r_stamp <= t.max_age in
    if fresh && !kept < t.max_records then begin
      incr kept;
      true
    end
    else begin
      incr dropped;
      false
    end
  in
  cell := List.filter keep !cell;
  if !dropped > 0 then begin
    Sim.Metrics.incr t.metrics "oplog.truncations" ~by:!dropped;
    Sim.Metrics.incr t.metrics "oplog.resident_records" ~by:(- !dropped)
  end

let append t ~now ~node ~uid ~version ~ops =
  let cell = log_cell t ~node ~uid in
  cell := { r_version = version; r_ops = ops; r_stamp = now } :: !cell;
  Sim.Metrics.incr t.metrics "oplog.resident_records";
  compact t ~now cell

let records t ~node ~uid =
  match Hashtbl.find_opt t.logs (node, Store.Uid.serial uid) with
  | None -> []
  | Some cell -> List.rev_map (fun r -> (r.r_version, r.r_ops)) !cell

let install t ~now ~node ~uid entries =
  let cell = log_cell t ~node ~uid in
  let before = List.length !cell in
  cell :=
    List.rev_map
      (fun (version, ops) -> { r_version = version; r_ops = ops; r_stamp = now })
      entries;
  Sim.Metrics.incr t.metrics "oplog.resident_records"
    ~by:(List.length !cell - before);
  compact t ~now cell

let truncate_below t ~node ~uid ~counter =
  match Hashtbl.find_opt t.logs (node, Store.Uid.serial uid) with
  | None -> ()
  | Some cell ->
      let kept, dropped =
        List.partition
          (fun r -> r.r_version.Store.Version.counter >= counter)
          !cell
      in
      cell := kept;
      if dropped <> [] then begin
        let n = List.length dropped in
        Sim.Metrics.incr t.metrics "oplog.truncations" ~by:n;
        Sim.Metrics.incr t.metrics "oplog.resident_records" ~by:(-n)
      end

let drop_node t node =
  let doomed =
    Hashtbl.fold
      (fun ((n, _) as key) cell acc ->
        if String.equal n node then (key, List.length !cell) :: acc else acc)
      t.logs []
  in
  List.iter
    (fun (key, n) ->
      Hashtbl.remove t.logs key;
      Sim.Metrics.incr t.metrics "oplog.resident_records" ~by:(-n))
    doomed

(* The client-side decision rule: a chain (oldest first, as presented in a
   commit view) covers (base, upto] iff it contains a contiguous run of
   versions base+1 .. upto with a non-empty op list at every step. Any
   gap — compaction, a replica that joined late, an op that was never
   recorded — disqualifies the delta; the caller ships full state. *)
let suffix_of chain ~base ~upto =
  if upto <= base then None
  else
    let wanted =
      List.filter
        (fun ((v : Store.Version.t), _) -> v.counter > base && v.counter <= upto)
        chain
    in
    let rec contiguous prev = function
      | [] -> (
          match prev with
          | Some (p : Store.Version.t) -> p.counter = upto
          | None -> false)
      | ((v : Store.Version.t), ops) :: rest ->
          ops <> []
          && (match prev with
             | None -> v.counter = base + 1
             | Some p -> Store.Version.follows v p)
          && contiguous (Some v) rest
    in
    if contiguous None wanted then Some wanted else None

(* --- per-store acknowledged-version vector --- *)

let last_acked t ~client ~store ~uid =
  Hashtbl.find_opt t.vv (client, store, Store.Uid.serial uid)

let note_acked t ~client ~store ~uid counter =
  if counter < 0 then Hashtbl.remove t.vv (client, store, Store.Uid.serial uid)
  else Hashtbl.replace t.vv (client, store, Store.Uid.serial uid) counter

let forget_ack t ~client ~store ~uid =
  Hashtbl.remove t.vv (client, store, Store.Uid.serial uid)

let note_store t ~store ~uid counter =
  if counter >= 0 then begin
    let key = (store, Store.Uid.serial uid) in
    match Hashtbl.find_opt t.sv key with
    | Some c when c >= counter -> ()
    | _ -> Hashtbl.replace t.sv key counter
  end

let store_floor t ~store ~uid = Hashtbl.find_opt t.sv (store, Store.Uid.serial uid)

(* The delta-base lookup: the per-client ack and the shared floor are
   both lower bounds on the store's (monotone) committed counter — the
   ack because the store confirmed THIS client's commit, the floor
   because it confirmed SOMEBODY's. Take the max: with writers
   interleaving, a client's own ack lags by the other writers'
   intervening commits, and only the floor keeps the base close enough
   for the commit view's chain to cover the gap. An overshooting base is
   still safe (the store votes a delta miss and the retry ships full
   state). *)
let known_version t ~client ~store ~uid =
  match (last_acked t ~client ~store ~uid, store_floor t ~store ~uid) with
  | Some a, Some f -> Some (max a f)
  | (Some _ as k), None | None, (Some _ as k) -> k
  | None, None -> None

let drop_store t store =
  let doomed =
    Hashtbl.fold
      (fun ((s, _) as key) _ acc ->
        if String.equal s store then key :: acc else acc)
      t.sv []
  in
  List.iter (Hashtbl.remove t.sv) doomed

let drop_client t client =
  let doomed =
    Hashtbl.fold
      (fun ((c, _, _) as key) _ acc ->
        if String.equal c client then key :: acc else acc)
      t.vv []
  in
  List.iter (Hashtbl.remove t.vv) doomed

(* --- golden full-state shadow (audit support) --- *)

let record_golden t ~uid ~version ~payload =
  let serial = Store.Uid.serial uid in
  let counter = version.Store.Version.counter in
  let by = version.Store.Version.committed_by in
  let prior =
    Option.value ~default:[] (Hashtbl.find_opt t.golden (serial, counter))
  in
  Hashtbl.replace t.golden (serial, counter)
    ((by, payload) :: List.remove_assoc by prior);
  Hashtbl.remove t.golden (serial, counter - golden_window)

let golden t ~uid ~version =
  let serial = Store.Uid.serial uid in
  let counter = version.Store.Version.counter in
  Option.bind
    (Hashtbl.find_opt t.golden (serial, counter))
    (List.assoc_opt version.Store.Version.committed_by)

let resident t = Sim.Metrics.counter t.metrics "oplog.resident_records"
