open Naming

let run ?(seed = 111L) () =
  let w =
    Service.create ~seed
      {
        Service.gvd_node = "ns";
        gvd_nodes = [];
        server_nodes = [ "alpha" ];
        store_nodes = [ "t1"; "t2" ];
        client_nodes = [ "near"; "far" ];
      }
  in
  let uid =
    Service.create_object w ~name:"obj" ~impl:"counter" ~sv:[ "alpha" ]
      ~st:[ "t1"; "t2" ] ()
  in
  Service.run ~until:1.0 w;
  let eng = Service.engine w in
  let net = Service.network w in
  let rng = Sim.Rng.split (Sim.Engine.rng eng) in
  (* Partition [100, 220): "far" loses the naming node, the server and the
     stores (it is on the wrong side of the cut). *)
  let cut flag =
    List.iter
      (fun peer -> Net.Network.set_partitioned net "far" peer flag)
      [ "ns"; "alpha"; "t1"; "t2"; "near" ]
  in
  Sim.Engine.schedule eng ~delay:100.0 (fun () -> cut true);
  Sim.Engine.schedule eng ~delay:220.0 (fun () -> cut false);
  let counts = Hashtbl.create 8 in
  let bump key =
    Hashtbl.replace counts key (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
  in
  let phase_of t = if t < 100.0 then "pre" else if t < 220.0 then "cut" else "post" in
  List.iter
    (fun client ->
      Service.spawn_client w client (fun () ->
          let rec loop () =
            if Sim.Engine.now eng < 320.0 then begin
              let phase = phase_of (Sim.Engine.now eng) in
              (match
                 Service.with_bound w ~client ~scheme:Scheme.Standard
                   ~policy:Replica.Policy.Single_copy_passive ~uid
                   (fun act group -> Service.invoke w group ~act "incr")
               with
              | Ok _ -> bump (client, phase, "commit")
              | Error _ -> bump (client, phase, "abort"));
              Sim.Engine.sleep eng (Sim.Rng.uniform rng 8.0 15.0);
              loop ()
            end
          in
          loop ()))
    [ "near"; "far" ];
  Service.run w;
  let get client phase kind =
    Option.value ~default:0 (Hashtbl.find_opt counts (client, phase, kind))
  in
  let consistent =
    let st = Gvd.current_st (Service.gvd w) uid in
    let states =
      List.filter_map
        (fun node ->
          Store.Object_store.read
            (Action.Store_host.objects (Service.store_host w) node)
            uid)
        st
    in
    List.length states = List.length st
    &&
    match states with
    | [] -> true
    | first :: rest -> List.for_all (Store.Object_state.equal first) rest
  in
  let row client phase =
    [
      client;
      phase;
      Table.cell_i (get client phase "commit");
      Table.cell_i (get client phase "abort");
    ]
  in
  Table.make
    ~title:"tab-partition: a client partitioned from the naming service"
    ~columns:[ "client"; "phase"; "commits"; "aborts" ]
    ~notes:
      [
        "Phases: pre < t=100, cut in [100,220), post >= 220. The paper";
        "assumes partitions away (§2.3(2)(i)); this shows what the design";
        "buys instead: the naming service is the serialisation point, so a";
        "cut-off client is merely unavailable — strong consistency is never";
        "at risk, and the cut side resumes cleanly after healing.";
        (Printf.sprintf "St invariant at end: %s."
           (if consistent then "holds" else "VIOLATED"));
      ]
    [
      row "near" "pre"; row "near" "cut"; row "near" "post";
      row "far" "pre"; row "far" "cut"; row "far" "post";
    ]
