module Tbl = Hashtbl.Make (struct
  type t = Uid.t

  let equal = Uid.equal
  let hash = Uid.hash
end)

type t = { states : Object_state.t Tbl.t }

let create () = { states = Tbl.create 16 }

let read t uid = Tbl.find_opt t.states uid

let write t uid state = Tbl.replace t.states uid state

let remove t uid = Tbl.remove t.states uid

let mem t uid = Tbl.mem t.states uid

let uids t =
  Tbl.fold (fun uid _ acc -> uid :: acc) t.states [] |> List.sort Uid.compare

let size t = Tbl.length t.states

let version_of t uid =
  match read t uid with
  | Some s -> Some s.Object_state.version
  | None -> None
