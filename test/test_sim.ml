(* Tests for the simulation kernel: heap, rng, engine, ivar, mailbox,
   semaphore, trace, metrics. *)

open Sim

let check_float = Alcotest.(check (float 1e-9))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Heap *)

let test_heap_order () =
  let h = Heap.create ~compare:Int.compare in
  List.iter (Heap.push h) [ 5; 1; 4; 1; 3; 9; 2 ];
  let rec drain acc =
    match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  Alcotest.(check (list int)) "sorted" [ 1; 1; 2; 3; 4; 5; 9 ] (drain [])

let test_heap_empty () =
  let h = Heap.create ~compare:Int.compare in
  check_bool "empty" true (Heap.is_empty h);
  Alcotest.(check (option int)) "peek none" None (Heap.peek h);
  Alcotest.(check (option int)) "pop none" None (Heap.pop h)

let test_heap_peek_stable () =
  let h = Heap.create ~compare:Int.compare in
  Heap.push h 3;
  Heap.push h 1;
  Alcotest.(check (option int)) "peek" (Some 1) (Heap.peek h);
  check_int "length unchanged" 2 (Heap.length h)

let test_heap_clear () =
  let h = Heap.create ~compare:Int.compare in
  List.iter (Heap.push h) [ 1; 2; 3 ];
  Heap.clear h;
  check_bool "cleared" true (Heap.is_empty h)

let test_heap_large () =
  let h = Heap.create ~compare:Int.compare in
  let rng = Rng.create 42L in
  for _ = 1 to 10_000 do
    Heap.push h (Rng.int rng 1_000_000)
  done;
  let rec drain prev n =
    match Heap.pop h with
    | None -> n
    | Some x ->
        if x < prev then Alcotest.fail "heap order violated";
        drain x (n + 1)
  in
  check_int "all popped" 10_000 (drain min_int 0)

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let a = Rng.create 7L and b = Rng.create 7L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_split_independent () =
  let a = Rng.create 7L in
  let child = Rng.split a in
  check_bool "different streams" true (Rng.int64 a <> Rng.int64 child)

let test_rng_int_bounds () =
  let rng = Rng.create 3L in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    check_bool "in range" true (v >= 0 && v < 17)
  done

let test_rng_float_bounds () =
  let rng = Rng.create 3L in
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.5 in
    check_bool "in range" true (v >= 0.0 && v < 2.5)
  done

let test_rng_bool_extremes () =
  let rng = Rng.create 3L in
  check_bool "p=0" false (Rng.bool rng 0.0);
  check_bool "p=1" true (Rng.bool rng 1.0)

let test_rng_pick () =
  let rng = Rng.create 3L in
  let xs = [ "a"; "b"; "c" ] in
  for _ = 1 to 50 do
    check_bool "member" true (List.mem (Rng.pick rng xs) xs)
  done

let test_rng_shuffle_permutation () =
  let rng = Rng.create 3L in
  let xs = [ 1; 2; 3; 4; 5; 6 ] in
  let ys = Rng.shuffle rng xs in
  Alcotest.(check (list int)) "same multiset" xs (List.sort compare ys)

(* ------------------------------------------------------------------ *)
(* Engine *)

let test_engine_clock_advances () =
  let eng = Engine.create () in
  let seen = ref [] in
  Engine.spawn eng (fun () ->
      Engine.sleep eng 5.0;
      seen := Engine.now eng :: !seen;
      Engine.sleep eng 2.5;
      seen := Engine.now eng :: !seen);
  Engine.run eng;
  Alcotest.(check (list (float 1e-9))) "times" [ 7.5; 5.0 ] !seen

let test_engine_ordering_fifo_at_same_time () =
  let eng = Engine.create () in
  let order = ref [] in
  for i = 1 to 5 do
    Engine.spawn eng (fun () -> order := i :: !order)
  done;
  Engine.run eng;
  Alcotest.(check (list int)) "fifo" [ 5; 4; 3; 2; 1 ] !order

let test_engine_schedule_callback () =
  let eng = Engine.create () in
  let fired = ref false in
  Engine.schedule eng ~delay:3.0 (fun () -> fired := true);
  Engine.run ~until:2.0 eng;
  check_bool "not yet" false !fired;
  Engine.run eng;
  check_bool "fired" true !fired

let test_engine_kill_group_stops_fiber () =
  let eng = Engine.create () in
  let g = Engine.new_group eng in
  let progress = ref 0 in
  Engine.spawn eng ~group:g (fun () ->
      incr progress;
      Engine.sleep eng 10.0;
      incr progress);
  Engine.schedule eng ~delay:5.0 (fun () -> Engine.kill_group eng g);
  Engine.run eng;
  check_int "killed at suspension" 1 !progress

let test_engine_kill_before_start () =
  let eng = Engine.create () in
  let g = Engine.new_group eng in
  let progress = ref 0 in
  Engine.kill_group eng g;
  Engine.spawn eng ~group:g (fun () -> incr progress);
  Engine.run eng;
  check_int "never started" 0 !progress

let test_engine_timeout_fires () =
  let eng = Engine.create () in
  let outcome = ref "none" in
  Engine.spawn eng (fun () ->
      match Engine.timeout eng 1.0 (fun _resume -> ()) with
      | Ok () -> outcome := "ok"
      | Error Engine.Timed_out -> outcome := "timeout"
      | Error _ -> outcome := "other");
  Engine.run eng;
  Alcotest.(check string) "timed out" "timeout" !outcome;
  check_float "time advanced" 1.0 (Engine.now eng)

let test_engine_timeout_beaten_by_result () =
  let eng = Engine.create () in
  let outcome = ref "none" in
  let resumed_at = ref nan in
  Engine.spawn eng (fun () ->
      let r =
        Engine.timeout eng 10.0 (fun resume ->
            Engine.schedule eng ~delay:2.0 (fun () -> resume (Ok 42)))
      in
      resumed_at := Engine.now eng;
      match r with
      | Ok v -> outcome := string_of_int v
      | Error _ -> outcome := "timeout");
  Engine.run eng;
  Alcotest.(check string) "result wins" "42" !outcome;
  check_float "resumed early" 2.0 !resumed_at

let test_engine_fiber_exception_propagates () =
  let eng = Engine.create () in
  Engine.spawn eng ~name:"boom" (fun () -> failwith "kaboom");
  match Engine.run eng with
  | () -> Alcotest.fail "expected exception"
  | exception Failure msg ->
      check_bool "mentions fiber" true
        (String.length msg > 0 && String.sub msg 0 5 = "fiber")

let test_engine_deadlock_detection () =
  let eng = Engine.create () in
  Engine.set_detect_deadlock eng true;
  let iv = Ivar.create () in
  Engine.spawn eng (fun () -> ignore (Ivar.read eng iv : int));
  match Engine.run eng with
  | () -> Alcotest.fail "expected deadlock"
  | exception Engine.Deadlock _ -> ()

let test_engine_yield_interleaves () =
  let eng = Engine.create () in
  let order = ref [] in
  Engine.spawn eng (fun () ->
      order := "a1" :: !order;
      Engine.yield eng;
      order := "a2" :: !order);
  Engine.spawn eng (fun () ->
      order := "b1" :: !order;
      Engine.yield eng;
      order := "b2" :: !order);
  Engine.run eng;
  Alcotest.(check (list string)) "interleaved"
    [ "b2"; "a2"; "b1"; "a1" ] !order

let test_engine_until_bound () =
  let eng = Engine.create () in
  let count = ref 0 in
  Engine.spawn eng (fun () ->
      let rec tick () =
        incr count;
        Engine.sleep eng 1.0;
        tick ()
      in
      tick ());
  Engine.run ~until:10.5 eng;
  check_int "bounded ticks" 11 !count

(* ------------------------------------------------------------------ *)
(* Ivar *)

let test_ivar_fill_then_read () =
  let eng = Engine.create () in
  let iv = Ivar.create () in
  Ivar.fill iv 99;
  let got = ref 0 in
  Engine.spawn eng (fun () -> got := Ivar.read eng iv);
  Engine.run eng;
  check_int "value" 99 !got

let test_ivar_read_then_fill () =
  let eng = Engine.create () in
  let iv = Ivar.create () in
  let got = ref 0 in
  Engine.spawn eng (fun () -> got := Ivar.read eng iv);
  Engine.schedule eng ~delay:4.0 (fun () -> Ivar.fill iv 7);
  Engine.run eng;
  check_int "value" 7 !got

let test_ivar_multiple_readers () =
  let eng = Engine.create () in
  let iv = Ivar.create () in
  let total = ref 0 in
  for _ = 1 to 5 do
    Engine.spawn eng (fun () -> total := !total + Ivar.read eng iv)
  done;
  Engine.schedule eng ~delay:1.0 (fun () -> Ivar.fill iv 10);
  Engine.run eng;
  check_int "all woken" 50 !total

let test_ivar_double_fill_raises () =
  let iv = Ivar.create () in
  Ivar.fill iv 1;
  check_bool "try_fill fails" false (Ivar.try_fill iv 2);
  match Ivar.fill iv 2 with
  | () -> Alcotest.fail "expected Already_filled"
  | exception Ivar.Already_filled -> ()

let test_ivar_read_timeout () =
  let eng = Engine.create () in
  let iv = Ivar.create () in
  let outcome = ref "none" in
  Engine.spawn eng (fun () ->
      match Ivar.read_timeout eng 2.0 iv with
      | Ok (_ : int) -> outcome := "ok"
      | Error Engine.Timed_out -> outcome := "timeout"
      | Error _ -> outcome := "other");
  Engine.run eng;
  Alcotest.(check string) "timeout" "timeout" !outcome

(* ------------------------------------------------------------------ *)
(* Mailbox *)

let test_mailbox_fifo () =
  let eng = Engine.create () in
  let mb = Mailbox.create () in
  let got = ref [] in
  Engine.spawn eng (fun () ->
      for _ = 1 to 3 do
        got := Mailbox.recv eng mb :: !got
      done);
  Engine.spawn eng (fun () ->
      Mailbox.send mb 1;
      Mailbox.send mb 2;
      Mailbox.send mb 3);
  Engine.run eng;
  Alcotest.(check (list int)) "fifo order" [ 3; 2; 1 ] !got

let test_mailbox_blocking_recv () =
  let eng = Engine.create () in
  let mb = Mailbox.create () in
  let at = ref 0.0 in
  Engine.spawn eng (fun () ->
      ignore (Mailbox.recv eng mb : int);
      at := Engine.now eng);
  Engine.schedule eng ~delay:6.0 (fun () -> Mailbox.send mb 1);
  Engine.run eng;
  check_float "woke at send" 6.0 !at

let test_mailbox_recv_timeout () =
  let eng = Engine.create () in
  let mb : int Mailbox.t = Mailbox.create () in
  let outcome = ref "none" in
  Engine.spawn eng (fun () ->
      match Mailbox.recv_timeout eng 3.0 mb with
      | Ok _ -> outcome := "ok"
      | Error Engine.Timed_out -> outcome := "timeout"
      | Error _ -> outcome := "other");
  Engine.run eng;
  Alcotest.(check string) "timeout" "timeout" !outcome

let test_mailbox_no_lost_message_on_killed_waiter () =
  let eng = Engine.create () in
  let mb = Mailbox.create () in
  let g = Engine.new_group eng in
  let got = ref 0 in
  (* A doomed waiter queues first, then is killed; a healthy waiter must
     still receive the message. *)
  Engine.spawn eng ~group:g (fun () -> got := Mailbox.recv eng mb);
  Engine.schedule eng ~delay:1.0 (fun () -> Engine.kill_group eng g);
  Engine.schedule eng ~delay:2.0 (fun () ->
      Engine.spawn eng (fun () -> got := Mailbox.recv eng mb));
  Engine.schedule eng ~delay:3.0 (fun () -> Mailbox.send mb 42);
  Engine.run eng;
  check_int "healthy waiter got it" 42 !got

let test_mailbox_try_recv () =
  let mb = Mailbox.create () in
  Alcotest.(check (option int)) "empty" None (Mailbox.try_recv mb);
  Mailbox.send mb 5;
  Alcotest.(check (option int)) "value" (Some 5) (Mailbox.try_recv mb);
  Alcotest.(check int) "drained" 0 (Mailbox.length mb)

(* ------------------------------------------------------------------ *)
(* Semaphore *)

let test_semaphore_limits_concurrency () =
  let eng = Engine.create () in
  let sem = Semaphore.create 2 in
  let active = ref 0 and peak = ref 0 in
  for _ = 1 to 6 do
    Engine.spawn eng (fun () ->
        Semaphore.with_permit eng sem (fun () ->
            incr active;
            if !active > !peak then peak := !active;
            Engine.sleep eng 1.0;
            decr active))
  done;
  Engine.run eng;
  check_int "peak bounded" 2 !peak

let test_semaphore_try_acquire () =
  let sem = Semaphore.create 1 in
  check_bool "first" true (Semaphore.try_acquire sem);
  check_bool "second" false (Semaphore.try_acquire sem);
  Semaphore.release sem;
  check_bool "after release" true (Semaphore.try_acquire sem)

(* ------------------------------------------------------------------ *)
(* Trace *)

let test_trace_record_and_query () =
  let tr = Trace.create () in
  Trace.record tr ~now:1.0 ~tag:"rpc" "call a";
  Trace.record tr ~now:2.0 ~tag:"gvd" "exclude n3";
  Trace.record tr ~now:3.0 ~tag:"rpc" "call b";
  check_int "rpc count" 2 (Trace.count tr ~tag:"rpc");
  check_int "find" 1 (List.length (Trace.find tr ~tag:"gvd" ~substring:"n3"));
  match Trace.entries tr with
  | { Trace.at; _ } :: _ -> check_float "order" 1.0 at
  | [] -> Alcotest.fail "no entries"

let test_trace_disabled_drops () =
  let tr = Trace.create ~enabled:false () in
  Trace.record tr ~now:1.0 ~tag:"x" "y";
  Trace.recordf tr ~now:1.0 ~tag:"x" "%d" 42;
  check_int "empty" 0 (List.length (Trace.entries tr))

let test_trace_disabled_no_alloc () =
  let tr = Trace.create ~enabled:false () in
  (* Warm the path once, then check the amortised per-call allocation stays
     far below one formatted-string's worth: the disabled branch must not
     render its arguments. *)
  Trace.recordf tr ~now:0.0 ~tag:"x" "warm %d %s" 0 "payload";
  let before = Gc.minor_words () in
  for i = 1 to 1000 do
    Trace.recordf tr ~now:(float_of_int i) ~tag:"x" "value=%d %s" i
      "a-reasonably-long-payload-string-that-would-cost-to-render"
  done;
  let per_call = (Gc.minor_words () -. before) /. 1000.0 in
  check_bool
    (Printf.sprintf "allocation bounded (%.1f words/call)" per_call)
    true (per_call < 100.0);
  check_int "still empty" 0 (List.length (Trace.entries tr))

let test_trace_recordf () =
  let tr = Trace.create () in
  Trace.recordf tr ~now:1.0 ~tag:"x" "value=%d" 42;
  check_int "formatted" 1
    (List.length (Trace.find tr ~tag:"x" ~substring:"value=42"))

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_metrics_counters () =
  let m = Metrics.create () in
  Metrics.incr m "a";
  Metrics.incr m ~by:4 "a";
  check_int "sum" 5 (Metrics.counter m "a");
  check_int "absent" 0 (Metrics.counter m "zzz")

let test_metrics_samples () =
  let m = Metrics.create () in
  List.iter (Metrics.observe m "lat") [ 1.0; 2.0; 3.0; 4.0 ];
  check_float "mean" 2.5 (Metrics.mean m "lat");
  check_float "max" 4.0 (Metrics.max_sample m "lat");
  check_int "count" 4 (Metrics.sample_count m "lat");
  check_float "p50" 2.0 (Metrics.percentile m "lat" 50.0);
  check_float "p100" 4.0 (Metrics.percentile m "lat" 100.0)

let test_metrics_percentile_edges () =
  let m = Metrics.create () in
  check_bool "empty is nan" true (Float.is_nan (Metrics.percentile m "none" 50.0));
  Metrics.observe m "one" 7.5;
  check_float "single p0" 7.5 (Metrics.percentile m "one" 0.0);
  check_float "single p50" 7.5 (Metrics.percentile m "one" 50.0);
  check_float "single p100" 7.5 (Metrics.percentile m "one" 100.0);
  List.iter (Metrics.observe m "d") [ 3.0; 1.0; 2.0 ];
  check_float "p0 is min" 1.0 (Metrics.percentile m "d" 0.0);
  check_float "p100 is max" 3.0 (Metrics.percentile m "d" 100.0);
  (* Nearest-rank clamps out-of-range percentiles instead of raising. *)
  check_float "clamp low" 1.0 (Metrics.percentile m "d" (-5.0));
  check_float "clamp high" 3.0 (Metrics.percentile m "d" 200.0)

let test_metrics_merge () =
  let a = Metrics.create () and b = Metrics.create () in
  Metrics.incr a "c";
  Metrics.incr b ~by:2 "c";
  Metrics.observe a "s" 1.0;
  Metrics.observe b "s" 3.0;
  Metrics.merge_into ~dst:a b;
  check_int "merged counter" 3 (Metrics.counter a "c");
  check_int "merged samples" 2 (Metrics.sample_count a "s")

(* ------------------------------------------------------------------ *)
(* Property tests *)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains sorted" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create ~compare:Int.compare in
      List.iter (Heap.push h) xs;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort Int.compare xs)

let prop_rng_int_in_bounds =
  QCheck.Test.make ~name:"rng int within bounds" ~count:500
    QCheck.(pair int64 (int_range 1 10000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let prop_metrics_percentile_monotone =
  QCheck.Test.make ~name:"percentiles monotone" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 50) (float_range (-1000.) 1000.))
    (fun xs ->
      let m = Metrics.create () in
      List.iter (Metrics.observe m "d") xs;
      let p25 = Metrics.percentile m "d" 25.0
      and p75 = Metrics.percentile m "d" 75.0 in
      p25 <= p75)

let suite =
  let tc = Alcotest.test_case in
  [
    ( "sim.heap",
      [
        tc "order" `Quick test_heap_order;
        tc "empty" `Quick test_heap_empty;
        tc "peek stable" `Quick test_heap_peek_stable;
        tc "clear" `Quick test_heap_clear;
        tc "large" `Quick test_heap_large;
        Test_util.qcheck prop_heap_sorts;
      ] );
    ( "sim.rng",
      [
        tc "deterministic" `Quick test_rng_deterministic;
        tc "split independent" `Quick test_rng_split_independent;
        tc "int bounds" `Quick test_rng_int_bounds;
        tc "float bounds" `Quick test_rng_float_bounds;
        tc "bool extremes" `Quick test_rng_bool_extremes;
        tc "pick" `Quick test_rng_pick;
        tc "shuffle permutation" `Quick test_rng_shuffle_permutation;
        Test_util.qcheck prop_rng_int_in_bounds;
      ] );
    ( "sim.engine",
      [
        tc "clock advances" `Quick test_engine_clock_advances;
        tc "fifo at same time" `Quick test_engine_ordering_fifo_at_same_time;
        tc "schedule callback" `Quick test_engine_schedule_callback;
        tc "kill group stops fiber" `Quick test_engine_kill_group_stops_fiber;
        tc "kill before start" `Quick test_engine_kill_before_start;
        tc "timeout fires" `Quick test_engine_timeout_fires;
        tc "timeout beaten by result" `Quick test_engine_timeout_beaten_by_result;
        tc "fiber exception propagates" `Quick test_engine_fiber_exception_propagates;
        tc "deadlock detection" `Quick test_engine_deadlock_detection;
        tc "yield interleaves" `Quick test_engine_yield_interleaves;
        tc "until bound" `Quick test_engine_until_bound;
      ] );
    ( "sim.ivar",
      [
        tc "fill then read" `Quick test_ivar_fill_then_read;
        tc "read then fill" `Quick test_ivar_read_then_fill;
        tc "multiple readers" `Quick test_ivar_multiple_readers;
        tc "double fill raises" `Quick test_ivar_double_fill_raises;
        tc "read timeout" `Quick test_ivar_read_timeout;
      ] );
    ( "sim.mailbox",
      [
        tc "fifo" `Quick test_mailbox_fifo;
        tc "blocking recv" `Quick test_mailbox_blocking_recv;
        tc "recv timeout" `Quick test_mailbox_recv_timeout;
        tc "no lost message on killed waiter" `Quick
          test_mailbox_no_lost_message_on_killed_waiter;
        tc "try recv" `Quick test_mailbox_try_recv;
      ] );
    ( "sim.semaphore",
      [
        tc "limits concurrency" `Quick test_semaphore_limits_concurrency;
        tc "try acquire" `Quick test_semaphore_try_acquire;
      ] );
    ( "sim.trace",
      [
        tc "record and query" `Quick test_trace_record_and_query;
        tc "disabled drops" `Quick test_trace_disabled_drops;
        tc "disabled does not allocate" `Quick test_trace_disabled_no_alloc;
        tc "recordf" `Quick test_trace_recordf;
      ] );
    ( "sim.metrics",
      [
        tc "counters" `Quick test_metrics_counters;
        tc "samples" `Quick test_metrics_samples;
        tc "percentile edges" `Quick test_metrics_percentile_edges;
        tc "merge" `Quick test_metrics_merge;
        Test_util.qcheck prop_metrics_percentile_monotone;
      ] );
  ]
