(** Lock modes and their compatibility matrix.

    Besides classic [Read]/[Write], the paper introduces a type-specific
    {e exclude-write} mode (§4.2.1): it is compatible with [Read] — so a
    committing client can exclude crashed store nodes from [StA] while
    other clients still hold read locks on the entry — but conflicts with
    [Write] and with other [Exclude_write] holders. *)

type t = Read | Write | Exclude_write

val compatible : t -> t -> bool
(** [compatible held requested]: can [requested] be granted alongside
    [held]? The matrix is symmetric:
    - [Read]∥[Read] and [Read]∥[Exclude_write] are compatible;
    - everything involving [Write] conflicts;
    - [Exclude_write]∥[Exclude_write] conflicts. *)

val strength : t -> int
(** Total order used when one owner holds several modes: [Read] <
    [Exclude_write] < [Write]. *)

val strongest : t -> t -> t
(** The stronger of two modes per {!strength}. *)

val covers : t -> t -> bool
(** [covers held requested]: a holder of [held] needs no new lock to
    perform a [requested]-mode access. [Write] covers everything; a mode
    covers itself; [Exclude_write] covers [Read]. *)

val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
