(** Commit processing and object passivation (§2.3(3)).

    When a client action that used a replicated object commits, the new
    state must reach the object stores of every node in [StA], and the
    naming service's view must stay accurate: stores the copy could not
    reach are {e excluded} so later clients never bind to stale states.

    [attach] installs this as a before-commit hook of the action:

    + fetch the commit view from a functioning replica (abort if none);
    + {e read optimisation}: if the action never modified the object, skip
      the copy entirely;
    + prepare the new state on every node of the group's [StA] view —
      when the server runtime has delta shipping enabled
      ({!Server.set_delta_shipping}), each store is shipped the op-log
      suffix [(v_store, v_commit]] instead of the full state whenever the
      acknowledged-version vector knows [v_store] and the commit view's
      chain covers the gap ({!Oplog}); a [Vote_delta_miss] reseeds the
      vector from the store's reported counter and retries that store
      with full state in a second prepare round;
    + if {e every} store is unreachable, abort;
    + if {e some} failed, invoke the [exclude] callback (provided by the
      naming layer; it performs the paper's lock promotion and [Exclude]
      within the same action — its failure aborts too);
    + register the successful stores as phase-2 participants. *)

val attach :
  Group.runtime ->
  Action.Atomic.t ->
  Group.t ->
  ?current_stores:
    (Action.Atomic.t -> (Net.Network.node_id list, string) result) ->
  ?note_version:
    (Action.Atomic.t -> Store.Version.t -> (unit, string) result) ->
  ?snapshot_stores:
    (unit -> (Net.Network.node_id list * int, string) result) ->
  ?validate:
    (Action.Atomic.t ->
    version:Store.Version.t ->
    rev:int ->
    [ `Validated | `Conflict | `Failed of string ]) ->
  exclude:
    (Action.Atomic.t -> Net.Network.node_id list -> (unit, string) result) ->
  unit ->
  unit
(** [attach rt act group ~exclude ()] arranges commit-time state copy-back
    for [group] under [act]. Call once per (action, bound group).

    [note_version] records the version this commit installs in the naming
    service's committed-version fence (see {!Naming.Gvd.note_version});
    its failure aborts the commit. The default records nothing.

    [current_stores] re-reads [StA] {e at commit time}, under a lock owned
    by [act] (the naming layer passes a [GetView]); the default uses the
    bind-time view. The fresh read is what keeps the copy-back correct
    under the independent/nested-top-level schemes: their bind-time view
    is read in a separate action, so a recovered store's [Include] can
    commit between bind and commit — the copy must target the {e current}
    membership or the re-included store is left stale while listed in
    [StA] (the enhancement §4.2.1(ii) alludes to).

    [snapshot_stores] and [validate] (both must be given) switch the
    commit to the {e optimistic} path: [St] and its membership revision
    come from a lock-free snapshot read ({!Naming.Gvd.get_view_commit})
    taken when commit processing starts, and [validate] re-checks the
    revision inside the prepare round ({!Naming.Gvd.validate_view}),
    taking over [note_version]'s job on success. [`Conflict] — an
    Include/Exclude committed between snapshot and validation — withdraws
    the prepares and retries the whole fan-out against fresh [St]
    (bounded attempts; the validation keeps the naming-tier write fence
    across the retry, so the second validation cannot race the same way);
    exhausted retries fall back to the classic locked path above, so
    churn-heavy workloads cannot starve a commit. Metrics:
    [commit.validate_ok] / [commit.validate_conflict] /
    [commit.validate_fallbacks]. *)
