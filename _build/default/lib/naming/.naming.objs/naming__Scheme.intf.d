lib/naming/scheme.mli: Format
