(* Tests for the extension features: administrative replication-degree
   changes, automatic passivation, the richer stock object
   implementations, and lazy-checkpoint failover semantics. *)

open Naming

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let slist = Alcotest.(list string)

let topo ~servers ~stores ~clients =
  {
    Service.gvd_node = "ns";
    gvd_nodes = [];
    server_nodes = servers;
    store_nodes = stores;
    client_nodes = clients;
  }

let store_payload w node uid =
  match
    Store.Object_store.read
      (Action.Store_host.objects (Service.store_host w) node)
      uid
  with
  | Some s -> Some s.Store.Object_state.payload
  | None -> None

(* ------------------------------------------------------------------ *)
(* Object implementations *)

let apply impl payload op = impl.Replica.Object_impl.apply payload op

let test_queue_impl () =
  let q = Replica.Object_impl.fifo_queue in
  let p, r = apply q "" "push a" in
  check_string "push" "ok" r;
  let p, _ = apply q p "push b" in
  let _, r = apply q p "peek" in
  check_string "peek" "a" r;
  let _, r = apply q p "length" in
  check_string "length" "2" r;
  let p, r = apply q p "pop" in
  check_string "pop a" "a" r;
  let p, r = apply q p "pop" in
  check_string "pop b" "b" r;
  let _, r = apply q p "pop" in
  check_string "empty" "empty" r

let test_set_impl () =
  let s = Replica.Object_impl.string_set in
  let p, r = apply s "" "add x" in
  check_string "added" "added" r;
  let p, r = apply s p "add x" in
  check_string "present" "present" r;
  let _, r = apply s p "mem x" in
  check_string "mem" "true" r;
  let p, r = apply s p "remove x" in
  check_string "removed" "removed" r;
  let _, r = apply s p "remove x" in
  check_string "absent" "absent" r

let test_set_sorted_canonical () =
  (* Canonical (sorted) payloads: the same set built in different orders
     is byte-identical — required for the mutual-consistency check. *)
  let s = Replica.Object_impl.string_set in
  let build ops = List.fold_left (fun p op -> fst (apply s p op)) "" ops in
  check_string "order independent"
    (build [ "add b"; "add a"; "add c" ])
    (build [ "add c"; "add a"; "add b" ])

let test_kvmap_impl () =
  let m = Replica.Object_impl.kv_map in
  let p, _ = apply m "" "put colour blue" in
  let p, _ = apply m p "put size large" in
  let _, r = apply m p "get colour" in
  check_string "get" "blue" r;
  let _, r = apply m p "get missing" in
  check_string "missing" "(none)" r;
  let p, _ = apply m p "put colour red" in
  let _, r = apply m p "get colour" in
  check_string "overwrite" "red" r;
  let p, _ = apply m p "del size" in
  let _, r = apply m p "size" in
  check_string "size" "1" r;
  ignore p

let prop_queue_fifo =
  QCheck.Test.make ~name:"queue pops in push order" ~count:200
    QCheck.(small_list (int_range 0 999))
    (fun xs ->
      let q = Replica.Object_impl.fifo_queue in
      let items = List.map string_of_int xs in
      let payload =
        List.fold_left (fun p x -> fst (apply q p ("push " ^ x))) "" items
      in
      let rec drain p acc =
        let p', r = apply q p "pop" in
        if String.equal r "empty" then List.rev acc else drain p' (r :: acc)
      in
      drain payload [] = items)

(* ------------------------------------------------------------------ *)
(* Admin: changing the degree of replication *)

let admin_world () =
  let w =
    Service.create ~seed:11L
      (topo
         ~servers:[ "alpha"; "alpha2" ]
         ~stores:[ "beta1"; "beta2"; "beta3" ]
         ~clients:[ "c1"; "ops" ])
  in
  (* beta3 starts outside StA; alpha2 outside SvA. *)
  let uid =
    Service.create_object w ~name:"obj" ~impl:"counter" ~sv:[ "alpha" ]
      ~st:[ "beta1"; "beta2" ] ()
  in
  (w, uid)

let test_admin_add_server () =
  let w, uid = admin_world () in
  Service.spawn_client w "ops" (fun () ->
      match Admin.add_server (Service.binder w) ~from:"ops" ~uid "alpha2" with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Admin.error_to_string e));
  Service.run w;
  Alcotest.check slist "sv grown" [ "alpha"; "alpha2" ]
    (Gvd.current_sv (Service.gvd w) uid)

let test_admin_add_server_busy_while_used () =
  let w, uid = admin_world () in
  let eng = Service.engine w in
  (* c1 keeps the use list non-empty via a scheme-B binding. *)
  Service.spawn_client w "c1" (fun () ->
      match
        Binder.bind_independent (Service.binder w) ~client:"c1" ~uid
          ~policy:Replica.Policy.Single_copy_passive
      with
      | Ok pb ->
          Sim.Engine.sleep eng 60.0;
          Binder.release_independent (Service.binder w) pb
      | Error e -> Alcotest.fail (Binder.bind_error_to_string e));
  let outcome = ref (Ok ()) in
  Sim.Engine.schedule eng ~delay:20.0 (fun () ->
      Net.Network.spawn_on (Service.network w) "ops" (fun () ->
          outcome := Admin.add_server (Service.binder w) ~from:"ops" ~uid "alpha2"));
  Service.run w;
  (match !outcome with
  | Error (Admin.Busy _) -> ()
  | Error e -> Alcotest.fail ("wrong error: " ^ Admin.error_to_string e)
  | Ok () -> Alcotest.fail "expected Busy")

let test_admin_retire_server_gone_for_good () =
  let w, uid = admin_world () in
  let net = Service.network w in
  Service.spawn_client w "ops" (fun () ->
      (match Admin.retire_server (Service.binder w) ~from:"ops" ~uid "alpha" with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Admin.error_to_string e));
      (* A bounce of alpha must NOT re-insert it: it is out of sv_home. *)
      Net.Network.crash net "alpha";
      Sim.Engine.sleep (Service.engine w) 2.0;
      Net.Network.recover net "alpha");
  Service.run w;
  Alcotest.check slist "sv empty" [] (Gvd.current_sv (Service.gvd w) uid)

let test_admin_add_store_copies_latest () =
  let w, uid = admin_world () in
  (* Commit an update first so the copied state is non-initial. *)
  Service.spawn_client w "c1" (fun () ->
      (match
         Service.with_bound w ~client:"c1" ~scheme:Scheme.Standard
           ~policy:Replica.Policy.Single_copy_passive ~uid (fun act group ->
             Service.invoke w group ~act "add 9")
       with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e);
      match
        Admin.add_store (Service.binder w)
          ~server_rt:(Service.server_runtime w) ~from:"c1" ~uid "beta3"
      with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Admin.error_to_string e));
  Service.run w;
  Alcotest.check slist "st grown" [ "beta1"; "beta2"; "beta3" ]
    (List.sort String.compare (Gvd.current_st (Service.gvd w) uid));
  Alcotest.(check (option string))
    "state copied" (Some "9") (store_payload w "beta3" uid)

let test_admin_retire_store_not_reincluded () =
  let w, uid = admin_world () in
  let net = Service.network w in
  Service.spawn_client w "ops" (fun () ->
      (match Admin.retire_store (Service.binder w) ~from:"ops" ~uid "beta2" with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Admin.error_to_string e));
      (* A bounce of beta2 must not re-include it. *)
      Net.Network.crash net "beta2";
      Sim.Engine.sleep (Service.engine w) 2.0;
      Net.Network.recover net "beta2");
  Service.run w;
  Alcotest.check slist "st shrunk for good" [ "beta1" ]
    (Gvd.current_st (Service.gvd w) uid)

let test_admin_grown_store_used_by_next_commit () =
  let w, uid = admin_world () in
  Service.spawn_client w "c1" (fun () ->
      (match
         Admin.add_store (Service.binder w)
           ~server_rt:(Service.server_runtime w) ~from:"c1" ~uid "beta3"
       with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Admin.error_to_string e));
      match
        Service.with_bound w ~client:"c1" ~scheme:Scheme.Standard
          ~policy:Replica.Policy.Single_copy_passive ~uid (fun act group ->
            Service.invoke w group ~act "add 4")
      with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e);
  Service.run w;
  Alcotest.(check (option string))
    "new store receives commits" (Some "4") (store_payload w "beta3" uid)

(* ------------------------------------------------------------------ *)
(* Passivator *)

let test_passivator_reclaims_idle_instance () =
  let w =
    Service.create ~seed:12L
      (topo ~servers:[ "alpha" ] ~stores:[ "beta1" ] ~clients:[ "c1" ])
  in
  let uid =
    Service.create_object w ~name:"obj" ~impl:"counter" ~sv:[ "alpha" ]
      ~st:[ "beta1" ] ()
  in
  ignore
    (Replica.Passivator.start (Service.server_runtime w) ~node:"alpha"
       ~period:10.0 ~idle_after:25.0 ());
  Service.spawn_client w "c1" (fun () ->
      ignore
        (Service.with_bound w ~client:"c1" ~scheme:Scheme.Standard
           ~policy:Replica.Policy.Single_copy_passive ~uid (fun act group ->
             ignore (Service.invoke w group ~act "incr"))));
  Service.run ~until:15.0 w;
  check_bool "active after use" true
    (Replica.Server.instance_exists (Service.server_runtime w) ~node:"alpha" ~uid);
  Service.run ~until:100.0 w;
  check_bool "passivated when idle" false
    (Replica.Server.instance_exists (Service.server_runtime w) ~node:"alpha" ~uid);
  check_bool "counted" true
    (Sim.Metrics.counter (Service.metrics w) "server.auto_passivations" >= 1)

let test_passivator_spares_busy_instance () =
  let w =
    Service.create ~seed:13L
      (topo ~servers:[ "alpha" ] ~stores:[ "beta1" ] ~clients:[ "c1" ])
  in
  let uid =
    Service.create_object w ~name:"obj" ~impl:"counter" ~sv:[ "alpha" ]
      ~st:[ "beta1" ] ()
  in
  ignore
    (Replica.Passivator.start (Service.server_runtime w) ~node:"alpha"
       ~period:10.0 ~idle_after:20.0 ());
  let eng = Service.engine w in
  (* A long-running action holds its lock across several sweeps. *)
  Service.spawn_client w "c1" (fun () ->
      ignore
        (Service.with_bound w ~client:"c1" ~scheme:Scheme.Standard
           ~policy:Replica.Policy.Single_copy_passive ~uid (fun act group ->
             ignore (Service.invoke w group ~act "incr");
             Sim.Engine.sleep eng 80.0)));
  Service.run ~until:70.0 w;
  check_bool "still active while locked" true
    (Replica.Server.instance_exists (Service.server_runtime w) ~node:"alpha" ~uid)

let test_reactivation_after_passivation () =
  let w =
    Service.create ~seed:14L
      (topo ~servers:[ "alpha" ] ~stores:[ "beta1" ] ~clients:[ "c1" ])
  in
  let uid =
    Service.create_object w ~name:"obj" ~impl:"counter" ~sv:[ "alpha" ]
      ~st:[ "beta1" ] ()
  in
  let run_incr () =
    Service.with_bound w ~client:"c1" ~scheme:Scheme.Standard
      ~policy:Replica.Policy.Single_copy_passive ~uid (fun act group ->
        Service.invoke w group ~act "incr")
  in
  let eng = Service.engine w in
  let second = ref (Ok "") in
  Service.spawn_client w "c1" (fun () ->
      ignore (run_incr ());
      (* Passivate by hand, then use the object again: a fresh bind must
         re-activate from the store with the committed state. *)
      Sim.Engine.sleep eng 5.0;
      check_int "passivated" 1
        (Replica.Passivator.sweep_now (Service.server_runtime w) ~node:"alpha"
           ~idle_after:0.0);
      second := run_incr ());
  Service.run w;
  check_bool "state survived passivation" true (!second = Ok "2")

(* ------------------------------------------------------------------ *)
(* Lazy checkpointing: failover semantics *)

let cc_failover_world ~eager =
  let w =
    Service.create ~seed:15L
      (topo ~servers:[ "k1"; "k2" ] ~stores:[ "t1" ] ~clients:[ "c1" ])
  in
  Replica.Server.set_eager_checkpoints (Service.server_runtime w) eager;
  let uid =
    Service.create_object w ~name:"obj" ~impl:"account" ~sv:[ "k1"; "k2" ]
      ~st:[ "t1" ] ()
  in
  let eng = Service.engine w in
  let net = Service.network w in
  let outcome = ref (Error "never ran") in
  Service.spawn_client w "c1" (fun () ->
      outcome :=
        Service.with_bound w ~client:"c1" ~scheme:Scheme.Standard
          ~policy:(Replica.Policy.Coordinator_cohort 2) ~uid (fun act group ->
            ignore (Service.invoke w group ~act "deposit 30");
            Net.Network.crash net "k1";
            Sim.Engine.sleep eng 5.0;
            Service.invoke w group ~act "deposit 12"));
  Service.run w;
  (w, uid, !outcome)

let test_eager_checkpoint_failover_continues () =
  let w, uid, outcome = cc_failover_world ~eager:true in
  check_bool "continued" true (outcome = Ok "42");
  Alcotest.(check (option string)) "committed" (Some "42") (store_payload w "t1" uid)

let test_lazy_checkpoint_failover_aborts_loudly () =
  let w, uid, outcome = cc_failover_world ~eager:false in
  (match outcome with
  | Error reason ->
      check_bool "reported as staged-state loss" true
        (Astring.String.is_infix ~affix:"staged state lost" reason)
  | Ok r -> Alcotest.fail ("unexpected commit: " ^ r));
  (* Crucially: no silent data loss — the store still has the initial
     state, not a half-applied action. *)
  Alcotest.(check (option string)) "untouched" (Some "0") (store_payload w "t1" uid)

let suite =
  let tc = Alcotest.test_case in
  [
    ( "ext.impls",
      [
        tc "queue" `Quick test_queue_impl;
        tc "set" `Quick test_set_impl;
        tc "set canonical" `Quick test_set_sorted_canonical;
        tc "kvmap" `Quick test_kvmap_impl;
        Test_util.qcheck prop_queue_fifo;
      ] );
    ( "ext.admin",
      [
        tc "add server" `Quick test_admin_add_server;
        tc "add server busy while used" `Quick test_admin_add_server_busy_while_used;
        tc "retire server gone for good" `Quick test_admin_retire_server_gone_for_good;
        tc "add store copies latest" `Quick test_admin_add_store_copies_latest;
        tc "retire store not re-included" `Quick test_admin_retire_store_not_reincluded;
        tc "grown store used by next commit" `Quick
          test_admin_grown_store_used_by_next_commit;
      ] );
    ( "ext.passivator",
      [
        tc "reclaims idle instance" `Quick test_passivator_reclaims_idle_instance;
        tc "spares busy instance" `Quick test_passivator_spares_busy_instance;
        tc "reactivation after passivation" `Quick test_reactivation_after_passivation;
      ] );
    ( "ext.checkpointing",
      [
        tc "eager failover continues" `Quick test_eager_checkpoint_failover_continues;
        tc "lazy failover aborts loudly" `Quick
          test_lazy_checkpoint_failover_aborts_loudly;
      ] );
  ]
