let attach rt act group ?current_stores ?note_version ~exclude () =
  let srv = Group.server_runtime rt in
  let art = Server.atomic_runtime srv in
  let sh = Action.Atomic.store_host art in
  let eng = Action.Atomic.engine art in
  let metrics = Net.Network.metrics (Action.Atomic.network art) in
  let read_stores =
    match current_stores with
    | Some f -> f
    | None -> fun _ -> Ok group.Group.g_stores
  in
  Action.Atomic.before_commit act (fun () ->
      match Group.commit_view rt group ~act with
      | Error why -> Error ("commit view: " ^ why)
      | Ok view when not view.Server.cv_dirty ->
          (* Read optimisation: no state change, no copy, no exclusion. *)
          Sim.Metrics.incr metrics "commit.read_optimised";
          Ok ()
      | Ok view -> (
          match read_stores act with
          | Error why -> Error ("commit-time GetView: " ^ why)
          | Ok current_st -> (
          let client = Action.Atomic.node act in
          let action = Action.Atomic.owner act in
          let uid = group.Group.g_uid in
          let full_state =
            Store.Object_state.make ~payload:view.Server.cv_payload
              ~version:view.Server.cv_version
          in
          let target = view.Server.cv_version.Store.Version.counter in
          let delta_on = Server.delta_shipping srv in
          let olog = Server.oplog srv in
          (* Golden shadow for the audit: whatever mix of deltas and full
             states the stores end up applying, their committed bytes for
             this version must equal this payload. *)
          if delta_on then
            Oplog.record_golden olog ~uid ~version:view.Server.cv_version
              ~payload:view.Server.cv_payload;
          (* Per-store delta-vs-full decision: ship the op suffix
             [(v_store, v_commit]] iff the acknowledged-version vector
             knows where the store stands and the commit view's chain
             covers the whole gap. A store never heard from, a vector
             entry at the target already (impossible for a fresh version,
             conservative anyway), or a truncated chain all fall back to
             the full state. *)
          let choose store =
            if not delta_on then Action.Store_host.Full full_state
            else
              let fallback () =
                Sim.Metrics.incr metrics "commit.delta_fallbacks";
                Action.Store_host.Full full_state
              in
              match Oplog.last_acked olog ~client ~store ~uid with
              | Some base when base < target -> (
                  match
                    Oplog.suffix_of view.Server.cv_delta ~base ~upto:target
                  with
                  | Some steps ->
                      Action.Store_host.Delta
                        {
                          Action.Store_host.d_impl = group.Group.g_impl;
                          d_base = base;
                          d_steps = steps;
                        }
                  | None -> fallback ())
              | _ -> fallback ()
          in
          let writes = List.map (fun store -> (store, choose store)) current_st in
          let write_bytes = function
            | Action.Store_host.Full s -> Store.Object_state.bytes s
            | Action.Store_host.Delta d ->
                List.fold_left
                  (fun acc (_, ops) ->
                    List.fold_left
                      (fun acc op -> acc + String.length op)
                      acc ops)
                  0 d.Action.Store_host.d_steps
          in
          let charge w =
            Sim.Metrics.incr metrics "commit.bytes_shipped" ~by:(write_bytes w)
          in
          List.iter (fun (_, w) -> charge w) writes;
          (* The paper's parallel write to all of StA: one concurrent
             prepare per store, votes gathered in store order. Latency is
             the slowest round-trip, not the sum. *)
          let scattered = Sim.Engine.now eng in
          let votes =
            Action.Store_host.prepare_each sh ~from:client ~action
              ~coordinator:client
              (List.map (fun (s, w) -> (s, [ (uid, w) ])) writes)
          in
          if delta_on then
            List.iter
              (fun (store, vote) ->
                match (List.assoc_opt store writes, vote) with
                | ( Some (Action.Store_host.Delta _),
                    Ok (Action.Store_host.Vote_yes | Action.Store_host.Vote_stale)
                  ) ->
                    Sim.Metrics.incr metrics "commit.delta_hits"
                | _ -> ())
              votes;
          let ok, stale, missed, unreachable =
            List.fold_left
              (fun (ok, stale, missed, unreachable) (store, vote) ->
                match vote with
                | Ok Action.Store_host.Vote_yes ->
                    (store :: ok, stale, missed, unreachable)
                | Ok Action.Store_host.Vote_stale ->
                    (ok, store :: stale, missed, unreachable)
                | Ok (Action.Store_host.Vote_delta_miss counter) ->
                    (ok, stale, (store, counter) :: missed, unreachable)
                | Error _ -> (ok, stale, missed, store :: unreachable))
              ([], [], [], []) votes
          in
          (* A delta miss means the vector was wrong about that store
             (recovered with an older state, or our last commit's
             acknowledgement never arrived). Nothing was staged there:
             reseed the vector from the counter the store reported and
             retry those stores — and only those — with full state. *)
          let retry_votes =
            match missed with
            | [] -> []
            | missed ->
                List.iter
                  (fun (store, counter) ->
                    Oplog.note_acked olog ~client ~store ~uid counter;
                    Sim.Metrics.incr metrics "commit.delta_fallbacks";
                    charge (Action.Store_host.Full full_state))
                  missed;
                Action.Store_host.prepare_each sh ~from:client ~action
                  ~coordinator:client
                  (List.map
                     (fun (store, _) ->
                       (store, [ (uid, Action.Store_host.Full full_state) ]))
                     missed)
          in
          Sim.Metrics.observe metrics "commit.fanout"
            (Sim.Engine.now eng -. scattered);
          let ok, stale, unreachable =
            List.fold_left
              (fun (ok, stale, unreachable) (store, vote) ->
                match vote with
                | Ok Action.Store_host.Vote_yes -> (store :: ok, stale, unreachable)
                | Ok
                    ( Action.Store_host.Vote_stale
                    | Action.Store_host.Vote_delta_miss _ ) ->
                    (ok, store :: stale, unreachable)
                | Error _ -> (ok, stale, store :: unreachable))
              (ok, stale, unreachable) retry_votes
          in
          let ok = List.rev ok and failed = List.rev unreachable in
          (* Any early abort from here on must withdraw the prepare
             records just written: a prepared record is a write
             reservation at the store, and leaking one blocks every
             future writer of the object. *)
          let withdraw_prepares () =
            ignore
              (Action.Store_host.abort_all sh ~from:client ~stores:ok ~action)
          in
          if stale <> [] then begin
            withdraw_prepares ();
            (* Backward validation failed: this action worked from a stale
               activation (disjoint replica sets during churn — the
               split-brain Arjuna's persistent lock store physically
               prevents). Abort, and once the abort has drained the
               action's locks, passivate the group's instances so the
               next bind re-activates from the latest committed state. *)
            Sim.Metrics.incr metrics "commit.conflicts";
            Action.Atomic.after_abort act (fun () ->
                List.iter
                  (fun m ->
                    ignore
                      (Server.passivate (Group.server_runtime rt) ~from:client
                         ~server:m ~uid:group.Group.g_uid))
                  (Group.live_members rt group));
            Error "stale activation: version conflict at object stores"
          end
          else
            match ok with
            | [] -> Error "all object stores unavailable at commit"
            | _ -> (
              let proceed =
                if failed = [] then Ok ()
                else begin
                  Sim.Metrics.incr metrics "commit.exclusions"
                    ~by:(List.length failed);
                  exclude act failed
                end
              in
              let proceed =
                match proceed with
                | Error why -> Error ("exclude failed: " ^ why)
                | Ok () -> (
                    match note_version with
                    | None -> Ok ()
                    | Some note -> (
                        match note act view.Server.cv_version with
                        | Ok () -> Ok ()
                        | Error why -> Error ("version note refused: " ^ why)))
              in
              match proceed with
              | Error why ->
                  withdraw_prepares ();
                  Error why
              | Ok () ->
                  Sim.Metrics.incr metrics ~by:(List.length ok)
                    "commit.state_copies";
                  (* One phase-2 participant for the whole store set: its
                     commit/abort scatters to every prepared store
                     concurrently instead of registering |St| serially
                     notified participants. A store's commit
                     acknowledgement is what advances the acknowledged-
                     version vector: only then is the store known to hold
                     [target], so only then may the next copy ship it a
                     delta based there. A lost acknowledgement clears the
                     entry instead — the store may or may not have
                     applied, and the next copy must not presume. *)
                  Action.Atomic.add_participant act ~name:"st-copy"
                    ~prepare:(fun () -> true)
                    ~commit:(fun () ->
                      let results =
                        Action.Store_host.commit_all sh ~from:client
                          ~stores:ok ~action
                      in
                      if delta_on then
                        List.iter
                          (fun (store, r) ->
                            match r with
                            | Ok () ->
                                Oplog.note_acked olog ~client ~store ~uid
                                  target
                            | Error _ ->
                                Oplog.forget_ack olog ~client ~store ~uid)
                          results)
                    ~abort:(fun () ->
                      ignore
                        (Action.Store_host.abort_all sh ~from:client
                           ~stores:ok ~action));
                  Ok ()))))
