type host = { h_objects : Store.Object_store.t; h_log : Store.Intent_log.t }

type read_req = Store.Uid.t

type delta = {
  d_impl : string;
  d_base : int;
  d_steps : (Store.Version.t * string list) list; (* oldest first, contiguous *)
}

type write = Full of Store.Object_state.t | Delta of delta

type prepare_req = {
  pr_action : string;
  pr_coordinator : string;
  pr_writes : (Store.Uid.t * write) list;
}

(* A yes vote piggybacks, per prepared object, the committed counter the
   store held when it staged the write (-1 = nothing yet): coordinators
   fold these levels into a shared per-(store,object) floor so even a
   client that never committed here before can base its next copy-back on
   a delta. The counter is pre-stage — the post-commit level is learned
   from the phase-2 acknowledgement as before. *)
type vote =
  | Vote_yes of (Store.Uid.t * int) list
  | Vote_stale
  | Vote_delta_miss of int

type t = {
  rpc_rt : Net.Rpc.t;
  hosts : (Net.Network.node_id, host) Hashtbl.t;
  mutable prepare_hook :
    (node:Net.Network.node_id -> action:string -> coordinator:string -> unit)
    option;
  mutable reservation_hook :
    (node:Net.Network.node_id -> blockers:(string * string) list -> unit)
    option;
  (* Folds one operation over a payload under a named implementation;
     [None] refuses (unknown implementation, or the op failed to apply).
     Installed by the world-assembly layer from the object-implementation
     registry: stores sit below the replica layer and cannot reach the
     registry themselves. Unset means every delta prepare misses. *)
  mutable delta_applier :
    (impl:string -> payload:string -> op:string -> string option) option;
  ep_read : (read_req, Store.Object_state.t option) Net.Rpc.endpoint;
  ep_prepare : (prepare_req, vote) Net.Rpc.endpoint;
  ep_commit : (string, unit) Net.Rpc.endpoint;
  ep_abort : (string, unit) Net.Rpc.endpoint;
  ep_decision : (string, Store.Intent_log.decision option) Net.Rpc.endpoint;
  (* Group-commit plane: one prepare (resp. commit) round carrying the
     sub-records of every batch member that writes this store. Voting,
     staging and idempotence stay per action — the batched handlers just
     run the per-action logic sub-record by sub-record. *)
  ep_prepare_batch : (prepare_req list, (string * vote) list) Net.Rpc.endpoint;
  ep_commit_batch : (string list, (Store.Uid.t * int) list) Net.Rpc.endpoint;
  ep_floors : (unit, (Store.Uid.t * int) list) Net.Rpc.endpoint;
}

let create rpc_rt =
  {
    rpc_rt;
    hosts = Hashtbl.create 16;
    prepare_hook = None;
    reservation_hook = None;
    delta_applier = None;
    ep_read = Net.Rpc.endpoint "store.read";
    ep_prepare = Net.Rpc.endpoint "store.prepare";
    ep_commit = Net.Rpc.endpoint "store.commit";
    ep_abort = Net.Rpc.endpoint "store.abort";
    ep_decision = Net.Rpc.endpoint "store.decision";
    ep_prepare_batch = Net.Rpc.endpoint "store.prepare_batch";
    ep_commit_batch = Net.Rpc.endpoint "store.commit_batch";
    ep_floors = Net.Rpc.endpoint "store.floors";
  }

let rpc t = t.rpc_rt

let nodes t =
  Hashtbl.fold (fun n _ acc -> n :: acc) t.hosts [] |> List.sort String.compare

let host t node =
  match Hashtbl.find_opt t.hosts node with
  | Some h -> h
  | None -> invalid_arg (Printf.sprintf "Store_host: no store on %s" node)

let apply_commit h action =
  (match Store.Intent_log.prepared h.h_log ~action with
  | None -> () (* already applied: idempotent *)
  | Some { Store.Intent_log.writes; _ } ->
      List.iter
        (fun (uid, state) ->
          (* Skip stale states so recovery replays are safe. *)
          let stale =
            match Store.Object_store.read h.h_objects uid with
            | Some existing -> Store.Object_state.newer_than existing state
            | None -> false
          in
          if not stale then Store.Object_store.write h.h_objects uid state)
        writes);
  Store.Intent_log.resolve h.h_log ~action

(* Resolve a wire write to the full state the intent log will stage.

   A [Full] write passes through. A [Delta] folds its op suffix over the
   store's committed payload — but only when the suffix's base version is
   exactly what the store holds (a lower base would re-apply history, a
   higher one would skip it) and every step is present, contiguous, and
   applies cleanly. Anything else is a {e delta miss}, answered with the
   store's committed counter so the coordinator can reseed its vector and
   ship full state. The resolved state is staged like any full write:
   phase 2, in-doubt resolution and recovery replay see no difference.

   Re-delivery safety: a duplicate delta prepare before the commit
   re-folds over the unchanged committed payload to the identical staged
   state ({!Store.Intent_log.prepare} replaces); one arriving after the
   commit finds the store already at the delta's target version and
   resolves to the store's own state — the delta counterpart of the full
   path's same-version replay acceptance. *)
let resolve_write t h = function
  | uid, Full state -> Ok (uid, state, `Full)
  | uid, Delta d -> (
      let current = Store.Object_store.read h.h_objects uid in
      let committed_counter =
        match current with
        | Some e -> e.Store.Object_state.version.Store.Version.counter
        | None -> -1
      in
      let target =
        match List.rev d.d_steps with
        | (v, _) :: _ -> Some v
        | [] -> None
      in
      let contiguous =
        let rec check prev = function
          | [] -> true
          | ((v : Store.Version.t), ops) :: rest ->
              ops <> []
              && (match prev with
                 | None -> v.counter = d.d_base + 1
                 | Some p -> Store.Version.follows v p)
              && check (Some v) rest
        in
        check None d.d_steps
      in
      match (current, target) with
      | Some existing, Some target
        when Store.Version.equal existing.Store.Object_state.version target ->
          Ok (uid, existing, `Delta)
      | Some existing, Some _
        when committed_counter = d.d_base && contiguous -> (
          match t.delta_applier with
          | None -> Error (uid, committed_counter)
          | Some apply -> (
              let folded =
                List.fold_left
                  (fun acc (_, ops) ->
                    Option.bind acc (fun payload ->
                        List.fold_left
                          (fun acc op ->
                            Option.bind acc (fun payload ->
                                apply ~impl:d.d_impl ~payload ~op))
                          (Some payload) ops))
                  (Some existing.Store.Object_state.payload)
                  d.d_steps
              in
              match (folded, target) with
              | Some payload, Some version ->
                  Ok (uid, Store.Object_state.make ~payload ~version, `Delta)
              | _ -> Error (uid, committed_counter)))
      | _ -> Error (uid, committed_counter))

(* The phase-1 handler, shared verbatim between the solo [store.prepare]
   endpoint and the batched [store.prepare_batch] one (which folds it over
   its sub-records): validation, reservations, staging, hooks and traces
   are identical either way, so a batch of one is indistinguishable from a
   solo prepare at the store. *)
let prepare_one t h node { pr_action; pr_coordinator; pr_writes } =
      let netw = Net.Rpc.network t.rpc_rt in
      let resolved, misses =
        List.fold_left
          (fun (resolved, misses) w ->
            match resolve_write t h w with
            | Ok r -> (r :: resolved, misses)
            | Error m -> (resolved, m :: misses))
          ([], []) pr_writes
      in
      let resolved = List.rev resolved and misses = List.rev misses in
      match misses with
      | (uid, counter) :: _ ->
          Sim.Metrics.incr (Net.Network.metrics netw) "store.delta_misses";
          Sim.Trace.recordf (Net.Network.trace netw)
            ~now:(Sim.Engine.now (Net.Network.engine netw)) ~tag:"store"
            "%s: %s delta miss on %s (store at %d)" node pr_action
            (Store.Uid.to_string uid) counter;
          Vote_delta_miss counter
      | [] ->
      (* Backward validation: each write must be the direct successor of
         the committed state (or recreate the same version during a
         recovery replay). A gap or a sibling version means the writer
         activated from a stale state. Delta-resolved writes already
         proved succession (their op chain starts at the committed
         counter), including multi-step chains a full write could not
         validate. *)
      let valid (uid, state, origin) =
        match origin with
        | `Delta -> true
        | `Full -> (
            match Store.Object_store.read h.h_objects uid with
            | None -> true
            | Some existing ->
                let incoming = state.Store.Object_state.version.Store.Version.counter in
                let current = existing.Store.Object_state.version.Store.Version.counter in
                incoming = current + 1 || incoming = current && Store.Object_state.equal state existing)
      in
      (* A pending prepare of another action is a write reservation:
         admitting a second writer for the same object would let two
         version-(n+1) siblings both commit (the apply order, not the
         validation, would then pick the survivor). *)
      let reserved (uid, _, _) =
        List.exists
          (fun a -> not (String.equal a pr_action))
          (Store.Intent_log.pending_writers h.h_log uid)
      in
      List.iter
        (fun ((uid, state, _) as w) ->
          if not (valid w) then
            Sim.Trace.recordf (Net.Network.trace netw)
              ~now:(Sim.Engine.now (Net.Network.engine netw)) ~tag:"store"
              "%s: %s stale prepare of %s (incoming %s vs stored %s)" node
              pr_action (Store.Uid.to_string uid)
              (Store.Version.to_string state.Store.Object_state.version)
              (match Store.Object_store.read h.h_objects uid with
              | Some e -> Store.Version.to_string e.Store.Object_state.version
              | None -> "none")
          else if reserved w then
            Sim.Trace.recordf (Net.Network.trace netw)
              ~now:(Sim.Engine.now (Net.Network.engine netw)) ~tag:"store"
              "%s: %s blocked by reservation of [%s] on %s" node pr_action
              (String.concat ","
                 (List.filter
                    (fun a -> not (String.equal a pr_action))
                    (Store.Intent_log.pending_writers h.h_log uid)))
              (Store.Uid.to_string uid))
        resolved;
      if List.for_all valid resolved && not (List.exists reserved resolved)
      then begin
        Store.Intent_log.prepare h.h_log ~action:pr_action
          ~coordinator:pr_coordinator
          (List.map (fun (uid, state, _) -> (uid, state)) resolved);
        (match t.prepare_hook with
        | Some hook ->
            hook ~node ~action:pr_action ~coordinator:pr_coordinator
        | None -> ());
        Vote_yes
          (List.map
             (fun (uid, _, _) ->
               ( uid,
                 match Store.Object_store.read h.h_objects uid with
                 | Some e ->
                     e.Store.Object_state.version.Store.Version.counter
                 | None -> -1 ))
             resolved)
      end
      else begin
        (* If the refusal came from another action's write reservation,
           report the blockers (with their coordinators) so in-doubt
           resolution can break reservations whose coordinator is
           partitioned away — a crash fires [prepare_hook]'s watch, but a
           partition severs the abort fan-out without killing anyone. *)
        (match t.reservation_hook with
        | None -> ()
        | Some hook ->
            let blockers =
              List.sort_uniq compare
                (List.concat_map
                   (fun (uid, _, _) ->
                     List.filter_map
                       (fun a ->
                         if String.equal a pr_action then None
                         else
                           Option.map
                             (fun { Store.Intent_log.coordinator; _ } ->
                               (a, coordinator))
                             (Store.Intent_log.prepared h.h_log ~action:a))
                       (Store.Intent_log.pending_writers h.h_log uid))
                   resolved)
            in
            if blockers <> [] then hook ~node ~blockers);
        Vote_stale
      end

(* The committed counter of every object this store holds: the acked-floor
   gossip payload. Batched phase-2 acks carry it (post-apply), and the
   anti-entropy round reads it directly, so coordinators can reseed the
   shared per-(store,object) floor without ever having written here. *)
let floors_of h =
  List.map
    (fun uid ->
      ( uid,
        match Store.Object_store.read h.h_objects uid with
        | Some e -> e.Store.Object_state.version.Store.Version.counter
        | None -> -1 ))
    (Store.Object_store.uids h.h_objects)

let add t node =
  if Hashtbl.mem t.hosts node then
    invalid_arg (Printf.sprintf "Store_host.add: %s already hosted" node);
  let h = { h_objects = Store.Object_store.create (); h_log = Store.Intent_log.create () } in
  Hashtbl.add t.hosts node h;
  Net.Rpc.serve t.rpc_rt ~node t.ep_read (fun uid ->
      Store.Object_store.read h.h_objects uid);
  Net.Rpc.serve t.rpc_rt ~node t.ep_prepare (fun req -> prepare_one t h node req);
  Net.Rpc.serve t.rpc_rt ~node t.ep_prepare_batch (fun reqs ->
      List.map (fun req -> (req.pr_action, prepare_one t h node req)) reqs);
  Net.Rpc.serve t.rpc_rt ~node t.ep_commit (fun action -> apply_commit h action);
  Net.Rpc.serve t.rpc_rt ~node t.ep_commit_batch (fun actions ->
      List.iter (fun action -> apply_commit h action) actions;
      floors_of h);
  Net.Rpc.serve t.rpc_rt ~node t.ep_floors (fun () -> floors_of h);
  Net.Rpc.serve t.rpc_rt ~node t.ep_abort (fun action ->
      Store.Intent_log.resolve h.h_log ~action);
  Net.Rpc.serve t.rpc_rt ~node t.ep_decision (fun action ->
      Store.Intent_log.decision_of h.h_log ~action)

let hosted t node = Hashtbl.mem t.hosts node

let objects t node = (host t node).h_objects
let log t node = (host t node).h_log

let seed t node uid state = Store.Object_store.write (host t node).h_objects uid state

let read t ~from ~store uid = Net.Rpc.call t.rpc_rt ~from ~dst:store t.ep_read uid

let full_writes writes = List.map (fun (uid, state) -> (uid, Full state)) writes

let prepare t ~from ~store ~action ~coordinator writes =
  Net.Rpc.call t.rpc_rt ~from ~dst:store t.ep_prepare
    {
      pr_action = action;
      pr_coordinator = coordinator;
      pr_writes = full_writes writes;
    }

let commit t ~from ~store ~action = Net.Rpc.call t.rpc_rt ~from ~dst:store t.ep_commit action

let abort t ~from ~store ~action = Net.Rpc.call t.rpc_rt ~from ~dst:store t.ep_abort action

let prepare_all t ~from ~stores ~action ~coordinator writes =
  let req =
    {
      pr_action = action;
      pr_coordinator = coordinator;
      pr_writes = full_writes writes;
    }
  in
  Net.Rpc.call_all t.rpc_rt ~from t.ep_prepare
    (List.map (fun store -> (store, req)) stores)

(* The 2PC fan-outs below accept a hedging policy and a propagated
   deadline: prepare records the same intent twice idempotently (replays
   return the recorded vote), commit/abort resolve an intent-log entry
   idempotently, so a hedged duplicate delivery is harmless.

   With [?alt_of] (the sibling-hedge knob), a leg whose destination the
   caller maps to a sibling [St] member races its backup copy against
   THAT node instead of re-rolling the sick destination's dice. The
   sibling holds the same replicated object, so its handler does the
   same work its own leg does (prepare replaces per-action; phase-2
   resolves idempotently) — but its answer is NOT the primary's: a
   sibling win is reported as [Error Timed_out] for the leg, which the
   commit layer already handles (§4.2 exclude-on-failure at prepare,
   conservative floor forgetting at phase-2). The payoff is purely
   latency: the gather stops waiting on the browned node after one
   healthy round trip instead of one inflated one. *)

let scatter_alt t ~from ?hedge ?deadline_at ?alt_of ~keep_primary ep reqs =
  match (hedge, alt_of) with
  | Some h, Some altf when List.exists (fun (d, _) -> altf d <> None) reqs ->
      let netw = Net.Rpc.network t.rpc_rt in
      (match reqs with
      | [] | [ _ ] -> ()
      | _ ->
          Sim.Metrics.incr (Net.Network.metrics netw) "rpc.scatters";
          Sim.Metrics.incr (Net.Network.metrics netw) ~by:(List.length reqs)
            "rpc.scatter_calls");
      Sim.Join.all (Net.Network.engine netw)
        (List.map
           (fun (dst, req) () ->
             match altf dst with
             | None ->
                 ( dst,
                   Net.Rpc.call_hedged t.rpc_rt ~from ~dst ?deadline_at
                     ~hedge:h ep req )
             | Some alt ->
                 let won = ref false in
                 let r =
                   Net.Rpc.call_hedged t.rpc_rt ~from ~dst ~alt ~keep_primary
                     ~alt_won:won ?deadline_at ~hedge:h ep req
                 in
                 (dst, if !won then Error Net.Rpc.Timed_out else r))
           reqs)
  | _ -> Net.Rpc.call_all t.rpc_rt ~from ?hedge ?deadline_at ep reqs

let prepare_each t ~from ?hedge ?deadline_at ?alt_of ~action ~coordinator
    writes =
  scatter_alt t ~from ?hedge ?deadline_at ?alt_of ~keep_primary:false
    t.ep_prepare
    (List.map
       (fun (store, ws) ->
         (store, { pr_action = action; pr_coordinator = coordinator; pr_writes = ws }))
       writes)

let commit_all t ~from ?hedge ?deadline_at ?alt_of ~stores action =
  scatter_alt t ~from ?hedge ?deadline_at ?alt_of ~keep_primary:true
    t.ep_commit
    (List.map (fun store -> (store, action)) stores)

let abort_all t ~from ?hedge ?deadline_at ?alt_of ~stores action =
  scatter_alt t ~from ?hedge ?deadline_at ?alt_of ~keep_primary:true
    t.ep_abort
    (List.map (fun store -> (store, action)) stores)

(* Batched prepares are NEVER sibling-routed: one store's batch can carry
   sub-records of actions whose [St] does not include the sibling, and a
   sibling staging such an intent would hold it forever (its phase-2
   fan-out never visits a non-member). Batched phase-2 is safe — an
   unknown action resolves as a no-op — so [commit_batch] takes the alt
   map while [prepare_batch] keeps same-node backups. *)
let prepare_batch t ~from ?hedge ?deadline_at per_store =
  Net.Rpc.call_all t.rpc_rt ~from ?hedge ?deadline_at t.ep_prepare_batch
    per_store

let commit_batch t ~from ?hedge ?deadline_at ?alt_of per_store =
  scatter_alt t ~from ?hedge ?deadline_at ?alt_of ~keep_primary:true
    t.ep_commit_batch per_store

let floors_all t ~from ~stores =
  Net.Rpc.call_all t.rpc_rt ~from t.ep_floors
    (List.map (fun store -> (store, ())) stores)

let decision t ~from ~coordinator ~action =
  Net.Rpc.call t.rpc_rt ~from ~dst:coordinator t.ep_decision action

let set_prepare_hook t hook = t.prepare_hook <- Some hook
let set_reservation_hook t hook = t.reservation_hook <- Some hook
let set_delta_applier t applier = t.delta_applier <- Some applier

let record_decision t ~node ~action d =
  Store.Intent_log.record_decision (host t node).h_log ~action d
