lib/sim/heap.mli:
