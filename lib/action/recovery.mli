(** Crash recovery for store nodes: resolving in-doubt 2PC participants.

    A store node that crashes between [prepare] and [commit] restarts with
    prepare records in its stable intent log. For each one, recovery asks
    the recorded coordinator for the action's fate:

    - [D_commit] — apply the intended writes;
    - [D_abort] or [D_unknown] — presumed abort: discard them;
    - [D_active] — phase 1 still in progress: retry after a delay;
    - coordinator unreachable — retry after a delay; when the whole
      retry budget is spent, {e cooperative termination}: a reachable
      peer store whose committed state is stamped by the action proves
      the decision was commit (no later action can commit past this
      node's own reservation), otherwise presumed abort.

    [attach] wires this procedure into the node's recovery hook; upper
    layers (the naming library's reintegration protocol) register their own
    hooks {e after} this one so they see fully resolved stores. *)

val resolve_in_doubt :
  Atomic.runtime -> node:Net.Network.node_id -> ?retry_delay:float -> unit -> unit
(** Resolve every in-doubt action on [node]'s intent log. Runs in the
    calling fiber (which must be on [node]) and only returns when no
    in-doubt record remains. [retry_delay] (default 2.0) spaces retries
    while a coordinator is unreachable or the action is still active. *)

val attach : Atomic.runtime -> node:Net.Network.node_id -> unit
(** Register {!resolve_in_doubt} as [node]'s first recovery action. *)

val break_stale_reservations :
  Atomic.runtime -> ?tries:int -> ?retry_delay:float -> unit -> unit
(** Arrange (once per world) that a prepare refused by another action's
    write reservation probes the blocker's coordinator {e when that
    coordinator is unreachable} (partitioned away — a crash is already
    covered by {!guard_prepares}). A commit decision is applied locally;
    an abort or unknown decision, or a coordinator still unreachable
    after [tries] probes spaced [retry_delay] apart, resolves the record
    as presumed abort. Reachable coordinators are never probed, so
    healthy contention generates no extra traffic. *)

val guard_prepares : Atomic.runtime -> unit
(** Arrange (once per world) that every store watches the coordinator of
    each prepare it accepts: if the coordinator crashes while the record
    is still in doubt, a resolver fiber on the store node waits for the
    coordinator's recovery and settles the record from its decision
    service. If the coordinator never returns within the retry budget,
    the record is presumed aborted — the coordinator-side decision is
    then unknowable, and leaving the reservation in place would block
    every future writer of the object. *)
