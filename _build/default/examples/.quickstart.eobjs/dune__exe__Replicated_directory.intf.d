examples/replicated_directory.mli:
