(** Failure injection: deterministic and stochastic crash schedules, plus
    scheduled message-level faults (drop/dup/reorder/delay-spike windows and
    one-way partitions).

    Experiments drive node and message failures through this module so that
    every injected fault appears in the trace (tags ["net"] / ["fault"])
    and the schedule is reproducible from the engine seed. *)

val crash_at : Network.t -> at:float -> Network.node_id -> unit
(** Crash the node at absolute virtual time [at] (no-op if already down
    then). *)

val recover_at : Network.t -> at:float -> Network.node_id -> unit
(** Recover the node at absolute virtual time [at]. *)

val crash_for : Network.t -> at:float -> duration:float -> Network.node_id -> unit
(** Crash at [at], recover at [at +. duration]. *)

val partition_for :
  Network.t ->
  at:float ->
  duration:float ->
  Network.node_id ->
  Network.node_id ->
  unit
(** Symmetric partition between the pair for the window
    [\[at, at +. duration\]]. *)

val cut_oneway_for :
  Network.t ->
  at:float ->
  duration:float ->
  src:Network.node_id ->
  dst:Network.node_id ->
  unit
(** Asymmetric partition: block [src]->[dst] delivery only, for the given
    window. The reverse direction stays healthy. *)

val link_faults_for :
  Network.t ->
  at:float ->
  duration:float ->
  ?drop:float ->
  ?dup:float ->
  ?reorder:float ->
  ?spike_prob:float ->
  ?spike:float ->
  src:Network.node_id ->
  dst:Network.node_id ->
  unit ->
  unit
(** Install the given message-fault rule (see {!Network.set_link_fault}) on
    the directed link for the window, then clear it. A one-way cut on the
    same link is preserved across the clear. *)

val brownout_for :
  Network.t ->
  at:float ->
  duration:float ->
  ?prob:float ->
  ?lo:float ->
  ?hi:float ->
  Network.node_id ->
  unit
(** Brownout window: install {!Network.set_brownout} (per-node
    service-time inflation with probability [prob], magnitude uniform in
    [\[lo, hi\]], defaults [lo = 15.0], [hi = 25.0]) at [at] and clear it
    at [at +. duration]. The gray-failure injection: the node stays up,
    votes and answers — just slowly. *)

val heal_at : Network.t -> at:float -> unit
(** Schedule {!Network.clear_all_faults} at time [at] — the heal step
    before a chaos schedule quiesces. *)

val churn :
  Network.t ->
  rng:Sim.Rng.t ->
  mttf:float ->
  mttr:float ->
  ?until:float ->
  Network.node_id ->
  unit
(** [churn net ~rng ~mttf ~mttr id] subjects the node to an alternating
    up/down renewal process: exponential time-to-failure with mean [mttf],
    exponential repair time with mean [mttr], stopping at [until] (default:
    never). The process is driven by its own fiber in the root group so it
    survives the crashes it causes. *)
