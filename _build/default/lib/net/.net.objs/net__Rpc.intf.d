lib/net/rpc.mli: Format Network
