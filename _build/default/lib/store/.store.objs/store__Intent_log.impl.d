lib/store/intent_log.ml: Format Hashtbl List Object_state String Uid
