(** Version stamps for committed object states.

    Every committed state carries a monotonically increasing counter and
    the identifier of the committing action. §3.1 requires the naming
    service to distinguish nodes holding the {e latest committed} state
    from stale ones; version comparison implements that check. *)

type t = { counter : int; committed_by : string }

val initial : t
(** Version of a freshly created object (counter 0, committed by
    ["genesis"]). *)

val next : t -> committed_by:string -> t
(** Successor version, stamped with the committing action. *)

val newer_than : t -> t -> bool
(** [newer_than a b] is [a.counter > b.counter]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val follows : t -> t -> bool
(** [follows a b]: [a] is a direct successor of [b] by counter —
    contiguity of a committed-version chain, regardless of which actions
    committed the steps. Backward validation and delta-suffix checks both
    reduce to runs of this relation. *)
