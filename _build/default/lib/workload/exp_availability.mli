(** Experiments [fig2-single] … [fig5-general]: availability under the
    four replica-management configurations of §3.2.

    A client repeatedly runs an increment action against one object while
    the designated nodes churn (exponential failures/repairs). Measured
    availability is the fraction of actions that commit; the paper's
    qualitative claims are:

    - Figure 2 (|Sv|=|St|=1): any crash of the server or store node aborts
      the action, so availability falls quickly with crash intensity;
    - Figure 3 (|Sv|=1, |St|=k): replicated state masks store crashes
      ([Exclude]/[Include] keeping the view accurate), so availability
      grows with k;
    - Figure 4 (|Sv|=k, |St|=1): active or coordinator-cohort replication
      masks up to k−1 server crashes;
    - Figure 5 (general): both effects compose. *)

type outcome = {
  o_attempts : int;
  o_commits : int;
  o_exclusions : int;
  o_includes : int;
  o_promotions : int;
  o_futile : int;
}

val availability : outcome -> float

type churn_spec = { mttf : float; mttr : float }

val run_config :
  ?actions:int ->
  ?seed:int64 ->
  n_sv:int ->
  n_st:int ->
  policy:Replica.Policy.t ->
  ?server_churn:churn_spec ->
  ?store_churn:churn_spec ->
  unit ->
  outcome
(** Run one configuration to completion and collect its counters. *)

val fig2 : ?seed:int64 -> unit -> Table.t
val fig3 : ?seed:int64 -> unit -> Table.t
val fig4 : ?seed:int64 -> unit -> Table.t
val fig5 : ?seed:int64 -> unit -> Table.t
