(** The group view database — the paper's naming-and-binding service.

    One persistent object (as in Arjuna, §5) hosted on a designated service
    node, combining the two databases of §4:

    - the {e Object Server database}: per object [A], the set [SvA] of
      nodes able to run a server for [A], with per-node {e use lists}
      [<client, count>] ({!Use_list});
    - the {e Object State database}: per object, the set [StA] of nodes
      whose object stores hold a state of [A].

    Every entry is concurrency-controlled independently, with separate
    lock keys for its server list and its state list. Operations execute
    as RPC handlers on the service node {e on behalf of the caller's
    atomic action}: they take locks owned by that action and record
    before-images, and the database participates in the action's
    completion through a {!Action.Resource_host} manager — commit drops
    the before-images and releases the locks, abort restores and
    releases, nested commit transfers both to the parent action.

    The paper's type-specific concurrency control is implemented exactly:
    [Exclude] first tries to promote the caller's read lock to the
    {e exclude-write} mode, which is compatible with other readers
    (§4.2.1); construction flag [use_exclude_write] turns this off for the
    ablation benchmark (plain write promotion).

    The service node is assumed always available (§3.1); this module
    therefore keeps its state in memory of that node and never crashes
    it in experiments. *)

type t
(** The database runtime (client handle and server state). *)

val install :
  ?lock_timeout:float ->
  ?use_exclude_write:bool ->
  ?durable:bool ->
  ?service_time:float ->
  Action.Atomic.runtime ->
  node:Net.Network.node_id ->
  t
(** [install art ~node] hosts the database on [node] and registers its
    endpoints and resource manager. [lock_timeout] (default 30.0) bounds
    lock waits inside handlers; a timed-out wait refuses the operation.
    [use_exclude_write] (default true) selects the §4.2.1 lock type for
    [Exclude].

    [durable] (default false) drops the paper's always-available
    assumption for the service node: entries behave as a persistent
    object (committed images survive a crash of the node), while its lock
    table and the before-images of in-flight actions are volatile — after
    a crash, every action started before it votes {e no} at prepare, so
    nothing half-done ever commits against the restored database.

    [service_time] (default 0.0) models the CPU cost of one database
    operation: each workload-path handler first queues for the node's
    single service unit and holds it that long. The default keeps the
    node infinitely fast, byte-for-byte the seed behaviour; a positive
    value makes a single naming node a measurable bottleneck, which is
    what the sharded tier ({!Router}) relieves. *)

val node : t -> Net.Network.node_id
(** The service node. *)

val hedged : t -> bool

val set_hedged : t -> bool -> unit
(** Hedge the plain idempotent reads — {!lookup}, {!entry_info},
    {!get_view_snapshot}, {!get_server_snapshot} — with a health-delayed
    backup copy ({!Net.Rpc.call_hedged}); default off, off is
    byte-identical. The enlisted operations are {e never} hedged: they
    take locks and stage counter updates, and a hedged duplicate would
    ride below the RPC duplicate guard (e.g. a double-staged Increment in
    [bind_batch]). *)

val resource : string
(** The {!Action.Resource_host} resource name, ["gvd"]. *)

(** Outcome of a database operation: [Refused] means a lock could not be
    granted (the caller should abort its action); [Busy] is
    [Insert]-specific — the object is not quiescent; [Moved] is the
    wrong-shard bounce — the entry was handed off to the given naming
    node and the caller (normally {!Router}) should retry there. *)
type 'a reply =
  | Granted of 'a
  | Busy of string
  | Refused of string
  | Moved of Net.Network.node_id

type server_view = {
  sv_servers : Net.Network.node_id list;  (** current [SvA] *)
  sv_uses : (Net.Network.node_id * Use_list.t) list;
      (** use list per server node (same order as [sv_servers]) *)
}

(** {2 Administrative operations} (no locking; used at world setup and by
    tests) *)

val register_object :
  t ->
  from:Net.Network.node_id ->
  uid:Store.Uid.t ->
  name:string ->
  impl:string ->
  sv:Net.Network.node_id list ->
  st:Net.Network.node_id list ->
  (unit, Net.Rpc.error) result
(** Create the entry for a new object and bind [name] to [uid] (RPC;
    must run in a fiber). *)

val register_direct :
  t ->
  uid:Store.Uid.t ->
  name:string ->
  impl:string ->
  sv:Net.Network.node_id list ->
  st:Net.Network.node_id list ->
  unit
(** Out-of-band registration at world-setup time, before the simulation
    starts: applies immediately, no fiber or network round trip. *)

val lookup :
  t -> from:Net.Network.node_id -> string -> (Store.Uid.t option, Net.Rpc.error) result
(** Name → UID resolution (§2.2). *)

type entry_info = {
  ei_impl : string;
  ei_sv_home : Net.Network.node_id list;
      (** every node ever admitted to [SvA] (the static capability set) *)
  ei_st_home : Net.Network.node_id list;
      (** every node ever admitted to [StA] *)
}

val entry_info :
  t -> from:Net.Network.node_id -> Store.Uid.t -> (entry_info option, Net.Rpc.error) result

val stored_on :
  t -> from:Net.Network.node_id -> Net.Network.node_id -> (Store.Uid.t list, Net.Rpc.error) result
(** Objects whose [st_home] contains the node; recovery uses this to know
    what to reintegrate. *)

val served_by :
  t -> from:Net.Network.node_id -> Net.Network.node_id -> (Store.Uid.t list, Net.Rpc.error) result
(** Objects whose [sv_home] contains the node. *)

(** {2 Object Server database operations} (§4.1) *)

val get_server :
  t ->
  act:Action.Atomic.t ->
  Store.Uid.t ->
  (server_view reply, Net.Rpc.error) result
(** Read [SvA] and the use lists under a read lock owned by [act]. *)

val get_server_update :
  t ->
  act:Action.Atomic.t ->
  Store.Uid.t ->
  (server_view reply, Net.Rpc.error) result
(** Like {!get_server} but acquiring the {e write} lock up front: the
    schemes of §4.1.3 read the view and then update it ([Remove],
    [Increment]) within the same short top-level action, and starting
    with a read lock would make two concurrent binders refuse each
    other's promotion. *)

val insert :
  t -> act:Action.Atomic.t -> uid:Store.Uid.t -> Net.Network.node_id ->
  (unit reply, Net.Rpc.error) result
(** Add a server node to [SvA]. Requires the write lock and quiescence
    (all use lists empty): returns [Busy] otherwise — a recovered server
    node retries until the object is quiescent (§4.1.2). *)

val remove :
  t -> act:Action.Atomic.t -> uid:Store.Uid.t -> Net.Network.node_id ->
  (unit reply, Net.Rpc.error) result
(** Remove a server node from [SvA] (write lock). *)

val increment :
  t -> act:Action.Atomic.t -> uid:Store.Uid.t -> client:Net.Network.node_id ->
  Net.Network.node_id list -> (unit reply, Net.Rpc.error) result
(** Bump [client]'s counter in the use list of each listed server node —
    §4.1.3. Counter updates commute, so this takes the {!Lockmgr.Mode.Delta}
    lock (compatible with other increments/decrements and with readers)
    and stages a redo record that is applied when [act] commits. *)

val decrement :
  t -> act:Action.Atomic.t -> uid:Store.Uid.t -> client:Net.Network.node_id ->
  Net.Network.node_id list -> (unit reply, Net.Rpc.error) result
(** Undo one [increment] (also [Delta]-mode, staged until commit). *)

val zero_client :
  t -> act:Action.Atomic.t -> uid:Store.Uid.t -> client:Net.Network.node_id ->
  (unit reply, Net.Rpc.error) result
(** Drop every counter of [client] on the object — the cleanup protocol's
    repair for crashed clients (§4.1.3). *)

(** {2 Single-round batched bind and snapshot reads}

    Every committing action installs a fresh immutable snapshot of the
    entry halves it touched and bumps a per-entry version. Schemes B/C
    read these snapshots lock-free; scheme A keeps the locked
    {!get_server}/{!get_view} path so Figure 6's read-lock semantics are
    untouched. *)

type batch_view = {
  bv_impl : string;  (** implementation name (saves the impl_of round) *)
  bv_chosen : Net.Network.node_id list;
      (** the activation subset whose counters were incremented *)
  bv_removed : Net.Network.node_id list;
      (** detectably dead servers pruned from [SvA] in the same round *)
  bv_stores : Net.Network.node_id list;  (** committed [StA] snapshot *)
  bv_version : int;  (** entry snapshot version *)
}

val bind_batch :
  t ->
  act:Action.Atomic.t ->
  uid:Store.Uid.t ->
  client:Net.Network.node_id ->
  replicas:int ->
  credits:(Net.Network.node_id * int) list ->
  (batch_view reply, Net.Rpc.error) result
(** The whole database half of a scheme-B/C bind in one RPC round:
    GetServer + Remove(dead) + Increment(chosen) + GetView, with the
    caller's coalesced pending Decrements ([credits], one count per
    server node) piggybacked. Runs in [Delta] lock mode unless a listed
    server is detectably dead (then a structural write). [replicas] is
    the activation-subset size wanted when no server is in use yet. *)

val get_view_snapshot :
  t -> from:Net.Network.node_id ->
  Store.Uid.t -> ((Net.Network.node_id list * int) reply, Net.Rpc.error) result
(** Lock-free read of the committed [StA] snapshot and its version. Not
    enlisted in any action (there is nothing to undo or release). *)

val get_server_snapshot :
  t -> from:Net.Network.node_id ->
  Store.Uid.t -> ((server_view * int) reply, Net.Rpc.error) result
(** Lock-free read of the committed [SvA] snapshot (with use lists). *)

(** {2 Object State database operations} (§4.2) *)

val get_view :
  t -> act:Action.Atomic.t -> Store.Uid.t ->
  (Net.Network.node_id list reply, Net.Rpc.error) result
(** Read [StA] under a read lock owned by [act]. *)

val exclude :
  t -> act:Action.Atomic.t -> (Store.Uid.t * Net.Network.node_id list) list ->
  (unit reply, Net.Rpc.error) result
(** Batch-remove store nodes from the [St] sets (§4.2): for each object,
    promote the caller's read lock to exclude-write (or acquire it
    afresh); refusal means the caller must abort. *)

val include_ :
  t -> act:Action.Atomic.t -> uid:Store.Uid.t -> Net.Network.node_id ->
  (Store.Version.t reply, Net.Rpc.error) result
(** Re-admit a store node to [StA] (write lock). The granted value is the
    {e committed-version fence}: the caller must hold (or fetch) a state
    at least that new before its inclusion action may commit, else a
    store whose state was rewound by unlucky crash timing would serve
    stale activations. *)

val note_version :
  t -> act:Action.Atomic.t -> uid:Store.Uid.t -> Store.Version.t ->
  (unit reply, Net.Rpc.error) result
(** Record, within the committing action, the version its commit installs
    (exclude-write lock, like [Exclude]); the fence {!include_} checks.
    Refusal must abort the action. *)

val committed_version : t -> Store.Uid.t -> Store.Version.t
(** Introspection: the current committed-version fence. *)

(** {2 Optimistic commit validation}

    The classic commit-time re-read ({!get_view} + {!note_version}) holds
    a read lock on [StA] from commit start across the copy-back fan-out
    to fence concurrent Includes. The optimistic path replaces the lock
    with validation: read the committed snapshot and its {e St revision}
    lock-free when commit processing starts ({!get_view_commit}), fan the
    copy-back out against it, then {!validate_view} inside the prepare
    round — if a membership change committed in between, the revision
    moved and the commit retries against fresh [St]; if not, the
    validation takes the same write fence the classic note took and the
    guarantee is re-established, with zero naming-tier lock waits on the
    conflict-free path. The St revision counts only committed
    Include/Exclude/retire changes, so concurrent binds (use-list
    traffic) never conflict a committer. *)

val get_view_commit :
  t -> from:Net.Network.node_id ->
  Store.Uid.t -> ((Net.Network.node_id list * int) reply, Net.Rpc.error) result
(** Lock-free read of the committed [StA] snapshot and its {e St
    revision} (not the per-entry snapshot version — see above). Not
    enlisted; nothing to undo or release. *)

val validate_view :
  t -> act:Action.Atomic.t -> uid:Store.Uid.t ->
  version:Store.Version.t -> rev:int ->
  (bool reply, Net.Rpc.error) result
(** Validate-and-note in one round, inside the prepare fan-out:
    re-acquire the exclude-write fence (non-blocking — [Refused] if held
    by a membership change in flight), compare [rev] against the
    committed St revision, and on match record [version] exactly as
    {!note_version} would, answering [Granted true]. On mismatch answers
    [Granted false] {e keeping the fence}: the retried copy-back then
    validates against a revision that can no longer move, so one conflict
    costs exactly one retry. Idempotent under duplicate delivery. *)

(** {2 Optimistic membership changes}

    The §13 discipline applied to §4.2's own operations: a caller that
    decided a membership change off a lock-free [(St, rev)] snapshot
    ({!get_view_commit}) asks for it to be applied {e only if the
    revision still stands} — decide-then-mutate becomes one atomic round,
    with no blocking lock wait on the conflict-free path. On a moved
    revision the reply is [Granted (false, _)] and the just-taken fence
    is deliberately kept (as in {!validate_view}), so the caller's
    re-read sees a revision that can no longer move and a re-decided
    retry must succeed: one conflict costs one retry. [Refused] (fence
    unavailable) callers fall back to the classic blocking
    {!exclude}/{!include_}. *)

val exclude_validated :
  t -> act:Action.Atomic.t -> uid:Store.Uid.t -> rev:int ->
  Net.Network.node_id ->
  ((bool * Store.Version.t) reply, Net.Rpc.error) result
(** Remove one store node from [StA] iff the committed St revision still
    equals [rev]. Refuses outright (never mutating) if the removal would
    empty [St]: the last state holder is never evicted, however sick. *)

val include_validated :
  t -> act:Action.Atomic.t -> uid:Store.Uid.t -> rev:int ->
  Net.Network.node_id ->
  ((bool * Store.Version.t) reply, Net.Rpc.error) result
(** Re-admit a store node to [StA] iff the revision still equals [rev].
    [Granted (true, fence)] carries the same committed-version fence as
    {!include_}: the caller must hold a state at least that new before
    its inclusion action may commit. *)

(** {2 Replicating the service itself} (§3.1's deferred extension)

    The paper notes the naming service "can be replicated in order to be
    able to provide highly available service" and then assumes it always
    available. These hooks implement a primary-backup pair: the primary
    pushes the committed images of every entry an action touched to the
    backup, synchronously, when the action ends; a recovering instance
    pulls a full snapshot from its peer before resuming. Mastership is
    decided by the clients' failure detector (bind against the backup only
    while the primary is down); install both instances with
    [~durable:true] so their volatile halves fence correctly across
    crashes. *)

val mirror_to : t -> t -> unit
(** [mirror_to primary backup]: push committed images to [backup] at every
    action end. Push failures are tolerated (the backup resynchronises on
    recovery). Set in both directions for a symmetric pair. *)

val resync_from :
  t -> source:t -> from:Net.Network.node_id -> (unit, Net.Rpc.error) result
(** Pull a full snapshot of committed images from [source] (an RPC issued
    from [from], normally the caller's own recovering node) and install it
    locally. *)

(** {2 Retirement} (administrative changes to the replication degree) *)

val retire_server_home :
  t -> act:Action.Atomic.t -> uid:Store.Uid.t -> Net.Network.node_id ->
  (unit reply, Net.Rpc.error) result
(** Permanently remove a node from [SvA] {e and} from [sv_home], so
    recovery will not re-insert it. Requires the write lock and, like
    [Insert], quiescence ([Busy] otherwise) — retiring a server out from
    under bound clients would break their bindings. *)

val retire_store_home :
  t -> act:Action.Atomic.t -> uid:Store.Uid.t -> Net.Network.node_id ->
  (unit reply, Net.Rpc.error) result
(** Permanently remove a node from [StA] and [st_home] (write lock), so
    recovery will not re-include it. *)

(** {2 Shard handoff} (online rebalance; used by {!Router})

    An entry migrates shard-to-shard without quiescing the workload: the
    source removes it and leaves a [Moved] marker in one atomic handler
    (only when no locks are held or queued on it — [Busy] otherwise, and
    the router retries until in-flight actions drain), and the receiving
    instance installs it in-process immediately after the reply. Requests
    racing the migration are healed by the [Moved] bounce. *)

type handoff
(** A migrating entry in flight: image, names, use lists and the
    committed-version fence travel together. *)

val handoff_out :
  t ->
  from:Net.Network.node_id ->
  uid:Store.Uid.t ->
  dest:Net.Network.node_id ->
  (handoff reply, Net.Rpc.error) result
(** Ask this instance to release [uid] for migration to [dest] (RPC; must
    run in a fiber). [Busy] if the entry has lock activity. *)

val accept_handoff : t -> handoff -> unit
(** Install a migrated entry on this instance (direct, no network). *)

val owns : t -> Store.Uid.t -> bool
(** Whether this instance currently holds the entry for [uid]. *)

(** {2 Introspection} (tests, experiments; direct access) *)

val current_sv : t -> Store.Uid.t -> Net.Network.node_id list
val current_st : t -> Store.Uid.t -> Net.Network.node_id list
val current_uses : t -> Store.Uid.t -> (Net.Network.node_id * Use_list.t) list
val quiescent : t -> Store.Uid.t -> bool
val all_uids : t -> Store.Uid.t list

val snapshot_version : t -> Store.Uid.t -> int
(** The entry's committed snapshot version: bumped exactly once per
    committing action that touched the entry, never decremented. *)

val st_revision : t -> Store.Uid.t -> int
(** The committed St revision: bumped exactly once per committing action
    that changed the [StA] member list, never by version notes or
    use-list traffic. Always ≤ {!snapshot_version}'s growth — audits
    assert the monotone relation. *)

val residual_locks :
  t -> (string * (Lockmgr.Manager.owner * Lockmgr.Mode.t) list) list
(** Database lock-table keys still held by some action. A quiesced world
    has released everything: audits assert this is empty. *)

val residual_actions : t -> string list
(** Actions that still have staged deltas or before-images on this shard
    — empty once every action has completed (committed or aborted). *)
