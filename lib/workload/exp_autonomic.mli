(** tab-autonomic: health-driven Exclude/Include of a browned store
    (docs/PROTOCOLS.md §16).

    The tab-brownout gray-failure regime pushed past what hedging can
    absorb: one of the two St stores browned out so harshly (per-message
    inflation probability 0.7) that a hedged backup copy to the same
    store draws the inflation too. The autonomic controller Excludes the
    sick store after its hysteresis window, returning steady-state
    commit latency to the no-fault baseline, and re-Includes it through
    the catch-up fence when the brownout heals mid-run. *)

type mode = Baseline | Unhedged | Hedged | Autonomic

type sample = {
  a_commits : int;
  a_p50 : float;
  a_p99 : float;
  a_steady_p99 : float;
      (** p99 over commits begun inside the steady-state window
          [200, 390] — after the exclusion settles, before the heal *)
  a_excludes : int;  (** metric [autonomic.excludes] *)
  a_includes : int;  (** metric [autonomic.includes] *)
  a_st_final : string list;  (** the object's St at end of run, sorted *)
  a_consistent : bool;
      (** every final-St member holds byte-identical committed state at
          the same version with no in-doubt intent-log entries *)
}

val episode :
  mode:mode -> prob:float -> commits:int -> seed:int64 -> unit -> sample
(** One run. [Baseline] has no fault but the autonomic knobs on;
    [Unhedged] / [Hedged] / [Autonomic] brown out t1 over [2, 400) with
    the given per-message probability. *)

val pins :
  ?prob:float ->
  ?commits:int ->
  ?seed:int64 ->
  unit ->
  sample * sample * sample
(** [(baseline, hedged, autonomic)] at the table's operating point —
    what test_autonomic.ml pins: autonomic steady-state p99 <= 1.3x
    baseline p99, hedged-only >= 2x baseline p99, and the healed store
    re-included with the consistency audit clean. *)

val run : unit -> Table.t
