(** The sharded naming tier: a {!Gvd} instance per naming node, a
    consistent-hash {!Shard_map} over object UIDs, and per-operation
    dispatch to the owning shard.

    Routing is client-side (pure hashing, no directory RPC), so a
    single-shard world issues exactly the message sequence of the seed's
    monolithic service. After an online {!rebalance}, requests routed by
    a stale map are healed by the shard-side [Moved] bounce: the router
    follows the hint, bounded, and retries the brief in-flight window of
    a migrating entry with a short pause. Wrappers never surface
    [Gvd.Moved] to callers — exhausted bounces degrade to [Refused]. *)

type t

val create :
  ?lock_timeout:float ->
  ?use_exclude_write:bool ->
  ?durable:bool ->
  ?service_time:float ->
  Action.Atomic.runtime ->
  nodes:Net.Network.node_id list ->
  t
(** [create art ~nodes] installs one database instance per naming node
    (parameters as {!Gvd.install}) and a version-1 map over all of them.
    The first node is the {e primary} — host of the multicast sequencer
    and the compatibility {!primary} handle. *)

val of_gvd : Action.Atomic.runtime -> Gvd.t -> t
(** Wrap an already-installed database instance as a single-shard router
    (e.g. a hand-built failover backup). *)

val map : t -> Shard_map.t
val primary : t -> Gvd.t
val gvds : t -> Gvd.t list
val shard_nodes : t -> Net.Network.node_id list
val migrating : t -> bool

(** {2 Shard-dispatched database operations}

    Same signatures and semantics as the {!Gvd} client stubs, plus
    routing. *)

val get_server :
  t -> act:Action.Atomic.t -> Store.Uid.t ->
  (Gvd.server_view Gvd.reply, Net.Rpc.error) result

val get_server_update :
  t -> act:Action.Atomic.t -> Store.Uid.t ->
  (Gvd.server_view Gvd.reply, Net.Rpc.error) result

val insert :
  t -> act:Action.Atomic.t -> uid:Store.Uid.t -> Net.Network.node_id ->
  (unit Gvd.reply, Net.Rpc.error) result

val remove :
  t -> act:Action.Atomic.t -> uid:Store.Uid.t -> Net.Network.node_id ->
  (unit Gvd.reply, Net.Rpc.error) result

val increment :
  t -> act:Action.Atomic.t -> uid:Store.Uid.t -> client:Net.Network.node_id ->
  Net.Network.node_id list -> (unit Gvd.reply, Net.Rpc.error) result

val decrement :
  t -> act:Action.Atomic.t -> uid:Store.Uid.t -> client:Net.Network.node_id ->
  Net.Network.node_id list -> (unit Gvd.reply, Net.Rpc.error) result

val zero_client :
  t -> act:Action.Atomic.t -> uid:Store.Uid.t -> client:Net.Network.node_id ->
  (unit Gvd.reply, Net.Rpc.error) result

val get_view :
  t -> act:Action.Atomic.t -> Store.Uid.t ->
  (Net.Network.node_id list Gvd.reply, Net.Rpc.error) result

val bind_batch :
  t ->
  act:Action.Atomic.t ->
  uid:Store.Uid.t ->
  client:Net.Network.node_id ->
  replicas:int ->
  credits:(Net.Network.node_id * int) list ->
  (Gvd.batch_view Gvd.reply, Net.Rpc.error) result
(** The single-round bind ({!Gvd.bind_batch}); uid-keyed, so the whole
    batch runs atomically on the one owning shard. *)

val get_view_snapshot :
  t -> from:Net.Network.node_id -> Store.Uid.t ->
  ((Net.Network.node_id list * int) Gvd.reply, Net.Rpc.error) result
(** Lock-free committed-snapshot read of [StA] (with entry version). *)

val get_server_snapshot :
  t -> from:Net.Network.node_id -> Store.Uid.t ->
  ((Gvd.server_view * int) Gvd.reply, Net.Rpc.error) result

val exclude :
  t -> act:Action.Atomic.t -> (Store.Uid.t * Net.Network.node_id list) list ->
  (unit Gvd.reply, Net.Rpc.error) result
(** Pairs are grouped by owning shard and excluded per shard. *)

val include_ :
  t -> act:Action.Atomic.t -> uid:Store.Uid.t -> Net.Network.node_id ->
  (Store.Version.t Gvd.reply, Net.Rpc.error) result

val note_version :
  t -> act:Action.Atomic.t -> uid:Store.Uid.t -> Store.Version.t ->
  (unit Gvd.reply, Net.Rpc.error) result

val get_view_commit :
  t -> from:Net.Network.node_id -> Store.Uid.t ->
  ((Net.Network.node_id list * int) Gvd.reply, Net.Rpc.error) result
(** Lock-free committed [StA] read with its {e St revision}, for the
    optimistic commit path ({!Gvd.get_view_commit}). *)

val validate_view :
  t -> act:Action.Atomic.t -> uid:Store.Uid.t ->
  version:Store.Version.t -> rev:int ->
  (bool Gvd.reply, Net.Rpc.error) result
(** Validate-and-note on the owning shard ({!Gvd.validate_view}). *)

val exclude_validated :
  t -> act:Action.Atomic.t -> uid:Store.Uid.t -> rev:int ->
  Net.Network.node_id ->
  ((bool * Store.Version.t) Gvd.reply, Net.Rpc.error) result
(** Optimistic single-node Exclude on the owning shard
    ({!Gvd.exclude_validated}). *)

val include_validated :
  t -> act:Action.Atomic.t -> uid:Store.Uid.t -> rev:int ->
  Net.Network.node_id ->
  ((bool * Store.Version.t) Gvd.reply, Net.Rpc.error) result
(** Optimistic Include on the owning shard ({!Gvd.include_validated}). *)

val retire_server_home :
  t -> act:Action.Atomic.t -> uid:Store.Uid.t -> Net.Network.node_id ->
  (unit Gvd.reply, Net.Rpc.error) result

val retire_store_home :
  t -> act:Action.Atomic.t -> uid:Store.Uid.t -> Net.Network.node_id ->
  (unit Gvd.reply, Net.Rpc.error) result

(** {2 Administrative and name-space operations} *)

val register_direct :
  t ->
  uid:Store.Uid.t ->
  name:string ->
  impl:string ->
  sv:Net.Network.node_id list ->
  st:Net.Network.node_id list ->
  unit
(** Setup-time registration, applied on the owning shard. *)

val lookup :
  t -> from:Net.Network.node_id -> string ->
  (Store.Uid.t option, Net.Rpc.error) result
(** Name resolution; scans shards in order (one RPC per shard visited). *)

val entry_info :
  t -> from:Net.Network.node_id -> Store.Uid.t ->
  (Gvd.entry_info option, Net.Rpc.error) result
(** Queries the owning shard first, the rest only as a migration-window
    fallback. *)

val stored_on :
  t -> from:Net.Network.node_id -> Net.Network.node_id ->
  (Store.Uid.t list, Net.Rpc.error) result
(** Union over all shards. *)

val served_by :
  t -> from:Net.Network.node_id -> Net.Network.node_id ->
  (Store.Uid.t list, Net.Rpc.error) result

(** {2 Introspection} (direct access; finds the shard actually holding
    the entry, which during a migration can differ from the map) *)

val current_sv : t -> Store.Uid.t -> Net.Network.node_id list
val current_st : t -> Store.Uid.t -> Net.Network.node_id list
val current_uses : t -> Store.Uid.t -> (Net.Network.node_id * Use_list.t) list
val quiescent : t -> Store.Uid.t -> bool
val committed_version : t -> Store.Uid.t -> Store.Version.t
val all_uids : t -> Store.Uid.t list

(** {2 Online shard-map changes} *)

val rebalance : t -> from:Net.Network.node_id -> Net.Network.node_id list -> unit
(** [rebalance t ~from nodes] moves to a map over [nodes] (each must be a
    naming node of this world) {e online}: every entry whose owner
    changes is handed off shard-to-shard without quiescing in-flight
    binds — lock-busy entries are retried until their actions drain, and
    requests racing a migration are healed by the [Moved] bounce. The
    map flips only after all entries have moved. Must run in a fiber on
    [from]. *)

val split : t -> from:Net.Network.node_id -> Net.Network.node_id -> unit
(** Add one naming node to the active map (a {!rebalance} growing the
    ring by one shard). *)

val reset_map : t -> Net.Network.node_id list -> unit
(** Setup-time only: point the map at a subset of the naming nodes before
    any object is registered. Raises if any shard already holds
    entries. *)
