lib/naming/reintegration.mli: Binder Net
