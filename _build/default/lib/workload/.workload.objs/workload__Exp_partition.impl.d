lib/workload/exp_partition.ml: Action Gvd Hashtbl List Naming Net Option Printf Replica Scheme Service Sim Store Table
