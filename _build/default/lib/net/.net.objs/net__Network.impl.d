lib/net/network.ml: Float Hashtbl List Printf Sim String
