type error = Unreachable | Crashed | Timed_out | No_service

let error_to_string = function
  | Unreachable -> "unreachable"
  | Crashed -> "crashed"
  | Timed_out -> "timed out"
  | No_service -> "no service"

let pp_error ppf e = Format.pp_print_string ppf (error_to_string e)

type ('req, 'resp) endpoint = {
  ep_name : string;
  inject_req : 'req -> Univ.t;
  project_req : Univ.t -> 'req option;
  inject_resp : 'resp -> Univ.t;
  project_resp : Univ.t -> 'resp option;
}

let endpoint name =
  let inject_req, project_req = Univ.embed () in
  let inject_resp, project_resp = Univ.embed () in
  { ep_name = name; inject_req; project_req; inject_resp; project_resp }

let endpoint_name ep = ep.ep_name

(* A raw handler receives the request payload and a [reply] callback. The
   reply callback transports the response back to the caller. *)
type raw_handler = Univ.t -> reply:(Univ.t -> unit) -> unit

type t = {
  net : Network.t;
  services : (Network.node_id * string, raw_handler) Hashtbl.t;
  default_timeout : float;
  mutable next_req : int;
  seen : (string, unit) Hashtbl.t;
  dedup_hooked : (Network.node_id, unit) Hashtbl.t;
  mutable shed : bool;
}

let create ?(default_timeout = 60.0) net =
  {
    net;
    services = Hashtbl.create 64;
    default_timeout;
    next_req = 0;
    seen = Hashtbl.create 64;
    dedup_hooked = Hashtbl.create 8;
    shed = false;
  }

let network t = t.net
let set_shed_expired t flag = t.shed <- flag
let shed_expired t = t.shed

(* At-most-once request guard. The fault plane can deliver a request twice
   (dup injection); replaying a non-idempotent handler — staging a second
   Increment in gvd.bind_batch, double-applying a merged Decrement — would
   corrupt counters. Each request carries a fresh id; the destination keeps
   a volatile seen-table (cleared when it crashes, like any in-memory dedup
   cache) and drops replays, counted as [rpc.dup_suppressed]. Activated
   only once a world installs message faults ([Network.faults_ever]), so
   fault-free worlds allocate and check nothing. *)
let dedup_key ~dst ~from rid =
  String.concat "\x00" [ dst; from; string_of_int rid ]

let hook_dedup_clear t dst =
  if not (Hashtbl.mem t.dedup_hooked dst) then begin
    Hashtbl.add t.dedup_hooked dst ();
    Network.on_crash t.net dst (fun () ->
        let prefix = dst ^ "\x00" in
        let plen = String.length prefix in
        let doomed =
          Hashtbl.fold
            (fun k () acc ->
              if String.length k >= plen && String.sub k 0 plen = prefix then
                k :: acc
              else acc)
            t.seen []
        in
        List.iter (Hashtbl.remove t.seen) doomed)
  end

(* Wrap a request-delivery thunk with the duplicate guard. Returns the
   thunk unchanged in fault-free worlds. *)
let guard_duplicate t ~from ~dst thunk =
  if not (Network.faults_ever t.net) then thunk
  else begin
    hook_dedup_clear t dst;
    let rid = t.next_req in
    t.next_req <- rid + 1;
    let key = dedup_key ~dst ~from rid in
    fun () ->
      if Hashtbl.mem t.seen key then begin
        Sim.Metrics.incr (Network.metrics t.net) "rpc.dup_suppressed";
        Sim.Trace.recordf (Network.trace t.net)
          ~now:(Sim.Engine.now (Network.engine t.net))
          ~tag:"rpc" "dup suppressed %s->%s" from dst
      end
      else begin
        Hashtbl.add t.seen key ();
        thunk ()
      end
  end

let serve t ~node ep h =
  let raw payload ~reply =
    match ep.project_req payload with
    | None ->
        failwith
          (Printf.sprintf "Rpc.serve: payload type mismatch on %s@%s"
             ep.ep_name node)
    | Some req -> reply (ep.inject_resp (h req))
  in
  Hashtbl.replace t.services (node, ep.ep_name) raw

let withdraw t ~node ep = Hashtbl.remove t.services (node, ep.ep_name)

let serving t ~node ep = Hashtbl.mem t.services (node, ep.ep_name)

let record t fmt =
  Sim.Trace.recordf (Network.trace t.net)
    ~now:(Sim.Engine.now (Network.engine t.net))
    ~tag:"rpc" fmt

let call_gen t ~from ~dst ?cancelled ?timeout ?deadline_at ep req =
  let eng = Network.engine t.net in
  let start = Sim.Engine.now eng in
  Sim.Metrics.incr (Network.metrics t.net) "rpc.calls";
  (* Per-operation round counter: lets tests and experiments assert how
     many network rounds a protocol step costs (e.g. a batched bind is
     exactly one "rpc.op.gvd.bind_batch" tick). *)
  Sim.Metrics.incr (Network.metrics t.net) ("rpc.op." ^ ep.ep_name);
  if not (Network.reachable t.net from dst) then begin
    (* The callee is already known-dead (or unreachable): the failure
       detector answers after one detection latency. *)
    Sim.Engine.sleep eng (Network.sample_latency t.net);
    record t "%s: %s.%s -> unreachable" from dst ep.ep_name;
    Sim.Metrics.incr (Network.metrics t.net) "rpc.unreachable";
    Health.note_failure (Network.health t.net) ~dst ~now:(Sim.Engine.now eng);
    Error Unreachable
  end
  else begin
    let watch_ref = ref None in
    let register resume =
      let finish r =
        (match !watch_ref with
        | Some w -> Network.unwatch t.net dst w
        | None -> ());
        resume (Ok r)
      in
      watch_ref := Some (Network.watch_crash t.net dst (fun () -> finish (Error Crashed)));
      Network.send t.net ~src:from ~dst
        (guard_duplicate t ~from ~dst (fun () ->
             (* Deadline propagation: the caller's deadline rides in the
                request metadata. If the initiator has already given up by
                the time the request is unpacked, running the handler is
                pure waste — a shedding server answers [Timed_out] at once
                instead of holding locks for a doomed round. Knob-gated:
                with [shed] off the deadline is carried but never acted
                on, so the off path is byte-identical. *)
             (* Cooperative hedge cancellation: if the race this copy
                belongs to has already settled, the delivery is dropped
                before the handler runs — indistinguishable from a lost
                message, which the protocols already tolerate. This is
                what keeps hedging safe around 2PC ordering: without it a
                slow losing prepare could arrive AFTER the backup's round
                committed and re-stage a ghost intent for a finished
                action. *)
             let dead =
               match cancelled with Some f -> f () | None -> false
             in
             let expired =
               match deadline_at with
               | Some d -> t.shed && Sim.Engine.now eng > d
               | None -> false
             in
             if dead then begin
               Sim.Metrics.incr (Network.metrics t.net) "rpc.hedge_cancelled";
               record t "%s: dropped cancelled hedge copy %s.%s" dst from
                 ep.ep_name;
               Network.send t.net ~src:dst ~dst:from (fun () ->
                   finish (Error Timed_out))
             end
             else if expired then begin
               Sim.Metrics.incr (Network.metrics t.net) "retry.shed_expired";
               record t "%s: shed expired call %s.%s" dst from ep.ep_name;
               Network.send t.net ~src:dst ~dst:from (fun () ->
                   finish (Error Timed_out))
             end
             else
               match Hashtbl.find_opt t.services (dst, ep.ep_name) with
               | None ->
                   Network.send t.net ~src:dst ~dst:from (fun () ->
                       finish (Error No_service))
               | Some raw ->
                   raw (ep.inject_req req) ~reply:(fun resp_payload ->
                       Network.send t.net ~src:dst ~dst:from (fun () ->
                           match ep.project_resp resp_payload with
                           | Some resp -> finish (Ok resp)
                           | None ->
                               failwith
                                 (Printf.sprintf
                                    "Rpc.call: response type mismatch on %s"
                                    ep.ep_name)))))
    in
    let dt = match timeout with Some dt -> dt | None -> t.default_timeout in
    let outcome =
      match Sim.Engine.timeout eng dt register with
      | Ok r -> r
      | Error _ -> Error Timed_out
    in
    (* Latency-health feed: every completed round trip teaches the health
       plane how [dst] is doing. Pure arithmetic — no draws, no events —
       so it is always on. *)
    let now = Sim.Engine.now eng in
    (match outcome with
    | Ok _ ->
        Health.note_ok (Network.health t.net) ~dst ~now ~latency:(now -. start)
    | Error e ->
        (match e with
        | No_service -> ()
        | Unreachable | Crashed | Timed_out ->
            Health.note_failure (Network.health t.net) ~dst ~now);
        record t "%s: %s.%s -> %s" from dst ep.ep_name (error_to_string e);
        Sim.Metrics.incr (Network.metrics t.net)
          ("rpc." ^ String.map (function ' ' -> '_' | c -> c) (error_to_string e)));
    outcome
  end

let call t ~from ~dst ?timeout ?deadline_at ep req =
  call_gen t ~from ~dst ?timeout ?deadline_at ep req

(* Hedged call: give the primary a head start derived from fleet-healthy
   latency; if it has not answered by then, race a backup and take the
   first [Ok]. The backup targets [alt] when given (a sibling replica) or
   re-sends to the same destination (per-message brownout inflation makes
   even a same-node retry a fresh latency draw). A duplicate delivery can
   run the handler twice — each hedge carries a fresh request id, below the
   dedup guard — so only idempotent operations may be hedged; and once the
   race settles, copies still in flight are cancelled cooperatively at
   delivery (the [cancelled] probe above), so a slow loser can never run
   the handler after the winner's round already moved the protocol on. *)
type hedge = { hedge_floor : float }

let hedge ?(floor = 4.0) () = { hedge_floor = floor }

let call_hedged t ~from ~dst ?alt ?(keep_primary = false) ?alt_won ?timeout
    ?deadline_at ~hedge ep req =
  let eng = Network.engine t.net in
  let backup_dst = match alt with Some a -> a | None -> dst in
  let delay =
    Health.hedge_delay ~floor:hedge.hedge_floor (Network.health t.net)
  in
  let iv = Sim.Ivar.create () in
  let launched = ref 0 in
  let outstanding = ref 0 in
  let group = Sim.Engine.self_group eng in
  let settle ~backup r =
    match r with
    | Ok _ ->
        if Sim.Ivar.try_fill iv r then
          if backup && alt <> None then begin
            Sim.Metrics.incr (Network.metrics t.net) "rpc.sibling_wins";
            match alt_won with Some flag -> flag := true | None -> ()
          end
    | Error _ ->
        decr outstanding;
        (* Keep the last error only once no copy can still answer. *)
        if !outstanding = 0 && !launched = 2 then
          ignore (Sim.Ivar.try_fill iv r)
  in
  let cancelled () = Sim.Ivar.is_filled iv in
  (* [keep_primary] exempts the primary copy from cooperative
     cancellation: a phase-2 decision hedged to a sibling must STILL be
     delivered to (and applied by) the primary store — the sibling's
     quick answer only lets the gather stop waiting; it does not make the
     primary's copy of the decision redundant, because the sibling
     resolves its own intent, not the primary's. Dropping the primary's
     copy would strand its prepared intent until a crash-recovery
     decision query that a merely-slow (never crashed) store never
     issues. Prepare-phase hedges keep the default cancel-both
     behaviour: an unapplied prepare on the primary is harmless (the
     caller counts the leg failed and §4.2-excludes the store for this
     action). *)
  let primary_cancelled = if keep_primary then None else Some cancelled in
  incr launched;
  incr outstanding;
  Sim.Engine.spawn eng ~group ~name:("rpc.hedge." ^ ep.ep_name) (fun () ->
      settle ~backup:false
        (call_gen t ~from ~dst ?cancelled:primary_cancelled ?timeout
           ?deadline_at ep req));
  Sim.Engine.schedule eng ~delay (fun () ->
      incr launched;
      (* Before this point [settle] can only have filled the ivar with an
         [Ok] (errors wait for launched = 2), so a filled ivar means the
         primary won and the backup that never fires costs nothing. An
         unfilled ivar means the primary is still in flight — or already
         failed, in which case the backup doubles as a straight retry. *)
      if not (Sim.Ivar.is_filled iv) then begin
        incr outstanding;
        Sim.Metrics.incr (Network.metrics t.net) "rpc.hedges";
        Sim.Engine.spawn eng ~group
          ~name:("rpc.hedge.backup." ^ ep.ep_name)
          (fun () ->
            settle ~backup:true
              (call_gen t ~from ~dst:backup_dst ~cancelled ?timeout
                 ?deadline_at ep req))
      end);
  Sim.Ivar.read eng iv

let call_all t ~from ?timeout ?hedge ?deadline_at ep reqs =
  (match reqs with
  | [] | [ _ ] -> ()
  | _ ->
      Sim.Metrics.incr (Network.metrics t.net) "rpc.scatters";
      Sim.Metrics.incr (Network.metrics t.net) ~by:(List.length reqs)
        "rpc.scatter_calls");
  match hedge with
  | None ->
      Sim.Join.all (Network.engine t.net)
        (List.map
           (fun (dst, req) () ->
             (dst, call t ~from ~dst ?timeout ?deadline_at ep req))
           reqs)
  | Some h ->
      Sim.Join.all (Network.engine t.net)
        (List.map
           (fun (dst, req) () ->
             (dst, call_hedged t ~from ~dst ?timeout ?deadline_at ~hedge:h ep req))
           reqs)

let notify t ~from ~dst ep req =
  Sim.Metrics.incr (Network.metrics t.net) "rpc.notifies";
  if Network.reachable t.net from dst then
    Network.send t.net ~src:from ~dst
      (guard_duplicate t ~from ~dst (fun () ->
           match Hashtbl.find_opt t.services (dst, ep.ep_name) with
           | None -> ()
           | Some raw -> raw (ep.inject_req req) ~reply:(fun _ -> ())))
