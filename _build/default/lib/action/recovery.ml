let resolve_in_doubt rt ~node ?(retry_delay = 2.0) () =
  let sh = Atomic.store_host rt in
  let eng = Atomic.engine rt in
  let log = Store_host.log sh node in
  let net = Atomic.network rt in
  let tracef fmt =
    Sim.Trace.recordf (Net.Network.trace net) ~now:(Sim.Engine.now eng)
      ~tag:"recovery" fmt
  in
  let apply action =
    match Store.Intent_log.prepared log ~action with
    | None -> ()
    | Some { Store.Intent_log.coordinator; _ } -> (
        let rec ask () =
          match Atomic.query_decision rt ~from:node ~coordinator ~action with
          | Ok Atomic.D_commit ->
              tracef "%s: in-doubt %s -> commit" node action;
              (* Apply through the local commit path (idempotent). *)
              (match
                 Store_host.commit sh ~from:node ~store:node ~action
               with
              | Ok () -> ()
              | Error _ ->
                  (* Local call can only fail if we crashed again;
                     the next recovery will retry. *)
                  ())
          | Ok (Atomic.D_abort | Atomic.D_unknown) ->
              tracef "%s: in-doubt %s -> presumed abort" node action;
              Store.Intent_log.resolve log ~action
          | Ok Atomic.D_active ->
              Sim.Engine.sleep eng retry_delay;
              ask ()
          | Error _ ->
              Sim.Engine.sleep eng retry_delay;
              ask ()
        in
        ask ())
  in
  let rec drain () =
    match Store.Intent_log.in_doubt log with
    | [] -> ()
    | actions ->
        List.iter apply actions;
        drain ()
  in
  drain ()

let attach rt ~node =
  Net.Network.on_recover (Atomic.network rt) node (fun () ->
      resolve_in_doubt rt ~node ())

let guard_prepares rt =
  let sh = Atomic.store_host rt in
  let net = Atomic.network rt in
  let eng = Atomic.engine rt in
  Store_host.set_prepare_hook sh (fun ~node ~action ~coordinator ->
      ignore
        (Net.Network.watch_crash net coordinator (fun () ->
             Net.Network.spawn_on net node
               ~name:(Printf.sprintf "%s.indoubt:%s" node action) (fun () ->
                 let log = Store_host.log sh node in
                 let rec settle tries =
                   match Store.Intent_log.prepared log ~action with
                   | None -> () (* resolved through the normal path *)
                   | Some _ -> (
                       match
                         Atomic.query_decision rt ~from:node ~coordinator ~action
                       with
                       | Ok Atomic.D_commit ->
                           ignore
                             (Store_host.commit sh ~from:node ~store:node ~action)
                       | Ok (Atomic.D_abort | Atomic.D_unknown) ->
                           Store.Intent_log.resolve log ~action
                       | Ok Atomic.D_active | Error _ ->
                           if tries = 0 then
                             (* The coordinator never came back: presume
                                abort rather than reserve the object
                                forever. *)
                             Store.Intent_log.resolve log ~action
                           else begin
                             Sim.Engine.sleep eng 5.0;
                             settle (tries - 1)
                           end)
                 in
                 settle 100))))
