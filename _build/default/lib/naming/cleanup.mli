(** Use-list cleanup protocol (§4.1.3).

    Under the independent and nested-top-level schemes a client crash does
    not undo its [Increment]s: orphaned counters keep the object
    non-quiescent forever, blocking [Insert] (server reintegration) and
    misdirecting later binds. The paper sketches the repair: the Object
    Server database periodically checks whether its clients are
    functioning and updates the use lists when crashes are detected.

    The daemon runs as a fiber on the service node; each sweep inspects
    every entry's use lists and, for every client the failure detector
    reports down, runs a top-level action executing [zero_client]. *)

val start :
  Gvd.t -> ?period:float -> Action.Atomic.runtime -> unit
(** [start gvd art] launches the sweeping daemon (default [period]
    10.0). Orphans removed are counted in the [cleanup.orphans] metric. *)

val sweep_now : Gvd.t -> Action.Atomic.runtime -> int
(** One synchronous sweep (from a fiber on the service node); returns the
    number of orphaned client records removed. *)
