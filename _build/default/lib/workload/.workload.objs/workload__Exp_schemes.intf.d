lib/workload/exp_schemes.mli: Naming Table
