type t = { p_node : Net.Network.node_id }

let net srv = Action.Atomic.network (Server.atomic_runtime srv)
let eng srv = Action.Atomic.engine (Server.atomic_runtime srv)

(* Quiescent-since bookkeeping lives in the daemon, not the instance: a
   fresh sweep observing a quiescent instance stamps it; a later sweep
   passivates it if it stayed quiescent past the grace period. Any
   non-quiescent observation clears the stamp. *)
let sweep srv ~node ~idle_after stamps =
  let now = Sim.Engine.now (eng srv) in
  let passivated = ref 0 in
  List.iter
    (fun uid ->
      let key = Store.Uid.to_string uid in
      match Server.quiescent srv ~from:node ~server:node ~uid with
      | Ok true -> (
          match Hashtbl.find_opt stamps key with
          | None -> Hashtbl.replace stamps key now
          | Some since when now -. since >= idle_after -> (
              match Server.passivate srv ~from:node ~server:node ~uid with
              | Ok true ->
                  incr passivated;
                  Hashtbl.remove stamps key;
                  Sim.Metrics.incr
                    (Net.Network.metrics (net srv))
                    "server.auto_passivations"
              | Ok false | Error _ -> ())
          | Some _ -> ())
      | Ok false | Error _ -> Hashtbl.remove stamps key)
    (Server.local_instances srv ~node);
  !passivated

let sweep_now srv ~node ~idle_after =
  (* Immediate sweep: pretend every instance was first observed quiescent
     [idle_after] ago, so currently-quiescent ones passivate right away. *)
  let stamps = Hashtbl.create 8 in
  let backdated = Sim.Engine.now (eng srv) -. idle_after in
  List.iter
    (fun uid -> Hashtbl.replace stamps (Store.Uid.to_string uid) backdated)
    (Server.local_instances srv ~node);
  sweep srv ~node ~idle_after stamps

let start srv ~node ?(period = 20.0) ?(idle_after = 30.0) () =
  let stamps = Hashtbl.create 8 in
  Net.Network.spawn_on (net srv) node ~name:(node ^ ".passivator") (fun () ->
      let rec loop () =
        Sim.Engine.sleep (eng srv) period;
        ignore (sweep srv ~node ~idle_after stamps : int);
        loop ()
      in
      loop ());
  { p_node = node }
