(* The chaos plumbing: message-level fault primitives, the unified
   Net.Retry policy engine, and duplicate-delivery idempotence of the
   naming protocols. *)

open Naming

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Net.Retry *)

(* A bare world big enough to run retry loops in a fiber. *)
let retry_world ?(seed = 5L) () =
  let eng = Sim.Engine.create ~seed () in
  let net = Net.Network.create eng in
  List.iter (Net.Network.add_node net) [ "a"; "b" ];
  (eng, net, Net.Retry.create net)

let test_retry_deadline () =
  let eng, net, r = retry_world () in
  let calls = ref 0 in
  let finished_at = ref nan in
  Net.Network.spawn_on net "a" (fun () ->
      let deadline_at = Sim.Engine.now eng +. 5.0 in
      let out =
        Net.Retry.run r ~deadline_at ~op:"test.deadline"
          (Net.Retry.policy ~attempts:50 ~base:1.0 ~factor:2.0 ~jitter:0.0 ())
          (fun () ->
            incr calls;
            Error "never")
      in
      check_bool "gives up" true (Result.is_error out);
      finished_at := Sim.Engine.now eng);
  Sim.Engine.run eng;
  check_bool "stopped before the deadline" true (!finished_at < 5.0);
  check_bool "made progress first" true (!calls > 1);
  check_bool "counted as deadline exhaustion" true
    (Sim.Metrics.counter (Net.Network.metrics net) "retry.deadline_exhausted"
    >= 1)

let test_retry_budget () =
  let eng, net, r = retry_world () in
  Net.Network.spawn_on net "a" (fun () ->
      let out =
        Net.Retry.run r ~op:"test.budget"
          (Net.Retry.policy ~attempts:50 ~base:1.0 ~factor:2.0 ~jitter:0.0
             ~budget:6.0 ())
          (fun () -> Error "never")
      in
      check_bool "budget bounds the loop" true (Result.is_error out);
      check_bool "within budget" true (Sim.Engine.now eng <= 6.0));
  Sim.Engine.run eng

(* The backoff schedule (jitter included) is a pure function of the world
   seed: two worlds with the same seed retry at identical virtual times;
   a different seed jitters differently. *)
let backoff_schedule ~seed =
  let eng, net, r = retry_world ~seed () in
  let stamps = ref [] in
  Net.Network.spawn_on net "a" (fun () ->
      ignore
        (Net.Retry.run r ~op:"test.jitter"
           (Net.Retry.policy ~attempts:8 ~base:1.0 ~factor:1.7 ~jitter:0.4 ())
           (fun () ->
             stamps := Sim.Engine.now eng :: !stamps;
             Error "never")));
  Sim.Engine.run eng;
  List.rev !stamps

let test_retry_jitter_deterministic () =
  let a = backoff_schedule ~seed:42L in
  let b = backoff_schedule ~seed:42L in
  let c = backoff_schedule ~seed:43L in
  check_bool "same seed, same schedule" true (a = b);
  check_bool "schedule actually jitters" true
    (List.exists (fun t -> Float.rem t 1.0 <> 0.0) a);
  check_bool "different seed, different schedule" true (a <> c)

let test_retry_breaker () =
  let eng, net, r = retry_world () in
  let m = Net.Network.metrics net in
  Net.Network.spawn_on net "a" (fun () ->
      (* Three consecutive failures open the breaker for dst "b". *)
      ignore
        (Net.Retry.run r ~dst:"b" ~op:"test.breaker"
           (Net.Retry.policy ~attempts:3 ~base:1.0 ~factor:1.0 ~jitter:0.0 ())
           (fun () -> Error "down"));
      check_bool "breaker open after threshold" true (Net.Retry.breaker_open r "b");
      check_int "one open event" 1 (Sim.Metrics.counter m "retry.breaker_opens");
      (* While open, attempts are shed: the body is not invoked. The
         cooldown is 8.0, the backoff below crosses it, and the half-open
         probe then executes the body; success closes the breaker. *)
      let invocations = ref 0 in
      let out =
        Net.Retry.run r ~dst:"b" ~op:"test.breaker"
          (Net.Retry.policy ~attempts:8 ~base:4.0 ~factor:1.0 ~jitter:0.0 ())
          (fun () ->
            incr invocations;
            Ok ())
      in
      check_bool "eventually succeeds" true (Result.is_ok out);
      check_int "only the half-open probe executed" 1 !invocations;
      check_bool "sheds were counted" true
        (Sim.Metrics.counter m "retry.sheds" >= 2);
      check_bool "breaker closed by probe success" false
        (Net.Retry.breaker_open r "b"));
  Sim.Engine.run eng

let test_retry_sheds_down_node () =
  let eng, net, r = retry_world () in
  Net.Network.crash net "b";
  Net.Network.spawn_on net "a" (fun () ->
      let invocations = ref 0 in
      ignore
        (Net.Retry.run r ~dst:"b" ~op:"test.shed"
           (Net.Retry.policy ~attempts:4 ~base:1.0 ~jitter:0.0 ())
           (fun () ->
             incr invocations;
             Error "unreachable"));
      check_int "never sends into a known-dead node" 0 !invocations;
      check_int "all attempts shed" 4
        (Sim.Metrics.counter (Net.Network.metrics net) "retry.sheds"));
  Sim.Engine.run eng

(* ------------------------------------------------------------------ *)
(* Message-level fault primitives *)

(* Fire [n] one-way RPCs across a faulty link; return (answered, metrics). *)
let rpc_burst ~seed ~faults n =
  let eng = Sim.Engine.create ~seed () in
  let net = Net.Network.create eng in
  List.iter (Net.Network.add_node net) [ "src"; "dst" ];
  let rpc = Net.Rpc.create net in
  let ep : (int, int) Net.Rpc.endpoint = Net.Rpc.endpoint "burst" in
  let served = ref 0 in
  Net.Rpc.serve rpc ~node:"dst" ep (fun v ->
      incr served;
      v * 2);
  faults net;
  let answered = ref 0 in
  Net.Network.spawn_on net "src" (fun () ->
      for i = 1 to n do
        match Net.Rpc.call rpc ~from:"src" ~dst:"dst" ep i with
        | Ok _ -> incr answered
        | Error _ -> ()
      done);
  Sim.Engine.run eng;
  (!answered, !served, Net.Network.metrics net)

let test_fault_drop_deterministic () =
  let run seed =
    rpc_burst ~seed 60 ~faults:(fun net ->
        Net.Network.set_link_fault net ~drop:0.3 ~src:"src" ~dst:"dst" ())
  in
  let a1, s1, m1 = run 7L in
  let a2, s2, m2 = run 7L in
  let drops seed_metrics = Sim.Metrics.counter seed_metrics "fault.drop" in
  check_bool "some requests dropped" true (drops m1 > 0);
  check_bool "some requests survived" true (a1 > 0);
  check_int "same seed, same answered" a1 a2;
  check_int "same seed, same served" s1 s2;
  check_int "same seed, same drop count" (drops m1) (drops m2);
  let a3, _, m3 = run 8L in
  check_bool "different seed, different outcome" true
    (a3 <> a1 || drops m3 <> drops m1)

let test_fault_dup_suppressed () =
  let answered, served, m =
    rpc_burst ~seed:7L 40 ~faults:(fun net ->
        Net.Network.set_link_fault net ~dup:0.5 ~src:"src" ~dst:"dst" ())
  in
  check_int "duplicates never reach the handler twice" answered served;
  check_bool "duplicates were injected" true
    (Sim.Metrics.counter m "fault.dup" > 0);
  check_bool "and suppressed by the rpc dedup" true
    (Sim.Metrics.counter m "rpc.dup_suppressed" > 0)

let test_fault_oneway_cut () =
  let eng = Sim.Engine.create ~seed:3L () in
  let net = Net.Network.create eng in
  List.iter (Net.Network.add_node net) [ "src"; "dst" ];
  Net.Network.set_oneway_cut net ~src:"src" ~dst:"dst" true;
  check_bool "forward direction cut" false (Net.Network.reachable net "src" "dst");
  check_bool "reverse direction healthy" true (Net.Network.reachable net "dst" "src");
  Net.Network.clear_all_faults net;
  check_bool "heal restores the link" true (Net.Network.reachable net "src" "dst")

let test_fault_spike_delays () =
  let eng = Sim.Engine.create ~seed:11L () in
  let net = Net.Network.create eng in
  List.iter (Net.Network.add_node net) [ "src"; "dst" ];
  let rpc = Net.Rpc.create net in
  let ep : (unit, unit) Net.Rpc.endpoint = Net.Rpc.endpoint "ping" in
  Net.Rpc.serve rpc ~node:"dst" ep (fun () -> ());
  Net.Network.set_link_fault net ~spike_prob:1.0 ~spike:50.0 ~src:"src"
    ~dst:"dst" ();
  let rtt = ref 0.0 in
  Net.Network.spawn_on net "src" (fun () ->
      let t0 = Sim.Engine.now eng in
      ignore (Net.Rpc.call rpc ~from:"src" ~dst:"dst" ep ());
      rtt := Sim.Engine.now eng -. t0);
  Sim.Engine.run eng;
  check_bool "spike visibly delays the request" true (!rtt >= 50.0);
  check_bool "spikes counted" true
    (Sim.Metrics.counter (Net.Network.metrics net) "fault.delay" > 0)

(* ------------------------------------------------------------------ *)
(* Duplicate-delivery idempotence of the naming protocols: with the
   client->gvd link duplicating every message, bind_batch increments and
   the merged Decrement flush must still apply exactly once. *)

let dup_world () =
  let w =
    Service.create ~seed:17L
      {
        Service.gvd_node = "ns";
        gvd_nodes = [];
        server_nodes = [ "s1"; "s2" ];
        store_nodes = [ "t1" ];
        client_nodes = [ "c1" ];
      }
  in
  let uid =
    Service.create_object w ~name:"obj" ~impl:"counter" ~sv:[ "s1"; "s2" ]
      ~st:[ "t1" ] ()
  in
  Service.run ~until:1.0 w;
  (* Everything the client says to the database arrives twice. *)
  Net.Network.set_link_fault (Service.network w) ~dup:1.0 ~src:"c1" ~dst:"ns" ();
  (w, uid)

let test_dup_bind_idempotent () =
  let w, uid = dup_world () in
  let commits = ref 0 in
  Service.spawn_client w "c1" (fun () ->
      for _ = 1 to 3 do
        match
          Service.with_bound w ~client:"c1" ~scheme:Scheme.Independent
            ~policy:(Replica.Policy.Active 2) ~uid (fun act group ->
              ignore (Service.invoke w group ~act "add 5"))
        with
        | Ok () -> incr commits
        | Error _ -> ()
      done);
  Service.run w;
  let m = Service.metrics w in
  check_int "all actions committed" 3 !commits;
  check_bool "duplicates were delivered" true
    (Sim.Metrics.counter m "rpc.dup_suppressed" > 0);
  (* Idempotence, externally observed: every duplicated increment and
     merged decrement netted out — the use list is quiescent and the
     consolidated audit finds nothing. *)
  check_bool "use list quiescent" true (Gvd.quiescent (Service.gvd w) uid);
  Alcotest.(check (list string)) "audit clean" [] (Workload.Audit.chaos w);
  let payload =
    match
      Store.Object_store.read
        (Action.Store_host.objects (Service.store_host w) "t1")
        uid
    with
    | Some s -> s.Store.Object_state.payload
    | None -> "<missing>"
  in
  Alcotest.(check string) "adds applied exactly once each" "15" payload

let test_dup_decrement_flush_idempotent () =
  let w, uid = dup_world () in
  (* Two quick binds inside one flush window, so their Use_delta credits
     coalesce into a single merged Decrement — which the link then
     duplicates. *)
  Service.spawn_client w "c1" (fun () ->
      for _ = 1 to 2 do
        ignore
          (Service.with_bound w ~client:"c1" ~scheme:Scheme.Independent
             ~policy:Replica.Policy.Single_copy_passive ~uid
             (fun act group -> ignore (Service.invoke w group ~act "add 1")))
      done);
  Service.run w;
  let m = Service.metrics w in
  check_bool "flush ran" true (Sim.Metrics.counter m "bind.flushes" > 0);
  check_bool "duplicates were delivered" true
    (Sim.Metrics.counter m "rpc.dup_suppressed" > 0);
  check_bool "use list quiescent after merged decrement" true
    (Gvd.quiescent (Service.gvd w) uid);
  Alcotest.(check (list string)) "audit clean" [] (Workload.Audit.chaos w)

(* ------------------------------------------------------------------ *)
(* The chaos harness itself *)

let test_chaos_schedule_deterministic () =
  let show events =
    String.concat "; "
      (List.map (Format.asprintf "%a" Workload.Exp_chaos.pp_event) events)
  in
  let a = Workload.Exp_chaos.gen_events ~seed:99L () in
  let b = Workload.Exp_chaos.gen_events ~seed:99L () in
  let c = Workload.Exp_chaos.gen_events ~seed:100L () in
  Alcotest.(check string) "same seed, same schedule" (show a) (show b);
  check_bool "different seed, different schedule" true (show a <> show c)

let test_chaos_outcome_replayable () =
  let seed = 53L in
  let events = Workload.Exp_chaos.gen_events ~seed () in
  let o1 = Workload.Exp_chaos.run_world ~seed ~events () in
  let o2 = Workload.Exp_chaos.run_world ~seed ~events () in
  check_int "same commits" o1.Workload.Exp_chaos.oc_commits
    o2.Workload.Exp_chaos.oc_commits;
  check_int "same retries" o1.Workload.Exp_chaos.oc_retries
    o2.Workload.Exp_chaos.oc_retries;
  check_int "same faults" o1.Workload.Exp_chaos.oc_faults
    o2.Workload.Exp_chaos.oc_faults;
  Alcotest.(check (list string))
    "same violations" o1.Workload.Exp_chaos.oc_violations
    o2.Workload.Exp_chaos.oc_violations

let suite =
  let tc = Alcotest.test_case in
  [
    ( "chaos.retry",
      [
        tc "deadline exhaustion" `Quick test_retry_deadline;
        tc "budget exhaustion" `Quick test_retry_budget;
        tc "jitter deterministic per seed" `Quick test_retry_jitter_deterministic;
        tc "breaker open and half-open" `Quick test_retry_breaker;
        tc "sheds to down nodes" `Quick test_retry_sheds_down_node;
      ] );
    ( "chaos.faults",
      [
        tc "drop deterministic per seed" `Quick test_fault_drop_deterministic;
        tc "dup suppressed by rpc dedup" `Quick test_fault_dup_suppressed;
        tc "one-way cut is asymmetric" `Quick test_fault_oneway_cut;
        tc "delay spikes" `Quick test_fault_spike_delays;
      ] );
    ( "chaos.idempotence",
      [
        tc "bind_batch under duplication" `Quick test_dup_bind_idempotent;
        tc "merged decrement under duplication" `Quick
          test_dup_decrement_flush_idempotent;
      ] );
    ( "chaos.harness",
      [
        tc "schedule deterministic" `Quick test_chaos_schedule_deterministic;
        tc "outcome replayable" `Quick test_chaos_outcome_replayable;
      ] );
  ]
