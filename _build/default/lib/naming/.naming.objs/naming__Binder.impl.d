lib/naming/binder.ml: Action Format Gvd List Net Replica Scheme Sim Store Use_list
