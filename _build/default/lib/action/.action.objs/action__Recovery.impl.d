lib/action/recovery.ml: Atomic List Net Printf Sim Store Store_host
