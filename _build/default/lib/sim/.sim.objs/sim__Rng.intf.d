lib/sim/rng.mli:
