lib/store/object_state.mli: Format Version
