lib/net/multicast.ml: Hashtbl List Network Printf Rpc Sim Univ
