(** Coordinator-side group commit: concurrent 2PC copy-backs whose store
    sets overlap merge into one batch that pays one prepare scatter and
    one phase-2 scatter per store ({!Action.Store_host.prepare_batch} /
    [commit_batch]), with the store's acked-version floors piggybacked on
    the batched phase-2 acks ({!Oplog.note_store}).

    Batches close on a window ({!set_window}) with quiescence-pull: the
    window ends early as soon as no commit that could still join is in
    flight. Everything transactional stays per action — a member refused
    at any store is peeled out for a solo retry; its batchmates are
    unaffected. With the window at [0.0] (the default) the plane is
    {!enabled}[ = false] and {!Commit.attach} never calls in here, so the
    off path is byte-identical to the unbatched tree. *)

type t

val create :
  engine:Sim.Engine.t ->
  store_host:Action.Store_host.t ->
  metrics:Sim.Metrics.t ->
  Oplog.t ->
  t
(** One plane per {!Server.runtime}, created with the window at [0.0]. *)

val window : t -> float

val set_window : t -> float -> unit
(** The batch window in simulated time; [0.0] disables the plane. *)

val enabled : t -> bool

val hedged : t -> bool

val set_hedged : t -> bool -> unit
(** Hedge every store scatter this plane issues (solo and batched prepare,
    phase-2 commit/abort) with a health-delayed backup copy
    ({!Net.Rpc.call_all}'s [?hedge]) — safe because every one of them is
    idempotent at the store. Mirrors {!Server.set_hedged_rpc}; default
    off, and off is byte-identical. *)

(** {2 Phase 1} *)

type token
(** A commit known to be approaching its prepare. While any token is
    outstanding, open batches hold for it (up to their window). *)

val enter : t -> token
(** Commit processing started for some action: open batches may no longer
    quiesce-close until the token arrives ({!prepare}) or leaves. *)

val leave : t -> token -> unit
(** The commit is no longer approaching — it prepared, aborted early, or
    turned out read-only. Idempotent; {!prepare} settles its own token. *)

val prepare :
  t ->
  token ->
  ?alt_of:(Net.Network.node_id -> Net.Network.node_id option) ->
  client:Net.Network.node_id ->
  action:string ->
  (Net.Network.node_id * (Store.Uid.t * Action.Store_host.write) list) list ->
  (Net.Network.node_id * (Action.Store_host.vote, Net.Rpc.error) result) list
(** Join (or open and lead) a batch and return this member's per-store
    votes, shaped exactly like {!Action.Store_host.prepare_each}'s
    result. Suspends up to the window (plus an orphan grace if the batch
    leader died). A multi-member batch vote short of all-yes re-runs the
    solo prepare and returns its verdict instead (peel-out). Must run in
    a fiber on [client].

    [alt_of] is the member's sibling-hedge map
    ({!Action.Store_host.prepare_each}). It applies only to the scatters
    issued on this member's own behalf — the singleton-batch solo
    prepare, the peel-out retry and the orphan fallback; batched
    prepares never alt-route (see
    {!Action.Store_host.prepare_batch}). *)

(** {2 Phase 2} *)

val expect_phase2 : t -> unit
(** Register a sealed commit whose phase 2 is still to come: phase-2
    batches hold their window open for every registration until it
    settles through {!commit_batched} or {!abort_batched}. *)

val commit_batched :
  t ->
  ?alt_of:(Net.Network.node_id -> Net.Network.node_id option) ->
  client:Net.Network.node_id ->
  stores:Net.Network.node_id list ->
  string ->
  (Net.Network.node_id * (unit, Net.Rpc.error) result) list
(** Batched phase-2 commit, shaped like {!Action.Store_host.commit_all}'s
    result. The batch leader folds the floors piggybacked on each store's
    ack into the shared per-(store,object) floor before distributing
    acks. Must run in a fiber on [client].

    [alt_of] sibling-routes the singleton solo scatter, the orphan
    fallback, and — as the leader's map — the batched [commit_batch]
    round (safe: an unknown action resolves as a no-op at the store, and
    a sibling win surfaces as the leg's error so a sibling's floors are
    never folded as the primary's). *)

val abort_batched :
  t ->
  ?alt_of:(Net.Network.node_id -> Net.Network.node_id option) ->
  client:Net.Network.node_id ->
  stores:Net.Network.node_id list ->
  string ->
  (Net.Network.node_id * (unit, Net.Rpc.error) result) list
(** Phase-2 abort: settles the {!expect_phase2} registration and issues
    the ordinary solo abort scatter (aborts are not batched). *)

(** {2 Floor anti-entropy} *)

val anti_entropy : t -> from:Net.Network.node_id -> stores:Net.Network.node_id list -> unit
(** One read-only gossip round: fetch every store's committed counters
    and fold them into the shared floor — covers quiet stores and floors
    lost to a store crash ({!Oplog.drop_store}). Independent of the
    batch window; {!Naming.Service.create}'s [floor_gossip_period] runs
    this from a daemon fiber. Must run in a fiber on [from]. *)
