(* The coordinator-side group-commit plane.

   Concurrent commit copy-backs from the same runtime that target
   overlapping store sets merge into one batch, which pays ONE prepare
   scatter and ONE phase-2 scatter per store for every member
   ({!Action.Store_host.prepare_batch} / [commit_batch]) instead of one
   per member. Everything transactional stays per action at the store —
   voting, write reservations, intent-log staging, recovery, duplicate
   delivery — so a refused member ([Vote_stale], [Vote_delta_miss], or a
   transport error on one store) is peeled out for an ordinary solo
   retry while its batchmates proceed untouched.

   Window discipline (the [use_flush_delay] quiescence-pull pattern): an
   opening batch holds its leader for at most [window] simulated time,
   and closes early the moment no commit that could still join is in
   flight. "Could still join" is tracked by an approaching counter:
   {!enter} (called when commit processing starts) raises it, the
   member's prepare arrival (or an early exit — abort, read-optimised
   commit) lowers it; at zero every open batch's close ivar fills.
   Phase-2 symmetrically: {!expect_phase2} registers a sealed commit
   whose phase 2 is still to come, and the phase-2 batch closes early
   when no registered commit remains outstanding.

   Leadership and orphans: the first member to open a batch leads it —
   its fiber waits out the window and issues the scatter, distributing
   per-member results through ivars. Members bound their wait
   ([window + grace]): if the leader's client crashed mid-window they
   fall back to a solo prepare/commit (both idempotent at the store), so
   a chaos world cannot wedge a batchmate forever.

   Piggybacked floor gossip: a batched phase-2 ack carries the store's
   committed counter for every object it holds; folding those into
   {!Oplog.note_store} lets a coordinator that never wrote an object —
   e.g. a freshly activated server — base its first copy-back on a
   delta. {!anti_entropy} is the same exchange for quiet stores, driven
   by an optional low-rate daemon (see {!Naming.Service.create}).

   Off means off: with [window = 0.0] (the default) no call here is ever
   made — {!Replica.Commit.attach} guards every entry point on
   {!enabled} — so traces, RPC rounds and RNG draws are byte-identical
   to the unbatched tree. *)

type member = {
  m_client : Net.Network.node_id;
  m_action : string;
  m_writes :
    (Net.Network.node_id * (Store.Uid.t * Action.Store_host.write) list) list;
  m_alt : (Net.Network.node_id -> Net.Network.node_id option) option;
      (* the member's sibling-hedge map (see {!Replica.Commit}); only the
         solo/singleton scatters use it — batched prepares never
         alt-route (see {!Action.Store_host.prepare_batch}) *)
  m_votes :
    (Net.Network.node_id * (Action.Store_host.vote, Net.Rpc.error) result) list
    Sim.Ivar.t;
}

type batch = {
  mutable b_open : bool;
  mutable b_members : member list; (* newest first; the last is the leader *)
  mutable b_stores : Net.Network.node_id list; (* union, join order *)
  b_close : unit Sim.Ivar.t;
}

type p2_member = {
  p_client : Net.Network.node_id;
  p_action : string;
  p_stores : Net.Network.node_id list;
  p_alt : (Net.Network.node_id -> Net.Network.node_id option) option;
  p_acks :
    (Net.Network.node_id * (unit, Net.Rpc.error) result) list Sim.Ivar.t;
}

type p2_batch = {
  mutable pb_open : bool;
  mutable pb_members : p2_member list;
  mutable pb_stores : Net.Network.node_id list;
  pb_close : unit Sim.Ivar.t;
}

type t = {
  gc_eng : Sim.Engine.t;
  gc_sh : Action.Store_host.t;
  gc_metrics : Sim.Metrics.t;
  gc_olog : Oplog.t;
  mutable gc_window : float;
  mutable gc_approaching : int; (* commits between enter and their prepare *)
  mutable gc_expecting : int; (* sealed commits whose phase 2 is pending *)
  mutable gc_batches : batch list; (* open phase-1 batches, oldest first *)
  mutable gc_p2 : p2_batch list; (* open phase-2 batches, oldest first *)
  mutable gc_hedged : bool;
      (* mirror of [Server.hedged_rpc]: hedge every store scatter issued
         from this plane (all idempotent at the store) *)
}

(* A member that died (client crash) or fell back solo must not leave its
   batchmates waiting past this; generous so it never fires in a healthy
   world (the leader always answers within [window]). *)
let orphan_grace = 90.0

let create ~engine ~store_host ~metrics olog =
  {
    gc_eng = engine;
    gc_sh = store_host;
    gc_metrics = metrics;
    gc_olog = olog;
    gc_window = 0.0;
    gc_approaching = 0;
    gc_expecting = 0;
    gc_batches = [];
    gc_p2 = [];
    gc_hedged = false;
  }

let window t = t.gc_window
let set_window t w = t.gc_window <- w
let enabled t = t.gc_window > 0.0
let hedged t = t.gc_hedged
let set_hedged t flag = t.gc_hedged <- flag
let gc_hedge t = if t.gc_hedged then Some (Net.Rpc.hedge ()) else None

(* Quiescence-pull: no in-flight commit can join any longer, so every
   open batch may close now rather than wait out its window. *)
let pull_close t =
  List.iter
    (fun b -> if b.b_open then ignore (Sim.Ivar.try_fill b.b_close ()))
    t.gc_batches

let pull_close2 t =
  List.iter
    (fun b -> if b.pb_open then ignore (Sim.Ivar.try_fill b.pb_close ()))
    t.gc_p2

type token = { mutable tk_counted : bool }

let enter t =
  t.gc_approaching <- t.gc_approaching + 1;
  { tk_counted = true }

let leave t tok =
  if tok.tk_counted then begin
    tok.tk_counted <- false;
    t.gc_approaching <- t.gc_approaching - 1;
    if t.gc_approaching = 0 then pull_close t
  end

let expect_phase2 t = t.gc_expecting <- t.gc_expecting + 1

let settle_phase2 t =
  t.gc_expecting <- t.gc_expecting - 1;
  if t.gc_expecting = 0 then pull_close2 t

let union stores extra =
  stores @ List.filter (fun s -> not (List.mem s stores)) extra

let overlaps stores others = List.exists (fun s -> List.mem s others) stores

(* Drop a batch a member found abandoned (its leader's client crashed
   before scattering) so later commits stop joining a queue nobody will
   ever drain. *)
let abandon t batch =
  if batch.b_open then begin
    batch.b_open <- false;
    t.gc_batches <- List.filter (fun b -> b != batch) t.gc_batches
  end

let abandon2 t batch =
  if batch.pb_open then begin
    batch.pb_open <- false;
    t.gc_p2 <- List.filter (fun b -> b != batch) t.gc_p2
  end

(* Leader duty, phase 1: close the batch, issue one prepare_batch round
   per store in the union, and hand each member its own per-store votes.
   A batch that closed with a single member — its own leader — issues the
   ordinary solo scatter instead, so vote shapes, rounds and store-side
   behaviour are exactly the unbatched commit's. *)
let scatter t batch =
  batch.b_open <- false;
  t.gc_batches <- List.filter (fun b -> b != batch) t.gc_batches;
  let members = List.rev batch.b_members in
  match members with
  | [] -> ()
  | [ m ] ->
      Sim.Metrics.incr t.gc_metrics "groupcommit.solo_batches";
      Sim.Ivar.fill m.m_votes
        (Action.Store_host.prepare_each t.gc_sh ~from:m.m_client
           ?hedge:(gc_hedge t) ?alt_of:m.m_alt ~action:m.m_action
           ~coordinator:m.m_client m.m_writes)
  | leader :: _ ->
      Sim.Metrics.incr t.gc_metrics "groupcommit.batches";
      Sim.Metrics.observe t.gc_metrics "groupcommit.batch_members"
        (float_of_int (List.length members));
      let stores =
        List.fold_left (fun acc m -> union acc (List.map fst m.m_writes)) []
          members
      in
      let reqs =
        List.map
          (fun store ->
            ( store,
              List.filter_map
                (fun m ->
                  Option.map
                    (fun ws ->
                      {
                        Action.Store_host.pr_action = m.m_action;
                        pr_coordinator = m.m_client;
                        pr_writes = ws;
                      })
                    (List.assoc_opt store m.m_writes))
                members ))
          stores
      in
      let results =
        Action.Store_host.prepare_batch t.gc_sh ~from:leader.m_client
          ?hedge:(gc_hedge t) reqs
      in
      List.iter
        (fun m ->
          let votes =
            List.map
              (fun (store, _) ->
                ( store,
                  match List.assoc_opt store results with
                  | None | Some (Ok []) -> Error Net.Rpc.No_service
                  | Some (Error e) -> Error e
                  | Some (Ok votes) -> (
                      match List.assoc_opt m.m_action votes with
                      | Some v -> Ok v
                      | None -> Error Net.Rpc.No_service) ))
              m.m_writes
          in
          Sim.Ivar.fill m.m_votes votes)
        members

let solo_prepare t ?alt_of ~client ~action writes =
  Action.Store_host.prepare_each t.gc_sh ~from:client ?hedge:(gc_hedge t)
    ?alt_of ~action ~coordinator:client writes

let all_yes votes =
  votes <> []
  && List.for_all
       (fun (_, v) ->
         match v with Ok (Action.Store_host.Vote_yes _) -> true | _ -> false)
       votes

(* A member's phase-1: join (or open) a batch, lead it if first, and wait
   for the distributed votes. Any vote short of all-yes on a multi-member
   batch peels this member out: the batch votes are discarded and the
   member re-runs the ordinary solo prepare from its own node — a genuine
   conflict then aborts on the solo verdict exactly as an unbatched
   commit would, and a delta miss flows into the caller's usual
   reseed-and-retry, while the batchmates' staged prepares are untouched.
   (Duplicate prepare delivery is idempotent at the store:
   {!Store.Intent_log.prepare} replaces.) *)
let prepare t tok ?alt_of ~client ~action writes =
  let stores = List.map fst writes in
  let m =
    {
      m_client = client;
      m_action = action;
      m_writes = writes;
      m_alt = alt_of;
      m_votes = Sim.Ivar.create ();
    }
  in
  let leading, batch =
    match
      List.find_opt
        (fun b -> b.b_open && overlaps stores b.b_stores)
        t.gc_batches
    with
    | Some b ->
        b.b_members <- m :: b.b_members;
        b.b_stores <- union b.b_stores stores;
        (false, b)
    | None ->
        let b =
          {
            b_open = true;
            b_members = [ m ];
            b_stores = stores;
            b_close = Sim.Ivar.create ();
          }
        in
        t.gc_batches <- t.gc_batches @ [ b ];
        (true, b)
  in
  (* This commit has arrived; if it was the last one approaching, every
     open batch (including the one just joined) may close early. *)
  leave t tok;
  if leading then begin
    (match Sim.Ivar.read_timeout t.gc_eng t.gc_window batch.b_close with
    | Ok () -> Sim.Metrics.incr t.gc_metrics "groupcommit.pulled_closes"
    | Error _ -> Sim.Metrics.incr t.gc_metrics "groupcommit.window_closes");
    scatter t batch
  end;
  match
    Sim.Ivar.read_timeout t.gc_eng (t.gc_window +. orphan_grace) m.m_votes
  with
  | Error _ ->
      Sim.Metrics.incr t.gc_metrics "groupcommit.orphaned";
      abandon t batch;
      solo_prepare t ?alt_of ~client ~action writes
  | Ok votes ->
      let batched = List.length batch.b_members > 1 in
      if (not batched) || all_yes votes then votes
      else begin
        Sim.Metrics.incr t.gc_metrics "groupcommit.peels";
        solo_prepare t ?alt_of ~client ~action writes
      end

(* Leader duty, phase 2: one commit_batch round per store; fold the
   floors each ack piggybacks into the shared per-(store,object) floor,
   then hand each member its per-store acks. Singleton batches take the
   solo commit scatter (no floor payload — byte-identical to unbatched),
   matching phase 1's discipline. *)
let scatter2 t batch =
  batch.pb_open <- false;
  t.gc_p2 <- List.filter (fun b -> b != batch) t.gc_p2;
  let members = List.rev batch.pb_members in
  match members with
  | [] -> ()
  | [ m ] ->
      Sim.Ivar.fill m.p_acks
        (Action.Store_host.commit_all t.gc_sh ~from:m.p_client
           ?hedge:(gc_hedge t) ?alt_of:m.p_alt ~stores:m.p_stores m.p_action)
  | leader :: _ ->
      Sim.Metrics.incr t.gc_metrics "groupcommit.p2_batches";
      let stores =
        List.fold_left (fun acc m -> union acc m.p_stores) [] members
      in
      let reqs =
        List.map
          (fun store ->
            ( store,
              List.filter_map
                (fun m ->
                  if List.mem store m.p_stores then Some m.p_action else None)
                members ))
          stores
      in
      let results =
        Action.Store_host.commit_batch t.gc_sh ~from:leader.p_client
          ?hedge:(gc_hedge t) ?alt_of:leader.p_alt reqs
      in
      List.iter
        (fun (store, r) ->
          match r with
          | Ok floors ->
              List.iter
                (fun (uid, c) ->
                  if c >= 0 then begin
                    Sim.Metrics.incr t.gc_metrics
                      "groupcommit.floors_gossiped";
                    Oplog.note_store t.gc_olog ~store ~uid c
                  end)
                floors
          | Error _ -> ())
        results;
      List.iter
        (fun m ->
          let acks =
            List.map
              (fun store ->
                ( store,
                  match List.assoc_opt store results with
                  | Some (Ok _) -> Ok ()
                  | Some (Error e) -> Error e
                  | None -> Error Net.Rpc.No_service ))
              m.p_stores
          in
          Sim.Ivar.fill m.p_acks acks)
        members

(* Batched phase 2 for a commit registered with {!expect_phase2}. Runs in
   the committing fiber (a 2PC participant's commit closure); the same
   join/lead/orphan discipline as phase 1. *)
let commit_batched t ?alt_of ~client ~stores action =
  let m =
    {
      p_client = client;
      p_action = action;
      p_stores = stores;
      p_alt = alt_of;
      p_acks = Sim.Ivar.create ();
    }
  in
  let leading, batch =
    match
      List.find_opt (fun b -> b.pb_open && overlaps stores b.pb_stores) t.gc_p2
    with
    | Some b ->
        b.pb_members <- m :: b.pb_members;
        b.pb_stores <- union b.pb_stores stores;
        (false, b)
    | None ->
        let b =
          {
            pb_open = true;
            pb_members = [ m ];
            pb_stores = stores;
            pb_close = Sim.Ivar.create ();
          }
        in
        t.gc_p2 <- t.gc_p2 @ [ b ];
        (true, b)
  in
  (* Settle only after joining, so the quiescence-pull this settlement
     may trigger reaches the batch just joined (mirrors phase 1, where
     [leave] runs after the join for the same reason). *)
  settle_phase2 t;
  if leading then begin
    (match Sim.Ivar.read_timeout t.gc_eng t.gc_window batch.pb_close with
    | Ok () -> Sim.Metrics.incr t.gc_metrics "groupcommit.pulled_closes"
    | Error _ -> Sim.Metrics.incr t.gc_metrics "groupcommit.window_closes");
    scatter2 t batch
  end;
  match
    Sim.Ivar.read_timeout t.gc_eng (t.gc_window +. orphan_grace) m.p_acks
  with
  | Ok acks -> acks
  | Error _ ->
      Sim.Metrics.incr t.gc_metrics "groupcommit.orphaned";
      abandon2 t batch;
      Action.Store_host.commit_all t.gc_sh ~from:client ?hedge:(gc_hedge t)
        ?alt_of ~stores action

(* Phase-2 abort of a commit registered with {!expect_phase2}: aborts are
   rare and carry no floor payload worth amortising, so they go out solo
   — but the registration must still settle or phase-2 quiescence-pull
   would stall at a count that never drains. *)
let abort_batched t ?alt_of ~client ~stores action =
  settle_phase2 t;
  Action.Store_host.abort_all t.gc_sh ~from:client ?hedge:(gc_hedge t) ?alt_of
    ~stores action

(* One anti-entropy round: read every store's committed counters and fold
   them into the shared floor. Cheap (one scatter, no writes) and safe
   (the floor is a monotone max; a racing commit only raises it), it
   covers the stores the piggyback cannot: quiet ones, and floors lost
   to {!Oplog.drop_store} when a store crashed. *)
let anti_entropy t ~from ~stores =
  Sim.Metrics.incr t.gc_metrics "groupcommit.anti_entropy_rounds";
  List.iter
    (fun (store, r) ->
      match r with
      | Ok floors ->
          List.iter
            (fun (uid, c) ->
              if c >= 0 then begin
                Sim.Metrics.incr t.gc_metrics "groupcommit.floors_gossiped";
                Oplog.note_store t.gc_olog ~store ~uid c
              end)
            floors
      | Error _ -> ())
    (Action.Store_host.floors_all t.gc_sh ~from ~stores)
