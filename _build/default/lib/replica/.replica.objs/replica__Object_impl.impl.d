lib/replica/object_impl.ml: Hashtbl List String
