(** Experiment [tab-checkpoint]: coordinator-cohort checkpointing policy
    (an ablation of §2.3(2)(ii)).

    The paper says the coordinator "regularly checkpoints its state to
    the remaining replicas" without fixing the frequency. Two policies
    are compared under identical coordinator churn:

    - {e eager} (per invocation): a failover mid-action finds the staged
      updates checkpointed at the cohort and the client's action
      continues seamlessly;
    - {e lazy} (at action ends only): mid-action failovers lose the
      staged updates; the promoted cohort detects the gap through the
      client's last-acknowledged serial and answers [State_lost], and the
      action aborts rather than silently dropping updates.

    The trade is checkpoint traffic against availability of in-progress
    actions. *)

val run : ?seed:int64 -> unit -> Table.t
