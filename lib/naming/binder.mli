(** Object binding: turning a UID into a bound, activated replica group
    under one of the paper's three database access schemes.

    Binding (§3.2, §4.1) resolves [SvA]/[StA] through the group view
    database, selects the activation subset [SvA'] according to the
    replication policy, activates the replicas, and attaches commit-time
    processing (state copy-back with [Exclude]) to the client's action.

    - {!bind_standard} (Figure 6) runs the database reads as nested
      actions of the client action. Selection works on the {e static}
      [SvA]: crashed servers are only discovered by failed activation
      attempts, counted in the [bind.futile] metric.
    - {!bind_independent} (Figure 7) runs {e before} the client action(s):
      the whole database half — read [SvA] with use lists, remove
      detectably-dead servers, increment the chosen subset, read [StA] —
      is one {!Gvd.bind_batch} request, a single RPC round inside one
      independent top-level action. {!use_prebinding} attaches the
      resulting group to each client action; {!release_independent}
      {e credits} the trailing [Decrement] into the {!Use_delta} buffer
      instead of sending it immediately.
    - {!bind_nested_toplevel} (Figure 8) sends the same single-round
      batch from {e inside} the client action using a nested top-level
      action, and credits the [Decrement] when the client action ends
      (whether it commits or aborts — the use-list update is durable
      either way, as nested top-level actions are).

    Buffered credits leave the client in one of two coalesced forms: the
    next bind of the same (client, object) piggybacks them on its batch
    request — cancelling the increment/decrement pair within that one
    round — or a deferred flush fiber (after [flush_delay]) sends every
    remaining credit for an object as one merged [Decrement] action. A
    client crash with unflushed credits leaves exactly the orphaned
    counters the cleanup protocol repairs.

    The [bind.naming_rounds] distribution records the bind-time naming
    RPC rounds per fresh bind: 3 for scheme A (impl_of + GetServer +
    GetView), 1 for scheme A under [pipelined_binds] (the same three
    requests as one {!Sim.Join} scatter), exactly 1 for schemes B/C, 0
    on a cache hit.

    The commit-time [Exclude] follows the scheme as well: under
    [Standard] it runs inside the client action by promoting the held read
    lock (§4.2.1); under the other two it runs as a nested top-level
    action acquiring the exclude-write lock afresh. Commit-time [StA]
    re-reads are locked for scheme A, lock-free snapshot reads for
    schemes B/C. *)

type t
(** Binder runtime. *)

val create :
  ?cache:Bind_cache.t -> ?flush_delay:float -> ?optimistic_commit:bool ->
  ?pipelined_binds:bool -> Router.t -> Replica.Group.runtime -> t
(** [create router grt] binds through the sharded naming tier. [cache]
    (default none) enables the lease-based client cache: a fresh entry
    lets {!bind} skip every bind-time naming RPC and activate straight
    from the cached [(impl, SvA', StA)]. Staleness only slows a bind
    down (futile activations, a commit-time version-conflict abort that
    invalidates the entry); it can never commit against a stale store —
    commit processing re-reads [StA] and the stores backward-validate.

    [flush_delay] (default 5.0) is the coalescing window: how long
    credited [Decrement]s wait for a cancelling rebind before the flush
    fiber sends them.

    [optimistic_commit] (default true since the §13 flip) replaces the commit-time locked
    [GetView] re-read with a lock-free (St, revision) snapshot validated
    inside the prepare round — an interleaved Include/Exclude shows up as
    a revision conflict and the copy-back retries against fresh [St],
    bounded, then falls back to the locked read (see
    {!Replica.Commit.attach}). [pipelined_binds] (default true)
    scatters scheme A's three serial naming reads as one {!Sim.Join}
    round. Both off: bind and commit behaviour is byte-identical to the
    pre-optimistic tree. *)

val router : t -> Router.t

val optimistic_commit : t -> bool
val pipelined_binds : t -> bool

val gvd : t -> Gvd.t
(** The primary shard (compatibility handle for single-shard worlds). *)

val cache : t -> Bind_cache.t option
val group_runtime : t -> Replica.Group.runtime

type binding = {
  bd_uid : Store.Uid.t;
  bd_scheme : Scheme.t;
  bd_group : Replica.Group.t;
  bd_servers : Net.Network.node_id list;  (** the selected [SvA'] *)
  bd_stores : Net.Network.node_id list;  (** the [StA] view at bind time *)
  bd_version : int;
      (** GVD snapshot version the bind read (0 under scheme A, which
          reads under locks and carries no version) *)
}

type bind_error =
  | Name_refused of string  (** database lock refused or object unknown *)
  | No_server of string  (** no listed server could be activated *)

val pp_bind_error : Format.formatter -> bind_error -> unit
val bind_error_to_string : bind_error -> string

val bind_standard :
  t ->
  act:Action.Atomic.t ->
  uid:Store.Uid.t ->
  policy:Replica.Policy.t ->
  (binding, bind_error) result
(** Figure-6 binding inside [act]. *)

type prebinding
(** A Figure-7 binding established outside any client action. *)

val bind_independent :
  t ->
  client:Net.Network.node_id ->
  uid:Store.Uid.t ->
  policy:Replica.Policy.t ->
  (prebinding, bind_error) result
(** Figure-7 pre-action bind; must run in a fiber on [client]. *)

val use_prebinding :
  t -> act:Action.Atomic.t -> prebinding -> (binding, bind_error) result
(** Attach a prebinding's group to a client action (commit-time processing
    included). May be used for several successive actions. *)

val release_independent : t -> prebinding -> unit
(** The trailing [Decrement] (Figure 7, last ellipse), coalesced: the
    counts are credited to the delta buffer and either cancelled by the
    client's next bind of the same object or flushed after
    [flush_delay]. Must run in a fiber on the binding client. Safe to
    call once. *)

val bind_nested_toplevel :
  t ->
  act:Action.Atomic.t ->
  uid:Store.Uid.t ->
  policy:Replica.Policy.t ->
  (binding, bind_error) result
(** Figure-8 binding from inside [act]; the decrement is scheduled for the
    end of [act] automatically. *)

val bind :
  t ->
  act:Action.Atomic.t ->
  scheme:Scheme.t ->
  uid:Store.Uid.t ->
  policy:Replica.Policy.t ->
  (binding, bind_error) result
(** Scheme-dispatching convenience for single-action usage. For
    [Independent] it performs the pre-bind, attach and (at action end)
    release as one unit; long-lived Figure-7 usage should call the
    explicit functions. *)

val deltas : t -> Use_delta.t
(** The client-side decrement credit buffer (tests, diagnostics). *)

val pull_credits : t -> uid:Store.Uid.t -> unit
(** Quiescence-pull: flush every live client's pending credits for [uid]
    immediately instead of waiting out the coalescing window. Called when
    an [Insert] is blocked on use-list quiescence (reintegration); crashed
    clients are skipped — their counters are the cleanup protocol's. *)

val exclusion :
  t -> scheme:Scheme.t -> uid:Store.Uid.t ->
  Action.Atomic.t -> Net.Network.node_id list -> (unit, string) result
(** The [Exclude] implementation handed to commit processing
    ({!Replica.Commit.attach}); exposed for tests. *)
