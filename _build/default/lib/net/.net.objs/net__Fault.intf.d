lib/net/fault.mli: Network Sim
