(** Server hosting: activated object replicas on nodes.

    A {e server} is the active form of a persistent object (§2.2): volatile
    state loaded from an object store plus the machinery to execute
    operations under atomic-action control. Each node capable of running
    servers is equipped once with [install_host]; activation then creates
    {e instances} on demand. Instances are volatile — a node crash destroys
    them (the crash hook clears the table), and recovery does not resurrect
    them: re-activation happens through the naming service, per the paper.

    Concurrency control is per instance: operations acquire read/write
    locks keyed by the invoking action; writes stage a new payload per
    action (read-your-writes within the action, isolation between
    actions). The instance participates in action completion through a
    {!Action.Resource_host} manager: commit installs the staged payload and
    advances the version; abort discards it; nested-commit transfers
    staging and locks to the parent action.

    For coordinator-cohort replication, instances carry a role; the
    coordinator checkpoints its full instance state to cohorts after every
    invocation and at action ends, and cohorts self-promote (lowest node id
    first) when the failure detector reports the coordinator's crash. *)

type role = Plain | Coordinator | Cohort

type runtime
(** Server machinery for one simulated world. *)

val create : Action.Atomic.runtime -> (string, Object_impl.t) Hashtbl.t -> runtime
(** [create art impls] builds the runtime over the action runtime and an
    implementation registry. *)

val atomic_runtime : runtime -> Action.Atomic.runtime

val oplog : runtime -> Oplog.t
(** The per-object operation logs, acknowledged-version vector and golden
    shadow this runtime maintains for delta state shipping. *)

val delta_shipping : runtime -> bool

val set_delta_shipping : runtime -> bool -> unit
(** Enable op-log delta replication (default off). Off, the runtime
    records nothing and commit views carry no chains, so worlds run
    byte-identically to the pre-oplog behaviour; on, instance commits
    append their op provenance to {!oplog} before releasing locks,
    checkpoints carry staged ops and the retained log, and
    {!Commit.attach} ships per-store log suffixes instead of full states
    wherever the acknowledged-version vector allows. *)

val groupcommit : runtime -> Groupcommit.t
(** The group-commit plane of this runtime: {!Commit.attach} batches its
    prepare and phase-2 scatters through it whenever it is enabled. *)

val set_commit_batch_window : runtime -> float -> unit
(** The commit batch window in simulated time ({!Groupcommit.set_window});
    [0.0] (the default) disables batching and keeps the copy-back
    byte-identical to the unbatched tree. *)

val hedged_rpc : runtime -> bool

val set_hedged_rpc : runtime -> bool -> unit
(** Enable hedged scatter-gathers (default off): the idempotent legs of
    the commit copy-back (prepare / phase-2 / abort, solo and batched via
    {!groupcommit}) and the activation, coordinator-probe and commit-view
    fan-outs race a health-delayed backup copy against a slow primary
    ({!Net.Rpc.call_hedged}, {!Sim.Join.hedged}). Off, every scatter takes
    the exact pre-hedging code path, byte-identical. *)

val sibling_hedge : runtime -> bool

val set_sibling_hedge : runtime -> bool -> unit
(** Sibling-hedge routing (default off; effective only with
    {!set_hedged_rpc}): when a commit-path leg's primary store is
    sustainedly slow ({!Net.Health.sustained_slow}), the hedged backup
    copy goes to the healthiest {e other} [St] member instead of
    re-sending to the slow node, and a sibling win counts as the leg's
    failure — never as the primary's answer ({!Net.Rpc.call_hedged}'s
    [?alt]). Activation store reads walk [StA] healthiest-first under
    the same flag. Off is byte-identical. *)

val force_delta : runtime -> bool

val set_force_delta : runtime -> bool -> unit
(** Skip {!Commit.attach}'s per-write size comparison and ship every
    coverable delta even when the full state would encode smaller
    (default off). Chaos worlds set this so small objects keep the delta
    path — and its audit coverage — exercised. *)

val set_eager_checkpoints : runtime -> bool -> unit
(** Coordinator-cohort checkpointing policy: [true] (default) checkpoints
    after every invocation, so a failover continues the client's action
    seamlessly; [false] checkpoints only at action ends, trading
    checkpoint traffic for aborted actions on mid-action failover (the
    promoted cohort answers {!State_lost} when it detects the gap). *)

val install_host : runtime -> Net.Network.node_id -> unit
(** Equip [node] to host servers: registers the activation/invocation
    endpoints and the crash hook that destroys instances. *)

val resource_name : Store.Uid.t -> string
(** The {!Action.Resource_host} resource name of an instance,
    ["obj:<uid>"]. *)

val mc : runtime -> Net.Multicast.t
(** The multicast runtime replicas listen on; the group layer casts
    invocations through it and installs the sequencer. *)

(** {2 Remote operations} (called from a fiber on [from]) *)

type activate_result =
  | Activated of Store.Version.t
  | Activation_failed of string

val activate :
  runtime ->
  from:Net.Network.node_id ->
  server:Net.Network.node_id ->
  uid:Store.Uid.t ->
  impl:string ->
  stores:Net.Network.node_id list ->
  role:role ->
  members:Net.Network.node_id list ->
  (activate_result, Net.Rpc.error) result
(** Create (or find) an instance on [server]. The state is loaded from the
    first reachable node of [stores]; an empty [stores] list creates a
    fresh instance from the implementation's initial payload (object
    creation). [members] is the activated replica group (used by cohorts
    to arrange self-promotion). Idempotent. *)

type invoke_result =
  | Reply of string
  | Locked  (** lock wait timed out: advisory to abort *)
  | Not_active  (** no instance here: stale binding *)
  | Not_coordinator  (** coordinator-cohort: retry at the coordinator *)
  | State_lost
      (** a failover lost the action's staged state (lazy checkpointing):
          the action must abort *)
  | Settled
      (** the action already committed or aborted at this instance: a
          late-arriving invocation (a duplicated multicast, or one parked
          on the instance lock past the action's own timeout abort) must
          not stage fresh state nobody will ever clean up *)

val invoke :
  runtime ->
  from:Net.Network.node_id ->
  server:Net.Network.node_id ->
  uid:Store.Uid.t ->
  action:string ->
  serial:int ->
  last_acked:int ->
  write:bool ->
  op:string ->
  (invoke_result, Net.Rpc.error) result
(** Execute [op] on the instance via point-to-point RPC. [serial] numbers
    the invocation within [action] for exactly-once retry semantics across
    coordinator failover; [last_acked] is the highest serial of this
    action the client has seen answered (0 if none), used for the
    {!State_lost} detection. *)

type commit_view = {
  cv_payload : string;
  cv_version : Store.Version.t;
  cv_dirty : bool;  (** the action staged a write *)
  cv_delta : (Store.Version.t * string list) list;
      (** the replica's retained op chain (oldest first), ending with the
          ops of the dirty write at [cv_version]; empty unless delta
          shipping is on and the write's provenance is fully known. The
          copy-back cuts per-store suffixes [(v_store, cv_version]] out
          of it ({!Oplog.suffix_of}). *)
}

val commit_view :
  runtime ->
  from:Net.Network.node_id ->
  server:Net.Network.node_id ->
  uid:Store.Uid.t ->
  action:string ->
  last_acked:int ->
  (commit_view option, Net.Rpc.error) result
(** The state as it will be if [action] commits — what commit processing
    copies to the object stores. [None] if no instance, or if the replica
    has not yet processed the action's [last_acked] invocation (it is
    behind the totally-ordered stream; ask another replica or retry). *)

val role_of :
  runtime ->
  from:Net.Network.node_id ->
  server:Net.Network.node_id ->
  uid:Store.Uid.t ->
  (role option, Net.Rpc.error) result
(** The instance's current role, [None] if not activated there. Used by
    clients probing for the coordinator after a failover. *)

val passivate :
  runtime ->
  from:Net.Network.node_id ->
  server:Net.Network.node_id ->
  uid:Store.Uid.t ->
  (bool, Net.Rpc.error) result
(** Destroy the instance if it is quiescent (no locks, no staged state);
    [Ok false] if it is still in use. *)

val quiescent :
  runtime ->
  from:Net.Network.node_id ->
  server:Net.Network.node_id ->
  uid:Store.Uid.t ->
  (bool, Net.Rpc.error) result
(** Whether the instance is quiescent (a missing instance is quiescent). *)

(** {2 Multicast invocation} (active replication) *)

type mc_invoke = {
  mi_uid : Store.Uid.t;
  mi_action : string;
  mi_serial : int;
  mi_last_acked : int;
  mi_write : bool;
  mi_op : string;
  mi_reply_to : Net.Network.node_id;
  mi_req : int;
}

val invoke_channel : runtime -> mc_invoke Net.Multicast.channel
(** The group channel on which replicas listen for totally-ordered
    invocations; hosts installed with [install_host] are listening. *)

type mc_reply = { mr_req : int; mr_replica : Net.Network.node_id; mr_result : invoke_result }

val reply_endpoint : runtime -> (mc_reply, unit) Net.Rpc.endpoint
(** Endpoint replicas use to return multicast invocation results; the
    group layer serves it on client nodes. *)

(** {2 Direct inspection} (tests, daemons on the same node) *)

val local_instances : runtime -> node:Net.Network.node_id -> Store.Uid.t list
(** UIDs of the instances currently activated on [node], sorted. *)

val instance_exists : runtime -> node:Net.Network.node_id -> uid:Store.Uid.t -> bool

val instance_residue :
  runtime ->
  node:Net.Network.node_id ->
  (Store.Uid.t * string list * string list) list
(** Instances on [node] that are not quiescent: each with the actions
    still holding its instance lock and the actions with staged
    (uncommitted) state. Empty once every action has completed — audits
    assert exactly that after a world drains. *)

val instance_payload :
  runtime -> node:Net.Network.node_id -> uid:Store.Uid.t -> string option
(** Committed payload of a local instance, bypassing the network. *)
