(** tab-shard-scaling: bind throughput and latency of the sharded naming
    tier at 1/2/4/8 shards, with and without the client lease cache, and
    one online 2→4 rebalance mid-workload (St mutual consistency audited
    in every configuration). *)

val run : ?seed:int64 -> unit -> Table.t
