lib/replica/object_impl.mli: Hashtbl
