(** Client-side use-list delta buffer (§4.1.3 traffic reduction).

    A binder no longer sends the trailing [Decrement] of Figures 7/8 as
    its own immediate action: it {e credits} the counts here, and they
    leave the client in one of two coalesced forms —

    - piggybacked on the next bind's {!Gvd.bind_batch} request for the
      same (client, object) — a rebind thus cancels the
      increment/decrement pair within its own single round, and a
      net-zero pair never costs a dedicated action — or
    - a deferred {e flush}: one merged [Decrement] action covering every
      credited count the client holds for the object.

    Crash safety is unchanged: an unflushed credit is exactly the
    orphan-counter state the cleanup protocol already repairs (the
    client died between its increment and its decrement), so losing the
    buffer loses nothing the system cannot recover.

    The buffer is pure state — the binder owns all scheduling (flush
    fibers, retries); {!flush_scheduled}/{!set_flush_scheduled} is the
    per-client one-bit handshake between them. Keyed by client: one
    binder serves every client node of a world, and a credit must only
    decrement the counters of the client that earned it. *)

type t

val create : unit -> t

val credit :
  t -> client:Net.Network.node_id -> uid:Store.Uid.t ->
  node:Net.Network.node_id -> count:int -> unit
(** Add [count] pending decrements of [client]'s counter on [node]'s use
    list for [uid]. [count <= 0] is a no-op. *)

val take :
  t -> client:Net.Network.node_id -> uid:Store.Uid.t ->
  (Net.Network.node_id * int) list
(** Remove and return every pending credit of [(client, uid)], sorted by
    node. The caller now owns them: piggyback or flush them, and
    {!restore} them if that fails. *)

val restore :
  t -> client:Net.Network.node_id -> uid:Store.Uid.t ->
  (Net.Network.node_id * int) list -> unit
(** Put back credits obtained from {!take} whose send failed. *)

val pending :
  t -> client:Net.Network.node_id -> uid:Store.Uid.t ->
  (Net.Network.node_id * int) list
(** Peek without removing. *)

val pending_uids : t -> client:Net.Network.node_id -> Store.Uid.t list
(** Objects for which [client] holds credits, oldest first. *)

val is_empty : t -> bool

val clients_with : t -> uid:Store.Uid.t -> Net.Network.node_id list
(** Clients holding credits for [uid], oldest entry first. Used by the
    quiescence-pull: an [Insert] blocked on use-list counters flushes
    these eagerly instead of waiting out the coalescing window. *)

val drop_client : t -> client:Net.Network.node_id -> unit
(** Forget every credit and the scheduled-flush flag of [client]. Called
    from the client's crash hook: the counters its credits would have
    decremented are now orphans for the cleanup protocol, and a stale
    scheduled flag would wedge all flushing for the client's next
    incarnation. *)

val flush_scheduled : t -> client:Net.Network.node_id -> bool
val set_flush_scheduled : t -> client:Net.Network.node_id -> bool -> unit
