lib/naming/binder.mli: Action Format Gvd Net Replica Scheme Store
