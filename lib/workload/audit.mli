(** End-to-end correctness audits.

    Two checks distilled from the paper's safety obligations, packaged for
    property tests and the CLI:

    - {!mutual_consistency}: after quiescence, every node in [StA] holds a
      byte-identical state carrying the same version — the invariant the
      whole meta-information machinery exists to protect (§2.3(1));
    - {!counter_stress}: an {e accounting} audit. Clients add random
      amounts to a counter object under randomized schemes, policies and
      node churn; every action that reported commit contributes its
      amount, every abort must contribute nothing, and retries across
      coordinator failovers must apply exactly once. At the end the
      committed store value must equal the sum of acknowledged additions —
      lost updates, phantom applies and double applies all break it. *)

val mutual_consistency :
  Naming.Service.t -> Store.Uid.t -> (unit, string) result
(** [Error] describes the first violation found. *)

val chaos : Naming.Service.t -> string list
(** Consolidated post-chaos audit, meaningful only after the world has
    drained (and, when faults crashed clients, after cleanup swept the
    orphans). Checks every object's [StA] mutual consistency, use-list
    quiescence (no orphaned counters), residual naming-database locks and
    staged action state, unresolved 2PC reservations in every reachable
    intent log, server instance residue (held locks, staged invocations),
    and leaked (still-suspended) fibers of live nodes. Returns one line
    per violation — empty means the world quiesced clean. *)

type stress_report = {
  sr_attempts : int;
  sr_commits : int;
  sr_expected_total : int;  (** sum of committed additions *)
  sr_actual_total : int;  (** final committed counter value *)
  sr_consistent : bool;  (** {!mutual_consistency} verdict *)
}

val exact : stress_report -> bool
(** Accounting holds and the stores are mutually consistent. *)

val counter_stress :
  ?seed:int64 ->
  ?clients:int ->
  ?actions_per_client:int ->
  ?server_churn:bool ->
  ?store_churn:bool ->
  ?policy:Replica.Policy.t ->
  ?gvd_nodes:Net.Network.node_id list ->
  ?bind_cache_lease:float ->
  unit ->
  stress_report
(** Run the audit workload to completion (defaults: 3 clients × 8 actions,
    both churn kinds on, active replication over 2 servers). [gvd_nodes]
    and [bind_cache_lease] exercise the sharded naming tier and the
    client bind cache under the same accounting obligations. *)

val pp_report : Format.formatter -> stress_report -> unit
