examples/long_haul.ml: Action Gvd Hashtbl List Naming Net Printf Replica Scheme Service Sim Store String
