(** Unbounded FIFO channel between fibers.

    Any number of fibers may send; any number may receive. Messages are
    delivered in send order to receivers in arrival order. A mailbox models
    a server's request queue. *)

type 'a t
(** A mailbox carrying messages of type ['a]. *)

val create : unit -> 'a t
(** A fresh, empty mailbox. *)

val send : 'a t -> 'a -> unit
(** [send mb m] enqueues [m], waking one waiting receiver if any. Never
    blocks. *)

val recv : Engine.t -> 'a t -> 'a
(** [recv eng mb] dequeues the oldest message, suspending the calling fiber
    until one is available. *)

val recv_timeout : Engine.t -> float -> 'a t -> ('a, exn) result
(** [recv_timeout eng dt mb] is [Ok m] if a message arrived within [dt],
    [Error Engine.Timed_out] otherwise. On timeout no message is consumed. *)

val try_recv : 'a t -> 'a option
(** Dequeue without blocking. *)

val length : 'a t -> int
(** Number of queued (undelivered) messages. *)
