(* System-level property tests: randomized schedules checked against
   global invariants. These are the heaviest properties, factored apart
   from the per-layer suites. *)

open Naming

let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Engine chaos: random fiber/crash schedules never wedge the engine and
   virtual time is monotone across every observed event. *)

let prop_engine_chaos =
  QCheck.Test.make ~name:"engine survives random spawn/kill schedules" ~count:100
    QCheck.(pair int64 (int_range 1 40))
    (fun (seed, n) ->
      let eng = Sim.Engine.create ~seed () in
      let rng = Sim.Rng.create seed in
      let last_seen = ref 0.0 in
      let monotone = ref true in
      let groups = Array.init 4 (fun _ -> Sim.Engine.new_group eng) in
      for _ = 1 to n do
        let g = groups.(Sim.Rng.int rng 4) in
        Sim.Engine.spawn eng ~group:g (fun () ->
            let rec hop k =
              let now = Sim.Engine.now eng in
              if now < !last_seen then monotone := false;
              last_seen := now;
              if k > 0 then begin
                Sim.Engine.sleep eng (Sim.Rng.uniform rng 0.0 5.0);
                hop (k - 1)
              end
            in
            hop (Sim.Rng.int rng 6));
        if Sim.Rng.bool rng 0.2 then
          Sim.Engine.schedule eng ~delay:(Sim.Rng.uniform rng 0.0 20.0)
            (fun () -> Sim.Engine.kill_group eng groups.(Sim.Rng.int rng 4))
      done;
      Sim.Engine.run eng;
      !monotone)

(* ------------------------------------------------------------------ *)
(* Atomic multicast: whatever the interleaving of concurrent senders,
   every listener delivers the same sequence. *)

let prop_multicast_total_order =
  QCheck.Test.make ~name:"atomic multicast delivers one total order" ~count:60
    QCheck.(pair int64 (int_range 1 15))
    (fun (seed, casts_per_sender) ->
      let eng = Sim.Engine.create ~seed () in
      let net = Net.Network.create eng in
      let rpc = Net.Rpc.create net in
      let mc = Net.Multicast.create rpc in
      let members = [ "m1"; "m2"; "m3" ] in
      List.iter (Net.Network.add_node net) ("seq" :: "s1" :: "s2" :: members);
      Net.Multicast.enable_sequencer mc ~node:"seq";
      let ch : int Net.Multicast.channel = Net.Multicast.channel "prop" in
      let logs = Hashtbl.create 3 in
      List.iter
        (fun m ->
          let log = ref [] in
          Hashtbl.replace logs m log;
          Net.Multicast.listen mc ~node:m ch (fun ~seq:_ v -> log := v :: !log))
        members;
      List.iteri
        (fun i sender ->
          Net.Network.spawn_on net sender (fun () ->
              for k = 1 to casts_per_sender do
                ignore
                  (Net.Multicast.cast_atomic mc ~from:sender ~sequencer:"seq"
                     ~members ch ((i * 1000) + k))
              done))
        [ "s1"; "s2" ];
      Sim.Engine.run eng;
      let sequences =
        List.map (fun m -> List.rev !(Hashtbl.find logs m)) members
      in
      match sequences with
      | first :: rest ->
          List.length first = 2 * casts_per_sender
          && List.for_all (fun s -> s = first) rest
      | [] -> false)

(* ------------------------------------------------------------------ *)
(* Active replication: after a random mix of reads and writes (and one
   mid-run replica bounce), all live replicas hold byte-identical
   committed state equal to the stores'. *)

let prop_active_replicas_identical =
  QCheck.Test.make ~name:"active replicas stay byte-identical" ~count:40
    QCheck.(pair int64 (list_of_size (Gen.int_range 1 8) (int_range 1 50)))
    (fun (seed, amounts) ->
      let w =
        Service.create ~seed
          {
            Service.gvd_node = "ns";
            gvd_nodes = [];
            server_nodes = [ "a1"; "a2"; "a3" ];
            store_nodes = [ "t1" ];
            client_nodes = [ "c1" ];
          }
      in
      let uid =
        Service.create_object w ~name:"obj" ~impl:"counter"
          ~sv:[ "a1"; "a2"; "a3" ] ~st:[ "t1" ] ()
      in
      let eng = Service.engine w in
      let net = Service.network w in
      (* Bounce one replica mid-run. *)
      Net.Fault.crash_for net ~at:30.0 ~duration:20.0 "a2";
      let ok = ref true in
      Service.spawn_client w "c1" (fun () ->
          List.iter
            (fun amount ->
              (match
                 Service.with_bound w ~client:"c1" ~scheme:Scheme.Standard
                   ~policy:(Replica.Policy.Active 3) ~uid (fun act group ->
                     ignore
                       (Service.invoke w group ~act
                          (Printf.sprintf "add %d" amount)))
               with
              | Ok () -> ()
              | Error _ -> ok := false);
              Sim.Engine.sleep eng 10.0)
            amounts);
      Service.run w;
      let store_payload =
        match
          Store.Object_store.read
            (Action.Store_host.objects (Service.store_host w) "t1")
            uid
        with
        | Some s -> Some s.Store.Object_state.payload
        | None -> None
      in
      let live_instances =
        List.filter_map
          (fun node ->
            if Net.Network.is_up net node then
              Replica.Server.instance_payload (Service.server_runtime w) ~node
                ~uid
            else None)
          [ "a1"; "a2"; "a3" ]
      in
      !ok
      && (match store_payload with
         | Some p -> List.for_all (String.equal p) live_instances
         | None -> false)
      && store_payload = Some (string_of_int (List.fold_left ( + ) 0 amounts)))

(* ------------------------------------------------------------------ *)
(* Scheme soup: random sequences of binds under random schemes against
   one object always end with the object quiescent and the counter equal
   to the number of committed increments. *)

let prop_scheme_soup_quiescent =
  QCheck.Test.make ~name:"mixed schemes end quiescent and exact" ~count:40
    QCheck.(pair int64 (list_of_size (Gen.int_range 1 10) (int_range 0 2)))
    (fun (seed, scheme_picks) ->
      let w =
        Service.create ~seed
          {
            Service.gvd_node = "ns";
            gvd_nodes = [];
            server_nodes = [ "alpha" ];
            store_nodes = [ "t1"; "t2" ];
            client_nodes = [ "c1"; "c2" ];
          }
      in
      let uid =
        Service.create_object w ~name:"obj" ~impl:"counter" ~sv:[ "alpha" ]
          ~st:[ "t1"; "t2" ] ()
      in
      let commits = ref 0 in
      let run_on client picks =
        Service.spawn_client w client (fun () ->
            List.iter
              (fun pick ->
                let scheme = List.nth Scheme.all pick in
                match
                  Service.with_bound w ~client ~scheme
                    ~policy:Replica.Policy.Single_copy_passive ~uid
                    (fun act group ->
                      ignore (Service.invoke w group ~act "incr"))
                with
                | Ok () -> incr commits
                | Error _ -> ())
              picks)
      in
      let half = List.length scheme_picks / 2 in
      run_on "c1" (List.filteri (fun i _ -> i < half) scheme_picks);
      run_on "c2" (List.filteri (fun i _ -> i >= half) scheme_picks);
      Service.run w;
      let final =
        match
          Store.Object_store.read
            (Action.Store_host.objects (Service.store_host w) "t1")
            uid
        with
        | Some s -> int_of_string s.Store.Object_state.payload
        | None -> -1
      in
      Gvd.quiescent (Service.gvd w) uid && final = !commits)

(* ------------------------------------------------------------------ *)
(* Snapshot reads: the committed-snapshot version a lock-free reader
   observes never moves backwards, however Exclude/Include churn and
   concurrent binds interleave — commits install the new snapshot and
   bump the version before any lock is released, and aborts install
   nothing. *)

let prop_snapshot_version_monotone =
  QCheck.Test.make ~name:"snapshot versions are monotone under churn" ~count:40
    QCheck.(pair int64 (int_range 2 8))
    (fun (seed, rounds) ->
      let w =
        Service.create ~seed
          {
            Service.gvd_node = "ns";
            gvd_nodes = [];
            server_nodes = [ "alpha" ];
            store_nodes = [ "t1"; "t2" ];
            client_nodes = [ "c1"; "c2"; "c3" ];
          }
      in
      let uid =
        Service.create_object w ~name:"obj" ~impl:"counter" ~sv:[ "alpha" ]
          ~st:[ "t1"; "t2" ] ()
      in
      Service.run ~until:1.0 w;
      let eng = Service.engine w in
      let rng = Sim.Rng.create seed in
      let monotone = ref true in
      let last = ref (-1) in
      let observe v =
        if v < !last then monotone := false;
        if v > !last then last := v
      in
      (* Writer: exclude t2 and re-include it, each in its own action;
         sometimes abort mid-flight so nothing may be installed. *)
      Service.spawn_client w "c1" (fun () ->
          for _ = 1 to rounds do
            let gvd = Service.gvd w in
            (match
               Action.Atomic.atomically (Service.atomic w) ~node:"c1"
                 (fun act ->
                   (match Gvd.exclude gvd ~act [ (uid, [ "t2" ]) ] with
                   | Ok (Gvd.Granted ()) -> ()
                   | _ -> raise (Action.Atomic.Abort "exclude"));
                   if Sim.Rng.bool rng 0.3 then
                     raise (Action.Atomic.Abort "chaos"))
             with
            | Ok () | Error _ -> ());
            Sim.Engine.sleep eng (Sim.Rng.uniform rng 0.5 3.0);
            (match
               Action.Atomic.atomically (Service.atomic w) ~node:"c1"
                 (fun act ->
                   match Gvd.include_ gvd ~act ~uid "t2" with
                   | Ok (Gvd.Granted _) -> ()
                   | _ -> raise (Action.Atomic.Abort "include"))
             with
            | Ok () | Error _ -> ());
            Sim.Engine.sleep eng (Sim.Rng.uniform rng 0.5 3.0)
          done);
      (* Binder churn keeps the Sv half moving through the batch path. *)
      Service.spawn_client w "c2" (fun () ->
          for _ = 1 to rounds do
            (match
               Service.with_bound w ~client:"c2" ~scheme:Scheme.Independent
                 ~policy:Replica.Policy.Single_copy_passive ~uid
                 (fun act group ->
                   ignore (Service.invoke w group ~act "incr"))
             with
            | Ok () | Error _ -> ());
            Sim.Engine.sleep eng (Sim.Rng.uniform rng 0.5 4.0)
          done);
      (* Lock-free poller: both snapshot endpoints report the same entry
         version; neither may ever observe it decreasing. *)
      Service.spawn_client w "c3" (fun () ->
          for _ = 1 to rounds * 6 do
            Sim.Engine.sleep eng (Sim.Rng.uniform rng 0.2 2.0);
            (match
               Gvd.get_view_snapshot (Service.gvd w) ~from:"c3" uid
             with
            | Ok (Gvd.Granted (_, v)) -> observe v
            | _ -> ());
            match
              Gvd.get_server_snapshot (Service.gvd w) ~from:"c3" uid
            with
            | Ok (Gvd.Granted (_, v)) -> observe v
            | _ -> ()
          done);
      Service.run w;
      (* The poller's floor and the final committed version agree on
         direction: the local introspection view is at least as new as
         anything observed over the wire. *)
      monotone := !monotone && Gvd.snapshot_version (Service.gvd w) uid >= !last;
      !monotone)

(* ------------------------------------------------------------------ *)
(* The headline robustness property: any seed's generated fault schedule,
   applied to the chaos world and quiesced, passes the consolidated
   audit. Each instance is a full nemesis run, so the count is small; a
   failing instance reports the offending chaos seed for replay. *)

let prop_chaos_schedules_audit_clean =
  QCheck.Test.make ~name:"random chaos schedules audit clean" ~count:4
    QCheck.(pair (int_bound 1_000_000) bool)
    (fun (n, durable) ->
      let seed = Int64.of_int ((n * 2654435761) lor 1) in
      let events = Workload.Exp_chaos.gen_events ~durable ~seed () in
      let o = Workload.Exp_chaos.run_world ~durable ~seed ~events () in
      match o.Workload.Exp_chaos.oc_violations with
      | [] -> true
      | vs ->
          QCheck.Test.fail_reportf
            "chaos seed %Ld (%s): %s@.replay: repro chaos --seeds %Ld" seed
            (if durable then "durable-ns" else "classic")
            (String.concat "; " vs) seed)

let suite =
  [
    ( "properties",
      [
        Test_util.qcheck prop_engine_chaos;
        Test_util.qcheck prop_multicast_total_order;
        Test_util.qcheck prop_active_replicas_identical;
        Test_util.qcheck prop_scheme_soup_quiescent;
        Test_util.qcheck prop_snapshot_version_monotone;
        Test_util.qcheck prop_chaos_schedules_audit_clean;
      ] );
  ]
