(** Per-node lock manager with strict two-phase locking discipline.

    Resources are named by strings (a database entry per object UID, or an
    object instance on a server). Owners are action identifiers: locks are
    held by {e actions}, not fibers, and are released (or transferred to a
    parent action) when the action ends — the action layer drives this via
    {!release_all} and {!transfer_all}.

    Owners are hierarchical ({!Action.Action_id} strings): a request is
    also granted when every blocking lock is held by an {e ancestor}
    action ("c:1" for "c:1.2") — Arjuna's lock inheritance for nested
    actions. The nested action's grant is recorded under its own name and
    merges into the parent on [transfer_all].

    Grant policy is queue-fair: a request is granted only when it is
    compatible with every current holder {e and} no earlier waiter is still
    blocked, which prevents writer starvation. Lock {e promotion}
    ([promote]) is the paper's try-operation: it succeeds immediately or
    fails without waiting, and a failed promotion aborts the client action
    (§4.2.1). *)

type t
(** A lock manager. *)

type owner = string
(** Action identifier. *)

val create : ?metrics:Sim.Metrics.t -> Sim.Engine.t -> t
(** [create eng] is an empty manager. If [metrics] is given, the manager
    counts grants, waits, promotion failures and timeouts. *)

val acquire :
  t -> owner:owner -> mode:Mode.t -> ?timeout:float -> string -> (unit, [ `Timeout ]) result
(** [acquire t ~owner ~mode key] blocks the calling fiber until the lock is
    granted (re-entrant: a covering lock held by [owner] is granted
    immediately; a non-covering re-request is treated as a promotion
    attempt and, if it cannot be granted {e immediately}, fails as
    [`Timeout] to avoid self-deadlock). With [timeout], gives up after that
    much virtual time. Must run in a fiber. *)

val try_acquire : t -> owner:owner -> mode:Mode.t -> string -> bool
(** Non-blocking acquire; [false] if it would have to wait. *)

val available : t -> owner:owner -> mode:Mode.t -> string -> bool
(** Validate-under-mode query: [true] iff an immediate grant of [mode] to
    [owner] on [key] would succeed — a covering lock is already held, or
    the request is compatible with every other holder (promotion rule) and,
    for a fresh request, no earlier waiter is queued. Never mutates the
    lock table: callers probe before touching state the grant would
    protect (the optimistic commit validation peeks here before staging
    its version note). *)

val promote : t -> owner:owner -> to_mode:Mode.t -> string -> bool
(** [promote t ~owner ~to_mode key] upgrades [owner]'s lock on [key]
    without waiting: [true] iff [owner] holds a lock and [to_mode] is
    compatible with every other holder. On failure the caller is expected
    to abort its action. *)

val release : t -> owner:owner -> string -> unit
(** Release [owner]'s lock on [key] (no-op if none), waking waiters. *)

val release_all : t -> owner:owner -> unit
(** Release every lock held by [owner] and cancel its waiting requests;
    called when the owning action commits (top-level) or aborts. *)

val release_everything : t -> unit
(** Drop every lock and cancel every waiter — a crash of the hosting node
    wipes its volatile lock table. Waiting fibers are never resumed (they
    died with the node or will time out). *)

val transfer_all : t -> from_owner:owner -> to_owner:owner -> unit
(** Move every lock held by [from_owner] to [to_owner], merging modes by
    strength — the Arjuna nested-commit rule (locks pass to the parent). *)

val holds : t -> owner:owner -> string -> Mode.t option
(** The mode [owner] holds on [key], if any. *)

val holders : t -> string -> (owner * Mode.t) list
(** Current holders of [key], sorted by owner. *)

val all_held : t -> (string * (owner * Mode.t) list) list
(** Every key with at least one holder, with its holders — sorted both
    ways. Quiescence audits assert this is empty after a world drains. *)

val waiting : t -> string -> int
(** Number of queued (unsatisfied) requests on [key]. *)

val locked_keys : t -> owner:owner -> string list
(** All keys on which [owner] holds a lock, sorted. *)

val pp : Format.formatter -> t -> unit
(** Dump the lock table (holders and queue lengths). *)
