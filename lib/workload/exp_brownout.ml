open Naming

(* tab-brownout: hedged vs unhedged commit latency under gray failure.

   One client commits a long sequence of single-object writes whose St
   spans two stores, one of which is browned out for the whole run:
   every message into or out of it may gain a uniform service-time
   inflation, always below the 30s lock/multicast timeouts — the node is
   slow, never dead, so nothing in the failure detectors or breakers
   fires on its own. Each brownout probability runs the SAME seed twice:
   once with the world's [hedged_rpc] knob off (the seed behaviour) and
   once with it on, so the only difference is the hedging plane — the
   per-destination health tracker delaying a backup copy of each
   idempotent store scatter and racing it against the primary.

   The quantity of interest is the tail: an unhedged commit whose
   prepare (or phase-2) message draws the inflation eats the full 15-28s
   hit; a hedged commit pays the health-derived hedge delay (~4s) plus a
   fresh draw, which is clean with high probability — min-of-two turns a
   linear tail into a quadratic one. The p99 ratio at the middle
   probability is pinned >= 2x as a tier-1 test (test_brownout.ml). *)

let stores = [ "t1"; "t2" ]
let browned = "t1"

type sample = {
  b_commits : int;
  b_mean : float;
  b_p50 : float;
  b_p95 : float;
  b_p99 : float;
  b_hedges : int;
  b_brownouts : int;
}

let episode ~hedged ~prob ~commits ~seed () =
  let w =
    (* A LAN-like base latency: the paper's default U(0.5,1.5)s per hop
       makes a healthy ~20-round commit take ~24s, which would bury the
       15-28s inflation inside the baseline. On a 0.05-0.15s fabric the
       healthy commit is ~2.5s and a single browned hop is a 10x tail
       event — the regime hedging is built for. *)
    Service.create ~seed ~hedged_rpc:hedged
      ~latency:(fun rng -> Sim.Rng.uniform rng 0.05 0.15)
      {
        Service.gvd_node = "ns";
        gvd_nodes = [];
        server_nodes = [ "alpha" ];
        store_nodes = stores;
        client_nodes = [ "c1" ];
      }
  in
  let uid =
    Service.create_object w ~name:"obj" ~impl:"counter" ~sv:[ "alpha" ]
      ~st:stores ()
  in
  Service.run ~until:1.0 w;
  let eng = Service.engine w in
  let m = Service.metrics w in
  if prob > 0.0 then
    Net.Fault.brownout_for (Service.network w) ~at:2.0 ~duration:1.0e9 ~prob
      ~lo:15.0 ~hi:28.0 browned;
  let crng = Sim.Rng.split (Sim.Engine.rng eng) in
  let ok = ref 0 in
  Service.spawn_client w "c1" (fun () ->
      for _ = 1 to commits do
        let t0 = Sim.Engine.now eng in
        (match
           Service.with_bound w ~client:"c1" ~scheme:Scheme.Independent
             ~policy:Replica.Policy.Single_copy_passive ~uid
             (fun act group -> ignore (Service.invoke w group ~act "add 1"))
         with
        | Ok () ->
            incr ok;
            Sim.Metrics.observe m "commit.latency" (Sim.Engine.now eng -. t0)
        | Error _ -> ());
        Sim.Engine.sleep eng (Sim.Rng.uniform crng 2.0 5.0)
      done);
  Service.run w;
  {
    b_commits = !ok;
    b_mean = Sim.Metrics.mean m "commit.latency";
    b_p50 = Sim.Metrics.percentile m "commit.latency" 50.0;
    b_p95 = Sim.Metrics.percentile m "commit.latency" 95.0;
    b_p99 = Sim.Metrics.percentile m "commit.latency" 99.0;
    b_hedges = Sim.Metrics.counter m "rpc.hedges";
    b_brownouts = Sim.Metrics.counter m "fault.brownout";
  }

(* The acceptance pin reads this: p99 commit latency of the unhedged run
   over the hedged run, same seed, same brownout schedule. The operating
   point keeps the per-message probability low enough that BOTH copies of
   a hedged call drawing the inflation (the only way a hedged commit
   stays slow) is rarer than the p99 itself. *)
let p99_ratio ?(prob = 0.02) ?(commits = 150) ?(seed = 31L) () =
  let unhedged = episode ~hedged:false ~prob ~commits ~seed () in
  let hedged = episode ~hedged:true ~prob ~commits ~seed () in
  (unhedged.b_p99 /. hedged.b_p99, unhedged, hedged)

let run () =
  let commits = 150 in
  let seed = 31L in
  let rows =
    List.concat_map
      (fun prob ->
        let unhedged = episode ~hedged:false ~prob ~commits ~seed () in
        let hedged = episode ~hedged:true ~prob ~commits ~seed () in
        let row label s ratio =
          [
            Printf.sprintf "%.2f" prob;
            label;
            Table.cell_i s.b_commits;
            Table.cell_f s.b_mean;
            Table.cell_f s.b_p50;
            Table.cell_f s.b_p95;
            Table.cell_f s.b_p99;
            Table.cell_i s.b_hedges;
            Table.cell_i s.b_brownouts;
            ratio;
          ]
        in
        [
          row "unhedged" unhedged "1.00x";
          row "hedged" hedged
            (Printf.sprintf "%.2fx" (unhedged.b_p99 /. hedged.b_p99));
        ])
      [ 0.0; 0.01; 0.02; 0.05 ]
  in
  Table.make
    ~title:"tab-brownout: hedged vs unhedged commit latency under gray failure"
    ~columns:
      [
        "brownout prob";
        "mode";
        "commits";
        "mean";
        "p50";
        "p95";
        "p99";
        "hedges";
        "inflations";
        "p99 gain";
      ]
    ~notes:
      [
        "One client, 150 sequential single-object commits, St = {t1, t2}";
        "with t1 browned out for the whole run: each message into or out";
        "of it gains U(15,28)s extra latency with the row's probability —";
        "below every timeout, so only the latency plane can see the";
        "sickness. Same seed per row pair; the only difference is the";
        "hedged_rpc knob. Hedged store scatters launch a backup copy of";
        "the idempotent prepare/phase-2 call after a health-derived delay";
        "(EWMA + 3 x deviation over the fleet, floored at 4s) and take";
        "the first answer: a commit only stays slow when both draws come";
        "up inflated, so the linear latency tail goes quadratic. At";
        "prob 0.00 the two runs are identical (no hedge ever fires";
        "before the healthy RTT) — the off-path guard. The p99 gain at";
        "prob 0.02 is pinned >= 2x as a tier-1 test (test_brownout.ml).";
        "The world runs a LAN-like U(0.05,0.15)s hop latency so a browned";
        "hop is a 10x tail event rather than noise inside the baseline.";
      ]
    rows
