(** Node-local recoverable resources enlisted in remote atomic actions.

    A {e resource manager} owns some node-local state manipulated by RPC
    handlers on behalf of remote actions — the group view database entries,
    an activated object on a server. The handlers take locks and stage
    updates keyed by action id; this module transports the action-end
    protocol to them:

    - [prepare]: vote on commit (phase 1);
    - [commit]: make staged updates permanent and release the action's
      locks (phase 2);
    - [abort]: undo staged updates and release locks;
    - [transfer]: fold a {e nested} action's locks and staged updates into
      its parent (Arjuna nested-commit semantics — nothing becomes durable
      yet).

    The client-side {!Atomic} module calls these automatically for every
    resource an action {e enlists}. *)

type manager = {
  m_prepare : action:string -> bool;
  m_commit : action:string -> unit;
  m_abort : action:string -> unit;
  m_transfer : action:string -> parent:string -> unit;
}

type t
(** The resource-hosting runtime for one simulated world. *)

val create : Net.Rpc.t -> t

val register : t -> node:Net.Network.node_id -> resource:string -> manager -> unit
(** Install a manager under [resource] on [node], replacing any previous
    registration. *)

val registered : t -> node:Net.Network.node_id -> resource:string -> bool

(* Remote action-end operations; called from a fiber on [from]. *)

val prepare :
  t -> from:Net.Network.node_id -> node:Net.Network.node_id -> resource:string ->
  action:string -> (bool, Net.Rpc.error) result

val commit :
  t -> from:Net.Network.node_id -> node:Net.Network.node_id -> resource:string ->
  action:string -> (unit, Net.Rpc.error) result

val abort :
  t -> from:Net.Network.node_id -> node:Net.Network.node_id -> resource:string ->
  action:string -> (unit, Net.Rpc.error) result

val transfer :
  t -> from:Net.Network.node_id -> node:Net.Network.node_id -> resource:string ->
  action:string -> parent:string -> (unit, Net.Rpc.error) result
