test/test_regressions.ml: Action Alcotest Binder Gvd List Naming Net Replica Scheme Service Sim Store
