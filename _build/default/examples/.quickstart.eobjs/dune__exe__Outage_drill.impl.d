examples/outage_drill.ml: Action Gvd List Naming Net Printf Replica Scheme Service Sim Store String
