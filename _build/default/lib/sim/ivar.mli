(** Write-once synchronisation variable for fibers.

    An ivar starts empty; [fill] sets its value exactly once and wakes every
    fiber blocked in [read]. Ivars are the simulator's fundamental rendezvous
    primitive: RPC replies, commit decisions and election outcomes are all
    delivered through them. *)

type 'a t
(** An ivar holding a value of type ['a]. *)

exception Already_filled
(** Raised by [fill] on an ivar that already holds a value. *)

val create : unit -> 'a t
(** A fresh, empty ivar. *)

val fill : 'a t -> 'a -> unit
(** [fill iv v] stores [v] and resumes all waiting fibers with [v].
    @raise Already_filled if [iv] already holds a value. *)

val try_fill : 'a t -> 'a -> bool
(** [try_fill iv v] is like [fill] but returns [false] instead of raising
    when [iv] is already full. *)

val is_filled : 'a t -> bool
(** Whether the ivar holds a value. *)

val peek : 'a t -> 'a option
(** The value, if any, without blocking. *)

val read : Engine.t -> 'a t -> 'a
(** [read eng iv] returns the value of [iv], suspending the calling fiber
    until [iv] is filled. *)

val read_timeout : Engine.t -> float -> 'a t -> ('a, exn) result
(** [read_timeout eng dt iv] is [Ok v] if [iv] was filled within [dt]
    virtual time units, [Error Engine.Timed_out] otherwise. *)
