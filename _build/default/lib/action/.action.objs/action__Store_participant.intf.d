lib/action/store_participant.mli: Atomic Net Store
