type op = { hy_uid : Store.Uid.t; hy_node : Net.Network.node_id }

type t = {
  binder : Binder.t;
  ns_node : Net.Network.node_id;
  sets : (int, Net.Network.node_id list) Hashtbl.t;
  ep_add : (op, unit) Net.Rpc.endpoint;
  ep_remove : (op, unit) Net.Rpc.endpoint;
  ep_servers : (Store.Uid.t, Net.Network.node_id list) Net.Rpc.endpoint;
}

let art t =
  Replica.Server.atomic_runtime
    (Replica.Group.server_runtime (Binder.group_runtime t.binder))

let rpc t = Action.Atomic.rpc (art t)

let install binder ~node =
  let t =
    {
      binder;
      ns_node = node;
      sets = Hashtbl.create 32;
      ep_add = Net.Rpc.endpoint "hybrid.add";
      ep_remove = Net.Rpc.endpoint "hybrid.remove";
      ep_servers = Net.Rpc.endpoint "hybrid.servers";
    }
  in
  Net.Rpc.serve (rpc t) ~node t.ep_add (fun { hy_uid; hy_node } ->
      let cur =
        Option.value ~default:[] (Hashtbl.find_opt t.sets (Store.Uid.serial hy_uid))
      in
      if not (List.mem hy_node cur) then
        Hashtbl.replace t.sets (Store.Uid.serial hy_uid) (cur @ [ hy_node ]));
  Net.Rpc.serve (rpc t) ~node t.ep_remove (fun { hy_uid; hy_node } ->
      let cur =
        Option.value ~default:[] (Hashtbl.find_opt t.sets (Store.Uid.serial hy_uid))
      in
      Hashtbl.replace t.sets (Store.Uid.serial hy_uid)
        (List.filter (fun n -> n <> hy_node) cur));
  Net.Rpc.serve (rpc t) ~node t.ep_servers (fun uid ->
      Option.value ~default:[] (Hashtbl.find_opt t.sets (Store.Uid.serial uid)));
  t

let register t ~from:_ ~uid ~sv = Hashtbl.replace t.sets (Store.Uid.serial uid) sv

let add_server t ~from ~uid node =
  Net.Rpc.call (rpc t) ~from ~dst:t.ns_node t.ep_add { hy_uid = uid; hy_node = node }

let remove_server t ~from ~uid node =
  Net.Rpc.call (rpc t) ~from ~dst:t.ns_node t.ep_remove { hy_uid = uid; hy_node = node }

let servers t ~from uid = Net.Rpc.call (rpc t) ~from ~dst:t.ns_node t.ep_servers uid

let take k xs =
  let rec go k = function
    | [] -> []
    | _ when k = 0 -> []
    | x :: rest -> x :: go (k - 1) rest
  in
  go k xs

(* The hybrid bind's naming-tier reads: the lightweight name server's
   [Sv] set, the database's [impl], and [St] under the nested-action read
   lock. Serially that is three round-trips; under the binder's
   [pipelined_binds] they leave as one {!Sim.Join} scatter — the same
   independence argument as scheme A's pipelined reads (three separately
   locked pieces, all asked for in read mode, none feeding another), with
   the [St] lock still owned by the nested action and held to top-level
   end. Join tasks return values; only the nested fiber raises. *)
let hybrid_reads t ~act ~client uid =
  let router = Binder.router t.binder in
  let read_sv () =
    match servers t ~from:client uid with
    | Ok sv -> Ok sv
    | Error e -> Error (Net.Rpc.error_to_string e)
  in
  let read_impl () =
    match Router.entry_info router ~from:client uid with
    | Ok (Some info) -> Ok info.Gvd.ei_impl
    | Ok None -> Error "unknown object"
    | Error e -> Error (Net.Rpc.error_to_string e)
  in
  let read_st nested =
    match Router.get_view router ~act:nested uid with
    | Ok (Gvd.Granted st) -> Ok st
    | Ok (Gvd.Refused why) | Ok (Gvd.Busy why) -> Error why
    | Ok (Gvd.Moved dest) -> Error ("wrong shard: " ^ dest)
    | Error e -> Error (Net.Rpc.error_to_string e)
  in
  if not (Binder.pipelined_binds t.binder) then
    match read_sv () with
    | Error why -> Error (Binder.Name_refused why)
    | Ok sv -> (
        match read_impl () with
        | Error why -> Error (Binder.Name_refused why)
        | Ok impl -> (
            (* St through the atomic database, nested in the client
               action: the read lock is held to commit, so exclusion
               keeps its standard-scheme guarantees. *)
            let st_read =
              Action.Atomic.atomically_nested act (fun nested ->
                  match read_st nested with
                  | Ok st -> st
                  | Error why -> raise (Action.Atomic.Abort why))
            in
            match st_read with
            | Error why -> Error (Binder.Name_refused why)
            | Ok st -> Ok (sv, impl, st)))
  else
    let joined =
      Action.Atomic.atomically_nested act (fun nested ->
          let results =
            Sim.Join.all
              (Action.Atomic.engine (art t))
              [
                (fun () -> `Sv (read_sv ()));
                (fun () -> `Impl (read_impl ()));
                (fun () -> `St (read_st nested));
              ]
          in
          let sv = ref None and impl = ref None and st = ref None in
          List.iter
            (function
              | `Sv r -> sv := Some r
              | `Impl r -> impl := Some r
              | `St r -> st := Some r)
            results;
          match (!sv, !impl, !st) with
          | Some (Ok sv), Some (Ok impl), Some (Ok st) -> (sv, impl, st)
          | Some (Error why), _, _
          | _, Some (Error why), _
          | _, _, Some (Error why) ->
              raise (Action.Atomic.Abort why)
          | _ -> raise (Action.Atomic.Abort "pipelined bind: missing read"))
    in
    match joined with
    | Error why -> Error (Binder.Name_refused why)
    | Ok reads -> Ok reads

let bind t ~act ~uid ~policy =
  let client = Action.Atomic.node act in
  let router = Binder.router t.binder in
  let grt = Binder.group_runtime t.binder in
  match hybrid_reads t ~act ~client uid with
  | Error e -> Error e
  | Ok (sv, impl, st) -> (
      let chosen = take (Replica.Policy.replicas policy) sv in
      if chosen = [] then Error (Binder.No_server "empty server set")
      else
        match
          Replica.Group.activate grt ~client ~uid ~impl ~policy
            ~servers:chosen ~stores:st
        with
        | Error why -> Error (Binder.No_server why)
        | Ok group ->
            let current_stores act' =
              match Router.get_view router ~act:act' uid with
              | Ok (Gvd.Granted nodes) -> Ok nodes
              | Ok (Gvd.Refused why) | Ok (Gvd.Busy why) -> Error why
              | Ok (Gvd.Moved dest) -> Error ("wrong shard: " ^ dest)
              | Error e -> Error (Net.Rpc.error_to_string e)
            in
            let exclude act' failed =
              Binder.exclusion t.binder ~scheme:Scheme.Standard ~uid act'
                failed
            in
            (if not (Binder.optimistic_commit t.binder) then
               Replica.Commit.attach grt act group ~current_stores ~exclude ()
             else begin
               (* Same optimistic flavour as the binder's: snapshot the
                  (St, revision) pair lock-free, validate in the prepare
                  round. The hybrid scheme keeps no version fence, so
                  there is no [note_version] — validation's only job here
                  is the revision check. *)
               let snapshot_stores () =
                 match Router.get_view_commit router ~from:client uid with
                 | Ok (Gvd.Granted (nodes, rev)) -> Ok (nodes, rev)
                 | Ok (Gvd.Refused why) | Ok (Gvd.Busy why) -> Error why
                 | Ok (Gvd.Moved dest) -> Error ("wrong shard: " ^ dest)
                 | Error e -> Error (Net.Rpc.error_to_string e)
               in
               let validate act' ~version ~rev =
                 match
                   Router.validate_view router ~act:act' ~uid ~version ~rev
                 with
                 | Ok (Gvd.Granted true) -> `Validated
                 | Ok (Gvd.Granted false) -> `Conflict
                 | Ok (Gvd.Refused _) | Ok (Gvd.Busy _) -> `Conflict
                 | Ok (Gvd.Moved dest) -> `Failed ("wrong shard: " ^ dest)
                 | Error e -> `Failed (Net.Rpc.error_to_string e)
               in
               Replica.Commit.attach grt act group ~current_stores
                 ~snapshot_stores ~validate ~exclude ()
             end);
            Ok
              {
                Binder.bd_uid = uid;
                bd_scheme = Scheme.Standard;
                bd_group = group;
                bd_servers = group.Replica.Group.g_members;
                bd_stores = st;
                bd_version = 0;
              })
