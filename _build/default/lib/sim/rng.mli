(** Deterministic, splittable pseudo-random number generator.

    The generator implements SplitMix64. Determinism matters for the
    simulator: every experiment is reproducible from a single 64-bit seed,
    and [split] produces statistically independent child generators so that
    concurrent workload generators do not perturb one another when the
    experiment topology changes. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] is a fresh generator seeded with [seed]. *)

val split : t -> t
(** [split t] advances [t] and returns an independent child generator. *)

val copy : t -> t
(** [copy t] is a generator that will produce the same stream as [t]. *)

val int64 : t -> int64
(** [int64 t] is the next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument]
    if [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> float -> bool
(** [bool t p] is [true] with probability [p] (clamped to [\[0,1\]]). *)

val exponential : t -> float -> float
(** [exponential t mean] samples an exponential distribution with the
    given [mean]; used for Poisson arrival processes. *)

val uniform : t -> float -> float -> float
(** [uniform t lo hi] is uniform in [\[lo, hi)]. *)

val pick : t -> 'a list -> 'a
(** [pick t xs] is a uniformly chosen element of [xs]. Raises
    [Invalid_argument] on the empty list. *)

val shuffle : t -> 'a list -> 'a list
(** [shuffle t xs] is a uniform permutation of [xs]. *)
