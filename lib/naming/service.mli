(** One-stop assembly of a simulated world with the full stack: engine,
    network, stores, action runtime, server hosting, replica groups, and
    the naming-and-binding service.

    This is the library's quickstart surface. A {e world} is built from a
    topology (which nodes exist and what they can do); persistent objects
    are then created with {!create_object}, and clients run atomic actions
    against them with {!with_bound}, which performs the full bind →
    invoke → commit cycle of the paper under a chosen access scheme.

    All substrate handles are exposed for advanced use. *)

type topology = {
  gvd_node : Net.Network.node_id;
      (** hosts the primary naming shard and the multicast sequencer;
          assumed always available (§3.1) *)
  gvd_nodes : Net.Network.node_id list;
      (** additional naming shard nodes; [[]] gives the paper's
          single-node service, byte-for-byte the pre-sharding behaviour *)
  server_nodes : Net.Network.node_id list;  (** can run object servers *)
  store_nodes : Net.Network.node_id list;  (** have object stores *)
  client_nodes : Net.Network.node_id list;  (** run applications *)
}

type t

val create :
  ?seed:int64 ->
  ?latency:(Sim.Rng.t -> float) ->
  ?lock_timeout:float ->
  ?use_exclude_write:bool ->
  ?durable_naming:bool ->
  ?cleanup_period:float ->
  ?extra_impls:Replica.Object_impl.t list ->
  ?bind_cache_lease:float ->
  ?naming_service_time:float ->
  ?use_flush_delay:float ->
  ?delta_shipping:bool ->
  ?force_delta:bool ->
  ?optimistic_commit:bool ->
  ?pipelined_binds:bool ->
  ?commit_batch_window:float ->
  ?floor_gossip_period:float ->
  ?hedged_rpc:bool ->
  ?deadline_shedding:bool ->
  ?degraded_trips:bool ->
  ?hedge_to_sibling:bool ->
  ?autonomic_membership:bool ->
  ?autonomic_config:Replica.Autonomic.config ->
  topology ->
  t
(** Build a world. Stock object implementations (counter, account,
    register) are always available; [extra_impls] adds more.
    [cleanup_period] enables the use-list cleanup daemon with that sweep
    period; the default (0.0) leaves it off — the daemon is an infinite
    fiber, so worlds running it must drive the engine with [run ~until]. [use_exclude_write] selects
    the §4.2.1 lock type for [Exclude] (default true). [durable_naming]
    (default false) lets the service node crash and recover as a
    persistent object instead of being assumed always available (see
    {!Gvd.install}). Recovery hooks
    (2PC resolution, then store reintegration, then server reinsertion)
    are attached to every node per its capabilities.

    [delta_shipping] (default false) turns on op-log delta replication
    for the commit copy-back ({!Replica.Server.set_delta_shipping},
    {!Replica.Oplog}): stores the coordinator knows to be exactly one log
    suffix behind receive the operations, not the whole state. The
    default runs the seed's full-state copy byte-identically.
    [force_delta] (default false) skips the per-write encoded-size
    comparison and ships a delta whenever the base version is known —
    the pre-comparison behaviour, kept for worlds that measure delta
    coverage rather than bytes ({!Replica.Server.set_force_delta}).

    [optimistic_commit] and [pipelined_binds] (both default {e true}
    since the §13 knobs were proven under chaos and flipped on) are
    handed to {!Binder.create}: the former replaces the commit-time
    locked [GetView] re-read with a lock-free validated snapshot, the
    latter scatters scheme A's three serial bind reads as one {!Sim.Join}
    round. Passing both as [false] reproduces the classic pre-optimistic
    tree byte-identically (chaos keeps doing so in its [classic] and
    [durable-ns] worlds).

    [commit_batch_window] (default 2.0, tuned on after the §14 knob was
    proven under chaos; pass 0.0 for the classic unbatched tree)
    enables the group-commit plane ({!Replica.Groupcommit},
    docs/PROTOCOLS.md §14): concurrent commits whose store sets overlap
    merge for up to this much simulated time (closing early on
    quiescence) and pay one prepare and one phase-2 scatter per store
    for the whole batch, with acked-version floors piggybacked on the
    batched phase-2 acks. At 0.0 the plane is off and byte-identical to
    the unbatched tree. [floor_gossip_period] (default 0.0 = off)
    additionally runs a low-rate anti-entropy daemon that folds every
    store's committed counters into the shared floor. Its idle waits are
    daemon sleeps ({!Sim.Engine.daemon_sleep}), so drain-mode [run]
    still terminates with the daemon parked — gossip-enabled worlds work
    under both [run ~until] and the chaos harness's quiescence drain —
    and a crash of the gossiping server re-arms the daemon on recovery.

    The gray-failure resilience knobs (docs/PROTOCOLS.md §15, all default
    false with the off paths byte-identical): [hedged_rpc] turns on
    hedged scatter-gathers for idempotent fan-outs (2PC prepares and
    phase-2 deliveries, activation probes, group role probes, plain
    naming reads) plus latency-ranked replica preference, [deadline_shedding]
    makes servers refuse calls whose initiator's deadline has already
    passed (metric [retry.shed_expired]; only abortable phase-1 work
    carries deadlines — phase-2 of a decided outcome is never shed), and
    [degraded_trips] lets the retry breaker trip on sustained slowness
    as reported by {!Net.Health}, with latency-checked half-open
    recovery.

    The autonomic membership knobs (docs/PROTOCOLS.md §16, both default
    false with the off paths byte-identical): [hedge_to_sibling]
    (effective only with [hedged_rpc]) routes a hedged commit-path leg's
    backup copy to a healthy {e sibling} [St] member when the primary is
    sustainedly slow — a sibling win counts as the leg's failure, never
    as the primary's answer ({!Replica.Server.set_sibling_hedge}) — and
    walks activation store reads healthiest-first.
    [autonomic_membership] starts one {!Replica.Autonomic} controller
    daemon per server node: stores that stay sustainedly slow past the
    hysteresis window, as seen by a quorum of controllers, are Excluded
    from their [St] sets through the optimistic validated round, and
    re-Included (with catch-up through the reintegration fence) once
    they heal, with a cooldown damping membership flaps.
    [autonomic_config] overrides {!Replica.Autonomic.default_config}.

    [bind_cache_lease] (default off) enables the client-side lease cache
    of bind results with that lease duration (see {!Bind_cache}).
    [naming_service_time] (default 0.0) models the per-operation CPU cost
    of each naming shard (see {!Gvd.install}); both defaults reproduce
    the seed behaviour exactly. [use_flush_delay] (default 5.0) is the
    use-list decrement coalescing window handed to {!Binder.create}; a
    blocked [Insert] pulls pending credits early regardless (see
    {!Binder.pull_credits}). *)

(* Substrate access *)

val engine : t -> Sim.Engine.t
val network : t -> Net.Network.t
val atomic : t -> Action.Atomic.runtime
val store_host : t -> Action.Store_host.t
val server_runtime : t -> Replica.Server.runtime
val group_runtime : t -> Replica.Group.runtime
val router : t -> Router.t
val gvd : t -> Gvd.t
(** The primary naming shard (the only one when [gvd_nodes = []]). *)

val binder : t -> Binder.t
val bind_cache : t -> Bind_cache.t option
val metrics : t -> Sim.Metrics.t
val trace : t -> Sim.Trace.t
val uid_supply : t -> Store.Uid.supply

val topology : t -> topology
(** The topology the world was created from. *)

val autonomic : t -> Replica.Autonomic.t option
(** The autonomic membership plane, when [autonomic_membership] was
    set. *)

val create_object :
  t ->
  name:string ->
  impl:string ->
  ?initial:string ->
  sv:Net.Network.node_id list ->
  st:Net.Network.node_id list ->
  unit ->
  Store.Uid.t
(** Create a persistent object before the simulation starts: seeds its
    initial state on every [st] store and registers the naming entry.
    [initial] defaults to the implementation's initial payload. *)

val lookup : t -> from:Net.Network.node_id -> string -> Store.Uid.t option
(** Name → UID through the naming service; must run in a fiber. *)

val with_bound :
  ?deadline:float ->
  t ->
  client:Net.Network.node_id ->
  scheme:Scheme.t ->
  policy:Replica.Policy.t ->
  uid:Store.Uid.t ->
  (Action.Atomic.t -> Replica.Group.t -> 'a) ->
  ('a, string) result
(** [with_bound t ~client ~scheme ~policy ~uid body] runs, in a fiber on
    [client]: a top-level atomic action that binds to the object under
    [scheme], executes [body act group], and commits (with the paper's
    commit-time state copy-back and exclusion attached). Returns the
    body's value or the abort reason. [deadline] is the relative time
    budget handed to {!Action.Atomic.atomically}; with the world's
    [deadline_shedding] knob on it also propagates to servers, which
    refuse expired phase-1 work on its behalf. *)

val invoke :
  t ->
  Replica.Group.t ->
  act:Action.Atomic.t ->
  ?write:bool ->
  string ->
  string
(** Convenience wrapper over {!Replica.Group.invoke} that aborts the
    action (raising {!Action.Atomic.Abort}) on failure. *)

val run : ?until:float -> t -> unit
(** Drive the simulation (delegates to {!Sim.Engine.run}). *)

val spawn_client : t -> Net.Network.node_id -> (unit -> unit) -> unit
(** Spawn a fiber on a client node. *)
