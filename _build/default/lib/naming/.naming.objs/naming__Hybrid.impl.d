lib/naming/hybrid.ml: Action Binder Gvd Hashtbl List Net Option Replica Scheme Store
