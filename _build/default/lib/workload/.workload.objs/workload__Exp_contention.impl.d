lib/workload/exp_contention.ml: Float List Naming Printf Replica Scheme Service Sim Table
