(** A node's stable object store: UID → committed {!Object_state.t}.

    Contents survive crashes (stable storage, §2.1). The store records a
    {e tainted} flag while a 2PC write is being applied so that recovery
    can detect torn applications — in this simulator applications are
    atomic (single event), so the flag only serves assertions. *)

type t
(** One node's object store. *)

val create : unit -> t

val read : t -> Uid.t -> Object_state.t option
(** Committed state of the object, if present. *)

val write : t -> Uid.t -> Object_state.t -> unit
(** Install a committed state, replacing any previous one. *)

val remove : t -> Uid.t -> unit
(** Delete the object's state. *)

val mem : t -> Uid.t -> bool

val uids : t -> Uid.t list
(** All stored object UIDs, sorted by serial. *)

val size : t -> int

val version_of : t -> Uid.t -> Version.t option
(** Shortcut for [Option.map (fun s -> s.version) (read t uid)]. *)
