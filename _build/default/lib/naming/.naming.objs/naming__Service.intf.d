lib/naming/service.mli: Action Binder Gvd Net Replica Scheme Sim Store
