type t = Standard | Independent | Nested_toplevel

let to_string = function
  | Standard -> "standard"
  | Independent -> "independent"
  | Nested_toplevel -> "nested-toplevel"

let of_string = function
  | "standard" -> Some Standard
  | "independent" -> Some Independent
  | "nested-toplevel" -> Some Nested_toplevel
  | _ -> None

let all = [ Standard; Independent; Nested_toplevel ]

let pp ppf t = Format.pp_print_string ppf (to_string t)

let naming_rounds ~pipelined = function
  | Standard -> if pipelined then 1.0 else 3.0
  | Independent | Nested_toplevel -> 1.0
