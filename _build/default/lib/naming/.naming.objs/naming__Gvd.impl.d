lib/naming/gvd.ml: Action Hashtbl Int List Lockmgr Net Option Printf Sim Store String Use_list
