open Naming

(* tab-shard-scaling: throughput and bind latency of the naming tier as it
   is sharded over 1/2/4/8 nodes, with and without the client-side lease
   cache of bind results, plus one configuration performing an online
   rebalance (2 -> 4 shards) in the middle of the workload.

   Each naming operation is charged [service_time] of shard CPU
   (capacity-1 per shard), so a single shard queues the whole bind stream
   and extra shards buy real parallelism. Clients repeat-bind a small
   private working set, the regime the cache is built for. *)

let clients = 12
let actions_per_client = 25
let objects_per_client = 2
let service_time = 1.0
let lease = 120.0

type outcome = {
  oc_commits : int;
  oc_makespan : float;
  oc_bind_p95 : float;
  oc_hit_rate : float; (* nan when the cache is off *)
  oc_consistent : bool;
}

(* Run one configuration to completion. [shards] naming nodes are part of
   the world; [active] of them are in the initial shard map; when
   [rebalance_to] is given, an operator fiber grows the map to that many
   shards once a third of the workload has committed. *)
let run_config ~seed ~shards ~active ~cache ?rebalance_to () =
  let naming_extra = List.init (shards - 1) (fun i -> Printf.sprintf "ns%d" (i + 2)) in
  let naming_all = "ns" :: naming_extra in
  let client_nodes = List.init clients (fun i -> Printf.sprintf "c%d" (i + 1)) in
  let w =
    Service.create ~seed
      ?bind_cache_lease:(if cache then Some lease else None)
      ~naming_service_time:service_time
      {
        Service.gvd_node = "ns";
        gvd_nodes = naming_extra;
        server_nodes = [ "s1"; "s2" ];
        store_nodes = [ "t1"; "t2" ];
        client_nodes;
      }
  in
  let take n xs = List.filteri (fun i _ -> i < n) xs in
  if active < shards then Router.reset_map (Service.router w) (take active naming_all);
  let n_objects = clients * objects_per_client in
  let uids =
    List.init n_objects (fun i ->
        Service.create_object w
          ~name:(Printf.sprintf "obj%d" (i + 1))
          ~impl:"counter" ~sv:[ "s1"; "s2" ]
          ~st:[ (if i mod 2 = 0 then "t1" else "t2") ]
          ())
  in
  Service.run ~until:1.0 w;
  let eng = Service.engine w in
  let rng = Sim.Rng.split (Sim.Engine.rng eng) in
  let started = Sim.Engine.now eng in
  let commits = ref 0 and finish = ref started in
  (* Each client cycles over its private working set: pure repeat-binds. *)
  List.iteri
    (fun ci client ->
      let mine =
        List.filteri
          (fun i _ -> i / objects_per_client = ci)
          uids
      in
      let crng = Sim.Rng.split rng in
      Service.spawn_client w client (fun () ->
          for a = 0 to actions_per_client - 1 do
            let uid = List.nth mine (a mod objects_per_client) in
            (match
               Service.with_bound w ~client ~scheme:Scheme.Independent
                 ~policy:(Replica.Policy.Active 1) ~uid
                 (fun act group -> Service.invoke w group ~act "incr")
             with
            | Ok _ ->
                incr commits;
                finish := Sim.Engine.now eng
            | Error _ -> ());
            Sim.Engine.sleep eng (Sim.Rng.uniform crng 0.5 1.5)
          done))
    client_nodes;
  (match rebalance_to with
  | None -> ()
  | Some n ->
      let target = take n naming_all in
      Service.spawn_client w "ns" (fun () ->
          (* Wait until the workload is visibly in flight, then grow the
             map online: entries hand off shard-to-shard under the
             running binds. *)
          let third = clients * actions_per_client / 3 in
          while !commits < third do
            Sim.Engine.sleep eng 5.0
          done;
          Router.rebalance (Service.router w) ~from:"ns" target));
  Service.run w;
  let m = Service.metrics w in
  let consistent =
    List.for_all (fun uid -> Result.is_ok (Audit.mutual_consistency w uid)) uids
  in
  {
    oc_commits = !commits;
    oc_makespan = !finish -. started;
    oc_bind_p95 = Sim.Metrics.percentile m "bind.latency" 95.0;
    oc_hit_rate =
      (match Service.bind_cache w with
      | Some c -> Bind_cache.hit_rate c
      | None -> nan);
    oc_consistent = consistent;
  }

let run ?(seed = 4242L) () =
  let configs =
    List.concat_map
      (fun shards -> [ (shards, false, None); (shards, true, None) ])
      [ 1; 2; 4; 8 ]
    @ [ (4, true, Some 4) ]
  in
  let rows =
    List.map
      (fun (shards, cache, rebalance_to) ->
        let active, label =
          match rebalance_to with
          | Some n -> (2, Printf.sprintf "2->%d online" n)
          | None -> (shards, string_of_int shards)
        in
        let o = run_config ~seed ~shards ~active ~cache ?rebalance_to () in
        [
          label;
          (if cache then "on" else "off");
          Table.cell_i o.oc_commits;
          Table.cell_f o.oc_makespan;
          Table.cell_f (float_of_int o.oc_commits /. o.oc_makespan);
          Table.cell_f o.oc_bind_p95;
          (if Float.is_nan o.oc_hit_rate then "-" else Table.cell_pct o.oc_hit_rate);
          (if o.oc_consistent then "ok" else "VIOLATED");
        ])
      configs
  in
  Table.make
    ~title:
      "tab-shard-scaling: naming tier sharded over N nodes, lease cache on/off"
    ~columns:
      [
        "shards"; "cache"; "commits"; "makespan"; "commits/s"; "bind p95";
        "hit rate"; "St audit";
      ]
    ~notes:
      [
        (Printf.sprintf
           "%d clients x %d actions repeat-binding %d private counters each;"
           clients actions_per_client objects_per_client);
        (Printf.sprintf
           "every naming op costs %.1fs of shard CPU (capacity 1 per shard)."
           service_time);
        "Sharding divides the bind stream by object ownership; the cache";
        "removes the bind-time naming reads entirely on repeat binds. The";
        "last row grows the map 2->4 online, mid-workload, without";
        "quiescing in-flight binds; the St audit must hold throughout.";
      ]
    rows
