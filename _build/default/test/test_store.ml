(* Tests for the storage substrate: uids, versions, object states,
   object stores, intention logs. *)

open Store

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Uid *)

let test_uid_fresh_unique () =
  let s = Uid.supply () in
  let a = Uid.fresh s ~label:"x" and b = Uid.fresh s ~label:"x" in
  check_bool "distinct" false (Uid.equal a b);
  check_int "serials" 1 (Uid.serial b)

let test_uid_to_string () =
  let s = Uid.supply () in
  let a = Uid.fresh s ~label:"account" in
  check_string "printed" "account#0" (Uid.to_string a)

let test_uid_independent_supplies () =
  let s1 = Uid.supply () and s2 = Uid.supply () in
  let a = Uid.fresh s1 ~label:"x" and b = Uid.fresh s2 ~label:"y" in
  (* Same serial from different supplies: equality is serial-based, so the
     caller must use one supply per world — document by test. *)
  check_bool "same serial collides" true (Uid.equal a b)

(* ------------------------------------------------------------------ *)
(* Version *)

let test_version_progression () =
  let v0 = Version.initial in
  let v1 = Version.next v0 ~committed_by:"a1" in
  let v2 = Version.next v1 ~committed_by:"a2" in
  check_bool "v1 newer" true (Version.newer_than v1 v0);
  check_bool "v2 newer" true (Version.newer_than v2 v1);
  check_bool "not reflexive" false (Version.newer_than v1 v1);
  check_string "printed" "v2(a2)" (Version.to_string v2)

let test_version_compare_consistent () =
  let v0 = Version.initial in
  let v1 = Version.next v0 ~committed_by:"a" in
  check_bool "compare" true (Version.compare v0 v1 < 0);
  check_bool "equal" true (Version.equal v1 v1)

(* ------------------------------------------------------------------ *)
(* Object_state *)

let test_state_equality_is_mutual_consistency () =
  let a = Object_state.initial "s" in
  let b = Object_state.initial "s" in
  check_bool "identical states equal" true (Object_state.equal a b);
  let c =
    Object_state.make ~payload:"s"
      ~version:(Version.next Version.initial ~committed_by:"x")
  in
  check_bool "different version differs" false (Object_state.equal a c);
  let d = Object_state.make ~payload:"t" ~version:Version.initial in
  check_bool "different payload differs" false (Object_state.equal a d);
  check_bool "newer" true (Object_state.newer_than c a)

(* ------------------------------------------------------------------ *)
(* Object_store *)

let test_store_read_write_remove () =
  let sup = Uid.supply () in
  let uid = Uid.fresh sup ~label:"a" in
  let st = Object_store.create () in
  Alcotest.(check bool) "absent" false (Object_store.mem st uid);
  Object_store.write st uid (Object_state.initial "hello");
  (match Object_store.read st uid with
  | Some s -> check_string "payload" "hello" s.Object_state.payload
  | None -> Alcotest.fail "missing");
  Object_store.remove st uid;
  check_bool "removed" false (Object_store.mem st uid)

let test_store_overwrite_and_version () =
  let sup = Uid.supply () in
  let uid = Uid.fresh sup ~label:"a" in
  let st = Object_store.create () in
  Object_store.write st uid (Object_state.initial "v0");
  let v1 = Version.next Version.initial ~committed_by:"act" in
  Object_store.write st uid (Object_state.make ~payload:"v1" ~version:v1);
  (match Object_store.version_of st uid with
  | Some v -> check_bool "latest version" true (Version.equal v v1)
  | None -> Alcotest.fail "missing");
  check_int "one object" 1 (Object_store.size st)

let test_store_uids_sorted () =
  let sup = Uid.supply () in
  let a = Uid.fresh sup ~label:"a" in
  let b = Uid.fresh sup ~label:"b" in
  let st = Object_store.create () in
  Object_store.write st b (Object_state.initial "b");
  Object_store.write st a (Object_state.initial "a");
  Alcotest.(check (list string))
    "sorted" [ "a#0"; "b#1" ]
    (List.map Uid.to_string (Object_store.uids st))

(* ------------------------------------------------------------------ *)
(* Intent_log *)

let test_log_prepare_resolve_cycle () =
  let sup = Uid.supply () in
  let uid = Uid.fresh sup ~label:"a" in
  let log = Intent_log.create () in
  Intent_log.prepare log ~action:"t1" ~coordinator:"c" [ (uid, Object_state.initial "x") ];
  Alcotest.(check (list string)) "in doubt" [ "t1" ] (Intent_log.in_doubt log);
  (match Intent_log.prepared log ~action:"t1" with
  | Some { Intent_log.coordinator = "c"; writes = [ (u, _) ] } ->
      check_bool "uid kept" true (Uid.equal u uid)
  | _ -> Alcotest.fail "prepare record lost");
  Intent_log.resolve log ~action:"t1";
  Alcotest.(check (list string)) "resolved" [] (Intent_log.in_doubt log)

let test_log_decisions () =
  let log = Intent_log.create () in
  Alcotest.(check bool)
    "unknown" true
    (Intent_log.decision_of log ~action:"t1" = None);
  Intent_log.record_decision log ~action:"t1" Intent_log.Commit;
  Alcotest.(check bool)
    "commit" true
    (Intent_log.decision_of log ~action:"t1" = Some Intent_log.Commit);
  Intent_log.record_decision log ~action:"t2" Intent_log.Abort;
  Alcotest.(check bool)
    "abort" true
    (Intent_log.decision_of log ~action:"t2" = Some Intent_log.Abort);
  Intent_log.forget_decision log ~action:"t1";
  Alcotest.(check bool)
    "forgotten" true
    (Intent_log.decision_of log ~action:"t1" = None)

let test_log_multiple_in_doubt_sorted () =
  let log = Intent_log.create () in
  Intent_log.prepare log ~action:"b" ~coordinator:"c" [];
  Intent_log.prepare log ~action:"a" ~coordinator:"c" [];
  Alcotest.(check (list string)) "sorted" [ "a"; "b" ] (Intent_log.in_doubt log)

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_version_chain_monotone =
  QCheck.Test.make ~name:"version chains are strictly monotone" ~count:100
    QCheck.(small_list string)
    (fun actions ->
      let rec build v = function
        | [] -> true
        | a :: rest ->
            let v' = Version.next v ~committed_by:a in
            Version.newer_than v' v && build v' rest
      in
      build Version.initial actions)

let prop_store_write_read_roundtrip =
  QCheck.Test.make ~name:"object store write/read roundtrip" ~count:100
    QCheck.(small_list (pair small_string small_string))
    (fun kvs ->
      let sup = Uid.supply () in
      let st = Object_store.create () in
      let entries =
        List.map
          (fun (label, payload) ->
            let uid = Uid.fresh sup ~label in
            Object_store.write st uid (Object_state.initial payload);
            (uid, payload))
          kvs
      in
      List.for_all
        (fun (uid, payload) ->
          match Object_store.read st uid with
          | Some s -> String.equal s.Object_state.payload payload
          | None -> false)
        entries)

let suite =
  let tc = Alcotest.test_case in
  [
    ( "store.uid",
      [
        tc "fresh unique" `Quick test_uid_fresh_unique;
        tc "to_string" `Quick test_uid_to_string;
        tc "independent supplies" `Quick test_uid_independent_supplies;
      ] );
    ( "store.version",
      [
        tc "progression" `Quick test_version_progression;
        tc "compare consistent" `Quick test_version_compare_consistent;
        Test_util.qcheck prop_version_chain_monotone;
      ] );
    ( "store.object_state",
      [ tc "equality is mutual consistency" `Quick test_state_equality_is_mutual_consistency ] );
    ( "store.object_store",
      [
        tc "read write remove" `Quick test_store_read_write_remove;
        tc "overwrite and version" `Quick test_store_overwrite_and_version;
        tc "uids sorted" `Quick test_store_uids_sorted;
        Test_util.qcheck prop_store_write_read_roundtrip;
      ] );
    ( "store.intent_log",
      [
        tc "prepare resolve cycle" `Quick test_log_prepare_resolve_cycle;
        tc "decisions" `Quick test_log_decisions;
        tc "multiple in doubt sorted" `Quick test_log_multiple_in_doubt_sorted;
      ] );
  ]
