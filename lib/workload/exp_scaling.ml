open Naming

let run ?(seed = 101L) () =
  let w =
    Service.create ~seed
      {
        Service.gvd_node = "ns";
        gvd_nodes = [];
        server_nodes = [ "srv1"; "srv2" ];
        store_nodes = [ "disk1"; "disk2" ];
        client_nodes = [ "app"; "ops" ];
      }
  in
  let uid =
    Service.create_object w ~name:"obj" ~impl:"counter" ~sv:[ "srv1" ]
      ~st:[ "disk1" ] ()
  in
  Service.run ~until:1.0 w;
  let eng = Service.engine w in
  let rng = Sim.Rng.split (Sim.Engine.rng eng) in
  (* Phases: 0-100 baseline; ~100 add disk2; ~200 add srv2; ~300 retire
     srv1; run to 400. *)
  let phase_of t =
    if t < 100.0 then "baseline"
    else if t < 200.0 then "after add_store"
    else if t < 300.0 then "after add_server"
    else "after retire"
  in
  let commits = Hashtbl.create 4 and attempts = Hashtbl.create 4 in
  let bump tbl phase =
    Hashtbl.replace tbl phase
      (1 + Option.value ~default:0 (Hashtbl.find_opt tbl phase))
  in
  Service.spawn_client w "app" (fun () ->
      let rec loop () =
        if Sim.Engine.now eng < 400.0 then begin
          let phase = phase_of (Sim.Engine.now eng) in
          bump attempts phase;
          (match
             Service.with_bound w ~client:"app" ~scheme:Scheme.Independent
               ~policy:Replica.Policy.Single_copy_passive ~uid
               (fun act group -> Service.invoke w group ~act "incr")
           with
          | Ok _ -> bump commits phase
          | Error _ -> ());
          Sim.Engine.sleep eng (Sim.Rng.uniform rng 2.0 6.0);
          loop ()
        end
      in
      loop ());
  Service.spawn_client w "ops" (fun () ->
      let retry_admin label f =
        let rec go tries =
          match f () with
          | Ok () -> ()
          | Error (Admin.Busy _) when tries > 0 ->
              Sim.Engine.sleep eng 10.0;
              go (tries - 1)
          | Error e ->
              failwith (label ^ ": " ^ Admin.error_to_string e)
        in
        go 20
      in
      Sim.Engine.sleep eng 100.0;
      retry_admin "add_store" (fun () ->
          Admin.add_store (Service.binder w)
            ~server_rt:(Service.server_runtime w) ~from:"ops" ~uid "disk2");
      Sim.Engine.sleep eng 100.0;
      retry_admin "add_server" (fun () ->
          Admin.add_server (Service.binder w) ~from:"ops" ~uid "srv2");
      Sim.Engine.sleep eng 100.0;
      retry_admin "retire_server" (fun () ->
          Admin.retire_server (Service.binder w) ~from:"ops" ~uid "srv1"));
  Service.run w;
  let consistent =
    let st = Gvd.current_st (Service.gvd w) uid in
    let states =
      List.filter_map
        (fun node ->
          Store.Object_store.read
            (Action.Store_host.objects (Service.store_host w) node)
            uid)
        st
    in
    List.length states = List.length st
    &&
    match states with
    | [] -> true
    | first :: rest -> List.for_all (Store.Object_state.equal first) rest
  in
  let row phase =
    let c = Option.value ~default:0 (Hashtbl.find_opt commits phase) in
    let a = Option.value ~default:0 (Hashtbl.find_opt attempts phase) in
    [
      phase;
      Table.cell_i a;
      Table.cell_i c;
      Table.cell_pct (if a = 0 then nan else float_of_int c /. float_of_int a);
    ]
  in
  Table.make
    ~title:"tab-scaling: replication degree changed under load (§2.3(1))"
    ~columns:[ "phase"; "attempts"; "commits"; "commit rate" ]
    ~notes:
      [
        "An application stream runs throughout while operations staff grow";
        "StA, grow SvA and finally retire the original server. The database";
        "locks and Insert's quiescence requirement serialise the changes";
        "against current users, so every phase stays consistent.";
        (Printf.sprintf "Final Sv=[%s] St=[%s]; St invariant: %s."
           (String.concat ";" (Gvd.current_sv (Service.gvd w) uid))
           (String.concat ";" (Gvd.current_st (Service.gvd w) uid))
           (if consistent then "holds" else "VIOLATED"));
      ]
    (List.map row [ "baseline"; "after add_store"; "after add_server"; "after retire" ])
