(** Experiment [tab-exclude-lock]: the §4.2.1 type-specific lock ablation.

    A committing writer must [Exclude] a crashed store node while R other
    clients hold read locks on the same state-database entry (they are
    mid-action under the standard scheme). With the paper's exclude-write
    lock the promotion shares with the readers and the commit goes
    through; with plain write promotion it is refused as soon as R > 0
    and the writer's action aborts.

    Sweep R and report the writer's commit success under both lock
    types. *)

val run : ?seed:int64 -> unit -> Table.t
