let attach rt act group ?current_stores ?note_version ?snapshot_stores
    ?validate ~exclude () =
  let srv = Group.server_runtime rt in
  let art = Server.atomic_runtime srv in
  let sh = Action.Atomic.store_host art in
  let eng = Action.Atomic.engine art in
  let metrics = Net.Network.metrics (Action.Atomic.network art) in
  let gc = Server.groupcommit srv in
  let read_stores =
    match current_stores with
    | Some f -> f
    | None -> fun _ -> Ok group.Group.g_stores
  in
  Action.Atomic.before_commit act (fun () ->
      (* Group-commit plane (off unless the world set a batch window, in
         which case every entry below is guarded on [batching] so the off
         path stays byte-identical): announce this commit as approaching
         so open batches hold their window for it; the token settles at
         the prepare, or here at any earlier exit (commit-view error,
         read-optimised commit, an exception unwinding the hook). *)
      let batching = Groupcommit.enabled gc in
      let tok = if batching then Some (Groupcommit.enter gc) else None in
      let body () =
      match Group.commit_view rt group ~act with
      | Error why -> Error ("commit view: " ^ why)
      | Ok view when not view.Server.cv_dirty ->
          (* Read optimisation: no state change, no copy, no exclusion. *)
          Sim.Metrics.incr metrics "commit.read_optimised";
          Ok ()
      | Ok view ->
          let client = Action.Atomic.node act in
          let action = Action.Atomic.owner act in
          let uid = group.Group.g_uid in
          let full_state =
            Store.Object_state.make ~payload:view.Server.cv_payload
              ~version:view.Server.cv_version
          in
          let target = view.Server.cv_version.Store.Version.counter in
          let delta_on = Server.delta_shipping srv in
          let olog = Server.oplog srv in
          (* Gray-failure plane (both off by default, off = byte-identical):
             hedge the idempotent 2PC scatters with health-delayed backups,
             and ride the action's deadline on the phase-1 prepares so
             shedding servers can refuse votes this commit already gave up
             on. Phase-2 commit/abort deliberately carries no deadline: a
             decided outcome must reach the stores even when the initiator
             stopped waiting — shedding it would leak reservations and
             stall the acked floor. *)
          let hedge =
            if Server.hedged_rpc srv then Some (Net.Rpc.hedge ()) else None
          in
          let deadline_at = Action.Atomic.deadline act in
          (* Sibling-hedge map for one membership [current_st]: when the
             primary of a 2PC leg is sustainedly slow, route the leg's
             hedged backup copy to the healthiest other [St] member
             instead of re-sending to the slow node. The sibling holds
             the same object (it is in [St]), so a duplicate prepare or
             phase-2 there is idempotent; a sibling win surfaces as the
             leg's own error ({!Action.Store_host.prepare_each}), flowing
             into the ordinary §4.2 exclude / forget-ack conservatism —
             the win buys latency (the gather stops waiting on the
             browned node after one healthy round-trip), never a
             substituted answer. Off unless both [hedged_rpc] and
             [hedge_to_sibling] are set; off is byte-identical. *)
          let alt_map current_st =
            if hedge = None || not (Server.sibling_hedge srv) then None
            else
              let h = Net.Network.health (Action.Atomic.network art) in
              Some
                (fun dst ->
                  let now = Sim.Engine.now eng in
                  if Net.Health.sustained_slow h ~now dst then
                    match
                      Net.Health.rank h ~now
                        (List.filter (fun s -> s <> dst) current_st)
                    with
                    | best :: _ when not (Net.Health.sustained_slow h ~now best)
                      ->
                        Some best
                    | _ -> None
                  else None)
          in
          (* Golden shadow for the audit: whatever mix of deltas and full
             states the stores end up applying, their committed bytes for
             this version must equal this payload. *)
          if delta_on then
            Oplog.record_golden olog ~uid ~version:view.Server.cv_version
              ~payload:view.Server.cv_payload;
          let write_bytes = function
            | Action.Store_host.Full s -> Store.Object_state.bytes s
            | Action.Store_host.Delta d ->
                List.fold_left
                  (fun acc (_, ops) ->
                    List.fold_left
                      (fun acc op -> acc + String.length op)
                      acc ops)
                  0 d.Action.Store_host.d_steps
          in
          (* Per-store delta-vs-full decision: ship the op suffix
             [(v_store, v_commit]] iff the version knowledge (this client's
             acknowledged vector, else the shared floor other writers'
             votes seeded) says where the store stands and the commit
             view's chain covers the whole gap — and the suffix actually
             encodes smaller than the full state (an op-heavy history on a
             tiny object can outweigh its payload; [Server.force_delta]
             skips the size check to keep chaos coverage of the delta
             path). A store never heard from, a vector entry at the target
             already, or a truncated chain all fall back to full state. *)
          let choose store =
            if not delta_on then Action.Store_host.Full full_state
            else
              let fallback () =
                Sim.Metrics.incr metrics "commit.delta_fallbacks";
                Action.Store_host.Full full_state
              in
              match Oplog.known_version olog ~client ~store ~uid with
              | Some base when base < target -> (
                  match
                    Oplog.suffix_of view.Server.cv_delta ~base ~upto:target
                  with
                  | Some steps ->
                      let delta =
                        Action.Store_host.Delta
                          {
                            Action.Store_host.d_impl = group.Group.g_impl;
                            d_base = base;
                            d_steps = steps;
                          }
                      in
                      if
                        Server.force_delta srv
                        || write_bytes delta <= write_bytes (Full full_state)
                      then delta
                      else begin
                        Sim.Metrics.incr metrics "commit.delta_oversize";
                        Action.Store_host.Full full_state
                      end
                  | None -> fallback ())
              | _ -> fallback ()
          in
          let charge w =
            Sim.Metrics.incr metrics "commit.bytes_shipped" ~by:(write_bytes w)
          in
          (* Fold the committed levels a yes-vote piggybacks into the
             shared per-(store,object) floor: the next writer — any
             client — can start its copy-back from a delta based there. *)
          let seed_levels store vote =
            if delta_on then
              match vote with
              | Ok (Action.Store_host.Vote_yes levels) ->
                  List.iter
                    (fun (u, c) -> Oplog.note_store olog ~store ~uid:u c)
                    levels
              | _ -> ()
          in
          (* One copy-back attempt against the membership [current_st]:
             scatter the prepares, absorb delta misses, detect staleness,
             exclude unreachable stores, then [seal] the naming tier's
             view of the commit — the classic locked version note, or the
             optimistic validate-and-note. [`Conflict] (optimistic only:
             a membership change committed under our feet) withdraws the
             prepares so the caller can retry against fresh [St]. *)
          let run current_st ~seal =
            let alt_of = alt_map current_st in
            let writes =
              List.map (fun store -> (store, choose store)) current_st
            in
            List.iter (fun (_, w) -> charge w) writes;
            (* The paper's parallel write to all of StA: one concurrent
               prepare per store, votes gathered in store order. Latency is
               the slowest round-trip, not the sum. *)
            let scattered = Sim.Engine.now eng in
            let per_store = List.map (fun (s, w) -> (s, [ (uid, w) ])) writes in
            let votes =
              match tok with
              | Some tk when batching ->
                  (* Batched: join (or lead) a group-commit batch; the
                     votes come back shaped exactly like [prepare_each]'s,
                     with any non-yes member already peeled out to a solo
                     retry inside. *)
                  Groupcommit.prepare gc tk ?alt_of ~client ~action per_store
              | _ ->
                  Action.Store_host.prepare_each sh ~from:client ?hedge
                    ?deadline_at ?alt_of ~action ~coordinator:client per_store
            in
            if delta_on then
              List.iter
                (fun (store, vote) ->
                  match (List.assoc_opt store writes, vote) with
                  | ( Some (Action.Store_host.Delta _),
                      Ok
                        ( Action.Store_host.Vote_yes _
                        | Action.Store_host.Vote_stale ) ) ->
                      Sim.Metrics.incr metrics "commit.delta_hits"
                  | _ -> ())
                votes;
            let ok, stale, missed, unreachable =
              List.fold_left
                (fun (ok, stale, missed, unreachable) (store, vote) ->
                  seed_levels store vote;
                  match vote with
                  | Ok (Action.Store_host.Vote_yes _) ->
                      (store :: ok, stale, missed, unreachable)
                  | Ok Action.Store_host.Vote_stale ->
                      (ok, store :: stale, missed, unreachable)
                  | Ok (Action.Store_host.Vote_delta_miss counter) ->
                      (ok, stale, (store, counter) :: missed, unreachable)
                  | Error _ -> (ok, stale, missed, store :: unreachable))
                ([], [], [], []) votes
            in
            (* A delta miss means the vector was wrong about that store
               (recovered with an older state, or our last commit's
               acknowledgement never arrived). Nothing was staged there:
               reseed the vector from the counter the store reported and
               retry those stores — and only those — with full state. *)
            let retry_votes =
              match missed with
              | [] -> []
              | missed ->
                  List.iter
                    (fun (store, counter) ->
                      Oplog.note_acked olog ~client ~store ~uid counter;
                      Sim.Metrics.incr metrics "commit.delta_fallbacks";
                      charge (Action.Store_host.Full full_state))
                    missed;
                  Action.Store_host.prepare_each sh ~from:client ?hedge
                    ?deadline_at ?alt_of ~action ~coordinator:client
                    (List.map
                       (fun (store, _) ->
                         (store, [ (uid, Action.Store_host.Full full_state) ]))
                       missed)
            in
            Sim.Metrics.observe metrics "commit.fanout"
              (Sim.Engine.now eng -. scattered);
            let ok, stale, unreachable =
              List.fold_left
                (fun (ok, stale, unreachable) (store, vote) ->
                  seed_levels store vote;
                  match vote with
                  | Ok (Action.Store_host.Vote_yes _) ->
                      (store :: ok, stale, unreachable)
                  | Ok
                      ( Action.Store_host.Vote_stale
                      | Action.Store_host.Vote_delta_miss _ ) ->
                      (ok, store :: stale, unreachable)
                  | Error _ -> (ok, stale, store :: unreachable))
                (ok, stale, unreachable) retry_votes
            in
            let ok = List.rev ok and failed = List.rev unreachable in
            (* Any early abort from here on must withdraw the prepare
               records just written: a prepared record is a write
               reservation at the store, and leaking one blocks every
               future writer of the object. *)
            let withdraw_prepares () =
              ignore
                (Action.Store_host.abort_all sh ~from:client ?hedge ?alt_of
                   ~stores:ok action)
            in
            if stale <> [] then begin
              withdraw_prepares ();
              (* Backward validation failed: this action worked from a stale
                 activation (disjoint replica sets during churn — the
                 split-brain Arjuna's persistent lock store physically
                 prevents). Abort, and once the abort has drained the
                 action's locks, passivate the group's instances so the
                 next bind re-activates from the latest committed state. *)
              Sim.Metrics.incr metrics "commit.conflicts";
              Action.Atomic.after_abort act (fun () ->
                  List.iter
                    (fun m ->
                      ignore
                        (Server.passivate (Group.server_runtime rt)
                           ~from:client ~server:m ~uid:group.Group.g_uid))
                    (Group.live_members rt group));
              `Done
                (Error "stale activation: version conflict at object stores")
            end
            else
              match ok with
              | [] -> `Done (Error "all object stores unavailable at commit")
              | _ -> (
                  let proceed =
                    if failed = [] then Ok ()
                    else begin
                      Sim.Metrics.incr metrics "commit.exclusions"
                        ~by:(List.length failed);
                      exclude act failed
                    end
                  in
                  match proceed with
                  | Error why ->
                      withdraw_prepares ();
                      `Done (Error ("exclude failed: " ^ why))
                  | Ok () -> (
                      match seal () with
                      | `Fail why ->
                          withdraw_prepares ();
                          `Done (Error why)
                      | `Conflict ->
                          withdraw_prepares ();
                          `Conflict
                      | `Sealed ->
                          Sim.Metrics.incr metrics ~by:(List.length ok)
                            "commit.state_copies";
                          (* One phase-2 participant for the whole store
                             set: its commit/abort scatters to every
                             prepared store concurrently instead of
                             registering |St| serially notified
                             participants. A store's commit
                             acknowledgement is what advances the
                             acknowledged-version vector: only then is the
                             store known to hold [target], so only then
                             may the next copy ship it a delta based
                             there. A lost acknowledgement clears the
                             entry instead — the store may or may not have
                             applied, and the next copy must not presume. *)
                          if batching then Groupcommit.expect_phase2 gc;
                          Action.Atomic.add_participant act ~name:"st-copy"
                            ~prepare:(fun () -> true)
                            ~commit:(fun () ->
                              let results =
                                if batching then
                                  Groupcommit.commit_batched gc ?alt_of ~client
                                    ~stores:ok action
                                else
                                  Action.Store_host.commit_all sh ~from:client
                                    ?hedge ?alt_of ~stores:ok action
                              in
                              if delta_on then
                                List.iter
                                  (fun (store, r) ->
                                    match r with
                                    | Ok () ->
                                        Oplog.note_acked olog ~client ~store
                                          ~uid target;
                                        Oplog.note_store olog ~store ~uid
                                          target
                                    | Error _ ->
                                        Oplog.forget_ack olog ~client ~store
                                          ~uid)
                                  results)
                            ~abort:(fun () ->
                              ignore
                                (if batching then
                                   Groupcommit.abort_batched gc ?alt_of ~client
                                     ~stores:ok action
                                 else
                                   Action.Store_host.abort_all sh ~from:client
                                     ?hedge ?alt_of ~stores:ok action));
                          `Done (Ok ())))
          in
          (* The classic locked path: re-read [St] under a read lock owned
             by the action (held to action end — the Include fence), then
             note the version under the write fence. Byte-identical to the
             pre-optimistic tree. *)
          let classic () =
            match read_stores act with
            | Error why -> Error ("commit-time GetView: " ^ why)
            | Ok current_st -> (
                let seal () =
                  match note_version with
                  | None -> `Sealed
                  | Some note -> (
                      match note act view.Server.cv_version with
                      | Ok () -> `Sealed
                      | Error why -> `Fail ("version note refused: " ^ why))
                in
                match run current_st ~seal with
                | `Done r -> r
                | `Conflict -> Error "version note conflict")
          in
          (* The optimistic path (both callbacks provided): take [St] and
             its revision from a lock-free snapshot, fan the copy-back out
             against it, and validate the revision inside the prepare
             round. A conflict — an Include/Exclude committed in between —
             withdraws the prepares and retries against fresh [St]; the
             validation kept the write fence, so the re-read revision can
             no longer move and the retry converges. Bounded attempts,
             then the classic locked path so churn cannot starve a
             commit. *)
          match (snapshot_stores, validate) with
          | Some snapshot, Some validate ->
              let max_attempts = 3 in
              let rec go attempt =
                match snapshot () with
                | Error _ ->
                    (* Snapshot read unreachable: the locked path talks to
                       the same shard and will surface the real error. *)
                    Sim.Metrics.incr metrics "commit.validate_fallbacks";
                    classic ()
                | Ok (current_st, rev) -> (
                    let seal () =
                      match
                        validate act ~version:view.Server.cv_version ~rev
                      with
                      | `Validated ->
                          Sim.Metrics.incr metrics "commit.validate_ok";
                          `Sealed
                      | `Conflict ->
                          Sim.Metrics.incr metrics "commit.validate_conflict";
                          `Conflict
                      | `Failed why ->
                          `Fail ("validate refused: " ^ why)
                    in
                    match run current_st ~seal with
                    | `Done r -> r
                    | `Conflict ->
                        if attempt + 1 < max_attempts then go (attempt + 1)
                        else begin
                          (* Churn outran the retries: starve-proof
                             fallback to the locked re-read. *)
                          Sim.Metrics.incr metrics "commit.validate_fallbacks";
                          classic ()
                        end)
              in
              go 0
          | _ -> classic ()
      in
      match tok with
      | None -> body ()
      | Some tk ->
          Fun.protect ~finally:(fun () -> Groupcommit.leave gc tk) body)
