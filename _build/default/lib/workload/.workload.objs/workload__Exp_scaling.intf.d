lib/workload/exp_scaling.mli: Table
