type t = Read | Write | Exclude_write

let compatible held requested =
  match (held, requested) with
  | Read, Read -> true
  | Read, Exclude_write | Exclude_write, Read -> true
  | Exclude_write, Exclude_write -> false
  | Write, _ | _, Write -> false

let strength = function Read -> 0 | Exclude_write -> 1 | Write -> 2

let strongest a b = if strength a >= strength b then a else b

let covers held requested = strength held >= strength requested

let equal a b = strength a = strength b

let to_string = function
  | Read -> "read"
  | Write -> "write"
  | Exclude_write -> "exclude-write"

let pp ppf m = Format.pp_print_string ppf (to_string m)
