lib/naming/reintegration.ml: Action Binder Gvd List Net Replica Sim Store String
