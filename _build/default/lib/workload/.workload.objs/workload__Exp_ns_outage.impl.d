lib/workload/exp_ns_outage.ml: Action Gvd Hashtbl List Naming Net Option Printf Replica Scheme Service Sim Store Table
