lib/action/recovery.mli: Atomic Net
