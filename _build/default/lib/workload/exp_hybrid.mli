(** Experiment [tab-hybrid]: the §5 extension.

    Compare the fully-atomic naming service (standard scheme) with the
    hybrid of §5 — server sets in a traditional non-atomic name server,
    state sets in the atomic Object State database. Both run the same
    workload with a mid-run store crash (forcing a commit-time [Exclude])
    and a server bounce.

    Claims to check: the hybrid preserves the binding-consistency
    invariant (all [St] members mutually consistent — guaranteed by the
    State database alone) while issuing no server-database lock
    operations at all. *)

val run : ?seed:int64 -> unit -> Table.t
