lib/replica/passivator.mli: Net Server
