(** Deterministic chaos harness (experiment [tab-chaos]).

    Composes crash churn, symmetric and one-way partitions, and
    message-level link faults (drop/duplicate/reorder/delay-spike) into a
    randomized, seed-deterministic schedule over bind/commit workloads
    with a mid-run naming-shard rebalance, then heals every fault,
    drains, runs the post-heal janitor passes (in-doubt re-resolution,
    cleanup sweeps) and checks the consolidated {!Audit.chaos} invariants
    plus commit-accounting bounds and snapshot-version monotonicity.

    Every run is a pure function of its seed: a failing seed replays the
    whole world bit-for-bit, and the offending schedule is greedily
    minimized (event dropping) before being reported. *)

type fault_event

val pp_event : Format.formatter -> fault_event -> unit

val gen_events : seed:int64 -> fault_event list
(** The schedule for [seed] — pure, stable across runs. *)

type outcome = {
  oc_violations : string list;  (** empty means the world quiesced clean *)
  oc_commits : int;
  oc_retries : int;  (** [retry.retries] counter *)
  oc_faults : int;  (** injected message faults (sum of [fault.*]) *)
}

val run_world : seed:int64 -> events:fault_event list -> outcome
(** One full run: build the world from [seed], inject [events], drive the
    workload to quiescence, audit. Deterministic in [(seed, events)]. *)

val check_seed : int64 -> outcome * fault_event list option
(** Run [gen_events] for the seed; on violation, also the minimized
    schedule ([None] when the run was clean). *)

val default_seeds : int64 list
(** The eight seeds the CI smoke job replays. *)

val run_check : ?seeds:int64 list -> unit -> Table.t * bool
(** The experiment table plus an all-clean flag (for CLI exit codes).
    Failing seeds are detailed in the table notes: seed, minimized
    schedule, violations. *)

val run : ?seeds:int64 list -> unit -> Table.t
