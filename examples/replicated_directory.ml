(* Replicated directory: a register object served by three actively
   replicated servers (k-resilient, §3.2(3)). Two of the three server
   nodes crash mid-session and every operation still succeeds — the
   invocations go through the totally-ordered multicast and the first
   surviving replica's reply wins.

   Run with: dune exec examples/replicated_directory.exe *)

open Naming

let () =
  let servers = [ "srv1"; "srv2"; "srv3" ] in
  let world =
    Service.create ~seed:3L
      {
        Service.gvd_node = "ns";
        gvd_nodes = [];
        server_nodes = servers;
        store_nodes = [ "store1" ];
        client_nodes = [ "app" ];
      }
  in
  let uid =
    Service.create_object world ~name:"directory" ~impl:"register"
      ~sv:servers ~st:[ "store1" ] ()
  in
  let eng = Service.engine world in
  let net = Service.network world in
  Service.spawn_client world "app" (fun () ->
      match
        Service.with_bound world ~client:"app" ~scheme:Scheme.Standard
          ~policy:(Replica.Policy.Active 3) ~uid (fun act group ->
            Printf.printf "members: [%s]\n"
              (String.concat "; " group.Replica.Group.g_members);
            ignore (Service.invoke world group ~act "write hq=paris");
            Printf.printf "read 1 -> %s\n"
              (Service.invoke world group ~act ~write:false "read");
            (* First replica dies: masked. *)
            Net.Network.crash net "srv1";
            Sim.Engine.sleep eng 2.0;
            ignore (Service.invoke world group ~act "write hq=london");
            Printf.printf "read 2 (srv1 down) -> %s\n"
              (Service.invoke world group ~act ~write:false "read");
            (* Second replica dies: still masked (k-1 = 2 failures). *)
            Net.Network.crash net "srv2";
            Sim.Engine.sleep eng 2.0;
            Printf.printf "read 3 (srv1+srv2 down) -> %s\n"
              (Service.invoke world group ~act ~write:false "read"))
      with
      | Ok () -> print_endline "session committed despite two server crashes"
      | Error reason -> Printf.printf "session aborted: %s\n" reason);
  Service.run world;
  (* The committed state reached the store via the surviving replica. *)
  (match
     Store.Object_store.read
       (Action.Store_host.objects (Service.store_host world) "store1")
       uid
   with
  | Some s -> Printf.printf "store1: %S\n" s.Store.Object_state.payload
  | None -> print_endline "store1: no state");
  Printf.printf "invocations masked over %d live replica(s)\n"
    (List.length
       (List.filter (fun s -> Net.Network.is_up net s) servers))
