open Naming

let run_config ~seed ~scheme ~pipelined ~clients =
  let client_nodes = List.init clients (fun i -> Printf.sprintf "c%d" (i + 1)) in
  let w =
    Service.create ~seed ~pipelined_binds:pipelined
      {
        Service.gvd_node = "ns";
        gvd_nodes = [];
        server_nodes = [ "alpha" ];
        store_nodes = [ "t1" ];
        client_nodes;
      }
  in
  let uid =
    Service.create_object w ~name:"obj" ~impl:"counter" ~sv:[ "alpha" ]
      ~st:[ "t1" ] ()
  in
  Service.run ~until:1.0 w;
  let eng = Service.engine w in
  let m = Service.metrics w in
  let rng = Sim.Rng.split (Sim.Engine.rng eng) in
  (* Synchronised waves of binds maximise overlap: all clients bind at the
     top of each 40-unit round, 8 rounds. *)
  List.iter
    (fun client ->
      let crng = Sim.Rng.split rng in
      Service.spawn_client w client (fun () ->
          for round = 1 to 8 do
            let top = float_of_int round *. 40.0 in
            let jitter = Sim.Rng.uniform crng 0.0 1.0 in
            Sim.Engine.sleep eng (Float.max 0.0 (top +. jitter -. Sim.Engine.now eng));
            let started = Sim.Engine.now eng in
            match
              Service.with_bound w ~client ~scheme
                ~policy:Replica.Policy.Single_copy_passive ~uid
                (fun act group ->
                  Sim.Metrics.observe m "exp.bind_latency"
                    (Sim.Engine.now eng -. started);
                  ignore (Service.invoke w group ~act ~write:false "get"))
            with
            | Ok () -> ()
            | Error _ -> Sim.Metrics.incr m "exp.bind_failures"
          done))
    client_nodes;
  Service.run w;
  (* Retried server/database acquisitions are extra protocol rounds a
     bind actually paid; fold them into the per-bind rounds figure. *)
  let binds = float_of_int (8 * clients) in
  let retries = Sim.Metrics.counter m "retry.op.group.invoke" in
  ( Sim.Metrics.mean m "exp.bind_latency",
    Sim.Metrics.mean m "bind.naming_rounds" +. (float_of_int retries /. binds),
    Sim.Metrics.counter m "lock.waited",
    Sim.Metrics.counter m "gvd.view_lock_waits",
    Sim.Metrics.counter m "exp.bind_failures" )

type commit_sample = {
  cs_bind_mean : float;
  cs_rounds : float;
  cs_lock_waits : int;
  cs_view_waits : int;
  cs_failures : int;
  cs_validate_ok : int;
  cs_validate_conflict : int;
  cs_validate_fallbacks : int;
}

(* The commit-side half: writers whose copy-back re-reads [StA] at the
   naming tier, racing membership churn (a store bounced off and back,
   driving commit-time Exclude and reintegration Include — both [Write]
   holders of the same St entry). Scheme B binds are snapshot reads, so
   the only locked [GetView] callers left are the classic commit re-reads:
   [gvd.view_lock_waits] counts exactly the commit path queueing at the
   naming tier. The optimistic variant replaces that locked re-read with
   the validated snapshot, taking the naming tier off the hot path. *)
let run_commit ?(batch_window = 0.0) ~seed ~optimistic ~clients () =
  let client_nodes = List.init clients (fun i -> Printf.sprintf "c%d" (i + 1)) in
  let w =
    Service.create ~seed ~optimistic_commit:optimistic
      ~commit_batch_window:batch_window
      {
        Service.gvd_node = "ns";
        gvd_nodes = [];
        server_nodes = [ "alpha" ];
        store_nodes = [ "t1"; "t2" ];
        client_nodes;
      }
  in
  let uid =
    Service.create_object w ~name:"obj" ~impl:"counter" ~sv:[ "alpha" ]
      ~st:[ "t1"; "t2" ] ()
  in
  Service.run ~until:1.0 w;
  let eng = Service.engine w in
  let net = Service.network w in
  let m = Service.metrics w in
  let rng = Sim.Rng.split (Sim.Engine.rng eng) in
  (* Membership churn: bounce t2 three times. While it is down, failing
     prepares drive Exclude; each recovery drives a reintegration
     Include. Both mutate the St entry under write locks. *)
  List.iter
    (fun at -> Net.Fault.crash_for net ~at ~duration:25.0 "t2")
    [ 30.0; 90.0; 150.0 ];
  List.iter
    (fun client ->
      let crng = Sim.Rng.split rng in
      Service.spawn_client w client (fun () ->
          Sim.Engine.sleep eng (Sim.Rng.uniform crng 0.0 4.0);
          for _ = 1 to 8 do
            let started = Sim.Engine.now eng in
            (match
               Service.with_bound w ~client ~scheme:Scheme.Independent
                 ~policy:Replica.Policy.Single_copy_passive ~uid
                 (fun act group ->
                   Sim.Metrics.observe m "exp.bind_latency"
                     (Sim.Engine.now eng -. started);
                   ignore (Service.invoke w group ~act "add 1"))
             with
            | Ok () -> ()
            | Error _ -> Sim.Metrics.incr m "exp.bind_failures");
            Sim.Engine.sleep eng (Sim.Rng.uniform crng 6.0 14.0)
          done))
    client_nodes;
  Service.run w;
  let binds = float_of_int (8 * clients) in
  let retries = Sim.Metrics.counter m "retry.op.group.invoke" in
  {
    cs_bind_mean = Sim.Metrics.mean m "exp.bind_latency";
    cs_rounds =
      Sim.Metrics.mean m "bind.naming_rounds" +. (float_of_int retries /. binds);
    cs_lock_waits = Sim.Metrics.counter m "lock.waited";
    cs_view_waits = Sim.Metrics.counter m "gvd.view_lock_waits";
    cs_failures = Sim.Metrics.counter m "exp.bind_failures";
    cs_validate_ok = Sim.Metrics.counter m "commit.validate_ok";
    cs_validate_conflict = Sim.Metrics.counter m "commit.validate_conflict";
    cs_validate_fallbacks = Sim.Metrics.counter m "commit.validate_fallbacks";
  }

let run ?(seed = 131L) () =
  let wave_rows =
    List.concat_map
      (fun clients ->
        List.map
          (fun (label, scheme, pipelined) ->
            let latency, rounds, waits, view_waits, failures =
              run_config ~seed ~scheme ~pipelined ~clients
            in
            [
              Table.cell_i clients;
              label;
              Table.cell_f latency;
              Table.cell_f rounds;
              Table.cell_i waits;
              Table.cell_i view_waits;
              Table.cell_i failures;
            ])
          [
            ("standard", Scheme.Standard, false);
            ("standard+pipelined", Scheme.Standard, true);
            ("independent", Scheme.Independent, false);
          ])
      [ 1; 2; 4; 8; 16; 32 ]
  in
  let commit_samples =
    List.concat_map
      (fun clients ->
        List.map
          (fun (label, optimistic, batch_window) ->
            ( clients,
              label,
              run_commit ~batch_window ~seed ~optimistic ~clients () ))
          [
            ("writes, locked commit", false, 0.0);
            ("writes, optimistic commit", true, 0.0);
            ("writes, grouped commit", true, 3.0);
          ])
      [ 4; 8 ]
  in
  let commit_rows =
    List.map
      (fun (clients, label, s) ->
        [
          Table.cell_i clients;
          label;
          Table.cell_f s.cs_bind_mean;
          Table.cell_f s.cs_rounds;
          Table.cell_i s.cs_lock_waits;
          Table.cell_i s.cs_view_waits;
          Table.cell_i s.cs_failures;
        ])
      commit_samples
  in
  let validate_notes =
    List.filter_map
      (fun (clients, label, s) ->
        if String.length label >= 6 && String.sub label 0 6 = "writes" then
          Some
            (Printf.sprintf
               "  %d clients, %s: validate ok=%d conflicts=%d fallbacks=%d"
               clients label s.cs_validate_ok s.cs_validate_conflict
               s.cs_validate_fallbacks)
        else None)
      commit_samples
  in
  Table.make
    ~title:"tab-contention: database contention scaling of the schemes (§4.1)"
    ~columns:
      [
        "clients";
        "workload";
        "bind latency mean";
        "rpc rounds/bind (incl. retries)";
        "db lock waits";
        "commit GetView waits";
        "bind failures";
      ]
    ~notes:
      ([
         "Read-only clients bind in synchronised waves against one object.";
         "Paper claim (§4.1.2): GetServer is a shared read, so scheme A's";
         "bind latency stays flat as clients grow. Schemes B/C historically";
         "serialised binders behind the read-modify-write (Increment) write";
         "lock; with snapshot reads and the single-round batched bind the";
         "Increment becomes a Delta-mode append, so their latency now also";
         "stays near-flat and a bind costs one RPC round (column 4) against";
         "three for scheme A's GetServer + GetView (+ impl lookup). Under";
         "standard+pipelined the three reads leave as one Join scatter, so";
         "scheme A pays one serial round too. Server acquisitions refused";
         "under contention go through Net.Retry backoff instead of failing";
         "the bind; each retry counts as an extra round in column 4.";
         "";
         "The 'writes' rows race commit copy-backs against membership churn";
         "(a store bounced three times: failing prepares Exclude it, its";
         "recoveries re-Include it). Scheme B binds are snapshot reads, so";
         "'commit GetView waits' counts exactly the commits queueing behind";
         "the churn's write locks at the naming tier. The locked commit";
         "re-reads StA under a read lock and queues; the optimistic commit";
         "reads a lock-free snapshot, validates its revision in the prepare";
         "round, and never waits. The grouped row additionally batches the";
         "copy-back through the group-commit plane (window 3.0): overlapping";
         "commits share one prepare and one phase-2 scatter per store";
         "(tab-groupcommit measures the round reduction directly):";
       ]
      @ validate_notes)
    (wave_rows @ commit_rows)
