test/test_fortification.ml: Action Alcotest Array Binder Gvd Hashtbl List Lockmgr Naming Net Printf QCheck Replica Scheme Service Sim Store String Test_util
