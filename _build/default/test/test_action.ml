(* Tests for the atomic action layer: action identifiers, nesting, 2PC
   over store nodes and resources, crash recovery of in-doubt
   participants. *)

open Store
open Action

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

type world = {
  eng : Sim.Engine.t;
  net : Net.Network.t;
  sh : Store_host.t;
  rh : Resource_host.t;
  rt : Atomic.runtime;
  sup : Uid.supply;
}

let make_world ?seed nodes =
  let eng = Sim.Engine.create ?seed () in
  let net = Net.Network.create eng in
  let rpc = Net.Rpc.create net in
  let sh = Store_host.create rpc in
  let rh = Resource_host.create rpc in
  let rt = Atomic.make_runtime sh rh in
  List.iter
    (fun n ->
      Net.Network.add_node net n;
      Store_host.add sh n;
      Recovery.attach rt ~node:n)
    nodes;
  { eng; net; sh; rh; rt; sup = Uid.supply () }

let payload_on w node uid =
  match Object_store.read (Store_host.objects w.sh node) uid with
  | Some s -> Some s.Object_state.payload
  | None -> None

(* ------------------------------------------------------------------ *)
(* Action_id *)

let test_action_id_structure () =
  let top = Action_id.top ~origin:"c1" ~serial:3 in
  check_string "top" "c1:3" (Action_id.to_string top);
  check_bool "is top" true (Action_id.is_top top);
  let kid = Action_id.child top ~serial:1 in
  let grandkid = Action_id.child kid ~serial:2 in
  check_string "grandkid" "c1:3.1.2" (Action_id.to_string grandkid);
  check_int "depth" 3 (Action_id.depth grandkid);
  check_bool "not top" false (Action_id.is_top kid);
  (match Action_id.parent grandkid with
  | Some p -> check_bool "parent" true (Action_id.equal p kid)
  | None -> Alcotest.fail "no parent");
  check_bool "top has no parent" true (Action_id.parent top = None)

(* ------------------------------------------------------------------ *)
(* Commit and abort basics *)

let test_commit_applies_to_stores () =
  let w = make_world [ "client"; "s1"; "s2" ] in
  let uid = Uid.fresh w.sup ~label:"a" in
  let outcome = ref (Error "never ran") in
  Net.Network.spawn_on w.net "client" (fun () ->
      outcome :=
        Atomic.atomically w.rt ~node:"client" (fun act ->
            let state =
              Object_state.make ~payload:"new"
                ~version:(Version.next Version.initial ~committed_by:(Atomic.owner act))
            in
            Store_participant.add act ~store:"s1" ~writes:(fun () -> [ (uid, state) ]);
            Store_participant.add act ~store:"s2" ~writes:(fun () -> [ (uid, state) ])));
  Sim.Engine.run w.eng;
  check_bool "committed" true (!outcome = Ok ());
  Alcotest.(check (option string)) "s1" (Some "new") (payload_on w "s1" uid);
  Alcotest.(check (option string)) "s2" (Some "new") (payload_on w "s2" uid)

let test_abort_leaves_stores_untouched () =
  let w = make_world [ "client"; "s1" ] in
  let uid = Uid.fresh w.sup ~label:"a" in
  Store_host.seed w.sh "s1" uid (Object_state.initial "old");
  let outcome = ref (Ok ()) in
  Net.Network.spawn_on w.net "client" (fun () ->
      outcome :=
        Atomic.atomically w.rt ~node:"client" (fun act ->
            Store_participant.add act ~store:"s1" ~writes:(fun () ->
                [ (uid, Object_state.make ~payload:"new"
                     ~version:(Version.next Version.initial ~committed_by:"x")) ]);
            raise (Atomic.Abort "changed my mind")));
  Sim.Engine.run w.eng;
  check_bool "aborted" true (!outcome = Error "changed my mind");
  Alcotest.(check (option string)) "unchanged" (Some "old") (payload_on w "s1" uid);
  check_int "no in-doubt left" 0
    (List.length (Intent_log.in_doubt (Store_host.log w.sh "s1")))

let test_participant_vote_no_aborts () =
  let w = make_world [ "client"; "s1" ] in
  let uid = Uid.fresh w.sup ~label:"a" in
  let outcome = ref (Ok ()) in
  Net.Network.spawn_on w.net "client" (fun () ->
      outcome :=
        Atomic.atomically w.rt ~node:"client" (fun act ->
            Store_participant.add act ~store:"s1" ~writes:(fun () ->
                [ (uid, Object_state.initial "x") ]);
            Atomic.add_participant act ~name:"naysayer"
              ~prepare:(fun () -> false)
              ~commit:(fun () -> ())
              ~abort:(fun () -> ())));
  Sim.Engine.run w.eng;
  check_bool "aborted" true (Result.is_error !outcome);
  Alcotest.(check (option string)) "not applied" None (payload_on w "s1" uid)

let test_store_down_votes_no () =
  let w = make_world [ "client"; "s1" ] in
  let uid = Uid.fresh w.sup ~label:"a" in
  Net.Network.crash w.net "s1";
  let outcome = ref (Ok ()) in
  Net.Network.spawn_on w.net "client" (fun () ->
      outcome :=
        Atomic.atomically w.rt ~node:"client" (fun act ->
            Store_participant.add act ~store:"s1" ~writes:(fun () ->
                [ (uid, Object_state.initial "x") ])));
  Sim.Engine.run w.eng;
  check_bool "aborted" true (Result.is_error !outcome)

let test_before_commit_error_aborts () =
  let w = make_world [ "client" ] in
  let undone = ref false in
  let outcome = ref (Ok ()) in
  Net.Network.spawn_on w.net "client" (fun () ->
      outcome :=
        Atomic.atomically w.rt ~node:"client" (fun act ->
            Atomic.on_abort act (fun () -> undone := true);
            Atomic.before_commit act (fun () -> Error "pre-commit check failed")));
  Sim.Engine.run w.eng;
  check_bool "aborted" true (!outcome = Error "pre-commit check failed");
  check_bool "undo ran" true !undone

let test_after_commit_only_on_commit () =
  let w = make_world [ "client" ] in
  let ran = ref 0 in
  Net.Network.spawn_on w.net "client" (fun () ->
      ignore
        (Atomic.atomically w.rt ~node:"client" (fun act ->
             Atomic.after_commit act (fun () -> incr ran)));
      ignore
        (Atomic.atomically w.rt ~node:"client" (fun act ->
             Atomic.after_commit act (fun () -> incr ran);
             raise (Atomic.Abort "no"))));
  Sim.Engine.run w.eng;
  check_int "once" 1 !ran

let test_abort_undo_reverse_order () =
  let w = make_world [ "client" ] in
  let order = ref [] in
  Net.Network.spawn_on w.net "client" (fun () ->
      ignore
        (Atomic.atomically w.rt ~node:"client" (fun act ->
             Atomic.on_abort act (fun () -> order := 1 :: !order);
             Atomic.on_abort act (fun () -> order := 2 :: !order);
             raise (Atomic.Abort "x"))));
  Sim.Engine.run w.eng;
  (* Newest-first: undo 2 runs before undo 1; with :: accumulation the
     final list is [1; 2]. *)
  Alcotest.(check (list int)) "reverse order" [ 1; 2 ] !order

let test_status_transitions () =
  let w = make_world [ "client" ] in
  let statuses = ref [] in
  Net.Network.spawn_on w.net "client" (fun () ->
      let act = Atomic.begin_top w.rt ~node:"client" in
      statuses := Atomic.status act :: !statuses;
      (match Atomic.commit act with Ok () -> () | Error _ -> ());
      statuses := Atomic.status act :: !statuses;
      (* Committing again is an error, not a crash. *)
      match Atomic.commit act with
      | Ok () -> Alcotest.fail "double commit"
      | Error _ -> ());
  Sim.Engine.run w.eng;
  check_bool "running then committed" true
    (!statuses = [ Atomic.Committed; Atomic.Running ])

(* ------------------------------------------------------------------ *)
(* Nesting *)

let test_nested_commit_folds_into_parent () =
  let w = make_world [ "client"; "s1" ] in
  let uid = Uid.fresh w.sup ~label:"a" in
  Net.Network.spawn_on w.net "client" (fun () ->
      ignore
        (Atomic.atomically w.rt ~node:"client" (fun parent ->
             let r =
               Atomic.atomically_nested parent (fun child ->
                   Store_participant.add child ~store:"s1" ~writes:(fun () ->
                       [ (uid, Object_state.initial "from-child") ]))
             in
             check_bool "child committed" true (r = Ok ());
             (* Child committed but parent still running: nothing durable
                yet. *)
             Alcotest.(check (option string))
               "not yet durable" None (payload_on w "s1" uid))));
  Sim.Engine.run w.eng;
  Alcotest.(check (option string))
    "durable after parent commit" (Some "from-child") (payload_on w "s1" uid)

let test_parent_abort_discards_child_effects () =
  let w = make_world [ "client"; "s1" ] in
  let uid = Uid.fresh w.sup ~label:"a" in
  Net.Network.spawn_on w.net "client" (fun () ->
      ignore
        (Atomic.atomically w.rt ~node:"client" (fun parent ->
             ignore
               (Atomic.atomically_nested parent (fun child ->
                    Store_participant.add child ~store:"s1" ~writes:(fun () ->
                        [ (uid, Object_state.initial "x") ])));
             raise (Atomic.Abort "parent gives up"))));
  Sim.Engine.run w.eng;
  Alcotest.(check (option string)) "discarded" None (payload_on w "s1" uid)

let test_nested_abort_spares_parent () =
  let w = make_world [ "client"; "s1" ] in
  let uid_child = Uid.fresh w.sup ~label:"child" in
  let uid_parent = Uid.fresh w.sup ~label:"parent" in
  let outcome = ref (Error "never ran") in
  Net.Network.spawn_on w.net "client" (fun () ->
      outcome :=
        Atomic.atomically w.rt ~node:"client" (fun parent ->
            let r =
              Atomic.atomically_nested parent (fun child ->
                  Store_participant.add child ~store:"s1" ~writes:(fun () ->
                      [ (uid_child, Object_state.initial "x") ]);
                  raise (Atomic.Abort "child fails"))
            in
            check_bool "child aborted" true (Result.is_error r);
            Store_participant.add parent ~store:"s1" ~writes:(fun () ->
                [ (uid_parent, Object_state.initial "y") ])));
  Sim.Engine.run w.eng;
  check_bool "parent committed" true (!outcome = Ok ());
  Alcotest.(check (option string)) "child write gone" None (payload_on w "s1" uid_child);
  Alcotest.(check (option string))
    "parent write applied" (Some "y") (payload_on w "s1" uid_parent)

let test_nested_top_level_survives_enclosing_abort () =
  let w = make_world [ "client"; "s1" ] in
  let uid = Uid.fresh w.sup ~label:"a" in
  Net.Network.spawn_on w.net "client" (fun () ->
      ignore
        (Atomic.atomically w.rt ~node:"client" (fun enclosing ->
             let r =
               Atomic.atomically_nested_top enclosing (fun indep ->
                   Store_participant.add indep ~store:"s1" ~writes:(fun () ->
                       [ (uid, Object_state.initial "durable") ]))
             in
             check_bool "independent committed" true (r = Ok ());
             raise (Atomic.Abort "enclosing aborts"))));
  Sim.Engine.run w.eng;
  Alcotest.(check (option string))
    "survived" (Some "durable") (payload_on w "s1" uid)

(* ------------------------------------------------------------------ *)
(* Resource enlistment *)

(* A miniature recoverable resource: a register with staged per-action
   values and lock-manager-backed concurrency, as the group view database
   will be. *)
let make_register w node =
  let mgr = Lockmgr.Manager.create w.eng in
  let committed = ref "initial" in
  let staged : (string, string) Hashtbl.t = Hashtbl.create 8 in
  let manager =
    {
      Resource_host.m_prepare = (fun ~action:_ -> true);
      m_commit =
        (fun ~action ->
          (match Hashtbl.find_opt staged action with
          | Some v ->
              committed := v;
              Hashtbl.remove staged action
          | None -> ());
          Lockmgr.Manager.release_all mgr ~owner:action);
      m_abort =
        (fun ~action ->
          Hashtbl.remove staged action;
          Lockmgr.Manager.release_all mgr ~owner:action);
      m_transfer =
        (fun ~action ~parent ->
          (match Hashtbl.find_opt staged action with
          | Some v ->
              Hashtbl.replace staged parent v;
              Hashtbl.remove staged action
          | None -> ());
          Lockmgr.Manager.transfer_all mgr ~from_owner:action ~to_owner:parent);
    }
  in
  Resource_host.register w.rh ~node ~resource:"register" manager;
  let write act v =
    (* Emulates an RPC handler: lock under the action, stage the value. *)
    let owner = Atomic.owner act in
    match Lockmgr.Manager.acquire mgr ~owner ~mode:Lockmgr.Mode.Write ~timeout:10.0 "reg" with
    | Ok () ->
        Hashtbl.replace staged owner v;
        Atomic.enlist act ~node ~resource:"register" ();
        true
    | Error `Timeout -> false
  in
  (committed, mgr, write)

let test_resource_commit_applies_and_releases () =
  let w = make_world [ "client"; "svc" ] in
  let committed, mgr, write = make_register w "svc" in
  Net.Network.spawn_on w.net "client" (fun () ->
      ignore
        (Atomic.atomically w.rt ~node:"client" (fun act ->
             check_bool "write ok" true (write act "updated"))));
  Sim.Engine.run w.eng;
  check_string "applied" "updated" !committed;
  Alcotest.(check (list string)) "locks released" [] (Lockmgr.Manager.locked_keys mgr ~owner:"client:0")

let test_resource_abort_discards_and_releases () =
  let w = make_world [ "client"; "svc" ] in
  let committed, mgr, write = make_register w "svc" in
  Net.Network.spawn_on w.net "client" (fun () ->
      ignore
        (Atomic.atomically w.rt ~node:"client" (fun act ->
             ignore (write act "doomed");
             raise (Atomic.Abort "no"))));
  Sim.Engine.run w.eng;
  check_string "unchanged" "initial" !committed;
  Alcotest.(check (list string)) "locks released" [] (Lockmgr.Manager.locked_keys mgr ~owner:"client:0")

let test_resource_nested_transfer () =
  let w = make_world [ "client"; "svc" ] in
  let committed, mgr, write = make_register w "svc" in
  Net.Network.spawn_on w.net "client" (fun () ->
      ignore
        (Atomic.atomically w.rt ~node:"client" (fun parent ->
             ignore
               (Atomic.atomically_nested parent (fun child ->
                    check_bool "child writes" true (write child "from-child")));
             (* After nested commit the lock belongs to the parent. *)
             Alcotest.(check (option (Alcotest.testable Lockmgr.Mode.pp Lockmgr.Mode.equal)))
               "parent holds lock" (Some Lockmgr.Mode.Write)
               (Lockmgr.Manager.holds mgr ~owner:(Atomic.owner parent) "reg"))));
  Sim.Engine.run w.eng;
  check_string "applied at top commit" "from-child" !committed

(* ------------------------------------------------------------------ *)
(* Recovery *)

let test_recovery_completes_commit_after_store_crash () =
  (* Store prepares, crashes before phase-2 delivery, recovers: the
     in-doubt record must resolve to commit by querying the coordinator. *)
  let w = make_world [ "client"; "s1"; "s2" ] in
  let uid = Uid.fresh w.sup ~label:"a" in
  let outcome = ref (Error "never ran") in
  Net.Network.spawn_on w.net "client" (fun () ->
      outcome :=
        Atomic.atomically w.rt ~node:"client" (fun act ->
            let state = Object_state.initial "recovered-write" in
            Store_participant.add act ~store:"s1" ~writes:(fun () -> [ (uid, state) ]);
            Store_participant.add act ~store:"s2" ~writes:(fun () -> [ (uid, state) ]);
            (* A slow co-participant stretches phase 1/2 so the crash of s1
               can land between its prepare and its commit. *)
            Atomic.add_participant act ~name:"slow"
              ~prepare:(fun () ->
                Sim.Engine.sleep w.eng 20.0;
                true)
              ~commit:(fun () -> ())
              ~abort:(fun () -> ())));
  (* s1's prepare happens within a few latencies; crash it at t=30 —
     after its prepare but (because "slow" sits between) possibly before
     phase 2 reaches it. Recover at t=60. *)
  Net.Fault.crash_for w.net ~at:25.0 ~duration:35.0 "s1";
  Sim.Engine.run w.eng;
  check_bool "committed" true (!outcome = Ok ());
  Alcotest.(check (option string))
    "s2 applied" (Some "recovered-write") (payload_on w "s2" uid);
  Alcotest.(check (option string))
    "s1 recovered the write" (Some "recovered-write") (payload_on w "s1" uid);
  check_int "no in-doubt" 0
    (List.length (Intent_log.in_doubt (Store_host.log w.sh "s1")))

let test_recovery_presumed_abort_on_coordinator_crash () =
  (* Store prepares; the coordinator crashes before deciding; the store
     recovers and must presume abort. *)
  let w = make_world [ "client"; "s1" ] in
  let uid = Uid.fresh w.sup ~label:"a" in
  Net.Network.spawn_on w.net "client" (fun () ->
      ignore
        (Atomic.atomically w.rt ~node:"client" (fun act ->
             Store_participant.add act ~store:"s1" ~writes:(fun () ->
                 [ (uid, Object_state.initial "doomed") ]);
             Atomic.add_participant act ~name:"slow"
               ~prepare:(fun () ->
                 Sim.Engine.sleep w.eng 50.0;
                 true)
               ~commit:(fun () -> ())
               ~abort:(fun () -> ()))));
  (* Participant order is registration order: s1 prepares first (within a
     few latencies), then "slow" stalls phase 1. Crash the coordinator
     mid-phase-1, then bounce s1 so it runs recovery. *)
  Net.Fault.crash_at w.net ~at:20.0 "client";
  Net.Fault.crash_for w.net ~at:25.0 ~duration:10.0 "s1";
  Net.Fault.recover_at w.net ~at:40.0 "client";
  Sim.Engine.run w.eng;
  Alcotest.(check (option string)) "nothing applied" None (payload_on w "s1" uid);
  check_int "no in-doubt" 0
    (List.length (Intent_log.in_doubt (Store_host.log w.sh "s1")))

let test_recovery_waits_while_action_active () =
  (* The store recovers while the coordinator is still in phase 1: the
     decision service answers D_active and recovery retries until the
     commit decision lands. *)
  let w = make_world [ "client"; "s1" ] in
  let uid = Uid.fresh w.sup ~label:"a" in
  let outcome = ref (Error "never ran") in
  Net.Network.spawn_on w.net "client" (fun () ->
      outcome :=
        Atomic.atomically w.rt ~node:"client" (fun act ->
            Store_participant.add act ~store:"s1" ~writes:(fun () ->
                [ (uid, Object_state.initial "late") ]);
            Atomic.add_participant act ~name:"slow"
              ~prepare:(fun () ->
                Sim.Engine.sleep w.eng 60.0;
                true)
              ~commit:(fun () -> ())
              ~abort:(fun () -> ())));
  (* s1 prepares early, bounces quickly, and is back up (running recovery)
     long before phase 1 ends at ~t=60. *)
  Net.Fault.crash_for w.net ~at:15.0 ~duration:5.0 "s1";
  Sim.Engine.run w.eng;
  check_bool "committed" true (!outcome = Ok ());
  Alcotest.(check (option string)) "applied" (Some "late") (payload_on w "s1" uid)

let suite =
  let tc = Alcotest.test_case in
  [
    ("action.id", [ tc "structure" `Quick test_action_id_structure ]);
    ( "action.atomic",
      [
        tc "commit applies to stores" `Quick test_commit_applies_to_stores;
        tc "abort leaves stores untouched" `Quick test_abort_leaves_stores_untouched;
        tc "participant vote no aborts" `Quick test_participant_vote_no_aborts;
        tc "store down votes no" `Quick test_store_down_votes_no;
        tc "before_commit error aborts" `Quick test_before_commit_error_aborts;
        tc "after_commit only on commit" `Quick test_after_commit_only_on_commit;
        tc "abort undo reverse order" `Quick test_abort_undo_reverse_order;
        tc "status transitions" `Quick test_status_transitions;
      ] );
    ( "action.nesting",
      [
        tc "nested commit folds into parent" `Quick test_nested_commit_folds_into_parent;
        tc "parent abort discards child effects" `Quick test_parent_abort_discards_child_effects;
        tc "nested abort spares parent" `Quick test_nested_abort_spares_parent;
        tc "nested top-level survives enclosing abort" `Quick
          test_nested_top_level_survives_enclosing_abort;
      ] );
    ( "action.resources",
      [
        tc "commit applies and releases" `Quick test_resource_commit_applies_and_releases;
        tc "abort discards and releases" `Quick test_resource_abort_discards_and_releases;
        tc "nested transfer" `Quick test_resource_nested_transfer;
      ] );
    ( "action.recovery",
      [
        tc "completes commit after store crash" `Quick
          test_recovery_completes_commit_after_store_crash;
        tc "presumed abort on coordinator crash" `Quick
          test_recovery_presumed_abort_on_coordinator_crash;
        tc "waits while action active" `Quick test_recovery_waits_while_action_active;
      ] );
  ]
