type 'm channel = {
  ch_name : string;
  inject : 'm -> Univ.t;
  project : Univ.t -> 'm option;
}

let channel name =
  let inject, project = Univ.embed () in
  { ch_name = name; inject; project }

let channel_name ch = ch.ch_name

type seq_request = {
  sr_channel : string;
  sr_members : Network.node_id list;
  sr_payload : Univ.t;
}

type t = {
  rpc : Rpc.t;
  listeners : (Network.node_id * string, seq:int -> Univ.t -> unit) Hashtbl.t;
  sequence : (string, int ref) Hashtbl.t; (* per channel, at the sequencer *)
  seq_endpoint : (seq_request, int) Rpc.endpoint;
}

let create rpc =
  {
    rpc;
    listeners = Hashtbl.create 32;
    sequence = Hashtbl.create 8;
    seq_endpoint = Rpc.endpoint "multicast.sequencer";
  }

let listen t ~node ch h =
  let raw ~seq payload =
    match ch.project payload with
    | Some m -> h ~seq m
    | None ->
        failwith
          (Printf.sprintf "Multicast.listen: payload mismatch on %s@%s"
             ch.ch_name node)
  in
  Hashtbl.replace t.listeners (node, ch.ch_name) raw

let unlisten t ~node ch = Hashtbl.remove t.listeners (node, ch.ch_name)

let net t = Rpc.network t.rpc

let deliver t ~fifo ~src ~dst ~ch_name ~seq payload =
  let send = if fifo then Network.send_fifo else Network.send in
  send (net t) ~src ~dst (fun () ->
      match Hashtbl.find_opt t.listeners (dst, ch_name) with
      | None -> ()
      | Some raw -> raw ~seq payload)

(* The inter-send gap makes partial delivery on sender crash possible: the
   sending fiber suspends between point-to-point sends, so a kill of its
   group truncates the iteration — the Figure-1 failure mode. *)
let inter_send_gap = 0.01

let cast_unreliable t ~from ~members ch m =
  let eng = Network.engine (net t) in
  let payload = ch.inject m in
  List.iter
    (fun dst ->
      deliver t ~fifo:false ~src:from ~dst ~ch_name:ch.ch_name ~seq:(-1) payload;
      Sim.Engine.sleep eng inter_send_gap)
    members;
  Sim.Metrics.incr (Network.metrics (net t)) "mcast.unreliable"

let next_seq t ch_name =
  let r =
    match Hashtbl.find_opt t.sequence ch_name with
    | Some r -> r
    | None ->
        let r = ref 0 in
        Hashtbl.add t.sequence ch_name r;
        r
  in
  incr r;
  !r

let enable_sequencer t ~node =
  Rpc.serve t.rpc ~node t.seq_endpoint (fun sr ->
      let seq = next_seq t sr.sr_channel in
      (* Scatter the sequenced copy to every member through the join
         primitive: all point-to-point sends are issued at the same
         virtual instant (no inter-send gap), which is exactly what makes
         the sequencer atomic where {!cast_unreliable} is not. *)
      ignore
        (Sim.Join.all
           (Network.engine (net t))
           (List.map
              (fun dst () ->
                deliver t ~fifo:true ~src:node ~dst ~ch_name:sr.sr_channel
                  ~seq sr.sr_payload)
              sr.sr_members));
      seq)

let cast_atomic t ~from ~sequencer ~members ch m =
  Sim.Metrics.incr (Network.metrics (net t)) "mcast.atomic";
  Rpc.call t.rpc ~from ~dst:sequencer t.seq_endpoint
    { sr_channel = ch.ch_name; sr_members = members; sr_payload = ch.inject m }
