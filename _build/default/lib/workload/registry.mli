(** The experiment registry: every table and figure of the reproduction,
    addressable by the stable ids used in DESIGN.md and EXPERIMENTS.md. *)

type experiment = {
  id : string;
  paper_artefact : string;  (** which figure/section it regenerates *)
  synopsis : string;
  runner : unit -> Table.t;
}

val all : experiment list
(** Every experiment, in presentation order. *)

val find : string -> experiment option
(** Look an experiment up by id. *)

val ids : unit -> string list
