lib/workload/exp_ns_failover.mli: Table
