(* Dynamic scaling: changing the degree of replication at runtime
   (§2.3(1), §4.1.2 — Insert/Remove "for varying the degree of server
   replication", plus the store-side equivalent).

   Storyline: an inventory service starts unreplicated, then operations
   staff grow it — first an extra object store (durability), then an extra
   server (availability) — while clients keep using it; finally the
   original server is retired. Every step runs through the naming
   service's atomic operations, so no client ever observes a half-changed
   view.

   Run with: dune exec examples/dynamic_scaling.exe *)

open Naming

let show world uid label =
  Printf.printf "%-26s Sv=[%s]  St=[%s]\n" label
    (String.concat "; " (Gvd.current_sv (Service.gvd world) uid))
    (String.concat "; " (Gvd.current_st (Service.gvd world) uid))

let () =
  let world =
    Service.create ~seed:6L
      {
        Service.gvd_node = "ns";
        gvd_nodes = [];
        server_nodes = [ "srv-old"; "srv-new" ];
        store_nodes = [ "disk1"; "disk2" ];
        client_nodes = [ "app"; "ops" ];
      }
  in
  let uid =
    Service.create_object world ~name:"inventory" ~impl:"kvmap"
      ~sv:[ "srv-old" ] ~st:[ "disk1" ] ()
  in
  let eng = Service.engine world in
  let use op =
    match
      Service.with_bound world ~client:"app" ~scheme:Scheme.Independent
        ~policy:Replica.Policy.Single_copy_passive ~uid (fun act group ->
          Service.invoke world group ~act op)
    with
    | Ok reply -> Printf.printf "  app: %-22s -> %s\n" op reply
    | Error e -> Printf.printf "  app: %-22s -> aborted: %s\n" op e
  in
  Service.spawn_client world "app" (fun () ->
      show world uid "initial";
      use "put bolts 250";
      use "put nuts 900");
  Service.spawn_client world "ops" (fun () ->
      Sim.Engine.sleep eng 60.0;
      (* Step 1: durability — a second store, state copied under lock. *)
      (match
         Admin.add_store (Service.binder world)
           ~server_rt:(Service.server_runtime world) ~from:"ops" ~uid "disk2"
       with
      | Ok () -> show world uid "after add_store disk2"
      | Error e -> Printf.printf "add_store: %s\n" (Admin.error_to_string e));
      (* Step 2: availability — a second server node. Insert needs
         quiescence, so ops retries if the app is mid-binding. *)
      let rec add_server tries =
        match Admin.add_server (Service.binder world) ~from:"ops" ~uid "srv-new" with
        | Ok () -> show world uid "after add_server srv-new"
        | Error (Admin.Busy _) when tries > 0 ->
            Sim.Engine.sleep eng 10.0;
            add_server (tries - 1)
        | Error e -> Printf.printf "add_server: %s\n" (Admin.error_to_string e)
      in
      add_server 10;
      (* Step 3: retire the old server. *)
      let rec retire tries =
        match
          Admin.retire_server (Service.binder world) ~from:"ops" ~uid "srv-old"
        with
        | Ok () -> show world uid "after retire srv-old"
        | Error (Admin.Busy _) when tries > 0 ->
            Sim.Engine.sleep eng 10.0;
            retire (tries - 1)
        | Error e -> Printf.printf "retire: %s\n" (Admin.error_to_string e)
      in
      retire 10);
  Service.spawn_client world "app" (fun () ->
      Sim.Engine.sleep eng 200.0;
      (* The app continues obliviously on the new topology. *)
      use "get bolts";
      use "put screws 410");
  Service.run world;
  (* Both disks hold the identical final inventory. *)
  List.iter
    (fun disk ->
      match
        Store.Object_store.read
          (Action.Store_host.objects (Service.store_host world) disk)
          uid
      with
      | Some s -> Printf.printf "%s: %s\n" disk s.Store.Object_state.payload
      | None -> Printf.printf "%s: (no state)\n" disk)
    [ "disk1"; "disk2" ]
