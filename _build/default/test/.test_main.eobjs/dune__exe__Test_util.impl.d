test/test_util.ml: QCheck_alcotest Random
