lib/replica/server.mli: Action Hashtbl Net Object_impl Store
