(* The autonomic membership plane: one controller daemon per server node
   that watches the stores' latency health and drives the §4.2
   Exclude/Include protocols for gray failures the crash detector never
   sees.

   A crashed store excludes itself the moment a commit trips over it
   (§4.2's exclude-on-unreachable) and re-includes on recovery
   ({!Naming.Reintegration.attach_store_node}). A browned-out store does
   neither: it answers — slowly — so every commit keeps paying its tail
   until a hedge or a deadline rescues that one scatter. The controller
   closes the loop at the membership layer instead: probe the stores on a
   fixed cadence, feed a private latency tracker, and once a store has
   looked sustainedly slow for a full hysteresis window AND a quorum of
   controllers concurs, propose its Exclude through the optimistic
   validated round. When the store looks healthy again for the same
   window, trigger its catch-up re-Include, and damp the next Exclude
   with a cooldown so a flapping brownout cannot livelock membership.

   Decision doctrine, in order:
   - hysteresis: K consecutive probe rounds must flag the store
     ({!Net.Health.sustained_slow} on this controller's private tracker)
     before an Exclude is even considered — one slow round is noise;
   - quorum: at least [min (quorum, #controllers)] controllers must see
     the store slow {e right now} (small digest gossip over the
     [autonomic.digest] endpoint) — one observer behind a bad link must
     not shed a store the rest of the fleet reaches fine;
   - cooldown: a store re-Included at [t] cannot be re-Excluded before
     [t + cooldown] — flap damping;
   - safety is not this module's job: the Exclude itself validates the
     St revision inside its round and refuses to empty [St]
     ({!Gvd.exclude_validated} via the injected driver), and the
     re-Include runs the full catch-up fence before the store rejoins
     the commit set, so the controller can afford to be wrong.

   The plane lives in [lib/replica] but drives naming-tier protocols, so
   every naming-facing operation is injected ({!deps}) — tests fabricate
   the closures to unit-test the decision logic without a world.

   Off means off: nothing here runs unless {!attach} is called
   ({!Naming.Service.create}'s [autonomic_membership] knob), and the
   plane draws no RNG, so worlds without it are byte-identical. *)

type config = {
  au_period : float;
  au_hysteresis : int;
  au_quorum : int;
  au_cooldown : float;
  au_slow_floor : float;
  au_probe_timeout : float;
}

let default_config =
  {
    au_period = 5.0;
    au_hysteresis = 3;
    au_quorum = 2;
    au_cooldown = 120.0;
    au_slow_floor = 8.0;
    au_probe_timeout = 10.0;
  }

type deps = {
  d_rpc : Net.Rpc.t;
  d_stores : Net.Network.node_id list;
  d_servers : Net.Network.node_id list;
  d_probe :
    from:Net.Network.node_id ->
    store:Net.Network.node_id ->
    (unit, Net.Rpc.error) result;
  d_exclude : from:Net.Network.node_id -> store:Net.Network.node_id -> int;
  d_include : store:Net.Network.node_id -> unit;
}

type ctrl = {
  c_node : Net.Network.node_id;
  c_health : Net.Health.t;
      (* private: this controller's own probe observations, so the quorum
         really is independent observers, not one shared tracker echoing
         itself *)
  c_streak : (Net.Network.node_id, int) Hashtbl.t;
      (* consecutive rounds a member store looked sustained-slow *)
  c_heal : (Net.Network.node_id, int) Hashtbl.t;
      (* consecutive rounds an excluded store looked healthy *)
  c_cooldown : (Net.Network.node_id, float) Hashtbl.t;
      (* no re-Exclude before this time (set at re-Include) *)
  mutable c_excluded : Net.Network.node_id list;
      (* stores this controller excluded and therefore owns re-Including *)
  mutable c_epoch : int; (* bumped by every membership change we drove *)
}

type t = {
  t_cfg : config;
  t_deps : deps;
  t_eng : Sim.Engine.t;
  t_net : Net.Network.t;
  t_metrics : Sim.Metrics.t;
  t_ep_digest : (unit, Net.Network.node_id list) Net.Rpc.endpoint;
  t_ctrls : (Net.Network.node_id, ctrl) Hashtbl.t;
}

let create ?(config = default_config) deps =
  let net = Net.Rpc.network deps.d_rpc in
  {
    t_cfg = config;
    t_deps = deps;
    t_eng = Net.Network.engine net;
    t_net = net;
    t_metrics = Net.Network.metrics net;
    t_ep_digest = Net.Rpc.endpoint "autonomic.digest";
    t_ctrls = Hashtbl.create 7;
  }

let config t = t.t_cfg

let tracef t fmt =
  Sim.Trace.recordf (Net.Network.trace t.t_net)
    ~now:(Sim.Engine.now t.t_eng) ~tag:"autonomic" fmt

let counter tbl store = Option.value ~default:0 (Hashtbl.find_opt tbl store)

(* The controller's slow verdict for one store. {!Net.Health}'s
   [sustained_slow] judges against the {e fleet} EWMA, which is right
   for a tracker fed by all traffic but self-normalizes here: the
   private tracker sees only probes, one per store per round, so a
   browned store in a two-store world drags the fleet EWMA up to half
   its own latency and ducks under the 3x bar. The second clause judges
   against the {e best} probed peer instead — a store three times
   slower than the healthiest store (and past the floor) is slow no
   matter how much of the fleet is sick with it. Timeouts and crashes
   have no latency to compare and flow through the first clause
   ([note_failure] drives the slow indicator straight up). *)
let store_slow t c ~now store =
  Net.Health.sustained_slow c.c_health ~now store
  || Net.Health.samples c.c_health store >= 4
     &&
     let mine = Net.Health.latency_ewma c.c_health store in
     let best =
       List.fold_left
         (fun acc s ->
           let e = Net.Health.latency_ewma c.c_health s in
           if s <> store && Net.Health.samples c.c_health s > 0 && e > 0.0 then
             Float.min acc e
           else acc)
         infinity t.t_deps.d_stores
     in
     best < infinity
     && mine > Float.max t.t_cfg.au_slow_floor (3.0 *. best)

(* What this controller tells a quorum-gathering peer: the stores that
   look slow to it right now. Deliberately the raw verdict, not the
   hysteresis streak — confirmations need not be phase-aligned with the
   asker's window. *)
let digest t c =
  let now = Sim.Engine.now t.t_eng in
  List.filter (fun s -> store_slow t c ~now s) t.t_deps.d_stores

(* One probe sweep: time a round-trip to every store and feed the
   verdict streaks. Probes fan out concurrently and the round waits at
   most [au_probe_timeout] for each — a browned store's 20-40s inflated
   round-trip must not stretch the round itself, or the hysteresis
   window (K rounds) silently becomes K sick-RTTs and detection crawls.
   A probe that misses the budget counts as a failure observation (the
   slow indicator jumps without a latency sample); its straggling fiber
   eventually completes and is ignored. *)
let probe_round t c =
  let started = Sim.Engine.now t.t_eng in
  let cells =
    List.map
      (fun store ->
        Sim.Metrics.incr t.t_metrics "autonomic.probes";
        let iv = Sim.Ivar.create () in
        Net.Network.spawn_on t.t_net c.c_node ~name:"autonomic-probe"
          (fun () ->
            let t0 = Sim.Engine.now t.t_eng in
            let r = t.t_deps.d_probe ~from:c.c_node ~store in
            ignore
              (Sim.Ivar.try_fill iv (r, Sim.Engine.now t.t_eng -. t0)));
        (store, iv))
      t.t_deps.d_stores
  in
  List.iter
    (fun (store, iv) ->
      let budget =
        Float.max 0.0
          (t.t_cfg.au_probe_timeout -. (Sim.Engine.now t.t_eng -. started))
      in
      match Sim.Ivar.read_timeout t.t_eng budget iv with
      | Ok (Ok (), latency) ->
          Net.Health.note_ok c.c_health ~dst:store
            ~now:(Sim.Engine.now t.t_eng) ~latency
      | Ok (Error _, _) ->
          Net.Health.note_failure c.c_health ~dst:store
            ~now:(Sim.Engine.now t.t_eng)
      | Error _ ->
          (* Missed the budget: a censored observation — the round-trip
             took {e at least} the budget. Feed it as a latency sample
             rather than a bare failure: the probe cadence is far slower
             than the traffic {!Net.Health} was tuned for, so the
             decaying slow indicator alone can sit below the sustained
             bar forever, while a latency EWMA pinned at the budget
             keeps both the floor test and the best-peer clause live.
             (This is why [au_probe_timeout] must exceed
             [au_slow_floor].) *)
          Net.Health.note_ok c.c_health ~dst:store
            ~now:(Sim.Engine.now t.t_eng)
            ~latency:t.t_cfg.au_probe_timeout)
    cells;
  let now = Sim.Engine.now t.t_eng in
  List.iter
    (fun store ->
      let slow = store_slow t c ~now store in
      if List.mem store c.c_excluded then
        Hashtbl.replace c.c_heal store
          (if slow then 0 else counter c.c_heal store + 1)
      else
        Hashtbl.replace c.c_streak store
          (if slow then counter c.c_streak store + 1 else 0))
    t.t_deps.d_stores

(* Ask the peer controllers whether they, too, see [store] slow. The
   effective quorum shrinks to the controller population so small worlds
   stay governable; an unreachable peer simply does not confirm. *)
let quorum_confirms t c store =
  let peers = List.filter (fun s -> s <> c.c_node) t.t_deps.d_servers in
  let confirms =
    List.fold_left
      (fun n peer ->
        match
          Net.Rpc.call t.t_deps.d_rpc ~from:c.c_node ~dst:peer t.t_ep_digest ()
        with
        | Ok slow when List.mem store slow -> n + 1
        | Ok _ | Error _ -> n)
      1 peers
  in
  (confirms, min t.t_cfg.au_quorum (List.length peers + 1))

let decide t c =
  let now = Sim.Engine.now t.t_eng in
  List.iter
    (fun store ->
      if List.mem store c.c_excluded then begin
        if counter c.c_heal store >= t.t_cfg.au_hysteresis then begin
          (* Healed: hand the store to the catch-up re-Include (it only
             rejoins [St] once its state clears the include fence) and
             arm the flap-damping cooldown. *)
          c.c_excluded <- List.filter (fun s -> s <> store) c.c_excluded;
          Hashtbl.replace c.c_heal store 0;
          Hashtbl.replace c.c_streak store 0;
          Hashtbl.replace c.c_cooldown store (now +. t.t_cfg.au_cooldown);
          c.c_epoch <- c.c_epoch + 1;
          Sim.Metrics.incr t.t_metrics "autonomic.includes";
          tracef t "%s re-includes healed store %s (epoch %d)" c.c_node store
            c.c_epoch;
          t.t_deps.d_include ~store
        end
      end
      else if counter c.c_streak store >= t.t_cfg.au_hysteresis then begin
        match Hashtbl.find_opt c.c_cooldown store with
        | Some until when now < until ->
            Sim.Metrics.incr t.t_metrics "autonomic.damped"
        | _ -> (
            match quorum_confirms t c store with
            | confirms, quorum when confirms < quorum ->
                Sim.Metrics.incr t.t_metrics "autonomic.quorum_refused"
            | _ ->
                let excluded =
                  t.t_deps.d_exclude ~from:c.c_node ~store
                in
                if excluded > 0 then begin
                  c.c_excluded <- store :: c.c_excluded;
                  Hashtbl.replace c.c_heal store 0;
                  c.c_epoch <- c.c_epoch + 1;
                  Sim.Metrics.incr t.t_metrics "autonomic.excludes";
                  tracef t "%s excludes slow store %s from %d objects (epoch %d)"
                    c.c_node store excluded c.c_epoch
                end
                else
                  (* Nothing to exclude: a commit's own §4.2 exclusion or
                     a peer controller beat us to every object (or the
                     store is the last copy everywhere). Reset the streak
                     so we do not re-propose every round. *)
                  Hashtbl.replace c.c_streak store 0)
      end)
    t.t_deps.d_stores

(* One controller tick, exposed for deterministic unit tests. *)
let tick t c =
  probe_round t c;
  decide t c

let attach t node =
  let c =
    {
      c_node = node;
      c_health = Net.Health.create ~slow_floor:t.t_cfg.au_slow_floor ();
      c_streak = Hashtbl.create 7;
      c_heal = Hashtbl.create 7;
      c_cooldown = Hashtbl.create 7;
      c_excluded = [];
      c_epoch = 0;
    }
  in
  Hashtbl.replace t.t_ctrls node c;
  Net.Rpc.serve t.t_deps.d_rpc ~node t.t_ep_digest (fun () -> digest t c);
  c

(* Spawn the controller daemon on [node], floor-gossip style: the idle
   wait is a {!Sim.Engine.daemon_sleep} so drain-mode runs ignore the
   parked daemon, a crash of the node kills the fiber with its group,
   and recovery re-arms it for the new incarnation (the ctrl record —
   the controller's stable storage — survives). *)
let start t node =
  let c =
    match Hashtbl.find_opt t.t_ctrls node with
    | Some c -> c
    | None -> attach t node
  in
  let spawn () =
    Net.Network.spawn_on t.t_net node ~name:"autonomic" (fun () ->
        let rec loop () =
          Sim.Engine.daemon_sleep t.t_eng t.t_cfg.au_period;
          tick t c;
          loop ()
        in
        loop ())
  in
  spawn ();
  Net.Network.on_recover t.t_net node spawn

(* {2 Introspection} *)

let controller t node = Hashtbl.find_opt t.t_ctrls node

let excluded t node =
  match controller t node with
  | Some c -> List.sort String.compare c.c_excluded
  | None -> []

let epoch t node =
  match controller t node with Some c -> c.c_epoch | None -> 0

let slow_streak t node store =
  match controller t node with
  | Some c -> counter c.c_streak store
  | None -> 0

let heal_streak t node store =
  match controller t node with
  | Some c -> counter c.c_heal store
  | None -> 0

let health t node = Option.map (fun c -> c.c_health) (controller t node)
