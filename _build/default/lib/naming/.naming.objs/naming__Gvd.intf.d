lib/naming/gvd.mli: Action Net Store Use_list
