lib/replica/commit.ml: Action Group List Net Server Sim Store
