lib/replica/policy.mli: Format
