type role = Plain | Coordinator | Cohort

type activate_result = Activated of Store.Version.t | Activation_failed of string

type invoke_result =
  | Reply of string
  | Locked
  | Not_active
  | Not_coordinator
  | State_lost
  | Settled

type commit_view = {
  cv_payload : string;
  cv_version : Store.Version.t;
  cv_dirty : bool;
  cv_delta : (Store.Version.t * string list) list;
      (* the replica's retained op chain, oldest first, ending in the ops
         the action staged (as version [cv_version]); empty when delta
         shipping is off or the chain would be useless (clean view, or a
         write whose ops were not recorded). The copy-back cuts per-store
         suffixes out of this. *)
}

type mc_invoke = {
  mi_uid : Store.Uid.t;
  mi_action : string;
  mi_serial : int;
  mi_last_acked : int;
  mi_write : bool;
  mi_op : string;
  mi_reply_to : Net.Network.node_id;
  mi_req : int;
}

type mc_reply = {
  mr_req : int;
  mr_replica : Net.Network.node_id;
  mr_result : invoke_result;
}

type instance = {
  i_uid : Store.Uid.t;
  i_impl : Object_impl.t;
  i_node : Net.Network.node_id;
  mutable i_committed : string;
  mutable i_version : Store.Version.t;
  i_staged : (string, string) Hashtbl.t; (* action -> staged payload *)
  i_staged_ops : (string, string list) Hashtbl.t;
      (* action -> write ops staged so far, newest first; the provenance
         of the staged payload: folding the reversed list over
         [i_committed] reproduces [i_staged]. Feeds the op log at commit. *)
  i_applied : (string, string) Hashtbl.t; (* "action#serial" -> reply *)
  i_locks : Lockmgr.Manager.t;
  mutable i_role : role;
  mutable i_members : Net.Network.node_id list;
  (* Lock holders as of the last checkpoint; installed when this replica
     becomes coordinator. *)
  mutable i_ckpt_holders : (string * Lockmgr.Mode.t) list;
  mutable i_ckpt_stamp : float; (* newest checkpoint applied *)
  (* Recently finished (committed, aborted or transferred-to-parent)
     actions, newest first, bounded. An invocation of a settled action
     must be refused: it is a straggler — a duplicated multicast
     delivery, or a fiber that sat parked on the instance lock while its
     action timed out and aborted — and executing it would stage payload
     and take locks that no completion will ever clean up. *)
  mutable i_settled : string list;
}

type activate_req = {
  a_uid : Store.Uid.t;
  a_impl : string;
  a_stores : Net.Network.node_id list;
  a_role : role;
  a_members : Net.Network.node_id list;
}

type invoke_req = {
  v_uid : Store.Uid.t;
  v_action : string;
  v_serial : int;
  v_last_acked : int;
      (* serial of the last invocation of this action the client saw
         answered; lets a freshly promoted coordinator detect that it
         lost the action's staged state (lazy checkpointing) *)
  v_write : bool;
  v_op : string;
}

type view_req = {
  cw_uid : Store.Uid.t;
  cw_action : string;
  cw_last_acked : int;
      (* the view is only valid if this replica has processed the
         action's last acknowledged invocation — a replica the ordered
         multicast has not reached yet would otherwise present a stale
         (clean-looking) state to commit processing *)
}

type checkpoint_msg = {
  k_stamp : float;
      (* sender's virtual time: checkpoints travel over unordered
         point-to-point sends, and an overtaken older checkpoint must not
         regress the cohort *)
  k_uid : Store.Uid.t;
  k_impl : string;
  k_committed : string;
  k_version : Store.Version.t;
  k_staged : (string * string) list;
  k_staged_ops : (string * string list) list;
      (* staged payloads and their op provenance travel together: a
         promoted cohort that lost the ops could still commit, but could
         no longer ship deltas for the write *)
  k_applied : (string * string) list;
  k_oplog : (Store.Version.t * string list) list;
      (* the coordinator's retained op log for the object, oldest first;
         cohorts adopt it wholesale (checkpoint-anchored truncation) *)
  k_holders : (string * Lockmgr.Mode.t) list;
  k_members : Net.Network.node_id list;
  k_coordinator : Net.Network.node_id;
}

type runtime = {
  art : Action.Atomic.runtime;
  impls : (string, Object_impl.t) Hashtbl.t;
  instances : (Net.Network.node_id, (string, instance) Hashtbl.t) Hashtbl.t;
  guards : (Net.Network.node_id, Action.Orphan_guard.t) Hashtbl.t;
  mc : Net.Multicast.t;
  ep_activate : (activate_req, activate_result) Net.Rpc.endpoint;
  ep_invoke : (invoke_req, invoke_result) Net.Rpc.endpoint;
  ep_view : (view_req, commit_view option) Net.Rpc.endpoint;
  ep_role : (Store.Uid.t, role option) Net.Rpc.endpoint;
  ep_passivate : (Store.Uid.t, bool) Net.Rpc.endpoint;
  ep_quiescent : (Store.Uid.t, bool) Net.Rpc.endpoint;
  ep_checkpoint : (checkpoint_msg, unit) Net.Rpc.endpoint;
  ep_reply : (mc_reply, unit) Net.Rpc.endpoint;
  ch_invoke : mc_invoke Net.Multicast.channel;
  lock_timeout : float;
  mutable eager_checkpoints : bool;
  o_log : Oplog.t;
  mutable delta_shipping : bool;
      (* default off: worlds that never enable it run byte-identically to
         the pre-oplog behaviour (no appends, no chains in views) *)
  mutable force_delta : bool;
      (* skip the per-write size comparison: ship a coverable delta even
         when the full state encodes smaller (chaos worlds keep the delta
         path exercised on small objects) *)
  mutable hedged_rpc : bool;
      (* default off: hedge the idempotent legs of commit copy-back and
         activation/role scatter-gathers with health-delayed backups; off,
         every scatter takes the exact pre-hedging code path *)
  mutable sibling_hedge : bool;
      (* default off; effective only with [hedged_rpc]: route a hedged
         commit-path leg's backup copy to a healthy sibling [St] member
         when the primary is sustainedly slow, and health-rank the
         activation's store-read order ({!Replica.Commit}'s alt map,
         {!do_activate}) *)
  g_commit : Groupcommit.t;
      (* the group-commit plane commits on this runtime batch through;
         disabled (window 0.0) unless the world sets a batch window *)
  (* In-flight presumed-abort probes for instance locks whose holder's
     coordinator is partitioned away: (node, uid, holder) triples. *)
  breaking : (string * string * string, unit) Hashtbl.t;
}

let resource_name uid = "obj:" ^ Store.Uid.to_string uid

let create art impls =
  let o_log = Oplog.create (Net.Network.metrics (Action.Atomic.network art)) in
  {
    art;
    impls;
    instances = Hashtbl.create 16;
    guards = Hashtbl.create 16;
    mc = Net.Multicast.create (Action.Atomic.rpc art);
    ep_activate = Net.Rpc.endpoint "server.activate";
    ep_invoke = Net.Rpc.endpoint "server.invoke";
    ep_view = Net.Rpc.endpoint "server.commit_view";
    ep_role = Net.Rpc.endpoint "server.role";
    ep_passivate = Net.Rpc.endpoint "server.passivate";
    ep_quiescent = Net.Rpc.endpoint "server.quiescent";
    ep_checkpoint = Net.Rpc.endpoint "server.checkpoint";
    ep_reply = Net.Rpc.endpoint "server.mc_reply";
    ch_invoke = Net.Multicast.channel "server.invoke.mc";
    lock_timeout = 30.0;
    eager_checkpoints = true;
    o_log;
    delta_shipping = false;
    force_delta = false;
    hedged_rpc = false;
    sibling_hedge = false;
    g_commit =
      Groupcommit.create
        ~engine:(Action.Atomic.engine art)
        ~store_host:(Action.Atomic.store_host art)
        ~metrics:(Net.Network.metrics (Action.Atomic.network art))
        o_log;
    breaking = Hashtbl.create 16;
  }

let atomic_runtime t = t.art
let set_eager_checkpoints t flag = t.eager_checkpoints <- flag
let oplog t = t.o_log
let delta_shipping t = t.delta_shipping
let set_delta_shipping t flag = t.delta_shipping <- flag
let force_delta t = t.force_delta
let set_force_delta t flag = t.force_delta <- flag
let groupcommit t = t.g_commit

let hedged_rpc t = t.hedged_rpc

let set_hedged_rpc t flag =
  t.hedged_rpc <- flag;
  Groupcommit.set_hedged t.g_commit flag

let sibling_hedge t = t.sibling_hedge
let set_sibling_hedge t flag = t.sibling_hedge <- flag
let set_commit_batch_window t w = Groupcommit.set_window t.g_commit w
let invoke_channel t = t.ch_invoke
let reply_endpoint t = t.ep_reply
let mc t = t.mc

let net t = Action.Atomic.network t.art
let eng t = Action.Atomic.engine t.art

let tracef t fmt =
  Sim.Trace.recordf (Net.Network.trace (net t)) ~now:(Sim.Engine.now (eng t))
    ~tag:"server" fmt

let metrics t = Net.Network.metrics (net t)

let node_instances t node =
  match Hashtbl.find_opt t.instances node with
  | Some tbl -> tbl
  | None ->
      let tbl = Hashtbl.create 8 in
      Hashtbl.add t.instances node tbl;
      tbl

let find_instance t node uid =
  Hashtbl.find_opt (node_instances t node) (Store.Uid.to_string uid)

let guard_of t node = Hashtbl.find_opt t.guards node

let touch_guard t node uid action =
  match guard_of t node with
  | Some g ->
      Action.Orphan_guard.touch g ~scope:(Store.Uid.to_string uid) ~action
  | None -> ()

let applied_key action serial = Printf.sprintf "%s#%d" action serial

(* Tombstone a finished action on the instance (bounded, newest first).
   The bound only forgets ancient history: a straggler invocation arrives
   within a lock timeout of its action's end, not dozens of actions
   later. *)
let settled_cap = 64

let settle_action inst action =
  if not (List.mem action inst.i_settled) then begin
    let kept =
      if List.length inst.i_settled >= settled_cap then
        List.filteri (fun i _ -> i < settled_cap - 1) inst.i_settled
      else inst.i_settled
    in
    inst.i_settled <- action :: kept
  end

let is_settled inst action = List.mem action inst.i_settled

(* Remove dedup entries belonging to [action] or any of its descendants
   (hierarchical ids: descendants have "<action>." as a prefix). *)
let clean_applied inst action =
  let prefix = action ^ "." in
  let doomed =
    Hashtbl.fold
      (fun key _ acc ->
        let matches =
          (String.length key > String.length action
          && String.sub key 0 (String.length action) = action
          && key.[String.length action] = '#')
          || (String.length key >= String.length prefix
             && String.sub key 0 (String.length prefix) = prefix)
        in
        if matches then key :: acc else acc)
      inst.i_applied []
  in
  List.iter (Hashtbl.remove inst.i_applied) doomed

let holders_snapshot inst =
  (* All (owner, mode) pairs on the instance's single lock key. *)
  Lockmgr.Manager.holders inst.i_locks "state"

(* Synchronously checkpoint the coordinator's instance to its cohorts. *)
let checkpoint_to_cohorts t inst =
  if inst.i_role = Coordinator then begin
    let msg =
      {
        k_stamp = Sim.Engine.now (eng t);
        k_uid = inst.i_uid;
        k_impl = inst.i_impl.Object_impl.impl_name;
        k_committed = inst.i_committed;
        k_version = inst.i_version;
        k_staged = Hashtbl.fold (fun k v acc -> (k, v) :: acc) inst.i_staged [];
        k_staged_ops =
          (if t.delta_shipping then
             Hashtbl.fold (fun k v acc -> (k, v) :: acc) inst.i_staged_ops []
           else []);
        k_applied = Hashtbl.fold (fun k v acc -> (k, v) :: acc) inst.i_applied [];
        k_oplog =
          (if t.delta_shipping then
             Oplog.records t.o_log ~node:inst.i_node ~uid:inst.i_uid
           else []);
        k_holders = holders_snapshot inst;
        k_members = inst.i_members;
        k_coordinator = inst.i_node;
      }
    in
    (* Checkpoint distribution fans out to every cohort at once: the
       coordinator pays one round-trip regardless of group size. *)
    let cohorts =
      List.filter (fun c -> not (String.equal c inst.i_node)) inst.i_members
    in
    Net.Rpc.call_all (Action.Atomic.rpc t.art) ~from:inst.i_node
      t.ep_checkpoint
      (List.map (fun cohort -> (cohort, msg)) cohorts)
    |> List.iter (function
         | _, Ok () -> Sim.Metrics.incr (metrics t) "server.checkpoints"
         | _, Error _ ->
             Sim.Metrics.incr (metrics t) "server.checkpoint_failures")
  end

(* The resource manager wiring an instance into action completion. *)
let make_manager t inst =
  let release action =
    Lockmgr.Manager.release_all inst.i_locks ~owner:action;
    (* Also prune the action from the checkpointed holder snapshot: a
       cohort promoted after this action ended must not resurrect its
       locks (they would never be released — a phantom wedge). *)
    inst.i_ckpt_holders <-
      List.filter (fun (o, _) -> not (String.equal o action)) inst.i_ckpt_holders
  in
  {
    Action.Resource_host.m_prepare = (fun ~action:_ -> true);
    m_commit =
      (fun ~action ->
        (match Hashtbl.find_opt inst.i_staged action with
        | Some payload ->
            inst.i_committed <- payload;
            inst.i_version <-
              Store.Version.next inst.i_version ~committed_by:action;
            Hashtbl.remove inst.i_staged action;
            (* Append the committed version's op provenance before the
               locks drop: the next writer's commit view must already see
               a chain that reaches this version. A write whose ops were
               not recorded (a checkpoint from a pre-oplog coordinator)
               leaves a deliberate gap — gaps force full-state fallback,
               never a wrong delta. *)
            (if t.delta_shipping then
               match Hashtbl.find_opt inst.i_staged_ops action with
               | Some (_ :: _ as ops) ->
                   Oplog.append t.o_log ~now:(Sim.Engine.now (eng t))
                     ~node:inst.i_node ~uid:inst.i_uid ~version:inst.i_version
                     ~ops:(List.rev ops)
               | Some [] | None -> ());
            Hashtbl.remove inst.i_staged_ops action;
            tracef t "%s: %s instance-commit %a := %S %a" inst.i_node action
              Store.Uid.pp inst.i_uid payload Store.Version.pp inst.i_version
        | None ->
            tracef t "%s: %s instance-commit %a: nothing staged" inst.i_node
              action Store.Uid.pp inst.i_uid);
        clean_applied inst action;
        release action;
        settle_action inst action;
        (match guard_of t inst.i_node with
        | Some g ->
            Action.Orphan_guard.settle g
              ~scope:(Store.Uid.to_string inst.i_uid) ~action
        | None -> ());
        checkpoint_to_cohorts t inst);
    m_abort =
      (fun ~action ->
        Hashtbl.remove inst.i_staged action;
        Hashtbl.remove inst.i_staged_ops action;
        clean_applied inst action;
        release action;
        settle_action inst action;
        (match guard_of t inst.i_node with
        | Some g ->
            Action.Orphan_guard.settle g
              ~scope:(Store.Uid.to_string inst.i_uid) ~action
        | None -> ());
        checkpoint_to_cohorts t inst);
    m_transfer =
      (fun ~action ~parent ->
        (match Hashtbl.find_opt inst.i_staged action with
        | Some payload ->
            Hashtbl.replace inst.i_staged parent payload;
            Hashtbl.remove inst.i_staged action;
            (* The ops move with the payload they produced: the child's
               staged state replaces the parent's, so its provenance
               replaces the parent's too (the child folded over whatever
               the parent had staged). *)
            (match Hashtbl.find_opt inst.i_staged_ops action with
            | Some ops -> Hashtbl.replace inst.i_staged_ops parent ops
            | None -> Hashtbl.remove inst.i_staged_ops parent);
            Hashtbl.remove inst.i_staged_ops action
        | None -> ());
        Lockmgr.Manager.transfer_all inst.i_locks ~from_owner:action
          ~to_owner:parent;
        (* The child is finished as an owner here: a straggler invocation
           under the child's id would stage state its (gone) completion
           can never move to the parent. *)
        settle_action inst action;
        inst.i_ckpt_holders <-
          List.map
            (fun (o, m) -> if String.equal o action then (parent, m) else (o, m))
            inst.i_ckpt_holders;
        (match guard_of t inst.i_node with
        | Some g ->
            Action.Orphan_guard.transfer g
              ~scope:(Store.Uid.to_string inst.i_uid) ~action ~parent
        | None -> ());
        checkpoint_to_cohorts t inst);
  }

let install_instance t node inst =
  Hashtbl.replace (node_instances t node) (Store.Uid.to_string inst.i_uid) inst;
  Action.Resource_host.register (Action.Atomic.resource_host t.art) ~node
    ~resource:(resource_name inst.i_uid) (make_manager t inst)

(* A lock wait that timed out may be blocked by an action whose
   coordinator is partitioned away: the coordinator's abort fan-out never
   reached this node, the orphan guard only fires on crashes, and nothing
   retries the release after the cut heals — the instance would be wedged
   forever. Probe such holders' coordinators from a separate fiber: a
   commit decision completes the holder locally, an abort/unknown one (or
   a coordinator unreachable through the whole probe budget) is presumed
   abort. Holders whose coordinator is reachable are left alone — that is
   live contention, resolved by the holder's own completion fan-out. *)
let break_stale_holders t node inst =
  List.iter
    (fun (owner, _mode) ->
      let coordinator = Action.Orphan_guard.origin_of_action owner in
      let key = (node, Store.Uid.to_string inst.i_uid, owner) in
      if
        (not (Hashtbl.mem t.breaking key))
        && not (Net.Network.reachable (net t) node coordinator)
      then begin
        Hashtbl.add t.breaking key ();
        Net.Network.spawn_on (net t) node
          ~name:(Printf.sprintf "%s.break-lock:%s" node owner)
          (fun () ->
            let rh = Action.Atomic.resource_host t.art in
            let resource = resource_name inst.i_uid in
            let finish how =
              match how with
              | `Commit ->
                  tracef t "%s: wedged holder %s -> commit" node owner;
                  ignore
                    (Action.Resource_host.commit rh ~from:node ~node ~resource
                       ~action:owner)
              | `Abort why ->
                  tracef t "%s: wedged holder %s -> presumed abort (%s)" node
                    owner why;
                  ignore
                    (Action.Resource_host.abort rh ~from:node ~node ~resource
                       ~action:owner);
                  (* The presumption may be wrong (the coordinator may in
                     fact have committed, unreachably): this instance's
                     volatile state is now suspect, so passivate it — the
                     next activation rebuilds from the object stores,
                     which hold the committed truth. *)
                  ignore
                    (Net.Rpc.call
                       (Action.Atomic.rpc t.art)
                       ~from:node ~dst:node t.ep_passivate inst.i_uid)
            in
            let rec settle n =
              if List.mem_assoc owner (holders_snapshot inst) then
                match
                  Action.Atomic.query_decision t.art ~from:node ~coordinator
                    ~action:owner
                with
                | Ok Action.Atomic.D_commit -> finish `Commit
                | Ok (Action.Atomic.D_abort | Action.Atomic.D_unknown) ->
                    finish (`Abort "decided")
                | Ok Action.Atomic.D_active ->
                    (* The cut healed and the action is still live: its
                       own completion will release the lock. *)
                    ()
                | Error _ ->
                    if n = 0 then finish (`Abort "coordinator unreachable")
                    else begin
                      Sim.Engine.sleep (eng t) 2.0;
                      settle (n - 1)
                    end
            in
            settle 5;
            Hashtbl.remove t.breaking key)
      end)
    (holders_snapshot inst)

(* Core invocation logic, shared by the RPC and multicast paths. Runs in a
   fiber on the instance's node. *)
let do_invoke t node { v_uid; v_action; v_serial; v_last_acked; v_write; v_op } =
  match find_instance t node v_uid with
  | None -> Not_active
  | Some inst -> (
      if inst.i_role = Cohort then Not_coordinator
      else if
        (* The client saw an earlier invocation of this action answered,
           but we have no trace of it: a failover lost the staged state
           (checkpoints were lazy). Executing from the committed state
           would silently drop the earlier updates — refuse instead. *)
        v_last_acked > 0
        && not (Hashtbl.mem inst.i_applied (applied_key v_action v_last_acked))
      then begin
        Sim.Metrics.incr (metrics t) "server.state_lost";
        State_lost
      end
      else if is_settled inst v_action then begin
        Sim.Metrics.incr (metrics t) "server.settled_refusals";
        Settled
      end
      else
        let key = applied_key v_action v_serial in
        match Hashtbl.find_opt inst.i_applied key with
        | Some cached -> Reply cached (* exactly-once across retries *)
        | None -> (
            touch_guard t node v_uid v_action;
            let mode = if v_write then Lockmgr.Mode.Write else Lockmgr.Mode.Read in
            match
              Lockmgr.Manager.acquire inst.i_locks ~owner:v_action ~mode
                ~timeout:t.lock_timeout "state"
            with
            | Error `Timeout ->
                break_stale_holders t node inst;
                Sim.Metrics.incr (metrics t) "server.lock_refusals";
                Locked
            | Ok () when is_settled inst v_action ->
                (* The action finished (timeout abort, usually) while this
                   fiber sat parked on the instance lock: executing now
                   would stage payload and hold locks for an owner whose
                   completion already ran. *)
                Lockmgr.Manager.release_all inst.i_locks ~owner:v_action;
                Sim.Metrics.incr (metrics t) "server.settled_refusals";
                tracef t "%s: refused settled action %s on %a" node v_action
                  Store.Uid.pp v_uid;
                Settled
            | Ok () ->
                let payload =
                  match Hashtbl.find_opt inst.i_staged v_action with
                  | Some staged -> staged
                  | None -> inst.i_committed
                in
                let payload', reply = inst.i_impl.Object_impl.apply payload v_op in
                if v_write then begin
                  Hashtbl.replace inst.i_staged v_action payload';
                  (* Provenance, recorded exactly once per applied
                     invocation (the dedup table above short-circuits
                     retries): the op log entry this write will become. *)
                  (if t.delta_shipping then
                     let prev =
                       Option.value ~default:[]
                         (Hashtbl.find_opt inst.i_staged_ops v_action)
                     in
                     Hashtbl.replace inst.i_staged_ops v_action (v_op :: prev));
                  tracef t "%s: %s writes %a: %S -> %S (base %a)" node v_action
                    Store.Uid.pp v_uid payload payload' Store.Version.pp
                    inst.i_version
                end;
                Hashtbl.replace inst.i_applied key reply;
                Sim.Metrics.incr (metrics t) "server.invocations";
                if t.eager_checkpoints then checkpoint_to_cohorts t inst;
                Reply reply))

let apply_checkpoint t node msg =
  let fresh_enough inst = msg.k_stamp > inst.i_ckpt_stamp in
  let inst =
    match find_instance t node msg.k_uid with
    | Some inst -> inst
    | None ->
        let impl = Object_impl.find t.impls msg.k_impl in
        let inst =
          {
            i_uid = msg.k_uid;
            i_impl = impl;
            i_node = node;
            i_committed = msg.k_committed;
            i_version = msg.k_version;
            i_staged = Hashtbl.create 8;
            i_staged_ops = Hashtbl.create 8;
            i_applied = Hashtbl.create 8;
            i_locks = Lockmgr.Manager.create (eng t);
            i_role = Cohort;
            i_members = msg.k_members;
            i_ckpt_holders = [];
            i_ckpt_stamp = neg_infinity;
            i_settled = [];
          }
        in
        install_instance t node inst;
        inst
  in
  if fresh_enough inst then begin
    inst.i_ckpt_stamp <- msg.k_stamp;
    inst.i_committed <- msg.k_committed;
    inst.i_version <- msg.k_version;
    Hashtbl.reset inst.i_staged;
    List.iter (fun (k, v) -> Hashtbl.replace inst.i_staged k v) msg.k_staged;
    Hashtbl.reset inst.i_staged_ops;
    List.iter
      (fun (k, v) -> Hashtbl.replace inst.i_staged_ops k v)
      msg.k_staged_ops;
    Hashtbl.reset inst.i_applied;
    List.iter (fun (k, v) -> Hashtbl.replace inst.i_applied k v) msg.k_applied;
    (* Adopt the coordinator's retained op log for this object: the
       checkpoint anchors how far back this cohort can ever ship deltas
       from, which keeps cohort logs in lock-step with compaction at the
       coordinator. *)
    if t.delta_shipping then
      Oplog.install t.o_log ~now:(Sim.Engine.now (eng t)) ~node
        ~uid:msg.k_uid msg.k_oplog;
    inst.i_ckpt_holders <- msg.k_holders;
    inst.i_members <- msg.k_members
  end
  else Sim.Metrics.incr (metrics t) "server.checkpoints_stale_dropped"

(* A replica assuming the coordinator role must materialise the lock
   table of the last checkpoint: in-progress actions coordinated at the
   previous coordinator hold locks there, and a new writer arriving here
   must wait for them exactly as it would have at the original node. *)
let assume_coordinator (_ : runtime) inst =
  if inst.i_role <> Coordinator then begin
    inst.i_role <- Coordinator;
    List.iter
      (fun (owner, mode) ->
        ignore (Lockmgr.Manager.try_acquire inst.i_locks ~owner ~mode "state"))
      inst.i_ckpt_holders
  end

(* Cohort self-promotion: when the failure detector reports the
   coordinator's crash, the live member with the smallest node id takes
   over, installing the checkpointed lock table; other survivors re-watch
   whoever was elected. *)
let rec arrange_promotion_chain t node uid coordinator =
  ignore
    (Net.Network.watch_crash (net t) coordinator (fun () ->
         Net.Network.spawn_on (net t) node ~name:(node ^ ".promote") (fun () ->
             match find_instance t node uid with
             | None -> ()
             | Some inst when inst.i_role <> Cohort -> ()
             | Some inst -> (
                 let live =
                   List.filter
                     (fun m ->
                       (not (String.equal m coordinator))
                       && Net.Network.is_up (net t) m)
                     inst.i_members
                 in
                 let elected = List.fold_left
                     (fun best m ->
                       match best with
                       | None -> Some m
                       | Some b -> if String.compare m b < 0 then Some m else best)
                     None live
                 in
                 match elected with
                 | Some e when String.equal e node ->
                     tracef t "%s promoted to coordinator of %a (holders: %s)"
                       node Store.Uid.pp uid
                       (String.concat ","
                          (List.map fst inst.i_ckpt_holders));
                     assume_coordinator t inst;
                     Sim.Metrics.incr (metrics t) "server.promotions"
                 | Some e ->
                     (* Someone else took over: watch them in turn. *)
                     arrange_promotion_chain t node uid e
                 | None -> ()))))

let make_instance t node impl uid state role members =
  {
    i_uid = uid;
    i_impl = impl;
    i_node = node;
    i_committed = state.Store.Object_state.payload;
    i_version = state.Store.Object_state.version;
    i_staged = Hashtbl.create 8;
    i_staged_ops = Hashtbl.create 8;
    i_applied = Hashtbl.create 8;
    i_locks = Lockmgr.Manager.create (eng t);
    i_role = role;
    i_members = members;
    i_ckpt_holders = [];
    i_ckpt_stamp = neg_infinity;
    i_settled = [];
  }

let do_activate t node { a_uid; a_impl; a_stores; a_role; a_members } =
  (* Idempotent path: refresh role and membership (re-binding, role
     assignment after group formation, or a change in the degree of
     replication). *)
  let refresh inst =
    let was = inst.i_role in
    (if a_role = Coordinator then assume_coordinator t inst
     else inst.i_role <- a_role);
    inst.i_members <- a_members;
    (if a_role = Cohort && was <> Cohort then
       match a_members with
       | coordinator :: _ when not (String.equal coordinator node) ->
           arrange_promotion_chain t node a_uid coordinator
       | _ -> ());
    Activated inst.i_version
  in
  match find_instance t node a_uid with
  | Some inst -> refresh inst
  | None -> (
      match Hashtbl.find_opt t.impls a_impl with
      | None -> Activation_failed ("unknown implementation " ^ a_impl)
      | Some impl -> (
          let sh = Action.Atomic.store_host t.art in
          (* The activation probe walks [StA] in order until one store
             yields a state. Under [sibling_hedge], walk it healthiest
             first ({!Net.Health.rank}) so a browned first replica does
             not put its tail latency in front of every activation; the
             rank is the identity while every store looks healthy, and
             off the flag the order is untouched (byte-identical). *)
          let probe_stores =
            if t.sibling_hedge && a_stores <> [] then
              let h = Net.Network.health (Action.Atomic.network t.art) in
              Net.Health.rank h
                ~now:(Sim.Engine.now (Action.Atomic.engine t.art))
                a_stores
            else a_stores
          in
          let state =
            if a_stores = [] then Some (Store.Object_state.initial impl.Object_impl.initial)
            else
              List.fold_left
                (fun acc store ->
                  match acc with
                  | Some _ -> acc
                  | None -> (
                      match Action.Store_host.read sh ~from:node ~store a_uid with
                      | Ok (Some s) -> Some s
                      | Ok None | Error _ -> None))
                None probe_stores
          in
          match (state, find_instance t node a_uid) with
          | _, Some inst ->
              (* The store read yielded; a concurrent activation installed
                 the instance first. Installing ours would silently drop
                 its applied-invocation table and lock state (every racing
                 binder of a busy object would wipe the others), so defer
                 to the winner. *)
              Sim.Metrics.incr (metrics t) "server.activation_races";
              refresh inst
          | None, None -> Activation_failed "no reachable object store holds the state"
          | Some state, None ->
              let inst = make_instance t node impl a_uid state a_role a_members in
              install_instance t node inst;
              if a_role = Cohort then begin
                match a_members with
                | coordinator :: _ -> arrange_promotion_chain t node a_uid coordinator
                | [] -> ()
              end;
              Sim.Metrics.incr (metrics t) "server.activations";
              tracef t "activated %a on %s (%s)" Store.Uid.pp a_uid node
                (match a_role with
                | Plain -> "plain"
                | Coordinator -> "coordinator"
                | Cohort -> "cohort");
              Activated inst.i_version))

let do_view t node { cw_uid; cw_action; cw_last_acked } =
  match find_instance t node cw_uid with
  | None -> None
  | Some inst when
      cw_last_acked > 0
      && not (Hashtbl.mem inst.i_applied (applied_key cw_action cw_last_acked))
    ->
      (* Behind the client: the invocation stream has not fully reached
         this replica (multicast in flight, or a lazily-checkpointed
         cohort). *)
      Sim.Metrics.incr (metrics t) "server.view_behind";
      None
  | Some inst -> (
      match Hashtbl.find_opt inst.i_staged cw_action with
      | Some staged ->
          let cv_version =
            Store.Version.next inst.i_version ~committed_by:cw_action
          in
          (* The chain the copy-back cuts suffixes from: this replica's
             retained committed history plus the dirty write itself. A
             write with no recorded ops yields an empty chain — the
             copy-back then ships full state everywhere. *)
          let cv_delta =
            if not t.delta_shipping then []
            else
              match Hashtbl.find_opt inst.i_staged_ops cw_action with
              | Some (_ :: _ as ops) ->
                  Oplog.records t.o_log ~node ~uid:cw_uid
                  @ [ (cv_version, List.rev ops) ]
              | Some [] | None -> []
          in
          Some { cv_payload = staged; cv_version; cv_dirty = true; cv_delta }
      | None ->
          Some
            {
              cv_payload = inst.i_committed;
              cv_version = inst.i_version;
              cv_dirty = false;
              cv_delta = [];
            })

let instance_quiescent inst =
  Hashtbl.length inst.i_staged = 0 && holders_snapshot inst = []

let install_host t node =
  let rpc = Action.Atomic.rpc t.art in
  Net.Rpc.serve rpc ~node t.ep_activate (fun req -> do_activate t node req);
  Net.Rpc.serve rpc ~node t.ep_invoke (fun req -> do_invoke t node req);
  Net.Rpc.serve rpc ~node t.ep_view (fun req -> do_view t node req);
  Net.Rpc.serve rpc ~node t.ep_role (fun uid ->
      Option.map (fun i -> i.i_role) (find_instance t node uid));
  Net.Rpc.serve rpc ~node t.ep_quiescent (fun uid ->
      match find_instance t node uid with
      | None -> true
      | Some inst -> instance_quiescent inst);
  Net.Rpc.serve rpc ~node t.ep_passivate (fun uid ->
      match find_instance t node uid with
      | None -> true
      | Some inst ->
          if instance_quiescent inst then begin
            Hashtbl.remove (node_instances t node) (Store.Uid.to_string uid);
            tracef t "passivated %a on %s" Store.Uid.pp uid node;
            true
          end
          else false);
  Net.Rpc.serve rpc ~node t.ep_checkpoint (fun msg -> apply_checkpoint t node msg);
  Net.Multicast.listen t.mc ~node t.ch_invoke (fun ~seq:_ mi ->
      let result =
        do_invoke t node
          {
            v_uid = mi.mi_uid;
            v_action = mi.mi_action;
            v_serial = mi.mi_serial;
            v_last_acked = mi.mi_last_acked;
            v_write = mi.mi_write;
            v_op = mi.mi_op;
          }
      in
      Net.Rpc.notify rpc ~from:node ~dst:mi.mi_reply_to t.ep_reply
        { mr_req = mi.mi_req; mr_replica = node; mr_result = result });
  (* Watch for clients that crash mid-action and abort their orphaned
     locks and staged state at this node's instances. *)
  Hashtbl.replace t.guards node
    (Action.Orphan_guard.create (net t) ~node ~abort:(fun ~scope ~action ->
         let found =
           Hashtbl.fold
             (fun key inst acc ->
               if String.equal key scope then Some inst else acc)
             (node_instances t node) None
         in
         match found with
         | None -> ()
         | Some inst ->
             Sim.Metrics.incr (metrics t) "server.orphan_aborts";
             tracef t "%s: aborting orphaned action %s on %a" node action
               Store.Uid.pp inst.i_uid;
             (make_manager t inst).Action.Resource_host.m_abort ~action));
  (* Instances are volatile: destroy them on crash, and their op logs
     with them — a recovered node re-activates from the stores and
     rebuilds history from its next commits. *)
  Net.Network.on_crash (net t) node (fun () ->
      Hashtbl.reset (node_instances t node);
      Oplog.drop_node t.o_log node)

let activate t ~from ~server ~uid ~impl ~stores ~role ~members =
  Net.Rpc.call (Action.Atomic.rpc t.art) ~from ~dst:server t.ep_activate
    { a_uid = uid; a_impl = impl; a_stores = stores; a_role = role; a_members = members }

let invoke t ~from ~server ~uid ~action ~serial ~last_acked ~write ~op =
  Net.Rpc.call (Action.Atomic.rpc t.art) ~from ~dst:server t.ep_invoke
    {
      v_uid = uid;
      v_action = action;
      v_serial = serial;
      v_last_acked = last_acked;
      v_write = write;
      v_op = op;
    }

let commit_view t ~from ~server ~uid ~action ~last_acked =
  Net.Rpc.call (Action.Atomic.rpc t.art) ~from ~dst:server t.ep_view
    { cw_uid = uid; cw_action = action; cw_last_acked = last_acked }

let role_of t ~from ~server ~uid =
  Net.Rpc.call (Action.Atomic.rpc t.art) ~from ~dst:server t.ep_role uid

let passivate t ~from ~server ~uid =
  Net.Rpc.call (Action.Atomic.rpc t.art) ~from ~dst:server t.ep_passivate uid

let quiescent t ~from ~server ~uid =
  Net.Rpc.call (Action.Atomic.rpc t.art) ~from ~dst:server t.ep_quiescent uid

let local_instances t ~node =
  Hashtbl.fold (fun _ inst acc -> inst.i_uid :: acc) (node_instances t node) []
  |> List.sort Store.Uid.compare

let instance_exists t ~node ~uid = find_instance t node uid <> None

let instance_residue t ~node =
  Hashtbl.fold
    (fun _ inst acc ->
      let holders =
        List.map fst (holders_snapshot inst) |> List.sort String.compare
      in
      let staged =
        Hashtbl.fold (fun a _ acc -> a :: acc) inst.i_staged []
        |> List.sort String.compare
      in
      if holders = [] && staged = [] then acc
      else (inst.i_uid, holders, staged) :: acc)
    (node_instances t node) []
  |> List.sort (fun (a, _, _) (b, _, _) -> Store.Uid.compare a b)

let instance_payload t ~node ~uid =
  Option.map (fun i -> i.i_committed) (find_instance t node uid)
