type 'a reply =
  | Granted of 'a
  | Busy of string
  | Refused of string
  | Moved of Net.Network.node_id
      (* wrong shard: the entry was handed off to the given naming node;
         the router follows the hint and retries there *)

type server_view = {
  sv_servers : Net.Network.node_id list;
  sv_uses : (Net.Network.node_id * Use_list.t) list;
}

type entry_info = {
  ei_impl : string;
  ei_sv_home : Net.Network.node_id list;
  ei_st_home : Net.Network.node_id list;
}

(* The recoverable image of an entry, split along the paper's locking
   granularity: the server list and the state list are "concurrency
   controlled independently" (§4.1), so their before-images must be saved
   and restored independently too — a whole-entry undo taken under the sv
   lock would capture (and later resurrect) another action's in-flight
   st mutation. Both halves are immutable, so undo is save/restore. *)
type sv_image = {
  im_sv : Net.Network.node_id list;
  im_sv_home : Net.Network.node_id list;
  im_uses : (Net.Network.node_id * Use_list.t) list;
}

type st_image = {
  im_st : Net.Network.node_id list;
  im_st_home : Net.Network.node_id list;
  im_version : Store.Version.t;
      (* latest committed version of the object: the fence that keeps a
         recovering store from re-joining StA with a rewound state when
         every holder of the newest state happens to be down *)
  im_st_rev : int;
      (* monotone counter of committed St-membership changes (Include,
         Exclude, retirement), bumped by [install_snapshot] only when the
         member list itself changed. The optimistic commit path validates
         against this — not [e_version], which also counts commuting
         use-list traffic and every writer's own version note, so
         validating against it would conflict on every concurrent bind.
         Living inside the image, it rides mirrors, handoffs and resyncs
         for free. *)
}

type image = { im_server : sv_image; im_state : st_image }

type side = Sv_side | St_side

type half_image = Server_half of sv_image | State_half of st_image

type entry = {
  e_uid : Store.Uid.t;
  e_impl : string;
  mutable e_image : image;
      (* working image: committed state plus the in-place mutations of
         in-flight Write-mode actions (undone via before-images) *)
  mutable e_snap : image;
      (* latest committed snapshot, replaced (per touched half) when an
         action commits: lock-free readers see this and only this *)
  mutable e_version : int;
      (* monotone counter, bumped once per committing action that touched
         the entry; returned by snapshot reads and carried by mirrors,
         handoffs and the bind cache *)
}

(* -- wire types -- *)

type reg_req = {
  rg_uid : Store.Uid.t;
  rg_name : string;
  rg_impl : string;
  rg_sv : Net.Network.node_id list;
  rg_st : Net.Network.node_id list;
}

type op_req = { o_uid : Store.Uid.t; o_action : string; o_node : Net.Network.node_id }

type use_req = {
  u_uid : Store.Uid.t;
  u_action : string;
  u_client : Net.Network.node_id;
  u_nodes : Net.Network.node_id list;
}

type excl_req = {
  x_action : string;
  x_pairs : (Store.Uid.t * Net.Network.node_id list) list;
}

type read_req = { r_uid : Store.Uid.t; r_action : string }

type note_req = { n_uid : Store.Uid.t; n_action : string; n_version : Store.Version.t }

(* The optimistic commit's combined validate-and-note: one request carries
   both the version note the classic path sends ([vv_version]) and the St
   revision the committing client's lock-free snapshot read observed
   ([vv_rev]). The handler re-checks the revision under the note's own
   write-fence lock, so a Granted-[true] reply means "no Include/Exclude
   committed since your snapshot AND the fence now holds to your action's
   end" — in a single RPC round. *)
type validate_req = {
  vv_uid : Store.Uid.t;
  vv_action : string;
  vv_version : Store.Version.t;
  vv_rev : int;
}

(* Optimistic membership change (the §13 discipline applied to §4.2's own
   operations): the caller read (St, rev) lock-free, decided the change
   off that snapshot, and now asks for it to be applied only if the
   revision still stands — decide-then-mutate in one atomic round instead
   of a blind mutation under a blocking lock. *)
type member_op = Add_member | Drop_member

type member_req = {
  mb_uid : Store.Uid.t;
  mb_action : string;
  mb_op : member_op;
  mb_node : Net.Network.node_id;
  mb_rev : int;
}

(* The single-round bind request (schemes B/C): GetServer + Remove(dead)
   + Increment + GetView collapsed into one database operation, with the
   caller's coalesced pending Decrements ([bt_credits], one count per
   server node) piggybacked on the same round. *)
type batch_req = {
  bt_uid : Store.Uid.t;
  bt_action : string;
  bt_client : Net.Network.node_id;
  bt_replicas : int; (* activation subset size wanted by the policy *)
  bt_credits : (Net.Network.node_id * int) list;
}

type batch_view = {
  bv_impl : string;
  bv_chosen : Net.Network.node_id list; (* the servers whose counters were bumped *)
  bv_removed : Net.Network.node_id list; (* dead servers pruned from SvA *)
  bv_stores : Net.Network.node_id list; (* committed StA snapshot *)
  bv_version : int; (* snapshot version of the entry *)
}

(* A migrating entry in flight between shards: the full recoverable image
   plus every name bound to it. Only quiescent-at-the-lock-level entries
   migrate (no holders, no waiters), so there are never before-images to
   carry — the undo lifecycle is the lock lifecycle. *)
type handoff = {
  ho_serial : int;
  ho_uid : Store.Uid.t;
  ho_impl : string;
  ho_image : image;
  ho_version : int;
  ho_names : string list;
}

type handoff_req = { hr_uid : Store.Uid.t; hr_dest : Net.Network.node_id }

(* One shared endpoint VALUE for backup replication, served by every
   instance: a typed endpoint only interoperates with itself (its [Univ]
   embedding is per-value), so a module-level endpoint is what lets the
   primary push one per-commit payload to all backups as a single
   [call_all] scatter instead of per-instance sequential calls. *)
let ep_mirror : ((int * image * int) list, unit) Net.Rpc.endpoint =
  Net.Rpc.endpoint "gvd.mirror"

type t = {
  art : Action.Atomic.runtime;
  gvd_node : Net.Network.node_id;
  lock_timeout : float;
  use_exclude_write : bool;
  durable : bool;
  mutable g_hedged : bool;
      (* hedge the plain idempotent reads (lookup, entry_info, snapshot
         reads) with a health-delayed backup; default off. Enlisted
         operations are NEVER hedged: they stage locks and counter
         updates, and a duplicate delivery rides below the dedup guard. *)
  service_time : float;
      (* modeled CPU cost per database operation; 0.0 = infinitely fast
         service node (the seed behaviour). Charged on a capacity-1
         semaphore so concurrent requests queue for the shard's CPU —
         lock waits inside handlers do not hold it. *)
  service : Sim.Semaphore.t;
  (* Entries handed off to another shard: uid serial -> destination.
     Requests arriving here for a migrated entry get a [Moved] bounce. *)
  moved_out : (int, Net.Network.node_id) Hashtbl.t;
  (* Actions that have touched the database since the last crash of the
     service node. With [durable], a crash restores every entry to its
     committed image and wipes locks — so pre-crash actions must vote no
     at prepare (their reads and staged updates are gone). *)
  known_actions : (string, unit) Hashtbl.t;
  (* In-flight presumed-abort probes for lock holders whose coordinator
     is partitioned away, keyed by holder action. *)
  breaking : (string, unit) Hashtbl.t;
  entries : (int, entry) Hashtbl.t; (* keyed by uid serial *)
  names : (string, Store.Uid.t) Hashtbl.t;
  locks : Lockmgr.Manager.t;
  (* Before-images per action and per independently-locked half:
     (action, uid serial, side) -> half image. *)
  undo : (string * int * side, half_image) Hashtbl.t;
  (* Staged commuting use-list updates per action and entry:
     (action, uid serial) -> (server node, client, delta). Unlike the
     structural Sv/St writes these are operation (redo) records, applied
     at commit and simply dropped at abort: a before-image restore would
     erase the committed deltas of concurrent [Delta]-mode holders. *)
  pending : (string * int, (Net.Network.node_id * Net.Network.node_id * int) list) Hashtbl.t;
  mutable guard : Action.Orphan_guard.t option;
      (* watches action origins; aborts orphaned actions of dead clients *)
  ep_register : (reg_req, unit) Net.Rpc.endpoint;
  ep_lookup : (string, Store.Uid.t option) Net.Rpc.endpoint;
  ep_info : (Store.Uid.t, entry_info option) Net.Rpc.endpoint;
  ep_stored_on : (Net.Network.node_id, Store.Uid.t list) Net.Rpc.endpoint;
  ep_served_by : (Net.Network.node_id, Store.Uid.t list) Net.Rpc.endpoint;
  ep_get_server : (read_req, server_view reply) Net.Rpc.endpoint;
  ep_get_server_update : (read_req, server_view reply) Net.Rpc.endpoint;
  ep_insert : (op_req, unit reply) Net.Rpc.endpoint;
  ep_remove : (op_req, unit reply) Net.Rpc.endpoint;
  ep_increment : (use_req, unit reply) Net.Rpc.endpoint;
  ep_decrement : (use_req, unit reply) Net.Rpc.endpoint;
  ep_zero : (use_req, unit reply) Net.Rpc.endpoint;
  ep_get_view : (read_req, Net.Network.node_id list reply) Net.Rpc.endpoint;
  ep_batch : (batch_req, batch_view reply) Net.Rpc.endpoint;
  ep_view_snap : (Store.Uid.t, (Net.Network.node_id list * int) reply) Net.Rpc.endpoint;
  ep_server_snap : (Store.Uid.t, (server_view * int) reply) Net.Rpc.endpoint;
  ep_view_commit : (Store.Uid.t, (Net.Network.node_id list * int) reply) Net.Rpc.endpoint;
  ep_validate : (validate_req, bool reply) Net.Rpc.endpoint;
  ep_membership : (member_req, (bool * Store.Version.t) reply) Net.Rpc.endpoint;
  ep_exclude : (excl_req, unit reply) Net.Rpc.endpoint;
  ep_include : (op_req, Store.Version.t reply) Net.Rpc.endpoint;
  ep_retire_sv : (op_req, unit reply) Net.Rpc.endpoint;
  ep_retire_st : (op_req, unit reply) Net.Rpc.endpoint;
  ep_note_version : (note_req, unit reply) Net.Rpc.endpoint;
  ep_handoff : (handoff_req, handoff reply) Net.Rpc.endpoint;
  ep_snapshot : (unit, (int * image * int) list) Net.Rpc.endpoint;
  mutable backups : t list;
      (* §3.1 extension: further database instances receiving the
         committed images of every touched entry, synchronously, at each
         action end — the primary-backup replication the paper defers.
         Pushes to all backups go out in parallel. *)
}

let resource = "gvd"

let node t = t.gvd_node

let eng t = Action.Atomic.engine t.art
let netw t = Action.Atomic.network t.art

let tracef t fmt =
  Sim.Trace.recordf (Net.Network.trace (netw t)) ~now:(Sim.Engine.now (eng t))
    ~tag:"gvd" fmt

let metrics t = Net.Network.metrics (netw t)

let sv_key uid = "sv:" ^ Store.Uid.to_string uid
let st_key uid = "st:" ^ Store.Uid.to_string uid

let entry_opt t uid = Hashtbl.find_opt t.entries (Store.Uid.serial uid)

(* The reply for an entry this shard does not hold: a [Moved] hint if it
   was handed off, a refusal otherwise. *)
let absent t uid =
  match Hashtbl.find_opt t.moved_out (Store.Uid.serial uid) with
  | Some dest -> Moved dest
  | None -> Refused "unknown object"

let owns t uid = Hashtbl.mem t.entries (Store.Uid.serial uid)

(* Charge the shard's CPU for one database operation before running the
   handler body. The permit is released before [f], so a handler blocked
   on a lock does not hold the processor. With the default
   [service_time = 0.0] this is a no-op and the seed behaviour is
   byte-for-byte unchanged. *)
let serviced t f =
  if t.service_time > 0.0 then begin
    Sim.Semaphore.acquire (eng t) t.service;
    Sim.Engine.sleep (eng t) t.service_time;
    Sim.Semaphore.release t.service
  end;
  f ()

let entry_exn t uid =
  match entry_opt t uid with
  | Some e -> e
  | None -> failwith ("gvd: unknown object " ^ Store.Uid.to_string uid)

(* Record the before-image of ONE side of the entry for the action, once:
   the side the action's lock actually covers. *)
let save_sv t ~action e =
  let key = (action, Store.Uid.serial e.e_uid, Sv_side) in
  if not (Hashtbl.mem t.undo key) then
    Hashtbl.add t.undo key (Server_half e.e_image.im_server)

let save_st t ~action e =
  let key = (action, Store.Uid.serial e.e_uid, St_side) in
  if not (Hashtbl.mem t.undo key) then
    Hashtbl.add t.undo key (State_half e.e_image.im_state)

(* Stage commuting use-list deltas for the action (redo records, applied
   at commit). Only taken under the [Delta] lock. *)
let stage_deltas t ~action e deltas =
  let key = (action, Store.Uid.serial e.e_uid) in
  let cur = Option.value ~default:[] (Hashtbl.find_opt t.pending key) in
  Hashtbl.replace t.pending key (cur @ deltas)

let rec apply_n f n x = if n <= 0 then x else apply_n f (n - 1) (f x)

let apply_delta ul ~client d =
  if d >= 0 then apply_n (fun ul -> Use_list.increment ul ~client) d ul
  else apply_n (fun ul -> Use_list.decrement ul ~client) (-d) ul

let touch_guard t action =
  Hashtbl.replace t.known_actions action ();
  match t.guard with
  | Some g -> Action.Orphan_guard.touch g ~scope:"gvd" ~action
  | None -> ()

let settle_guard t action =
  match t.guard with
  | Some g -> Action.Orphan_guard.settle g ~scope:"gvd" ~action
  | None -> ()

let transfer_guard t action parent =
  match t.guard with
  | Some g -> Action.Orphan_guard.transfer g ~scope:"gvd" ~action ~parent
  | None -> ()

(* A refused database lock may be held by an action whose coordinator is
   partitioned away: its phase-2 fan-out (commit or abort) never reached
   this node, the orphan guard only fires on crashes, and nothing retries
   the release after the cut heals. Probe such holders' coordinators from
   a separate fiber and complete them locally through the registered
   resource manager — a commit decision commits, anything else (or a
   coordinator unreachable through the whole probe budget) is presumed
   abort. Holders with a reachable coordinator are live contention and
   are left alone, so healthy runs see no extra traffic. *)
let break_stale_lock_holders t key =
  List.iter
    (fun (owner, _mode) ->
      let coordinator = Action.Orphan_guard.origin_of_action owner in
      if
        (not (Hashtbl.mem t.breaking owner))
        && not (Net.Network.reachable (netw t) t.gvd_node coordinator)
      then begin
        Hashtbl.add t.breaking owner ();
        Net.Network.spawn_on (netw t) t.gvd_node
          ~name:(Printf.sprintf "%s.break-lock:%s" t.gvd_node owner)
          (fun () ->
            let rh = Action.Atomic.resource_host t.art in
            let finish how =
              match how with
              | `Commit ->
                  tracef t "%s: wedged holder %s -> commit" t.gvd_node owner;
                  ignore
                    (Action.Resource_host.commit rh ~from:t.gvd_node
                       ~node:t.gvd_node ~resource ~action:owner)
              | `Abort why ->
                  tracef t "%s: wedged holder %s -> presumed abort (%s)"
                    t.gvd_node owner why;
                  ignore
                    (Action.Resource_host.abort rh ~from:t.gvd_node
                       ~node:t.gvd_node ~resource ~action:owner)
            in
            let rec settle n =
              if
                List.exists
                  (fun (o, _) -> String.equal o owner)
                  (Lockmgr.Manager.holders t.locks key)
              then
                match
                  Action.Atomic.query_decision t.art ~from:t.gvd_node
                    ~coordinator ~action:owner
                with
                | Ok Action.Atomic.D_commit -> finish `Commit
                | Ok (Action.Atomic.D_abort | Action.Atomic.D_unknown) ->
                    finish (`Abort "decided")
                | Ok Action.Atomic.D_active ->
                    (* The cut healed and the action is still live: its
                       own completion will release the lock. *)
                    ()
                | Error _ ->
                    if n = 0 then finish (`Abort "coordinator unreachable")
                    else begin
                      Sim.Engine.sleep (eng t) 2.0;
                      settle (n - 1)
                    end
            in
            settle 5;
            Hashtbl.remove t.breaking owner)
      end)
    (Lockmgr.Manager.holders t.locks key)

(* Lock acquisition helpers: block up to the timeout, refuse after. *)
let with_lock t ~action ~mode key (f : unit -> 'a reply) : 'a reply =
  touch_guard t action;
  match
    Lockmgr.Manager.acquire t.locks ~owner:action ~mode ~timeout:t.lock_timeout key
  with
  | Ok () -> f ()
  | Error `Timeout ->
      break_stale_lock_holders t key;
      Sim.Metrics.incr (metrics t) "gvd.lock_refusals";
      Refused (Printf.sprintf "lock %s (%s) refused" key (Lockmgr.Mode.to_string mode))

let uses_of im = im.im_server.im_uses

let use_list im node =
  match List.assoc_opt node (uses_of im) with
  | Some ul -> ul
  | None -> Use_list.empty

let set_use_list im node ul =
  {
    im with
    im_server =
      {
        im.im_server with
        im_uses = (node, ul) :: List.remove_assoc node im.im_server.im_uses;
      };
  }

let all_quiescent im =
  List.for_all (fun (_, ul) -> Use_list.is_empty ul) im.im_server.im_uses

let add_unique x xs = if List.mem x xs then xs else xs @ [ x ]

(* -- handler bodies (run on the service node) -- *)

let h_register t { rg_uid; rg_name; rg_impl; rg_sv; rg_st } =
  let image =
    {
      im_server =
        {
          im_sv = rg_sv;
          im_sv_home = rg_sv;
          im_uses = List.map (fun n -> (n, Use_list.empty)) rg_sv;
        };
      im_state =
        {
          im_st = rg_st;
          im_st_home = rg_st;
          im_version = Store.Version.initial;
          im_st_rev = 0;
        };
    }
  in
  Hashtbl.replace t.entries (Store.Uid.serial rg_uid)
    { e_uid = rg_uid; e_impl = rg_impl; e_image = image; e_snap = image; e_version = 0 };
  Hashtbl.replace t.names rg_name rg_uid;
  tracef t "register %a sv=[%s] st=[%s]" Store.Uid.pp rg_uid
    (String.concat "," rg_sv) (String.concat "," rg_st)

let h_get_server ?(mode = Lockmgr.Mode.Read) t { r_uid; r_action } =
  match entry_opt t r_uid with
  | None -> absent t r_uid
  | Some e ->
      with_lock t ~action:r_action ~mode (sv_key r_uid)
        (fun () ->
          Sim.Metrics.incr (metrics t) "gvd.get_server";
          Granted
            {
              sv_servers = e.e_image.im_server.im_sv;
              sv_uses =
                List.map
                  (fun n -> (n, use_list e.e_image n))
                  e.e_image.im_server.im_sv;
            })

let h_insert t { o_uid; o_action; o_node } =
  match entry_opt t o_uid with
  | None -> absent t o_uid
  | Some e ->
      with_lock t ~action:o_action ~mode:Lockmgr.Mode.Write (sv_key o_uid)
        (fun () ->
          if not (all_quiescent e.e_image) then begin
            Sim.Metrics.incr (metrics t) "gvd.insert_busy";
            Busy "object not quiescent"
          end
          else begin
            save_sv t ~action:o_action e;
            e.e_image <-
              {
                e.e_image with
                im_server =
                  {
                    e.e_image.im_server with
                    im_sv = add_unique o_node e.e_image.im_server.im_sv;
                    im_sv_home = add_unique o_node e.e_image.im_server.im_sv_home;
                  };
              };
            tracef t "%s insert %s into Sv(%a)" o_action o_node Store.Uid.pp o_uid;
            Sim.Metrics.incr (metrics t) "gvd.inserts";
            Granted ()
          end)

let h_remove t { o_uid; o_action; o_node } =
  match entry_opt t o_uid with
  | None -> absent t o_uid
  | Some e ->
      with_lock t ~action:o_action ~mode:Lockmgr.Mode.Write (sv_key o_uid)
        (fun () ->
          save_sv t ~action:o_action e;
          e.e_image <-
            {
              e.e_image with
              im_server =
                {
                  e.e_image.im_server with
                  im_sv =
                    List.filter (fun n -> n <> o_node) e.e_image.im_server.im_sv;
                };
            };
          tracef t "%s remove %s from Sv(%a)" o_action o_node Store.Uid.pp o_uid;
          Sim.Metrics.incr (metrics t) "gvd.removes";
          Granted ())

(* Increment/Decrement: commuting counter updates under the [Delta] lock,
   so concurrent binders no longer serialise behind a write lock
   (§4.1.3's contention problem). The updates are staged as redo records
   and applied when the action commits; abort just drops them — a
   before-image restore would erase concurrent holders' committed
   deltas. [delta] is +1 (increment) or -1 (decrement) per listed node. *)
let h_use_delta t ~delta ~name { u_uid; u_action; u_client; u_nodes } =
  match entry_opt t u_uid with
  | None -> absent t u_uid
  | Some e ->
      with_lock t ~action:u_action ~mode:Lockmgr.Mode.Delta (sv_key u_uid)
        (fun () ->
          stage_deltas t ~action:u_action e
            (List.map (fun node -> (node, u_client, delta)) u_nodes);
          Sim.Metrics.incr (metrics t) ("gvd." ^ name);
          Granted ())

(* Zero (the cleanup protocol's repair for a crashed client) is not a
   commuting update — it erases the client's counters whatever their
   value — so it keeps the write lock and before-image undo. Strict 2PL
   makes the two undo disciplines safe to mix: [Write] excludes [Delta],
   so no staged delta can exist on an entry while a zero's before-image
   is live, and vice versa. *)
let h_zero t { u_uid; u_action; u_client; u_nodes = _ } =
  match entry_opt t u_uid with
  | None -> absent t u_uid
  | Some e ->
      with_lock t ~action:u_action ~mode:Lockmgr.Mode.Write (sv_key u_uid)
        (fun () ->
          save_sv t ~action:u_action e;
          e.e_image <-
            List.fold_left
              (fun im node ->
                set_use_list im node
                  (Use_list.drop_client (use_list im node) ~client:u_client))
              e.e_image
              (List.map fst e.e_image.im_server.im_uses);
          Sim.Metrics.incr (metrics t) "gvd.zeroes";
          Granted ())

let h_get_view t { r_uid; r_action } =
  match entry_opt t r_uid with
  | None -> absent t r_uid
  | Some e ->
      (* A locked GetView that finds the St entry unavailable is about to
         queue: count it, so experiments can attribute naming-tier lock
         waits to this path specifically (the probe is pure). *)
      if
        not
          (Lockmgr.Manager.available t.locks ~owner:r_action
             ~mode:Lockmgr.Mode.Read (st_key r_uid))
      then Sim.Metrics.incr (metrics t) "gvd.view_lock_waits";
      with_lock t ~action:r_action ~mode:Lockmgr.Mode.Read (st_key r_uid)
        (fun () ->
          Sim.Metrics.incr (metrics t) "gvd.get_view";
          Granted e.e_image.im_state.im_st)

(* Lock-free snapshot reads (schemes B/C): serve the latest committed
   image without touching the lock table. Writers install a new snapshot
   only at commit, so a snapshot reader can never observe an uncommitted
   mutation; the price is bounded staleness, which the commit-time
   machinery (store-side backward validation, the Include version fence)
   already tolerates. Scheme A keeps the locked read path — Figure 6's
   semantics depend on its read locks being held to action end. *)
let h_get_view_snapshot t uid =
  match entry_opt t uid with
  | None -> absent t uid
  | Some e ->
      Sim.Metrics.incr (metrics t) "gvd.get_view";
      Sim.Metrics.incr (metrics t) "gvd.snapshot_reads";
      Granted (e.e_snap.im_state.im_st, e.e_version)

(* The optimistic commit's St read: the committed member list plus the St
   revision to validate against at prepare time. Lock-free like the other
   snapshot reads — the fence the classic locked GetView provided is
   re-established (or the staleness detected) by [h_validate_view]. *)
let h_get_view_commit t uid =
  match entry_opt t uid with
  | None -> absent t uid
  | Some e ->
      Sim.Metrics.incr (metrics t) "gvd.get_view";
      Sim.Metrics.incr (metrics t) "gvd.snapshot_reads";
      Granted (e.e_snap.im_state.im_st, e.e_snap.im_state.im_st_rev)

let h_get_server_snapshot t uid =
  match entry_opt t uid with
  | None -> absent t uid
  | Some e ->
      Sim.Metrics.incr (metrics t) "gvd.get_server";
      Sim.Metrics.incr (metrics t) "gvd.snapshot_reads";
      Granted
        ( {
            sv_servers = e.e_snap.im_server.im_sv;
            sv_uses =
              List.map (fun n -> (n, use_list e.e_snap n)) e.e_snap.im_server.im_sv;
          },
          e.e_version )

let take k xs =
  let rec go k = function
    | [] -> []
    | _ when k = 0 -> []
    | x :: rest -> x :: go (k - 1) rest
  in
  go k xs

(* The single-round bind (schemes B/C): one request carries the whole
   database half of a Figure-7/8 bind — GetServer, Remove of detectably
   dead servers, Increment of the chosen subset — with the caller's
   coalesced pending Decrements piggybacked, and the reply carries the
   committed StA snapshot so no separate GetView round is needed.

   The lock mode is chosen by a lock-free peek at the committed
   snapshot: only when a listed server is detectably dead does the
   handler need the write lock (for the structural Remove); the common
   case runs in [Delta] mode and concurrent binders commute. A server
   that dies between the peek and the grant is simply not chosen — its
   Remove happens on a later bind. *)
let h_batch t { bt_uid; bt_action; bt_client; bt_replicas; bt_credits } =
  match entry_opt t bt_uid with
  | None -> absent t bt_uid
  | Some e ->
      let up n = Net.Network.is_up (netw t) n in
      let structural =
        List.exists (fun n -> not (up n)) e.e_snap.im_server.im_sv
      in
      let mode = if structural then Lockmgr.Mode.Write else Lockmgr.Mode.Delta in
      with_lock t ~action:bt_action ~mode (sv_key bt_uid) (fun () ->
          Sim.Metrics.incr (metrics t) "gvd.batch_binds";
          Sim.Metrics.incr (metrics t) "gvd.get_server";
          let sv = e.e_image.im_server.im_sv in
          let dead = List.filter (fun n -> not (up n)) sv in
          let removed =
            if mode = Lockmgr.Mode.Write && dead <> [] then begin
              save_sv t ~action:bt_action e;
              e.e_image <-
                {
                  e.e_image with
                  im_server =
                    {
                      e.e_image.im_server with
                      im_sv = List.filter (fun n -> not (List.mem n dead)) sv;
                    };
                };
              Sim.Metrics.incr (metrics t) ~by:(List.length dead) "gvd.removes";
              dead
            end
            else []
          in
          let live = List.filter up e.e_image.im_server.im_sv in
          let in_use =
            List.filter
              (fun n -> not (Use_list.is_empty (use_list e.e_image n)))
              live
          in
          let chosen = if in_use = [] then take bt_replicas live else in_use in
          if chosen = [] then Refused "no live server"
          else begin
            Sim.Metrics.incr (metrics t) "gvd.increments";
            if bt_credits <> [] then Sim.Metrics.incr (metrics t) "gvd.decrements";
            let deltas =
              List.map (fun n -> (n, bt_client, 1)) chosen
              @ List.map (fun (n, c) -> (n, bt_client, -c)) bt_credits
            in
            (match mode with
            | Lockmgr.Mode.Delta -> stage_deltas t ~action:bt_action e deltas
            | _ ->
                (* Write mode excludes every concurrent counter holder,
                   so the before-image is a sound undo and the deltas can
                   apply in place. *)
                save_sv t ~action:bt_action e;
                e.e_image <-
                  List.fold_left
                    (fun im (node, client, d) ->
                      set_use_list im node (apply_delta (use_list im node) ~client d))
                    e.e_image deltas);
            Sim.Metrics.incr (metrics t) "gvd.get_view";
            Sim.Metrics.incr (metrics t) "gvd.snapshot_reads";
            tracef t "%s batch-bind %a chosen=[%s]%s" bt_action Store.Uid.pp
              bt_uid (String.concat "," chosen)
              (if removed = [] then "" else " removed=[" ^ String.concat "," removed ^ "]");
            Granted
              {
                bv_impl = e.e_impl;
                bv_chosen = chosen;
                bv_removed = removed;
                bv_stores = e.e_snap.im_state.im_st;
                bv_version = e.e_version;
              }
          end)

(* Exclude: promote (or acquire) the §4.2.1 lock on every listed entry
   first; only mutate once every lock is held, so refusal leaves the
   database untouched. *)
let h_exclude t { x_action; x_pairs } =
  touch_guard t x_action;
  match
    List.find_map
      (fun (uid, _) ->
        if owns t uid then None
        else Hashtbl.find_opt t.moved_out (Store.Uid.serial uid))
      x_pairs
  with
  | Some dest -> Moved dest
  | None ->
  let mode =
    if t.use_exclude_write then Lockmgr.Mode.Exclude_write else Lockmgr.Mode.Write
  in
  let acquire uid =
    let key = st_key uid in
    match Lockmgr.Manager.holds t.locks ~owner:x_action key with
    | Some _ -> Lockmgr.Manager.promote t.locks ~owner:x_action ~to_mode:mode key
    | None ->
        Lockmgr.Manager.try_acquire t.locks ~owner:x_action ~mode key
  in
  let all_locked = List.for_all (fun (uid, _) -> acquire uid) x_pairs in
  if not all_locked then begin
    Sim.Metrics.incr (metrics t) "gvd.exclude_refused";
    Refused "exclude lock promotion refused"
  end
  else begin
    List.iter
      (fun (uid, nodes) ->
        match entry_opt t uid with
        | None -> ()
        | Some e ->
            save_st t ~action:x_action e;
            e.e_image <-
              {
                e.e_image with
                im_state =
                  {
                    e.e_image.im_state with
                    im_st =
                      List.filter
                        (fun n -> not (List.mem n nodes))
                        e.e_image.im_state.im_st;
                  };
              };
            tracef t "%s exclude [%s] from St(%a)" x_action
              (String.concat "," nodes) Store.Uid.pp uid;
            Sim.Metrics.incr (metrics t) ~by:(List.length nodes) "gvd.exclusions")
      x_pairs;
    Granted ()
  end

let h_retire_sv t { o_uid; o_action; o_node } =
  match entry_opt t o_uid with
  | None -> absent t o_uid
  | Some e ->
      with_lock t ~action:o_action ~mode:Lockmgr.Mode.Write (sv_key o_uid)
        (fun () ->
          if not (all_quiescent e.e_image) then Busy "object not quiescent"
          else begin
            save_sv t ~action:o_action e;
            e.e_image <-
              {
                e.e_image with
                im_server =
                  {
                    im_sv =
                      List.filter (fun n -> n <> o_node) e.e_image.im_server.im_sv;
                    im_sv_home =
                      List.filter (fun n -> n <> o_node)
                        e.e_image.im_server.im_sv_home;
                    im_uses = List.remove_assoc o_node e.e_image.im_server.im_uses;
                  };
              };
            tracef t "%s retire server %s from %a" o_action o_node Store.Uid.pp
              o_uid;
            Sim.Metrics.incr (metrics t) "gvd.server_retirements";
            Granted ()
          end)

let h_retire_st t { o_uid; o_action; o_node } =
  match entry_opt t o_uid with
  | None -> absent t o_uid
  | Some e ->
      with_lock t ~action:o_action ~mode:Lockmgr.Mode.Write (st_key o_uid)
        (fun () ->
          save_st t ~action:o_action e;
          e.e_image <-
            {
              e.e_image with
              im_state =
                {
                  e.e_image.im_state with
                  im_st =
                    List.filter (fun n -> n <> o_node) e.e_image.im_state.im_st;
                  im_st_home =
                    List.filter (fun n -> n <> o_node)
                      e.e_image.im_state.im_st_home;
                };
            };
          tracef t "%s retire store %s from %a" o_action o_node Store.Uid.pp o_uid;
          Sim.Metrics.incr (metrics t) "gvd.store_retirements";
          Granted ())

let h_include t { o_uid; o_action; o_node } =
  match entry_opt t o_uid with
  | None -> absent t o_uid
  | Some e ->
      with_lock t ~action:o_action ~mode:Lockmgr.Mode.Write (st_key o_uid)
        (fun () ->
          save_st t ~action:o_action e;
          e.e_image <-
            {
              e.e_image with
              im_state =
                {
                  e.e_image.im_state with
                  im_st = add_unique o_node e.e_image.im_state.im_st;
                  im_st_home = add_unique o_node e.e_image.im_state.im_st_home;
                };
            };
          tracef t "%s include %s into St(%a) -> [%s]" o_action o_node
            Store.Uid.pp o_uid
            (String.concat "," e.e_image.im_state.im_st);
          Sim.Metrics.incr (metrics t) "gvd.includes";
          Granted e.e_image.im_state.im_version)

(* Hand an entry off to another shard (online rebalance). Runs atomically
   at the simulation level — no suspension points between the check and
   the removal — so no bind can observe a half-migrated entry. Only
   lock-free entries move: a holder (or waiter) implies in-flight
   before-images whose undo must stay co-located with the entry, so the
   router retries busy entries until the locks drain. Use lists ride
   along inside the image: entries with active bindings migrate fine. *)
let h_handoff t { hr_uid; hr_dest } =
  match entry_opt t hr_uid with
  | None -> absent t hr_uid
  | Some e ->
      let free key =
        Lockmgr.Manager.holders t.locks key = []
        && Lockmgr.Manager.waiting t.locks key = 0
      in
      if not (free (sv_key hr_uid) && free (st_key hr_uid)) then begin
        Sim.Metrics.incr (metrics t) "gvd.handoff_busy";
        Busy "entry locked"
      end
      else begin
        let serial = Store.Uid.serial hr_uid in
        let names =
          Hashtbl.fold
            (fun name uid acc ->
              if Store.Uid.equal uid hr_uid then name :: acc else acc)
            t.names []
          |> List.sort String.compare
        in
        Hashtbl.remove t.entries serial;
        List.iter (fun name -> Hashtbl.remove t.names name) names;
        Hashtbl.replace t.moved_out serial hr_dest;
        Sim.Metrics.incr (metrics t) "gvd.handoffs_out";
        tracef t "handoff %a -> %s" Store.Uid.pp hr_uid hr_dest;
        Granted
          {
            ho_serial = serial;
            ho_uid = hr_uid;
            ho_impl = e.e_impl;
            (* lock-free implies no uncommitted mutations, so the working
               image IS the committed snapshot *)
            ho_image = e.e_image;
            ho_version = e.e_version;
            ho_names = names;
          }
      end

(* Install a migrated entry on the receiving shard (called in-process by
   the router's migration fiber, immediately after the handoff reply —
   the entry is unreachable only while that reply is in flight). *)
let accept_handoff t ho =
  Hashtbl.replace t.entries ho.ho_serial
    {
      e_uid = ho.ho_uid;
      e_impl = ho.ho_impl;
      e_image = ho.ho_image;
      e_snap = ho.ho_image;
      e_version = ho.ho_version;
    };
  List.iter (fun name -> Hashtbl.replace t.names name ho.ho_uid) ho.ho_names;
  Hashtbl.remove t.moved_out ho.ho_serial;
  Sim.Metrics.incr (metrics t) "gvd.handoffs_in";
  tracef t "accepted handoff of %a" Store.Uid.pp ho.ho_uid

let handoff_out t ~from ~uid ~dest =
  Net.Rpc.call (Action.Atomic.rpc t.art) ~from ~dst:t.gvd_node t.ep_handoff
    { hr_uid = uid; hr_dest = dest }

(* Record the committed version at commit time, under the same lock
   discipline as Exclude (§4.2.1): readers are unaffected. *)
let h_note_version t { n_uid; n_action; n_version } =
  touch_guard t n_action;
  match entry_opt t n_uid with
  | None -> absent t n_uid
  | Some e ->
      let mode =
        if t.use_exclude_write then Lockmgr.Mode.Exclude_write
        else Lockmgr.Mode.Write
      in
      let key = st_key n_uid in
      let locked =
        match Lockmgr.Manager.holds t.locks ~owner:n_action key with
        | Some _ -> Lockmgr.Manager.promote t.locks ~owner:n_action ~to_mode:mode key
        | None -> Lockmgr.Manager.try_acquire t.locks ~owner:n_action ~mode key
      in
      if not locked then begin
        break_stale_lock_holders t key;
        Refused "version-note lock refused"
      end
      else begin
        save_st t ~action:n_action e;
        if Store.Version.newer_than n_version e.e_image.im_state.im_version then
          e.e_image <-
            {
              e.e_image with
              im_state = { e.e_image.im_state with im_version = n_version };
            };
        Granted ()
      end

(* The optimistic commit's validate-and-note, one RPC round (§4.2.1
   relaxed): re-check the St revision the committing client's lock-free
   snapshot read observed, under the same write-fence lock the classic
   version note takes.

   - Lock refused (an Include/Exclude holds the write lock right now):
     [Refused] — the client treats it like a conflict and retries.
   - Revision moved (a membership change committed since the snapshot):
     [Granted false]. The just-acquired fence is deliberately KEPT — it
     belongs to the action and blocks further membership commits, so the
     retried copy-back re-reads a revision that can no longer move and the
     next validation must succeed: one conflict costs one retry, not a
     livelock.
   - Revision stands: record the committed version exactly as
     [h_note_version] would and reply [Granted true]. From here to action
     end the fence excludes concurrent Includes — the same guarantee the
     classic locked GetView provided, established at prepare time instead
     of commit start.

   Idempotent under duplicate delivery: the lock grant is re-entrant, the
   before-image save is once-per-action, the version advance is guarded by
   [newer_than], and the revision cannot change between duplicates while
   the fence is held. *)
let h_validate_view t { vv_uid; vv_action; vv_version; vv_rev } =
  touch_guard t vv_action;
  match entry_opt t vv_uid with
  | None -> absent t vv_uid
  | Some e ->
      let mode =
        if t.use_exclude_write then Lockmgr.Mode.Exclude_write
        else Lockmgr.Mode.Write
      in
      let key = st_key vv_uid in
      (* Probe before mutating: [available] is the pure validate-under-mode
         query, so a doomed request breaks stale holders and refuses
         without installing a lock or saving an image. *)
      if not (Lockmgr.Manager.available t.locks ~owner:vv_action ~mode key)
      then begin
        break_stale_lock_holders t key;
        Sim.Metrics.incr (metrics t) "gvd.lock_refusals";
        Refused "validate lock refused"
      end
      else begin
        let locked =
          match Lockmgr.Manager.holds t.locks ~owner:vv_action key with
          | Some _ ->
              Lockmgr.Manager.promote t.locks ~owner:vv_action ~to_mode:mode key
          | None ->
              Lockmgr.Manager.try_acquire t.locks ~owner:vv_action ~mode key
        in
        if not locked then Refused "validate lock refused"
        else if e.e_snap.im_state.im_st_rev <> vv_rev then begin
          Sim.Metrics.incr (metrics t) "gvd.validate_conflicts";
          tracef t "%s validate %a: rev %d moved to %d" vv_action Store.Uid.pp
            vv_uid vv_rev e.e_snap.im_state.im_st_rev;
          Granted false
        end
        else begin
          save_st t ~action:vv_action e;
          if Store.Version.newer_than vv_version e.e_image.im_state.im_version
          then
            e.e_image <-
              {
                e.e_image with
                im_state = { e.e_image.im_state with im_version = vv_version };
              };
          Granted true
        end
      end

(* Optimistic Exclude/Include: the same validate-under-the-fence shape as
   [h_validate_view], driving §4.2's own membership mutations. The caller
   (normally the autonomic controller) read (St, rev) lock-free, decided
   "drop n" or "re-admit n" off that snapshot, and the handler applies the
   mutation only if the revision still stands:

   - Lock refused: [Refused], caller retries or falls back to the classic
     blocking Exclude/Include.
   - Revision moved (some other membership change committed since the
     snapshot): [Granted (false, _)] KEEPING the fence — the caller
     re-reads St (which can no longer move) and re-decides; if the change
     is still wanted, the next attempt must succeed.
   - Revision stands: mutate exactly as [h_exclude]/[h_include] would.
     A Drop that would empty [St] is refused outright — the last state
     holder is never evicted, however sick: a slow state beats no state.

   Include answers the same committed-version fence as the classic
   [h_include]: the caller must catch the store up to at least that
   version before its inclusion action may commit. The St revision itself
   is bumped by [install_snapshot] at commit, like every other membership
   change. *)
let h_membership t { mb_uid; mb_action; mb_op; mb_node; mb_rev } =
  touch_guard t mb_action;
  match entry_opt t mb_uid with
  | None -> absent t mb_uid
  | Some e ->
      let mode =
        match mb_op with
        | Drop_member ->
            if t.use_exclude_write then Lockmgr.Mode.Exclude_write
            else Lockmgr.Mode.Write
        | Add_member -> Lockmgr.Mode.Write
      in
      let key = st_key mb_uid in
      if not (Lockmgr.Manager.available t.locks ~owner:mb_action ~mode key)
      then begin
        break_stale_lock_holders t key;
        Sim.Metrics.incr (metrics t) "gvd.lock_refusals";
        Refused "membership lock refused"
      end
      else begin
        let locked =
          match Lockmgr.Manager.holds t.locks ~owner:mb_action key with
          | Some _ ->
              Lockmgr.Manager.promote t.locks ~owner:mb_action ~to_mode:mode key
          | None ->
              Lockmgr.Manager.try_acquire t.locks ~owner:mb_action ~mode key
        in
        if not locked then Refused "membership lock refused"
        else if e.e_snap.im_state.im_st_rev <> mb_rev then begin
          Sim.Metrics.incr (metrics t) "gvd.membership_conflicts";
          tracef t "%s membership %a: rev %d moved to %d" mb_action
            Store.Uid.pp mb_uid mb_rev e.e_snap.im_state.im_st_rev;
          Granted (false, e.e_image.im_state.im_version)
        end
        else
          match mb_op with
          | Drop_member ->
              let st = e.e_image.im_state.im_st in
              if List.mem mb_node st && List.length st <= 1 then begin
                Sim.Metrics.incr (metrics t) "gvd.exclude_refused";
                Refused "would empty St"
              end
              else begin
                save_st t ~action:mb_action e;
                e.e_image <-
                  {
                    e.e_image with
                    im_state =
                      {
                        e.e_image.im_state with
                        im_st = List.filter (fun n -> n <> mb_node) st;
                      };
                  };
                tracef t "%s exclude-validated %s from St(%a)" mb_action
                  mb_node Store.Uid.pp mb_uid;
                Sim.Metrics.incr (metrics t) "gvd.exclusions";
                Granted (true, e.e_image.im_state.im_version)
              end
          | Add_member ->
              save_st t ~action:mb_action e;
              e.e_image <-
                {
                  e.e_image with
                  im_state =
                    {
                      e.e_image.im_state with
                      im_st = add_unique mb_node e.e_image.im_state.im_st;
                      im_st_home =
                        add_unique mb_node e.e_image.im_state.im_st_home;
                    };
                };
              tracef t "%s include-validated %s into St(%a) -> [%s]" mb_action
                mb_node Store.Uid.pp mb_uid
                (String.concat "," e.e_image.im_state.im_st);
              Sim.Metrics.incr (metrics t) "gvd.includes";
              Granted (true, e.e_image.im_state.im_version)
      end

(* Synchronously push the committed images (with their snapshot versions)
   of the given entry serials to every backup instance: ONE coalesced
   payload per commit, scattered to all backups in a single [call_all]
   round — previously this was one RPC per mutated entry per operation.
   A push failure is tolerated (that backup is down; it resynchronises by
   pulling a snapshot on recovery). *)
let mirror_push t serials =
  match t.backups with
  | [] -> ()
  | backups ->
      let payload =
        List.filter_map
          (fun serial ->
            Option.map
              (fun e -> (serial, e.e_image, e.e_version))
              (Hashtbl.find_opt t.entries serial))
          (List.sort_uniq Int.compare serials)
      in
      if payload <> [] then
        ignore
          (Net.Rpc.call_all (Action.Atomic.rpc t.art) ~from:t.gvd_node ep_mirror
             (List.map (fun b -> (b.gvd_node, payload)) backups))

(* -- resource manager: ties the database into action completion -- *)

let actions_images t action =
  Hashtbl.fold
    (fun (a, serial, side) half acc ->
      if String.equal a action then (serial, side, half) :: acc else acc)
    t.undo []

let actions_deltas t action =
  Hashtbl.fold
    (fun (a, serial) ops acc ->
      if String.equal a action then (serial, ops) :: acc else acc)
    t.pending []

let restore_half e half =
  match half with
  | Server_half sv -> e.e_image <- { e.e_image with im_server = sv }
  | State_half st -> e.e_image <- { e.e_image with im_state = st }

(* Replace the given halves of the entry's committed snapshot with the
   (now committed) working image, bumping the entry version once however
   many halves the action touched. From this point lock-free readers see
   the new state. *)
let install_snapshot t serial sides =
  match Hashtbl.find_opt t.entries serial with
  | None -> ()
  | Some e ->
      (* The St revision counts committed *membership* changes only: it
         advances iff the member list being installed differs from the one
         in the outgoing snapshot. Version notes and use-list churn leave
         it alone, so an optimistic committer validating against it is not
         conflicted by concurrent binds. The working image is stamped with
         the same revision — handoffs and mirrors ship the image, so the
         counter survives shard moves without extra payload. *)
      (if List.mem St_side sides then begin
         let rev =
           if e.e_image.im_state.im_st <> e.e_snap.im_state.im_st then
             e.e_snap.im_state.im_st_rev + 1
           else e.e_snap.im_state.im_st_rev
         in
         e.e_image <-
           { e.e_image with im_state = { e.e_image.im_state with im_st_rev = rev } }
       end);
      e.e_snap <-
        List.fold_left
          (fun snap side ->
            match side with
            | Sv_side -> { snap with im_server = e.e_image.im_server }
            | St_side -> { snap with im_state = e.e_image.im_state })
          e.e_snap sides;
      e.e_version <- e.e_version + 1

let manager t =
  {
    Action.Resource_host.m_prepare =
      (fun ~action ->
        (* Under the always-available assumption every action is known;
           with a durable (crashable) service, an action from before the
           last crash lost its locks and staged updates and must abort. *)
        (not t.durable) || Hashtbl.mem t.known_actions action);
    m_commit =
      (fun ~action ->
        let images = actions_images t action in
        let deltas = actions_deltas t action in
        (* Apply the staged commuting counter updates first... *)
        List.iter
          (fun (serial, ops) ->
            (match Hashtbl.find_opt t.entries serial with
            | Some e ->
                e.e_image <-
                  List.fold_left
                    (fun im (node, client, d) ->
                      set_use_list im node
                        (apply_delta (use_list im node) ~client d))
                    e.e_image ops
            | None -> ());
            Hashtbl.remove t.pending (action, serial))
          deltas;
        (* ...then install a fresh committed snapshot for every half the
           action touched, bumping each entry's version exactly once, and
           only then release the locks: a lock-free reader can never see
           a pre-install state after a later action was granted. *)
        let touched_sides =
          List.map (fun (s, side, _) -> (s, side)) images
          @ List.map (fun (s, _) -> (s, Sv_side)) deltas
          |> List.sort_uniq compare
        in
        let touched = List.sort_uniq Int.compare (List.map fst touched_sides) in
        List.iter
          (fun serial ->
            install_snapshot t serial
              (List.filter_map
                 (fun (s, side) -> if s = serial then Some side else None)
                 touched_sides))
          touched;
        List.iter
          (fun (serial, side, _) -> Hashtbl.remove t.undo (action, serial, side))
          images;
        Lockmgr.Manager.release_all t.locks ~owner:action;
        Hashtbl.remove t.known_actions action;
        settle_guard t action;
        mirror_push t touched);
    m_abort =
      (fun ~action ->
        List.iter
          (fun (serial, side, half) ->
            (match Hashtbl.find_opt t.entries serial with
            | Some e ->
                restore_half e half;
                tracef t "%s undo-restore entry %d -> St=[%s]" action serial
                  (String.concat "," e.e_image.im_state.im_st)
            | None -> ());
            Hashtbl.remove t.undo (action, serial, side))
          (actions_images t action);
        (* Staged deltas are redo records: abort just drops them. *)
        List.iter
          (fun (serial, _) -> Hashtbl.remove t.pending (action, serial))
          (actions_deltas t action);
        Lockmgr.Manager.release_all t.locks ~owner:action;
        Hashtbl.remove t.known_actions action;
        settle_guard t action);
    m_transfer =
      (fun ~action ~parent ->
        List.iter
          (fun (serial, side, half) ->
            (* The parent keeps its own (older) before-image if it has
               one; otherwise it inherits the child's. *)
            if not (Hashtbl.mem t.undo (parent, serial, side)) then
              Hashtbl.add t.undo (parent, serial, side) half;
            Hashtbl.remove t.undo (action, serial, side))
          (actions_images t action);
        (* Staged deltas append to the parent's: both sets apply when the
           top-level action eventually commits. *)
        List.iter
          (fun (serial, ops) ->
            let pkey = (parent, serial) in
            let cur = Option.value ~default:[] (Hashtbl.find_opt t.pending pkey) in
            Hashtbl.replace t.pending pkey (cur @ ops);
            Hashtbl.remove t.pending (action, serial))
          (actions_deltas t action);
        Lockmgr.Manager.transfer_all t.locks ~from_owner:action ~to_owner:parent;
        if Hashtbl.mem t.known_actions action then begin
          Hashtbl.remove t.known_actions action;
          Hashtbl.replace t.known_actions parent ()
        end;
        transfer_guard t action parent);
  }

let install ?(lock_timeout = 30.0) ?(use_exclude_write = true)
    ?(durable = false) ?(service_time = 0.0) art ~node =
  let t =
    {
      art;
      gvd_node = node;
      lock_timeout;
      use_exclude_write;
      durable;
      g_hedged = false;
      service_time;
      service = Sim.Semaphore.create 1;
      moved_out = Hashtbl.create 16;
      known_actions = Hashtbl.create 64;
      breaking = Hashtbl.create 16;
      entries = Hashtbl.create 64;
      names = Hashtbl.create 64;
      locks = Lockmgr.Manager.create ~metrics:(Net.Network.metrics (Action.Atomic.network art))
          (Action.Atomic.engine art);
      undo = Hashtbl.create 64;
      pending = Hashtbl.create 64;
      guard = None;
      ep_register = Net.Rpc.endpoint "gvd.register";
      ep_lookup = Net.Rpc.endpoint "gvd.lookup";
      ep_info = Net.Rpc.endpoint "gvd.info";
      ep_stored_on = Net.Rpc.endpoint "gvd.stored_on";
      ep_served_by = Net.Rpc.endpoint "gvd.served_by";
      ep_get_server = Net.Rpc.endpoint "gvd.get_server";
      ep_get_server_update = Net.Rpc.endpoint "gvd.get_server_update";
      ep_insert = Net.Rpc.endpoint "gvd.insert";
      ep_remove = Net.Rpc.endpoint "gvd.remove";
      ep_increment = Net.Rpc.endpoint "gvd.increment";
      ep_decrement = Net.Rpc.endpoint "gvd.decrement";
      ep_zero = Net.Rpc.endpoint "gvd.zero";
      ep_get_view = Net.Rpc.endpoint "gvd.get_view";
      ep_batch = Net.Rpc.endpoint "gvd.bind_batch";
      ep_view_snap = Net.Rpc.endpoint "gvd.get_view_snapshot";
      ep_server_snap = Net.Rpc.endpoint "gvd.get_server_snapshot";
      ep_exclude = Net.Rpc.endpoint "gvd.exclude";
      ep_include = Net.Rpc.endpoint "gvd.include";
      ep_retire_sv = Net.Rpc.endpoint "gvd.retire_sv";
      ep_retire_st = Net.Rpc.endpoint "gvd.retire_st";
      ep_note_version = Net.Rpc.endpoint "gvd.note_version";
      ep_view_commit = Net.Rpc.endpoint "gvd.get_view_commit";
      ep_validate = Net.Rpc.endpoint "gvd.validate_view";
      ep_membership = Net.Rpc.endpoint "gvd.membership";
      ep_handoff = Net.Rpc.endpoint "gvd.handoff";
      ep_snapshot = Net.Rpc.endpoint "gvd.snapshot";
      backups = [];
    }
  in
  let rpc = Action.Atomic.rpc art in
  Net.Rpc.serve rpc ~node t.ep_register (fun req -> h_register t req);
  Net.Rpc.serve rpc ~node t.ep_lookup (fun name -> Hashtbl.find_opt t.names name);
  Net.Rpc.serve rpc ~node t.ep_info (fun uid ->
      Option.map
        (fun e ->
          {
            ei_impl = e.e_impl;
            ei_sv_home = e.e_image.im_server.im_sv_home;
            ei_st_home = e.e_image.im_state.im_st_home;
          })
        (entry_opt t uid));
  Net.Rpc.serve rpc ~node t.ep_stored_on (fun n ->
      Hashtbl.fold
        (fun _ e acc ->
          if List.mem n e.e_image.im_state.im_st_home then e.e_uid :: acc else acc)
        t.entries []
      |> List.sort Store.Uid.compare);
  Net.Rpc.serve rpc ~node t.ep_served_by (fun n ->
      Hashtbl.fold
        (fun _ e acc ->
          if List.mem n e.e_image.im_server.im_sv_home then e.e_uid :: acc else acc)
        t.entries []
      |> List.sort Store.Uid.compare);
  Net.Rpc.serve rpc ~node t.ep_get_server (fun req ->
      serviced t (fun () -> h_get_server t req));
  Net.Rpc.serve rpc ~node t.ep_get_server_update (fun req ->
      serviced t (fun () -> h_get_server ~mode:Lockmgr.Mode.Write t req));
  Net.Rpc.serve rpc ~node t.ep_insert (fun req ->
      serviced t (fun () -> h_insert t req));
  Net.Rpc.serve rpc ~node t.ep_remove (fun req ->
      serviced t (fun () -> h_remove t req));
  Net.Rpc.serve rpc ~node t.ep_increment (fun req ->
      serviced t (fun () -> h_use_delta t ~name:"increments" ~delta:1 req));
  Net.Rpc.serve rpc ~node t.ep_decrement (fun req ->
      serviced t (fun () -> h_use_delta t ~name:"decrements" ~delta:(-1) req));
  Net.Rpc.serve rpc ~node t.ep_zero (fun req ->
      serviced t (fun () -> h_zero t req));
  Net.Rpc.serve rpc ~node t.ep_get_view (fun req ->
      serviced t (fun () -> h_get_view t req));
  Net.Rpc.serve rpc ~node t.ep_batch (fun req ->
      serviced t (fun () -> h_batch t req));
  Net.Rpc.serve rpc ~node t.ep_view_snap (fun uid ->
      serviced t (fun () -> h_get_view_snapshot t uid));
  Net.Rpc.serve rpc ~node t.ep_server_snap (fun uid ->
      serviced t (fun () -> h_get_server_snapshot t uid));
  Net.Rpc.serve rpc ~node t.ep_exclude (fun req ->
      serviced t (fun () -> h_exclude t req));
  Net.Rpc.serve rpc ~node t.ep_include (fun req ->
      serviced t (fun () -> h_include t req));
  Net.Rpc.serve rpc ~node t.ep_retire_sv (fun req -> h_retire_sv t req);
  Net.Rpc.serve rpc ~node t.ep_retire_st (fun req -> h_retire_st t req);
  Net.Rpc.serve rpc ~node t.ep_note_version (fun req ->
      serviced t (fun () -> h_note_version t req));
  Net.Rpc.serve rpc ~node t.ep_view_commit (fun uid ->
      serviced t (fun () -> h_get_view_commit t uid));
  Net.Rpc.serve rpc ~node t.ep_validate (fun req ->
      serviced t (fun () -> h_validate_view t req));
  Net.Rpc.serve rpc ~node t.ep_membership (fun req ->
      serviced t (fun () -> h_membership t req));
  Net.Rpc.serve rpc ~node t.ep_handoff (fun req -> h_handoff t req);
  Net.Rpc.serve rpc ~node ep_mirror (fun images ->
      List.iter
        (fun (serial, im, version) ->
          match Hashtbl.find_opt t.entries serial with
          | Some e ->
              e.e_image <- im;
              e.e_snap <- im;
              e.e_version <- max version e.e_version
          | None -> ())
        images;
      Sim.Metrics.incr (metrics t) "gvd.mirror_applies");
  Net.Rpc.serve rpc ~node t.ep_snapshot (fun () ->
      Hashtbl.fold
        (fun serial e acc -> (serial, e.e_snap, e.e_version) :: acc)
        t.entries []);
  let mgr = manager t in
  Action.Resource_host.register (Action.Atomic.resource_host art) ~node
    ~resource mgr;
  t.guard <-
    Some
      (Action.Orphan_guard.create (Action.Atomic.network art) ~node
         ~abort:(fun ~scope:_ ~action ->
           Sim.Metrics.incr (metrics t) "gvd.orphan_aborts";
           tracef t "aborting orphaned action %s" action;
           mgr.Action.Resource_host.m_abort ~action));
  if durable then
    (* The persistent-object semantics of the database itself: committed
       entry images are stable; locks, before-images and the set of
       in-flight actions are volatile and die with the node. *)
    Net.Network.on_crash (Action.Atomic.network art) node (fun () ->
        Hashtbl.iter
          (fun (_, serial, _) half ->
            match Hashtbl.find_opt t.entries serial with
            | Some e -> restore_half e half
            | None -> ())
          t.undo;
        Hashtbl.reset t.undo;
        Hashtbl.reset t.pending;
        Hashtbl.reset t.known_actions;
        Lockmgr.Manager.release_everything t.locks;
        Sim.Metrics.incr (metrics t) "gvd.crash_resets");
  t

(* -- client stubs: call, then enlist the action with the database -- *)

let hedged t = t.g_hedged
let set_hedged t flag = t.g_hedged <- flag

(* Plain idempotent reads may race a backup copy against a browned-out
   shard (same destination — under per-message brownout inflation a
   re-send is a fresh draw). Everything that enlists stays un-hedged. *)
let plain_call t ~from ep req =
  if t.g_hedged then
    Net.Rpc.call_hedged (Action.Atomic.rpc t.art) ~from ~dst:t.gvd_node
      ~hedge:(Net.Rpc.hedge ()) ep req
  else Net.Rpc.call (Action.Atomic.rpc t.art) ~from ~dst:t.gvd_node ep req

let call_enlisted t ~act ep req =
  let from = Action.Atomic.node act in
  let result = Net.Rpc.call (Action.Atomic.rpc t.art) ~from ~dst:t.gvd_node ep req in
  (match result with
  | Ok (Granted _) ->
      Action.Atomic.enlist act ~node:t.gvd_node ~resource ()
  | Ok (Busy _ | Refused _) ->
      (* The handler may still hold locks for the action (e.g. insert got
         its write lock but found the object busy); enlist so they are
         released at action end. *)
      Action.Atomic.enlist act ~node:t.gvd_node ~resource ()
  | Error _ ->
      (* Indistinguishable cases: the request was lost (no effects) or
         only the reply was (the handler ran and holds locks and staged
         state for the action). Enlist conservatively so action end
         releases whatever exists — but not [required]: the call failed
         from the caller's view, so an unreachable database must not be
         allowed to veto (or silently commit into) an action that
         otherwise succeeded without it. *)
      Action.Atomic.enlist act ~required:false ~node:t.gvd_node ~resource ()
  | Ok (Moved _) -> ());
  result

let register_direct t ~uid ~name ~impl ~sv ~st =
  h_register t { rg_uid = uid; rg_name = name; rg_impl = impl; rg_sv = sv; rg_st = st }

let register_object t ~from ~uid ~name ~impl ~sv ~st =
  Net.Rpc.call (Action.Atomic.rpc t.art) ~from ~dst:t.gvd_node t.ep_register
    { rg_uid = uid; rg_name = name; rg_impl = impl; rg_sv = sv; rg_st = st }

let lookup t ~from name = plain_call t ~from t.ep_lookup name
let entry_info t ~from uid = plain_call t ~from t.ep_info uid

let stored_on t ~from n =
  Net.Rpc.call (Action.Atomic.rpc t.art) ~from ~dst:t.gvd_node t.ep_stored_on n

let served_by t ~from n =
  Net.Rpc.call (Action.Atomic.rpc t.art) ~from ~dst:t.gvd_node t.ep_served_by n

let get_server t ~act uid =
  call_enlisted t ~act t.ep_get_server
    { r_uid = uid; r_action = Action.Atomic.owner act }

let get_server_update t ~act uid =
  call_enlisted t ~act t.ep_get_server_update
    { r_uid = uid; r_action = Action.Atomic.owner act }

let insert t ~act ~uid node =
  call_enlisted t ~act t.ep_insert
    { o_uid = uid; o_action = Action.Atomic.owner act; o_node = node }

let remove t ~act ~uid node =
  call_enlisted t ~act t.ep_remove
    { o_uid = uid; o_action = Action.Atomic.owner act; o_node = node }

let increment t ~act ~uid ~client nodes =
  call_enlisted t ~act t.ep_increment
    { u_uid = uid; u_action = Action.Atomic.owner act; u_client = client; u_nodes = nodes }

let decrement t ~act ~uid ~client nodes =
  call_enlisted t ~act t.ep_decrement
    { u_uid = uid; u_action = Action.Atomic.owner act; u_client = client; u_nodes = nodes }

let zero_client t ~act ~uid ~client =
  call_enlisted t ~act t.ep_zero
    { u_uid = uid; u_action = Action.Atomic.owner act; u_client = client; u_nodes = [] }

let get_view t ~act uid =
  call_enlisted t ~act t.ep_get_view
    { r_uid = uid; r_action = Action.Atomic.owner act }

let bind_batch t ~act ~uid ~client ~replicas ~credits =
  call_enlisted t ~act t.ep_batch
    {
      bt_uid = uid;
      bt_action = Action.Atomic.owner act;
      bt_client = client;
      bt_replicas = replicas;
      bt_credits = credits;
    }

(* Snapshot reads are lock-free and touch no recoverable state, so they
   are plain calls — no enlistment, nothing for the action to release. *)
let get_view_snapshot t ~from uid = plain_call t ~from t.ep_view_snap uid
let get_server_snapshot t ~from uid = plain_call t ~from t.ep_server_snap uid

let exclude t ~act pairs =
  call_enlisted t ~act t.ep_exclude
    { x_action = Action.Atomic.owner act; x_pairs = pairs }

let include_ t ~act ~uid node =
  call_enlisted t ~act t.ep_include
    { o_uid = uid; o_action = Action.Atomic.owner act; o_node = node }

(* The optimistic membership stubs enlist like every other mutator: the
   handler takes the fence lock and stages a before-image for the action,
   so action end must release/restore them whatever the outcome. *)
let exclude_validated t ~act ~uid ~rev node =
  call_enlisted t ~act t.ep_membership
    {
      mb_uid = uid;
      mb_action = Action.Atomic.owner act;
      mb_op = Drop_member;
      mb_node = node;
      mb_rev = rev;
    }

let include_validated t ~act ~uid ~rev node =
  call_enlisted t ~act t.ep_membership
    {
      mb_uid = uid;
      mb_action = Action.Atomic.owner act;
      mb_op = Add_member;
      mb_node = node;
      mb_rev = rev;
    }

let mirror_to t backup =
  if not (List.memq backup t.backups) then t.backups <- t.backups @ [ backup ]

let resync_from t ~source ~from =
  (* Pull the source's committed images (RPC from [from], normally our own
     node, within a recovery fiber) and install them locally. *)
  match
    Net.Rpc.call (Action.Atomic.rpc t.art) ~from ~dst:source.gvd_node
      source.ep_snapshot ()
  with
  | Ok images ->
      List.iter
        (fun (serial, im, version) ->
          match Hashtbl.find_opt t.entries serial with
          | Some e ->
              e.e_image <- im;
              e.e_snap <- im;
              e.e_version <- max version e.e_version
          | None -> ())
        images;
      Sim.Metrics.incr (metrics t) "gvd.resyncs";
      Ok ()
  | Error e -> Error e

let note_version t ~act ~uid version =
  call_enlisted t ~act t.ep_note_version
    { n_uid = uid; n_action = Action.Atomic.owner act; n_version = version }

(* Lock-free like the other snapshot stubs: a plain, non-enlisted call.
   Nothing recoverable happens server-side until [validate_view]. *)
let get_view_commit t ~from uid =
  Net.Rpc.call (Action.Atomic.rpc t.art) ~from ~dst:t.gvd_node t.ep_view_commit
    uid

(* The validate half DOES take the write fence and stage a version note,
   so it enlists exactly like [note_version]. *)
let validate_view t ~act ~uid ~version ~rev =
  call_enlisted t ~act t.ep_validate
    {
      vv_uid = uid;
      vv_action = Action.Atomic.owner act;
      vv_version = version;
      vv_rev = rev;
    }

let committed_version t uid = (entry_exn t uid).e_image.im_state.im_version

let retire_server_home t ~act ~uid node =
  call_enlisted t ~act t.ep_retire_sv
    { o_uid = uid; o_action = Action.Atomic.owner act; o_node = node }

let retire_store_home t ~act ~uid node =
  call_enlisted t ~act t.ep_retire_st
    { o_uid = uid; o_action = Action.Atomic.owner act; o_node = node }

(* -- direct introspection -- *)

let current_sv t uid = (entry_exn t uid).e_image.im_server.im_sv
let current_st t uid = (entry_exn t uid).e_image.im_state.im_st

let current_uses t uid =
  (* All use lists, including those of nodes currently removed from Sv:
     the cleanup daemon must see counters wherever they hide. *)
  let e = entry_exn t uid in
  List.sort (fun (a, _) (b, _) -> String.compare a b) e.e_image.im_server.im_uses

let quiescent t uid = all_quiescent (entry_exn t uid).e_image

let snapshot_version t uid = (entry_exn t uid).e_version
let st_revision t uid = (entry_exn t uid).e_snap.im_state.im_st_rev

let all_uids t =
  Hashtbl.fold (fun _ e acc -> e.e_uid :: acc) t.entries [] |> List.sort Store.Uid.compare

let residual_locks t = Lockmgr.Manager.all_held t.locks

let residual_actions t =
  let acts = Hashtbl.create 8 in
  Hashtbl.iter (fun (a, _) _ -> Hashtbl.replace acts a ()) t.pending;
  Hashtbl.iter (fun (a, _, _) _ -> Hashtbl.replace acts a ()) t.undo;
  Hashtbl.fold (fun a () acc -> a :: acc) acts [] |> List.sort String.compare
