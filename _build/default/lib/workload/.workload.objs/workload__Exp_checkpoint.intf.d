lib/workload/exp_checkpoint.mli: Table
