examples/dynamic_scaling.ml: Action Admin Gvd List Naming Printf Replica Scheme Service Sim Store String
