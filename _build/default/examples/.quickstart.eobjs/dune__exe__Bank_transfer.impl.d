examples/bank_transfer.ml: Action Binder List Naming Printf Replica Scheme Service Store String
