lib/workload/table.ml: Float Format List Printf String
