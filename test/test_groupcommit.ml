(* Tests for the group-commit plane (Replica.Groupcommit): batch window
   close and quiescence-pull, singleton-batch equivalence with the solo
   scatter, per-action vote peel-out, acked-floor piggybacking and
   anti-entropy gossip, the tier-1 round-reduction pin, and a QCheck
   property that batched and solo execution reach byte-equal store
   states under random interleavings. *)

open Naming

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let stores = [ "t1"; "t2" ]

let topo clients =
  {
    Service.gvd_node = "ns";
    gvd_nodes = [];
    server_nodes = [ "alpha" ];
    store_nodes = stores;
    client_nodes = clients;
  }

let mk_world ?(seed = 13L) ?(window = 0.0) ?(gossip = 0.0) clients =
  Service.create ~seed ~commit_batch_window:window
    ~floor_gossip_period:gossip (topo clients)

let new_counter w name =
  Service.create_object w ~name ~impl:"counter" ~sv:[ "alpha" ] ~st:stores ()

let commit_add w ~client ~uid =
  Service.with_bound w ~client ~scheme:Scheme.Independent
    ~policy:Replica.Policy.Single_copy_passive ~uid (fun act group ->
      ignore (Service.invoke w group ~act "add 1"))

let payload w store uid =
  let os = Action.Store_host.objects (Service.store_host w) store in
  Option.map
    (fun s -> s.Store.Object_state.payload)
    (Store.Object_store.read os uid)

let counter m name = Sim.Metrics.counter m name

(* ------------------------------------------------------------------ *)
(* Quiescence-pull: a lone commit under an absurdly long window must not
   wait it out — once no other commit is approaching, the batch closes
   immediately and the commit lands at solo speed. *)

let test_quiescence_pull () =
  let w = mk_world ~window:1000.0 [ "c1" ] in
  let uid = new_counter w "obj" in
  Service.run ~until:1.0 w;
  let r = ref (Error "never ran") in
  Service.spawn_client w "c1" (fun () -> r := commit_add w ~client:"c1" ~uid);
  Service.run w;
  check_bool "committed" true (!r = Ok ());
  Alcotest.(check (option string)) "t1" (Some "1") (payload w "t1" uid);
  Alcotest.(check (option string)) "t2" (Some "1") (payload w "t2" uid);
  check_bool "closed early, not at window expiry"
    true
    (Sim.Engine.now (Service.engine w) < 100.0);
  let m = Service.metrics w in
  check_bool "quiescence pulled the close" true
    (counter m "groupcommit.pulled_closes" >= 1);
  check_int "no window expiries" 0 (counter m "groupcommit.window_closes")

(* Window expiry: with a commit token permanently outstanding (entered,
   never left), the phase-1 batch cannot quiesce and must hold the full
   window before scattering — and the commit still lands. *)

let test_window_expiry () =
  let w = mk_world ~window:50.0 [ "c1" ] in
  let uid = new_counter w "obj" in
  Service.run ~until:1.0 w;
  let gc = Replica.Server.groupcommit (Service.server_runtime w) in
  (* A commit that is forever "approaching": open batches hold for it. *)
  ignore (Replica.Groupcommit.enter gc);
  let r = ref (Error "never ran") in
  Service.spawn_client w "c1" (fun () -> r := commit_add w ~client:"c1" ~uid);
  Service.run w;
  check_bool "committed" true (!r = Ok ());
  Alcotest.(check (option string)) "t1" (Some "1") (payload w "t1" uid);
  check_bool "waited out the window" true
    (Sim.Engine.now (Service.engine w) >= 50.0);
  check_bool "window expired at least once" true
    (counter (Service.metrics w) "groupcommit.window_closes" >= 1)

(* ------------------------------------------------------------------ *)
(* A singleton batch is the solo scatter: same store endpoints, same
   round counts, same final state, same virtual time. The batched
   endpoints must never fire for a batch of one. *)

let test_singleton_matches_solo () =
  let run window =
    let w = mk_world ~seed:17L ~window [ "c1" ] in
    let uid = new_counter w "obj" in
    Service.run ~until:1.0 w;
    Service.spawn_client w "c1" (fun () ->
        for _ = 1 to 3 do
          match commit_add w ~client:"c1" ~uid with
          | Ok () -> ()
          | Error e -> Alcotest.failf "commit failed: %s" e
        done);
    Service.run w;
    (w, uid)
  in
  let w0, uid0 = run 0.0 in
  let w1, uid1 = run 1000.0 in
  let m0 = Service.metrics w0 and m1 = Service.metrics w1 in
  Alcotest.(check (option string))
    "payloads agree" (payload w0 "t1" uid0) (payload w1 "t1" uid1);
  Alcotest.(check (option string)) "counted to 3" (Some "3")
    (payload w1 "t2" uid1);
  check_int "same solo prepare rounds"
    (counter m0 "rpc.op.store.prepare")
    (counter m1 "rpc.op.store.prepare");
  check_int "same solo commit rounds"
    (counter m0 "rpc.op.store.commit")
    (counter m1 "rpc.op.store.commit");
  check_int "no batched prepares" 0 (counter m1 "rpc.op.store.prepare_batch");
  check_int "no batched commits" 0 (counter m1 "rpc.op.store.commit_batch");
  Alcotest.(check (float 1e-9))
    "same virtual time"
    (Sim.Engine.now (Service.engine w0))
    (Sim.Engine.now (Service.engine w1))

(* ------------------------------------------------------------------ *)
(* Two commits synchronised into one batch. [sabotage] optionally bumps
   the second object's version at store t1 behind the bound instance's
   back, so that member votes Vote_stale while its batchmate is all-yes. *)

let paired_world ?(seed = 21L) ~sabotage () =
  let w = mk_world ~seed ~window:5.0 [ "c1"; "c2" ] in
  let uid1 = new_counter w "obj-1" in
  let uid2 = new_counter w "obj-2" in
  Service.run ~until:1.0 w;
  let eng = Service.engine w in
  if sabotage then
    Sim.Engine.schedule eng ~delay:99.0 (fun () ->
        let os = Action.Store_host.objects (Service.store_host w) "t1" in
        match Store.Object_store.read os uid2 with
        | None -> Alcotest.fail "obj-2 missing at t1"
        | Some st ->
            Action.Store_host.seed (Service.store_host w) "t1" uid2
              (Store.Object_state.make ~payload:st.Store.Object_state.payload
                 ~version:
                   (Store.Version.next st.Store.Object_state.version
                      ~committed_by:"saboteur")));
  let results = Hashtbl.create 2 in
  List.iter
    (fun (client, uid) ->
      Service.spawn_client w client (fun () ->
          let r =
            Service.with_bound w ~client ~scheme:Scheme.Independent
              ~policy:Replica.Policy.Single_copy_passive ~uid
              (fun act group ->
                ignore (Service.invoke w group ~act "add 1");
                (* Sync point: both bodies exit — and so both commits
                   approach their prepare — at the same instant. *)
                Sim.Engine.sleep eng
                  (Float.max 0.0 (150.0 -. Sim.Engine.now eng)))
          in
          Hashtbl.replace results client r))
    [ ("c1", uid1); ("c2", uid2) ];
  Service.run w;
  (w, uid1, uid2, results)

let test_peel_out () =
  let w, uid1, uid2, results = paired_world ~sabotage:true () in
  let m = Service.metrics w in
  check_bool "batchmate committed" true (Hashtbl.find results "c1" = Ok ());
  check_bool "stale member aborted honestly" true
    (match Hashtbl.find results "c2" with Error _ -> true | Ok () -> false);
  check_int "one two-member batch formed" 1 (counter m "groupcommit.batches");
  check_int "exactly one peel-out" 1 (counter m "groupcommit.peels");
  Alcotest.(check (option string)) "obj-1 landed" (Some "1") (payload w "t1" uid1);
  Alcotest.(check (option string)) "obj-1 landed" (Some "1") (payload w "t2" uid1);
  (* The peeled member's write never applied anywhere. *)
  Alcotest.(check (option string)) "obj-2 untouched" (Some "0")
    (payload w "t1" uid2);
  Alcotest.(check (option string)) "obj-2 untouched" (Some "0")
    (payload w "t2" uid2)

(* Floors piggyback on the batched phase-2 acks: after a two-member
   batch commits, every (store, object) floor is known to the oplog
   without any anti-entropy round having run. *)

let test_floor_piggyback () =
  let w, uid1, uid2, results = paired_world ~sabotage:false () in
  let m = Service.metrics w in
  check_bool "both committed" true
    (Hashtbl.find results "c1" = Ok () && Hashtbl.find results "c2" = Ok ());
  check_int "one batched phase 2" 1 (counter m "groupcommit.p2_batches");
  check_bool "floors folded from the acks" true
    (counter m "groupcommit.floors_gossiped" >= 4);
  check_int "no anti-entropy ran" 0 (counter m "groupcommit.anti_entropy_rounds");
  let olog = Replica.Server.oplog (Service.server_runtime w) in
  let sh = Service.store_host w in
  List.iter
    (fun store ->
      let os = Action.Store_host.objects sh store in
      List.iter
        (fun uid ->
          let v = Option.get (Store.Object_store.version_of os uid) in
          Alcotest.(check (option int))
            (Printf.sprintf "floor %s" store)
            (Some v.Store.Version.counter)
            (Replica.Oplog.store_floor olog ~store ~uid))
        [ uid1; uid2 ])
    stores

(* ------------------------------------------------------------------ *)
(* Anti-entropy floor gossip: a round seeds the floors of quiet stores;
   a store crash drops its floors (Oplog.drop_store); a round after
   recovery converges them back. *)

let test_anti_entropy_convergence () =
  let w = mk_world ~seed:29L [ "c1" ] in
  let uid = new_counter w "obj" in
  Service.run ~until:1.0 w;
  Service.spawn_client w "c1" (fun () ->
      match commit_add w ~client:"c1" ~uid with
      | Ok () -> ()
      | Error e -> Alcotest.failf "commit failed: %s" e);
  Service.run w;
  let gc = Replica.Server.groupcommit (Service.server_runtime w) in
  let olog = Replica.Server.oplog (Service.server_runtime w) in
  let floor store = Replica.Oplog.store_floor olog ~store ~uid in
  let committed store =
    let os = Action.Store_host.objects (Service.store_host w) store in
    (Option.get (Store.Object_store.version_of os uid)).Store.Version.counter
  in
  (* Solo commits never fed the floor (delta shipping is off here). *)
  Alcotest.(check (option int)) "no floor yet" None (floor "t1");
  let gossip () =
    Net.Network.spawn_on (Service.network w) "alpha" (fun () ->
        Replica.Groupcommit.anti_entropy gc ~from:"alpha" ~stores);
    Service.run w
  in
  gossip ();
  Alcotest.(check (option int)) "t1 floor" (Some (committed "t1")) (floor "t1");
  Alcotest.(check (option int)) "t2 floor" (Some (committed "t2")) (floor "t2");
  (* Crash t1: its floors die with it; t2's survive. *)
  let eng = Service.engine w in
  let now = Sim.Engine.now eng in
  Net.Fault.crash_for (Service.network w) ~at:(now +. 1.0) ~duration:10.0 "t1";
  let mid = ref (Some (-1)) in
  Sim.Engine.schedule eng ~delay:5.0 (fun () -> mid := floor "t1");
  Service.run w;
  Alcotest.(check (option int)) "crash dropped t1's floor" None !mid;
  Alcotest.(check (option int)) "t2 floor survives" (Some (committed "t2"))
    (floor "t2");
  (* A round after recovery converges the floor back. *)
  gossip ();
  Alcotest.(check (option int)) "t1 floor restored" (Some (committed "t1"))
    (floor "t1");
  check_int "two anti-entropy rounds" 2
    (counter (Service.metrics w) "groupcommit.anti_entropy_rounds")

(* The Service-level daemon: [floor_gossip_period] runs rounds on its
   own cadence (an infinite fiber, so the world is driven with ~until). *)

let test_gossip_daemon () =
  let w = mk_world ~seed:31L ~gossip:7.0 [ "c1" ] in
  let uid = new_counter w "obj" in
  Service.run ~until:30.0 w;
  let m = Service.metrics w in
  (* Fires every ~7.0 plus the round's own RPC time: 3 rounds by 30. *)
  check_int "rounds on the 7.0 cadence" 3
    (counter m "groupcommit.anti_entropy_rounds");
  let olog = Replica.Server.oplog (Service.server_runtime w) in
  check_bool "quiet store's floor is known" true
    (Replica.Oplog.store_floor olog ~store:"t1" ~uid <> None)

(* ------------------------------------------------------------------ *)
(* The acceptance pin: at 8 synchronised clients, group commit cuts
   store RPC rounds per commit by at least 1.5x (measured: well above),
   without losing a single commit. *)

let test_round_reduction_pin () =
  let reduction, solo, grouped = Workload.Exp_groupcommit.round_reduction () in
  check_int "no commit lost to batching" solo.Workload.Exp_groupcommit.g_commits
    grouped.Workload.Exp_groupcommit.g_commits;
  check_bool
    (Printf.sprintf ">= 1.5x store-round reduction (got %.2fx)" reduction)
    true (reduction >= 1.5);
  check_bool "batches actually formed" true
    (grouped.Workload.Exp_groupcommit.g_batches > 0)

(* ------------------------------------------------------------------ *)
(* Property: batched and solo execution reach byte-equal store states.
   Random client counts and per-client offsets; every (client, wave)
   commit time is distinct, so action serials match across the two runs
   and states can be compared for full byte equality (payload AND
   version). Offsets spread commits within and across the window, mixing
   multi-member batches, singletons and solo stretches. *)

let prop_grouped_solo_byte_equal =
  QCheck.Test.make ~name:"batched and solo runs reach byte-equal stores"
    ~count:20
    QCheck.(pair int64 (list_of_size (Gen.int_range 2 5) (int_range 0 120)))
    (fun (seed, offsets) ->
      let run window =
        let clients =
          List.mapi (fun i _ -> Printf.sprintf "c%d" (i + 1)) offsets
        in
        let w = Service.create ~seed ~commit_batch_window:window (topo clients)
        in
        let uids = List.map (fun c -> new_counter w ("obj-" ^ c)) clients in
        Service.run ~until:1.0 w;
        let eng = Service.engine w in
        let commits = ref 0 in
        List.iteri
          (fun i client ->
            let uid = List.nth uids i in
            let k = List.nth offsets i in
            Service.spawn_client w client (fun () ->
                List.iter
                  (fun t ->
                    Sim.Engine.sleep eng
                      (Float.max 0.0 (t -. Sim.Engine.now eng));
                    match commit_add w ~client ~uid with
                    | Ok () -> incr commits
                    | Error _ -> ())
                  [
                    10.0 +. float_of_int (k mod 17)
                    +. (0.013 *. float_of_int i);
                    60.0 +. float_of_int (k mod 23)
                    +. (0.013 *. float_of_int i);
                  ]))
          clients;
        Service.run w;
        let sh = Service.store_host w in
        let states =
          List.map
            (fun uid ->
              List.map
                (fun s ->
                  Store.Object_store.read (Action.Store_host.objects sh s) uid)
                stores)
            uids
        in
        (!commits, states)
      in
      let commits_solo, solo = run 0.0 in
      let commits_grouped, grouped = run 4.0 in
      commits_solo = commits_grouped
      && List.for_all2
           (List.for_all2 (fun a b ->
                match (a, b) with
                | Some a, Some b -> Store.Object_state.equal a b
                | None, None -> true
                | _ -> false))
           solo grouped)

let suite =
  [
    ( "group commit",
      [
        Alcotest.test_case "quiescence pulls the window closed" `Quick
          test_quiescence_pull;
        Alcotest.test_case "held-open batch expires at the window" `Quick
          test_window_expiry;
        Alcotest.test_case "singleton batch matches the solo scatter" `Quick
          test_singleton_matches_solo;
        Alcotest.test_case "stale member peels out, batchmate commits" `Quick
          test_peel_out;
        Alcotest.test_case "floors piggyback on batched phase-2 acks" `Quick
          test_floor_piggyback;
        Alcotest.test_case "anti-entropy converges floors after a crash" `Quick
          test_anti_entropy_convergence;
        Alcotest.test_case "floor-gossip daemon runs on its period" `Quick
          test_gossip_daemon;
        Alcotest.test_case "pin: >= 1.5x round reduction at 8 clients" `Quick
          test_round_reduction_pin;
        Test_util.qcheck prop_grouped_solo_byte_equal;
      ] );
  ]
