type t = {
  b_router : Router.t;
  b_grt : Replica.Group.runtime;
  b_cache : Bind_cache.t option;
  b_deltas : Use_delta.t;
  b_flush_delay : float;
  b_optimistic : bool;
      (* commit-time GetView via lock-free snapshot + prepare-round
         validation instead of the locked re-read (default on since the
         §13 flip; false reproduces the classic tree byte-identically) *)
  b_pipelined : bool;
      (* scheme A's three naming reads as one Sim.Join scatter (default
         on, same flip; false keeps the classic serial reads) *)
  b_crash_hooked : (Net.Network.node_id, unit) Hashtbl.t;
}

let create ?cache ?(flush_delay = 5.0) ?(optimistic_commit = true)
    ?(pipelined_binds = true) b_router b_grt =
  {
    b_router;
    b_grt;
    b_cache = cache;
    b_deltas = Use_delta.create ();
    b_flush_delay = flush_delay;
    b_optimistic = optimistic_commit;
    b_pipelined = pipelined_binds;
    b_crash_hooked = Hashtbl.create 8;
  }

let router t = t.b_router
let gvd t = Router.primary t.b_router
let cache t = t.b_cache
let group_runtime t = t.b_grt
let deltas t = t.b_deltas
let optimistic_commit t = t.b_optimistic
let pipelined_binds t = t.b_pipelined

type binding = {
  bd_uid : Store.Uid.t;
  bd_scheme : Scheme.t;
  bd_group : Replica.Group.t;
  bd_servers : Net.Network.node_id list;
  bd_stores : Net.Network.node_id list;
  bd_version : int;
}

type bind_error = Name_refused of string | No_server of string

let bind_error_to_string = function
  | Name_refused why -> "naming service refused: " ^ why
  | No_server why -> "no server: " ^ why

let pp_bind_error ppf e = Format.pp_print_string ppf (bind_error_to_string e)

type prebinding = {
  pb_uid : Store.Uid.t;
  pb_client : Net.Network.node_id;
  pb_group : Replica.Group.t;
  pb_servers : Net.Network.node_id list;
  pb_incremented : Net.Network.node_id list;
      (* the servers whose use lists the bind action incremented — the
         Decrement must mirror exactly this set, not the (possibly
         smaller) set that actually activated *)
  pb_stores : Net.Network.node_id list;
  pb_version : int;
  mutable pb_released : bool;
}

let art t = Replica.Server.atomic_runtime (Replica.Group.server_runtime t.b_grt)
let netw t = Action.Atomic.network (art t)
let metrics t = Net.Network.metrics (netw t)

let impl_of t ~from uid =
  match Router.entry_info t.b_router ~from uid with
  | Ok (Some info) -> Ok info.Gvd.ei_impl
  | Ok None -> Error (Name_refused "unknown object")
  | Error e -> Error (Name_refused (Net.Rpc.error_to_string e))

let take k xs =
  let rec go k = function
    | [] -> []
    | _ when k = 0 -> []
    | x :: rest -> x :: go (k - 1) rest
  in
  go k xs

(* ------------------------------------------------------------------ *)
(* Exclusion, per scheme (§4.2) *)

let exclusion t ~scheme ~uid act failed =
  let run act' =
    match Router.exclude t.b_router ~act:act' [ (uid, failed) ] with
    | Ok (Gvd.Granted ()) -> Ok ()
    | Ok (Gvd.Refused why) | Ok (Gvd.Busy why) -> Error why
    | Ok (Gvd.Moved dest) -> Error ("wrong shard: " ^ dest)
    | Error e -> Error (Net.Rpc.error_to_string e)
  in
  match scheme with
  | Scheme.Standard -> run act
  | Scheme.Independent | Scheme.Nested_toplevel -> (
      (* The database update is its own durable (nested top-level)
         action: it commits even if the client action later aborts, which
         is safe — the excluded nodes are genuinely dead. *)
      match
        Action.Atomic.atomically_nested_top act (fun a ->
            match run a with
            | Ok () -> ()
            | Error why -> raise (Action.Atomic.Abort why))
      with
      | Ok () -> Ok ()
      | Error why -> Error why)

let attach_commit t ~scheme ~act ~uid group =
  (* Commit processing re-reads StA at commit time: the bind-time view
     can be outdated by a recovered store's Include under the
     independent/nested-top-level schemes (§4.2.1(ii)'s elided
     enhancement), and the copy-back must target the current members.
     The Include fence that read provides — a recovering store must not
     be re-admitted (with a state at the old version fence) between the
     copy-back's target choice and its commit, or St members end up at
     different versions — comes in two flavours:

     - classic (default): a LOCKED GetView, the read lock held from
       commit start to action end, blocking the Include outright;
     - optimistic ([optimistic_commit]): a lock-free snapshot of
       (St, revision) when commit processing starts, re-validated under
       the write fence inside the prepare round — an interleaved
       membership change is detected as a revision conflict and the
       copy-back retries against fresh St ({!Replica.Commit.attach}).

     The bind-time snapshot path is unrelated: it serves reads only and
     provides no fence under any flavour. *)
  let current_stores act' =
    match Router.get_view t.b_router ~act:act' uid with
    | Ok (Gvd.Granted st) -> Ok st
    | Ok (Gvd.Refused why) | Ok (Gvd.Busy why) -> Error why
    | Ok (Gvd.Moved dest) -> Error ("wrong shard: " ^ dest)
    | Error e -> Error (Net.Rpc.error_to_string e)
  in
  let note_version act' version =
    match Router.note_version t.b_router ~act:act' ~uid version with
    | Ok (Gvd.Granted ()) -> Ok ()
    | Ok (Gvd.Refused why) | Ok (Gvd.Busy why) -> Error why
    | Ok (Gvd.Moved dest) -> Error ("wrong shard: " ^ dest)
    | Error e -> Error (Net.Rpc.error_to_string e)
  in
  let exclude act' failed = exclusion t ~scheme ~uid act' failed in
  if not t.b_optimistic then
    Replica.Commit.attach t.b_grt act group ~current_stores ~note_version
      ~exclude ()
  else begin
    let client = Action.Atomic.node act in
    let snapshot_stores () =
      match Router.get_view_commit t.b_router ~from:client uid with
      | Ok (Gvd.Granted (st, rev)) -> Ok (st, rev)
      | Ok (Gvd.Refused why) | Ok (Gvd.Busy why) -> Error why
      | Ok (Gvd.Moved dest) -> Error ("wrong shard: " ^ dest)
      | Error e -> Error (Net.Rpc.error_to_string e)
    in
    let validate act' ~version ~rev =
      match Router.validate_view t.b_router ~act:act' ~uid ~version ~rev with
      | Ok (Gvd.Granted true) -> `Validated
      | Ok (Gvd.Granted false) -> `Conflict
      | Ok (Gvd.Refused _) | Ok (Gvd.Busy _) ->
          (* The write fence is held by a membership change in flight
             right now — morally the same as a revision conflict: retry
             against the St that change is about to commit. *)
          `Conflict
      | Ok (Gvd.Moved dest) -> `Failed ("wrong shard: " ^ dest)
      | Error e -> `Failed (Net.Rpc.error_to_string e)
    in
    Replica.Commit.attach t.b_grt act group ~current_stores ~note_version
      ~snapshot_stores ~validate ~exclude ()
  end

(* ------------------------------------------------------------------ *)
(* Activation with futile-bind accounting *)

let activate_counted t ~client ~uid ~impl ~policy ~servers ~stores =
  match
    Replica.Group.activate t.b_grt ~client ~uid ~impl ~policy ~servers ~stores
  with
  | Error why -> Error (No_server why)
  | Ok group ->
      let futile =
        List.length servers - List.length group.Replica.Group.g_members
      in
      if futile > 0 then Sim.Metrics.incr (metrics t) ~by:futile "bind.futile";
      Sim.Metrics.incr (metrics t) "bind.ok";
      Ok group

(* ------------------------------------------------------------------ *)
(* Figure 6: standard nested actions *)

(* Figure 6's three serial naming reads: impl_of outside the nested
   action, then GetServer and GetView inside it (their read locks pass to
   [act] on nested commit and are held to top-level completion — the
   exclusion fence). The serial shape is the paper's; nothing about the
   locks NEEDS it: the three reads touch three independently locked
   pieces (the name table, [sv:], [st:]), none reads another's output,
   and lock acquisition order between distinct keys carries no deadlock
   obligation here because every bind asks for them in [Read] mode. So
   under [pipelined_binds] the same three requests leave as one
   {!Sim.Join} scatter — each lands exactly as its serial twin would
   (same lock mode, same owning action, same enlistment), only
   concurrently, collapsing three round-trips into one. Failures are
   carried back as values ([`Abort]): a Join task must never raise. *)
let standard_reads t ~act ~client uid =
  let read_sv nested =
    match Router.get_server t.b_router ~act:nested uid with
    | Ok (Gvd.Granted view) -> Ok view.Gvd.sv_servers
    | Ok (Gvd.Refused why) | Ok (Gvd.Busy why) -> Error why
    | Ok (Gvd.Moved dest) -> Error ("wrong shard: " ^ dest)
    | Error e -> Error (Net.Rpc.error_to_string e)
  in
  let read_st nested =
    match Router.get_view t.b_router ~act:nested uid with
    | Ok (Gvd.Granted st) -> Ok st
    | Ok (Gvd.Refused why) | Ok (Gvd.Busy why) -> Error why
    | Ok (Gvd.Moved dest) -> Error ("wrong shard: " ^ dest)
    | Error e -> Error (Net.Rpc.error_to_string e)
  in
  if not t.b_pipelined then
    match impl_of t ~from:client uid with
    | Error e -> Error e
    | Ok impl -> (
        let reads =
          Action.Atomic.atomically_nested act (fun nested ->
              let sv =
                match read_sv nested with
                | Ok sv -> sv
                | Error why -> raise (Action.Atomic.Abort why)
              in
              let st =
                match read_st nested with
                | Ok st -> st
                | Error why -> raise (Action.Atomic.Abort why)
              in
              (sv, st))
        in
        match reads with
        | Error why -> Error (Name_refused why)
        | Ok (sv, st) -> Ok (impl, sv, st))
  else
    let joined =
      Action.Atomic.atomically_nested act (fun nested ->
          let results =
            Sim.Join.all
              (Action.Atomic.engine (art t))
              [
                (fun () -> `Impl (impl_of t ~from:client uid));
                (fun () -> `Sv (read_sv nested));
                (fun () -> `St (read_st nested));
              ]
          in
          let impl = ref None and sv = ref None and st = ref None in
          List.iter
            (function
              | `Impl r -> impl := Some r
              | `Sv r -> sv := Some r
              | `St r -> st := Some r)
            results;
          match (!impl, !sv, !st) with
          | Some (Ok impl), Some (Ok sv), Some (Ok st) -> `Bound (impl, sv, st)
          | Some (Error e), _, _ -> `Name_error e
          | _, Some (Error why), _ | _, _, Some (Error why) ->
              (* Abort from the nested fiber, not a Join task: the grants
                 the other reads DID get are released by the abort. *)
              raise (Action.Atomic.Abort why)
          | _ -> raise (Action.Atomic.Abort "pipelined bind: missing read"))
    in
    match joined with
    | Error why -> Error (Name_refused why)
    | Ok (`Name_error e) -> Error e
    | Ok (`Bound (impl, sv, st)) -> Ok (impl, sv, st)

let bind_standard t ~act ~uid ~policy =
  let client = Action.Atomic.node act in
  match standard_reads t ~act ~client uid with
  | Error e -> Error e
  | Ok (impl, sv, st) -> (
      (* Static Sv: pick the first k entries, dead or not ("the hard
         way", §4.1.2). Under hedged RPC the candidate order is
         health-ranked first, steering the static pick away from
         browned-out servers (ties keep Sv order; with the knob off the
         pick is untouched). *)
      let sv =
        if Replica.Server.hedged_rpc (Replica.Group.server_runtime t.b_grt)
        then
          Net.Health.rank
            (Net.Network.health (netw t))
            ~now:(Sim.Engine.now (Action.Atomic.engine (art t)))
            sv
        else sv
      in
      let chosen = take (Replica.Policy.replicas policy) sv in
      if chosen = [] then Error (No_server "SvA is empty")
      else
        match
          activate_counted t ~client ~uid ~impl ~policy ~servers:chosen
            ~stores:st
        with
        | Error e -> Error e
        | Ok group ->
            attach_commit t ~scheme:Scheme.Standard ~act ~uid group;
            (* impl_of + GetServer + GetView: three serial naming rounds
               as in Figure 6, or one scattered round when pipelined. *)
            Sim.Metrics.observe (metrics t) "bind.naming_rounds"
              (Scheme.naming_rounds ~pipelined:t.b_pipelined Scheme.Standard);
            Ok
              {
                bd_uid = uid;
                bd_scheme = Scheme.Standard;
                bd_group = group;
                bd_servers = group.Replica.Group.g_members;
                bd_stores = st;
                bd_version = 0;
              })

(* ------------------------------------------------------------------ *)
(* Figures 7 and 8: use lists, removal of dead servers *)

(* The database half of a Figure-7/8 bind: since the batch endpoint this
   is ONE RPC round — GetServer + Remove(dead) + Increment + GetView
   collapsed server-side, with the caller's pending decrement credits
   piggybacked. Runs inside a top-level action of its own. *)
let fresh_bind_db t ~client ~uid ~policy ~credits act =
  match
    Router.bind_batch t.b_router ~act ~uid ~client
      ~replicas:(Replica.Policy.replicas policy) ~credits
  with
  | Ok (Gvd.Granted bv) ->
      if bv.Gvd.bv_removed <> [] then
        Sim.Metrics.incr (metrics t)
          ~by:(List.length bv.Gvd.bv_removed)
          "bind.removed_dead";
      bv
  | Ok (Gvd.Refused why) | Ok (Gvd.Busy why) -> raise (Action.Atomic.Abort why)
  | Ok (Gvd.Moved dest) -> raise (Action.Atomic.Abort ("wrong shard: " ^ dest))
  | Error e -> raise (Action.Atomic.Abort (Net.Rpc.error_to_string e))

let decrement_db t ~client ~uid ~servers act =
  match Router.decrement t.b_router ~act ~uid ~client servers with
  | Ok (Gvd.Granted ()) -> ()
  | Ok (Gvd.Refused why) | Ok (Gvd.Busy why) -> raise (Action.Atomic.Abort why)
  | Ok (Gvd.Moved dest) ->
      raise (Action.Atomic.Abort ("wrong shard: " ^ dest))
  | Error e -> raise (Action.Atomic.Abort (Net.Rpc.error_to_string e))

(* Expand credits into the node list the Decrement endpoint expects: a
   node listed k times decrements k counts. *)
let expand_credits credits =
  List.concat_map (fun (node, count) -> List.init count (fun _ -> node)) credits

(* Flush one object's credits as a single merged Decrement action. The
   flush must not leak counters on transient lock refusals: a leaked
   counter of a live client poisons quiescence forever (the cleanup
   daemon only repairs dead clients). Retry through the shared policy
   engine before giving up. *)
let run_flush t ~client ~uid ~credits =
  let servers = expand_credits credits in
  if servers = [] then true
  else
    match
      Net.Retry.run
        (Action.Atomic.retry (art t))
        ~op:"bind.flush"
        (Net.Retry.policy ~attempts:8 ~base:2.0 ~factor:1.5 ~max_delay:8.0 ())
        (fun () ->
          Action.Atomic.atomically (art t) ~node:client (fun act ->
              decrement_db t ~client ~uid ~servers act))
    with
    | Ok () ->
        Sim.Metrics.incr (metrics t) "bind.flushes";
        true
    | Error _ ->
        (* Give the credits back rather than dropping them: a dropped
           credit of a live client poisons quiescence forever (cleanup
           only repairs dead clients). The caller re-arms the flush. *)
        Sim.Metrics.incr (metrics t) "bind.decrement_failed";
        Use_delta.restore t.b_deltas ~client ~uid credits;
        false

(* The delta buffer is world-global but a client's credits are volatile
   state of that client: when it crashes they must die with it. Dropping
   them keeps the next incarnation sound — the orphaned counters are the
   cleanup protocol's job, and decrementing them again after a cleanup
   zero would corrupt the count. The drop also clears the
   scheduled-flush flag, which the crashed flush fiber can no longer
   clear itself (a stale flag would wedge all future flushes for the
   recovered client). *)
let hook_client_crash t ~client =
  if not (Hashtbl.mem t.b_crash_hooked client) then begin
    Hashtbl.add t.b_crash_hooked client ();
    Net.Network.on_crash (netw t) client (fun () ->
        Use_delta.drop_client t.b_deltas ~client)
  end

(* Arrange for the client's buffered credits to be flushed after the
   coalescing window. One one-shot fiber per client at a time; it drains
   the whole buffer and exits (no periodic daemon — the simulation must
   be able to run dry). The fiber lives on the client node, so it dies
   with a client crash — leaving exactly the orphaned counters the
   cleanup protocol repairs. Cooperative scheduling makes the
   empty-check/flag-clear at the end race-free: there is no suspension
   point between them, so a credit arriving later always finds the flag
   down and schedules a fresh fiber. *)
let rec schedule_flush t ~client =
  hook_client_crash t ~client;
  if not (Use_delta.flush_scheduled t.b_deltas ~client) then begin
    Use_delta.set_flush_scheduled t.b_deltas ~client true;
    Net.Network.spawn_on (netw t) client ~name:(client ^ ".use-flush")
      (fun () ->
        Sim.Engine.sleep (Action.Atomic.engine (art t)) t.b_flush_delay;
        let flush_one uid =
          let credits = Use_delta.take t.b_deltas ~client ~uid in
          credits = [] || run_flush t ~client ~uid ~credits
        in
        (* One pass over the distinct pending objects; a failed flush
           restored its credits, so recursing on the raw buffer head
           would spin — skip objects that already failed this pass. *)
        let rec drain stuck =
          match
            List.find_opt
              (fun u -> not (List.exists (Store.Uid.equal u) stuck))
              (Use_delta.pending_uids t.b_deltas ~client)
          with
          | None -> ()
          | Some uid -> drain (if flush_one uid then stuck else uid :: stuck)
        in
        drain [];
        Use_delta.set_flush_scheduled t.b_deltas ~client false;
        (* Anything restored by a failed flush waits out one more window. *)
        if Use_delta.pending_uids t.b_deltas ~client <> [] then
          schedule_flush t ~client)
  end

(* Quiescence-pull: flush every live client's pending credits for [uid]
   right now, without waiting out the coalescing window. Called on behalf
   of an [Insert] blocked on use-list quiescence. Each flush runs as a
   fresh fiber on its owning client (a credit must decrement its own
   client's counters); crashed clients are skipped — their credits are
   dropped by the crash hook and their counters belong to cleanup. *)
let pull_credits t ~uid =
  List.iter
    (fun client ->
      if Net.Network.is_up (netw t) client then begin
        let credits = Use_delta.take t.b_deltas ~client ~uid in
        if credits <> [] then begin
          Sim.Metrics.incr (metrics t) "bind.flush_pulled";
          Net.Network.spawn_on (netw t) client
            ~name:(client ^ ".use-flush-pull") (fun () ->
              if not (run_flush t ~client ~uid ~credits) then
                schedule_flush t ~client)
        end
      end)
    (Use_delta.clients_with t.b_deltas ~uid)

(* The trailing Decrement of Figures 7/8, coalesced: credit the buffer
   and let the deferred flush — or the next bind's batch request, which
   cancels the pair in its own round — carry it to the database. *)
let credit_release t ~client ~uid ~servers =
  List.iter
    (fun node -> Use_delta.credit t.b_deltas ~client ~uid ~node ~count:1)
    servers;
  Sim.Metrics.incr (metrics t) ~by:(List.length servers) "bind.credits";
  schedule_flush t ~client

(* Take the client's pending credits for piggybacking on a bind batch;
   [restore_credits] puts them back (and re-arms the flush) when the
   batch action failed — its staged deltas, credits included, were
   dropped server-side. *)
let take_credits t ~client ~uid =
  let credits = Use_delta.take t.b_deltas ~client ~uid in
  if credits <> [] then Sim.Metrics.incr (metrics t) "bind.coalesced_sends";
  credits

let restore_credits t ~client ~uid credits =
  if credits <> [] then begin
    Use_delta.restore t.b_deltas ~client ~uid credits;
    schedule_flush t ~client
  end

let bind_independent t ~client ~uid ~policy =
  let credits = take_credits t ~client ~uid in
  match
    Action.Atomic.atomically (art t) ~node:client (fun act ->
        fresh_bind_db t ~client ~uid ~policy ~credits act)
  with
  | Error why ->
      restore_credits t ~client ~uid credits;
      Error (Name_refused why)
  | Ok bv -> (
      Sim.Metrics.observe (metrics t) "bind.naming_rounds" 1.0;
      let chosen = bv.Gvd.bv_chosen and st = bv.Gvd.bv_stores in
      match
        activate_counted t ~client ~uid ~impl:bv.Gvd.bv_impl ~policy
          ~servers:chosen ~stores:st
      with
      | Error e ->
          (* The bind action already incremented use lists; pair it with
             the Decrement even though activation failed. *)
          credit_release t ~client ~uid ~servers:chosen;
          Error e
      | Ok group ->
          Ok
            {
              pb_uid = uid;
              pb_client = client;
              pb_group = group;
              pb_servers = group.Replica.Group.g_members;
              pb_incremented = chosen;
              pb_stores = st;
              pb_version = bv.Gvd.bv_version;
              pb_released = false;
            })

let use_prebinding t ~act pb =
  attach_commit t ~scheme:Scheme.Independent ~act ~uid:pb.pb_uid pb.pb_group;
  Ok
    {
      bd_uid = pb.pb_uid;
      bd_scheme = Scheme.Independent;
      bd_group = pb.pb_group;
      bd_servers = pb.pb_servers;
      bd_stores = pb.pb_stores;
      bd_version = pb.pb_version;
    }

let release_independent t pb =
  if not pb.pb_released then begin
    pb.pb_released <- true;
    credit_release t ~client:pb.pb_client ~uid:pb.pb_uid
      ~servers:pb.pb_incremented
  end

let bind_nested_toplevel t ~act ~uid ~policy =
  let client = Action.Atomic.node act in
  let credits = take_credits t ~client ~uid in
  match
    Action.Atomic.atomically_nested_top act (fun dbact ->
        fresh_bind_db t ~client ~uid ~policy ~credits dbact)
  with
  | Error why ->
      restore_credits t ~client ~uid credits;
      Error (Name_refused why)
  | Ok bv -> (
      Sim.Metrics.observe (metrics t) "bind.naming_rounds" 1.0;
      let chosen = bv.Gvd.bv_chosen and st = bv.Gvd.bv_stores in
      match
        activate_counted t ~client ~uid ~impl:bv.Gvd.bv_impl ~policy
          ~servers:chosen ~stores:st
      with
      | Error e ->
          credit_release t ~client ~uid ~servers:chosen;
          Error e
      | Ok group ->
          attach_commit t ~scheme:Scheme.Nested_toplevel ~act ~uid group;
          let release () = credit_release t ~client ~uid ~servers:chosen in
          (* The trailing Decrement is credited when the client action
             ends, whichever way. *)
          Action.Atomic.after_commit act release;
          Action.Atomic.on_abort act release;
          Ok
            {
              bd_uid = uid;
              bd_scheme = Scheme.Nested_toplevel;
              bd_group = group;
              bd_servers = group.Replica.Group.g_members;
              bd_stores = st;
              bd_version = bv.Gvd.bv_version;
            })

let bind_uncached t ~act ~scheme ~uid ~policy =
  match scheme with
  | Scheme.Standard -> bind_standard t ~act ~uid ~policy
  | Scheme.Nested_toplevel -> bind_nested_toplevel t ~act ~uid ~policy
  | Scheme.Independent -> (
      let client = Action.Atomic.node act in
      match bind_independent t ~client ~uid ~policy with
      | Error e -> Error e
      | Ok pb ->
          let release () = release_independent t pb in
          Action.Atomic.after_commit act release;
          Action.Atomic.on_abort act release;
          use_prebinding t ~act pb)

(* ------------------------------------------------------------------ *)
(* The lease cache fast path: a hit skips every bind-time naming RPC and
   activates straight from the cached (impl, SvA', StA). Staleness is
   safe, only slow: dead cached servers cost futile activation attempts
   (scheme A's "hard way"); a stale StA is caught by the object stores'
   backward validation at commit, which aborts the action — and the abort
   hook below invalidates the entry so the retry takes the full path. *)

let bind_cached t cache ~act ~scheme ~uid ~policy (e : Bind_cache.entry) =
  let client = Action.Atomic.node act in
  match
    Replica.Group.activate t.b_grt ~client ~uid ~impl:e.Bind_cache.ce_impl
      ~policy ~servers:e.Bind_cache.ce_servers ~stores:e.Bind_cache.ce_stores
  with
  | Error _ -> None
  | Ok group ->
      let futile =
        List.length e.Bind_cache.ce_servers
        - List.length group.Replica.Group.g_members
      in
      if futile > 0 then Sim.Metrics.incr (metrics t) ~by:futile "bind.futile";
      Sim.Metrics.incr (metrics t) "bind.ok";
      attach_commit t ~scheme ~act ~uid group;
      Action.Atomic.on_abort act (fun () ->
          Bind_cache.invalidate cache ~client uid);
      (* A commit just revalidated the entry (StA re-read under lock,
         stores backward-validated the activation): renew its lease. *)
      Action.Atomic.after_commit act (fun () ->
          Bind_cache.renew cache ~now:(Sim.Engine.now (Action.Atomic.engine (art t)))
            ~client uid);
      Sim.Metrics.observe (metrics t) "bind.naming_rounds" 0.0;
      Some
        {
          bd_uid = uid;
          bd_scheme = scheme;
          bd_group = group;
          bd_servers = group.Replica.Group.g_members;
          bd_stores = e.Bind_cache.ce_stores;
          bd_version = e.Bind_cache.ce_version;
        }

let bind t ~act ~scheme ~uid ~policy =
  let eng = Action.Atomic.engine (art t) in
  let started = Sim.Engine.now eng in
  let finish r =
    Sim.Metrics.observe (metrics t) "bind.latency"
      (Sim.Engine.now eng -. started);
    r
  in
  let client = Action.Atomic.node act in
  let via_cache =
    match t.b_cache with
    | None -> None
    | Some cache -> (
        match Bind_cache.find cache ~now:started ~client uid with
        | None -> None
        | Some entry -> (
            match bind_cached t cache ~act ~scheme ~uid ~policy entry with
            | Some binding -> Some binding
            | None ->
                (* Every cached server failed to activate: drop the entry
                   and take the full path within this same bind. *)
                Bind_cache.invalidate cache ~client uid;
                Sim.Metrics.incr (metrics t) "cache.fallbacks";
                None))
  in
  match via_cache with
  | Some binding -> finish (Ok binding)
  | None ->
      let r = bind_uncached t ~act ~scheme ~uid ~policy in
      (match (r, t.b_cache) with
      | Ok b, Some cache ->
          Bind_cache.fill cache ~now:(Sim.Engine.now eng) ~client uid
            ~impl:b.bd_group.Replica.Group.g_impl ~servers:b.bd_servers
            ~stores:b.bd_stores ~version:b.bd_version
      | _ -> ());
      finish r
