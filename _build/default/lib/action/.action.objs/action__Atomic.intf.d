lib/action/atomic.mli: Action_id Net Resource_host Sim Store_host
