(* Shared test helpers. *)

(* QCheck/alcotest bridge with a FIXED generator seed: the suite must be
   deterministic, so that a failing property is reproducible run-to-run
   (qcheck-alcotest self-initialises its RNG by default). *)
let qcheck ?(seed = 0xC0FFEE) t =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| seed |]) t
