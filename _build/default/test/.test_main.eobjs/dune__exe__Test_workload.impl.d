test/test_workload.ml: Alcotest Astring Format Int64 List Naming Printf QCheck Replica String Test_util Workload
