lib/replica/group.mli: Action Format Net Policy Server Store
