let () =
  Alcotest.run "repro"
    (Test_sim.suite @ Test_join.suite @ Test_net.suite @ Test_store.suite @ Test_lockmgr.suite
   @ Test_action.suite @ Test_replica.suite @ Test_naming.suite
   @ Test_sharding.suite @ Test_regressions.suite @ Test_workload.suite
   @ Test_extensions.suite
   @ Test_fortification.suite @ Test_oplog.suite @ Test_chaos.suite
   @ Test_optimistic.suite @ Test_groupcommit.suite @ Test_properties.suite
   @ Test_brownout.suite @ Test_autonomic.suite)
