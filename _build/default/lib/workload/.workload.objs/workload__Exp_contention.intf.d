lib/workload/exp_contention.mli: Table
