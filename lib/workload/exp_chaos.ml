open Naming

(* Nemesis driver (tab-chaos): compose crash churn, partitions and
   message-level faults into a seed-deterministic schedule over the
   bind/commit/rebalance workloads, quiesce, and run the consolidated
   {!Audit.chaos}. Every schedule is a pure function of its seed, so any
   violation replays from the printed seed alone; on failure the schedule
   is greedily minimized — events dropped, then surviving events weakened
   by halving their fault durations — before being printed.

   Both variants run with op-log delta shipping enabled: the copy-back
   mixes delta and full-state prepares under the fault plane, and
   Audit.chaos additionally holds every store's committed bytes to the
   golden full-state shadow.

   Soundness choices: in the classic variant the naming nodes never crash
   (§3.1's availability assumption); the durable-ns variant runs the
   world with durable naming, where a crashed shard recovers its
   committed entry images from the database, so naming nodes join the
   crash pool — the audit is unchanged. Servers and stores recover;
   crashed clients STAY down, so the cleanup protocol may sweep their
   orphaned counters without racing a recovered incarnation. *)

let naming = [ "ns"; "ns2" ]
let servers = [ "s1"; "s2"; "s3" ]
let stores = [ "t1"; "t2"; "t3" ]
let clients = [ "c1"; "c2"; "c3"; "c4" ]
let actions_per_client = 6
let heal_time = 200.0

type fault_event =
  | Crash of { node : string; at : float; duration : float }
  | Partition of { a : string; b : string; at : float; duration : float }
  | Oneway of { src : string; dst : string; at : float; duration : float }
  | Link of {
      src : string;
      dst : string;
      at : float;
      duration : float;
      drop : float;
      dup : float;
      reorder : float;
      spike_prob : float;
      spike : float;
    }
  | Brownout of {
      node : string;
      at : float;
      duration : float;
      prob : float;
      lo : float;
      hi : float;
    }

let is_client node = List.mem node clients

let pp_event ppf = function
  | Crash { node; at; duration } ->
      if is_client node then
        Format.fprintf ppf "crash %s @%.1f (client: permanent)" node at
      else Format.fprintf ppf "crash %s @%.1f for %.1f" node at duration
  | Partition { a; b; at; duration } ->
      Format.fprintf ppf "partition %s<->%s @%.1f for %.1f" a b at duration
  | Oneway { src; dst; at; duration } ->
      Format.fprintf ppf "cut %s->%s @%.1f for %.1f" src dst at duration
  | Link { src; dst; at; duration; drop; dup; reorder; spike_prob; spike } ->
      Format.fprintf ppf
        "link %s->%s @%.1f for %.1f drop=%.2f dup=%.2f reorder=%.2f \
         spike=%.2f/%.1f"
        src dst at duration drop dup reorder spike_prob spike
  | Brownout { node; at; duration; prob; lo; hi } ->
      Format.fprintf ppf "brownout %s @%.1f for %.1f prob=%.2f extra=[%.1f,%.1f]"
        node at duration prob lo hi

(* The schedule is drawn from its own stream (decoupled from the world's
   engine seed streams) so that dropping an event during shrinking never
   perturbs the world's latency draws. *)
let gen_events ?(durable = false) ?(brownout = false) ~seed () =
  let rng = Sim.Rng.create (Int64.logxor seed 0x6E656D65736973L) in
  let distinct_pair pool =
    let a = Sim.Rng.pick rng pool in
    let b = Sim.Rng.pick rng (List.filter (fun n -> n <> a) pool) in
    (a, b)
  in
  (* A lossy link between idle nodes injects nothing; bias link picks
     toward the pairs the protocols actually exercise (client->server,
     client->naming, server->store and the reverse reply directions). *)
  let busy_pair () =
    let src = Sim.Rng.pick rng (clients @ servers @ naming @ stores) in
    let dst =
      Sim.Rng.pick rng
        (List.filter (fun n -> n <> src)
           (if is_client src then servers @ naming
            else if List.mem src servers then stores @ clients @ naming
            else clients @ servers))
    in
    (src, dst)
  in
  let client_crashes = ref 0 in
  List.init
    (6 + Sim.Rng.int rng 6)
    (fun _ ->
      let at = Sim.Rng.uniform rng 10.0 170.0 in
      let duration = Sim.Rng.uniform rng 8.0 28.0 in
      match Sim.Rng.int rng 100 with
      | k when k < 25 ->
          (* Crashing a naming shard is only sound when its entries are
             durable (the database restore of {!Gvd.install} ~durable);
             the classic variant keeps the paper's availability
             assumption and leaves naming out of the pool. *)
          let pool =
            servers @ stores @ clients @ (if durable then naming else [])
          in
          let node = Sim.Rng.pick rng pool in
          let node =
            (* Keep at least two clients alive so the workload and the
               accounting bound stay meaningful. *)
            if is_client node && !client_crashes >= 2 then
              Sim.Rng.pick rng servers
            else begin
              if is_client node then incr client_crashes;
              node
            end
          in
          Crash { node; at; duration }
      | k when k < 45 ->
          let a, b = distinct_pair (naming @ servers @ stores @ clients) in
          Partition { a; b; at; duration }
      | k when k < 62 ->
          let src, dst = busy_pair () in
          Oneway { src; dst; at; duration }
      | k when brownout && k < 82 ->
          (* Gray failure: the node keeps answering, just slowly. The
             inflation stays below the 30.0 lock/multicast timeouts so
             the slowness is never mistaken for death — exactly the
             regime the health plane and hedging are for. The extra
             draws sit behind the [brownout] gate, so the other
             variants' schedules are untouched. *)
          let node = Sim.Rng.pick rng (servers @ stores) in
          Brownout
            {
              node;
              at;
              duration = Sim.Rng.uniform rng 20.0 60.0;
              prob = Sim.Rng.uniform rng 0.15 0.35;
              lo = Sim.Rng.uniform rng 8.0 14.0;
              hi = Sim.Rng.uniform rng 15.0 28.0;
            }
      | _ ->
          let src, dst = busy_pair () in
          Link
            {
              src;
              dst;
              at;
              duration = Sim.Rng.uniform rng 20.0 60.0;
              drop = Sim.Rng.uniform rng 0.05 0.35;
              dup = Sim.Rng.uniform rng 0.0 0.25;
              reorder = Sim.Rng.uniform rng 0.0 0.25;
              spike_prob = Sim.Rng.uniform rng 0.0 0.2;
              spike = Sim.Rng.uniform rng 2.0 8.0;
            })

let apply_event net = function
  | Crash { node; at; duration } ->
      if is_client node then Net.Fault.crash_at net ~at node
      else Net.Fault.crash_for net ~at ~duration node
  | Partition { a; b; at; duration } ->
      Net.Fault.partition_for net ~at ~duration a b
  | Oneway { src; dst; at; duration } ->
      Net.Fault.cut_oneway_for net ~at ~duration ~src ~dst
  | Link { src; dst; at; duration; drop; dup; reorder; spike_prob; spike } ->
      Net.Fault.link_faults_for net ~at ~duration ~drop ~dup ~reorder
        ~spike_prob ~spike ~src ~dst ()
  | Brownout { node; at; duration; prob; lo; hi } ->
      Net.Fault.brownout_for net ~at ~duration ~prob ~lo ~hi node

type outcome = {
  oc_violations : string list;
  oc_commits : int;
  oc_retries : int;
  oc_faults : int;
  oc_shed : int;
}

let run_world ?(durable = false) ?(optimistic = false) ?(groupcommit = false)
    ?(brownout = false) ?(autonomic = false) ~seed ~events () =
  let w =
    (* [force_delta]: the chaos objects are counters, whose deltas lose
       the size comparison every time — forcing keeps the delta path
       under fault coverage. The optimistic world turns on both halves
       of the hot-path work: validated snapshot commits and pipelined
       scheme-A binds; the groupcommit world keeps those on and batches
       the copy-back through the group-commit plane, so batch leadership,
       peel-outs, orphaned members and floor gossip all run under the
       fault schedule. The brownout world keeps the optimistic hot path
       (unbatched, so every phase-1 prepare carries the action deadline)
       and turns on the whole gray-failure plane — hedged scatters,
       deadline shedding, degraded breaker trips — plus the periodic
       floor-gossip daemon, whose daemon sleeps are what let the drain
       below still terminate. The autonomic world stacks the §16
       membership plane on top of the brownout world's knobs: three
       controller daemons (one per server) probing the stores, plus
       sibling-hedge routing on the commit path — flapping brownouts,
       crash churn and the controllers' Exclude/Include churn all share
       the schedule, and the audit must still come out clean without the
       membership plane livelocking (hysteresis + cooldown). *)
    Service.create ~seed ~durable_naming:durable ~delta_shipping:true
      ~force_delta:true ~optimistic_commit:optimistic
      ~pipelined_binds:optimistic
      ~commit_batch_window:(if groupcommit then 2.0 else 0.0)
      ~floor_gossip_period:(if brownout then 7.0 else 0.0)
      ~hedged_rpc:brownout ~deadline_shedding:brownout
      ~degraded_trips:brownout ~hedge_to_sibling:autonomic
      ~autonomic_membership:autonomic
      {
        Service.gvd_node = "ns";
        gvd_nodes = [ "ns2" ];
        server_nodes = servers;
        store_nodes = stores;
        client_nodes = clients;
      }
  in
  (* Start single-shard; the operator grows and shrinks the map mid-run
     so entry handoffs race the faults. *)
  Router.reset_map (Service.router w) [ "ns" ];
  let uids =
    List.mapi
      (fun i st ->
        Service.create_object w
          ~name:(Printf.sprintf "obj%d" (i + 1))
          ~impl:"counter" ~sv:servers ~st ())
      [ [ "t1"; "t2" ]; [ "t2"; "t3" ]; [ "t1"; "t3" ] ]
  in
  Service.run ~until:1.0 w;
  let eng = Service.engine w in
  let net = Service.network w in
  let m = Service.metrics w in
  let violations = ref [] in
  let flag fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  (* Snapshot-version monotonicity monitor: sample every shard's entries
     while the schedule runs; a version that ever goes backwards is a
     violation regardless of what the final audit sees. *)
  let seen = Hashtbl.create 16 in
  let seen_rev = Hashtbl.create 16 in
  Net.Network.spawn_on net "ns" ~name:"chaos.version-monitor" (fun () ->
      let rec loop () =
        if Sim.Engine.now eng < heal_time +. 40.0 then begin
          List.iter
            (fun g ->
              List.iter
                (fun uid ->
                  let v = Gvd.snapshot_version g uid in
                  let k = Store.Uid.serial uid in
                  (match Hashtbl.find_opt seen k with
                  | Some v0 when v < v0 ->
                      flag "snapshot version of %s went backwards (%d -> %d)"
                        (Store.Uid.to_string uid) v0 v
                  | _ -> ());
                  let v0 = Option.value ~default:0 (Hashtbl.find_opt seen k) in
                  Hashtbl.replace seen k (max v0 v);
                  (* The optimistic validation's premise: the St revision
                     only ever counts up, or a commit could validate
                     against a rolled-back membership. *)
                  let r = Gvd.st_revision g uid in
                  (match Hashtbl.find_opt seen_rev k with
                  | Some r0 when r < r0 ->
                      flag "St revision of %s went backwards (%d -> %d)"
                        (Store.Uid.to_string uid) r0 r
                  | _ -> ());
                  let r0 =
                    Option.value ~default:0 (Hashtbl.find_opt seen_rev k)
                  in
                  Hashtbl.replace seen_rev k (max r0 r))
                (Gvd.all_uids g))
            (Router.gvds (Service.router w));
          Sim.Engine.sleep eng 5.0;
          loop ()
        end
      in
      loop ());
  (* Operator fiber: rebalance 1 -> 2 shards mid-schedule and back. *)
  Net.Network.spawn_on net "ns" ~name:"chaos.rebalance" (fun () ->
      Sim.Engine.sleep eng 60.0;
      Router.rebalance (Service.router w) ~from:"ns" [ "ns"; "ns2" ];
      Sim.Engine.sleep eng 70.0;
      Router.rebalance (Service.router w) ~from:"ns" [ "ns" ]);
  (* Client workload with accounting bounds. Exact accounting cannot hold
     under client crashes: an amount in flight when its client dies may
     or may not have committed (the fiber that would have told us is
     gone). Track acknowledged commits as the floor and crashed in-flight
     amounts as slack on the ceiling. *)
  let committed = Hashtbl.create 8 in
  let potential = Hashtbl.create 8 in
  let commits = ref 0 in
  let cell tbl k =
    match Hashtbl.find_opt tbl k with
    | Some r -> r
    | None ->
        let r = ref 0 in
        Hashtbl.add tbl k r;
        r
  in
  let wrng = Sim.Rng.split (Sim.Engine.rng eng) in
  List.iter
    (fun client ->
      let crng = Sim.Rng.split wrng in
      let in_flight = ref None in
      Net.Network.on_crash net client (fun () ->
          match !in_flight with
          | Some (k, amount) ->
              let p = cell potential k in
              p := !p + amount;
              in_flight := None
          | None -> ());
      Service.spawn_client w client (fun () ->
          Sim.Engine.sleep eng (Sim.Rng.uniform crng 0.0 8.0);
          for _ = 1 to actions_per_client do
            let uid = Sim.Rng.pick crng uids in
            let amount = 1 + Sim.Rng.int crng 50 in
            let scheme = Sim.Rng.pick crng Scheme.all in
            let policy =
              Sim.Rng.pick crng
                [ Replica.Policy.Single_copy_passive; Replica.Policy.Active 2 ]
            in
            let k = Store.Uid.serial uid in
            in_flight := Some (k, amount);
            (* The brownout world gives every action a real time budget:
               the client stops waiting at 25s (comfortably above the
               healthy commit path, below the retry tail a browned
               store can induce), and with the shedding knob on the
               servers refuse phase-1 work for actions already past it. *)
            (match
               Service.with_bound
                 ?deadline:(if brownout then Some 25.0 else None)
                 w ~client ~scheme ~policy ~uid
                 (fun act group ->
                   ignore
                     (Service.invoke w group ~act
                        (Printf.sprintf "add %d" amount)))
             with
            | Ok () ->
                incr commits;
                let c = cell committed k in
                c := !c + amount
            | Error _ -> ());
            in_flight := None;
            Sim.Engine.sleep eng (Sim.Rng.uniform crng 4.0 18.0)
          done))
    clients;
  (* The schedule, then the heal: clear every message fault and bring
     servers and stores (never the crashed clients) back up. *)
  List.iter (apply_event net) events;
  Net.Fault.heal_at net ~at:heal_time;
  List.iter
    (fun node -> Net.Fault.recover_at net ~at:(heal_time +. 1.0) node)
    (servers @ stores @ (if durable then naming else []));
  Service.run w;
  (* Post-heal janitor passes, each drained to quiescence: participants
     whose phase-2 message was severed re-pull the decision (cooperative
     termination settles coordinators that died for good), then cleanup
     sweeps the crashed clients' orphaned counters. *)
  List.iter
    (fun node ->
      Net.Network.spawn_on net node ~name:(node ^ ".chaos-resolve")
        (fun () -> Action.Recovery.resolve_in_doubt (Service.atomic w) ~node ()))
    stores;
  Service.run w;
  List.iter
    (fun g ->
      Net.Network.spawn_on net (Gvd.node g) ~name:"chaos.sweep" (fun () ->
          ignore (Cleanup.sweep_now g (Service.atomic w) : int);
          ignore (Cleanup.sweep_now g (Service.atomic w) : int)))
    (Router.gvds (Service.router w));
  Service.run w;
  (* Accounting bounds against the final committed states. *)
  let actual uid =
    let sh = Service.store_host w in
    List.fold_left
      (fun best node ->
        match
          Store.Object_store.read (Action.Store_host.objects sh node) uid
        with
        | Some s -> (
            match best with
            | Some b when not (Store.Object_state.newer_than s b) -> Some b
            | _ -> Some s)
        | None -> best)
      None stores
    |> function
    | Some s -> ( try int_of_string s.Store.Object_state.payload with _ -> 0)
    | None -> 0
  in
  List.iter
    (fun uid ->
      let k = Store.Uid.serial uid in
      let lo =
        match Hashtbl.find_opt committed k with Some r -> !r | None -> 0
      in
      let hi =
        lo
        + match Hashtbl.find_opt potential k with Some r -> !r | None -> 0
      in
      let v = actual uid in
      if v < lo || v > hi then
        flag "accounting: %s holds %d, outside committed bounds [%d, %d]"
          (Store.Uid.to_string uid) v lo hi)
    uids;
  {
    oc_violations = List.rev !violations @ Audit.chaos w;
    oc_commits = !commits;
    oc_retries = Sim.Metrics.counter m "retry.retries";
    oc_faults =
      List.fold_left
        (fun acc c -> acc + Sim.Metrics.counter m c)
        0
        [
          "fault.drop";
          "fault.dup";
          "fault.reorder";
          "fault.delay";
          "fault.cut_dropped";
          "fault.brownout";
        ];
    oc_shed = Sim.Metrics.counter m "retry.shed_expired";
  }

(* Greedy two-pass shrinker. Pass one drops any single event whose
   removal keeps the run failing; pass two weakens the survivors by
   halving a fault's duration (windowed link faults shrink their whole
   window), floored so a probe never degenerates below a ~2s fault.
   Client crashes are permanent and carry no meaningful duration, so
   they are never weakened. The passes alternate to a fixpoint: a
   shorter fault may make an event droppable and vice versa. Each probe
   replays the same world seed, so the minimized schedule is still
   reproducible. *)
let weaken = function
  | Crash { node; _ } when is_client node -> None
  | Crash { node; at; duration } when duration >= 4.0 ->
      Some (Crash { node; at; duration = duration /. 2.0 })
  | Partition { a; b; at; duration } when duration >= 4.0 ->
      Some (Partition { a; b; at; duration = duration /. 2.0 })
  | Oneway { src; dst; at; duration } when duration >= 4.0 ->
      Some (Oneway { src; dst; at; duration = duration /. 2.0 })
  | Link ({ duration; _ } as l) when duration >= 4.0 ->
      Some (Link { l with duration = duration /. 2.0 })
  | Brownout ({ duration; _ } as b) when duration >= 4.0 ->
      Some (Brownout { b with duration = duration /. 2.0 })
  | _ -> None

let shrink ?(durable = false) ?(optimistic = false) ?(groupcommit = false)
    ?(brownout = false) ?(autonomic = false) ~seed events =
  let failing evs =
    (run_world ~durable ~optimistic ~groupcommit ~brownout ~autonomic ~seed
       ~events:evs ())
      .oc_violations
    <> []
  in
  let rec drop_pass evs =
    let rec try_drop i =
      if i >= List.length evs then None
      else
        let evs' = List.filteri (fun j _ -> j <> i) evs in
        if failing evs' then Some evs' else try_drop (i + 1)
    in
    match try_drop 0 with Some evs' -> drop_pass evs' | None -> evs
  in
  let rec weaken_pass evs =
    let rec try_weaken i =
      if i >= List.length evs then None
      else
        match weaken (List.nth evs i) with
        | None -> try_weaken (i + 1)
        | Some e' ->
            let evs' = List.mapi (fun j e -> if j = i then e' else e) evs in
            if failing evs' then Some evs' else try_weaken (i + 1)
    in
    match try_weaken 0 with Some evs' -> weaken_pass evs' | None -> evs
  in
  let rec fix evs =
    let evs' = weaken_pass (drop_pass evs) in
    if evs' = evs then evs else fix evs'
  in
  fix events

let check_seed ?(durable = false) ?(optimistic = false) ?(groupcommit = false)
    ?(brownout = false) ?(autonomic = false) seed =
  let events = gen_events ~durable ~brownout ~seed () in
  let o =
    run_world ~durable ~optimistic ~groupcommit ~brownout ~autonomic ~seed
      ~events ()
  in
  if o.oc_violations = [] then (o, None)
  else
    ( o,
      Some
        (shrink ~durable ~optimistic ~groupcommit ~brownout ~autonomic ~seed
           events) )

let default_seeds = [ 11L; 23L; 37L; 41L; 53L; 67L; 79L; 97L ]

let run_check ?(seeds = default_seeds) () =
  let failures = ref [] in
  let shed_total = ref 0 in
  let rows =
    List.concat_map
      (fun seed ->
        List.map
          (fun (durable, optimistic, groupcommit, brownout, autonomic, world) ->
            let events = gen_events ~durable ~brownout ~seed () in
            let o, shrunk =
              check_seed ~durable ~optimistic ~groupcommit ~brownout ~autonomic
                seed
            in
            (match shrunk with
            | None -> ()
            | Some min_events ->
                failures :=
                  (world, seed, min_events, o.oc_violations) :: !failures);
            if brownout then shed_total := !shed_total + o.oc_shed;
            [
              Int64.to_string seed;
              world;
              Table.cell_i (List.length events);
              Table.cell_i o.oc_commits;
              Table.cell_i o.oc_retries;
              Table.cell_i o.oc_faults;
              Table.cell_i (List.length o.oc_violations);
              (if o.oc_violations = [] then "ok" else "FAIL");
            ])
          [
            (false, false, false, false, false, "classic");
            (true, false, false, false, false, "durable-ns");
            (false, true, false, false, false, "optimistic");
            (false, true, true, false, false, "groupcommit");
            (true, true, false, true, false, "brownout");
            (true, true, false, true, true, "autonomic");
          ])
      seeds
  in
  (* The brownout variant must actually exercise the shedding plane: a
     schedule set under which no server ever refused an expired call
     means the deadlines are miscalibrated, and the gray-failure
     machinery silently ran idle — fail the check rather than let that
     coverage rot. *)
  let shed_ok = !shed_total > 0 in
  let base_notes =
    [
      "Seed-deterministic nemesis schedules (crashes, partitions, one-way";
      "cuts, lossy/duplicating/reordering links) over randomized";
      "bind/commit workloads with a mid-run shard rebalance; delta";
      "shipping is ON, so copy-backs mix op-log deltas with full-state";
      "fallbacks under the fault plane. The classic world never crashes";
      "naming; the durable-ns world runs durable naming and adds the";
      "naming shards to the crash pool; the optimistic world keeps the";
      "classic crash pool but commits through the validated lock-free";
      "snapshot and binds scheme A through the pipelined Join scatter;";
      "the groupcommit world keeps those on and batches copy-backs";
      "through the group-commit plane (window 2.0), putting batch";
      "leadership, peel-outs, orphaned members and piggybacked floor";
      "gossip under the same fault schedules. The brownout world adds";
      "gray failures (per-node service-time inflation, below every";
      "timeout) to the durable crash pool and runs the resilience plane";
      "against them: hedged 2PC/naming scatters, 25s action deadlines";
      "with server-side shedding of expired phase-1 work";
      "(retry.shed_expired must fire somewhere in the seed set),";
      "breaker trips on sustained slowness, and the periodic";
      "floor-gossip daemon kept alive across crashes. The autonomic";
      "world stacks the §16 membership plane on the brownout knobs:";
      "per-server controller daemons probing the stores and driving";
      "health-based Exclude/Include through the validated rounds, plus";
      "sibling-hedge routing of commit-path backup copies — flapping";
      "brownouts must not livelock membership (hysteresis + cooldown),";
      "and every controller-driven exclusion must either re-include";
      "after its catch-up fence or leave a still-consistent smaller St.";
      "Servers/stores heal, crashed";
      "clients stay down for the cleanup protocol. After quiescence,";
      "Audit.chaos checks StA mutual consistency, byte-equality of every";
      "store against the full-state golden shadow, snapshot-version and";
      "St-revision monotonicity, use-list quiescence, residual";
      "locks/reservations and leaked fibers, plus commit accounting";
      "bounds. Failing schedules";
      "shrink by event dropping, then by halving fault durations. Any";
      "seed replays the full run bit-for-bit.";
    ]
  in
  let failure_notes =
    List.concat_map
      (fun (world, seed, min_events, viols) ->
        (Printf.sprintf
           "seed %Ld (%s) FAILED; replay: repro chaos --seeds %Ld" seed world
           seed
        :: "minimized fault schedule:"
        :: List.map
             (fun e -> Format.asprintf "  - %a" pp_event e)
             min_events)
        @ List.map (fun v -> "  violation: " ^ v) viols)
      (List.rev !failures)
  in
  let failure_notes =
    if shed_ok then failure_notes
    else
      failure_notes
      @ [
          "FAIL: retry.shed_expired = 0 across every brownout run — the";
          "deadline-shedding plane never fired; recalibrate the brownout";
          "schedule or the 25s action deadline.";
        ]
  in
  ( Table.make ~title:"tab-chaos: deterministic chaos harness and invariant audit"
      ~columns:
        [
          "seed";
          "world";
          "events";
          "commits";
          "retries";
          "faults injected";
          "violations";
          "verdict";
        ]
      ~notes:(base_notes @ failure_notes) rows,
    !failures = [] && shed_ok )

let run ?seeds () = fst (run_check ?seeds ())
