lib/naming/cleanup.mli: Action Gvd
