type host = { h_objects : Store.Object_store.t; h_log : Store.Intent_log.t }

type read_req = Store.Uid.t
type prepare_req = {
  pr_action : string;
  pr_coordinator : string;
  pr_writes : (Store.Uid.t * Store.Object_state.t) list;
}

type vote = Vote_yes | Vote_stale

type t = {
  rpc_rt : Net.Rpc.t;
  hosts : (Net.Network.node_id, host) Hashtbl.t;
  mutable prepare_hook :
    (node:Net.Network.node_id -> action:string -> coordinator:string -> unit)
    option;
  mutable reservation_hook :
    (node:Net.Network.node_id -> blockers:(string * string) list -> unit)
    option;
  ep_read : (read_req, Store.Object_state.t option) Net.Rpc.endpoint;
  ep_prepare : (prepare_req, vote) Net.Rpc.endpoint;
  ep_commit : (string, unit) Net.Rpc.endpoint;
  ep_abort : (string, unit) Net.Rpc.endpoint;
  ep_decision : (string, Store.Intent_log.decision option) Net.Rpc.endpoint;
}

let create rpc_rt =
  {
    rpc_rt;
    hosts = Hashtbl.create 16;
    prepare_hook = None;
    reservation_hook = None;
    ep_read = Net.Rpc.endpoint "store.read";
    ep_prepare = Net.Rpc.endpoint "store.prepare";
    ep_commit = Net.Rpc.endpoint "store.commit";
    ep_abort = Net.Rpc.endpoint "store.abort";
    ep_decision = Net.Rpc.endpoint "store.decision";
  }

let rpc t = t.rpc_rt

let nodes t =
  Hashtbl.fold (fun n _ acc -> n :: acc) t.hosts [] |> List.sort String.compare

let host t node =
  match Hashtbl.find_opt t.hosts node with
  | Some h -> h
  | None -> invalid_arg (Printf.sprintf "Store_host: no store on %s" node)

let apply_commit h action =
  (match Store.Intent_log.prepared h.h_log ~action with
  | None -> () (* already applied: idempotent *)
  | Some { Store.Intent_log.writes; _ } ->
      List.iter
        (fun (uid, state) ->
          (* Skip stale states so recovery replays are safe. *)
          let stale =
            match Store.Object_store.read h.h_objects uid with
            | Some existing -> Store.Object_state.newer_than existing state
            | None -> false
          in
          if not stale then Store.Object_store.write h.h_objects uid state)
        writes);
  Store.Intent_log.resolve h.h_log ~action

let add t node =
  if Hashtbl.mem t.hosts node then
    invalid_arg (Printf.sprintf "Store_host.add: %s already hosted" node);
  let h = { h_objects = Store.Object_store.create (); h_log = Store.Intent_log.create () } in
  Hashtbl.add t.hosts node h;
  Net.Rpc.serve t.rpc_rt ~node t.ep_read (fun uid ->
      Store.Object_store.read h.h_objects uid);
  Net.Rpc.serve t.rpc_rt ~node t.ep_prepare (fun { pr_action; pr_coordinator; pr_writes } ->
      (* Backward validation: each write must be the direct successor of
         the committed state (or recreate the same version during a
         recovery replay). A gap or a sibling version means the writer
         activated from a stale state. *)
      let valid (uid, state) =
        match Store.Object_store.read h.h_objects uid with
        | None -> true
        | Some existing ->
            let incoming = state.Store.Object_state.version.Store.Version.counter in
            let current = existing.Store.Object_state.version.Store.Version.counter in
            incoming = current + 1 || incoming = current && Store.Object_state.equal state existing
      in
      (* A pending prepare of another action is a write reservation:
         admitting a second writer for the same object would let two
         version-(n+1) siblings both commit (the apply order, not the
         validation, would then pick the survivor). *)
      let reserved (uid, _) =
        List.exists
          (fun a -> not (String.equal a pr_action))
          (Store.Intent_log.pending_writers h.h_log uid)
      in
      let netw = Net.Rpc.network t.rpc_rt in
      List.iter
        (fun ((uid, state) as w) ->
          if not (valid w) then
            Sim.Trace.recordf (Net.Network.trace netw)
              ~now:(Sim.Engine.now (Net.Network.engine netw)) ~tag:"store"
              "%s: %s stale prepare of %s (incoming %s vs stored %s)" node
              pr_action (Store.Uid.to_string uid)
              (Store.Version.to_string state.Store.Object_state.version)
              (match Store.Object_store.read h.h_objects uid with
              | Some e -> Store.Version.to_string e.Store.Object_state.version
              | None -> "none")
          else if reserved w then
            Sim.Trace.recordf (Net.Network.trace netw)
              ~now:(Sim.Engine.now (Net.Network.engine netw)) ~tag:"store"
              "%s: %s blocked by reservation of [%s] on %s" node pr_action
              (String.concat ","
                 (List.filter
                    (fun a -> not (String.equal a pr_action))
                    (Store.Intent_log.pending_writers h.h_log uid)))
              (Store.Uid.to_string uid))
        pr_writes;
      if List.for_all valid pr_writes && not (List.exists reserved pr_writes)
      then begin
        Store.Intent_log.prepare h.h_log ~action:pr_action
          ~coordinator:pr_coordinator pr_writes;
        (match t.prepare_hook with
        | Some hook ->
            hook ~node ~action:pr_action ~coordinator:pr_coordinator
        | None -> ());
        Vote_yes
      end
      else begin
        (* If the refusal came from another action's write reservation,
           report the blockers (with their coordinators) so in-doubt
           resolution can break reservations whose coordinator is
           partitioned away — a crash fires [prepare_hook]'s watch, but a
           partition severs the abort fan-out without killing anyone. *)
        (match t.reservation_hook with
        | None -> ()
        | Some hook ->
            let blockers =
              List.sort_uniq compare
                (List.concat_map
                   (fun (uid, _) ->
                     List.filter_map
                       (fun a ->
                         if String.equal a pr_action then None
                         else
                           Option.map
                             (fun { Store.Intent_log.coordinator; _ } ->
                               (a, coordinator))
                             (Store.Intent_log.prepared h.h_log ~action:a))
                       (Store.Intent_log.pending_writers h.h_log uid))
                   pr_writes)
            in
            if blockers <> [] then hook ~node ~blockers);
        Vote_stale
      end);
  Net.Rpc.serve t.rpc_rt ~node t.ep_commit (fun action -> apply_commit h action);
  Net.Rpc.serve t.rpc_rt ~node t.ep_abort (fun action ->
      Store.Intent_log.resolve h.h_log ~action);
  Net.Rpc.serve t.rpc_rt ~node t.ep_decision (fun action ->
      Store.Intent_log.decision_of h.h_log ~action)

let hosted t node = Hashtbl.mem t.hosts node

let objects t node = (host t node).h_objects
let log t node = (host t node).h_log

let seed t node uid state = Store.Object_store.write (host t node).h_objects uid state

let read t ~from ~store uid = Net.Rpc.call t.rpc_rt ~from ~dst:store t.ep_read uid

let prepare t ~from ~store ~action ~coordinator writes =
  Net.Rpc.call t.rpc_rt ~from ~dst:store t.ep_prepare
    { pr_action = action; pr_coordinator = coordinator; pr_writes = writes }

let commit t ~from ~store ~action = Net.Rpc.call t.rpc_rt ~from ~dst:store t.ep_commit action

let abort t ~from ~store ~action = Net.Rpc.call t.rpc_rt ~from ~dst:store t.ep_abort action

let prepare_all t ~from ~stores ~action ~coordinator writes =
  let req = { pr_action = action; pr_coordinator = coordinator; pr_writes = writes } in
  Net.Rpc.call_all t.rpc_rt ~from t.ep_prepare
    (List.map (fun store -> (store, req)) stores)

let commit_all t ~from ~stores ~action =
  Net.Rpc.call_all t.rpc_rt ~from t.ep_commit
    (List.map (fun store -> (store, action)) stores)

let abort_all t ~from ~stores ~action =
  Net.Rpc.call_all t.rpc_rt ~from t.ep_abort
    (List.map (fun store -> (store, action)) stores)

let decision t ~from ~coordinator ~action =
  Net.Rpc.call t.rpc_rt ~from ~dst:coordinator t.ep_decision action

let set_prepare_hook t hook = t.prepare_hook <- Some hook
let set_reservation_hook t hook = t.reservation_hook <- Some hook

let record_decision t ~node ~action d =
  Store.Intent_log.record_decision (host t node).h_log ~action d
