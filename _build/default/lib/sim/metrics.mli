(** Experiment metric collection: counters and sample distributions.

    One registry is threaded through an experiment; every component
    increments named counters ([binds.futile], [commit.abort], ...) or
    records samples ([bind.latency]). The workload harness turns registries
    into the rows reported in EXPERIMENTS.md. *)

type t
(** A metrics registry. *)

val create : unit -> t
(** A fresh, empty registry. *)

val incr : t -> ?by:int -> string -> unit
(** [incr t name] adds [by] (default 1) to the counter [name], creating it
    at zero if absent. *)

val counter : t -> string -> int
(** Current value of counter [name]; 0 if never incremented. *)

val observe : t -> string -> float -> unit
(** [observe t name v] appends sample [v] to the distribution [name]. *)

val samples : t -> string -> float list
(** All samples recorded under [name], oldest first. *)

val mean : t -> string -> float
(** Mean of the samples under [name]; [nan] if none. *)

val percentile : t -> string -> float -> float
(** [percentile t name p] is the [p]-th percentile (0..100, nearest-rank)
    of the samples under [name]; [nan] if none. *)

val max_sample : t -> string -> float
(** Largest sample under [name]; [nan] if none. *)

val sample_count : t -> string -> int
(** Number of samples under [name]. *)

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

val distributions : t -> string list
(** Names of all distributions, sorted. *)

val merge_into : dst:t -> t -> unit
(** [merge_into ~dst src] adds all of [src]'s counters and samples into
    [dst]; used to aggregate repeated trials. *)

val clear : t -> unit
(** Reset the registry. *)

val pp : Format.formatter -> t -> unit
(** Render counters and distribution summaries. *)
