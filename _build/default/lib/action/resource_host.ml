type manager = {
  m_prepare : action:string -> bool;
  m_commit : action:string -> unit;
  m_abort : action:string -> unit;
  m_transfer : action:string -> parent:string -> unit;
}

type req = { r_resource : string; r_action : string; r_parent : string }

type t = {
  rpc_rt : Net.Rpc.t;
  managers : (Net.Network.node_id * string, manager) Hashtbl.t;
  ep_prepare : (req, bool) Net.Rpc.endpoint;
  ep_commit : (req, unit) Net.Rpc.endpoint;
  ep_abort : (req, unit) Net.Rpc.endpoint;
  ep_transfer : (req, unit) Net.Rpc.endpoint;
}

let manager_exn t node resource =
  match Hashtbl.find_opt t.managers (node, resource) with
  | Some m -> m
  | None ->
      failwith
        (Printf.sprintf "Resource_host: no resource %s on %s" resource node)

let create rpc_rt =
  let t =
    {
      rpc_rt;
      managers = Hashtbl.create 16;
      ep_prepare = Net.Rpc.endpoint "resource.prepare";
      ep_commit = Net.Rpc.endpoint "resource.commit";
      ep_abort = Net.Rpc.endpoint "resource.abort";
      ep_transfer = Net.Rpc.endpoint "resource.transfer";
    }
  in
  t

let serve_endpoints t node =
  Net.Rpc.serve t.rpc_rt ~node t.ep_prepare (fun r ->
      (manager_exn t node r.r_resource).m_prepare ~action:r.r_action);
  Net.Rpc.serve t.rpc_rt ~node t.ep_commit (fun r ->
      (manager_exn t node r.r_resource).m_commit ~action:r.r_action);
  Net.Rpc.serve t.rpc_rt ~node t.ep_abort (fun r ->
      (manager_exn t node r.r_resource).m_abort ~action:r.r_action);
  Net.Rpc.serve t.rpc_rt ~node t.ep_transfer (fun r ->
      (manager_exn t node r.r_resource).m_transfer ~action:r.r_action
        ~parent:r.r_parent)

let register t ~node ~resource m =
  if not (Net.Rpc.serving t.rpc_rt ~node t.ep_prepare) then serve_endpoints t node;
  Hashtbl.replace t.managers (node, resource) m

let registered t ~node ~resource = Hashtbl.mem t.managers (node, resource)

let req resource action parent =
  { r_resource = resource; r_action = action; r_parent = parent }

let prepare t ~from ~node ~resource ~action =
  Net.Rpc.call t.rpc_rt ~from ~dst:node t.ep_prepare (req resource action "")

let commit t ~from ~node ~resource ~action =
  Net.Rpc.call t.rpc_rt ~from ~dst:node t.ep_commit (req resource action "")

let abort t ~from ~node ~resource ~action =
  Net.Rpc.call t.rpc_rt ~from ~dst:node t.ep_abort (req resource action "")

let transfer t ~from ~node ~resource ~action ~parent =
  Net.Rpc.call t.rpc_rt ~from ~dst:node t.ep_transfer (req resource action parent)
