type t = { payload : string; version : Version.t }

let make ~payload ~version = { payload; version }

let initial payload = { payload; version = Version.initial }

let equal a b =
  String.equal a.payload b.payload && Version.equal a.version b.version

let newer_than a b = Version.newer_than a.version b.version

let pp ppf t =
  Format.fprintf ppf "@[<h>%a %S@]" Version.pp t.version t.payload

let bytes t = String.length t.payload
