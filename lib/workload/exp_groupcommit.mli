(** Experiment [tab-groupcommit]: group-commit round coalescing vs solo
    2PC.

    Synchronised waves of disjoint-object writes over a shared two-store
    [St], run solo and with the group-commit plane on: batched commits
    pay one prepare and one phase-2 scatter per store for the whole
    batch, so store RPC rounds per commit drop with the batch size. *)

type sample = {
  g_commits : int;
  g_store_rpcs : int;
  g_rounds : float;  (** store RPC rounds per commit *)
  g_batches : int;
  g_mean_members : float;
  g_peels : int;
  g_pulled : int;  (** windows closed early by quiescence-pull *)
}

val episode : window:float -> clients:int -> unit -> sample
(** One run; [window = 0.0] is the solo baseline. *)

val round_reduction :
  ?clients:int -> ?window:float -> unit -> float * sample * sample
(** [(solo rounds/commit) / (grouped rounds/commit)] at [clients]
    (default 8) writers, plus both samples. The test suite pins this at
    >= 1.5x — the acceptance criterion of the group-commit plane. *)

val run : unit -> Table.t
