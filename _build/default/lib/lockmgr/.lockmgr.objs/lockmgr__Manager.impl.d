lib/lockmgr/manager.ml: Format Hashtbl List Mode Queue Sim String
