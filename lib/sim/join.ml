(* Structured scatter-gather over fibers.

   Every combinator spawns its tasks into the *caller's* group, so a node
   crash that kills the scattering fiber also kills the workers — no fan-out
   survives its initiator. Single-task scatters run inline (no spawn), which
   keeps one-element fan-outs event-for-event identical to the sequential
   code they replaced: worlds with |St| = |Sv| = 1 are byte-for-byte
   unaffected by the scatter-gather rewiring. *)

type 'a task = unit -> 'a

(* Spawn one fiber per task; [on_done i r] runs in the worker fiber as soon
   as task [i] finishes. Tasks are spawned in list order, and the engine's
   (time, seq) queue makes every interleaving deterministic. [base] offsets
   the task indices reported to [on_done] (and the worker names) when the
   caller runs a prefix of the tasks itself. *)
let scatter ?(base = 0) eng tasks ~on_done =
  let group = Engine.self_group eng in
  List.iteri
    (fun i f ->
      let i = i + base in
      Engine.spawn eng ~group
        ~name:(Printf.sprintf "join.worker.%d" i)
        (fun () -> on_done i (f ())))
    tasks

let all eng tasks =
  match tasks with
  | [] -> []
  | [ f ] -> [ f () ]
  | f0 :: rest ->
      let n = 1 + List.length rest in
      let results = Array.make n None in
      let remaining = ref n in
      let iv = Ivar.create () in
      let settle i r =
        results.(i) <- Some r;
        decr remaining;
        if !remaining = 0 then Ivar.fill iv ()
      in
      (* The caller's fiber runs task 0 itself and only tasks 1..n-1 get
         worker fibers: [all] waits for every task anyway, and under full
         spawning task 0's leading segment would execute first regardless
         (workers start in spawn order when the caller suspends), so the
         event trajectory is the same while one fiber per scatter is
         saved. Note this means an exception from task 0 propagates in
         the calling fiber. *)
      scatter ~base:1 eng rest ~on_done:settle;
      settle 0 (f0 ());
      if !remaining > 0 then Ivar.read eng iv;
      Array.to_list results
      |> List.map (function Some r -> r | None -> assert false)

(* Hedged first-some over option-returning tasks: task 0 starts now, task
   [i] is held back [i * delay] and skipped entirely if an earlier task
   already produced [Some]. The first [Some] wins; [None] settles only
   once every task that was actually launched settled with [None] and no
   launch remains pending. Losers are not torn down — they run to
   completion in the caller's group and their results are discarded — the
   cooperative-cancellation discipline duplicate-safe protocols allow.
   Single-task hedges run inline, like {!all}'s fast path. *)
let hedged eng ~delay tasks =
  match tasks with
  | [] -> None
  | [ f ] -> f ()
  | tasks ->
      let n = List.length tasks in
      let iv = Ivar.create () in
      let launched = ref 0 in
      let outstanding = ref 0 in
      let group = Engine.self_group eng in
      let settle r =
        match r with
        | Some _ -> ignore (Ivar.try_fill iv r)
        | None ->
            decr outstanding;
            if !outstanding = 0 && !launched = n then
              ignore (Ivar.try_fill iv None)
      in
      List.iteri
        (fun i f ->
          Engine.schedule eng ~delay:(float_of_int i *. delay) (fun () ->
              incr launched;
              (* An earlier task answering cancels this launch — the hedge
                 that never fires costs nothing. *)
              if not (Ivar.is_filled iv) then begin
                incr outstanding;
                Engine.spawn eng ~group
                  ~name:(Printf.sprintf "join.hedged.%d" i)
                  (fun () -> settle (f ()))
              end))
        tasks;
      Ivar.read eng iv

let first_error eng tasks =
  match tasks with
  | [] -> Ok []
  | [ f ] -> ( match f () with Ok v -> Ok [ v ] | Error e -> Error e)
  | tasks ->
      let n = List.length tasks in
      let results = Array.make n None in
      let remaining = ref n in
      let iv = Ivar.create () in
      scatter eng tasks ~on_done:(fun i r ->
          results.(i) <- Some r;
          decr remaining;
          match r with
          | Error e -> ignore (Ivar.try_fill iv (Error e))
          | Ok _ -> if !remaining = 0 then ignore (Ivar.try_fill iv (Ok ())));
      (match Ivar.read eng iv with
      | Error e -> Error e
      | Ok () ->
          Ok
            (Array.to_list results
            |> List.filter_map (function
                 | Some (Ok v) -> Some v
                 | Some (Error _) | None -> None)))

let quorum eng ~k tasks =
  let n = List.length tasks in
  if k <= 0 then begin
    (* Trivially satisfied; still run the tasks (their effects may matter)
       but do not wait for them. *)
    scatter eng tasks ~on_done:(fun _ _ -> ());
    Ok []
  end
  else begin
    let results = Array.make (max n 1) None in
    let remaining = ref n in
    let successes = ref 0 in
    let iv = Ivar.create () in
    let settle i r =
      results.(i) <- Some r;
      decr remaining;
      (match r with
      | Ok _ ->
          incr successes;
          if !successes >= k then ignore (Ivar.try_fill iv true)
      | Error _ -> ());
      if !remaining = 0 then ignore (Ivar.try_fill iv (!successes >= k))
    in
    (match tasks with
    | [] -> ignore (Ivar.try_fill iv false)
    | [ f ] -> settle 0 (f ())
    | tasks -> scatter eng tasks ~on_done:settle);
    if Ivar.read eng iv then
      Ok
        (Array.to_list results
        |> List.filter_map (function
             | Some (Ok v) -> Some v
             | Some (Error _) | None -> None))
    else
      Error
        (Array.to_list results
        |> List.filter_map (function
             | Some (Error e) -> Some e
             | Some (Ok _) | None -> None))
  end
