let error_str = Net.Rpc.error_to_string

(* Cooperative termination: with the coordinator unreachable through the
   whole retry budget, look for commit evidence among peer stores before
   presuming abort. While this record reserves the object here, no later
   action can have committed anywhere — its prepare would be refused by
   this very reservation — so a peer state stamped by [action] proves the
   decision was commit, and its absence on every reachable peer makes
   presumed abort safe (a commit nobody holds was never acknowledged). *)
let resolve_by_peers rt ~node ~action =
  let sh = Atomic.store_host rt in
  let net = Atomic.network rt in
  let log = Store_host.log sh node in
  match Store.Intent_log.prepared log ~action with
  | None -> ()
  | Some { Store.Intent_log.writes; _ } ->
      let stamped_by_action peer uid =
        match Store_host.read sh ~from:node ~store:peer uid with
        | Ok (Some s) ->
            String.equal
              s.Store.Object_state.version.Store.Version.committed_by action
        | Ok None | Error _ -> false
      in
      let committed =
        List.exists
          (fun (uid, _) ->
            List.exists
              (fun peer ->
                (not (String.equal peer node))
                && Net.Network.is_up net peer
                && stamped_by_action peer uid)
              (Store_host.nodes sh))
          writes
      in
      if committed then
        ignore (Store_host.commit sh ~from:node ~store:node ~action)
      else Store.Intent_log.resolve log ~action

let resolve_in_doubt rt ~node ?(retry_delay = 2.0) () =
  let sh = Atomic.store_host rt in
  let eng = Atomic.engine rt in
  let log = Store_host.log sh node in
  let net = Atomic.network rt in
  let tracef fmt =
    Sim.Trace.recordf (Net.Network.trace net) ~now:(Sim.Engine.now eng)
      ~tag:"recovery" fmt
  in
  let apply action =
    match Store.Intent_log.prepared log ~action with
    | None -> ()
    | Some { Store.Intent_log.coordinator; _ } -> (
        let outcome =
          Net.Retry.run (Atomic.retry rt) ~dst:coordinator
            ~op:"recovery.decision"
            (Net.Retry.policy ~attempts:60 ~base:retry_delay ~factor:1.5
               ~max_delay:8.0 ())
            (fun () ->
              match Atomic.query_decision rt ~from:node ~coordinator ~action with
              | Ok Atomic.D_commit -> Ok `Commit
              | Ok (Atomic.D_abort | Atomic.D_unknown) -> Ok `Abort
              | Ok Atomic.D_active -> Error "coordinator still deciding"
              | Error e -> Error (error_str e))
        in
        match outcome with
        | Ok `Commit -> (
            tracef "%s: in-doubt %s -> commit" node action;
            (* Apply through the local commit path (idempotent). *)
            match Store_host.commit sh ~from:node ~store:node ~action with
            | Ok () -> ()
            | Error _ ->
                (* Local call can only fail if we crashed again;
                   the next recovery will retry. *)
                ())
        | Ok `Abort ->
            tracef "%s: in-doubt %s -> presumed abort" node action;
            Store.Intent_log.resolve log ~action
        | Error _ ->
            (* Retry budget exhausted with the coordinator unreachable or
               stuck deciding: settle from peer commit evidence, else
               presumed abort (§9.5) rather than holding the prepared
               write forever. *)
            tracef "%s: in-doubt %s -> peer evidence (retry budget spent)"
              node action;
            resolve_by_peers rt ~node ~action)
  in
  let rec drain () =
    match Store.Intent_log.in_doubt log with
    | [] -> ()
    | actions ->
        List.iter apply actions;
        drain ()
  in
  drain ()

let attach rt ~node =
  Net.Network.on_recover (Atomic.network rt) node (fun () ->
      resolve_in_doubt rt ~node ())

(* Break write reservations whose coordinator is partitioned away.
   [guard_prepares] resolves in-doubt records when the coordinator
   {e crashes}; a partition severs the coordinator's abort fan-out without
   killing it, so its reservation would block every future writer of the
   object until the cut heals — and nothing retries the withdrawal after
   healing. When a prepare is refused by such a reservation, probe the
   blocker's coordinator: a commit decision is applied locally, anything
   else is presumed abort; if the coordinator stays unreachable through
   the probe budget, presume abort rather than reserve the object
   forever (backward validation keeps a wrongly-broken reservation safe —
   a stale copy is caught at the next prepare). Reachable coordinators
   are never probed: live contention resolves through the normal
   fan-out, so healthy runs see no extra traffic. *)
let break_stale_reservations rt ?(tries = 5) ?(retry_delay = 2.0) () =
  let sh = Atomic.store_host rt in
  let net = Atomic.network rt in
  let eng = Atomic.engine rt in
  let probing = Hashtbl.create 16 in
  Store_host.set_reservation_hook sh (fun ~node ~blockers ->
      List.iter
        (fun (action, coordinator) ->
          let key = (node, action) in
          if
            (not (Hashtbl.mem probing key))
            && not (Net.Network.reachable net node coordinator)
          then begin
            Hashtbl.add probing key ();
            Net.Network.spawn_on net node
              ~name:(Printf.sprintf "%s.break-reservation:%s" node action)
              (fun () ->
                let log = Store_host.log sh node in
                let tracef fmt =
                  Sim.Trace.recordf
                    (Net.Network.trace net)
                    ~now:(Sim.Engine.now eng) ~tag:"recovery" fmt
                in
                let outcome =
                  Net.Retry.run (Atomic.retry rt) ~dst:coordinator
                    ~op:"recovery.break_reservation"
                    (Net.Retry.policy ~attempts:(tries + 1) ~base:retry_delay
                       ~factor:1.5 ~max_delay:8.0 ())
                    (fun () ->
                      match Store.Intent_log.prepared log ~action with
                      | None -> Ok `Withdrawn
                      | Some _ -> (
                          match
                            Atomic.query_decision rt ~from:node ~coordinator
                              ~action
                          with
                          | Ok Atomic.D_commit -> Ok `Commit
                          | Ok (Atomic.D_abort | Atomic.D_unknown) -> Ok `Abort
                          | Ok Atomic.D_active -> Ok `Live
                          | Error e -> Error (error_str e)))
                in
                (match outcome with
                | Ok `Withdrawn ->
                    (* Withdrawn through the normal path meanwhile. *)
                    ()
                | Ok `Live ->
                    (* The cut healed and the action is still live: its own
                       completion will withdraw. *)
                    ()
                | Ok `Commit ->
                    tracef "%s: blocked reservation %s -> commit" node action;
                    ignore (Store_host.commit sh ~from:node ~store:node ~action)
                | Ok `Abort ->
                    tracef "%s: blocked reservation %s -> presumed abort" node
                      action;
                    Store.Intent_log.resolve log ~action
                | Error _ ->
                    tracef
                      "%s: reservation %s coordinator unreachable -> peer \
                       evidence, else presumed abort"
                      node action;
                    resolve_by_peers rt ~node ~action);
                Hashtbl.remove probing key)
          end)
        blockers)

let guard_prepares rt =
  let sh = Atomic.store_host rt in
  let net = Atomic.network rt in
  Store_host.set_prepare_hook sh (fun ~node ~action ~coordinator ->
      ignore
        (Net.Network.watch_crash net coordinator (fun () ->
             Net.Network.spawn_on net node
               ~name:(Printf.sprintf "%s.indoubt:%s" node action) (fun () ->
                 let log = Store_host.log sh node in
                 let outcome =
                   Net.Retry.run (Atomic.retry rt) ~dst:coordinator
                     ~op:"recovery.indoubt"
                     (Net.Retry.policy ~attempts:65 ~base:5.0 ~factor:1.2
                        ~max_delay:8.0 ())
                     (fun () ->
                       match Store.Intent_log.prepared log ~action with
                       | None -> Ok `Resolved
                       | Some _ -> (
                           match
                             Atomic.query_decision rt ~from:node ~coordinator
                               ~action
                           with
                           | Ok Atomic.D_commit -> Ok `Commit
                           | Ok (Atomic.D_abort | Atomic.D_unknown) ->
                               Ok `Abort
                           | Ok Atomic.D_active ->
                               Error "coordinator still deciding"
                           | Error e -> Error (error_str e)))
                 in
                 match outcome with
                 | Ok `Resolved -> () (* resolved through the normal path *)
                 | Ok `Commit ->
                     ignore (Store_host.commit sh ~from:node ~store:node ~action)
                 | Ok `Abort -> Store.Intent_log.resolve log ~action
                 | Error _ ->
                     (* The coordinator never came back: settle from peer
                        commit evidence, else presume abort rather than
                        reserve the object forever. *)
                     resolve_by_peers rt ~node ~action))))
