lib/workload/exp_partition.mli: Table
