open Naming

(* tab-autonomic: health-driven Exclude/Include of a browned store.

   The same gray-failure regime as tab-brownout — St spans two stores on
   a LAN-like fabric, one store browned out (probabilistic 15-28s
   service-time inflation, below every timeout, so only the latency
   plane can see the sickness) — but the brownout is HARSH (most
   messages inflated) and HEALS mid-run. Four modes over the same seed
   and schedule:

   - [baseline]  : no fault, same knobs as [autonomic] — the yardstick;
   - [unhedged]  : the fault with no countermeasure at all;
   - [hedged]    : [hedged_rpc] only. The backup copy re-sends to the
                   SAME browned store, so under a harsh brownout both
                   copies draw the inflation and the tail barely moves —
                   hedging is built for rare inflation, not a store that
                   is simply sick;
   - [autonomic] : [hedged_rpc] plus the §16 controller. After the
                   hysteresis window the browned store is Excluded from
                   every [St]; commits then scatter to the healthy store
                   only and steady-state latency returns to baseline.
                   When the brownout heals, the controller re-Includes
                   the store through the catch-up fence, and the run
                   ends with both stores back in [St] holding identical
                   committed state.

   The steady-state window [steady_lo, steady_hi] sits inside the
   brownout, late enough that the controller's exclusion (probe cadence
   x hysteresis, with probe round-trips themselves inflated) has
   settled. The pins (test_autonomic.ml): autonomic steady-state p99 <=
   1.3x baseline p99; hedged-only >= 2x baseline p99; the healed store
   is back in St with byte-identical committed state and a clean
   intent log. *)

let stores = [ "t1"; "t2" ]
let browned = "t1"
let brownout_at = 2.0
let brownout_heals = 400.0
let steady_lo = 200.0
let steady_hi = 390.0

type mode = Baseline | Unhedged | Hedged | Autonomic

let mode_label = function
  | Baseline -> "baseline"
  | Unhedged -> "unhedged"
  | Hedged -> "hedged"
  | Autonomic -> "autonomic"

type sample = {
  a_commits : int;
  a_p50 : float;
  a_p99 : float;
  a_steady_p99 : float;  (** commits begun inside the steady window *)
  a_excludes : int;
  a_includes : int;
  a_st_final : string list;  (** St of the object at end of run, sorted *)
  a_consistent : bool;
      (** every St member holds byte-identical committed state and an
          empty intent log *)
}

let episode ~mode ~prob ~commits ~seed () =
  let hedged = match mode with Baseline | Autonomic | Hedged -> true | Unhedged -> false in
  let autonomic = match mode with Baseline | Autonomic -> true | _ -> false in
  let w =
    Service.create ~seed ~hedged_rpc:hedged ~autonomic_membership:autonomic
      ~latency:(fun rng -> Sim.Rng.uniform rng 0.05 0.15)
      {
        Service.gvd_node = "ns";
        gvd_nodes = [];
        server_nodes = [ "alpha" ];
        store_nodes = stores;
        client_nodes = [ "c1" ];
      }
  in
  let uid =
    Service.create_object w ~name:"obj" ~impl:"counter" ~sv:[ "alpha" ]
      ~st:stores ()
  in
  Service.run ~until:1.0 w;
  let eng = Service.engine w in
  let m = Service.metrics w in
  (match mode with
  | Baseline -> ()
  | _ ->
      Net.Fault.brownout_for (Service.network w) ~at:brownout_at
        ~duration:(brownout_heals -. brownout_at) ~prob ~lo:15.0 ~hi:28.0
        browned);
  let crng = Sim.Rng.split (Sim.Engine.rng eng) in
  let ok = ref 0 in
  Service.spawn_client w "c1" (fun () ->
      for _ = 1 to commits do
        let t0 = Sim.Engine.now eng in
        (match
           Service.with_bound w ~client:"c1" ~scheme:Scheme.Independent
             ~policy:Replica.Policy.Single_copy_passive ~uid
             (fun act group -> ignore (Service.invoke w group ~act "add 1"))
         with
        | Ok () ->
            incr ok;
            let lat = Sim.Engine.now eng -. t0 in
            Sim.Metrics.observe m "commit.latency" lat;
            if t0 >= steady_lo && t0 <= steady_hi then
              Sim.Metrics.observe m "commit.steady_latency" lat
        | Error _ -> ());
        Sim.Engine.sleep eng (Sim.Rng.uniform crng 2.0 5.0)
      done);
  Service.run w;
  let st_final =
    List.sort String.compare (Router.current_st (Service.router w) uid)
  in
  let sh = Service.store_host w in
  let consistent =
    match st_final with
    | [] -> false
    | first :: _ ->
        let state_of n =
          Store.Object_store.read (Action.Store_host.objects sh n) uid
        in
        let base = state_of first in
        base <> None
        && List.for_all
             (fun n ->
               (match (state_of n, base) with
               | Some a, Some b ->
                   String.equal a.Store.Object_state.payload
                     b.Store.Object_state.payload
                   && Store.Version.compare a.Store.Object_state.version
                        b.Store.Object_state.version
                      = 0
               | _ -> false)
               && Store.Intent_log.in_doubt (Action.Store_host.log sh n) = [])
             st_final
  in
  {
    a_commits = !ok;
    a_p50 = Sim.Metrics.percentile m "commit.latency" 50.0;
    a_p99 = Sim.Metrics.percentile m "commit.latency" 99.0;
    a_steady_p99 = Sim.Metrics.percentile m "commit.steady_latency" 99.0;
    a_excludes = Sim.Metrics.counter m "autonomic.excludes";
    a_includes = Sim.Metrics.counter m "autonomic.includes";
    a_st_final = st_final;
    a_consistent = consistent;
  }

(* The acceptance pins read this triple: steady-state p99 inside the
   brownout, autonomic vs hedging-only, both against the no-fault
   baseline with identical knobs and seed. *)
let pins ?(prob = 0.7) ?(commits = 130) ?(seed = 47L) () =
  let baseline = episode ~mode:Baseline ~prob ~commits ~seed () in
  let hedged = episode ~mode:Hedged ~prob ~commits ~seed () in
  let auto = episode ~mode:Autonomic ~prob ~commits ~seed () in
  (baseline, hedged, auto)

let run () =
  let prob = 0.7 in
  let commits = 130 in
  let seed = 47L in
  let rows =
    List.map
      (fun mode ->
        let s = episode ~mode ~prob ~commits ~seed () in
        [
          mode_label mode;
          Table.cell_i s.a_commits;
          Table.cell_f s.a_p50;
          Table.cell_f s.a_p99;
          Table.cell_f s.a_steady_p99;
          Table.cell_i s.a_excludes;
          Table.cell_i s.a_includes;
          String.concat "+" s.a_st_final;
          (if s.a_consistent then "yes" else "NO");
        ])
      [ Baseline; Unhedged; Hedged; Autonomic ]
  in
  Table.make
    ~title:
      "tab-autonomic: health-driven Exclude/Include of a browned store (§16)"
    ~columns:
      [
        "mode";
        "commits";
        "p50";
        "p99";
        "steady p99";
        "excludes";
        "includes";
        "final St";
        "consistent";
      ]
    ~notes:
      [
        "One client, 130 sequential commits, St = {t1, t2}, with t1";
        "browned out over [2, 400): each message into or out of it gains";
        "U(15,28)s with probability 0.7 — alive, voting, and sick.";
        "Hedging alone re-sends the backup to the same browned store, so";
        "a harsh brownout defeats it (both copies draw the inflation).";
        "The autonomic controller probes the stores every 5s on a private";
        "health tracker; after 3 consecutive slow rounds (and quorum,";
        "trivially 1 in this one-server world) it Excludes t1 through the";
        "optimistic validated round — commits then pay only the healthy";
        "store, and the steady-state p99 (commits begun in [200, 390])";
        "returns to the no-fault baseline. When the brownout heals, the";
        "controller re-Includes t1 behind the catch-up fence: the run";
        "ends with St = {t1, t2}, byte-identical committed states and";
        "empty intent logs. Pins (test_autonomic.ml): autonomic steady";
        "p99 <= 1.3x baseline; hedged-only >= 2x baseline; final St";
        "contains t1 again with the consistency audit clean.";
      ]
    rows
