(** The passive representation of a persistent object: a serialised
    payload plus the version stamp of the committing action.

    Objects serialise themselves to strings (the simulator's stand-in for
    Arjuna's instance-variable marshalling); equality of payloads is how
    the mutual-consistency invariant is checked across store replicas. *)

type t = { payload : string; version : Version.t }

val make : payload:string -> version:Version.t -> t

val initial : string -> t
(** [initial payload] is a genesis state. *)

val equal : t -> t -> bool
(** Byte-identical payload and equal version: the paper's "mutually
    consistent" test for store replicas. *)

val newer_than : t -> t -> bool
(** Compare versions. *)

val pp : Format.formatter -> t -> unit

val bytes : t -> int
(** Payload size in bytes — what a full-state copy of this state ships
    over the wire (the [commit.bytes_shipped] accounting unit). *)
