(* Tests for the autonomic membership plane (§16): the controller's
   decision doctrine — hysteresis, quorum, flap-damping cooldown,
   heal-then-re-Include — driven deterministically through fabricated
   drivers, plus the tab-autonomic tier-1 pins (autonomic steady-state
   p99 back at baseline under a harsh brownout, healed store re-included
   consistently) and the off-path identity of the sibling-hedge knob. *)

open Naming
module Au = Replica.Autonomic

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Fabricated worlds: a bare network, controllers on [servers], and
   injected drivers. The probe driver sleeps [slow_rtt] for stores the
   [slow] closure flags (just past the 10.0 probe budget, so the
   controller records a censored observation) and [fast_rtt] otherwise;
   exclude/include drivers count their invocations. *)

let slow_rtt = 12.0
let fast_rtt = 0.1

type fab = {
  f_eng : Sim.Engine.t;
  f_net : Net.Network.t;
  f_plane : Au.t;
  f_excl : int ref;
  f_incl : int ref;
}

let fab ?config ?(servers = [ "s1" ]) ?(exclude_n = 1) ~slow () =
  let eng = Sim.Engine.create ~seed:7L () in
  let net = Net.Network.create eng in
  List.iter (Net.Network.add_node net) (servers @ [ "t1"; "t2" ]);
  let rpc = Net.Rpc.create net in
  let excl = ref 0 and incl = ref 0 in
  let deps =
    {
      Au.d_rpc = rpc;
      d_stores = [ "t1"; "t2" ];
      d_servers = servers;
      d_probe =
        (fun ~from ~store ->
          Sim.Engine.sleep eng (if slow ~from ~store then slow_rtt else fast_rtt);
          Ok ());
      d_exclude =
        (fun ~from:_ ~store:_ ->
          incr excl;
          exclude_n);
      d_include = (fun ~store:_ -> incr incl);
    }
  in
  let plane = Au.create ?config deps in
  { f_eng = eng; f_net = net; f_plane = plane; f_excl = excl; f_incl = incl }

(* One probe-and-decide round for [node]'s controller, run to
   completion (ticks must run in a fiber on the controller's node). *)
let tick f node c =
  Net.Network.spawn_on f.f_net node ~name:"tick" (fun () ->
      Au.tick f.f_plane c);
  Sim.Engine.run f.f_eng

let metric f name = Sim.Metrics.counter (Net.Network.metrics f.f_net) name

(* ------------------------------------------------------------------ *)
(* Hysteresis: K-1 consecutive slow rounds never exclude; the Kth
   does. *)

let test_hysteresis_gate () =
  let f = fab ~slow:(fun ~from:_ ~store -> String.equal store "t1") () in
  let c = Au.attach f.f_plane "s1" in
  let k = (Au.config f.f_plane).Au.au_hysteresis in
  (* Tick until the streak sits one short of the bar: through all of it
     the exclude driver must never fire (the EWMA needs a few rounds to
     cross the slow floor before the streak even starts — that warm-up
     is part of the hysteresis, not an exception to it). *)
  let rounds = ref 0 in
  while Au.slow_streak f.f_plane "s1" "t1" < k - 1 && !rounds < 20 do
    tick f "s1" c;
    incr rounds
  done;
  check_int "streak reached K-1" (k - 1) (Au.slow_streak f.f_plane "s1" "t1");
  Alcotest.(check (list string))
    "K-1 slow rounds: no exclusion" [] (Au.excluded f.f_plane "s1");
  check_int "K-1 slow rounds: driver never called" 0 !(f.f_excl);
  check_int "membership untouched" 0 (Au.epoch f.f_plane "s1");
  tick f "s1" c;
  Alcotest.(check (list string))
    "Kth slow round excludes" [ "t1" ] (Au.excluded f.f_plane "s1");
  check_int "one exclusion driven" 1 !(f.f_excl);
  check_int "epoch bumped once" 1 (Au.epoch f.f_plane "s1");
  check_int "healthy peer untouched" 0 (Au.slow_streak f.f_plane "s1" "t2")

(* ------------------------------------------------------------------ *)
(* Quorum: a single observer among two controllers never excludes —
   only s1's probes see t1 slow, so s2's digest refuses to confirm and
   the proposal dies at the quorum gate every round. *)

let test_quorum_gate () =
  let f =
    fab
      ~servers:[ "s1"; "s2" ]
      ~slow:(fun ~from ~store ->
        String.equal from "s1" && String.equal store "t1")
      ()
  in
  let c1 = Au.attach f.f_plane "s1" in
  let c2 = Au.attach f.f_plane "s2" in
  for _ = 1 to 15 do
    tick f "s1" c1;
    tick f "s2" c2
  done;
  check_bool "streak well past the bar" true
    (Au.slow_streak f.f_plane "s1" "t1"
    >= (Au.config f.f_plane).Au.au_hysteresis);
  Alcotest.(check (list string))
    "lone observer never excludes" [] (Au.excluded f.f_plane "s1");
  check_int "exclude driver never called" 0 !(f.f_excl);
  check_bool "proposals died at the quorum gate" true
    (metric f "autonomic.quorum_refused" > 0)

(* ------------------------------------------------------------------ *)
(* Heal hysteresis, flap damping, and cooldown expiry, in one life
   cycle: exclude the sick store, heal it (re-Include only after K
   healthy rounds), sicken it again (cooldown refuses the re-Exclude),
   then let the cooldown lapse (the re-Exclude goes through). *)

let test_flap_damping_cycle () =
  let sick = ref true in
  let f =
    fab
      ~config:{ Au.default_config with Au.au_cooldown = 600.0 }
      ~slow:(fun ~from:_ ~store -> !sick && String.equal store "t1")
      ()
  in
  let c = Au.attach f.f_plane "s1" in
  let until cond limit =
    let rounds = ref 0 in
    while (not (cond ())) && !rounds < limit do
      tick f "s1" c;
      incr rounds
    done
  in
  until (fun () -> Au.excluded f.f_plane "s1" <> []) 25;
  Alcotest.(check (list string))
    "sick store excluded" [ "t1" ] (Au.excluded f.f_plane "s1");
  check_int "no include yet" 0 !(f.f_incl);
  (* Heal. One healthy round must not re-include (heal hysteresis). *)
  sick := false;
  tick f "s1" c;
  Alcotest.(check (list string))
    "one healthy round is not healed" [ "t1" ] (Au.excluded f.f_plane "s1");
  check_int "include driver not yet called" 0 !(f.f_incl);
  until (fun () -> Au.excluded f.f_plane "s1" = []) 15;
  check_int "catch-up re-Include driven once" 1 !(f.f_incl);
  check_int "epoch counts both changes" 2 (Au.epoch f.f_plane "s1");
  (* Flap: sick again immediately. The cooldown (600s, far beyond these
     rounds) must damp every re-Exclude proposal. *)
  sick := true;
  until
    (fun () ->
      Au.slow_streak f.f_plane "s1" "t1"
      >= (Au.config f.f_plane).Au.au_hysteresis)
    25;
  for _ = 1 to 3 do
    tick f "s1" c
  done;
  Alcotest.(check (list string))
    "cooldown damps the flap" [] (Au.excluded f.f_plane "s1");
  check_int "no second exclusion yet" 1 !(f.f_excl);
  check_bool "damping visible in metrics" true (metric f "autonomic.damped" > 0);
  (* Cooldown lapses: the still-sick store goes back out. *)
  Net.Network.spawn_on f.f_net "s1" ~name:"lapse" (fun () ->
      Sim.Engine.sleep f.f_eng 650.0);
  Sim.Engine.run f.f_eng;
  until (fun () -> Au.excluded f.f_plane "s1" <> []) 10;
  Alcotest.(check (list string))
    "re-excluded after the cooldown" [ "t1" ] (Au.excluded f.f_plane "s1");
  check_int "second exclusion driven" 2 !(f.f_excl)

(* ------------------------------------------------------------------ *)
(* A proposal whose exclude driver commits nothing (a commit's own §4.2
   exclusion beat it, or the store is the last copy) resets the streak:
   the next proposal is a full hysteresis window away, not next round. *)

let test_failed_exclude_backs_off () =
  let f =
    fab ~exclude_n:0 ~slow:(fun ~from:_ ~store -> String.equal store "t1") ()
  in
  let c = Au.attach f.f_plane "s1" in
  let rounds = ref 0 in
  while !(f.f_excl) = 0 && !rounds < 25 do
    tick f "s1" c;
    incr rounds
  done;
  check_int "proposal fired" 1 !(f.f_excl);
  Alcotest.(check (list string))
    "nothing excluded" [] (Au.excluded f.f_plane "s1");
  check_int "streak reset by the refusal" 0 (Au.slow_streak f.f_plane "s1" "t1");
  check_int "no membership change" 0 (Au.epoch f.f_plane "s1");
  (* The next K-1 rounds rebuild the streak without proposing. *)
  let k = (Au.config f.f_plane).Au.au_hysteresis in
  for _ = 1 to k - 1 do
    tick f "s1" c
  done;
  check_int "no re-proposal inside the window" 1 !(f.f_excl);
  tick f "s1" c;
  check_int "re-proposal a full window later" 2 !(f.f_excl)

(* ------------------------------------------------------------------ *)
(* tab-autonomic: the tier-1 pins *)

let test_autonomic_pins () =
  let baseline, hedged, auto = Workload.Exp_autonomic.pins () in
  check_int "baseline commits all landed" 130
    baseline.Workload.Exp_autonomic.a_commits;
  check_int "autonomic commits all landed" 130 auto.a_commits;
  check_int "a healthy world provokes no exclusion" 0 baseline.a_excludes;
  check_bool
    (Printf.sprintf "autonomic steady p99 %.2f <= 1.3x baseline %.2f"
       auto.a_steady_p99 baseline.a_steady_p99)
    true
    (auto.a_steady_p99 <= 1.3 *. baseline.a_steady_p99);
  check_bool
    (Printf.sprintf "hedging alone %.2f >= 2x baseline %.2f" hedged.a_steady_p99
       baseline.a_steady_p99)
    true
    (hedged.a_steady_p99 >= 2.0 *. baseline.a_steady_p99);
  check_bool "the sick store was excluded" true (auto.a_excludes >= 1);
  check_bool "the healed store was re-included" true (auto.a_includes >= 1);
  Alcotest.(check (list string))
    "final St holds both stores again" [ "t1"; "t2" ] auto.a_st_final;
  check_bool "post-catch-up states byte-identical, intent logs clean" true
    auto.a_consistent

(* ------------------------------------------------------------------ *)
(* Off-path identity: with healthy stores no hedge ever fires, so
   routing the backup copy to a sibling is a latent change — the whole
   trace must be byte-identical with the knob on. *)

let sibling_trace ~hedge () =
  let w =
    Service.create ~seed:53L ~hedged_rpc:true ~hedge_to_sibling:hedge
      ~latency:(fun rng -> Sim.Rng.uniform rng 0.05 0.15)
      {
        Service.gvd_node = "ns";
        gvd_nodes = [];
        server_nodes = [ "alpha" ];
        store_nodes = [ "t1"; "t2" ];
        client_nodes = [ "c1" ];
      }
  in
  let uid =
    Service.create_object w ~name:"obj" ~impl:"counter" ~sv:[ "alpha" ]
      ~st:[ "t1"; "t2" ] ()
  in
  Service.run ~until:1.0 w;
  let eng = Service.engine w in
  let crng = Sim.Rng.split (Sim.Engine.rng eng) in
  Service.spawn_client w "c1" (fun () ->
      for _ = 1 to 12 do
        ignore
          (Service.with_bound w ~client:"c1" ~scheme:Scheme.Independent
             ~policy:Replica.Policy.Single_copy_passive ~uid
             (fun act group -> ignore (Service.invoke w group ~act "add 1")));
        Sim.Engine.sleep eng (Sim.Rng.uniform crng 1.0 3.0)
      done);
  Service.run w;
  Sim.Trace.entries (Service.trace w)

let test_sibling_hedge_off_path_identical () =
  let off = sibling_trace ~hedge:false () in
  let on = sibling_trace ~hedge:true () in
  check_int "same trace length" (List.length off) (List.length on);
  check_bool "byte-identical traces with the knob on" true (off = on)

(* ------------------------------------------------------------------ *)
(* Property: random brownout/heal schedules on the full autonomic world
   — every commit lands, and whatever membership state the run ends in
   (store back in, or still out), the chaos audit is clean: St members
   mutually consistent, no residue, no leaked fibers. *)

let prop_autonomic_random_schedules =
  QCheck.Test.make ~count:8
    ~name:"random brownout/heal schedules leave the autonomic world clean"
    QCheck.(
      triple (int_range 1 100_000) (float_range 0.2 0.8)
        (float_range 30.0 300.0))
    (fun (seed, prob, duration) ->
      let w =
        Service.create ~seed:(Int64.of_int seed) ~hedged_rpc:true
          ~hedge_to_sibling:true ~autonomic_membership:true
          ~latency:(fun rng -> Sim.Rng.uniform rng 0.05 0.15)
          {
            Service.gvd_node = "ns";
            gvd_nodes = [];
            server_nodes = [ "alpha" ];
            store_nodes = [ "t1"; "t2" ];
            client_nodes = [ "c1" ];
          }
      in
      let uid =
        Service.create_object w ~name:"obj" ~impl:"counter" ~sv:[ "alpha" ]
          ~st:[ "t1"; "t2" ] ()
      in
      Service.run ~until:1.0 w;
      Net.Fault.brownout_for (Service.network w) ~at:2.0 ~duration ~prob
        ~lo:15.0 ~hi:28.0 "t1";
      let eng = Service.engine w in
      let crng = Sim.Rng.split (Sim.Engine.rng eng) in
      let ok = ref 0 in
      Service.spawn_client w "c1" (fun () ->
          for _ = 1 to 20 do
            (match
               Service.with_bound w ~client:"c1" ~scheme:Scheme.Independent
                 ~policy:Replica.Policy.Single_copy_passive ~uid
                 (fun act group -> ignore (Service.invoke w group ~act "add 1"))
             with
            | Ok () -> incr ok
            | Error _ -> ());
            Sim.Engine.sleep eng (Sim.Rng.uniform crng 2.0 5.0)
          done);
      Service.run w;
      !ok = 20 && Workload.Audit.chaos w = [])

let suite =
  [
    ( "autonomic",
      [
        Alcotest.test_case "K-1 slow rounds never exclude" `Quick
          test_hysteresis_gate;
        Alcotest.test_case "a lone observer never excludes" `Quick
          test_quorum_gate;
        Alcotest.test_case "heal hysteresis, flap damping, cooldown expiry"
          `Quick test_flap_damping_cycle;
        Alcotest.test_case "a refused exclude backs off a full window" `Quick
          test_failed_exclude_backs_off;
        Alcotest.test_case "pins: steady p99 at baseline, healed re-include"
          `Quick test_autonomic_pins;
        Alcotest.test_case "prob 0: sibling hedge knob is trace-identical"
          `Quick test_sibling_hedge_off_path_identical;
        Test_util.qcheck prop_autonomic_random_schedules;
      ] );
  ]
