type topology = {
  gvd_node : Net.Network.node_id;
  gvd_nodes : Net.Network.node_id list;
  server_nodes : Net.Network.node_id list;
  store_nodes : Net.Network.node_id list;
  client_nodes : Net.Network.node_id list;
}

type t = {
  w_eng : Sim.Engine.t;
  w_net : Net.Network.t;
  w_sh : Action.Store_host.t;
  w_art : Action.Atomic.runtime;
  w_srv : Replica.Server.runtime;
  w_grt : Replica.Group.runtime;
  w_router : Router.t;
  w_gvd : Gvd.t;
  w_binder : Binder.t;
  w_sup : Store.Uid.supply;
  w_topology : topology;
  w_autonomic : Replica.Autonomic.t option;
}

let engine t = t.w_eng
let network t = t.w_net
let atomic t = t.w_art
let store_host t = t.w_sh
let server_runtime t = t.w_srv
let group_runtime t = t.w_grt
let router t = t.w_router
let gvd t = t.w_gvd
let binder t = t.w_binder
let bind_cache t = Binder.cache t.w_binder
let metrics t = Net.Network.metrics t.w_net
let trace t = Net.Network.trace t.w_net
let uid_supply t = t.w_sup
let topology t = t.w_topology
let autonomic t = t.w_autonomic

let create ?seed ?latency ?(lock_timeout = 30.0) ?(use_exclude_write = true)
    ?(durable_naming = false) ?(cleanup_period = 0.0) ?(extra_impls = [])
    ?bind_cache_lease ?(naming_service_time = 0.0) ?(use_flush_delay = 5.0)
    ?(delta_shipping = false) ?(force_delta = false)
    ?(optimistic_commit = true) ?(pipelined_binds = true)
    ?(commit_batch_window = 2.0) ?(floor_gossip_period = 0.0)
    ?(hedged_rpc = false) ?(deadline_shedding = false)
    ?(degraded_trips = false) ?(hedge_to_sibling = false)
    ?(autonomic_membership = false) ?autonomic_config topology =
  let eng = Sim.Engine.create ?seed () in
  let net = Net.Network.create ?latency eng in
  let rpc = Net.Rpc.create net in
  let sh = Action.Store_host.create rpc in
  let rh = Action.Resource_host.create rpc in
  let art = Action.Atomic.make_runtime sh rh in
  let impls = Replica.Object_impl.registry () in
  List.iter (Replica.Object_impl.register impls)
    (Replica.Object_impl.stock_all @ extra_impls);
  let srv = Replica.Server.create art impls in
  Replica.Server.set_delta_shipping srv delta_shipping;
  Replica.Server.set_force_delta srv force_delta;
  Replica.Server.set_commit_batch_window srv commit_batch_window;
  (* Gray-failure resilience plane (§15), all off by default with the off
     path byte-identical: hedged scatter-gathers, server-side shedding of
     deadline-expired calls, and breaker trips on sustained slowness. *)
  Replica.Server.set_hedged_rpc srv hedged_rpc;
  Replica.Server.set_sibling_hedge srv hedge_to_sibling;
  Net.Rpc.set_shed_expired rpc deadline_shedding;
  Net.Retry.set_degraded_trips (Action.Atomic.retry art) degraded_trips;
  (* Stores sit below the implementation registry, so the op folder delta
     prepares resolve with is injected here. Installed regardless of the
     flag: it only ever runs for delta prepares, which only a
     delta-shipping copy-back emits. *)
  Action.Store_host.set_delta_applier sh (fun ~impl ~payload ~op ->
      match Hashtbl.find_opt impls impl with
      | None -> None
      | Some i -> (
          try Some (fst (i.Replica.Object_impl.apply payload op))
          with _ -> None));
  (* The primary naming node first, then the extra shards in declaration
     order — the shard-map node set. *)
  let naming_nodes =
    topology.gvd_node
    :: List.filter (fun n -> n <> topology.gvd_node) topology.gvd_nodes
  in
  let all_nodes =
    List.sort_uniq String.compare
      ((naming_nodes @ topology.server_nodes)
      @ topology.store_nodes @ topology.client_nodes)
  in
  (* Hook order per node matters: 2PC resolution must precede naming-level
     reintegration. *)
  List.iter
    (fun n ->
      Net.Network.add_node net n;
      Action.Store_host.add sh n;
      Action.Recovery.attach art ~node:n)
    all_nodes;
  Action.Recovery.guard_prepares art;
  Action.Recovery.break_stale_reservations art ();
  List.iter (fun n -> Replica.Server.install_host srv n) topology.server_nodes;
  (* The acknowledged-version vector is client-volatile state: entries of
     a crashed client die with it (a recovered incarnation starts from
     full-state shipping, the safe default). *)
  List.iter
    (fun c ->
      Net.Network.on_crash net c (fun () ->
          Replica.Oplog.drop_client (Replica.Server.oplog srv) c))
    topology.client_nodes;
  (* The shared per-store floor likewise never outlives the store's
     incarnation: a recovering store replays its intent log, so the
     conservative reset (floor staleness only ever costs a delta-miss
     retry) keeps the seeding trivially safe. *)
  List.iter
    (fun s ->
      Net.Network.on_crash net s (fun () ->
          Replica.Oplog.drop_store (Replica.Server.oplog srv) s))
    topology.store_nodes;
  let grt = Replica.Group.create srv ~sequencer:topology.gvd_node in
  let router =
    Router.create ~lock_timeout ~use_exclude_write ~durable:durable_naming
      ~service_time:naming_service_time art ~nodes:naming_nodes
  in
  let gvd = Router.primary router in
  if hedged_rpc then
    List.iter (fun g -> Gvd.set_hedged g true) (Router.gvds router);
  let cache =
    Option.map
      (fun lease -> Bind_cache.create ~lease (Net.Network.metrics net))
      bind_cache_lease
  in
  let bdr =
    Binder.create ?cache ~flush_delay:use_flush_delay ~optimistic_commit
      ~pipelined_binds router grt
  in
  List.iter
    (fun n -> Reintegration.attach_store_node bdr ~node:n ())
    topology.store_nodes;
  List.iter
    (fun n -> Reintegration.attach_server_node bdr ~node:n ())
    topology.server_nodes;
  if cleanup_period > 0.0 then
    List.iter (fun g -> Cleanup.start g ~period:cleanup_period art)
      (Router.gvds router);
  (* Low-rate acked-floor anti-entropy for quiet stores: one server-side
     daemon polls every store's committed counters into the shared floor
     ({!Replica.Groupcommit.anti_entropy}). The idle wait is a
     {!Sim.Engine.daemon_sleep}, so drain-mode [run] (and the chaos
     harness's quiescence check) ignores the parked daemon instead of
     spinning on it forever; the anti-entropy rounds themselves still run
     as ordinary foreground work. A crash of the gossiper node kills the
     fiber with its group, so recovery re-arms it for the new
     incarnation. *)
  if floor_gossip_period > 0.0 then (
    match topology.server_nodes with
    | [] -> ()
    | gossiper :: _ ->
        let spawn_gossip () =
          Net.Network.spawn_on net gossiper ~name:"floor-gossip" (fun () ->
              let gcp = Replica.Server.groupcommit srv in
              let rec loop () =
                Sim.Engine.daemon_sleep eng floor_gossip_period;
                Replica.Groupcommit.anti_entropy gcp ~from:gossiper
                  ~stores:topology.store_nodes;
                loop ()
              in
              loop ())
        in
        spawn_gossip ();
        Net.Network.on_recover net gossiper spawn_gossip);
  (* The autonomic membership plane (§16): one controller daemon per
     server node, probing the stores' latency health and driving the
     §4.2 Exclude/Include protocols for gray failures. The plane lives
     in [lib/replica], below the naming tier, so the naming-facing
     drivers are injected here: the probe is a floors read, the Exclude
     is the observer-driven validated round, and the re-Include spawns
     the optimistic catch-up reintegration on the healed store itself
     (it must run there — the include fence and state seed are the
     store's own atomic action). *)
  let autonomic =
    if not autonomic_membership then None
    else begin
      let deps =
        {
          Replica.Autonomic.d_rpc = rpc;
          d_stores = topology.store_nodes;
          d_servers = topology.server_nodes;
          d_probe =
            (fun ~from ~store ->
              match Action.Store_host.floors_all sh ~from ~stores:[ store ] with
              | [ (_, Ok _) ] -> Ok ()
              | [ (_, Error e) ] -> Error e
              | _ -> Error Net.Rpc.No_service);
          d_exclude =
            (fun ~from ~store ->
              Reintegration.exclude_store_now bdr ~from ~node:store ());
          d_include =
            (fun ~store ->
              Net.Network.spawn_on net store ~name:"autonomic-include"
                (fun () ->
                  Reintegration.reintegrate_store_now bdr ~optimistic:true
                    ~node:store ()));
        }
      in
      let plane = Replica.Autonomic.create ?config:autonomic_config deps in
      List.iter (fun n -> Replica.Autonomic.start plane n) topology.server_nodes;
      Some plane
    end
  in
  {
    w_eng = eng;
    w_net = net;
    w_sh = sh;
    w_art = art;
    w_srv = srv;
    w_grt = grt;
    w_router = router;
    w_gvd = gvd;
    w_binder = bdr;
    w_sup = Store.Uid.supply ();
    w_topology = topology;
    w_autonomic = autonomic;
  }

let create_object t ~name ~impl ?initial ~sv ~st () =
  let uid = Store.Uid.fresh t.w_sup ~label:name in
  let payload =
    match initial with
    | Some p -> p
    | None -> (
        (* Resolve through the stock + extra registry held by the server
           runtime: activation would do the same. *)
        match
          List.find_opt
            (fun i -> String.equal i.Replica.Object_impl.impl_name impl)
            Replica.Object_impl.stock_all
        with
        | Some i -> i.Replica.Object_impl.initial
        | None -> "")
  in
  List.iter
    (fun store ->
      Action.Store_host.seed t.w_sh store uid (Store.Object_state.initial payload))
    st;
  (* Registration is administrative world setup: apply it directly (on the
     owning shard) so objects exist before any client fiber can race the
     entry. *)
  Router.register_direct t.w_router ~uid ~name ~impl ~sv ~st;
  uid

let lookup t ~from name =
  match Router.lookup t.w_router ~from name with Ok r -> r | Error _ -> None

let with_bound ?deadline t ~client ~scheme ~policy ~uid body =
  Action.Atomic.atomically ?deadline t.w_art ~node:client (fun act ->
      match Binder.bind t.w_binder ~act ~scheme ~uid ~policy with
      | Error e -> raise (Action.Atomic.Abort (Binder.bind_error_to_string e))
      | Ok binding -> body act binding.Binder.bd_group)

let invoke t group ~act ?write op =
  match Replica.Group.invoke t.w_grt group ~act ?write op with
  | Ok reply -> reply
  | Error e ->
      raise (Action.Atomic.Abort (Format.asprintf "%a" Replica.Group.pp_invoke_error e))

let run ?until t =
  match until with
  | Some u -> Sim.Engine.run ~until:u t.w_eng
  | None -> Sim.Engine.run t.w_eng

let spawn_client t node f = Net.Network.spawn_on t.w_net node f
