lib/store/version.ml: Format Int Printf String
