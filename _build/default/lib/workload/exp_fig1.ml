type outcome = Both | None_ | Divergent

let trial ~seed ~atomic ~crash_at =
  let eng = Sim.Engine.create ~seed () in
  let net = Net.Network.create eng in
  let rpc = Net.Rpc.create net in
  let mc = Net.Multicast.create rpc in
  List.iter (Net.Network.add_node net) [ "b"; "seq"; "a1"; "a2" ];
  Net.Multicast.enable_sequencer mc ~node:"seq";
  let ch : string Net.Multicast.channel = Net.Multicast.channel "reply" in
  let got1 = ref false and got2 = ref false in
  Net.Multicast.listen mc ~node:"a1" ch (fun ~seq:_ _ -> got1 := true);
  Net.Multicast.listen mc ~node:"a2" ch (fun ~seq:_ _ -> got2 := true);
  (* B delivers the reply to the group; B crashes mid-delivery. *)
  Net.Network.spawn_on net "b" (fun () ->
      if atomic then
        ignore
          (Net.Multicast.cast_atomic mc ~from:"b" ~sequencer:"seq"
             ~members:[ "a1"; "a2" ] ch "reply")
      else
        Net.Multicast.cast_unreliable mc ~from:"b" ~members:[ "a1"; "a2" ] ch
          "reply");
  Sim.Engine.schedule eng ~delay:crash_at (fun () -> Net.Network.crash net "b");
  Sim.Engine.run eng;
  match (!got1, !got2) with
  | true, true -> Both
  | false, false -> None_
  | true, false | false, true -> Divergent

let run ?(trials = 300) ?(seed = 42L) () =
  let rng = Sim.Rng.create seed in
  let sweep atomic =
    let both = ref 0 and none = ref 0 and div = ref 0 in
    for i = 1 to trials do
      (* Crash instants spread across the sender's transmission window:
         the unreliable cast suspends for the 0.01 inter-send gap between
         the two point-to-point sends, so roughly half of these instants
         interrupt it between them. (Messages already handed to the
         network are delivered regardless — only the not-yet-sent copy is
         lost, which is precisely the Figure-1 failure.) *)
      let crash_at = Sim.Rng.uniform rng 0.0 0.02 in
      match trial ~seed:(Int64.of_int (i * 7919)) ~atomic ~crash_at with
      | Both -> incr both
      | None_ -> incr none
      | Divergent -> incr div
    done;
    (!both, !none, !div)
  in
  let ub, un, ud = sweep false in
  let ab, an, ad = sweep true in
  let row mode (b, n, d) =
    [
      mode;
      Table.cell_i trials;
      Table.cell_i b;
      Table.cell_i n;
      Table.cell_i d;
      Table.cell_pct (float_of_int d /. float_of_int trials);
    ]
  in
  Table.make ~title:"fig1-divergence: group reply delivery under sender crash"
    ~columns:[ "multicast"; "trials"; "both"; "none"; "divergent"; "divergence" ]
    ~notes:
      [
        "Paper claim (Fig. 1): without reliable ordered multicast, a sender";
        "crash during delivery lets replica states diverge; atomic multicast";
        "makes delivery all-or-nothing.";
      ]
    [ row "unreliable" (ub, un, ud); row "atomic(sequencer)" (ab, an, ad) ]
