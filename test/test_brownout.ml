(* Tests for the gray-failure resilience plane: the per-destination
   latency health tracker, deadline propagation and server-side shedding,
   the deadline-independent forced half-open probe, daemon-aware drains
   (floor gossip no longer blocks quiescence), cooperative hedge
   cancellation, and the tab-brownout tier-1 pin: hedged p99 commit
   latency >= 2x better than unhedged under a browned-out store. *)

open Naming

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Health: EWMA, slow indicator decay, ranking, hedge delay *)

let test_health_ewma_tracks_latency () =
  let h = Net.Health.create () in
  for i = 1 to 20 do
    Net.Health.note_ok h ~dst:"a" ~now:(float_of_int i) ~latency:1.0
  done;
  let e = Net.Health.latency_ewma h "a" in
  check_bool "ewma converges to the steady latency" true
    (e > 0.9 && e <= 1.0);
  check_int "samples counted" 20 (Net.Health.samples h "a");
  (* A burst of slow calls drags the EWMA up but never all the way. *)
  for i = 21 to 24 do
    Net.Health.note_ok h ~dst:"a" ~now:(float_of_int i) ~latency:20.0
  done;
  let e' = Net.Health.latency_ewma h "a" in
  check_bool "ewma moved toward the slow samples" true (e' > 5.0 && e' < 20.0)

let test_health_slow_indicator_decays () =
  let h = Net.Health.create () in
  for i = 1 to 10 do
    Net.Health.note_ok h ~dst:"b" ~now:(float_of_int i) ~latency:1.0
  done;
  (* Timeouts always count as slow calls (they bypass the fleet-relative
     latency bar, which a lone loud destination could otherwise drag up
     past its own samples). *)
  for i = 11 to 16 do
    Net.Health.note_failure h ~dst:"a" ~now:(float_of_int i)
  done;
  check_bool "sustained slow after repeated slow calls" true
    (Net.Health.sustained_slow h ~now:16.0 "a");
  check_bool "slow indicator present" true
    (Net.Health.slow_score h ~now:16.0 "a" > 0.5);
  (* Nobody calls it for a few time constants: health regrows. *)
  check_bool "indicator decays with the clock" true
    (Net.Health.slow_score h ~now:(16.0 +. 300.0) "a" < 0.1);
  check_bool "no longer sustained slow" false
    (Net.Health.sustained_slow h ~now:(16.0 +. 300.0) "a")

let test_health_one_bad_sample_is_not_sustained () =
  let h = Net.Health.create () in
  for i = 1 to 8 do
    Net.Health.note_ok h ~dst:"a" ~now:(float_of_int i) ~latency:1.0
  done;
  Net.Health.note_ok h ~dst:"a" ~now:9.0 ~latency:30.0;
  check_bool "one unlucky round trip never trips" false
    (Net.Health.sustained_slow h ~now:9.0 "a")

let test_health_rank_prefers_healthy () =
  let h = Net.Health.create () in
  (* Unknown world: caller order preserved. *)
  Alcotest.(check (list string))
    "all-unknown preserves order" [ "x"; "y"; "z" ]
    (Net.Health.rank h ~now:0.0 [ "x"; "y"; "z" ]);
  for i = 1 to 8 do
    Net.Health.note_ok h ~dst:"x" ~now:(float_of_int i) ~latency:1.0;
    Net.Health.note_ok h ~dst:"y" ~now:(float_of_int i) ~latency:1.0
  done;
  for i = 9 to 14 do
    Net.Health.note_ok h ~dst:"x" ~now:(float_of_int i) ~latency:25.0
  done;
  Alcotest.(check (list string))
    "sick destination sinks" [ "y"; "z"; "x" ]
    (Net.Health.rank h ~now:14.0 [ "x"; "y"; "z" ])

let test_health_hedge_delay_floor () =
  let h = Net.Health.create () in
  check_bool "pinned to the floor before 8 fleet samples" true
    (Net.Health.hedge_delay h = 4.0);
  for i = 1 to 20 do
    Net.Health.note_ok h ~dst:"a" ~now:(float_of_int i) ~latency:1.0
  done;
  let d = Net.Health.hedge_delay ~floor:0.1 h in
  check_bool "tracks ewma + 3 deviations once warmed" true
    (d >= 0.1 && d < 4.0);
  check_bool "default floor still binds on a fast fleet" true
    (Net.Health.hedge_delay h = 4.0)

(* ------------------------------------------------------------------ *)
(* Deadline propagation and server-side shedding *)

let shed_world () =
  let eng = Sim.Engine.create ~seed:7L () in
  let net = Net.Network.create eng in
  let rpc = Net.Rpc.create net in
  List.iter (Net.Network.add_node net) [ "client"; "server" ];
  (eng, net, rpc)

let echo : (string, string) Net.Rpc.endpoint = Net.Rpc.endpoint "echo"

let test_shed_expired_refuses_work () =
  let eng, net, rpc = shed_world () in
  Net.Rpc.set_shed_expired rpc true;
  let ran = ref 0 in
  Net.Rpc.serve rpc ~node:"server" echo (fun s -> incr ran; s);
  let got = ref (Ok "unset") in
  Net.Network.spawn_on net "client" (fun () ->
      (* The initiator's deadline has already passed when the request
         lands: the server must refuse without running the handler. *)
      got := Net.Rpc.call rpc ~from:"client" ~dst:"server" ~deadline_at:0.0
               echo "hi");
  Sim.Engine.run eng;
  Alcotest.(check (result string (of_pp Net.Rpc.pp_error)))
    "refused as timed out" (Error Net.Rpc.Timed_out) !got;
  check_int "handler never ran" 0 !ran;
  check_int "shed counted" 1
    (Sim.Metrics.counter (Net.Network.metrics net) "retry.shed_expired")

let test_shed_off_deadline_is_inert () =
  let eng, net, rpc = shed_world () in
  let ran = ref 0 in
  Net.Rpc.serve rpc ~node:"server" echo (fun s -> incr ran; s);
  let got = ref (Error Net.Rpc.Timed_out) in
  Net.Network.spawn_on net "client" (fun () ->
      got := Net.Rpc.call rpc ~from:"client" ~dst:"server" ~deadline_at:0.0
               echo "hi");
  Sim.Engine.run eng;
  Alcotest.(check (result string (of_pp Net.Rpc.pp_error)))
    "carried but not acted on" (Ok "hi") !got;
  check_int "handler ran" 1 !ran;
  check_int "nothing shed" 0
    (Sim.Metrics.counter (Net.Network.metrics net) "retry.shed_expired")

(* ------------------------------------------------------------------ *)
(* Breaker: the half-open probe must not starve under a caller deadline *)

let test_forced_probe_under_deadline () =
  let eng, net, _ = shed_world () in
  let retry = Net.Retry.create net in
  let m = Net.Network.metrics net in
  let healthy = ref false in
  let body () = if !healthy then Ok () else Error "down" in
  let quick = Net.Retry.policy ~attempts:1 () in
  let outcome = ref (Error "unset") in
  Net.Network.spawn_on net "client" (fun () ->
      (* Three consecutive failures open the breaker (cooldown 8s). *)
      for _ = 1 to 3 do
        ignore (Net.Retry.run retry ~dst:"server" ~op:"t" quick body)
      done;
      check_bool "breaker open" true (Net.Retry.breaker_open retry "server");
      healthy := true;
      (* The caller's whole deadline ends before the cooldown does. A
         naive breaker sheds every attempt and the caller never learns
         the destination recovered; the fix forces one attempt through
         as the half-open probe, independent of the cooldown clock. *)
      let deadline_at = Sim.Engine.now eng +. 2.0 in
      outcome :=
        Net.Retry.run retry ~dst:"server" ~deadline_at ~op:"t"
          (Net.Retry.policy ~attempts:3 ~base:0.5 ())
          body);
  Sim.Engine.run eng;
  check_bool "recovered result reached the caller" true (!outcome = Ok ());
  check_bool "probe was forced through the open breaker" true
    (Sim.Metrics.counter m "retry.forced_probes" >= 1);
  check_bool "breaker closed by the successful probe" false
    (Net.Retry.breaker_open retry "server")

(* ------------------------------------------------------------------ *)
(* Daemon-aware drain: floor gossip must not block quiescence *)

let topo =
  {
    Service.gvd_node = "ns";
    gvd_nodes = [];
    server_nodes = [ "alpha" ];
    store_nodes = [ "t1"; "t2" ];
    client_nodes = [ "c1" ];
  }

let test_gossip_daemon_drains () =
  (* Before daemon-aware drains this looped forever: every gossip cycle
     issued an RPC whose 60s guard timer kept [nondaemon_queued] above
     zero, so the drain chased an ever-receding horizon. *)
  let w = Service.create ~seed:5L ~floor_gossip_period:7.0 topo in
  let uid =
    Service.create_object w ~name:"obj" ~impl:"counter" ~sv:[ "alpha" ]
      ~st:[ "t1"; "t2" ] ()
  in
  Service.run ~until:1.0 w;
  let committed = ref false in
  Service.spawn_client w "c1" (fun () ->
      committed :=
        Service.with_bound w ~client:"c1" ~scheme:Scheme.Independent
          ~policy:Replica.Policy.Single_copy_passive ~uid (fun act group ->
            ignore (Service.invoke w group ~act "add 1"))
        = Ok ());
  Service.run w;
  check_bool "commit landed" true !committed;
  check_bool "drain terminated promptly" true
    (Sim.Engine.now (Service.engine w) < 200.0);
  Alcotest.(check (list string)) "audit clean" [] (Workload.Audit.chaos w)

(* ------------------------------------------------------------------ *)
(* tab-brownout: the tier-1 pin and its guard rails *)

let test_brownout_p99_pin () =
  let ratio, unhedged, hedged = Workload.Exp_brownout.p99_ratio () in
  check_int "unhedged commits all landed" 150
    unhedged.Workload.Exp_brownout.b_commits;
  check_int "hedged commits all landed" 150 hedged.b_commits;
  check_bool "hedges actually launched" true (hedged.b_hedges > 0);
  check_bool
    (Printf.sprintf "p99 ratio %.2f >= 2.0" ratio)
    true (ratio >= 2.0)

let test_brownout_off_path_identical () =
  let u =
    Workload.Exp_brownout.episode ~hedged:false ~prob:0.0 ~commits:40
      ~seed:31L ()
  in
  let h =
    Workload.Exp_brownout.episode ~hedged:true ~prob:0.0 ~commits:40
      ~seed:31L ()
  in
  check_bool "byte-identical latency trajectory with the knob on" true
    (u.Workload.Exp_brownout.b_mean = h.Workload.Exp_brownout.b_mean
    && u.b_p50 = h.b_p50 && u.b_p95 = h.b_p95 && u.b_p99 = h.b_p99);
  check_int "no hedge fires before a healthy RTT" 0 h.b_hedges

let test_hedge_cancellation_keeps_rounds_sound () =
  (* At this probability a losing primary prepare regularly arrives after
     the backup's round already committed; without delivery-time
     cancellation it re-staged a ghost intent and wedged every later
     commit with a version conflict. All commits landing is the proof. *)
  let s =
    Workload.Exp_brownout.episode ~hedged:true ~prob:0.05 ~commits:150
      ~seed:31L ()
  in
  check_int "no commit lost to a ghost intent" 150
    s.Workload.Exp_brownout.b_commits

(* ------------------------------------------------------------------ *)
(* Property: hedged duplicates stay exactly-once under dup=1.0 links
   and random brownout schedules *)

let prop_hedged_dup_exactly_once =
  QCheck.Test.make ~count:12
    ~name:"hedged + dup=1.0 + random brownout keeps commits exactly-once"
    QCheck.(
      triple (int_range 1 1000) (float_range 0.0 0.3) (float_range 5.0 15.0))
    (fun (seed, prob, lo) ->
      let w = Service.create ~seed:(Int64.of_int seed) ~hedged_rpc:true topo in
      let uid =
        Service.create_object w ~name:"obj" ~impl:"counter" ~sv:[ "alpha" ]
          ~st:[ "t1"; "t2" ] ()
      in
      Service.run ~until:1.0 w;
      (* Every server->store message arrives twice, on top of whatever
         duplication hedging itself produces; t1 is browned out. *)
      Net.Network.set_link_fault (Service.network w) ~dup:1.0 ~src:"alpha"
        ~dst:"t1" ();
      if prob > 0.0 then
        Net.Fault.brownout_for (Service.network w) ~at:2.0 ~duration:1.0e9
          ~prob ~lo ~hi:(lo +. 10.0) "t1";
      let commits = ref 0 in
      Service.spawn_client w "c1" (fun () ->
          for _ = 1 to 3 do
            match
              Service.with_bound w ~client:"c1" ~scheme:Scheme.Independent
                ~policy:Replica.Policy.Single_copy_passive ~uid
                (fun act group -> ignore (Service.invoke w group ~act "add 1"))
            with
            | Ok () -> incr commits
            | Error _ -> ()
          done);
      Service.run w;
      let payload st =
        match
          Store.Object_store.read
            (Action.Store_host.objects (Service.store_host w) st)
            uid
        with
        | Some s -> s.Store.Object_state.payload
        | None -> "<missing>"
      in
      !commits = 3
      && payload "t1" = "3"
      && payload "t2" = "3"
      && Workload.Audit.chaos w = [])

let suite =
  [
    ( "brownout",
      [
        Alcotest.test_case "health ewma tracks latency" `Quick
          test_health_ewma_tracks_latency;
        Alcotest.test_case "health slow indicator decays" `Quick
          test_health_slow_indicator_decays;
        Alcotest.test_case "one bad sample is not sustained slowness" `Quick
          test_health_one_bad_sample_is_not_sustained;
        Alcotest.test_case "rank sinks the sick destination" `Quick
          test_health_rank_prefers_healthy;
        Alcotest.test_case "hedge delay floors until warmed" `Quick
          test_health_hedge_delay_floor;
        Alcotest.test_case "shedding refuses expired work" `Quick
          test_shed_expired_refuses_work;
        Alcotest.test_case "deadline metadata inert with shedding off" `Quick
          test_shed_off_deadline_is_inert;
        Alcotest.test_case "forced half-open probe beats the deadline" `Quick
          test_forced_probe_under_deadline;
        Alcotest.test_case "floor-gossip daemon does not block the drain"
          `Quick test_gossip_daemon_drains;
        Alcotest.test_case "pin: hedged p99 >= 2x under brownout" `Quick
          test_brownout_p99_pin;
        Alcotest.test_case "prob 0: hedged run identical to unhedged" `Quick
          test_brownout_off_path_identical;
        Alcotest.test_case "late losing hedge cannot wedge later rounds"
          `Quick test_hedge_cancellation_keeps_rounds_sound;
        Test_util.qcheck prop_hedged_dup_exactly_once;
      ] );
  ]
