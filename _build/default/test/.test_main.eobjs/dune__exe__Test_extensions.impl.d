test/test_extensions.ml: Action Admin Alcotest Astring Binder Gvd List Naming Net QCheck Replica Scheme Service Sim Store String Test_util
