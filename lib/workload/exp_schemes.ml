open Naming

type result = {
  r_scheme : Scheme.t;
  r_attempts : int;
  r_commits : int;
  r_bind_mean : float;
  r_futile : int;
  r_removed_dead : int;
  r_db_ops : int;
  r_db_lock_waits : int;
  r_insert_delay : float;
  r_orphans : int;
}

let db_op_counters =
  [
    "gvd.get_server"; "gvd.get_view"; "gvd.inserts"; "gvd.removes";
    "gvd.increments"; "gvd.decrements"; "gvd.zeroes"; "gvd.exclusions";
    "gvd.includes";
  ]

let run_scheme ?(seed = 31L) ?(pipelined = false) scheme =
  let servers = [ "s1"; "s2" ] in
  let stores = [ "t1"; "t2" ] in
  let clients = [ "c1"; "c2"; "c3"; "c4" ] in
  let w =
    Service.create ~seed ~cleanup_period:25.0 ~pipelined_binds:pipelined
      {
        Service.gvd_node = "ns";
        gvd_nodes = [];
        server_nodes = servers;
        store_nodes = stores;
        client_nodes = clients;
      }
  in
  let uid =
    Service.create_object w ~name:"obj" ~impl:"counter" ~sv:servers ~st:stores ()
  in
  Service.run ~until:1.0 w;
  let eng = Service.engine w in
  let net = Service.network w in
  let m = Service.metrics w in
  let rng = Sim.Rng.split (Sim.Engine.rng eng) in
  let horizon = 400.0 in
  (* One server bounce mid-run. *)
  Net.Fault.crash_for net ~at:100.0 ~duration:100.0 "s1";
  let commits = ref 0 and attempts = ref 0 in
  (* Read-mostly (every fourth action writes): write-lock contention on
     the single hot object would otherwise dominate every scheme equally
     and drown the scheme-specific differences the experiment is after. *)
  let run_action client =
    incr attempts;
    let write = !attempts mod 4 = 0 in
    let started = Sim.Engine.now eng in
    let bound = ref nan in
    match
      Service.with_bound w ~client ~scheme ~policy:(Replica.Policy.Active 2)
        ~uid (fun act group ->
          bound := Sim.Engine.now eng -. started;
          ignore (Service.invoke w group ~act ~write:false "get");
          if write then Service.invoke w group ~act "incr"
          else Service.invoke w group ~act ~write:false "get")
    with
    | Ok _ ->
        incr commits;
        Sim.Metrics.observe m "exp.bind_latency" !bound
    | Error _ ->
        if not (Float.is_nan !bound) then
          Sim.Metrics.observe m "exp.bind_latency" !bound
  in
  (* Three steady clients... *)
  List.iter
    (fun client ->
      Service.spawn_client w client (fun () ->
          let rec loop () =
            if Sim.Engine.now eng < horizon then begin
              run_action client;
              Sim.Engine.sleep eng (Sim.Rng.exponential rng 8.0);
              loop ()
            end
          in
          loop ()))
    [ "c1"; "c2"; "c3" ];
  (* ...and one that crashes while bound and stays down: its bind (and
     under schemes B/C the Increment) has long committed by the time of
     the crash at t=210, so the orphaned counters are durable and only
     the cleanup daemon can remove them. *)
  Net.Network.spawn_on net "c4" (fun () ->
      Sim.Engine.sleep eng 110.0;
      ignore
        (Service.with_bound w ~client:"c4" ~scheme
           ~policy:(Replica.Policy.Active 2) ~uid (fun act group ->
             ignore (Service.invoke w group ~act ~write:false "get");
             Sim.Engine.sleep eng 150.0)));
  Net.Fault.crash_at net ~at:210.0 "c4";
  Service.run ~until:(horizon +. 600.0) w;
  {
    r_scheme = scheme;
    r_attempts = !attempts;
    r_commits = !commits;
    r_bind_mean = Sim.Metrics.mean m "exp.bind_latency";
    r_futile = Sim.Metrics.counter m "bind.futile";
    r_removed_dead = Sim.Metrics.counter m "bind.removed_dead";
    r_db_ops =
      List.fold_left (fun acc c -> acc + Sim.Metrics.counter m c) 0 db_op_counters;
    r_db_lock_waits = Sim.Metrics.counter m "lock.waited";
    r_insert_delay = Sim.Metrics.mean m "reintegrate.insert_delay";
    r_orphans = Sim.Metrics.counter m "cleanup.orphans";
  }

let row ?label r =
  [
    (match label with Some l -> l | None -> Scheme.to_string r.r_scheme);
    Table.cell_i r.r_attempts;
    Table.cell_i r.r_commits;
    Table.cell_f r.r_bind_mean;
    Table.cell_i r.r_futile;
    Table.cell_i r.r_removed_dead;
    Table.cell_i r.r_db_ops;
    Table.cell_i r.r_db_lock_waits;
    Table.cell_f r.r_insert_delay;
    Table.cell_i r.r_orphans;
  ]

let columns =
  [
    "scheme"; "attempts"; "commits"; "bind mean"; "futile"; "removed-dead";
    "db ops"; "db lock waits"; "insert delay"; "orphans cleaned";
  ]

let single ?seed scheme ~title ~notes () =
  let r = run_scheme ?seed scheme in
  Table.make ~title ~columns ~notes [ row r ]

let fig6 ?seed () =
  single ?seed Scheme.Standard
    ~title:"fig6-standard: scheme A, nested atomic actions"
    ~notes:
      [
        "Paper claims (§4.1.2): SvA is static, so every bind while s1 is";
        "down pays a futile activation attempt ('the hard way'); database";
        "read locks are held to client commit, so the recovered server's";
        "Insert waits; in exchange the database sees few operations.";
      ]
    ()

let fig7 ?seed () =
  single ?seed Scheme.Independent
    ~title:"fig7-independent: scheme B, independent top-level actions"
    ~notes:
      [
        "Paper claims (§4.1.3(i)): dead servers are removed at bind time,";
        "so SvA stays fresh and futile binds vanish; every client action";
        "costs extra database actions (Increment/Decrement); the crashed";
        "client's counters linger until the cleanup daemon zeroes them.";
      ]
    ()

let fig8 ?seed () =
  single ?seed Scheme.Nested_toplevel
    ~title:"fig8-nested-toplevel: scheme C, nested top-level actions"
    ~notes:
      [
        "Paper claims (§4.1.3(ii)): identical database behaviour to scheme";
        "B; the difference is purely structural (the database actions are";
        "started from within the client action).";
      ]
    ()

let comparison ?(seed = 31L) () =
  let rows = List.map (fun s -> row (run_scheme ~seed s)) Scheme.all in
  let pipelined =
    row ~label:"standard+pipelined"
      (run_scheme ~seed ~pipelined:true Scheme.Standard)
  in
  Table.make
    ~title:"tab-schemes: the three access schemes side by side (§4.1)"
    ~columns
    ~notes:
      [
        "Shape to check: standard has futile binds and zero removed-dead /";
        "orphans; independent and nested-toplevel trade extra db ops (and";
        "cleanup work after the client crash) for a fresh SvA view.";
        "standard+pipelined is scheme A with its three serial naming reads";
        "scattered as one Join round: identical database behaviour (same";
        "futile binds, same lock profile — the nested read locks are still";
        "held to commit), but the bind mean closes most of the gap to the";
        "one-round schemes.";
      ]
    (rows @ [ pipelined ])
