type t = ..

let embed (type a) () =
  let module M = struct
    type t += Case of a
  end in
  let inject (x : a) = M.Case x in
  let project = function M.Case x -> Some x | _ -> None in
  (inject, project)
