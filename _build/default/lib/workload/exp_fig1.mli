(** Experiment [fig1-divergence]: reproduce Figure 1 / §2.3(2).

    A replicated group GA = {A1, A2} invokes an operation on GB = {B}. B
    crashes while delivering the reply. With plain per-member sends, the
    reply can reach A1 but not A2, and the replicas diverge; with the
    sequencer-based atomic multicast, delivery is all-or-nothing and no
    trial diverges.

    Each trial builds a fresh world, has B cast its reply to both members
    with a crash scheduled inside the delivery window, and classifies the
    outcome as [both], [none] or [divergent]. *)

val run : ?trials:int -> ?seed:int64 -> unit -> Table.t
