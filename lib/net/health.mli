(** Per-destination latency health: the gray-failure counterpart of the
    failure detector.

    Crashes are binary; a {e browned-out} node is alive enough to hold
    locks and vote yet slow enough to drag every scatter-gather to its
    pace. This module keeps, per destination, an EWMA of observed RPC
    round-trip latency, a smoothed deviation, and a time-decaying
    slow-call indicator, plus fleet-wide aggregates. The RPC layer feeds
    every call completion in; consumers derive a health score (replica
    ranking), a sustained-slowness verdict (the retry breaker's
    "degraded" trips) and the hedge delay for backup requests.

    All bookkeeping is pure arithmetic on the virtual clock — no RNG
    draws, no scheduled events — so feeding it unconditionally leaves
    fault-free worlds byte-identical. Functions take [~now] explicitly;
    the module has no dependency on the network. *)

type t

val create : ?slow_floor:float -> ?tau:float -> unit -> t
(** [create ()] is an empty tracker. [slow_floor] (default [8.0]) is the
    minimum latency a call must exceed to ever count as slow — cold
    starts and ordinary jitter never flag. [tau] (default [60.0]) is the
    decay time-constant of the slow indicator: a destination nobody calls
    regains health over roughly a few [tau]. *)

val note_ok : t -> dst:string -> now:float -> latency:float -> unit
(** Feed a successful call's round-trip [latency], classifying it as slow
    iff it exceeds {!slow_threshold}. *)

val note_failure : t -> dst:string -> now:float -> unit
(** Feed a transport failure (timeout, crash detection): counts as a slow
    call for the indicator but does not pollute the latency EWMA — how
    fast a node answers when it does answer is a separate question from
    whether it answered. *)

val slow_threshold : t -> float
(** The current slow bar: [max slow_floor (3 * fleet EWMA)]. Relative to
    the {e fleet}, not the destination itself, so a consistently sick
    node cannot normalize its own sickness away. *)

val is_slow : t -> latency:float -> bool
(** Whether a latency would be classified slow right now. *)

val score : t -> now:float -> string -> float
(** Health in [\[0,1\]]; 1.0 = no evidence of sickness (unknown
    destinations score 1.0). Combines the decayed slow indicator with the
    destination's latency relative to the fleet. *)

val rank : t -> now:float -> string list -> string list
(** Stable sort, healthiest first. Ties — including all-unknown worlds —
    preserve the caller's order, so replica preference is unchanged
    wherever health has nothing to say. *)

val sustained_slow : t -> now:float -> string -> bool
(** The degraded-trip condition: at least 4 samples and a decayed slow
    indicator ≥ 0.6. One unlucky round trip can never shed a healthy
    destination. *)

val hedge_delay : ?floor:float -> t -> float
(** How long a hedged call gives its primary before launching the backup:
    fleet EWMA + 3 deviations (≈ a high percentile of healthy latency),
    floored at [floor] (default [4.0]) and pinned to the floor until at
    least 8 fleet samples exist. *)

val slow_score : t -> now:float -> string -> float
(** The decayed slow indicator alone, for tests and introspection. *)

val samples : t -> string -> int
(** Number of samples recorded for a destination. *)

val latency_ewma : t -> string -> float
(** The destination's smoothed latency (0.0 if never sampled). *)
