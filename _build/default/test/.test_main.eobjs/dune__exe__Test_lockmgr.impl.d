test/test_lockmgr.ml: Alcotest List Lockmgr Manager Mode Printf QCheck Sim String Test_util
