lib/workload/exp_exclock.mli: Table
