(** Application object behaviour: a deterministic state machine over
    serialised payloads.

    An implementation gives the class of an object (§2.2): its operations
    and how they transform the instance state. Operations and states are
    strings — the simulator's stand-in for marshalled method calls — and
    {e must be deterministic}, the standard requirement for active
    replication [16]: every replica applying the same operations in the
    same order reaches the same state.

    A small registry maps implementation names to behaviours; every node
    can look implementations up (the executable code of an object's
    methods is available wherever a server can run, §3.1). *)

type t = {
  impl_name : string;
  initial : string;  (** payload of a freshly created instance *)
  apply : string -> string -> string * string;
      (** [apply payload op] is [(payload', reply)]. Must be pure. *)
}

val registry : unit -> (string, t) Hashtbl.t
(** A fresh registry (one per simulated world). *)

val register : (string, t) Hashtbl.t -> t -> unit
(** Add an implementation, replacing any with the same name. *)

val find : (string, t) Hashtbl.t -> string -> t
(** @raise Not_found if the name is unregistered. *)

(** {2 Stock implementations} — used by tests, examples and benchmarks. *)

val counter : t
(** Payload is an integer rendered in decimal. Ops: ["incr"], ["add n"],
    ["get"]. Replies with the post-op value. *)

val account : t
(** A bank account. Payload ["balance"]. Ops: ["deposit n"],
    ["withdraw n"] (reply ["insufficient"] when overdrawn, leaving the
    state unchanged), ["balance"]. *)

val register_cell : t
(** A read/write register. Ops: ["write s"], ["read"]. *)

val fifo_queue : t
(** A FIFO queue of strings (payload: items joined by [','], no commas in
    items). Ops: ["push s"], ["pop"] (reply ["empty"] on an empty queue),
    ["peek"], ["length"]. *)

val string_set : t
(** A set of strings (payload: sorted, [','] separated). Ops: ["add s"]
    (reply ["added"]/["present"]), ["remove s"] (["removed"]/["absent"]),
    ["mem s"] (["true"]/["false"]), ["size"]. *)

val kv_map : t
(** A string→string map (payload: [k=v] pairs, [';'] separated, sorted by
    key; no ['='], [';'] or spaces in keys). Ops: ["put k v"],
    ["get k"] (reply the value or ["(none)"]), ["del k"], ["size"]. *)

val stock_all : t list
(** All stock implementations, convenient for seeding registries. *)
