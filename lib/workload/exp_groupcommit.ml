open Naming

(* tab-groupcommit: group-commit round coalescing vs solo 2PC.

   Eight clients, each committing writes to its OWN object (so instance
   write locks never serialise them) with every object stored on the same
   two-store [St] — the workload shape where per-commit round count, not
   payload, dominates. Commits leave in synchronised waves; the grouped
   runs hold each opening commit for [commit_batch_window] (closing early
   on quiescence), merge the overlapping store sets, and pay one prepare
   scatter and one phase-2 scatter per store for the whole batch.

   The measured quantity is store RPC rounds per commit: the sum of the
   per-endpoint RPC counters over every phase-1/phase-2 store operation
   (solo and batched), divided by commits. Solo, each commit pays
   2 × |St| rounds (prepare + commit per store); grouped, a batch of [k]
   amortises those same rounds k ways. [round_reduction] exposes the
   solo/grouped ratio at 8 clients for the tier-1 pin (>= 1.5x). *)

let stores = [ "t1"; "t2" ]
let waves = 6

type sample = {
  g_commits : int;
  g_store_rpcs : int;
  g_rounds : float; (* store RPC rounds per commit *)
  g_batches : int;
  g_mean_members : float;
  g_peels : int;
  g_pulled : int;
}

(* Every store-side op a commit can pay, solo or batched, phase 1 or 2 —
   including aborts and solo retries, so peel-outs are charged honestly. *)
let store_ops =
  [
    "store.prepare";
    "store.prepare_batch";
    "store.commit";
    "store.commit_batch";
    "store.abort";
  ]

let episode ~window ~clients () =
  let client_nodes = List.init clients (fun i -> Printf.sprintf "c%d" (i + 1)) in
  let w =
    Service.create ~seed:9L ~commit_batch_window:window
      {
        Service.gvd_node = "ns";
        gvd_nodes = [];
        server_nodes = [ "alpha" ];
        store_nodes = stores;
        client_nodes;
      }
  in
  let uids =
    List.map
      (fun c ->
        Service.create_object w ~name:("obj-" ^ c) ~impl:"counter"
          ~sv:[ "alpha" ] ~st:stores ())
      client_nodes
  in
  Service.run ~until:1.0 w;
  let eng = Service.engine w in
  let m = Service.metrics w in
  let rng = Sim.Rng.split (Sim.Engine.rng eng) in
  let commits = ref 0 in
  List.iteri
    (fun i client ->
      let uid = List.nth uids i in
      let crng = Sim.Rng.split rng in
      Service.spawn_client w client (fun () ->
          for wave = 1 to waves do
            let top = float_of_int wave *. 40.0 in
            let jitter = Sim.Rng.uniform crng 0.0 1.0 in
            Sim.Engine.sleep eng
              (Float.max 0.0 (top +. jitter -. Sim.Engine.now eng));
            match
              Service.with_bound w ~client ~scheme:Scheme.Independent
                ~policy:Replica.Policy.Single_copy_passive ~uid
                (fun act group ->
                  ignore (Service.invoke w group ~act "add 1"))
            with
            | Ok () -> incr commits
            | Error _ -> ()
          done))
    client_nodes;
  Service.run w;
  let store_rpcs =
    List.fold_left
      (fun acc op -> acc + Sim.Metrics.counter m ("rpc.op." ^ op))
      0 store_ops
  in
  {
    g_commits = !commits;
    g_store_rpcs = store_rpcs;
    g_rounds = float_of_int store_rpcs /. float_of_int (max 1 !commits);
    g_batches = Sim.Metrics.counter m "groupcommit.batches";
    g_mean_members = Sim.Metrics.mean m "groupcommit.batch_members";
    g_peels = Sim.Metrics.counter m "groupcommit.peels";
    g_pulled = Sim.Metrics.counter m "groupcommit.pulled_closes";
  }

(* Store-round reduction of grouped over solo commits at [clients]
   writers: the acceptance pin (>= 1.5x at 8 clients) reads this. *)
let round_reduction ?(clients = 8) ?(window = 3.0) () =
  let solo = episode ~window:0.0 ~clients () in
  let grouped = episode ~window ~clients () in
  (solo.g_rounds /. grouped.g_rounds, solo, grouped)

let run () =
  let rows =
    List.concat_map
      (fun clients ->
        let solo = episode ~window:0.0 ~clients () in
        let grouped = episode ~window:3.0 ~clients () in
        let row label s reduction =
          [
            Table.cell_i clients;
            label;
            Table.cell_i s.g_commits;
            Table.cell_i s.g_store_rpcs;
            Table.cell_f s.g_rounds;
            Table.cell_i s.g_batches;
            (if s.g_batches = 0 then "-"
             else Printf.sprintf "%.1f" s.g_mean_members);
            Table.cell_i s.g_peels;
            reduction;
          ]
        in
        [
          row "solo" solo "1.00x";
          row "grouped (w=3)" grouped
            (Printf.sprintf "%.2fx" (solo.g_rounds /. grouped.g_rounds));
        ])
      [ 2; 4; 8 ]
  in
  Table.make
    ~title:"tab-groupcommit: group-commit round coalescing vs solo 2PC"
    ~columns:
      [
        "clients";
        "mode";
        "commits";
        "store RPCs";
        "rounds/commit";
        "batches";
        "mean members";
        "peels";
        "reduction";
      ]
    ~notes:
      [
        "Synchronised waves of single-object writes, one object per client,";
        "every object on the same 2-store St. Solo, each commit pays its own";
        "prepare + phase-2 scatter (2 x |St| store rounds); grouped, commits";
        "opening within the batch window (3.0, closing early once no commit";
        "is still approaching) merge and pay ONE prepare and ONE phase-2";
        "round per store for the whole batch. 'store RPCs' sums every";
        "phase-1/phase-2 store operation including aborts and peel-out solo";
        "retries; 'peels' counts members whose vote fell short of all-yes";
        "and who re-ran solo (never aborting batchmates). Batched phase-2";
        "acks piggyback the store's acked-version floors (PROTOCOLS.md";
        "S14). The >= 1.5x reduction at 8 clients is pinned as a tier-1";
        "test (test_groupcommit.ml).";
      ]
    rows
